package convnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/matrix"
)

func testExec(t *testing.T) *core.Executor[float64] {
	t.Helper()
	cfg := core.Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto}
	e, err := core.NewExecutor[float64](cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestTensorBasics(t *testing.T) {
	ten := NewTensor[float64](2, 3, 4)
	ten.Set(1, 2, 3, 5)
	if ten.At(1, 2, 3) != 5 {
		t.Fatal("At/Set")
	}
	m := ten.AsMatrix()
	if m.Rows != 2 || m.Cols != 12 {
		t.Fatalf("AsMatrix %dx%d", m.Rows, m.Cols)
	}
	m.Set(1, 11, 9)
	if ten.At(1, 2, 3) != 9 {
		t.Fatal("AsMatrix must share storage")
	}
}

func TestNewTensorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTensor[float32](0, 1, 1)
}

func TestConvSpecValidateAndDims(t *testing.T) {
	s := ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if s.Validate() != nil {
		t.Fatal("valid spec rejected")
	}
	if oh, ow := s.OutDims(16, 20); oh != 16 || ow != 20 {
		t.Fatalf("same-pad dims %dx%d", oh, ow)
	}
	s2 := ConvSpec{InC: 1, OutC: 1, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if oh, ow := s2.OutDims(8, 8); oh != 4 || ow != 4 {
		t.Fatalf("strided dims %dx%d", oh, ow)
	}
	for _, bad := range []ConvSpec{
		{InC: 0, OutC: 1, KH: 1, KW: 1, Stride: 1},
		{InC: 1, OutC: 1, KH: 0, KW: 1, Stride: 1},
		{InC: 1, OutC: 1, KH: 1, KW: 1, Stride: 0},
		{InC: 1, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: -1},
	} {
		if bad.Validate() == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1 channel, 2x2 input, 1x1 kernel: patches = input row-major.
	in := NewTensor[float64](1, 2, 2)
	in.Set(0, 0, 0, 1)
	in.Set(0, 0, 1, 2)
	in.Set(0, 1, 0, 3)
	in.Set(0, 1, 1, 4)
	p, err := Im2Col(in, ConvSpec{InC: 1, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 1 || p.Cols != 4 || p.At(0, 0) != 1 || p.At(0, 3) != 4 {
		t.Fatalf("im2col 1x1: %v", p)
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	in := NewTensor[float64](1, 2, 2)
	in.Set(0, 0, 0, 7)
	s := ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	p, err := Im2Col(in, s)
	if err != nil {
		t.Fatal(err)
	}
	// Patch row 0 (ky=0,kx=0) at output (0,0) reads in(-1,-1) = 0 padding.
	if p.At(0, 0) != 0 {
		t.Fatal("padding not zero")
	}
	// Centre tap (ky=1,kx=1) at output (0,0) reads in(0,0) = 7.
	if p.At(4, 0) != 7 {
		t.Fatalf("centre tap %v", p.At(4, 0))
	}
}

func TestIm2ColErrors(t *testing.T) {
	in := NewTensor[float64](2, 4, 4)
	if _, err := Im2Col(in, ConvSpec{InC: 3, OutC: 1, KH: 1, KW: 1, Stride: 1}); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := Im2Col(in, ConvSpec{InC: 2, OutC: 1, KH: 9, KW: 9, Stride: 1}); err == nil {
		t.Fatal("oversized kernel accepted")
	}
}

func TestConvAsGemmMatchesDirect(t *testing.T) {
	exec := testExec(t)
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []ConvSpec{
		{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, OutC: 4, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 4, OutC: 6, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 1, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 2, OutC: 3, KH: 2, KW: 4, Stride: 3, Pad: 0},
	} {
		l, err := NewLayer[float64]("t", tc, false, rng)
		if err != nil {
			t.Fatal(err)
		}
		in := NewTensor[float64](tc.InC, 11, 13)
		in.Randomize(rng)
		got, _, err := l.Forward(in, exec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DirectConv(in, l)
		if err != nil {
			t.Fatal(err)
		}
		gm := matrix.FromSlice(1, len(got.Data), got.Data)
		wm := matrix.FromSlice(1, len(want.Data), want.Data)
		if !gm.AlmostEqual(wm, tc.InC*tc.KH*tc.KW, 1e-12) {
			t.Fatalf("spec %+v: GEMM conv differs from direct: %g", tc, gm.MaxAbsDiff(wm))
		}
	}
}

func TestConvQuick(t *testing.T) {
	exec := testExec(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := ConvSpec{
			InC: 1 + rng.Intn(4), OutC: 1 + rng.Intn(6),
			KH: 1 + rng.Intn(4), KW: 1 + rng.Intn(4),
			Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		h, w := s.KH+rng.Intn(8), s.KW+rng.Intn(8)
		l, err := NewLayer[float64]("q", s, rng.Intn(2) == 0, rng)
		if err != nil {
			return false
		}
		in := NewTensor[float64](s.InC, h, w)
		in.Randomize(rng)
		got, _, err := l.Forward(in, exec)
		if err != nil {
			return false
		}
		want, err := DirectConv(in, l)
		if err != nil {
			return false
		}
		gm := matrix.FromSlice(1, len(got.Data), got.Data)
		wm := matrix.FromSlice(1, len(want.Data), want.Data)
		return gm.AlmostEqual(wm, s.InC*s.KH*s.KW, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReLU(t *testing.T) {
	exec := testExec(t)
	rng := rand.New(rand.NewSource(2))
	s := ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	l, err := NewLayer[float64]("relu", s, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor[float64](1, 8, 8)
	in.Randomize(rng)
	out, _, err := l.Forward(in, exec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v < 0 {
			t.Fatal("ReLU let a negative through")
		}
	}
}

func TestMaxPool2x2(t *testing.T) {
	in := NewTensor[float64](1, 4, 4)
	in.Set(0, 0, 0, 1)
	in.Set(0, 0, 1, 9)
	in.Set(0, 1, 0, 2)
	in.Set(0, 1, 1, 3)
	out := MaxPool2x2(in)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool dims %dx%d", out.H, out.W)
	}
	if out.At(0, 0, 0) != 9 {
		t.Fatalf("pool max %v", out.At(0, 0, 0))
	}
}

func TestNetworkForward(t *testing.T) {
	exec := testExec(t)
	rng := rand.New(rand.NewSource(3))
	l1, _ := NewLayer[float64]("c1", ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, true, rng)
	l2, _ := NewLayer[float64]("c2", ConvSpec{InC: 8, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, true, rng)
	net, err := NewNetwork(exec, []*Layer[float64]{l1, l2}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor[float64](3, 16, 16)
	in.Randomize(rng)
	out, st, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 16 || out.H != 4 || out.W != 4 {
		t.Fatalf("network output %dx%dx%d", out.C, out.H, out.W)
	}
	if st.Blocks < 2 || st.ComputeNanos <= 0 {
		t.Fatalf("aggregated stats %+v", st)
	}
}

// TestLayerForwardBatchBitExact: one batched GEMM over the image batch must
// reproduce the per-image Forward loop bit for bit — the batch path shares
// packed weight panels across images, and identical packed bytes must give
// identical results, not merely close ones.
func TestLayerForwardBatchBitExact(t *testing.T) {
	exec := testExec(t)
	rng := rand.New(rand.NewSource(5))
	for _, relu := range []bool{false, true} {
		l, err := NewLayer[float64]("b", ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, relu, rng)
		if err != nil {
			t.Fatal(err)
		}
		const batch = 5
		ins := make([]*Tensor[float64], batch)
		for i := range ins {
			ins[i] = NewTensor[float64](3, 12, 14)
			ins[i].Randomize(rng)
		}
		got, st, err := l.ForwardBatch(ins, exec)
		if err != nil {
			t.Fatal(err)
		}
		if st.BatchCalls != batch {
			t.Fatalf("BatchCalls = %d, want %d", st.BatchCalls, batch)
		}
		// The weight matrix is literally shared across calls, so the batch
		// loop must have served it from kept panels after the first image.
		if st.ReusedAElems == 0 {
			t.Fatalf("shared weights produced no A panel reuse: %+v", st)
		}
		for i, in := range ins {
			want, _, err := l.Forward(in, exec)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range got[i].Data {
				if v != want.Data[j] {
					t.Fatalf("relu=%v image %d elem %d: batch %v != per-image %v", relu, i, j, v, want.Data[j])
				}
			}
		}
	}
}

// TestNetworkForwardBatchBitExact checks the whole-network batched forward
// pass against the old per-image pipeline (layer-by-layer Forward plus
// pooling), element for element.
func TestNetworkForwardBatchBitExact(t *testing.T) {
	exec := testExec(t)
	rng := rand.New(rand.NewSource(6))
	l1, _ := NewLayer[float64]("c1", ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, true, rng)
	l2, _ := NewLayer[float64]("c2", ConvSpec{InC: 8, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, true, rng)
	net, err := NewNetwork(exec, []*Layer[float64]{l1, l2}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 4
	ins := make([]*Tensor[float64], batch)
	for i := range ins {
		ins[i] = NewTensor[float64](3, 16, 16)
		ins[i].Randomize(rng)
	}
	got, st, err := net.ForwardBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchCalls != 2*batch {
		t.Fatalf("BatchCalls = %d, want %d (2 layers × %d images)", st.BatchCalls, 2*batch, batch)
	}
	for i, in := range ins {
		// The pre-batch per-image pipeline, inlined: layer Forward then pool.
		act := in
		for li, l := range net.Layers {
			out, _, err := l.Forward(act, exec)
			if err != nil {
				t.Fatal(err)
			}
			if net.Pool[li] {
				out = MaxPool2x2(out)
			}
			act = out
		}
		if got[i].C != act.C || got[i].H != act.H || got[i].W != act.W {
			t.Fatalf("image %d dims %dx%dx%d != %dx%dx%d", i, got[i].C, got[i].H, got[i].W, act.C, act.H, act.W)
		}
		for j, v := range got[i].Data {
			if v != act.Data[j] {
				t.Fatalf("image %d elem %d: batch %v != per-image %v", i, j, v, act.Data[j])
			}
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	exec := testExec(t)
	rng := rand.New(rand.NewSource(4))
	l1, _ := NewLayer[float64]("c1", ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, true, rng)
	l2, _ := NewLayer[float64]("c2", ConvSpec{InC: 4, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, true, rng)
	if _, err := NewNetwork(exec, []*Layer[float64]{l1, l2}, []bool{false, false}); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := NewNetwork(exec, []*Layer[float64]{l1}, nil); err == nil {
		t.Fatal("pool flag mismatch accepted")
	}
}
