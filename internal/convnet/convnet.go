// Package convnet implements the paper's motivating workload (Section 1:
// "most computations in the forward pass of a convolutional neural network
// consist of one matrix multiplication per convolutional layer"): tensors,
// im2col lowering, convolution layers executed as CAKE GEMMs through a
// shared executor, and the direct-convolution reference they are verified
// against.
package convnet

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Tensor is a CHW-layout activation map.
type Tensor[T matrix.Scalar] struct {
	C, H, W int
	Data    []T
}

// NewTensor returns a zeroed C×H×W tensor.
func NewTensor[T matrix.Scalar](c, h, w int) *Tensor[T] {
	if c < 1 || h < 1 || w < 1 {
		panic(fmt.Sprintf("convnet: invalid tensor %dx%dx%d", c, h, w))
	}
	return &Tensor[T]{C: c, H: h, W: w, Data: make([]T, c*h*w)}
}

// At returns element (c, y, x).
func (t *Tensor[T]) At(c, y, x int) T { return t.Data[(c*t.H+y)*t.W+x] }

// Set assigns element (c, y, x).
func (t *Tensor[T]) Set(c, y, x int, v T) { t.Data[(c*t.H+y)*t.W+x] = v }

// Randomize fills the tensor with uniform values in [-1, 1).
func (t *Tensor[T]) Randomize(rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = T(2*rng.Float64() - 1)
	}
}

// AsMatrix views the tensor as a C × (H·W) matrix sharing storage.
func (t *Tensor[T]) AsMatrix() *matrix.Matrix[T] {
	return matrix.FromSlice(t.C, t.H*t.W, t.Data)
}

// ConvSpec describes a 2D convolution.
type ConvSpec struct {
	InC, OutC int
	KH, KW    int // kernel height/width
	Stride    int
	Pad       int
}

// Validate reports the first problem with the specification.
func (s ConvSpec) Validate() error {
	switch {
	case s.InC < 1 || s.OutC < 1:
		return fmt.Errorf("convnet: channels %d->%d", s.InC, s.OutC)
	case s.KH < 1 || s.KW < 1:
		return fmt.Errorf("convnet: kernel %dx%d", s.KH, s.KW)
	case s.Stride < 1:
		return fmt.Errorf("convnet: stride %d", s.Stride)
	case s.Pad < 0:
		return fmt.Errorf("convnet: pad %d", s.Pad)
	default:
		return nil
	}
}

// OutDims returns the output spatial dimensions for an input of h×w.
func (s ConvSpec) OutDims(h, w int) (oh, ow int) {
	oh = (h+2*s.Pad-s.KH)/s.Stride + 1
	ow = (w+2*s.Pad-s.KW)/s.Stride + 1
	return
}

// Im2Col lowers in to a patch matrix of (InC·KH·KW) × (OH·OW): one column
// per output position, so conv = weights × patches (the per-layer GEMM of
// the paper's introduction).
func Im2Col[T matrix.Scalar](in *Tensor[T], s ConvSpec) (*matrix.Matrix[T], error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if in.C != s.InC {
		return nil, fmt.Errorf("convnet: input has %d channels, spec wants %d", in.C, s.InC)
	}
	oh, ow := s.OutDims(in.H, in.W)
	if oh < 1 || ow < 1 {
		return nil, fmt.Errorf("convnet: kernel %dx%d does not fit input %dx%d", s.KH, s.KW, in.H, in.W)
	}
	out := matrix.New[T](s.InC*s.KH*s.KW, oh*ow)
	for c := 0; c < s.InC; c++ {
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				row := out.Row((c*s.KH+ky)*s.KW + kx)
				for y := 0; y < oh; y++ {
					sy := y*s.Stride + ky - s.Pad
					for x := 0; x < ow; x++ {
						sx := x*s.Stride + kx - s.Pad
						var v T
						if sy >= 0 && sy < in.H && sx >= 0 && sx < in.W {
							v = in.At(c, sy, sx)
						}
						row[y*ow+x] = v
					}
				}
			}
		}
	}
	return out, nil
}

// Layer is one convolution with optional ReLU, weights stored GEMM-ready
// as OutC × (InC·KH·KW).
type Layer[T matrix.Scalar] struct {
	Name    string
	Spec    ConvSpec
	Weights *matrix.Matrix[T]
	ReLU    bool
}

// NewLayer creates a layer with random weights.
func NewLayer[T matrix.Scalar](name string, s ConvSpec, relu bool, rng *rand.Rand) (*Layer[T], error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := matrix.New[T](s.OutC, s.InC*s.KH*s.KW)
	w.Randomize(rng)
	return &Layer[T]{Name: name, Spec: s, Weights: w, ReLU: relu}, nil
}

// Forward runs the layer as an im2col GEMM on the shared CAKE executor.
func (l *Layer[T]) Forward(in *Tensor[T], exec *core.Executor[T]) (*Tensor[T], core.Stats, error) {
	patches, err := Im2Col(in, l.Spec)
	if err != nil {
		return nil, core.Stats{}, err
	}
	oh, ow := l.Spec.OutDims(in.H, in.W)
	out := NewTensor[T](l.Spec.OutC, oh, ow)
	st, err := exec.Gemm(out.AsMatrix(), l.Weights, patches)
	if err != nil {
		return nil, st, err
	}
	if l.ReLU {
		for i, v := range out.Data {
			if v < 0 {
				out.Data[i] = 0
			}
		}
	}
	return out, st, nil
}

// ForwardBatch runs the layer over a batch of images as ONE batched GEMM:
// the im2col patch matrices become the B side of a GemmBatch whose A side is
// the layer's weight matrix repeated — literally the same *Matrix for every
// call — so the executor packs the weights once and serves every image from
// the panel cache. Results are bit-exact with calling Forward per image.
func (l *Layer[T]) ForwardBatch(ins []*Tensor[T], exec *core.Executor[T]) ([]*Tensor[T], core.Stats, error) {
	if len(ins) == 0 {
		return nil, core.Stats{}, fmt.Errorf("convnet: empty image batch")
	}
	outs := make([]*Tensor[T], len(ins))
	cs := make([]*matrix.Matrix[T], len(ins))
	as := make([]*matrix.Matrix[T], len(ins))
	bs := make([]*matrix.Matrix[T], len(ins))
	for i, in := range ins {
		patches, err := Im2Col(in, l.Spec)
		if err != nil {
			return nil, core.Stats{}, err
		}
		oh, ow := l.Spec.OutDims(in.H, in.W)
		outs[i] = NewTensor[T](l.Spec.OutC, oh, ow)
		cs[i] = outs[i].AsMatrix()
		as[i] = l.Weights
		bs[i] = patches
	}
	st, err := exec.GemmBatch(cs, as, bs, false, false)
	if err != nil {
		return nil, st, err
	}
	if l.ReLU {
		for _, out := range outs {
			for i, v := range out.Data {
				if v < 0 {
					out.Data[i] = 0
				}
			}
		}
	}
	return outs, st, nil
}

// DirectConv is the obviously correct reference convolution (no lowering).
func DirectConv[T matrix.Scalar](in *Tensor[T], l *Layer[T]) (*Tensor[T], error) {
	s := l.Spec
	if err := s.Validate(); err != nil {
		return nil, err
	}
	oh, ow := s.OutDims(in.H, in.W)
	out := NewTensor[T](s.OutC, oh, ow)
	for oc := 0; oc < s.OutC; oc++ {
		wrow := l.Weights.Row(oc)
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var acc T
				for ic := 0; ic < s.InC; ic++ {
					for ky := 0; ky < s.KH; ky++ {
						sy := y*s.Stride + ky - s.Pad
						if sy < 0 || sy >= in.H {
							continue
						}
						for kx := 0; kx < s.KW; kx++ {
							sx := x*s.Stride + kx - s.Pad
							if sx < 0 || sx >= in.W {
								continue
							}
							acc += wrow[(ic*s.KH+ky)*s.KW+kx] * in.At(ic, sy, sx)
						}
					}
				}
				if l.ReLU && acc < 0 {
					acc = 0
				}
				out.Set(oc, y, x, acc)
			}
		}
	}
	return out, nil
}

// MaxPool2x2 downsamples by 2 in each spatial dimension (floor semantics).
func MaxPool2x2[T matrix.Scalar](in *Tensor[T]) *Tensor[T] {
	oh, ow := in.H/2, in.W/2
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("convnet: pool input %dx%d too small", in.H, in.W))
	}
	out := NewTensor[T](in.C, oh, ow)
	for c := 0; c < in.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				m := in.At(c, 2*y, 2*x)
				for _, v := range []T{in.At(c, 2*y, 2*x+1), in.At(c, 2*y+1, 2*x), in.At(c, 2*y+1, 2*x+1)} {
					if v > m {
						m = v
					}
				}
				out.Set(c, y, x, m)
			}
		}
	}
	return out
}

// Network is a sequence of conv layers (with optional pooling between).
type Network[T matrix.Scalar] struct {
	Layers []*Layer[T]
	Pool   []bool // pool after layer i
	exec   *core.Executor[T]
}

// NewNetwork wires layers to a shared executor planned for the largest
// layer GEMM.
func NewNetwork[T matrix.Scalar](exec *core.Executor[T], layers []*Layer[T], pool []bool) (*Network[T], error) {
	if len(pool) != len(layers) {
		return nil, fmt.Errorf("convnet: %d layers but %d pool flags", len(layers), len(pool))
	}
	for i := 1; i < len(layers); i++ {
		if layers[i].Spec.InC != layers[i-1].Spec.OutC {
			return nil, fmt.Errorf("convnet: layer %d expects %d channels, previous produces %d",
				i, layers[i].Spec.InC, layers[i-1].Spec.OutC)
		}
	}
	return &Network[T]{Layers: layers, Pool: pool, exec: exec}, nil
}

// Forward runs the whole network on one image, returning the final
// activation and the total GEMM stats. It is the batch-of-one case of
// ForwardBatch (same code path, so single-image and batched inference can
// never drift apart numerically).
func (n *Network[T]) Forward(in *Tensor[T]) (*Tensor[T], core.Stats, error) {
	outs, total, err := n.ForwardBatch([]*Tensor[T]{in})
	if err != nil {
		return nil, total, err
	}
	return outs[0], total, nil
}

// ForwardBatch runs the whole network over a batch of images with one
// batched GEMM per layer: each layer's weights are packed once for the
// entire image batch instead of once per image. Returns the final
// activations (index-aligned with ins) and the total GEMM stats.
func (n *Network[T]) ForwardBatch(ins []*Tensor[T]) ([]*Tensor[T], core.Stats, error) {
	var total core.Stats
	acts := ins
	for i, l := range n.Layers {
		outs, st, err := l.ForwardBatch(acts, n.exec)
		if err != nil {
			return nil, total, fmt.Errorf("convnet: layer %s: %w", l.Name, err)
		}
		total.Add(st)
		if n.Pool[i] {
			for j := range outs {
				outs[j] = MaxPool2x2(outs[j])
			}
		}
		acts = outs
	}
	return acts, total, nil
}
