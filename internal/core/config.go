// Package core implements the CAKE GEMM driver — the paper's primary
// contribution. A matrix multiplication is partitioned into constant-
// bandwidth blocks of shape p·mc × kc × α·p·mc (Section 4.2), the blocks
// are ordered by the K-first schedule of Algorithm 2, and each block is
// executed by p workers ("cores"): every core owns one mc×kc sub-block of
// the A surface, streams the shared B panel, and accumulates its strip of
// the block's partial-C surface, which stays resident in a local buffer
// until its K reduction completes (Figure 6).
package core

import (
	"fmt"
	"math"

	"repro/internal/cbtheory"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// ComputeDim selects the dimension along which the cores of a CB block
// advance (Section 3). The paper presents the N-dimension and notes M and K
// as variants; all three are implemented here.
type ComputeDim int

const (
	// DimN: each core holds one mc×kc A sub-block stationary and sweeps the
	// block's N extent — the paper's primary formulation.
	DimN ComputeDim = iota
	// DimM: the mirror image — each core holds one kc×mc B sub-block and
	// sweeps the block's M extent.
	DimM
	// DimK: cores partition the block's reduction depth, each producing a
	// private partial-C surface that is then summed in local memory.
	DimK
)

func (d ComputeDim) String() string {
	switch d {
	case DimN:
		return "N"
	case DimM:
		return "M"
	default:
		return "K"
	}
}

// OrderAuto lets the driver pick the schedule order from the matrix shape
// (reuse the larger input surface first, Section 2.2).
const OrderAuto schedule.Order = -1

// Config fully determines a CAKE execution.
type Config struct {
	Cores int     // p: worker count, one per simulated core
	MC    int     // per-core A block rows (square block: kc defaults to mc)
	KC    int     // reduction depth per CB block
	Alpha float64 // CB aspect factor α ≥ 1
	MR    int     // register tile rows
	NR    int     // register tile cols
	Dim   ComputeDim
	Order schedule.Order // OrderAuto, schedule.OuterN or schedule.OuterM
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("core: config needs >=1 cores, got %d", c.Cores)
	case c.MR < 1 || c.NR < 1:
		return fmt.Errorf("core: invalid register tile %dx%d", c.MR, c.NR)
	case c.MC < c.MR:
		return fmt.Errorf("core: mc=%d smaller than mr=%d", c.MC, c.MR)
	case c.MC%c.MR != 0:
		return fmt.Errorf("core: mc=%d not a multiple of mr=%d", c.MC, c.MR)
	case c.Dim == DimM && c.MC%c.NR != 0:
		return fmt.Errorf("core: mc=%d not a multiple of nr=%d (required for M-dimension compute)", c.MC, c.NR)
	case c.KC < 1:
		return fmt.Errorf("core: kc=%d", c.KC)
	case c.Alpha < 1:
		return fmt.Errorf("core: alpha=%v < 1", c.Alpha)
	case c.Order != OrderAuto && c.Order != schedule.OuterN && c.Order != schedule.OuterM:
		return fmt.Errorf("core: invalid order %d", c.Order)
	case c.Dim < DimN || c.Dim > DimK:
		return fmt.Errorf("core: invalid compute dimension %d", c.Dim)
	default:
		return nil
	}
}

// Shape returns the CB block geometry this configuration induces.
func (c Config) Shape() cbtheory.Shape {
	return cbtheory.Shape{P: c.Cores, MC: c.MC, KC: c.KC, Alpha: c.Alpha}
}

// BlockDims returns the block extents (blockM, blockK, blockN) in elements.
// For the N and M compute dimensions these follow Section 4.2's
// p·mc × kc × α·p·mc shape (mirrored for DimM); for DimK the reduction
// depth carries the p factor instead.
func (c Config) BlockDims() (bm, bk, bn int) {
	s := c.Shape()
	switch c.Dim {
	case DimN:
		return s.MDim(), s.KDim(), s.NDim()
	case DimM:
		return s.NDim(), s.KDim(), s.MDim()
	default: // DimK
		return c.MC, c.Cores * c.KC, int(c.Alpha * float64(c.MC))
	}
}

// GridFor returns the CB block grid covering an M×K×N computation space.
func (c Config) GridFor(m, k, n int) schedule.Dims {
	bm, bk, bn := c.BlockDims()
	return schedule.Dims{
		Mb: ceilDiv(m, bm),
		Nb: ceilDiv(n, bn),
		Kb: ceilDiv(k, bk),
	}
}

func (c Config) String() string {
	return fmt.Sprintf("cake{p=%d mc=%d kc=%d α=%.3g tile=%dx%d dim=%s}",
		c.Cores, c.MC, c.KC, c.Alpha, c.MR, c.NR, c.Dim)
}

// MaxPlanAlpha caps the aspect factor the planner will select on bandwidth-
// starved platforms; beyond this the local-memory cost of a taller block
// outweighs further external-bandwidth savings.
const MaxPlanAlpha = 16

// Plan derives a Config for multiplying M×K by K×N on the given platform.
//
// Following Section 4.4, the square mc×kc per-core A sub-block is sized to
// the core's private cache (the L2 on the desktops, the L1 on the A53) —
// the same home GOTO uses — so kc is a per-core constant independent of how
// many cores run. The whole CB block (p·mc × kc × α·p·mc) must then pass
// the Section 4.3 LRU rule C + 2(A+B) ≤ S against the shared LLC, which
// caps mc when p is large enough that the α·p²·mc² partial-C surface would
// overflow it. α comes from the platform's DRAM bandwidth via R (Section
// 3.2); α and mc are mutually dependent, so Plan runs the constraints to a
// fixed point. Block dimensions are clamped to the problem so small
// multiplications do not allocate giant buffers.
func Plan(pl *platform.Platform, m, k, n, elemBytes int) (Config, error) {
	if err := pl.Validate(); err != nil {
		return Config{}, err
	}
	if m < 1 || k < 1 || n < 1 {
		return Config{}, fmt.Errorf("core: invalid GEMM dims %dx%dx%d", m, k, n)
	}
	if elemBytes < 1 {
		return Config{}, fmt.Errorf("core: invalid element size %d", elemBytes)
	}
	const mr, nr = 8, 8
	p := pl.Cores
	sElems := float64(pl.LLCBytes) / float64(elemBytes)
	rates := cbtheory.Rates{ClockHz: pl.ClockHz, FlopsPerCycle: pl.FlopsPerCycle, ElemBytes: elemBytes}

	// Per-core constraint: the A sub-block plus streaming headroom fits the
	// private cache (2·mc² ≤ L2 elements), mirroring GOTO's A-block home.
	private := pl.L2Bytes
	if private == 0 {
		private = pl.L1Bytes
	}
	mcPrivate := int(math.Sqrt(float64(private) / float64(elemBytes) / 2))
	mcPrivate -= mcPrivate % mr
	if mcPrivate < mr {
		mcPrivate = mr
	}

	alpha := 1.0
	mc := min(mcPrivate, cbtheory.MaxMCForCache(sElems, p, alpha, mr))
	for i := 0; i < 8; i++ {
		// α for the current kc (= mc); ErrBandwidthBound still yields the
		// capped α — CAKE proceeds bandwidth-bound, as on the ARM A53.
		a, _ := cbtheory.AlphaForBandwidth(rates, pl.DRAMBW, mr, nr, mc, MaxPlanAlpha)
		nmc := min(mcPrivate, cbtheory.MaxMCForCache(sElems, p, a, mr))
		if a == alpha && nmc == mc {
			break
		}
		alpha, mc = a, nmc
	}

	// The reduction depth keeps the private-cache-derived value (it sets
	// the block's arithmetic intensity), clamped to the problem.
	kc := mc
	if kc > k {
		kc = k
	}
	// Even out the block rows: with Mb = ceil(M / (p·mc)) rows, shrink mc
	// so M distributes evenly over Mb·p core strips. Otherwise a final
	// partial block row idles most cores (e.g. M=2304 against a 1760-row
	// block leaves 4 of 10 cores active for a quarter of the work). The
	// A sub-block becomes mc'×kc ≤ mc², still private-cache resident.
	mb := ceilDiv(m, p*mc)
	if even := roundUpMultiple(ceilDiv(m, mb*p), mr); even < mc {
		mc = even
	}
	cfg := Config{
		Cores: p, MC: mc, KC: kc, Alpha: alpha,
		MR: mr, NR: nr, Dim: DimN, Order: OrderAuto,
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("core: planner produced invalid config: %w", err)
	}
	return cfg, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func roundUpMultiple(v, m int) int {
	if v < m {
		return m
	}
	return ceilDiv(v, m) * m
}
