// Resident-operand execution: the pack bypass behind the engine's
// cross-request weight store (internal/engine/resident). A ResidentB is the
// B operand packed once — at registration — into the exact per-block panel
// grid this executor's schedule reads, so every subsequent GEMM against it
// skips PackB/PackBT outright and feeds compute straight from the resident
// buffers. The paper's §4.4 accounting treats the skipped pack as avoided
// DRAM traffic; Stats.ResidentBElems carries it and the executor emits reuse
// spans so traces attribute it per block.
package core

import (
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/packing"
)

// ResidentB holds one B operand packed into the per-CB-block panel grid of
// a specific Config. Cells are immutable after PackResidentB returns and may
// be read by any number of executors concurrently; lifetime (pinning,
// eviction) is the caller's problem — the executor only borrows cells for
// the duration of one GemmResident call.
type ResidentB[T matrix.Scalar] struct {
	layout packing.BGridLayout
	dim    ComputeDim
	kb, nb int   // block-grid extents along K and N
	cells  [][]T // cell (ki, ni) at cells[ki*nb+ni]
	bytes  int64
}

// residentLayout derives the B panel-grid geometry cfg's executors read.
func residentLayout(cfg Config, k, n int) packing.BGridLayout {
	_, bk, bn := cfg.BlockDims()
	strip := 0
	if cfg.Dim == DimK {
		// DimK packs per-core reduction strips at fixed kc-deep offsets
		// (see Executor.grow); the other schedules read one contiguous
		// PackB image per block.
		strip = cfg.KC
	}
	return packing.BGridLayout{K: k, N: n, BK: bk, BN: bn, Strip: strip, NR: cfg.NR}
}

// PackResidentB packs the logical K×N operand b into cfg's panel grid. When
// transB, b stores Bᵀ (N×K) and the transposed gather happens here, once —
// serving GEMMs against the result never pay it again.
func PackResidentB[T matrix.Scalar](cfg Config, b *matrix.Matrix[T], transB bool) (*ResidentB[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k, n := b.Rows, b.Cols
	if transB {
		k, n = n, k
	}
	l := residentLayout(cfg, k, n)
	if err := l.Validate(); err != nil {
		return nil, err
	}
	kb, nb := l.Grid()
	rb := &ResidentB[T]{layout: l, dim: cfg.Dim, kb: kb, nb: nb}
	var zero T
	elem := int64(unsafe.Sizeof(zero))
	rb.cells = make([][]T, kb*nb)
	for ki := 0; ki < kb; ki++ {
		for ni := 0; ni < nb; ni++ {
			cell := make([]T, l.CellElems(ki, ni))
			packing.PackBCell(cell, b, l, ki, ni, transB)
			rb.cells[ki*nb+ni] = cell
			rb.bytes += int64(len(cell)) * elem
		}
	}
	return rb, nil
}

// Dims returns the logical (untransposed) operand extents.
func (rb *ResidentB[T]) Dims() (k, n int) { return rb.layout.K, rb.layout.N }

// Bytes returns the resident footprint of the packed panels — what the
// store's byte budget charges for this operand.
func (rb *ResidentB[T]) Bytes() int64 { return rb.bytes }

// CompatibleWith reports whether an executor running cfg reads exactly the
// geometry this operand was packed in. A mismatch is a caller bug (operand
// packed for one tier, dispatched to another), surfaced as an error rather
// than a wrong product.
func (rb *ResidentB[T]) CompatibleWith(cfg Config) error {
	want := residentLayout(cfg, rb.layout.K, rb.layout.N)
	if want != rb.layout || cfg.Dim != rb.dim {
		return fmt.Errorf("core: resident B packed for layout %+v (dim %d), executor needs %+v (dim %d)",
			rb.layout, rb.dim, want, cfg.Dim)
	}
	return nil
}

// cell returns the packed buffer of block (ki, ni).
func (rb *ResidentB[T]) cell(ki, ni int) []T { return rb.cells[ki*rb.nb+ni] }

// residentCell resolves the executor's resident operand (if any) to the
// packed cell the given block reads; nil on the fresh-pack path. The cell's
// internal offsets are identical to what packBShared/packBSlice would have
// produced in e.packB[...], so compute code is oblivious to the source.
func (e *Executor[T]) residentCell(coord obs.Block) []T {
	if e.resB == nil {
		return nil
	}
	return e.resB.cell(int(coord.K), int(coord.N))
}

// GemmResident computes C = α·op(A)×B + β·C against a pre-packed resident B,
// skipping B packing entirely: blocks read panel cells straight out of rb.
// Results are bit-exact with GemmScaled over the same operand — the strip
// decomposition, offsets and accumulation order are unchanged, only the
// bytes' provenance differs.
func (e *Executor[T]) GemmResident(c, a *matrix.Matrix[T], rb *ResidentB[T], transA bool, alpha, beta T) (Stats, error) {
	if rb == nil {
		return Stats{}, errors.New("core: GemmResident requires a resident B operand")
	}
	if err := rb.CompatibleWith(e.cfg); err != nil {
		return Stats{}, err
	}
	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	bk, bn := rb.Dims()
	if k != bk || c.Rows != m || c.Cols != bn {
		return Stats{}, fmt.Errorf("core: invalid GEMM dims C[%dx%d] = op(A)[%dx%d] x residentB[%dx%d]",
			c.Rows, c.Cols, m, k, bk, bn)
	}
	if !e.inUse.CompareAndSwap(false, true) {
		return Stats{}, ErrInUse
	}
	defer e.inUse.Store(false)
	e.transA, e.transB, e.alpha = transA, false, alpha
	e.resB = rb
	defer func() { e.resB = nil }()
	return e.run(c, a, nil, m, k, bn, alpha, beta)
}
