package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/packing"
	"repro/internal/pool"
	"repro/internal/schedule"
)

// Stats summarises one CAKE GEMM execution.
type Stats struct {
	Grid         schedule.Dims  // CB block grid
	Order        schedule.Order // resolved schedule order
	Blocks       int            // blocks executed
	Pipelined    bool           // executed by the double-buffered pipeline
	PackedAElems int64          // elements packed from A
	PackedBElems int64          // elements packed from B
	ReusedAElems int64          // A elements served from an already-packed panel
	ReusedBElems int64          // B elements served from an already-packed panel
	// ResidentBElems counts B elements served from a pre-packed resident
	// operand (GemmResident): pack traffic the resident store avoided, kept
	// separate from ReusedBElems so per-call panel-cache hits and
	// cross-request residency are attributable individually (§4.4).
	ResidentBElems int64
	UnpackCElems   int64 // elements accumulated back into C

	// Phase timings (Section 5.2.1: packing overhead is included in all of
	// the paper's measurements and can dominate for skewed shapes).
	PackNanos    int64 // packing A and B, zeroing and unpacking C
	ComputeNanos int64 // macro-kernel execution
	OverlapNanos int64 // wall time pack jobs ran concurrently with compute

	// Batch aggregation (GemmBatchScaled and friends): BatchCalls is how many
	// GEMM calls were folded into this Stats (0 for single-call entry points);
	// SharedBPacks counts the calls after the first that were served against a
	// B operand shared with their predecessor, i.e. calls whose B pack the
	// batch-local panel reuse could skip. The elements actually skipped appear
	// in ReusedBElems.
	BatchCalls   int
	SharedBPacks int
}

// Add folds another execution's counters into s — the batch and multi-layer
// aggregation primitive. Counts and phase times sum; Grid, Order and
// Pipelined describe the latest run folded in.
func (s *Stats) Add(o Stats) {
	s.Grid, s.Order, s.Pipelined = o.Grid, o.Order, o.Pipelined
	s.Blocks += o.Blocks
	s.PackedAElems += o.PackedAElems
	s.PackedBElems += o.PackedBElems
	s.ReusedAElems += o.ReusedAElems
	s.ReusedBElems += o.ReusedBElems
	s.ResidentBElems += o.ResidentBElems
	s.UnpackCElems += o.UnpackCElems
	s.PackNanos += o.PackNanos
	s.ComputeNanos += o.ComputeNanos
	s.OverlapNanos += o.OverlapNanos
	s.BatchCalls += o.BatchCalls
	s.SharedBPacks += o.SharedBPacks
}

// PackShare returns the fraction of measured time spent moving data
// (packing plus C block management) rather than computing.
func (s Stats) PackShare() float64 {
	total := s.PackNanos + s.ComputeNanos
	if total == 0 {
		return 0
	}
	return float64(s.PackNanos) / float64(total)
}

// OverlapShare returns the fraction of pack time that was hidden under
// compute by the pipeline, clamped to [0, 1] — per-stage overlap windows
// can over-count when several pack jobs straddle one compute window, and a
// run with no packing has nothing to hide.
func (s Stats) OverlapShare() float64 {
	if s.PackNanos <= 0 || s.OverlapNanos <= 0 {
		return 0
	}
	if s.OverlapNanos >= s.PackNanos {
		return 1
	}
	return float64(s.OverlapNanos) / float64(s.PackNanos)
}

// Option adjusts executor behaviour beyond the numeric Config.
type Option func(*execOptions)

type execOptions struct {
	pipeline   bool
	panelSlots int
	rec        *obs.Recorder
}

// WithPipeline enables or disables the double-buffered pack/compute
// pipeline (enabled by default). Disabling it restores the strictly
// synchronous pack → barrier → compute executor — useful as the baseline of
// an A/B comparison.
func WithPipeline(on bool) Option { return func(o *execOptions) { o.pipeline = on } }

// WithPanelCache sets how many packed panels per operand the pipelined
// executor keeps resident (minimum 2, the ping-pong pair). Extra slots form
// a bounded cache of recently packed panels that the K-first schedule can
// hit when it revisits an A or B panel on small block grids. Ignored when
// pipelining is disabled.
func WithPanelCache(slots int) Option {
	return func(o *execOptions) {
		if slots > o.panelSlots {
			o.panelSlots = slots
		}
	}
}

// WithTrace attaches a span recorder: every pack/compute/unpack unit and
// every panel-cache hit is recorded with worker id, block coordinates and
// bytes moved, and the executor's pool jobs run under pprof labels
// ({executor=cake, phase=...}). A nil recorder (the default) keeps the hot
// path on a single predictable branch and records nothing.
func WithTrace(rec *obs.Recorder) Option { return func(o *execOptions) { o.rec = rec } }

// Executor runs CAKE GEMMs with a fixed configuration, reusing its worker
// pool and packing buffers across calls (the drop-in-library usage of
// Section 5: one executor per process, many multiplications).
type Executor[T matrix.Scalar] struct {
	cfg      Config
	kern     kernel.Kernel[T]
	pool     *pool.Pool
	ownPool  bool
	pipeline bool
	slots    int // packing-buffer slots per operand (1 sync, ≥2 pipelined)
	scratch  []*kernel.Scratch[T]

	// Packing buffers, one ring of slots per operand. The synchronous path
	// uses slot 0 only; the pipeline ping-pongs across slots and tracks the
	// logical panel each slot holds so repacks of a revisited panel can be
	// skipped (keys are per-call, see panelKey).
	packA, packB [][]T
	aKeys, bKeys []panelKey
	aTick, bTick []int64
	clock        int64

	bufC     []T
	partials [][]T // DimK: per-core private partial-C surfaces

	// Observability: rec is nil unless WithTrace attached a recorder; the
	// label contexts are prebuilt per phase so pool jobs are tagged without
	// per-call allocation. curBlk is the block the synchronous path (and
	// the pipeline's orchestrator-side C management) is currently running —
	// async pack spans carry their stage's own coordinates instead.
	rec                          *obs.Recorder
	met                          *obs.ExecMetrics // phase-latency histograms; refreshed per Gemm, nil when metrics are off
	elemBytes                    int64
	packCtx, computeCtx, moveCtx context.Context
	curBlk                       obs.Block

	// Per-call operand orientation and scaling (set by GemmScaled for the
	// duration of one multiplication). The executor is single-flight: inUse
	// guards the packing buffers and per-call fields, and a concurrent Gemm
	// call fails fast with ErrInUse instead of silently corrupting them.
	// Callers that need concurrency lease one executor per in-flight call
	// (see internal/engine).
	inUse          atomic.Bool
	transA, transB bool
	alpha          T
	// keepA/keepB let a batch loop (GemmBatchScaled) carry an operand's
	// panel keys across calls: when set, invalidateSlots preserves that
	// operand's keys so panels packed for the previous call are reused. Only
	// sound when the kept operand (pointer, transpose, and for A the α fold)
	// is identical to the previous call's — the batch loop enforces that via
	// pointer equality. Single-call entry points leave both false, restoring
	// the per-call key scope.
	keepA, keepB bool
	// resB, when non-nil, feeds the B side of the in-flight call from
	// pre-packed resident panels instead of packing (see GemmResident); the
	// fresh-pack entry points leave it nil.
	resB *ResidentB[T]
}

// ErrInUse is returned by GemmScaled (and the entry points layered on it)
// when a Gemm is started on an executor that is already running one.
// Executors are single-flight by design — packing buffers, panel keys and
// per-call scaling state are owned by the in-flight call — so concurrent
// callers must use separate executors (internal/engine leases them).
var ErrInUse = errors.New("core: executor is already running a GEMM (single-flight; use one executor per in-flight call, e.g. via the engine)")

// NewExecutor validates cfg and prepares an executor. If p is nil the
// executor creates (and owns) a pool with cfg.Cores workers; otherwise p
// must have at least cfg.Cores workers.
func NewExecutor[T matrix.Scalar](cfg Config, p *pool.Pool, opts ...Option) (*Executor[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := execOptions{pipeline: true, panelSlots: 2}
	for _, opt := range opts {
		opt(&o)
	}
	e := &Executor[T]{cfg: cfg, kern: kernel.Best[T](cfg.MR, cfg.NR), pipeline: o.pipeline}
	var zero T
	e.elemBytes = int64(unsafe.Sizeof(zero))
	if o.rec != nil {
		e.rec = o.rec
		e.packCtx = obs.LabelCtx("cake", obs.PhasePack)
		e.computeCtx = obs.LabelCtx("cake", obs.PhaseCompute)
		e.moveCtx = obs.LabelCtx("cake", obs.PhaseUnpack)
	}
	e.slots = 1
	if e.pipeline {
		e.slots = max(2, o.panelSlots)
	}
	if p == nil {
		e.pool = pool.New(cfg.Cores)
		e.ownPool = true
	} else {
		if p.Workers() < cfg.Cores {
			return nil, fmt.Errorf("core: pool has %d workers, config needs %d", p.Workers(), cfg.Cores)
		}
		e.pool = p
	}
	e.scratch = make([]*kernel.Scratch[T], e.pool.Workers())
	for i := range e.scratch {
		e.scratch[i] = kernel.NewScratch[T](cfg.MR, cfg.NR)
	}
	return e, nil
}

// Close releases the executor's pool if it owns one.
func (e *Executor[T]) Close() {
	if e.ownPool {
		e.pool.Close()
		e.ownPool = false
	}
}

// Config returns the executor's configuration.
func (e *Executor[T]) Config() Config { return e.cfg }

// now returns the wall clock for span timing, or 0 when tracing is off so
// untraced executions never touch the clock.
func (e *Executor[T]) now() int64 {
	if e.rec == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// span records one phase execution that started at t0 (from now()) on the
// given worker lane; bytes is the DRAM traffic the unit moved. A single
// branch when tracing is off.
func (e *Executor[T]) span(worker int, ph obs.Phase, blk obs.Block, t0, bytes int64) {
	if e.rec == nil {
		return
	}
	dur := time.Now().UnixNano() - t0
	e.rec.Record(worker, obs.Span{
		StartNs: t0, DurNs: dur,
		Bytes: bytes, Block: blk, Phase: ph,
	})
	if e.met != nil {
		e.met.ObservePhase(ph, dur)
	}
}

// Gemm computes C += A×B using CB blocks and the K-first schedule.
func (e *Executor[T]) Gemm(c, a, b *matrix.Matrix[T]) (Stats, error) {
	return e.GemmT(c, a, b, false, false)
}

// GemmT computes C += op(A)×op(B) where op transposes its operand when the
// corresponding flag is set: A is stored K×M when transA, B is stored N×K
// when transB. Transposition happens during packing (the packed panel
// layout is storage-order oblivious), so there is no extra copy.
func (e *Executor[T]) GemmT(c, a, b *matrix.Matrix[T], transA, transB bool) (Stats, error) {
	return e.GemmScaled(c, a, b, transA, transB, 1, 1)
}

// GemmScaled computes the full BLAS gemm update C = α·op(A)×op(B) + β·C.
// β scales C once up front (β = 0 clears it without reading); α is folded
// into the packed A panels, so the hot loops are untouched when α = 1.
func (e *Executor[T]) GemmScaled(c, a, b *matrix.Matrix[T], transA, transB bool, alpha, beta T) (Stats, error) {
	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if transB {
		kb, n = n, kb
	}
	if k != kb || c.Rows != m || c.Cols != n {
		return Stats{}, fmt.Errorf("core: invalid GEMM dims C[%dx%d] = op(A)[%dx%d] x op(B)[%dx%d]",
			c.Rows, c.Cols, m, k, kb, n)
	}
	if !e.inUse.CompareAndSwap(false, true) {
		return Stats{}, ErrInUse
	}
	defer e.inUse.Store(false)
	e.transA, e.transB, e.alpha = transA, transB, alpha
	e.resB = nil
	return e.run(c, a, b, m, k, n, alpha, beta)
}

// run executes one admitted multiplication. Dimensions are pre-validated and
// the per-call fields (transposes, α, resB) are set by the entry points;
// b is nil on the resident path, where e.resB supplies every B panel and no
// B packing code runs.
func (e *Executor[T]) run(c, a, b *matrix.Matrix[T], m, k, n int, alpha, beta T) (Stats, error) {
	if e.rec != nil {
		// Traced spans double as phase-latency histogram samples when the
		// metrics registry is live; cache the lookup for the whole call.
		e.met = obs.MetricsFor("cake")
	}

	if beta != 1 {
		chunks := min(e.cfg.Cores, max(1, m))
		e.pool.ForStatic(chunks, func(_, s int) {
			r0, rows := chunkSpan(s, chunks, m)
			cv := c.View(r0, 0, rows, n)
			if beta == 0 {
				cv.Zero()
			} else {
				cv.Scale(beta)
			}
		})
	}
	if alpha == 0 {
		return Stats{}, nil
	}

	order := e.cfg.Order
	if order == OrderAuto {
		order = schedule.OrderFor(m, n)
	}
	grid := e.cfg.GridFor(m, k, n)
	seq := schedule.KFirst(grid, order)
	e.grow(m, k, n)

	st := Stats{Grid: grid, Order: order, Blocks: len(seq), Pipelined: e.pipeline}
	if e.pipeline {
		e.runPipelined(c, a, b, seq, &st, m, k, n)
		e.accountGemm(st)
		return st, nil
	}
	bm, bk, bn := e.cfg.BlockDims()
	for i, cur := range seq {
		e.curBlk = obs.Block{M: int32(cur.M), K: int32(cur.K), N: int32(cur.N)}
		m0, mEff := span(cur.M, bm, m)
		k0, kEff := span(cur.K, bk, k)
		n0, nEff := span(cur.N, bn, n)
		runStart := i == 0 || seq[i-1].M != cur.M || seq[i-1].N != cur.N
		runEnd := i == len(seq)-1 || seq[i+1].M != cur.M || seq[i+1].N != cur.N

		cBlock := matrix.FromSlice(mEff, nEff, e.bufC[:mEff*nEff])
		if runStart {
			t0 := time.Now()
			e.zeroBlock(cBlock)
			st.PackNanos += time.Since(t0).Nanoseconds()
		}
		switch e.cfg.Dim {
		case DimN:
			e.blockDimN(a, b, cBlock, &st, m0, mEff, k0, kEff, n0, nEff)
		case DimM:
			e.blockDimM(a, b, cBlock, &st, m0, mEff, k0, kEff, n0, nEff)
		default:
			e.blockDimK(a, b, cBlock, &st, m0, mEff, k0, kEff, n0, nEff)
		}
		st.PackedAElems += int64(mEff) * int64(kEff)
		bElems := int64(kEff) * int64(nEff)
		if e.resB != nil {
			st.ResidentBElems += bElems
			e.reuseEvent(e.curBlk, bElems)
		} else {
			st.PackedBElems += bElems
		}
		if runEnd {
			t0 := time.Now()
			e.unpack(c.View(m0, n0, mEff, nEff), cBlock)
			st.PackNanos += time.Since(t0).Nanoseconds()
			st.UnpackCElems += int64(mEff) * int64(nEff)
		}
	}
	e.accountGemm(st)
	return st, nil
}

// accountGemm folds one finished GEMM into the global obs metrics registry
// (a single atomic load when metrics are disabled).
func (e *Executor[T]) accountGemm(st Stats) {
	obs.AccountGemm("cake", st.Blocks,
		(st.PackedAElems+st.PackedBElems)*e.elemBytes,
		(st.ReusedAElems+st.ReusedBElems+st.ResidentBElems)*e.elemBytes,
		st.PackNanos, st.ComputeNanos, st.OverlapNanos)
}

// span returns the offset and clipped extent of block index idx.
func span(idx, blockDim, total int) (off, eff int) {
	off = idx * blockDim
	eff = blockDim
	if off+eff > total {
		eff = total - off
	}
	return
}

// grow (re)allocates packing buffers for the worst-case block of an M×K×N
// problem. Capacities are kept across calls; only growth reallocates.
func (e *Executor[T]) grow(m, k, n int) {
	bm, bk, bn := e.cfg.BlockDims()
	bm, bk, bn = min(bm, roundUpMultiple(m, e.cfg.MR)), min(bk, k), min(bn, roundUpMultiple(n, e.cfg.NR))
	var needA, needB int
	if e.cfg.Dim == DimK {
		// DimK packs per-core slices at fixed offsets of one full kc-deep
		// slice each, so capacity is strips × full-slice size even when the
		// final slice is shallower.
		strips := ceilDiv(bk, e.cfg.KC)
		needA = strips * packing.PackedASize(bm, e.cfg.KC, e.cfg.MR)
		needB = strips * packing.PackedBSize(e.cfg.KC, bn, e.cfg.NR)
	} else {
		needA = packing.PackedASize(bm, bk, e.cfg.MR)
		needB = packing.PackedBSize(bk, bn, e.cfg.NR)
	}
	if e.resB != nil {
		// Resident calls never write B buffers; keeping their logical length
		// zero makes any stray B-pack reachable from this call an immediate
		// bounds panic instead of silent wasted memory.
		needB = 0
	}
	needC := bm * bn
	if len(e.packA) != e.slots {
		e.packA = make([][]T, e.slots)
		e.packB = make([][]T, e.slots)
		e.aKeys = make([]panelKey, e.slots)
		e.bKeys = make([]panelKey, e.slots)
		e.aTick = make([]int64, e.slots)
		e.bTick = make([]int64, e.slots)
	}
	// Re-slice every buffer to this problem's need, not its capacity: after
	// a huge call the slots keep their capacity for reuse, but the logical
	// lengths shrink so pipeline stages (and bugs in offset arithmetic)
	// can never touch stale tail capacity left over from the larger run.
	for s := 0; s < e.slots; s++ {
		// A reallocation discards the slot's packed content, so its panel key
		// must die with it — a kept key (batch keepA/keepB) pointing at a
		// fresh buffer would serve garbage as a cache hit.
		if cap(e.packA[s]) < needA {
			e.packA[s] = make([]T, needA)
			e.aKeys[s] = panelKey{}
		}
		if cap(e.packB[s]) < needB {
			e.packB[s] = make([]T, needB)
			e.bKeys[s] = panelKey{}
		}
		e.packA[s] = e.packA[s][:needA]
		e.packB[s] = e.packB[s][:needB]
	}
	if cap(e.bufC) < needC {
		e.bufC = make([]T, needC)
	}
	e.bufC = e.bufC[:needC]
	if e.cfg.Dim == DimK {
		if len(e.partials) != e.cfg.Cores {
			e.partials = make([][]T, e.cfg.Cores)
		}
		for i := range e.partials {
			if cap(e.partials[i]) < needC {
				e.partials[i] = make([]T, needC)
			}
			e.partials[i] = e.partials[i][:needC]
		}
	}
}

// packASlice packs rows [m0, m0+rows) × depth [k0, k0+depth) of the logical
// A into dst, honouring the per-call transpose flag. α is folded into the
// packing pass itself, so scaled GEMMs touch the panel once.
func (e *Executor[T]) packASlice(dst []T, a *matrix.Matrix[T], m0, rows, k0, depth int) []T {
	if e.transA {
		return packing.PackAT(dst, a.View(k0, m0, depth, rows), e.cfg.MR, e.alpha)
	}
	return packing.PackA(dst, a.View(m0, k0, rows, depth), e.cfg.MR, e.alpha)
}

// packBSlice packs depth [k0, k0+depth) × cols [n0, n0+cols) of the logical
// B into dst, honouring the per-call transpose flag.
func (e *Executor[T]) packBSlice(dst []T, b *matrix.Matrix[T], k0, depth, n0, cols int) []T {
	if e.transB {
		return packing.PackBT(dst, b.View(n0, k0, cols, depth), e.cfg.NR)
	}
	return packing.PackB(dst, b.View(k0, n0, depth, cols), e.cfg.NR)
}

// zeroBlock clears the resident partial-C buffer at the start of a K run,
// split across cores by row chunks. The buffer is local memory, so no
// spans are recorded — only the pprof label marks the time.
func (e *Executor[T]) zeroBlock(cBlock *matrix.Matrix[T]) {
	chunks := e.rowChunks(cBlock.Rows)
	e.pool.ForStaticLabeled(e.moveCtx, chunks, func(_, s int) {
		r0, rows := chunkSpan(s, chunks, cBlock.Rows)
		cBlock.View(r0, 0, rows, cBlock.Cols).Zero()
	})
}

// unpack folds the completed block result into the output matrix — a
// read-modify-write of the DRAM-resident C region, recorded as unpack
// spans carrying 2× the chunk's bytes.
func (e *Executor[T]) unpack(dst, cBlock *matrix.Matrix[T]) {
	chunks := e.rowChunks(cBlock.Rows)
	e.pool.ForStaticLabeled(e.moveCtx, chunks, func(core, s int) {
		u0 := e.now()
		r0, rows := chunkSpan(s, chunks, cBlock.Rows)
		packing.AddInto(dst.View(r0, 0, rows, dst.Cols), cBlock.View(r0, 0, rows, cBlock.Cols))
		e.span(core, obs.PhaseUnpack, e.curBlk, u0, 2*int64(rows)*int64(cBlock.Cols)*e.elemBytes)
	})
}

func (e *Executor[T]) rowChunks(rows int) int {
	return min(e.cfg.Cores, max(1, rows))
}

// chunkSpan splits rows into nearly equal contiguous chunks.
func chunkSpan(idx, chunks, rows int) (off, cnt int) {
	base, rem := rows/chunks, rows%chunks
	off = idx*base + min(idx, rem)
	cnt = base
	if idx < rem {
		cnt++
	}
	return
}

// blockDimN executes one CB block with cores advancing along N (Figure 6):
// core s owns the A strip of rows [s·mc, (s+1)·mc), the packed B panel is
// shared, and each core computes its strip of the resident C block.
func (e *Executor[T]) blockDimN(a, b, cBlock *matrix.Matrix[T], st *Stats, m0, mEff, k0, kEff, n0, nEff int) {
	mc := e.cfg.MC
	strips := ceilDiv(mEff, mc)

	// Pack per-core A sub-blocks in parallel; strip s's panels start at
	// s·mc·kEff because mc is a multiple of mr.
	t0 := time.Now()
	e.pool.ForStaticLabeled(e.packCtx, strips, func(core, s int) {
		u0 := e.now()
		r0 := s * mc
		rows := min(mc, mEff-r0)
		e.packASlice(e.packA[0][r0*kEff:], a, m0+r0, rows, k0, kEff)
		e.span(core, obs.PhasePack, e.curBlk, u0, int64(rows)*int64(kEff)*e.elemBytes)
	})
	bp := e.residentCell(e.curBlk)
	if bp == nil {
		e.packBShared(b, k0, kEff, n0, nEff)
		bp = e.packB[0]
	}
	st.PackNanos += time.Since(t0).Nanoseconds()

	t0 = time.Now()
	bp = bp[:packing.PackedBSize(kEff, nEff, e.cfg.NR)]
	e.pool.ForStaticLabeled(e.computeCtx, strips, func(core, s int) {
		u0 := e.now()
		r0 := s * mc
		rows := min(mc, mEff-r0)
		ap := e.packA[0][r0*kEff : r0*kEff+packing.PackedASize(rows, kEff, e.cfg.MR)]
		packing.Macro(e.kern, kEff, ap, bp, cBlock.View(r0, 0, rows, nEff), e.scratch[core])
		e.span(core, obs.PhaseCompute, e.curBlk, u0, 0)
	})
	st.ComputeNanos += time.Since(t0).Nanoseconds()
}

// blockDimM is the mirror: core s owns the B strip of columns
// [s·mc, (s+1)·mc), the packed A panel is shared, and each core computes
// its column strip of the resident C block.
func (e *Executor[T]) blockDimM(a, b, cBlock *matrix.Matrix[T], st *Stats, m0, mEff, k0, kEff, n0, nEff int) {
	nc := e.cfg.MC // square per-core block: nc = mc
	strips := ceilDiv(nEff, nc)

	t0 := time.Now()
	e.packAShared(a, m0, mEff, k0, kEff)
	bSrc := e.residentCell(e.curBlk)
	if bSrc == nil {
		e.pool.ForStaticLabeled(e.packCtx, strips, func(core, s int) {
			u0 := e.now()
			c0 := s * nc
			cols := min(nc, nEff-c0)
			e.packBSlice(e.packB[0][c0*kEff:], b, k0, kEff, n0+c0, cols)
			e.span(core, obs.PhasePack, e.curBlk, u0, int64(kEff)*int64(cols)*e.elemBytes)
		})
		bSrc = e.packB[0]
	}
	st.PackNanos += time.Since(t0).Nanoseconds()

	t0 = time.Now()
	ap := e.packA[0][:packing.PackedASize(mEff, kEff, e.cfg.MR)]
	e.pool.ForStaticLabeled(e.computeCtx, strips, func(core, s int) {
		u0 := e.now()
		c0 := s * nc
		cols := min(nc, nEff-c0)
		bp := bSrc[c0*kEff : c0*kEff+packing.PackedBSize(kEff, cols, e.cfg.NR)]
		packing.Macro(e.kern, kEff, ap, bp, cBlock.View(0, c0, mEff, cols), e.scratch[core])
		e.span(core, obs.PhaseCompute, e.curBlk, u0, 0)
	})
	st.ComputeNanos += time.Since(t0).Nanoseconds()
}

// blockDimK partitions the block's reduction depth: core s multiplies the
// kc-deep slice [s·kc, (s+1)·kc) into a private partial-C surface; the
// partials are then summed into the resident block in parallel row chunks —
// the in-place local accumulation the paper highlights for the K variant.
func (e *Executor[T]) blockDimK(a, b, cBlock *matrix.Matrix[T], st *Stats, m0, mEff, k0, kEff, n0, nEff int) {
	kc := e.cfg.KC
	strips := ceilDiv(kEff, kc)
	aSlice := packing.PackedASize(mEff, kc, e.cfg.MR)
	bSlice := packing.PackedBSize(kc, nEff, e.cfg.NR)

	t0 := time.Now()
	rbp := e.residentCell(e.curBlk)
	e.pool.ForStaticLabeled(e.computeCtx, strips, func(core, s int) {
		u0 := e.now()
		kk0 := s * kc
		depth := min(kc, kEff-kk0)
		ap := e.packASlice(e.packA[0][s*aSlice:], a, m0, mEff, k0+kk0, depth)
		var bp []T
		packed := int64(mEff) * int64(depth)
		if rbp != nil {
			bp = rbp[s*bSlice : s*bSlice+packing.PackedBSize(depth, nEff, e.cfg.NR)]
		} else {
			bp = e.packBSlice(e.packB[0][s*bSlice:], b, k0+kk0, depth, n0, nEff)
			packed += int64(nEff) * int64(depth)
		}
		e.span(core, obs.PhasePack, e.curBlk, u0, packed*e.elemBytes)
		u0 = e.now()
		part := matrix.FromSlice(mEff, nEff, e.partials[core][:mEff*nEff])
		part.Zero()
		packing.Macro(e.kern, depth, ap, bp, part, e.scratch[core])
		e.span(core, obs.PhaseCompute, e.curBlk, u0, 0)
	})
	st.ComputeNanos += time.Since(t0).Nanoseconds()

	// Reduce private partials into the resident C block. ForStatic maps
	// strip s to core s (strips <= cores), so partials[s] holds slice s.
	t0 = time.Now()
	chunks := e.rowChunks(mEff)
	e.pool.ForStatic(chunks, func(_, ch int) {
		r0, rows := chunkSpan(ch, chunks, mEff)
		for s := 0; s < strips; s++ {
			src := matrix.FromSlice(mEff, nEff, e.partials[s][:mEff*nEff])
			packing.AddInto(cBlock.View(r0, 0, rows, nEff), src.View(r0, 0, rows, nEff))
		}
	})
	st.PackNanos += time.Since(t0).Nanoseconds()
}

// packBShared packs the block's kEff×nEff B panel, splitting the nr-column
// panels across cores.
func (e *Executor[T]) packBShared(b *matrix.Matrix[T], k0, kEff, n0, nEff int) {
	nr := e.cfg.NR
	panels := ceilDiv(nEff, nr)
	chunks := min(e.cfg.Cores, panels)
	perChunk := ceilDiv(panels, chunks)
	e.pool.ForStaticLabeled(e.packCtx, chunks, func(core, ch int) {
		p0 := ch * perChunk
		pn := min(perChunk, panels-p0)
		if pn <= 0 {
			return
		}
		u0 := e.now()
		c0 := p0 * nr
		cols := min(pn*nr, nEff-c0)
		e.packBSlice(e.packB[0][c0*kEff:], b, k0, kEff, n0+c0, cols)
		e.span(core, obs.PhasePack, e.curBlk, u0, int64(kEff)*int64(cols)*e.elemBytes)
	})
}

// packAShared packs the block's mEff×kEff A panel, splitting the mr-row
// panels across cores.
func (e *Executor[T]) packAShared(a *matrix.Matrix[T], m0, mEff, k0, kEff int) {
	mr := e.cfg.MR
	panels := ceilDiv(mEff, mr)
	chunks := min(e.cfg.Cores, panels)
	perChunk := ceilDiv(panels, chunks)
	e.pool.ForStaticLabeled(e.packCtx, chunks, func(core, ch int) {
		p0 := ch * perChunk
		pn := min(perChunk, panels-p0)
		if pn <= 0 {
			return
		}
		u0 := e.now()
		r0 := p0 * mr
		rows := min(pn*mr, mEff-r0)
		e.packASlice(e.packA[0][r0*kEff:], a, m0+r0, rows, k0, kEff)
		e.span(core, obs.PhasePack, e.curBlk, u0, int64(rows)*int64(kEff)*e.elemBytes)
	})
}

// Gemm is the convenience one-shot entry point: plan-free execution of
// C += A×B with an explicit configuration.
func Gemm[T matrix.Scalar](c, a, b *matrix.Matrix[T], cfg Config) (Stats, error) {
	return GemmT(c, a, b, cfg, false, false)
}

// GemmT is the one-shot entry point for C += op(A)×op(B).
func GemmT[T matrix.Scalar](c, a, b *matrix.Matrix[T], cfg Config, transA, transB bool) (Stats, error) {
	e, err := NewExecutor[T](cfg, nil)
	if err != nil {
		return Stats{}, err
	}
	defer e.Close()
	return e.GemmT(c, a, b, transA, transB)
}
