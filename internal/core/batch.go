// Batched execution: one single-flight admission, N multiplications. The
// paper's motivating workload (Section 5: DNN inference) multiplies many
// activation matrices against few shared weight matrices; a per-call loop
// pays the executor's fixed costs — single-flight acquisition, buffer
// (re)growth, panel-key invalidation and, above this layer, engine admission
// and leasing — once per multiplication. GemmBatchScaled acquires the
// executor once, then streams the calls through run(). A B operand shared by
// the entire batch (pointer equality) is packed ONCE into the resident panel
// layout and every call is served from it; operands shared only by adjacent
// calls carry their packed panel keys forward instead. GemmBatchResident is
// the resident-store variant: the shared B side comes pre-packed, pinned for
// the whole batch by the caller.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/matrix"
)

// ErrBatchShape is returned when the slices of a batched call disagree in
// length or the batch is empty.
var ErrBatchShape = errors.New("core: batch call slices must be non-empty and of equal length")

// GemmBatch computes C[i] += op(A[i])×op(B[i]) for every i under one
// executor acquisition. See GemmBatchScaled.
func (e *Executor[T]) GemmBatch(cs, as, bs []*matrix.Matrix[T], transA, transB bool) (Stats, error) {
	return e.GemmBatchScaled(cs, as, bs, transA, transB, 1, 1)
}

// GemmBatchScaled computes C[i] = α·op(A[i])×op(B[i]) + β·C[i] for every i.
// The executor is acquired once for the whole batch (a concurrent caller
// sees ErrInUse exactly as for one long call), every call's dimensions are
// validated before any compute starts, and calls execute in order with
// results bit-exact to the equivalent sequence of GemmScaled calls.
//
// When every call reuses the same B matrix (the DNN shared-weights case),
// the batch packs it once into the resident panel layout and serves all N
// calls from it: Stats.PackedBElems carries the one pack, ReusedBElems the
// N−1 elided ones, SharedBPacks the sharing calls. When an operand is shared
// only between adjacent calls, its packed panel keys survive into the next
// call instead (ReusedAElems/ReusedBElems count whatever the panel cache
// could hold onto).
func (e *Executor[T]) GemmBatchScaled(cs, as, bs []*matrix.Matrix[T], transA, transB bool, alpha, beta T) (Stats, error) {
	if len(cs) == 0 || len(as) != len(cs) || len(bs) != len(cs) {
		return Stats{}, fmt.Errorf("%w: len(C)=%d len(A)=%d len(B)=%d", ErrBatchShape, len(cs), len(as), len(bs))
	}
	dims := make([][3]int, len(cs))
	for i := range cs {
		m, k := as[i].Rows, as[i].Cols
		if transA {
			m, k = k, m
		}
		kb, n := bs[i].Rows, bs[i].Cols
		if transB {
			kb, n = n, kb
		}
		if k != kb || cs[i].Rows != m || cs[i].Cols != n {
			return Stats{}, fmt.Errorf("core: invalid GEMM dims in batch call %d: C[%dx%d] = op(A)[%dx%d] x op(B)[%dx%d]",
				i, cs[i].Rows, cs[i].Cols, m, k, kb, n)
		}
		dims[i] = [3]int{m, k, n}
	}
	if !e.inUse.CompareAndSwap(false, true) {
		return Stats{}, ErrInUse
	}
	defer e.inUse.Store(false)

	// One B for the whole batch: the panel cache's few slots cannot hold a
	// multi-block operand across calls, so slot-key carrying alone degrades
	// to repacking every block. Pack the shared operand once into the
	// resident layout — the same bytes the per-call pack would produce, so
	// results stay bit-exact — and serve all N calls from it. (With α = 0
	// the multiply never reads B; skip the pack.)
	sharedB := len(cs) > 1 && alpha != 0
	for i := 1; sharedB && i < len(bs); i++ {
		sharedB = bs[i] == bs[0]
	}
	if sharedB {
		t0 := time.Now()
		rb, err := PackResidentB(e.cfg, bs[0], transB)
		if err != nil {
			return Stats{}, fmt.Errorf("core: batch shared-B pack: %w", err)
		}
		packNanos := time.Since(t0).Nanoseconds()
		agg, err := e.batchResidentLoop(cs, as, rb, transA, alpha, beta)
		agg.BatchCalls = len(cs)
		agg.SharedBPacks = len(cs) - 1
		// Re-bucket the accounting to what physically happened: one real
		// pack (charged to the batch), N−1 packs elided by batch-local
		// reuse; "resident" stays reserved for cross-request residency.
		perCall := agg.ResidentBElems / int64(len(cs))
		agg.PackedBElems += perCall
		agg.ReusedBElems += agg.ResidentBElems - perCall
		agg.ResidentBElems = 0
		agg.PackNanos += packNanos
		if err != nil {
			return agg, err
		}
		return agg, nil
	}

	e.transA, e.transB, e.alpha = transA, transB, alpha
	e.resB = nil
	defer func() { e.keepA, e.keepB = false, false }()

	var agg Stats
	for i := range cs {
		// Panel keys are only meaningful against one operand set; carry an
		// operand's keys forward only when the next call reuses the *same*
		// matrix (identical pointer ⇒ identical packed bytes for identical
		// coordinates — transposes and α are batch-uniform).
		e.keepA = i > 0 && as[i] == as[i-1]
		e.keepB = i > 0 && bs[i] == bs[i-1]
		if e.keepB {
			agg.SharedBPacks++
		}
		st, err := e.run(cs[i], as[i], bs[i], dims[i][0], dims[i][1], dims[i][2], alpha, beta)
		if err != nil {
			return agg, fmt.Errorf("core: batch call %d: %w", i, err)
		}
		agg.Add(st)
	}
	agg.BatchCalls = len(cs)
	return agg, nil
}

// GemmBatchResident computes C[i] = α·op(A[i])×B + β·C[i] for every i, with
// the shared B side served from a pre-packed resident operand for the whole
// batch — the batched form of GemmResident. rb must be compatible with the
// executor's configuration and stay alive (pinned) until the call returns;
// every call's k and n must match rb's dimensions.
func (e *Executor[T]) GemmBatchResident(cs, as []*matrix.Matrix[T], rb *ResidentB[T], transA bool, alpha, beta T) (Stats, error) {
	if len(cs) == 0 || len(as) != len(cs) {
		return Stats{}, fmt.Errorf("%w: len(C)=%d len(A)=%d", ErrBatchShape, len(cs), len(as))
	}
	if rb == nil {
		return Stats{}, fmt.Errorf("core: GemmBatchResident with nil resident operand")
	}
	if err := rb.CompatibleWith(e.cfg); err != nil {
		return Stats{}, err
	}
	rk, rn := rb.Dims()
	for i := range cs {
		m, k := as[i].Rows, as[i].Cols
		if transA {
			m, k = k, m
		}
		if k != rk || cs[i].Rows != m || cs[i].Cols != rn {
			return Stats{}, fmt.Errorf("core: invalid resident GEMM dims in batch call %d: C[%dx%d] = op(A)[%dx%d] x resident B[%dx%d]",
				i, cs[i].Rows, cs[i].Cols, m, k, rk, rn)
		}
	}
	if !e.inUse.CompareAndSwap(false, true) {
		return Stats{}, ErrInUse
	}
	defer e.inUse.Store(false)

	agg, err := e.batchResidentLoop(cs, as, rb, transA, alpha, beta)
	agg.BatchCalls = len(cs)
	agg.SharedBPacks = len(cs) - 1
	return agg, err
}

// batchResidentLoop streams validated batch calls through run() with rb as
// the B side. Callers hold the single-flight guard and have validated every
// call's dimensions against rb.
func (e *Executor[T]) batchResidentLoop(cs, as []*matrix.Matrix[T], rb *ResidentB[T], transA bool, alpha, beta T) (Stats, error) {
	rk, rn := rb.Dims()
	// The resident pack already applied any B transpose, so the loop runs
	// with transB unset regardless of how the caller's B was oriented.
	e.transA, e.transB, e.alpha = transA, false, alpha
	e.resB = rb
	defer func() {
		e.resB = nil
		e.keepA, e.keepB = false, false
	}()

	var agg Stats
	for i := range cs {
		// The resident path holds no B slots at all, so only the A-side keys
		// are worth carrying across calls (shared A is rare here but free to
		// honour). B reuse is accounted as ResidentBElems by the run itself.
		e.keepA = i > 0 && as[i] == as[i-1]
		st, err := e.run(cs[i], as[i], nil, cs[i].Rows, rk, rn, alpha, beta)
		if err != nil {
			return agg, fmt.Errorf("core: resident batch call %d: %w", i, err)
		}
		agg.Add(st)
	}
	return agg, nil
}
