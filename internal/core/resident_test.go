package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// transpose returns a new matrix holding mᵀ.
func transpose[T matrix.Scalar](m *matrix.Matrix[T]) *matrix.Matrix[T] {
	t := matrix.New[T](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Stride+i] = m.At(i, j)
		}
	}
	return t
}

// checkResidentBitExact runs the same problem through the fresh-pack path
// and the resident path on identically configured executors and demands
// bit-identical output — the strip decomposition and reduction order are
// shared, so any divergence is a layout bug, not roundoff.
func checkResidentBitExact[T matrix.Scalar](t *testing.T, cfg Config, m, k, n int, transA, transB, pipelined bool, alpha, beta T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[T](m, k)
	if transA {
		a = matrix.New[T](k, m)
	}
	b := matrix.New[T](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c0 := matrix.New[T](m, n)
	c0.Randomize(rng)
	c1 := c0.Clone()

	opt := WithPipeline(pipelined)
	fresh, err := NewExecutor[T](cfg, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	res, err := NewExecutor[T](cfg, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	bSrc := b
	if transB {
		bSrc = transpose(b)
	}
	rb, err := PackResidentB(cfg, bSrc, transB)
	if err != nil {
		t.Fatalf("PackResidentB: %v", err)
	}
	if bk, bn := rb.Dims(); bk != k || bn != n {
		t.Fatalf("resident dims %dx%d, want %dx%d", bk, bn, k, n)
	}

	stFresh, err := fresh.GemmScaled(c0, a, bSrc, transA, transB, alpha, beta)
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	stRes, err := res.GemmResident(c1, a, rb, transA, alpha, beta)
	if err != nil {
		t.Fatalf("resident: %v", err)
	}
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			t.Fatalf("cfg=%+v %dx%dx%d transA=%v transB=%v pipe=%v: element %d differs: fresh %v resident %v",
				cfg, m, k, n, transA, transB, pipelined, i, c0.Data[i], c1.Data[i])
		}
	}
	if alpha == 0 {
		return
	}
	if stRes.ResidentBElems == 0 {
		t.Fatalf("resident run reported no ResidentBElems: %+v", stRes)
	}
	if stRes.PackedBElems != 0 {
		t.Fatalf("resident run packed B: %+v", stRes)
	}
	if want := stFresh.PackedBElems + stFresh.ReusedBElems; stRes.ResidentBElems != want {
		t.Fatalf("ResidentBElems %d, fresh path touched %d", stRes.ResidentBElems, want)
	}
}

func TestGemmResidentBitExactAllDims(t *testing.T) {
	shapes := [][3]int{
		{8, 96, 64},  // skewed serving shape: small M, multi-block K×N
		{50, 23, 70}, // ragged everything
		{64, 32, 64}, // exact block multiples
		{1, 1, 1},    // degenerate
		{10, 5, 12},  // smaller than one block
	}
	seed := int64(100)
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		cfg := smallConfig(2, dim)
		for _, sh := range shapes {
			for _, pipelined := range []bool{false, true} {
				seed++
				checkResidentBitExact[float64](t, cfg, sh[0], sh[1], sh[2], false, false, pipelined, 1, 1, seed)
			}
		}
	}
}

func TestGemmResidentTransposesAndScaling(t *testing.T) {
	seed := int64(200)
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		cfg := smallConfig(2, dim)
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				seed++
				checkResidentBitExact[float64](t, cfg, 24, 40, 56, transA, transB, true, 2.5, -1, seed)
			}
		}
	}
	// β = 0 clears C without reading it; α = 0 leaves only the β scaling.
	cfg := smallConfig(2, DimN)
	checkResidentBitExact[float64](t, cfg, 20, 30, 40, false, false, true, 1, 0, seed+1)
	checkResidentBitExact[float64](t, cfg, 20, 30, 40, false, false, true, 0, 2, seed+2)
}

func TestGemmResidentFloat32(t *testing.T) {
	seed := int64(300)
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		cfg := smallConfig(3, dim)
		seed++
		checkResidentBitExact[float32](t, cfg, 8, 64, 80, false, true, true, 1, 1, seed)
	}
}

func TestGemmResidentRejectsMismatches(t *testing.T) {
	cfgN := smallConfig(2, DimN)
	cfgK := smallConfig(2, DimK)
	b := matrix.New[float64](32, 32)
	rb, err := PackResidentB(cfgN, b, false)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor[float64](cfgK, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a := matrix.New[float64](16, 32)
	c := matrix.New[float64](16, 32)
	if _, err := e.GemmResident(c, a, rb, false, 1, 1); err == nil {
		t.Fatal("layout mismatch accepted")
	}
	if _, err := e.GemmResident(c, a, nil, false, 1, 1); err == nil {
		t.Fatal("nil resident operand accepted")
	}
	eN, err := NewExecutor[float64](cfgN, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eN.Close()
	bad := matrix.New[float64](16, 48) // wrong K for the operand
	if _, err := eN.GemmResident(c, bad, rb, false, 1, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestGemmResidentSingleFlight(t *testing.T) {
	cfg := smallConfig(1, DimN)
	e, err := NewExecutor[float64](cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	b := matrix.New[float64](16, 16)
	rb, err := PackResidentB(cfg, b, false)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight call owning the executor.
	if !e.inUse.CompareAndSwap(false, true) {
		t.Fatal("executor unexpectedly busy")
	}
	a := matrix.New[float64](16, 16)
	c := matrix.New[float64](16, 16)
	if _, err := e.GemmResident(c, a, rb, false, 1, 1); !errors.Is(err, ErrInUse) {
		t.Fatalf("err = %v, want ErrInUse", err)
	}
	e.inUse.Store(false)
}

// TestGemmResidentThenFresh proves the executor's per-call resident state
// resets: a fresh-pack call immediately after a resident call must re-grow
// its B buffers and produce correct results.
func TestGemmResidentThenFresh(t *testing.T) {
	cfg := smallConfig(2, DimN)
	e, err := NewExecutor[float64](cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(7))
	m, k, n := 24, 40, 56
	a, b := matrix.New[float64](m, k), matrix.New[float64](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	rb, err := PackResidentB(cfg, b, false)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := matrix.New[float64](m, n), matrix.New[float64](m, n)
	if _, err := e.GemmResident(c0, a, rb, false, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Gemm(c1, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			t.Fatalf("fresh call after resident call diverged at %d", i)
		}
	}
}
