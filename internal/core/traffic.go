package core

import "repro/internal/obs"

// PredictTraffic returns the DRAM traffic this configuration implies for an
// M×K×N multiplication, phase by phase, using the same accounting the
// traced executors record: every CB block packs its clipped A and B
// surfaces (mEff·kEff + kEff·nEff elements), the partial-C surface stays
// resident so compute moves nothing, and each completed (M,N) block run
// folds back into C with one read-modify-write (2·mEff·nEff elements).
//
// This is the model side of a conformance check: a traced run's measured
// pack traffic plus its panel-cache-avoided bytes must equal PackBytes
// exactly, because both derive from the same per-block formulas — any gap
// means the executor moved data the model does not know about.
func (c Config) PredictTraffic(m, k, n, elemBytes int) obs.Traffic {
	bm, bk, bn := c.BlockDims()
	grid := c.GridFor(m, k, n)
	eb := int64(elemBytes)
	var t obs.Traffic
	for mb := 0; mb < grid.Mb; mb++ {
		_, mEff := span(mb, bm, m)
		for nb := 0; nb < grid.Nb; nb++ {
			_, nEff := span(nb, bn, n)
			t.UnpackBytes += 2 * int64(mEff) * int64(nEff) * eb
			for kb := 0; kb < grid.Kb; kb++ {
				_, kEff := span(kb, bk, k)
				t.PackBytes += (int64(mEff) + int64(nEff)) * int64(kEff) * eb
			}
		}
	}
	return t
}

// PredictBlocks returns how many CB blocks the configuration's grid holds
// for an M×K×N problem — the denominator for per-block traffic rates.
func (c Config) PredictBlocks(m, k, n int) int {
	g := c.GridFor(m, k, n)
	return g.Mb * g.Kb * g.Nb
}
