package core
