package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/obs"
)

// A traced run's measured traffic must meet PredictTraffic exactly — both
// sides derive from the same per-block formulas, so any gap is a bug in one
// of them. The panel cache can serve part of the predicted pack traffic, so
// measured pack + avoided == predicted pack.
func TestPredictTrafficMatchesTracedRun(t *testing.T) {
	for _, tc := range []struct {
		name     string
		pipeline bool
		m, k, n  int
	}{
		{"sync aligned", false, 64, 128, 64},
		{"sync ragged", false, 50, 100, 70},
		{"pipelined aligned", true, 64, 128, 64},
		{"pipelined ragged", true, 50, 100, 70},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Cores: 2, MC: 16, KC: 32, Alpha: 1, MR: 8, NR: 8, Dim: DimN, Order: OrderAuto}
			rec := obs.NewRecorder(cfg.Cores, 4096)
			e, err := NewExecutor[float32](cfg, nil, WithPipeline(tc.pipeline), WithTrace(rec))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			rng := rand.New(rand.NewSource(7))
			a := matrix.New[float32](tc.m, tc.k)
			b := matrix.New[float32](tc.k, tc.n)
			c := matrix.New[float32](tc.m, tc.n)
			a.Randomize(rng)
			b.Randomize(rng)
			if _, err := e.Gemm(c, a, b); err != nil {
				t.Fatal(err)
			}
			if d := rec.Dropped(); d > 0 {
				t.Fatalf("recorder dropped %d spans; grow the ring", d)
			}

			pred := cfg.PredictTraffic(tc.m, tc.k, tc.n, 4)
			meas, avoided := obs.MeasuredTraffic(rec.Spans())
			if got := meas.PackBytes + avoided; got != pred.PackBytes {
				t.Errorf("pack: measured %d + avoided %d = %d, predicted %d",
					meas.PackBytes, avoided, got, pred.PackBytes)
			}
			if meas.ComputeBytes != pred.ComputeBytes || pred.ComputeBytes != 0 {
				t.Errorf("compute: measured %d, predicted %d (want 0: partial C stays resident)",
					meas.ComputeBytes, pred.ComputeBytes)
			}
			if meas.UnpackBytes != pred.UnpackBytes {
				t.Errorf("unpack: measured %d, predicted %d", meas.UnpackBytes, pred.UnpackBytes)
			}
		})
	}
}

func TestPredictTrafficHandValues(t *testing.T) {
	// One exact block: 16×32 × 32×16 on a p=1 mc=16 kc=32 α=1 config.
	// Block dims 16×32×16, grid 1×1×1: pack (16+16)·32·4 = 4096 bytes,
	// unpack 2·16·16·4 = 2048 bytes.
	cfg := Config{Cores: 1, MC: 16, KC: 32, Alpha: 1, MR: 8, NR: 8, Dim: DimN, Order: OrderAuto}
	tr := cfg.PredictTraffic(16, 32, 16, 4)
	if tr.PackBytes != 4096 || tr.ComputeBytes != 0 || tr.UnpackBytes != 2048 {
		t.Fatalf("single-block traffic = %+v", tr)
	}
	if cfg.PredictBlocks(16, 32, 16) != 1 {
		t.Fatalf("blocks = %d, want 1", cfg.PredictBlocks(16, 32, 16))
	}
	// Doubling K doubles pack traffic but leaves unpack (per (M,N) run)
	// unchanged — the K-first schedule's point.
	tr2 := cfg.PredictTraffic(16, 64, 16, 4)
	if tr2.PackBytes != 2*tr.PackBytes || tr2.UnpackBytes != tr.UnpackBytes {
		t.Fatalf("2K traffic = %+v vs %+v", tr2, tr)
	}
}
