package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

func batchTestExec(t *testing.T, pipeline bool) *Executor[float64] {
	t.Helper()
	cfg := Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, Order: OrderAuto}
	e, err := NewExecutor[float64](cfg, nil, WithPipeline(pipeline))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestExecutorGemmBatchBitExact: the executor batch loop must match the
// sequential GemmScaled loop bit for bit, pipelined and synchronous, with
// shared and distinct operands — including when consecutive calls share A
// but differ in B's width (the kept A keys must survive a changed grid).
func TestExecutorGemmBatchBitExact(t *testing.T) {
	for _, pipeline := range []bool{true, false} {
		e := batchTestExec(t, pipeline)
		rng := rand.New(rand.NewSource(41))
		sharedA := matrix.New[float64](24, 40)
		sharedA.Randomize(rng)
		type call struct{ m, k, n int }
		calls := []call{{24, 40, 32}, {24, 40, 32}, {24, 40, 48}, {16, 40, 48}}
		as := make([]*matrix.Matrix[float64], len(calls))
		bs := make([]*matrix.Matrix[float64], len(calls))
		cBatch := make([]*matrix.Matrix[float64], len(calls))
		cSeq := make([]*matrix.Matrix[float64], len(calls))
		for i, cl := range calls {
			if cl.m == sharedA.Rows && cl.k == sharedA.Cols {
				as[i] = sharedA
			} else {
				as[i] = matrix.New[float64](cl.m, cl.k)
				as[i].Randomize(rng)
			}
			bs[i] = matrix.New[float64](cl.k, cl.n)
			bs[i].Randomize(rng)
			cBatch[i] = matrix.New[float64](cl.m, cl.n)
			cBatch[i].Randomize(rng)
			cSeq[i] = cBatch[i].Clone()
		}
		st, err := e.GemmBatchScaled(cBatch, as, bs, false, false, 1.5, -0.5)
		if err != nil {
			t.Fatal(err)
		}
		if st.BatchCalls != len(calls) {
			t.Fatalf("pipeline=%v BatchCalls = %d", pipeline, st.BatchCalls)
		}
		for i := range calls {
			if _, err := e.GemmScaled(cSeq[i], as[i], bs[i], false, false, 1.5, -0.5); err != nil {
				t.Fatal(err)
			}
			for j := range cBatch[i].Data {
				if cBatch[i].Data[j] != cSeq[i].Data[j] {
					t.Fatalf("pipeline=%v call %d elem %d: %v != %v", pipeline, i, j, cBatch[i].Data[j], cSeq[i].Data[j])
				}
			}
		}
		if pipeline && st.ReusedAElems == 0 {
			t.Fatalf("shared A across pipelined batch calls produced no panel reuse: %+v", st)
		}
	}
}

// TestExecutorGemmBatchResident: the core resident batch must match the
// sequential GemmResident loop bit for bit and account every call's B side
// as resident traffic.
func TestExecutorGemmBatchResident(t *testing.T) {
	e := batchTestExec(t, true)
	rng := rand.New(rand.NewSource(42))
	const m, k, n, count = 16, 48, 64, 3
	b := matrix.New[float64](k, n)
	b.Randomize(rng)
	rb, err := PackResidentB(e.Config(), b, false)
	if err != nil {
		t.Fatal(err)
	}
	as := make([]*matrix.Matrix[float64], count)
	cBatch := make([]*matrix.Matrix[float64], count)
	cSeq := make([]*matrix.Matrix[float64], count)
	for i := range as {
		as[i] = matrix.New[float64](m, k)
		as[i].Randomize(rng)
		cBatch[i] = matrix.New[float64](m, n)
		cSeq[i] = matrix.New[float64](m, n)
	}
	st, err := e.GemmBatchResident(cBatch, as, rb, false, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchCalls != count || st.PackedBElems != 0 || st.ResidentBElems != int64(count)*k*n {
		t.Fatalf("resident batch stats %+v", st)
	}
	for i := range as {
		if _, err := e.GemmResident(cSeq[i], as[i], rb, false, 1, 0); err != nil {
			t.Fatal(err)
		}
		for j := range cBatch[i].Data {
			if cBatch[i].Data[j] != cSeq[i].Data[j] {
				t.Fatalf("call %d elem %d: %v != %v", i, j, cBatch[i].Data[j], cSeq[i].Data[j])
			}
		}
	}
}

// TestGemmBatchSingleFlight: a batch holds the executor's single-flight
// guard for its whole duration, and malformed batches fail before any state
// is taken.
func TestGemmBatchSingleFlight(t *testing.T) {
	e := batchTestExec(t, true)
	rng := rand.New(rand.NewSource(43))
	a := matrix.New[float64](24, 24)
	b := matrix.New[float64](24, 24)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float64](24, 24)

	if _, err := e.GemmBatchScaled(nil, nil, nil, false, false, 1, 1); !errors.Is(err, ErrBatchShape) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := e.GemmBatchResident(nil, nil, nil, false, 1, 1); !errors.Is(err, ErrBatchShape) {
		t.Fatalf("empty resident batch: %v", err)
	}

	// Mark the executor busy, as a concurrent call would: the batch must
	// fail fast with ErrInUse rather than interleave.
	if !e.inUse.CompareAndSwap(false, true) {
		t.Fatal("executor unexpectedly busy")
	}
	_, err := e.GemmBatch(
		[]*matrix.Matrix[float64]{c}, []*matrix.Matrix[float64]{a}, []*matrix.Matrix[float64]{b}, false, false)
	if !errors.Is(err, ErrInUse) {
		t.Fatalf("busy executor: %v, want ErrInUse", err)
	}
	e.inUse.Store(false)

	// After a batch, the keep flags must not leak into later single calls:
	// run a batch, then a single call with different operands, and check the
	// single call against a fresh executor.
	bs2 := []*matrix.Matrix[float64]{b, b}
	cs2 := []*matrix.Matrix[float64]{matrix.New[float64](24, 24), matrix.New[float64](24, 24)}
	if _, err := e.GemmBatch([]*matrix.Matrix[float64]{cs2[0], cs2[1]}, []*matrix.Matrix[float64]{a, a}, bs2, false, false); err != nil {
		t.Fatal(err)
	}
	a2 := matrix.New[float64](24, 24)
	b2 := matrix.New[float64](24, 24)
	a2.Randomize(rng)
	b2.Randomize(rng)
	got := matrix.New[float64](24, 24)
	if _, err := e.Gemm(got, a2, b2); err != nil {
		t.Fatal(err)
	}
	fresh := batchTestExec(t, true)
	want := matrix.New[float64](24, 24)
	if _, err := fresh.Gemm(want, a2, b2); err != nil {
		t.Fatal(err)
	}
	for j := range got.Data {
		if got.Data[j] != want.Data[j] {
			t.Fatalf("single call after batch diverged at %d (stale kept panels?)", j)
		}
	}
}

// TestGemmBatchConcurrentErrInUse: concurrent batches on one executor — the
// loser gets ErrInUse, never a corrupted interleave (run under -race).
func TestGemmBatchConcurrentErrInUse(t *testing.T) {
	e := batchTestExec(t, true)
	rng := rand.New(rand.NewSource(44))
	const count = 4
	as := make([]*matrix.Matrix[float64], count)
	bs := make([]*matrix.Matrix[float64], count)
	for i := range as {
		as[i] = matrix.New[float64](32, 32)
		bs[i] = matrix.New[float64](32, 32)
		as[i].Randomize(rng)
		bs[i].Randomize(rng)
	}
	var wg sync.WaitGroup
	var inUse, ok int
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := make([]*matrix.Matrix[float64], count)
			for i := range cs {
				cs[i] = matrix.New[float64](32, 32)
			}
			_, err := e.GemmBatch(cs, as, bs, false, false)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrInUse):
				inUse++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatalf("no batch succeeded (ok=%d inUse=%d)", ok, inUse)
	}
}
