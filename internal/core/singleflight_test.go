package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
	"repro/internal/packing"
)

// TestGemmScaledReentryError checks the deterministic half of the in-use
// guard: a call entering while the flag is held fails fast with ErrInUse and
// leaves the executor reusable afterwards.
func TestGemmScaledReentryError(t *testing.T) {
	cfg := Config{Cores: 2, MC: 8, KC: 16, Alpha: 1, MR: 8, NR: 8, Order: OrderAuto}
	e, err := NewExecutor[float32](cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(1))
	a, b := matrix.New[float32](24, 24), matrix.New[float32](24, 24)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](24, 24)

	e.inUse.Store(true)
	if _, err := e.Gemm(c, a, b); !errors.Is(err, ErrInUse) {
		t.Fatalf("reentry error = %v, want ErrInUse", err)
	}
	e.inUse.Store(false)

	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatalf("executor unusable after guarded rejection: %v", err)
	}
	want := matrix.New[float32](24, 24)
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, 24, 1e-4) {
		t.Fatal("result wrong after guarded rejection")
	}
}

// TestGemmConcurrentCallsGuarded hammers one executor from many goroutines.
// Every call must either succeed with a bit-exact result or fail with
// ErrInUse — never corrupt packing state. Run under -race this also proves
// the guard itself is data-race free.
func TestGemmConcurrentCallsGuarded(t *testing.T) {
	cfg := Config{Cores: 2, MC: 8, KC: 16, Alpha: 1, MR: 8, NR: 8, Order: OrderAuto}
	e, err := NewExecutor[float32](cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(2))
	const dim = 48
	a, b := matrix.New[float32](dim, dim), matrix.New[float32](dim, dim)
	a.Randomize(rng)
	b.Randomize(rng)
	want := matrix.New[float32](dim, dim)
	if _, err := e.Gemm(want, a, b); err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	var rejected, completed int
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := matrix.New[float32](dim, dim)
				_, err := e.Gemm(c, a, b)
				if errors.Is(err, ErrInUse) {
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if !c.Equal(want) {
					errs <- errors.New("successful concurrent call produced a corrupted result")
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if completed == 0 {
		t.Fatal("no call ever completed")
	}
	t.Logf("completed=%d rejected=%d", completed, rejected)
}

// packNeeds mirrors grow's sizing arithmetic so tests can state the exact
// logical lengths a problem requires.
func packNeeds(e *Executor[float32], m, k, n int) (needA, needB, needC int) {
	bm, bk, bn := e.cfg.BlockDims()
	bm, bk, bn = min(bm, roundUpMultiple(m, e.cfg.MR)), min(bk, k), min(bn, roundUpMultiple(n, e.cfg.NR))
	if e.cfg.Dim == DimK {
		strips := ceilDiv(bk, e.cfg.KC)
		needA = strips * packing.PackedASize(bm, e.cfg.KC, e.cfg.MR)
		needB = strips * packing.PackedBSize(e.cfg.KC, bn, e.cfg.NR)
	} else {
		needA = packing.PackedASize(bm, bk, e.cfg.MR)
		needB = packing.PackedBSize(bk, bn, e.cfg.NR)
	}
	return needA, needB, bm * bn
}

// TestGrowShrinksLogicalLengths is the regression test for the buffer
// re-slice: after a huge call, a small call must re-slice every packing
// buffer's logical length down to the small problem's need — not leave it
// at the huge call's length or at capacity — while keeping the underlying
// capacity so nothing reallocates, and the small result must stay exact.
func TestGrowShrinksLogicalLengths(t *testing.T) {
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		// KC=32 puts the small problem's k below one KC slice, so even the
		// DimK strip count (and with it needA/needB) shrinks after the big run.
		cfg := Config{Cores: 2, MC: 16, KC: 32, Alpha: 1, MR: 8, NR: 8, Dim: dim, Order: OrderAuto}
		e, err := NewExecutor[float32](cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", dim, err)
		}
		rng := rand.New(rand.NewSource(3))

		const big, s = 160, 24
		bigA, bigB := matrix.New[float32](big, big), matrix.New[float32](big, big)
		bigA.Randomize(rng)
		bigB.Randomize(rng)
		bigC := matrix.New[float32](big, big)
		if _, err := e.Gemm(bigC, bigA, bigB); err != nil {
			t.Fatalf("%v big: %v", dim, err)
		}
		capA, capB, capC := cap(e.packA[0]), cap(e.packB[0]), cap(e.bufC)

		a, b := matrix.New[float32](s, s), matrix.New[float32](s, s)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float32](s, s)
		if _, err := e.Gemm(c, a, b); err != nil {
			t.Fatalf("%v small: %v", dim, err)
		}
		needA, needB, needC := packNeeds(e, s, s, s)
		if len(e.packA[0]) != needA || len(e.packB[0]) != needB || len(e.bufC) != needC {
			t.Fatalf("%v: lengths (A=%d B=%d C=%d) != small needs (A=%d B=%d C=%d)",
				dim, len(e.packA[0]), len(e.packB[0]), len(e.bufC), needA, needB, needC)
		}
		bigNA, bigNB, bigNC := packNeeds(e, big, big, big)
		if needA >= bigNA && needB >= bigNB && needC >= bigNC {
			t.Fatalf("%v: small needs not smaller than big needs — test shapes give no coverage", dim)
		}
		if cap(e.packA[0]) != capA || cap(e.packB[0]) != capB || cap(e.bufC) != capC {
			t.Fatalf("%v: capacities changed (A %d→%d, B %d→%d, C %d→%d) — buffers reallocated",
				dim, capA, cap(e.packA[0]), capB, cap(e.packB[0]), capC, cap(e.bufC))
		}
		if e.cfg.Dim == DimK {
			for i := range e.partials {
				if len(e.partials[i]) != needC {
					t.Fatalf("%v: partials[%d] len %d != need %d", dim, i, len(e.partials[i]), needC)
				}
			}
		}
		want := matrix.New[float32](s, s)
		matrix.NaiveGemm(want, a, b)
		if !c.AlmostEqual(want, s, 1e-4) {
			t.Fatalf("%v: small result wrong after shrink", dim)
		}
		e.Close()
	}
}
