package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// tracedGemm runs one GEMM with a fresh recorder attached and returns the
// stats, the recorder and the element size used.
func tracedGemm(t *testing.T, cfg Config, m, k, n int, opts ...Option) (Stats, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder(cfg.Cores, 0)
	e, err := NewExecutor[float32](cfg, nil, append(opts, WithTrace(rec))...)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(77))
	a := matrix.New[float32](m, k)
	b := matrix.New[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](m, n)
	st, err := e.Gemm(c, a, b)
	if err != nil {
		t.Fatalf("Gemm: %v", err)
	}
	return st, rec
}

// byPhase sums recorded span bytes per phase and counts spans.
func byPhase(spans []obs.Span) (bytes map[obs.Phase]int64, count map[obs.Phase]int) {
	bytes = map[obs.Phase]int64{}
	count = map[obs.Phase]int{}
	for _, s := range spans {
		bytes[s.Phase] += s.Bytes
		count[s.Phase]++
	}
	return
}

func TestTraceSyncExecutorByteAccounting(t *testing.T) {
	const elem = 4 // float32
	cfg := smallConfig(2, DimN)
	st, rec := tracedGemm(t, cfg, 50, 23, 70, WithPipeline(false))
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d spans", rec.Dropped())
	}
	bytes, count := byPhase(spans)
	if count[obs.PhasePack] == 0 || count[obs.PhaseCompute] == 0 || count[obs.PhaseUnpack] == 0 {
		t.Fatalf("missing phases: %v", count)
	}
	// Pack spans carry exactly the packed elements; the sync path packs
	// every block fresh.
	if want := (st.PackedAElems + st.PackedBElems) * elem; bytes[obs.PhasePack] != want {
		t.Fatalf("pack span bytes = %d, want %d", bytes[obs.PhasePack], want)
	}
	// Unpack is a DRAM read-modify-write: 2× the C elements touched.
	if want := 2 * st.UnpackCElems * elem; bytes[obs.PhaseUnpack] != want {
		t.Fatalf("unpack span bytes = %d, want %d", bytes[obs.PhaseUnpack], want)
	}
	// CAKE compute runs out of cache-resident packed panels: zero DRAM
	// bytes attributed.
	if bytes[obs.PhaseCompute] != 0 {
		t.Fatalf("compute span bytes = %d, want 0", bytes[obs.PhaseCompute])
	}
	if count[obs.PhaseReuse] != 0 {
		t.Fatalf("sync path emitted %d reuse events", count[obs.PhaseReuse])
	}
	for _, s := range spans {
		if s.DurNs < 0 || s.StartNs <= 0 {
			t.Fatalf("span with bad timing: %+v", s)
		}
		if int(s.Worker) < 0 || int(s.Worker) > rec.SchedulerLane() {
			t.Fatalf("span on impossible lane: %+v", s)
		}
	}
}

func TestTracePipelinedExecutorReuseEvents(t *testing.T) {
	const elem = 4
	cfg := smallConfig(2, DimN)
	cfg.Order = schedule.OuterN // forces B reuse at M steps (see pipeline_test)
	st, rec := tracedGemm(t, cfg, 100, 70, 100)
	if st.ReusedAElems+st.ReusedBElems == 0 {
		t.Fatal("shape produced no panel reuse; pick a bigger grid")
	}
	spans := rec.Spans()
	bytes, count := byPhase(spans)
	if count[obs.PhasePack] == 0 || count[obs.PhaseCompute] == 0 {
		t.Fatalf("missing phases: %v", count)
	}
	if want := (st.PackedAElems + st.PackedBElems) * elem; bytes[obs.PhasePack] != want {
		t.Fatalf("pack span bytes = %d, want %d", bytes[obs.PhasePack], want)
	}
	// Every reused panel shows up as an instant event on the scheduler lane
	// carrying the avoided DRAM traffic.
	if want := (st.ReusedAElems + st.ReusedBElems) * elem; bytes[obs.PhaseReuse] != want {
		t.Fatalf("reuse event bytes = %d, want %d", bytes[obs.PhaseReuse], want)
	}
	for _, s := range spans {
		if s.Phase == obs.PhaseReuse && int(s.Worker) != rec.SchedulerLane() {
			t.Fatalf("reuse event off the scheduler lane: %+v", s)
		}
	}
	// Pack and compute must appear on real worker lanes, not just lane 0:
	// the pipeline distributes units across cores.
	lanes := map[int32]bool{}
	for _, s := range spans {
		if s.Phase == obs.PhasePack || s.Phase == obs.PhaseCompute {
			lanes[s.Worker] = true
		}
	}
	if len(lanes) < 2 {
		t.Fatalf("all pack/compute spans on one lane: %v", lanes)
	}
}

func TestTraceUntracedExecutorRecordsNothing(t *testing.T) {
	cfg := smallConfig(2, DimN)
	e, err := NewExecutor[float32](cfg, nil)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(5))
	a := matrix.New[float32](32, 16)
	b := matrix.New[float32](16, 32)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](32, 16+16)
	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatalf("Gemm: %v", err)
	}
	// Nothing to assert on a recorder — there is none; the run not
	// panicking through every nil-guarded instrumentation point is the test.
}

func TestStatsPackShareEdgeCases(t *testing.T) {
	if got := (Stats{}).PackShare(); got != 0 {
		t.Fatalf("zero-elapsed PackShare = %g, want 0", got)
	}
	if got := (Stats{PackNanos: 30, ComputeNanos: 70}).PackShare(); got != 0.3 {
		t.Fatalf("PackShare = %g, want 0.3", got)
	}
	if got := (Stats{PackNanos: 50}).PackShare(); got != 1 {
		t.Fatalf("pack-only PackShare = %g, want 1", got)
	}
}

func TestStatsOverlapShareClamps(t *testing.T) {
	cases := []struct {
		name string
		st   Stats
		want float64
	}{
		{"zero", Stats{}, 0},
		{"no pack", Stats{OverlapNanos: 10}, 0},
		{"no overlap", Stats{PackNanos: 10}, 0},
		{"negative overlap", Stats{PackNanos: 10, OverlapNanos: -5}, 0},
		{"partial", Stats{PackNanos: 100, OverlapNanos: 25}, 0.25},
		{"exact", Stats{PackNanos: 100, OverlapNanos: 100}, 1},
		{"overcounted", Stats{PackNanos: 100, OverlapNanos: 250}, 1},
	}
	for _, c := range cases {
		if got := c.st.OverlapShare(); got != c.want {
			t.Fatalf("%s: OverlapShare = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestNilRecorderOverheadGuard bounds what the always-compiled
// instrumentation costs when tracing is off. The nil-recorder fast path is
// measured directly (a now/span pair is one instrumentation point), scaled
// by the number of points a traced run of the same shape actually fires,
// and compared against the untraced wall time: the projected overhead must
// stay under 2%.
func TestNilRecorderOverheadGuard(t *testing.T) {
	cfg := smallConfig(2, DimN)
	const m, k, n = 100, 70, 100

	// Count instrumentation points from a traced run of the same shape.
	_, rec := tracedGemm(t, cfg, m, k, n)
	points := len(rec.Spans()) + int(rec.Dropped())
	if points == 0 {
		t.Fatal("traced run fired no instrumentation points")
	}

	// Untraced wall time, min of a few reps to damp scheduler noise.
	e, err := NewExecutor[float32](cfg, nil)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(9))
	a := matrix.New[float32](m, k)
	b := matrix.New[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](m, n)
	wall := time.Duration(1<<62 - 1)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		if _, err := e.Gemm(c, a, b); err != nil {
			t.Fatalf("Gemm: %v", err)
		}
		if d := time.Since(t0); d < wall {
			wall = d
		}
	}

	// Cost of one nil-path instrumentation point (now + span), amortised.
	const laps = 1 << 16
	t0 := time.Now()
	for i := 0; i < laps; i++ {
		u0 := e.now()
		e.span(0, obs.PhasePack, e.curBlk, u0, 0)
	}
	perPoint := time.Since(t0) / laps

	projected := perPoint * time.Duration(points)
	if limit := wall / 50; projected > limit { // 2%
		t.Fatalf("nil-recorder path projected overhead %v over %d points exceeds 2%% of %v wall",
			projected, points, wall)
	}
	t.Logf("nil path: %v/point × %d points = %v projected vs %v wall (%.4f%%)",
		perPoint, points, projected, wall, 100*float64(projected)/float64(wall))
}

// Benchmarks for the same guard in steady state: compare ns/op with and
// without a recorder attached (benchGemm lives in pipeline_bench_test.go).
func BenchmarkGemmUntraced(b *testing.B) {
	benchGemm(b, smallConfig(2, DimN), 100, 70, 100)
}

func BenchmarkGemmTraced(b *testing.B) {
	rec := obs.NewRecorder(2, 0)
	benchGemm(b, smallConfig(2, DimN), 100, 70, 100, WithTrace(rec))
}
