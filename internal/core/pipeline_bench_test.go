package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// benchGemm measures one executor configuration on a fixed shape and
// reports GFLOP/s plus the packing/reuse accounting of the last run, so
// `go test -bench Gemm` gives a direct sync-vs-pipelined comparison.
func benchGemm(b *testing.B, cfg Config, m, k, n int, opts ...Option) {
	e, err := NewExecutor[float32](cfg, nil, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(9))
	a := matrix.New[float32](m, k)
	bb := matrix.New[float32](k, n)
	a.Randomize(rng)
	bb.Randomize(rng)
	c := matrix.New[float32](m, n)
	var st Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, err = e.Gemm(c, a, bb); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	b.ReportMetric(float64(st.PackedAElems+st.PackedBElems), "packed-elems")
	b.ReportMetric(float64(st.ReusedAElems+st.ReusedBElems), "reused-elems")
}

// The skewed small-M shape class from the paper's Fig. 11 discussion:
// M far smaller than K and N, so packing is a large share of the work
// (Section 5.2.1) and the K-first schedule revisits the small set of A
// panels on every N step. This is where panel reuse pays: the pipelined
// executor with a panel cache packs each A panel once instead of once per
// visiting block.
const (
	skewM = 32
	skewK = 1024
	skewN = 512
)

func skewedConfig() Config {
	// A deliberately pack-heavy geometry: narrow mc keeps the compute per
	// block small relative to the panel area the block must pack.
	return Config{Cores: 1, MC: 8, KC: 512, Alpha: 1, MR: 8, NR: 8, Dim: DimN, Order: OrderAuto}
}

func BenchmarkGemmSyncSkewedSmallM(b *testing.B) {
	benchGemm(b, skewedConfig(), skewM, skewK, skewN, WithPipeline(false))
}

func BenchmarkGemmPipelinedSkewedSmallM(b *testing.B) {
	benchGemm(b, skewedConfig(), skewM, skewK, skewN)
}

func BenchmarkGemmPipelinedCacheSkewedSmallM(b *testing.B) {
	benchGemm(b, skewedConfig(), skewM, skewK, skewN, WithPanelCache(16))
}

// Square control shape: compute-bound, so sync and pipelined should be
// within noise of each other on a single-core host (the pipeline must not
// cost throughput where it cannot win any).
func squareConfig() Config {
	return Config{Cores: 1, MC: 64, KC: 128, Alpha: 1, MR: 8, NR: 8, Dim: DimN, Order: OrderAuto}
}

func BenchmarkGemmSyncSquare(b *testing.B) {
	benchGemm(b, squareConfig(), 384, 384, 384, WithPipeline(false))
}

func BenchmarkGemmPipelinedSquare(b *testing.B) {
	benchGemm(b, squareConfig(), 384, 384, 384)
}

// TestBenchShapesCorrect keeps the benchmark configurations honest: both
// bench configs must produce correct results under every executor option
// used above.
func TestBenchShapesCorrect(t *testing.T) {
	cases := []struct {
		cfg     Config
		m, k, n int
		opts    []Option
	}{
		{skewedConfig(), skewM, skewK, skewN, []Option{WithPipeline(false)}},
		{skewedConfig(), skewM, skewK, skewN, nil},
		{skewedConfig(), skewM, skewK, skewN, []Option{WithPanelCache(16)}},
		{squareConfig(), 384, 384, 384, nil},
	}
	for i, tc := range cases {
		e, err := NewExecutor[float64](tc.cfg, nil, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		a := matrix.New[float64](tc.m, tc.k)
		bb := matrix.New[float64](tc.k, tc.n)
		a.Randomize(rng)
		bb.Randomize(rng)
		c := matrix.New[float64](tc.m, tc.n)
		if _, err := e.Gemm(c, a, bb); err != nil {
			t.Fatal(err)
		}
		want := matrix.New[float64](tc.m, tc.n)
		matrix.NaiveGemm(want, a, bb)
		if !c.AlmostEqual(want, tc.k, 1e-10) {
			t.Errorf("case %d (%s): wrong result, diff %g", i,
				fmt.Sprintf("%dx%dx%d", tc.m, tc.k, tc.n), c.MaxAbsDiff(want))
		}
		e.Close()
	}
}
