package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
	"repro/internal/pool"
	"repro/internal/schedule"
)

// TestPipelinedBitExactVsSync is the pipeline's oracle: for every compute
// dimension, schedule order, transpose combination and a table of odd edge
// shapes, the pipelined executor must produce results bit-identical to the
// synchronous executor (the strip decomposition and accumulation order are
// the same, so there is no floating-point excuse for any difference), and
// both must agree with the naive reference within accumulation tolerance.
func TestPipelinedBitExactVsSync(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{64, 32, 64},  // exact multiples of the block
		{50, 23, 70},  // ragged everything
		{1, 1, 1},     // degenerate
		{47, 16, 49},  // ragged M/N, exact K
		{200, 8, 16},  // tall-skinny
		{8, 200, 16},  // deep
		{16, 8, 200},  // wide
		{33, 70, 129}, // several K runs and boundary reuses
	}
	trans := []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}}
	scales := []struct{ alpha, beta float64 }{{1, 1}, {2.5, 0}, {-1.25, 3}}
	seed := int64(1000)
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		for _, order := range []schedule.Order{OrderAuto, schedule.OuterN, schedule.OuterM} {
			cfg := smallConfig(3, dim)
			cfg.Order = order
			sync, err := NewExecutor[float64](cfg, nil, WithPipeline(false))
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := NewExecutor[float64](cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, sh := range shapes {
				for _, tc := range trans {
					sc := scales[int(seed)%len(scales)]
					seed++
					rng := rand.New(rand.NewSource(seed))
					la := matrix.New[float64](sh.m, sh.k)
					lb := matrix.New[float64](sh.k, sh.n)
					la.Randomize(rng)
					lb.Randomize(rng)
					a, b := la, lb
					if tc.ta {
						a = la.Transpose()
					}
					if tc.tb {
						b = lb.Transpose()
					}
					c0 := matrix.New[float64](sh.m, sh.n)
					c0.Randomize(rng)
					cSync, cPipe := c0.Clone(), c0.Clone()

					if _, err := sync.GemmScaled(cSync, a, b, tc.ta, tc.tb, sc.alpha, sc.beta); err != nil {
						t.Fatalf("sync dim=%v order=%v %+v: %v", dim, order, sh, err)
					}
					stp, err := pipe.GemmScaled(cPipe, a, b, tc.ta, tc.tb, sc.alpha, sc.beta)
					if err != nil {
						t.Fatalf("pipe dim=%v order=%v %+v: %v", dim, order, sh, err)
					}
					if !stp.Pipelined {
						t.Fatal("pipelined executor reported Pipelined=false")
					}
					if !cPipe.Equal(cSync) {
						t.Fatalf("dim=%v order=%v shape=%+v ta=%v tb=%v α=%v β=%v: pipelined differs from sync by %g",
							dim, order, sh, tc.ta, tc.tb, sc.alpha, sc.beta, cPipe.MaxAbsDiff(cSync))
					}
					// And both match the reference semantics C = αAB + βC₀.
					want := c0.Clone()
					want.Scale(sc.beta)
					prod := matrix.New[float64](sh.m, sh.n)
					matrix.NaiveGemm(prod, la, lb)
					for i := 0; i < sh.m; i++ {
						for j := 0; j < sh.n; j++ {
							want.Add(i, j, sc.alpha*prod.At(i, j))
						}
					}
					if !cPipe.AlmostEqual(want, sh.k, 1e-11) {
						t.Fatalf("dim=%v order=%v shape=%+v ta=%v tb=%v: pipelined vs naive diff %g",
							dim, order, sh, tc.ta, tc.tb, cPipe.MaxAbsDiff(want))
					}
				}
			}
			sync.Close()
			pipe.Close()
		}
	}
}

// TestPipelinedReuseCounters checks the panel-reuse layer fires exactly
// where Algorithm 2 promises shared surfaces: B panels at M steps under
// OuterN, A panels at N steps under OuterM, and that reused panels are
// counted instead of repacked.
func TestPipelinedReuseCounters(t *testing.T) {
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		cfg := smallConfig(2, dim)
		cfg.Order = schedule.OuterN
		st := checkGemm[float64](t, cfg, 100, 70, 100, 91, 1e-12)
		if st.Grid.Blocks() < 4 {
			t.Fatalf("dim=%v grid too small to exercise reuse: %+v", dim, st.Grid)
		}
		if st.ReusedBElems == 0 {
			t.Errorf("dim=%v OuterN: no B reuse at M steps (packed=%d)", dim, st.PackedBElems)
		}
		cfg.Order = schedule.OuterM
		st = checkGemm[float64](t, cfg, 100, 70, 100, 92, 1e-12)
		if st.ReusedAElems == 0 {
			t.Errorf("dim=%v OuterM: no A reuse at N steps (packed=%d)", dim, st.PackedAElems)
		}
	}
}

// TestPipelinedPanelCache: with more slots than the ping-pong pair, a small
// grid's panels all stay resident, so a whole extra sweep reuses rather
// than repacks — strictly more reuse than the 2-slot ring on the same
// problem.
func TestPipelinedPanelCache(t *testing.T) {
	cfg := smallConfig(2, DimN)
	run := func(opts ...Option) Stats {
		e, err := NewExecutor[float64](cfg, nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		rng := rand.New(rand.NewSource(55))
		a := matrix.New[float64](64, 48)
		b := matrix.New[float64](48, 96)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float64](64, 96)
		st, err := e.Gemm(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.New[float64](64, 96)
		matrix.NaiveGemm(want, a, b)
		if !c.AlmostEqual(want, 48, 1e-12) {
			t.Fatalf("panel-cache GEMM wrong: %g", c.MaxAbsDiff(want))
		}
		return st
	}
	base := run()
	cached := run(WithPanelCache(16))
	if cached.ReusedAElems+cached.ReusedBElems <= base.ReusedAElems+base.ReusedBElems {
		t.Fatalf("16-slot cache reused %d+%d, 2-slot ring %d+%d",
			cached.ReusedAElems, cached.ReusedBElems, base.ReusedAElems, base.ReusedBElems)
	}
}

// TestConcurrentExecutorsSharedPool is the race-detector stress test: two
// executors driving one shared pool from separate goroutines, mixing
// pipelined and synchronous execution across all compute dimensions. Run
// under -race this exercises the async pack handles, slot rings and job
// multiplexing for data races.
func TestConcurrentExecutorsSharedPool(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, 2*3*iters)
	for g := 0; g < 2; g++ {
		for _, dim := range []ComputeDim{DimN, DimM, DimK} {
			e, err := NewExecutor[float64](smallConfig(2, dim), p, WithPipeline(g == 0))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(e *Executor[float64], seed int64) {
				defer wg.Done()
				defer e.Close()
				rng := rand.New(rand.NewSource(seed))
				for it := 0; it < iters; it++ {
					m, k, n := 20+rng.Intn(60), 1+rng.Intn(60), 20+rng.Intn(60)
					a := matrix.New[float64](m, k)
					b := matrix.New[float64](k, n)
					a.Randomize(rng)
					b.Randomize(rng)
					c := matrix.New[float64](m, n)
					if _, err := e.Gemm(c, a, b); err != nil {
						errs <- err
						return
					}
					want := matrix.New[float64](m, n)
					matrix.NaiveGemm(want, a, b)
					if !c.AlmostEqual(want, k, 1e-11) {
						t.Errorf("shared-pool gemm %dx%dx%d wrong by %g", m, k, n, c.MaxAbsDiff(want))
						return
					}
				}
			}(e, int64(100*g)+int64(dim))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPipelinedExecutorReusesBuffersAcrossCalls guards slot-key
// invalidation: the same executor run on different operands of identical
// shape must not serve stale panels from the previous call.
func TestPipelinedExecutorReusesBuffersAcrossCalls(t *testing.T) {
	e, err := NewExecutor[float64](smallConfig(2, DimN), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		a := matrix.New[float64](64, 32)
		b := matrix.New[float64](32, 64)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float64](64, 64)
		if _, err := e.Gemm(c, a, b); err != nil {
			t.Fatal(err)
		}
		want := matrix.New[float64](64, 64)
		matrix.NaiveGemm(want, a, b)
		if !c.AlmostEqual(want, 32, 1e-12) {
			t.Fatalf("trial %d: stale packed panels leaked across calls (diff %g)",
				trial, c.MaxAbsDiff(want))
		}
	}
}

// TestSyncStatsUnchanged pins the synchronous baseline's packing accounting
// to the seed behaviour: no reuse, every element packed once per touching
// block.
func TestSyncStatsUnchanged(t *testing.T) {
	cfg := smallConfig(2, DimN) // block 32x16x32 over 64x32x64: 2x2x2 grid
	rng := rand.New(rand.NewSource(5))
	a := matrix.New[float64](64, 32)
	b := matrix.New[float64](32, 64)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float64](64, 64)
	e, err := NewExecutor[float64](cfg, nil, WithPipeline(false))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st, err := e.Gemm(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pipelined {
		t.Fatal("WithPipeline(false) still pipelined")
	}
	if st.PackedAElems != 2*64*32 || st.PackedBElems != 2*32*64 {
		t.Fatalf("sync packed A=%d B=%d", st.PackedAElems, st.PackedBElems)
	}
	if st.ReusedAElems != 0 || st.ReusedBElems != 0 || st.OverlapNanos != 0 {
		t.Fatalf("sync path reported pipeline stats: %+v", st)
	}
}
