// Pipelined execution: the constant-bandwidth story of Sections 3–4 says
// compute should fully overlap the memory stream, yet the synchronous
// executor alternates pack → barrier → compute → barrier, idling cores
// during packing and the memory system during compute. This file implements
// a software pipeline over the K-first block schedule: while block i
// computes out of one set of packing buffers, the pack job for block i+1 is
// already running into another set (prologue pack, steady-state overlap,
// epilogue drain). On top of the ping-pong, each buffer slot remembers which
// logical panel it holds, so when consecutive blocks share an IO surface —
// the B panel across an M step, the A panel across an N step, exactly the
// reuses Algorithm 2's snake traversal engineers — the repack is skipped
// outright and counted in Stats.ReusedAElems/ReusedBElems.
package core

import (
	"sync/atomic"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/packing"
	"repro/internal/pool"
	"repro/internal/schedule"
)

// panelKey identifies the logical sub-panel a packing-buffer slot holds
// within one GemmScaled call. Operands, transposes and α are fixed for the
// duration of a call and every key is invalidated when the next call
// starts, so block coordinates fully determine packed content.
type panelKey struct {
	r0, rows, c0, cols int
	valid              bool
}

func aKeyFor(b blockSpan) panelKey { return panelKey{b.m0, b.mEff, b.k0, b.kEff, true} }
func bKeyFor(b blockSpan) panelKey { return panelKey{b.k0, b.kEff, b.n0, b.nEff, true} }

// blockSpan is one scheduled CB block resolved to element coordinates.
type blockSpan struct {
	m0, mEff, k0, kEff, n0, nEff int
	runStart, runEnd             bool
	coord                        obs.Block // grid coordinates, for span recording
}

func (e *Executor[T]) spanFor(seq []schedule.Coord, i, m, k, n int) blockSpan {
	bm, bk, bn := e.cfg.BlockDims()
	cur := seq[i]
	var b blockSpan
	b.m0, b.mEff = span(cur.M, bm, m)
	b.k0, b.kEff = span(cur.K, bk, k)
	b.n0, b.nEff = span(cur.N, bn, n)
	b.runStart = i == 0 || seq[i-1].M != cur.M || seq[i-1].N != cur.N
	b.runEnd = i == len(seq)-1 || seq[i+1].M != cur.M || seq[i+1].N != cur.N
	b.coord = obs.Block{M: int32(cur.M), K: int32(cur.K), N: int32(cur.N)}
	return b
}

// pipeStage is one block in flight through the pipeline: which slots hold
// its packed panels, whether each panel was freshly packed or reused, the
// outstanding pack job, and timestamps for the overlap accounting.
type pipeStage struct {
	blk              blockSpan
	aSlot, bSlot     int
	packedA, packedB bool // false → panel reused, no pack ran
	handle           *pool.Handle
	pending          atomic.Int32
	startNs          atomic.Int64 // first pack unit to start (0 = none yet)
	doneNs           atomic.Int64 // last pack unit to finish
}

// invalidateSlots forgets packed-panel identities; called at the start of
// every pipelined run because slot keys are only meaningful against one set
// of operands. A batch loop that carries an operand unchanged into the next
// call sets keepA/keepB, which preserves that operand's keys: coordinates
// plus an identical operand (pointer, transpose, α fold) determine packed
// content, so a kept key's panel is byte-identical to what a fresh pack
// would produce.
func (e *Executor[T]) invalidateSlots() {
	if !e.keepA {
		for s := range e.aKeys {
			e.aKeys[s] = panelKey{}
			e.aTick[s] = 0
		}
	}
	if !e.keepB {
		for s := range e.bKeys {
			e.bKeys[s] = panelKey{}
			e.bTick[s] = 0
		}
	}
	if !e.keepA && !e.keepB {
		e.clock = 0
	}
}

// claimSlot returns the slot already holding key (a reuse hit) or the
// least-recently-used victim slot to pack into. busy is the slot the
// currently-computing stage reads from — never evicted, which is what makes
// the two-slot ring a safe double buffer.
func claimSlot(keys []panelKey, ticks []int64, clock *int64, key panelKey, busy int) (slot int, reused bool) {
	*clock++
	for s := range keys {
		if keys[s].valid && keys[s] == key {
			ticks[s] = *clock
			return s, true
		}
	}
	victim := -1
	for s := range keys {
		if s == busy {
			continue
		}
		if victim < 0 || ticks[s] < ticks[victim] {
			victim = s
		}
	}
	keys[victim] = key
	ticks[victim] = *clock
	return victim, false
}

// submitPack claims buffer slots for blk and enqueues the asynchronous pack
// job for whichever panels are not already resident. busyA/busyB are the
// slots of the stage currently computing (-1 for the prologue). The pack
// work is split into the same per-strip / per-panel-chunk units the
// synchronous path uses, claimed dynamically so fast workers absorb ragged
// unit costs.
//
// The profiles attribute the pack closure's time here, but the stage header
// and job closure allocate once per CB block and amortize over the block's
// mc·kc·nc compute, so the hotpathalloc allocation ban does not apply — the
// per-element work lives in packAUnit/packBUnit and the packing package.
//
//cake:hotpath-exempt per-block stage+closure alloc, amortized over block compute
func (e *Executor[T]) submitPack(a, b *matrix.Matrix[T], blk blockSpan, busyA, busyB int) *pipeStage {
	s := &pipeStage{blk: blk}
	var reusedA, reusedB bool
	s.aSlot, reusedA = claimSlot(e.aKeys, e.aTick, &e.clock, aKeyFor(blk), busyA)
	s.packedA = !reusedA
	// Resident calls hold no B slot at all: every block's panels come from
	// the store, so the slot ring, its keys and the pack units stay untouched
	// on the B side (compute substitutes the resident cell, see computeStage).
	s.bSlot = -1
	if e.resB == nil {
		s.bSlot, reusedB = claimSlot(e.bKeys, e.bTick, &e.clock, bKeyFor(blk), busyB)
		s.packedB = !reusedB
	}

	aUnits, bUnits := 0, 0
	if s.packedA {
		aUnits = e.packAUnits(blk)
	}
	if s.packedB {
		bUnits = e.packBUnits(blk)
	}
	total := aUnits + bUnits
	if total == 0 {
		return s
	}
	s.pending.Store(int32(total))
	aBuf := e.packA[s.aSlot]
	var bBuf []T
	if s.bSlot >= 0 {
		bBuf = e.packB[s.bSlot]
	}
	s.handle = e.pool.SubmitLabeled(e.packCtx, total, func(worker, u int) {
		u0 := e.now()
		s.startNs.CompareAndSwap(0, time.Now().UnixNano())
		var elems int64
		if u < aUnits {
			elems = e.packAUnit(aBuf, a, blk, u)
		} else {
			elems = e.packBUnit(bBuf, b, blk, u-aUnits)
		}
		e.span(worker, obs.PhasePack, blk.coord, u0, elems*e.elemBytes)
		if s.pending.Add(-1) == 0 {
			s.doneNs.Store(time.Now().UnixNano())
		}
	})
	return s
}

// packAUnits returns how many parallel units pack the block's A panel.
func (e *Executor[T]) packAUnits(blk blockSpan) int {
	switch e.cfg.Dim {
	case DimN:
		return ceilDiv(blk.mEff, e.cfg.MC) // one unit per core strip
	case DimM:
		return min(e.cfg.Cores, ceilDiv(blk.mEff, e.cfg.MR)) // shared panel, chunked
	default: // DimK
		return ceilDiv(blk.kEff, e.cfg.KC) // one unit per kc-deep slice
	}
}

// packAUnit packs unit u of the block's A panel into dst, reproducing the
// synchronous path's buffer layout exactly (offsets included) so compute is
// oblivious to which path packed. Returns the elements moved, for span
// accounting.
func (e *Executor[T]) packAUnit(dst []T, a *matrix.Matrix[T], blk blockSpan, u int) int64 {
	switch e.cfg.Dim {
	case DimN:
		r0 := u * e.cfg.MC
		rows := min(e.cfg.MC, blk.mEff-r0)
		e.packASlice(dst[r0*blk.kEff:], a, blk.m0+r0, rows, blk.k0, blk.kEff)
		return int64(rows) * int64(blk.kEff)
	case DimM:
		mr := e.cfg.MR
		panels := ceilDiv(blk.mEff, mr)
		perChunk := ceilDiv(panels, min(e.cfg.Cores, panels))
		p0 := u * perChunk
		pn := min(perChunk, panels-p0)
		if pn <= 0 {
			return 0
		}
		r0 := p0 * mr
		rows := min(pn*mr, blk.mEff-r0)
		e.packASlice(dst[r0*blk.kEff:], a, blk.m0+r0, rows, blk.k0, blk.kEff)
		return int64(rows) * int64(blk.kEff)
	default: // DimK
		kc := e.cfg.KC
		aSlice := packing.PackedASize(blk.mEff, kc, e.cfg.MR)
		kk0 := u * kc
		depth := min(kc, blk.kEff-kk0)
		e.packASlice(dst[u*aSlice:], a, blk.m0, blk.mEff, blk.k0+kk0, depth)
		return int64(blk.mEff) * int64(depth)
	}
}

// packBUnits returns how many parallel units pack the block's B panel.
func (e *Executor[T]) packBUnits(blk blockSpan) int {
	switch e.cfg.Dim {
	case DimN:
		return min(e.cfg.Cores, ceilDiv(blk.nEff, e.cfg.NR)) // shared panel, chunked
	case DimM:
		return ceilDiv(blk.nEff, e.cfg.MC) // one unit per core strip (nc = mc)
	default: // DimK
		return ceilDiv(blk.kEff, e.cfg.KC)
	}
}

// packBUnit packs unit u of the block's B panel into dst. Returns the
// elements moved, for span accounting.
func (e *Executor[T]) packBUnit(dst []T, b *matrix.Matrix[T], blk blockSpan, u int) int64 {
	switch e.cfg.Dim {
	case DimN:
		nr := e.cfg.NR
		panels := ceilDiv(blk.nEff, nr)
		perChunk := ceilDiv(panels, min(e.cfg.Cores, panels))
		p0 := u * perChunk
		pn := min(perChunk, panels-p0)
		if pn <= 0 {
			return 0
		}
		c0 := p0 * nr
		cols := min(pn*nr, blk.nEff-c0)
		e.packBSlice(dst[c0*blk.kEff:], b, blk.k0, blk.kEff, blk.n0+c0, cols)
		return int64(blk.kEff) * int64(cols)
	case DimM:
		c0 := u * e.cfg.MC
		cols := min(e.cfg.MC, blk.nEff-c0)
		e.packBSlice(dst[c0*blk.kEff:], b, blk.k0, blk.kEff, blk.n0+c0, cols)
		return int64(blk.kEff) * int64(cols)
	default: // DimK
		kc := e.cfg.KC
		bSlice := packing.PackedBSize(kc, blk.nEff, e.cfg.NR)
		kk0 := u * kc
		depth := min(kc, blk.kEff-kk0)
		e.packBSlice(dst[u*bSlice:], b, blk.k0+kk0, depth, blk.n0, blk.nEff)
		return int64(depth) * int64(blk.nEff)
	}
}

// computeStage runs the block's macro-kernels out of the stage's packed
// slots. The strip decomposition, core mapping and accumulation order are
// identical to the synchronous blockDim* functions, so pipelined results
// are bit-exact matches of synchronous ones.
func (e *Executor[T]) computeStage(s *pipeStage, cBlock *matrix.Matrix[T]) {
	blk := s.blk
	aBuf := e.packA[s.aSlot]
	bBuf := e.residentCell(blk.coord)
	if bBuf == nil {
		bBuf = e.packB[s.bSlot]
	}
	switch e.cfg.Dim {
	case DimN:
		mc := e.cfg.MC
		strips := ceilDiv(blk.mEff, mc)
		bp := bBuf[:packing.PackedBSize(blk.kEff, blk.nEff, e.cfg.NR)]
		e.pool.ForStaticLabeled(e.computeCtx, strips, func(core, si int) {
			u0 := e.now()
			r0 := si * mc
			rows := min(mc, blk.mEff-r0)
			ap := aBuf[r0*blk.kEff : r0*blk.kEff+packing.PackedASize(rows, blk.kEff, e.cfg.MR)]
			packing.Macro(e.kern, blk.kEff, ap, bp, cBlock.View(r0, 0, rows, blk.nEff), e.scratch[core])
			e.span(core, obs.PhaseCompute, blk.coord, u0, 0)
		})
	case DimM:
		nc := e.cfg.MC // square per-core block: nc = mc
		strips := ceilDiv(blk.nEff, nc)
		ap := aBuf[:packing.PackedASize(blk.mEff, blk.kEff, e.cfg.MR)]
		e.pool.ForStaticLabeled(e.computeCtx, strips, func(core, si int) {
			u0 := e.now()
			c0 := si * nc
			cols := min(nc, blk.nEff-c0)
			bp := bBuf[c0*blk.kEff : c0*blk.kEff+packing.PackedBSize(blk.kEff, cols, e.cfg.NR)]
			packing.Macro(e.kern, blk.kEff, ap, bp, cBlock.View(0, c0, blk.mEff, cols), e.scratch[core])
			e.span(core, obs.PhaseCompute, blk.coord, u0, 0)
		})
	default: // DimK
		kc := e.cfg.KC
		strips := ceilDiv(blk.kEff, kc)
		aSlice := packing.PackedASize(blk.mEff, kc, e.cfg.MR)
		bSlice := packing.PackedBSize(kc, blk.nEff, e.cfg.NR)
		e.pool.ForStaticLabeled(e.computeCtx, strips, func(core, si int) {
			u0 := e.now()
			kk0 := si * kc
			depth := min(kc, blk.kEff-kk0)
			ap := aBuf[si*aSlice : si*aSlice+packing.PackedASize(blk.mEff, depth, e.cfg.MR)]
			bp := bBuf[si*bSlice : si*bSlice+packing.PackedBSize(depth, blk.nEff, e.cfg.NR)]
			part := matrix.FromSlice(blk.mEff, blk.nEff, e.partials[core][:blk.mEff*blk.nEff])
			part.Zero()
			packing.Macro(e.kern, depth, ap, bp, part, e.scratch[core])
			e.span(core, obs.PhaseCompute, blk.coord, u0, 0)
		})
		// Reduce private partials into the resident C block in the same
		// strip order as the synchronous path (partials[si] holds slice si
		// because ForStatic pins strip si to core si, strips <= cores).
		chunks := e.rowChunks(blk.mEff)
		e.pool.ForStatic(chunks, func(_, ch int) {
			r0, rows := chunkSpan(ch, chunks, blk.mEff)
			for si := 0; si < strips; si++ {
				src := matrix.FromSlice(blk.mEff, blk.nEff, e.partials[si][:blk.mEff*blk.nEff])
				packing.AddInto(cBlock.View(r0, 0, rows, blk.nEff), src.View(r0, 0, rows, blk.nEff))
			}
		})
	}
}

// finishPack drains a stage's outstanding pack job and accounts its
// pack/reuse/overlap statistics. computeStart/computeEnd (UnixNano) bound
// the compute window the pack could overlap with; both zero for the
// prologue pack, which by construction overlaps nothing.
func (e *Executor[T]) finishPack(s *pipeStage, st *Stats, computeStart, computeEnd int64) {
	s.handle.Wait()
	aElems := int64(s.blk.mEff) * int64(s.blk.kEff)
	bElems := int64(s.blk.kEff) * int64(s.blk.nEff)
	if s.packedA {
		st.PackedAElems += aElems
	} else {
		st.ReusedAElems += aElems
		e.reuseEvent(s.blk.coord, aElems)
	}
	switch {
	case s.packedB:
		st.PackedBElems += bElems
	case e.resB != nil:
		st.ResidentBElems += bElems
		e.reuseEvent(s.blk.coord, bElems)
	default:
		st.ReusedBElems += bElems
		e.reuseEvent(s.blk.coord, bElems)
	}
	start, done := s.startNs.Load(), s.doneNs.Load()
	if start > 0 && done > start {
		st.PackNanos += done - start
		if computeEnd > computeStart {
			if ov := min(done, computeEnd) - max(start, computeStart); ov > 0 {
				st.OverlapNanos += ov
			}
		}
	}
}

// reuseEvent records a panel-cache hit as an instant event on the
// recorder's scheduler lane; bytes is the DRAM traffic the hit avoided.
func (e *Executor[T]) reuseEvent(blk obs.Block, elems int64) {
	if e.rec == nil {
		return
	}
	e.rec.Record(e.rec.SchedulerLane(), obs.Span{
		StartNs: time.Now().UnixNano(),
		Bytes:   elems * e.elemBytes, Block: blk, Phase: obs.PhaseReuse,
	})
}

// runPipelined executes the block schedule as a software pipeline: prologue
// pack of block 0, steady state where block i computes while block i+1
// packs, epilogue drain of the final pack before its compute. C-block
// management (zero at run start, unpack at run end) stays synchronous — it
// is cheap, and the resident partial-C buffer is shared by every block of a
// K run so it cannot ping-pong.
func (e *Executor[T]) runPipelined(c, a, b *matrix.Matrix[T], seq []schedule.Coord, st *Stats, m, k, n int) {
	e.invalidateSlots()
	// Lookahead packing only pays when another worker can run the pack while
	// this block computes. On a single-worker pool the FIFO queue would run
	// the whole next-block pack *before* the current compute, evicting the
	// panels compute is about to read; degrade to just-in-time packing there
	// and keep only the panel-reuse layer, which is where the single-core
	// win lives.
	lookahead := e.pool.Workers() > 1
	var cur *pipeStage
	if lookahead {
		cur = e.submitPack(a, b, e.spanFor(seq, 0, m, k, n), -1, -1)
		e.finishPack(cur, st, 0, 0)
	}
	for i := range seq {
		if cur == nil {
			cur = e.submitPack(a, b, e.spanFor(seq, i, m, k, n), -1, -1)
			e.finishPack(cur, st, 0, 0)
		}
		blk := cur.blk
		e.curBlk = blk.coord // orchestrator-side C management spans
		var next *pipeStage
		if lookahead && i+1 < len(seq) {
			next = e.submitPack(a, b, e.spanFor(seq, i+1, m, k, n), cur.aSlot, cur.bSlot)
		}
		cBlock := matrix.FromSlice(blk.mEff, blk.nEff, e.bufC[:blk.mEff*blk.nEff])
		if blk.runStart {
			t0 := time.Now()
			e.zeroBlock(cBlock)
			st.PackNanos += time.Since(t0).Nanoseconds()
		}
		c0 := time.Now()
		e.computeStage(cur, cBlock)
		st.ComputeNanos += time.Since(c0).Nanoseconds()
		cEnd := time.Now()
		if blk.runEnd {
			t0 := time.Now()
			e.unpack(c.View(blk.m0, blk.n0, blk.mEff, blk.nEff), cBlock)
			st.PackNanos += time.Since(t0).Nanoseconds()
			st.UnpackCElems += int64(blk.mEff) * int64(blk.nEff)
		}
		if next != nil {
			e.finishPack(next, st, c0.UnixNano(), cEnd.UnixNano())
		}
		cur = next
	}
}
