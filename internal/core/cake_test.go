package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/schedule"
)

func smallConfig(p int, dim ComputeDim) Config {
	return Config{Cores: p, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, Dim: dim, Order: OrderAuto}
}

func checkGemm[T matrix.Scalar](t *testing.T, cfg Config, m, k, n int, seed int64, tol float64) Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[T](m, k)
	b := matrix.New[T](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[T](m, n)
	c.Randomize(rng)
	want := c.Clone()

	st, err := Gemm(c, a, b, cfg)
	if err != nil {
		t.Fatalf("Gemm(%v, %dx%dx%d): %v", cfg, m, k, n, err)
	}
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, k, tol) {
		t.Fatalf("cfg=%v dims=%dx%dx%d: max diff %g", cfg, m, k, n, c.MaxAbsDiff(want))
	}
	return st
}

func TestGemmExactBlocks(t *testing.T) {
	// M,K,N exact multiples of the block dims.
	cfg := smallConfig(2, DimN) // block 32x16x32
	checkGemm[float64](t, cfg, 64, 32, 64, 1, 1e-12)
}

func TestGemmRaggedEverything(t *testing.T) {
	cfg := smallConfig(3, DimN) // block 48x16x48
	checkGemm[float64](t, cfg, 50, 23, 70, 2, 1e-12)
	checkGemm[float64](t, cfg, 1, 1, 1, 3, 1e-12)
	checkGemm[float64](t, cfg, 47, 16, 49, 4, 1e-12)
}

func TestGemmSmallerThanOneBlock(t *testing.T) {
	cfg := smallConfig(4, DimN) // block 64x16x64 — problem fits in one block
	checkGemm[float64](t, cfg, 10, 5, 12, 5, 1e-12)
}

func TestGemmSkewedShapes(t *testing.T) {
	cfg := smallConfig(2, DimN)
	checkGemm[float64](t, cfg, 200, 8, 16, 6, 1e-12)  // tall-skinny
	checkGemm[float64](t, cfg, 8, 200, 16, 7, 1e-12)  // deep
	checkGemm[float64](t, cfg, 16, 8, 200, 8, 1e-12)  // wide
	checkGemm[float64](t, cfg, 128, 1, 128, 9, 1e-12) // rank-1
}

func TestGemmAlphaGreaterThanOne(t *testing.T) {
	cfg := smallConfig(2, DimN)
	cfg.Alpha = 3 // block 32x16x96
	checkGemm[float64](t, cfg, 70, 40, 200, 10, 1e-12)
}

func TestGemmDimM(t *testing.T) {
	cfg := smallConfig(2, DimM)
	checkGemm[float64](t, cfg, 64, 32, 64, 11, 1e-12)
	checkGemm[float64](t, cfg, 50, 23, 70, 12, 1e-12)
	cfg.Alpha = 2
	checkGemm[float64](t, cfg, 90, 33, 40, 13, 1e-12)
}

func TestGemmDimK(t *testing.T) {
	cfg := smallConfig(2, DimK)
	checkGemm[float64](t, cfg, 40, 64, 40, 14, 1e-12) // K exact multiple of p·kc
	checkGemm[float64](t, cfg, 40, 70, 40, 15, 1e-12) // ragged K
	checkGemm[float64](t, cfg, 17, 100, 23, 16, 1e-12)
}

func TestGemmFloat32(t *testing.T) {
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		cfg := smallConfig(2, dim)
		checkGemm[float32](t, cfg, 60, 45, 55, 17, 2e-5)
	}
}

func TestGemmForcedOrders(t *testing.T) {
	for _, o := range []schedule.Order{schedule.OuterN, schedule.OuterM} {
		cfg := smallConfig(2, DimN)
		cfg.Order = o
		checkGemm[float64](t, cfg, 80, 40, 50, 18, 1e-12)
	}
}

func TestGemmSingleCore(t *testing.T) {
	cfg := smallConfig(1, DimN)
	checkGemm[float64](t, cfg, 33, 29, 41, 19, 1e-12)
}

func TestGemmManyCoresFewStrips(t *testing.T) {
	// More cores than strips: some cores idle, result still right.
	cfg := smallConfig(8, DimN) // block 128x16x128
	checkGemm[float64](t, cfg, 20, 40, 20, 20, 1e-12)
}

func TestGemmNonSquareTile(t *testing.T) {
	cfg := Config{Cores: 2, MC: 16, KC: 10, Alpha: 1, MR: 4, NR: 8, Dim: DimN, Order: OrderAuto}
	checkGemm[float64](t, cfg, 45, 31, 52, 21, 1e-12)
}

func TestGemmAccumulatesIntoC(t *testing.T) {
	a := matrix.New[float64](8, 8)
	b := matrix.New[float64](8, 8)
	a.Fill(1)
	b.Fill(1)
	c := matrix.New[float64](8, 8)
	c.Fill(5)
	if _, err := Gemm(c, a, b, smallConfig(2, DimN)); err != nil {
		t.Fatal(err)
	}
	if c.At(3, 3) != 13 {
		t.Fatalf("C += A×B broken: got %v want 13", c.At(3, 3))
	}
}

func TestGemmStats(t *testing.T) {
	cfg := smallConfig(2, DimN) // block 32x16x32
	st := checkGemm[float64](t, cfg, 64, 32, 64, 22, 1e-12)
	if st.Grid != (schedule.Dims{Mb: 2, Nb: 2, Kb: 2}) {
		t.Fatalf("grid %+v", st.Grid)
	}
	if st.Blocks != 8 {
		t.Fatalf("blocks %d", st.Blocks)
	}
	// Every element of A and B is touched once per block that needs it
	// (A by Nb block columns, B by Mb block rows), but the pipeline serves
	// part of that from already-packed panels at snake run boundaries.
	if st.PackedAElems+st.ReusedAElems != 2*64*32 || st.PackedBElems+st.ReusedBElems != 2*32*64 {
		t.Fatalf("packed+reused A=%d+%d B=%d+%d",
			st.PackedAElems, st.ReusedAElems, st.PackedBElems, st.ReusedBElems)
	}
	// The 2x2x2 snake revisits B panels at every M step and A panels on the
	// reversed sweeps: the reuse layer must catch some of each.
	if st.ReusedAElems == 0 || st.ReusedBElems == 0 {
		t.Fatalf("no panel reuse on a revisiting schedule: A=%d B=%d",
			st.ReusedAElems, st.ReusedBElems)
	}
	if !st.Pipelined {
		t.Fatal("default executor should be pipelined")
	}
	// C unpacked exactly once per element.
	if st.UnpackCElems != 64*64 {
		t.Fatalf("unpack %d", st.UnpackCElems)
	}
	if st.Order != schedule.OuterN {
		t.Fatalf("order %v", st.Order)
	}
}

func TestExecutorReuseAcrossCalls(t *testing.T) {
	e, err := NewExecutor[float64](smallConfig(2, DimN), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		m, k, n := 10+rng.Intn(60), 1+rng.Intn(60), 1+rng.Intn(60)
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		c := matrix.New[float64](m, n)
		a.Randomize(rng)
		b.Randomize(rng)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		if _, err := e.Gemm(c, a, b); err != nil {
			t.Fatal(err)
		}
		if !c.AlmostEqual(want, k, 1e-12) {
			t.Fatalf("trial %d (%dx%dx%d) wrong", trial, m, k, n)
		}
	}
}

func TestExecutorSharedPool(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	e, err := NewExecutor[float64](smallConfig(2, DimN), p)
	if err != nil {
		t.Fatal(err)
	}
	e.Close() // must not close the shared pool
	e2, err := NewExecutor[float64](smallConfig(4, DimN), p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	a := matrix.New[float64](32, 32)
	b := matrix.New[float64](32, 32)
	c := matrix.New[float64](32, 32)
	a.Fill(1)
	b.Fill(1)
	if _, err := e2.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 32 {
		t.Fatal("shared-pool GEMM wrong")
	}
}

func TestExecutorPoolTooSmall(t *testing.T) {
	p := pool.New(2)
	defer p.Close()
	if _, err := NewExecutor[float64](smallConfig(4, DimN), p); err == nil {
		t.Fatal("undersized pool accepted")
	}
}

func TestGemmQuickAllDims(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Cores: 1 + rng.Intn(4),
			MC:    8 * (1 + rng.Intn(3)),
			KC:    1 + rng.Intn(24),
			Alpha: 1 + 2*rng.Float64(),
			MR:    8, NR: 8,
			Dim:   ComputeDim(rng.Intn(3)),
			Order: OrderAuto,
		}
		m, k, n := 1+rng.Intn(90), 1+rng.Intn(90), 1+rng.Intn(90)
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		c := matrix.New[float64](m, n)
		a.Randomize(rng)
		b.Randomize(rng)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		if _, err := Gemm(c, a, b, cfg); err != nil {
			t.Logf("cfg %v: %v", cfg, err)
			return false
		}
		return c.AlmostEqual(want, k, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig(2, DimN)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.MC = 4 },  // < MR
		func(c *Config) { c.MC = 20 }, // not multiple of MR
		func(c *Config) { c.KC = 0 },
		func(c *Config) { c.Alpha = 0.5 },
		func(c *Config) { c.MR = 0 },
		func(c *Config) { c.Order = 7 },
		func(c *Config) { c.Dim = 9 },
	}
	for i, mut := range cases {
		c := good
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
	// DimM requires mc % nr == 0.
	c := Config{Cores: 1, MC: 12, KC: 4, Alpha: 1, MR: 4, NR: 8, Dim: DimM, Order: OrderAuto}
	if c.Validate() == nil {
		t.Fatal("DimM with mc%nr!=0 accepted")
	}
}

func TestConfigBlockDims(t *testing.T) {
	c := Config{Cores: 3, MC: 16, KC: 10, Alpha: 2, MR: 8, NR: 8}
	bm, bk, bn := c.BlockDims()
	if bm != 48 || bk != 10 || bn != 96 {
		t.Fatalf("DimN dims %d %d %d", bm, bk, bn)
	}
	c.Dim = DimM
	bm, bk, bn = c.BlockDims()
	if bm != 96 || bk != 10 || bn != 48 {
		t.Fatalf("DimM dims %d %d %d", bm, bk, bn)
	}
	c.Dim = DimK
	bm, bk, bn = c.BlockDims()
	if bm != 16 || bk != 30 || bn != 32 {
		t.Fatalf("DimK dims %d %d %d", bm, bk, bn)
	}
}

func TestGridFor(t *testing.T) {
	c := Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8}
	g := c.GridFor(65, 16, 32)
	if g != (schedule.Dims{Mb: 3, Nb: 1, Kb: 1}) {
		t.Fatalf("grid %+v", g)
	}
}

func TestPlanForPlatforms(t *testing.T) {
	for _, pl := range platform.All() {
		cfg, err := Plan(pl, 3000, 3000, 3000, 4)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid plan %v: %v", pl.Name, cfg, err)
		}
		if cfg.Cores != pl.Cores {
			t.Fatalf("%s: plan uses %d cores", pl.Name, cfg.Cores)
		}
		// The planned block must respect the LRU-safe LLC bound.
		if mem := cfg.Shape().LocalMemElems() * 4; mem > float64(pl.LLCBytes) {
			t.Fatalf("%s: block needs %v bytes > LLC %d", pl.Name, mem, pl.LLCBytes)
		}
	}
}

func TestPlanAlphaRespondsToBandwidth(t *testing.T) {
	// On all three Table 2 platforms the CB floor fits the available DRAM
	// bandwidth at α=1 (the paper sets α=1 "when there is sufficient
	// external bandwidth").
	for _, pl := range platform.All() {
		cfg, err := Plan(pl, 3000, 3000, 3000, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Alpha != 1 {
			t.Fatalf("%s: α=%v, want 1", pl.Name, cfg.Alpha)
		}
	}
	// Starve the ARM part's DRAM (50 MB/s): the planner must raise α to
	// compensate (Section 3.2's α ≥ 1/(R−1)).
	starved := platform.ARMCortexA53()
	starved.DRAMBW = 50e6
	cfg, err := Plan(starved, 3000, 3000, 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha <= 1 {
		t.Fatalf("starved platform α=%v, want > 1", cfg.Alpha)
	}
	// And the taller block must still obey the LLC LRU rule.
	if mem := cfg.Shape().LocalMemElems() * 4; mem > float64(starved.LLCBytes) {
		t.Fatalf("starved plan block %v bytes > LLC", mem)
	}
}

func TestPlanIntelMatchesPaperScale(t *testing.T) {
	// Section 4.4: i9 with p=10, α=1 uses mc=kc=192 when filling the L3
	// exactly; our LRU-guarded rule lands in the same regime.
	cfg, _ := Plan(platform.IntelI9(), 23040, 23040, 23040, 4)
	if cfg.MC < 96 || cfg.MC > 192 {
		t.Fatalf("Intel planned mc=%d, expected O(paper's 192)", cfg.MC)
	}
}

func TestPlanClampsToProblem(t *testing.T) {
	cfg, err := Plan(platform.IntelI9(), 40, 12, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.KC > 12 {
		t.Fatalf("kc=%d not clamped to K", cfg.KC)
	}
	if cfg.MC > 8*((40/10+7)/8*8)+8 {
		t.Fatalf("mc=%d not clamped to M/p", cfg.MC)
	}
	checkGemm[float32](t, cfg, 40, 12, 40, 30, 1e-5)
}

func TestPlanRejectsBadInput(t *testing.T) {
	if _, err := Plan(platform.IntelI9(), 0, 1, 1, 4); err == nil {
		t.Fatal("accepted M=0")
	}
	if _, err := Plan(platform.IntelI9(), 1, 1, 1, 0); err == nil {
		t.Fatal("accepted elemBytes=0")
	}
	bad := platform.IntelI9()
	bad.Cores = 0
	if _, err := Plan(bad, 1, 1, 1, 4); err == nil {
		t.Fatal("accepted invalid platform")
	}
}

func TestPlannedGemmEndToEnd(t *testing.T) {
	// Plan for the ARM platform (α > 1) and execute a real multiplication.
	cfg, err := Plan(platform.ARMCortexA53(), 300, 200, 250, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkGemm[float64](t, cfg, 300, 200, 250, 31, 1e-12)
}

func TestComputeDimString(t *testing.T) {
	if DimN.String() != "N" || DimM.String() != "M" || DimK.String() != "K" {
		t.Fatal("ComputeDim names")
	}
}

func TestChunkSpanCoversAll(t *testing.T) {
	for rows := 1; rows < 40; rows++ {
		for chunks := 1; chunks <= rows && chunks < 9; chunks++ {
			covered := 0
			prevEnd := 0
			for i := 0; i < chunks; i++ {
				off, cnt := chunkSpan(i, chunks, rows)
				if off != prevEnd {
					t.Fatalf("gap at chunk %d (rows=%d chunks=%d)", i, rows, chunks)
				}
				covered += cnt
				prevEnd = off + cnt
			}
			if covered != rows {
				t.Fatalf("chunks cover %d of %d rows", covered, rows)
			}
		}
	}
}

func TestGemmTransposedOperands(t *testing.T) {
	// All four op(A)/op(B) combinations across all three compute dims must
	// match the reference computed on explicitly transposed copies.
	rng := rand.New(rand.NewSource(77))
	for _, dim := range []ComputeDim{DimN, DimM, DimK} {
		cfg := smallConfig(2, dim)
		e, err := NewExecutor[float64](cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
			m, k, n := 30+rng.Intn(40), 1+rng.Intn(50), 1+rng.Intn(60)
			logicalA := matrix.New[float64](m, k)
			logicalB := matrix.New[float64](k, n)
			logicalA.Randomize(rng)
			logicalB.Randomize(rng)

			a := logicalA
			if tc.ta {
				a = logicalA.Transpose()
			}
			b := logicalB
			if tc.tb {
				b = logicalB.Transpose()
			}
			c := matrix.New[float64](m, n)
			want := matrix.New[float64](m, n)
			matrix.NaiveGemm(want, logicalA, logicalB)
			if _, err := e.GemmT(c, a, b, tc.ta, tc.tb); err != nil {
				t.Fatalf("dim=%v ta=%v tb=%v: %v", dim, tc.ta, tc.tb, err)
			}
			if !c.AlmostEqual(want, k, 1e-12) {
				t.Fatalf("dim=%v ta=%v tb=%v (%dx%dx%d): diff %g",
					dim, tc.ta, tc.tb, m, k, n, c.MaxAbsDiff(want))
			}
		}
		e.Close()
	}
}

func TestGemmTDimensionErrors(t *testing.T) {
	e, err := NewExecutor[float64](smallConfig(1, DimN), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a := matrix.New[float64](4, 5)
	b := matrix.New[float64](5, 6)
	c := matrix.New[float64](4, 6)
	// transA flips A's logical shape to 5x4: inner dims no longer agree.
	if _, err := e.GemmT(c, a, b, true, false); err == nil {
		t.Fatal("expected dimension error with transA")
	}
	// Wrong C shape.
	if _, err := e.GemmT(matrix.New[float64](6, 4), a, b, false, false); err == nil {
		t.Fatal("expected dimension error for C")
	}
}

func TestGemmTResetsBetweenCalls(t *testing.T) {
	// A transposed call must not leak its flags into the next plain call.
	e, err := NewExecutor[float64](smallConfig(2, DimN), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(9))
	a := matrix.New[float64](20, 30)
	b := matrix.New[float64](30, 25)
	a.Randomize(rng)
	b.Randomize(rng)
	want := matrix.New[float64](20, 25)
	matrix.NaiveGemm(want, a, b)

	cT := matrix.New[float64](20, 25)
	if _, err := e.GemmT(cT, a.Transpose(), b, true, false); err != nil {
		t.Fatal(err)
	}
	c := matrix.New[float64](20, 25)
	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(want, 30, 1e-12) || !cT.AlmostEqual(want, 30, 1e-12) {
		t.Fatal("transpose flag leaked across calls")
	}
}
