package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpanBytes guards the paper's §4.4 byte attribution. Every obs.Span a
// producer emits carries Bytes — the DRAM traffic the span moved (zero for
// cache-resident compute, the avoided traffic for reuse events) — and the
// conformance layer compares the summed attribution against the cbtheory
// predictors. Go zero-initialises omitted struct fields, so a new emit site
// that forgets Bytes compiles cleanly and silently under-reports traffic:
// the timeline still renders, the conformance check quietly drifts. This
// analyzer makes the attribution a decision instead of an omission: every
// obs.Span composite literal in production code must mention Bytes
// explicitly (Bytes: 0 is fine — it says "this phase moves no DRAM bytes"
// out loud), or set every field positionally.
var SpanBytes = &Analyzer{
	Name: "spanbytes",
	Doc:  "requires every obs.Span composite literal to set the §4.4 Bytes attribution field explicitly",
	Run:  runSpanBytes,
}

func runSpanBytes(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || !isSpanType(tv.Type) {
				return true
			}
			if spanLitSetsBytes(lit) {
				return true
			}
			pass.Reportf(lit.Pos(),
				"obs.Span literal does not set Bytes; §4.4 byte attribution must be explicit (use Bytes: 0 for phases that move no DRAM bytes)")
			return true
		})
	}
	return nil
}

// isSpanType matches the obs package's Span type. The package path is
// matched by suffix so the fixture package's local obs stand-in exercises
// the same code path as the real internal/obs.
func isSpanType(t types.Type) bool {
	n, ok := unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "repro/internal/obs" || strings.HasSuffix(obj.Pkg().Path(), "/obs"))
}

func spanLitSetsBytes(lit *ast.CompositeLit) bool {
	sawKeyed := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		sawKeyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Bytes" {
			return true
		}
	}
	// A full positional literal sets every field, Bytes included; Span has
	// six fields, so any positional literal that type-checks is full.
	return !sawKeyed && len(lit.Elts) > 0
}
