package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// hotcover closes the loop between the corpus profiles PR 8 commits and the
// //cake:hotpath annotations hotpathalloc enforces. The annotation set is
// hand-placed, so a function can go hot — a new batch loop, a resident serve
// path — without ever being inspected by hotpathalloc; the analytic traffic
// model then reasons about loops the machine does not actually spend its
// time in. hotcover loads every committed CPU profile, aggregates leaf-frame
// flat time per scenario (cpu-serve, cpu-batch, …, summed across epochs so
// one noisy epoch cannot flip a verdict), and requires every module function
// whose share of some scenario reaches the threshold to carry either
// //cake:hotpath or an explicit //cake:hotpath-exempt <reason> (for code
// that allocates deliberately and amortizes it, e.g. a per-block stage
// header). Closure frames (F.func1) and generic instantiations
// (F[go.shape.float64]) are attributed to the declaring function.
//
// The converse direction is advisory: a //cake:hotpath function with zero
// samples in every committed profile is reported as possibly stale — either
// the annotation outlived the code's role or the corpus scenarios no longer
// exercise it. Advisories never affect the exit code.

// DefaultHotShare is the default per-scenario flat-share threshold above
// which a function counts as hot (2%).
const DefaultHotShare = 0.02

// HotFunc is one function's aggregated profile presence.
type HotFunc struct {
	Name     string  `json:"name"`      // normalized frame name, e.g. repro/internal/matrix.(*Matrix).At
	MaxShare float64 `json:"max_share"` // largest share of any scenario's flat time
	Scenario string  `json:"scenario"`  // scenario realizing MaxShare
	Value    int64   `json:"value"`     // total flat value across all profiles
}

// HotStats is the aggregated view of a corpus profile store that hotcover
// judges against.
type HotStats struct {
	Threshold float64             // hot if MaxShare >= Threshold
	Profiles  int                 // CPU profiles aggregated
	Scenarios []string            // scenario labels seen, sorted
	Funcs     map[string]*HotFunc // normalized frame name → stats
	Notices   []string            // skipped files, empty-store notice
}

// Empty reports whether no usable CPU profile was found — hotcover then
// reports nothing (a fresh clone must not fail CI for having no history).
func (h *HotStats) Empty() bool { return h == nil || h.Profiles == 0 }

// Hot returns the functions at or above the threshold, hottest first.
func (h *HotStats) Hot() []*HotFunc {
	if h.Empty() {
		return nil
	}
	var out []*HotFunc
	for _, f := range h.Funcs {
		if f.MaxShare >= h.Threshold {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxShare != out[j].MaxShare {
			return out[i].MaxShare > out[j].MaxShare
		}
		return out[i].Name < out[j].Name
	})
	return out
}

var (
	genericInstRe  = regexp.MustCompile(`\[[^\[\]]*\]`)
	closureFrameRe = regexp.MustCompile(`(\.func\d+(\.\d+)*)+$`)
)

// NormalizeFrame reduces a runtime frame name to the declaring function:
// generic instantiation suffixes ([go.shape.float64]) are stripped and
// closure frames (.func1, .func2.1) are attributed to the enclosing
// declaration, so repro/internal/core.(*Executor[go.shape.float32]).submitPack.func1
// becomes repro/internal/core.(*Executor).submitPack.
func NormalizeFrame(name string) string {
	// Iterate to a fixpoint so nested instantiation brackets
	// (go.shape.[]uint8) strip from the inside out.
	for {
		next := genericInstRe.ReplaceAllString(name, "")
		if next == name {
			break
		}
		name = next
	}
	return closureFrameRe.ReplaceAllString(name, "")
}

// LoadHotStats aggregates every CPU profile under the corpus store layout
// corpusDir/NNNN-<rev>/*.pprof. The scenario label is the profile's base
// name (cpu-serve, cpu-batch, …); the same scenario is summed across
// epochs. Unreadable or non-CPU profiles are skipped with a notice — a
// truncated capture must degrade coverage, not fail the gate. threshold <= 0
// selects DefaultHotShare.
func LoadHotStats(corpusDir string, threshold float64) (*HotStats, error) {
	if threshold <= 0 {
		threshold = DefaultHotShare
	}
	h := &HotStats{Threshold: threshold, Funcs: map[string]*HotFunc{}}
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*", "*.pprof"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	type scen struct {
		total int64
		flat  map[string]int64
	}
	scenarios := map[string]*scen{}
	for _, path := range paths {
		sum, err := experiments.ReadProfileSummary(path)
		if err != nil {
			h.Notices = append(h.Notices, fmt.Sprintf("hotcover: skipping unreadable profile %s: %v", path, err))
			continue
		}
		if sum.SampleType != "cpu" {
			continue // heap profiles attribute allocation sites, not time
		}
		label := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sc := scenarios[label]
		if sc == nil {
			sc = &scen{flat: map[string]int64{}}
			scenarios[label] = sc
		}
		for _, fr := range sum.Frames {
			sc.flat[NormalizeFrame(fr.Name)] += fr.Value
			sc.total += fr.Value
		}
		h.Profiles++
	}
	for label, sc := range scenarios {
		h.Scenarios = append(h.Scenarios, label)
		if sc.total == 0 {
			continue
		}
		for name, v := range sc.flat {
			f := h.Funcs[name]
			if f == nil {
				f = &HotFunc{Name: name}
				h.Funcs[name] = f
			}
			f.Value += v
			if share := float64(v) / float64(sc.total); share > f.MaxShare {
				f.MaxShare = share
				f.Scenario = label
			}
		}
	}
	sort.Strings(h.Scenarios)
	if h.Profiles == 0 {
		h.Notices = append(h.Notices,
			fmt.Sprintf("hotcover: no CPU profiles under %s; hot-path coverage not checked (run `cake-bench corpus -profile` to capture an epoch)", corpusDir))
	}
	return h, nil
}

// NewHotCover builds the hotcover analyzer over aggregated profile stats.
// With empty stats the pass reports nothing.
func NewHotCover(stats *HotStats) *Analyzer {
	a := &Analyzer{
		Name:   "hotcover",
		Doc:    "requires //cake:hotpath (or //cake:hotpath-exempt) on functions hot in the committed corpus profiles; flags never-sampled annotations as stale",
		Syntax: true,
	}
	a.Run = func(pass *Pass) error {
		if stats.Empty() {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				key := pass.Path + "." + funcFrameName(fn)
				hf := stats.Funcs[key]
				annotated := hasDirective(fn.Doc, "hotpath")
				exempt := hasDirective(fn.Doc, "hotpath-exempt")
				switch {
				case hf != nil && hf.MaxShare >= stats.Threshold && !annotated && !exempt:
					pass.Reportf(fn.Name.Pos(),
						"%s is hot in committed profiles (%.1f%% of %s flat time) but carries neither //cake:hotpath nor //cake:hotpath-exempt, so hotpathalloc and escapecheck never inspect it",
						fn.Name.Name, hf.MaxShare*100, hf.Scenario)
				case annotated && hf == nil:
					pass.Advisoryf(fn.Name.Pos(),
						"%s is annotated //cake:hotpath but has zero samples in all %d committed CPU profiles; the annotation may be stale or the corpus scenarios no longer exercise it",
						fn.Name.Name, stats.Profiles)
				}
			}
		}
		return nil
	}
	return a
}

// funcFrameName renders a FuncDecl the way its runtime frame (normalized by
// NormalizeFrame) spells it relative to the package path: F for a plain
// function, T.F / (*T).F for methods, with generic parameters dropped.
func funcFrameName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	base := receiverBase(t)
	if ptr {
		return "(*" + base + ")." + fn.Name.Name
	}
	return base + "." + fn.Name.Name
}

// receiverBase extracts the receiver type name, dropping generic type
// parameter lists (Matrix[T] → Matrix).
func receiverBase(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return receiverBase(t.X)
	case *ast.IndexListExpr:
		return receiverBase(t.X)
	case *ast.ParenExpr:
		return receiverBase(t.X)
	}
	return ""
}
