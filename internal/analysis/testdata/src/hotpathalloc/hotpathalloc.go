// Package hotpathalloc seeds violations for the hotpathalloc analyzer:
// functions annotated //cake:hotpath must not allocate, defer, spawn
// goroutines, box values into interfaces, or concatenate strings.
package hotpathalloc

import "fmt"

//cake:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want `make in hot path`
}

//cake:hotpath
func badAppend(dst []int, v int) []int {
	return append(dst, v) // want `append in hot path`
}

//cake:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want `composite literal`
}

//cake:hotpath
func badClosure(xs []float64) float64 {
	double := func(x float64) float64 { return 2 * x } // want `function literal`
	total := 0.0
	for _, x := range xs {
		total += double(x)
	}
	return total
}

type unlocker interface{ Unlock() }

//cake:hotpath
func badDefer(mu unlocker) {
	defer mu.Unlock() // want `defer in hot path`
}

//cake:hotpath
func badGo(done chan struct{}) {
	go signal(done) // want `go statement in hot path`
}

func signal(done chan struct{}) { close(done) }

//cake:hotpath
func badArgBox(v float64) {
	fmt.Println(v) // want `boxes float64`
}

//cake:hotpath
func badAssignBox(v float64) (out any) {
	out = v // want `assignment boxes float64`
	return out
}

//cake:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation`
}

// goodPanicGuard shows the exemption: a terminal panic's arguments may
// allocate — the guard fires at most once, on the way out.
//
//cake:hotpath
func goodPanicGuard(dst []float64, n int) {
	if len(dst) < n {
		panic(fmt.Sprintf("hotpathalloc: dst %d < %d", len(dst), n))
	}
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
}

// coldAlloc is not annotated: allocation is fine off the hot path.
func coldAlloc(n int) []float64 { return make([]float64, n) }
