// Package hotcover seeds coverage cases for the hotcover analyzer. The
// companion test synthesizes a corpus CPU profile (via
// experiments.WriteProfile) whose frames reference these functions by their
// runtime names; the analyzer must demand annotation on the hot ones,
// accept explicit exemptions, flag never-sampled annotations as stale, and
// ignore frames whose functions no longer exist.
package hotcover

// HotAnnotated is hot in the synthetic profile and correctly annotated.
//
//cake:hotpath
func HotAnnotated(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// HotUnannotated is hot but carries no directive: the coverage gap hotcover
// exists to catch.
func HotUnannotated(xs []float64) float64 { // want `HotUnannotated is hot in committed profiles .* carries neither //cake:hotpath nor //cake:hotpath-exempt`
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Ring exercises method-frame matching: the profile spells the frame
// (*Ring).Push with a generic-free receiver.
type Ring struct {
	buf []int
	n   int
}

func (r *Ring) Push(v int) { // want `Push is hot in committed profiles`
	r.buf[r.n%len(r.buf)] = v
	r.n++
}

// HotGeneric is sampled as HotGeneric[go.shape.float64]; normalization must
// attribute the instantiation to this declaration.
func HotGeneric[T ~float32 | ~float64](xs []T) T { // want `HotGeneric is hot in committed profiles`
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

// HotExempt is hot through its worker closure (frame HotExempt.func1) but
// deliberately allocates per call and says so; the exemption satisfies the
// coverage requirement.
//
//cake:hotpath-exempt per-batch setup allocation, amortized over the batch
func HotExempt(n int) func() int {
	return func() int { return n * 2 }
}

// ColdAnnotated never appears in any profile: a stale annotation, reported
// as an advisory.
//
//cake:hotpath
func ColdAnnotated(a, b int) int { // want `ColdAnnotated is annotated //cake:hotpath but has zero samples`
	return a*31 + b
}

// Warm appears in the profile but below the share threshold; no directive
// is required.
func Warm(a int) int {
	return a + 1
}
