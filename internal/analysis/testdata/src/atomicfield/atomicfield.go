// Package atomicfield seeds violations for the atomicfield analyzer: a
// field accessed via sync/atomic anywhere in the package must be accessed
// via sync/atomic everywhere, and sync/atomic values must never be copied.
package atomicfield

import "sync/atomic"

type ring struct {
	cursor int64
	data   []int
}

func (r *ring) push(v int) {
	i := atomic.AddInt64(&r.cursor, 1) - 1
	r.data[i%int64(len(r.data))] = v
}

func (r *ring) badRead() int64 {
	return r.cursor // want `plain access to field .*cursor`
}

func (r *ring) badWrite() {
	r.cursor = 0 // want `plain access to field .*cursor`
}

func (r *ring) goodRead() int64 {
	return atomic.LoadInt64(&r.cursor)
}

type counters struct {
	hits atomic.Int64
}

func (c *counters) badCopy() int64 {
	snap := c.hits // want `copies sync/atomic\.Int64`
	return snap.Load()
}

func (c *counters) goodRead() int64 { return c.hits.Load() }

type bank struct {
	lanes []counters
}

func (b *bank) badSum() int64 {
	var total int64
	for _, lane := range b.lanes { // want `range value copies`
		total += lane.hits.Load()
	}
	return total
}

func (b *bank) goodSum() int64 {
	var total int64
	for i := range b.lanes {
		total += b.lanes[i].hits.Load()
	}
	return total
}
