// Package resident seeds leasebalance violations in the shape of the
// engine's resident-operand store: acquire pins an operand and returns a
// refcounted handle; every path — success, error, panic — must Release the
// pin or transfer it outward, else the operand is unevictable forever
// (a budget leak, the resident-store analogue of a dropped executor lease).
package resident

import "errors"

var errEvicted = errors.New("operand evicted")

type handle struct{ payload any }

func (h *handle) Payload() any { return h.payload }
func (h *handle) Release()     {}

type store struct{ entries map[string]*handle }

// acquire pins id's panels; the caller owns the pin on every path.
//
//cake:lease
func (s *store) acquire(id string) (*handle, error) {
	h, ok := s.entries[id]
	if !ok {
		return nil, errEvicted
	}
	return h, nil
}

type operand struct{ panels []float64 }

func (o *operand) serve() {}

// goodDeferred is the blessed serve shape: pin, defer the unpin, then do
// panic-capable GEMM work.
func goodDeferred(s *store, id string) error {
	h, err := s.acquire(id)
	if err != nil {
		return err
	}
	defer h.Release()
	op := h.Payload().(*operand)
	op.serve()
	return nil
}

// goodGuardedTransfer releases on the mismatch arm and transfers ownership
// outward on success — the typed-acquire pattern.
func goodGuardedTransfer(s *store, id string) (*handle, error) {
	h, err := s.acquire(id)
	if err != nil {
		return nil, err
	}
	if h.payload == nil {
		h.Release()
		return nil, errEvicted
	}
	return h, nil
}

func badDropped(s *store, id string) {
	h, _ := s.acquire(id) // want `not released or returned`
	_ = h.Payload()
}

// badErrorPath unpins on success but leaks the pin on the mismatch arm.
func badErrorPath(s *store, id string) error {
	h, err := s.acquire(id)
	if err != nil {
		return err
	}
	op, ok := h.payload.(*operand)
	if !ok {
		return errEvicted // want `return without releasing`
	}
	op.serve()
	h.Release()
	return nil
}

// badNoDefer unpins on every path, but only after panic-capable work with
// no defer: a packing-layout panic would leave the operand pinned forever.
func badNoDefer(s *store, id string) error {
	h, err := s.acquire(id) // want `release it in a defer`
	if err != nil {
		return err
	}
	op := h.Payload().(*operand)
	op.serve()
	h.Release()
	return nil
}
