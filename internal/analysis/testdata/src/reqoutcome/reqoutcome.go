// Package reqoutcome seeds violations for the reqoutcome analyzer: every
// reqtrace.Record composite literal must set the Outcome field explicitly
// (Outcome: reqtrace.OutcomeUnset is a decision — "a later assignment
// decides"; an omitted Outcome is a request that silently reports unset
// forever).
package reqoutcome

import "repro/internal/obs/reqtrace"

func goodKeyed(id uint64) reqtrace.Record {
	return reqtrace.Record{ID: id, Tier: "tiny", Outcome: reqtrace.OutcomeOK}
}

func goodUnsetOnPurpose(id uint64) reqtrace.Record {
	return reqtrace.Record{ID: id, Outcome: reqtrace.OutcomeUnset}
}

func goodFailure(id uint64, msg string) reqtrace.Record {
	return reqtrace.Record{ID: id, Outcome: reqtrace.OutcomeSaturated, Err: msg}
}

func badMissingOutcome(id uint64) reqtrace.Record {
	return reqtrace.Record{ID: id, Tier: "large"} // want `does not set Outcome`
}

func badEmpty() reqtrace.Record {
	return reqtrace.Record{} // want `does not set Outcome`
}

func badNested(id uint64) []reqtrace.Record {
	return []reqtrace.Record{
		{ID: id, Outcome: reqtrace.OutcomeOK},
		{ID: id + 1, Tier: "small"}, // want `does not set Outcome`
	}
}
