// Package spanbytes seeds violations for the spanbytes analyzer: every
// obs.Span composite literal must set the §4.4 Bytes attribution field
// explicitly (Bytes: 0 is a decision; an omitted Bytes is a silent
// under-report).
package spanbytes

import "repro/internal/obs"

func goodKeyed(start, moved int64) obs.Span {
	return obs.Span{StartNs: start, DurNs: 1, Bytes: moved, Phase: obs.PhasePack}
}

func goodExplicitZero(start int64) obs.Span {
	return obs.Span{StartNs: start, DurNs: 1, Bytes: 0, Phase: obs.PhaseCompute}
}

func goodPositional(start int64) obs.Span {
	return obs.Span{start, 1, 0, obs.Block{M: 1, K: 1, N: 1}, 0, obs.PhaseCompute}
}

func badMissingBytes(start int64) obs.Span {
	return obs.Span{StartNs: start, DurNs: 1, Phase: obs.PhaseCompute} // want `does not set Bytes`
}

func badEmpty() obs.Span {
	return obs.Span{} // want `does not set Bytes`
}
