// Package leasebalance seeds violations for the leasebalance analyzer:
// resources from a sync.Pool or a //cake:lease function must be released or
// ownership-transferred on every control-flow path, and released in a defer
// when work between acquisition and release may panic.
package leasebalance

import (
	"errors"
	"sync"
)

type scratch struct{ buf []byte }

func (s *scratch) Work()  { s.buf = s.buf[:0] }
func (s *scratch) Close() {}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// lease mints a leased scratch; the caller owns the release.
//
//cake:lease
func lease() *scratch {
	if v := pool.Get(); v != nil {
		return v.(*scratch)
	}
	return new(scratch)
}

var errBoom = errors.New("boom")

// open mints a lease with the (resource, error) shape.
//
//cake:lease
func open(fail bool) (*scratch, error) {
	if fail {
		return nil, errBoom
	}
	return new(scratch), nil
}

func goodDeferred() {
	s := lease()
	defer pool.Put(s)
	s.Work()
}

// goodOkFlag is the blessed shape for success/failure-asymmetric releases.
func goodOkFlag(fail bool) error {
	s := lease()
	ok := false
	defer func() {
		if ok {
			pool.Put(s)
		} else {
			s.Close()
		}
	}()
	s.Work()
	if fail {
		return errBoom
	}
	ok = true
	return nil
}

// goodHeldAcrossLoop is the batched-dispatch shape: ONE lease held across a
// loop of N work items (one admission, one lease, N multiplies), released
// once in a defer after the whole loop rather than re-acquired per
// iteration.
func goodHeldAcrossLoop(items []int) {
	s := lease()
	defer pool.Put(s)
	for range items {
		s.Work()
	}
}

// goodHeldAcrossLoopErr bails out mid-batch: the deferred release still
// covers every early-return path out of the loop.
func goodHeldAcrossLoopErr(items []int, fail bool) error {
	s := lease()
	defer pool.Put(s)
	for range items {
		s.Work()
		if fail {
			return errBoom
		}
	}
	return nil
}

func goodTransfer() *scratch {
	s := lease()
	return s
}

func goodErrGuard() (*scratch, error) {
	s, err := open(false)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// openTagged mints a lease with the (resource, detail, error) shape the
// engine's executor leasing uses — the error is conventionally last.
//
//cake:lease
func openTagged(fail bool) (*scratch, bool, error) {
	if fail {
		return nil, false, errBoom
	}
	return new(scratch), true, nil
}

func goodTaggedErrGuard() (*scratch, error) {
	s, _, err := openTagged(false)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func badTaggedDropped(fail bool) error {
	s, _, err := openTagged(fail)
	if err != nil {
		return err
	}
	_ = s
	return nil // want `return without releasing`
}

func badDropped() {
	s := lease() // want `not released or returned`
	s.Work()
}

func badErrorPath(fail bool) error {
	s := lease() // want `release it in a defer`
	s.Work()
	if fail {
		return errBoom // want `return without releasing`
	}
	pool.Put(s)
	return nil
}
