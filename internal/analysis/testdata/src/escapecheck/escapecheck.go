// Package escapecheck seeds violations for the escapecheck analyzer: the
// compiler's escape analysis (go build -gcflags='-m -m') must not report a
// heap allocation inside a //cake:hotpath function. The companion test
// captures the real compiler diagnostics for this package and also parses a
// synthetic pre-captured log, so both ingestion paths are pinned.
package escapecheck

import "fmt"

var boxSink any

// movedToHeap returns the address of a local: the compiler moves v to the
// heap, the very allocation hotpathalloc's AST view cannot see (no make, no
// composite literal — just an & that outlives the frame).
//
//cake:hotpath
func movedToHeap() *int {
	v := 42 // want `moved to heap`
	return &v
}

// escapingMake grows into the caller: the make escapes.
//
//cake:hotpath
func escapingMake(n int) []int {
	buf := make([]int, n) // want `escapes to heap`
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// closureCapture heap-allocates twice: the captured counter moves to the
// heap and the returned closure itself escapes.
//
//cake:hotpath
func closureCapture() func() int {
	n := 0              // want `moved to heap`
	return func() int { // want `escapes to heap`
		n++
		return n
	}
}

// boxToAny stores a concrete value into an interface sink: the boxing
// allocation is an escape at the assignment.
//
//cake:hotpath
func boxToAny(v float64) {
	boxSink = v // want `escapes to heap`
}

// guarded's only escapes sit inside the terminal panic argument — the
// idiomatic guard clause — and must stay exempt, exactly as hotpathalloc
// exempts them.
//
//cake:hotpath
func guarded(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("escapecheck: negative %d", n))
	}
	return n * 2
}

// hotRecursive cannot inline (recursion defeats the inliner); that is an
// advisory — callers pay a call frame — never an error.
//
//cake:hotpath
func hotRecursive(n int) int { // want `hot path hotRecursive does not inline`
	if n <= 1 {
		return 1
	}
	return n * hotRecursive(n-1)
}

// coldEscape allocates identically to movedToHeap but carries no directive;
// escapecheck must stay silent.
func coldEscape() *int {
	v := 7
	return &v
}

var use = [...]any{movedToHeap, escapingMake, closureCapture, boxToAny, guarded, hotRecursive, coldEscape}
