// Package analysis is cake-vet: a suite of static analyzers that
// mechanically enforce the repo's concurrency and hot-path invariants. The
// codebase carries real concurrency surface — lock-free span rings in
// internal/obs, single-flight executors behind an atomic guard in
// internal/core, sync.Pool executor leasing in internal/engine — and
// hot-path kernels whose performance story (the paper's §4.4 byte
// attribution and the constant-bandwidth claim) silently breaks if an
// allocation, defer or plain read of an atomic field sneaks into a loop.
// These invariants used to live in code review; this package turns each one
// into a re-runnable check (GEMMbench's argument: reproducible GEMM work
// needs mechanical verification, not one-off diligence).
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Reportf — but is self-contained on the standard library (go/ast, go/types,
// go/importer): the build environment is hermetic, so the suite cannot
// depend on fetched modules. Packages are loaded via `go list -export`
// (see load.go) and each analyzer receives fully type-checked syntax.
//
// Analyzers (see DESIGN §9 for the invariants' rationale):
//
//   - atomicfield: a struct field accessed through sync/atomic anywhere must
//     never be read or written plainly, and sync/atomic value types
//     (atomic.Int64 & friends) must never be copied.
//   - hotpathalloc: functions annotated //cake:hotpath must not allocate
//     (make/new/append/composite literals/closures), defer, spawn
//     goroutines, convert to interfaces, or concatenate strings.
//   - leasebalance: a resource obtained from a sync.Pool or a //cake:lease
//     function must be released (Put/Close/Release) or ownership-transferred
//     on every control-flow path, with a deferred release when the resource
//     does work that could panic.
//   - spanbytes: every obs.Span composite literal must set Bytes explicitly,
//     so the §4.4 DRAM-traffic attribution is always a decision, never an
//     omission.
//   - reqoutcome: every reqtrace.Record composite literal must set Outcome
//     explicitly — a request record whose outcome was never decided must be
//     visible as unset, not silently zero.
//
// Two further passes are profile-guided rather than purely structural and
// are constructed with external inputs (see DESIGN §15):
//
//   - hotcover (NewHotCover): joins the committed corpus pprof profiles to
//     the annotation set — any function whose leaf flat share of a
//     scenario's CPU time reaches the threshold must carry //cake:hotpath
//     (so hotpathalloc inspects it) or an explicit //cake:hotpath-exempt
//     with a reason; annotated functions never sampled in any committed
//     profile are advisory staleness findings.
//   - escapecheck (NewEscapeCheck): attributes the compiler's own
//     escape-analysis diagnostics (go build -gcflags=-m) to enclosing
//     functions and fails when a //cake:hotpath function heap-allocates —
//     the compiler-introduced boxing, closure captures and append growth
//     that AST-level hotpathalloc structurally cannot see.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Syntax analyzers run off parsed
// ASTs alone (Pass.Pkg and Pass.Info may be nil when packages were loaded
// with LoadSyntax); all others require the fully type-checked Load.
type Analyzer struct {
	Name   string
	Doc    string
	Syntax bool
	Run    func(*Pass) error
}

// Pass carries one loaded package through one analyzer. Path is the
// package's import path; Pkg and Info are nil under LoadSyntax.
type Pass struct {
	Analyzer *Analyzer
	Path     string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic severities. Errors fail the go-vet exit contract; advisories
// inform (stale annotations, inlining misses) and never flip the exit code.
const (
	SeverityError    = "error"
	SeverityAdvisory = "advisory"
)

// Diagnostic is one reported finding. Severity is SeverityError for
// violations and SeverityAdvisory for informational findings.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Severity string
}

func (d Diagnostic) String() string {
	if d.Severity == SeverityAdvisory {
		return fmt.Sprintf("%s: [%s] advisory: %s", d.Pos, d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Severity: SeverityError,
	})
}

// Advisoryf records an informational finding at pos. Advisories surface in
// -json output and TestSuiteCleanOnRepo logs but never fail a run.
func (p *Pass) Advisoryf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Severity: SeverityAdvisory,
	})
}

// Suite returns every cake-vet analyzer, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		HotPathAlloc,
		LeaseBalance,
		SpanBytes,
		ReqOutcome,
	}
}

// ByName returns the named analyzer from Suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the analyzers over the loaded packages and returns every
// diagnostic, sorted by file position.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.Syntax && pkg.Info == nil {
				return diags, fmt.Errorf("%s: %s: analyzer needs type information but package was loaded with LoadSyntax", a.Name, pkg.Path)
			}
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// hasDirective reports whether the comment group carries the //cake:<name>
// directive. Directives follow the standard Go directive shape: no space
// after //, the directive alone on its line.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//cake:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// pkgFuncCall reports whether call invokes pkgPath.name (a package-level
// function accessed through an import), returning true and the resolved
// object name on match.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	if _, ok := obj.(*types.Func); !ok {
		return "", false
	}
	return obj.Name(), true
}

// namedFrom unwraps ptr/alias sugar and returns the named type and whether
// it is declared in pkgPath with the given name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	t = unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func unalias(t types.Type) types.Type {
	if a, ok := t.(*types.Alias); ok {
		return types.Unalias(a)
	}
	return t
}
