package analysis

import "testing"

// TestFixtures runs every suite analyzer over its testdata fixture package
// and requires an exact match between the diagnostics produced and the
// `// want "re"` annotations: each analyzer must catch its seeded
// violations and stay silent on the conforming code next to them.
func TestFixtures(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			problems, err := FixtureDiff(a, FixtureDir(a.Name))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestResidentFixture runs leasebalance over the resident-store-shaped
// fixture: the pin/unpin pair of the engine's operand store is the same
// lease obligation as an executor lease, and the analyzer must prove the
// unpin on success, error, and panic paths alike.
func TestResidentFixture(t *testing.T) {
	problems, err := FixtureDiff(LeaseBalance, FixtureDir("resident"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
