package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteCleanOnRepo is the regression gate behind scripts/verify.sh and
// the CI cake-vet job: the real tree must carry zero invariant violations —
// including the profile-guided passes, so every function hot in the
// committed corpus is annotated and no //cake:hotpath function heap-
// allocates per the compiler's own escape analysis. Anything this test
// errors on is either a genuine regression or a new exemption that belongs
// in DESIGN.md alongside an analyzer change. Advisories (stale annotations,
// cannot-inline notes) are logged, never failed: they describe follow-up
// work, not broken invariants.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module; covered by verify.sh's cake-vet step")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Skip("not running inside the module")
	}
	root := filepath.Dir(gomod)
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}

	stats, err := LoadHotStats(filepath.Join(root, "results", "corpus"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range stats.Notices {
		t.Log(n)
	}
	elog, _, err := CaptureEscapeDiagnostics(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := append(Suite(), NewHotCover(stats), NewEscapeCheck(elog))

	diags, err := Check(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Severity == SeverityAdvisory {
			t.Logf("%s", d)
			continue
		}
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range Suite() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error(`ByName("nope") should be nil`)
	}
}
