package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteCleanOnRepo is the regression gate behind scripts/verify.sh and
// the CI cake-vet job: the real tree must carry zero invariant violations.
// Anything this test reports is either a genuine regression or a new
// exemption that belongs in DESIGN.md §9 alongside an analyzer change.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module; covered by verify.sh's cake-vet step")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Skip("not running inside the module")
	}
	pkgs, err := Load(filepath.Dir(gomod), "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(pkgs, Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range Suite() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error(`ByName("nope") should be nil`)
	}
}
