package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only (invariants target production code)
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (./..., explicit dirs, import paths) relative to
// dir and returns each matched package fully type-checked. It shells out to
// `go list -export -deps` so import resolution and export data come from
// the real build — the same compiler artifacts `go build` uses — and then
// type-checks each target's sources with the standard library's gc-export
// importer. No third-party machinery: the build environment is hermetic.
//
// Test files are deliberately excluded: the invariants guard production
// hot paths, and fixtures under testdata construct violations on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, exports, err := listPackages(dir, true, patterns)
	if err != nil {
		return nil, err
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", lookup),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// LoadSyntax resolves patterns like Load but stops at parsed ASTs: no
// -export, no -deps, no type checking. Packages come back with Types and
// Info nil, which is all an Analyzer with Syntax set needs — the
// profile-guided passes match functions by name and position, so a
// cake-vet run restricted to them skips the typecheck entirely.
func LoadSyntax(dir string, patterns ...string) ([]*Package, error) {
	targets, _, err := listPackages(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
		})
	}
	return pkgs, nil
}

// listPackages shells out to `go list` and returns the target packages
// matched by patterns plus (when export is set) the compiled export data of
// every dependency, keyed by import path.
func listPackages(dir string, export bool, patterns []string) ([]listPackage, map[string]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e"}
	if export {
		args = append(args, "-export", "-deps")
	}
	args = append(args, "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error", "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	return targets, exports, nil
}
