package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fixturePkgPath is the import path `go list` resolves for a fixture
// directory; profile frames must spell functions relative to it.
const hotcoverPkgPath = "repro/internal/analysis/testdata/src/hotcover"

// writeHotcoverCorpus synthesizes a corpus store with one epoch whose CPU
// profile references the hotcover fixture. Shares (out of 1000 total):
// every named frame except Warm (1%) clears the 2% default threshold.
func writeHotcoverCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	epoch := filepath.Join(dir, "0001-deadbeef")
	if err := os.MkdirAll(epoch, 0o755); err != nil {
		t.Fatal(err)
	}
	frames := []experiments.Frame{
		{Name: hotcoverPkgPath + ".HotAnnotated", Value: 300},
		{Name: hotcoverPkgPath + ".HotUnannotated", Value: 250},
		{Name: hotcoverPkgPath + ".(*Ring).Push", Value: 120},
		{Name: hotcoverPkgPath + ".HotGeneric[go.shape.float64]", Value: 100},
		{Name: hotcoverPkgPath + ".HotExempt.func1", Value: 90},
		{Name: hotcoverPkgPath + ".Deleted", Value: 80}, // no such decl anymore
		{Name: "runtime.memmove", Value: 50},            // outside the module
		{Name: hotcoverPkgPath + ".Warm", Value: 10},
	}
	if err := experiments.WriteProfile(filepath.Join(epoch, "cpu-test.pprof"), "cpu", "nanoseconds", frames); err != nil {
		t.Fatal(err)
	}
	// A heap profile in the same epoch must be ignored: allocation sites
	// (constructors, growth) are not time and must not drive coverage.
	heap := []experiments.Frame{{Name: hotcoverPkgPath + ".Warm", Value: 1 << 30}}
	if err := experiments.WriteProfile(filepath.Join(epoch, "heap-test.pprof"), "inuse_space", "bytes", heap); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestHotCoverFixture pins the analyzer against the annotated fixture: hot
// functions (plain, method, generic, closure-attributed) must be demanded
// or accepted exactly as the `// want` comments say.
func TestHotCoverFixture(t *testing.T) {
	stats, err := LoadHotStats(writeHotcoverCorpus(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Empty() {
		t.Fatal("synthetic corpus parsed as empty")
	}
	problems, err := FixtureDiff(NewHotCover(stats), FixtureDir("hotcover"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestHotCoverEmptyStore: a fresh clone has no corpus history; the pass must
// skip with a notice and report nothing, never fail.
func TestHotCoverEmptyStore(t *testing.T) {
	stats, err := LoadHotStats(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Empty() {
		t.Fatalf("want empty stats, got %d profiles", stats.Profiles)
	}
	if len(stats.Notices) != 1 || !strings.Contains(stats.Notices[0], "no CPU profiles") {
		t.Fatalf("want a single empty-store notice, got %q", stats.Notices)
	}
	pkgs, err := LoadSyntax(FixtureDir("hotcover"), ".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(pkgs, []*Analyzer{NewHotCover(stats)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("empty store must report nothing, got %v", diags)
	}
}

// TestHotCoverCorruptProfiles: truncated or garbage pprof files are skipped
// with a notice while intact profiles in the same store keep aggregating.
func TestHotCoverCorruptProfiles(t *testing.T) {
	dir := writeHotcoverCorpus(t)
	epoch := filepath.Join(dir, "0002-cafef00d")
	if err := os.MkdirAll(epoch, 0o755); err != nil {
		t.Fatal(err)
	}
	// Garbage bytes: not gzip, not proto.
	if err := os.WriteFile(filepath.Join(epoch, "cpu-garbage.pprof"), []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncated gzip: valid magic, cut mid-stream.
	data, err := experiments.MarshalProfile("cpu", "nanoseconds", []experiments.Frame{{Name: "x", Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(epoch, "cpu-truncated.pprof"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	stats, err := LoadHotStats(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Profiles != 1 {
		t.Fatalf("want 1 intact CPU profile aggregated, got %d", stats.Profiles)
	}
	if len(stats.Notices) != 2 {
		t.Fatalf("want 2 skip notices (garbage + truncated), got %q", stats.Notices)
	}
	for _, n := range stats.Notices {
		if !strings.Contains(n, "skipping unreadable profile") {
			t.Errorf("notice %q does not name the skipped profile", n)
		}
	}
	// The intact profile still drives the same fixture verdicts.
	problems, err := FixtureDiff(NewHotCover(stats), FixtureDir("hotcover"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestHotCoverDeletedFunction: frames referencing functions that no longer
// exist (deleted since the epoch was captured) are aggregated but produce no
// finding — coverage is judged against declarations, not history.
func TestHotCoverDeletedFunction(t *testing.T) {
	stats, err := LoadHotStats(writeHotcoverCorpus(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	deleted := stats.Funcs[hotcoverPkgPath+".Deleted"]
	if deleted == nil || deleted.MaxShare < stats.Threshold {
		t.Fatal("synthetic Deleted frame should aggregate as hot")
	}
	pkgs, err := LoadSyntax(FixtureDir("hotcover"), ".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(pkgs, []*Analyzer{NewHotCover(stats)})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "Deleted") {
			t.Errorf("deleted function produced a finding: %s", d)
		}
	}
}

func TestNormalizeFrame(t *testing.T) {
	cases := map[string]string{
		"repro/internal/kernel.kernel8x8[go.shape.float64]":                  "repro/internal/kernel.kernel8x8",
		"repro/internal/matrix.(*Matrix[go.shape.float32]).At":               "repro/internal/matrix.(*Matrix).At",
		"repro/internal/core.(*Executor[go.shape.float64]).submitPack.func1": "repro/internal/core.(*Executor).submitPack",
		"repro/internal/engine.runPooled[go.shape.float32].func2.1":          "repro/internal/engine.runPooled",
		"runtime.memmove":                     "runtime.memmove",
		"example.com/m.F[go.shape.[]uint8]":   "example.com/m.F",
		"repro/internal/obs.(*Recorder).Span": "repro/internal/obs.(*Recorder).Span",
	}
	for in, want := range cases {
		if got := NormalizeFrame(in); got != want {
			t.Errorf("NormalizeFrame(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestHotStatsHotOrder: Hot() returns threshold-clearing functions hottest
// first, so reports and -json output lead with the biggest gap.
func TestHotStatsHotOrder(t *testing.T) {
	stats, err := LoadHotStats(writeHotcoverCorpus(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := stats.Hot()
	if len(hot) == 0 {
		t.Fatal("no hot functions")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].MaxShare > hot[i-1].MaxShare {
			t.Errorf("Hot() out of order at %d: %f > %f", i, hot[i].MaxShare, hot[i-1].MaxShare)
		}
	}
	if hot[0].Name != hotcoverPkgPath+".HotAnnotated" {
		t.Errorf("hottest = %s, want HotAnnotated", hot[0].Name)
	}
}
