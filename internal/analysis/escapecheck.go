package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// escapecheck cross-checks the //cake:hotpath contract against the
// compiler's own escape analysis. hotpathalloc rejects the allocation
// *patterns* visible in the AST — make, append, closures, interface
// conversions — but the decisions that actually put a value on the heap are
// made later, by the gc escape pass: a variable moved to heap because its
// address outlives the frame, a capture the closure forces to escape, a
// conversion the inliner failed to devirtualize. escapecheck captures
// `go build -gcflags=-m` diagnostics (or parses a pre-captured log for
// hermetic runs and CI caching), attributes each line to its enclosing
// function, and fails when a //cake:hotpath function heap-allocates.
//
// Three diagnostic kinds are attributed:
//
//   - "escapes to heap"  → error in a hot function
//   - "moved to heap"    → error in a hot function
//   - "cannot inline"    → advisory on a hot function (expected for the big
//     unrolled kernels, interesting for small leaf helpers)
//
// Escapes inside a terminal panic(...) argument are exempt, mirroring
// hotpathalloc: the guard-clause fmt.Sprintf runs at most once, on the way
// out.

// EscapeKind classifies one attributed compiler diagnostic.
type EscapeKind int

const (
	EscapeHeap     EscapeKind = iota // "... escapes to heap"
	EscapeMoved                      // "moved to heap: x"
	EscapeNoInline                   // "cannot inline f: ..."
)

// EscapeDiag is one compiler diagnostic resolved to a file position.
type EscapeDiag struct {
	File    string // absolute path
	Line    int
	Col     int
	Kind    EscapeKind
	Message string
}

// EscapeLog is the parsed escape-analysis output for one build, indexed by
// absolute file path.
type EscapeLog struct {
	ByFile map[string][]EscapeDiag
	Diags  int // total attributable diagnostics parsed
}

// CaptureEscapeDiagnostics runs `go build -gcflags=-m` over patterns in dir
// and returns both the parsed log and the raw compiler output (so callers
// can cache the bytes and re-parse them later with ParseEscapeDiagnostics).
// The build cache replays diagnostics, so repeated captures are cheap.
func CaptureEscapeDiagnostics(dir string, patterns ...string) (*EscapeLog, []byte, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -m -m: level 1 only prints positive inlining decisions; the
	// "cannot inline" attribution needs level 2. Escape verdicts are
	// identical at both levels, level 2 just adds flow detail lines (which
	// the parser skips).
	args := append([]string{"build", "-gcflags=-m -m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go build -gcflags=-m %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	log, err := ParseEscapeDiagnostics(stderr.Bytes(), dir)
	return log, stderr.Bytes(), err
}

// ParseEscapeDiagnostics parses `go build -gcflags=-m` output. Relative
// file paths are resolved against root (the directory the build ran in).
// Lines that are not position-prefixed diagnostics (package headers, blank
// lines) and diagnostic kinds escapecheck does not attribute ("can inline",
// "inlining call to", "leaking param", …) are skipped.
func ParseEscapeDiagnostics(out []byte, root string) (*EscapeLog, error) {
	log := &EscapeLog{ByFile: map[string][]EscapeDiag{}}
	// A generic function's diagnostics replay once per instantiation and
	// once per importing package's build; dedupe by position and kind so
	// each decision is attributed exactly once.
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, ok := parseEscapeLine(line, root)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%d", d.File, d.Line, d.Col, d.Kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		log.ByFile[d.File] = append(log.ByFile[d.File], d)
		log.Diags++
	}
	return log, nil
}

// parseEscapeLine decodes "path:line:col: message" and classifies the
// message, returning ok=false for kinds escapecheck does not attribute.
func parseEscapeLine(line, root string) (EscapeDiag, bool) {
	var d EscapeDiag
	// path:line:col: message — split from the left so the message may
	// contain colons freely.
	rest := line
	ci := strings.Index(rest, ":")
	if ci <= 0 {
		return d, false
	}
	// Windows-free builds: the first segment is the path.
	path := rest[:ci]
	rest = rest[ci+1:]
	ci = strings.Index(rest, ":")
	if ci <= 0 {
		return d, false
	}
	lineNo, err := strconv.Atoi(rest[:ci])
	if err != nil {
		return d, false
	}
	rest = rest[ci+1:]
	ci = strings.Index(rest, ":")
	if ci <= 0 {
		return d, false
	}
	colNo, err := strconv.Atoi(rest[:ci])
	if err != nil {
		return d, false
	}
	msg := strings.TrimSpace(rest[ci+1:])

	switch {
	case strings.HasPrefix(msg, "moved to heap"):
		d.Kind = EscapeMoved
	case strings.HasSuffix(msg, "escapes to heap"):
		d.Kind = EscapeHeap
		// Note: -m -m also prints a flow-detail header "x escapes to heap:"
		// (trailing colon) for every escape INCLUDING moved-to-heap
		// variables; the suffix match deliberately rejects it so a moved
		// variable is attributed once, as EscapeMoved.
	case strings.HasPrefix(msg, "cannot inline"):
		d.Kind = EscapeNoInline
	default:
		return d, false
	}
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	d.File = filepath.Clean(path)
	d.Line = lineNo
	d.Col = colNo
	d.Message = msg
	return d, true
}

// NewEscapeCheck builds the escapecheck analyzer over a parsed escape log.
// A nil or empty log makes the pass a no-op.
func NewEscapeCheck(log *EscapeLog) *Analyzer {
	a := &Analyzer{
		Name:   "escapecheck",
		Doc:    "fails //cake:hotpath functions that heap-allocate per the compiler's escape analysis (go build -gcflags=-m)",
		Syntax: true,
	}
	a.Run = func(pass *Pass) error {
		if log == nil || log.Diags == 0 {
			return nil
		}
		for _, f := range pass.Files {
			pos := pass.Fset.Position(f.Pos())
			diags := log.ByFile[filepath.Clean(pos.Filename)]
			if len(diags) == 0 {
				continue
			}
			checkFileEscapes(pass, f, diags)
		}
		return nil
	}
	return a
}

func checkFileEscapes(pass *Pass, f *ast.File, diags []EscapeDiag) {
	// Different columns on one line (distinct shape instantiations, inlined
	// copies) collapse to the same reported position; keep one finding per
	// (line, kind, message) so the output is readable.
	reported := map[string]bool{}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
			continue
		}
		start := pass.Fset.Position(fn.Pos())
		end := pass.Fset.Position(fn.End())
		guards := panicRanges(pass.Fset, fn)
		for _, d := range diags {
			if d.Line < start.Line || d.Line > end.Line {
				continue
			}
			key := fmt.Sprintf("%d:%d:%s", d.Line, d.Kind, d.Message)
			if reported[key] {
				continue
			}
			reported[key] = true
			switch d.Kind {
			case EscapeHeap, EscapeMoved:
				if inRanges(guards, d.Line, d.Col) {
					continue // terminal panic guard, mirrors hotpathalloc
				}
				pass.Reportf(posFor(pass.Fset, fn, d),
					"compiler escape analysis: %q in hot path %s; hot functions must not heap-allocate",
					d.Message, fn.Name.Name)
			case EscapeNoInline:
				pass.Advisoryf(fn.Name.Pos(),
					"hot path %s does not inline (%s); callers pay a call frame per invocation", fn.Name.Name, d.Message)
			}
		}
	}
}

// posFor maps a diagnostic's line:col back to a token.Pos inside fn so the
// report lands on the allocating line rather than the declaration.
func posFor(fset *token.FileSet, fn *ast.FuncDecl, d EscapeDiag) token.Pos {
	tf := fset.File(fn.Pos())
	if tf == nil || d.Line < 1 || d.Line > tf.LineCount() {
		return fn.Name.Pos()
	}
	return tf.LineStart(d.Line)
}

// lineColRange is a half-open source range in line/column coordinates.
type lineColRange struct {
	startLine, startCol int
	endLine, endCol     int
}

// panicRanges returns the source ranges of every panic(...) call inside fn.
// Escapes positioned inside them (the guard clause's fmt.Sprintf and its
// boxed arguments) are exempt.
func panicRanges(fset *token.FileSet, fn *ast.FuncDecl) []lineColRange {
	var out []lineColRange
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			s := fset.Position(call.Pos())
			e := fset.Position(call.End())
			out = append(out, lineColRange{s.Line, s.Column, e.Line, e.Column})
		}
		return true
	})
	return out
}

func inRanges(rs []lineColRange, line, col int) bool {
	for _, r := range rs {
		afterStart := line > r.startLine || (line == r.startLine && col >= r.startCol)
		beforeEnd := line < r.endLine || (line == r.endLine && col <= r.endCol)
		if afterStart && beforeEnd {
			return true
		}
	}
	return false
}
