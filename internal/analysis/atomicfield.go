package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the obs-ring / engine-counter memory-model
// invariant: once any access to a struct field goes through sync/atomic,
// every access must. A single plain load of a ring cursor or a serving
// counter is a data race that -race only catches when the interleaving
// happens to fire; this check makes the mixed-access pattern unrepresentable.
//
// Two rules:
//
//  1. A field whose address is ever passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flags), ...) must not
//     appear outside such calls — no plain reads, writes, or address takes.
//  2. Values of the sync/atomic struct types (atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], ...) must never be copied: assignment, function
//     arguments, returns, composite-literal elements and range clauses all
//     smuggle the current value out from under concurrent writers (and `go
//     vet -copylocks` only catches the ones that embed a mutex).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags plain accesses to struct fields that are elsewhere accessed via sync/atomic, and copies of sync/atomic value types",
	Run:  runAtomicField,
}

const atomicPkg = "sync/atomic"

// atomicAddrFuncs are the sync/atomic package-level functions whose first
// argument is the address of the atomically-accessed word.
func isAtomicAddrFunc(name string) bool {
	for _, prefix := range []string{"Add", "And", "CompareAndSwap", "Load", "Or", "Store", "Swap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect fields passed by address to sync/atomic functions,
	// and remember the exact selector nodes inside those calls (blessed).
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic use
	blessed := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := pkgFuncCall(pass.Info, call, atomicPkg)
			if !ok || !isAtomicAddrFunc(name) {
				return true
			}
			unary, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := unary.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fld := fieldOf(pass.Info, sel); fld != nil {
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = sel.Pos()
				}
				blessed[sel] = true
			}
			return true
		})
	}

	// Pass 2: any unblessed selector resolving to an atomic field is a
	// plain access.
	if len(atomicFields) > 0 {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || blessed[sel] {
					return true
				}
				fld := fieldOf(pass.Info, sel)
				if fld == nil {
					return true
				}
				if _, isAtomic := atomicFields[fld]; isAtomic {
					pass.Reportf(sel.Pos(),
						"plain access to field %s.%s, which is accessed via sync/atomic elsewhere in this package; use sync/atomic for every access (or an atomic.%s-style typed field)",
						fieldOwner(fld), fld.Name(), suggestTyped(fld.Type()))
				}
				return true
			})
		}
	}

	// Rule 2: copies of sync/atomic value types.
	for _, f := range pass.Files {
		checkAtomicCopies(pass, f)
	}
	return nil
}

// fieldOf resolves sel to a struct field, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// fieldOwner names the struct type a field belongs to, best-effort, for
// diagnostics.
func fieldOwner(fld *types.Var) string {
	if fld.Pkg() != nil {
		return fld.Pkg().Name()
	}
	return "?"
}

// suggestTyped maps a word type to the matching sync/atomic typed wrapper
// for the diagnostic's suggestion.
func suggestTyped(t types.Type) string {
	if b, ok := unalias(t).(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}

// isAtomicValueType reports whether t is one of sync/atomic's struct types
// (Int64, Bool, Pointer[T], Value, ...), whose values must not be copied.
func isAtomicValueType(t types.Type) bool {
	n, ok := unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != atomicPkg {
		return false
	}
	// Every exported struct type in sync/atomic is a no-copy atomic box.
	_, isStruct := unalias(n.Underlying()).(*types.Struct)
	return isStruct
}

// checkAtomicCopies flags expressions that copy an atomic box by value.
func checkAtomicCopies(pass *Pass, f *ast.File) {
	flag := func(e ast.Expr, how string) {
		if e == nil {
			return
		}
		tv, ok := pass.Info.Types[e]
		if !ok || !isAtomicValueType(tv.Type) {
			return
		}
		// Composite literals of the atomic type itself (atomic.Int64{}) are
		// initialisations, not copies.
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return
		}
		pass.Reportf(e.Pos(), "%s copies %s; atomic values must not be copied after first use",
			how, tv.Type.String())
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				flag(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				flag(v, "assignment")
			}
		case *ast.CallExpr:
			// Method calls on an atomic box ((&x.n).Add via auto-address) are
			// the intended use; only direct value arguments copy.
			for _, arg := range n.Args {
				flag(arg, "call argument")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				flag(r, "return")
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					flag(kv.Value, "composite literal")
				} else {
					flag(elt, "composite literal")
				}
			}
		case *ast.RangeStmt:
			// `for _, l := range lanes` copies each element when the element
			// type is (or contains) an atomic box. A `:=` range value is a
			// definition, so its type comes from Defs rather than Types.
			if t := exprOrDefType(pass.Info, n.Value); t != nil && containsAtomicValue(t) {
				pass.Reportf(n.Value.Pos(),
					"range value copies %s, which contains an atomic value; range over indices instead",
					t.String())
			}
		}
		return true
	})
}

// exprOrDefType resolves an expression's type, falling back to the object a
// defining identifier binds (range clauses, short declarations).
func exprOrDefType(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// containsAtomicValue reports whether t is, or directly embeds, an atomic
// box (one struct level deep — enough for lane/job-style carrier structs).
func containsAtomicValue(t types.Type) bool {
	if isAtomicValueType(t) {
		return true
	}
	st, ok := unalias(t.Underlying()).(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isAtomicValueType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
