package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the allocation-free contract of the compute hot
// path. The paper's measurements (§4.4 byte attribution, constant-bandwidth
// CoV) assume the kernels and packing loops move exactly the bytes the model
// predicts; a make, append, closure, defer, interface conversion or string
// concatenation inside one of those loops adds GC traffic and scheduler
// work that the model never sees. Functions opt in with a //cake:hotpath
// doc-comment directive, so the enforced set is self-documenting — the
// microkernels in internal/kernel and the pack loops in internal/packing
// all carry it.
//
// Inside an annotated function the analyzer flags:
//
//   - make, new, append (heap allocation / growth)
//   - slice, map and &T{} composite literals (heap allocation)
//   - function literals (closure allocation)
//   - defer (per-call bookkeeping) and go (scheduler work)
//   - implicit or explicit conversion of a concrete value to an interface
//     (boxing allocates and indirects the following call)
//   - string concatenation (allocates the result)
//
// Arguments of a terminal panic(...) call are exempt: the guard-clause
// panics that protect the packing layout contract execute at most once, on
// the way out, and their fmt.Sprintf is the idiomatic way to die loudly.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbids allocation, defer, goroutines, interface conversion and string concatenation in //cake:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass.Info, n) {
				// Terminal guard: do not descend into the panic's arguments.
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "make", "new", "append":
						pass.Reportf(n.Pos(), "%s in hot path %s allocates; preallocate in the caller or scratch state", b.Name(), name)
					}
				}
			}
			checkCallBoxing(pass, n, name)
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if ok {
				switch unalias(tv.Type.Underlying()).(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "composite literal of %s in hot path %s allocates", tv.Type.String(), name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "&composite literal in hot path %s allocates", name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hot path %s allocates a closure", name)
			return false
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path %s adds per-call bookkeeping; restructure so cleanup is straight-line", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path %s; hot functions must not spawn goroutines", name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.Info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates", name)
			}
			checkAssignBoxing(pass, n, name)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := unalias(tv.Type.Underlying()).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkCallBoxing flags arguments whose concrete value is implicitly
// converted to an interface parameter — the boxing allocation fmt-style
// variadics hide.
func checkCallBoxing(pass *Pass, call *ast.CallExpr, hot string) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Explicit conversion T(x): flag when T is an interface and x concrete.
	if tv.IsType() {
		if isIface(tv.Type) && len(call.Args) == 1 && !isInterfaceExpr(pass.Info, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s in hot path %s boxes its operand", tv.Type.String(), hot)
		}
		return
	}
	sig, ok := unalias(tv.Type).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isIface(pt) && !isInterfaceExpr(pass.Info, arg) && !isNilExpr(pass.Info, arg) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hot path %s",
				exprTypeString(pass.Info, arg), pt.String(), hot)
		}
	}
}

// checkAssignBoxing flags assignments of a concrete value into an
// interface-typed variable inside a hot function.
func checkAssignBoxing(pass *Pass, n *ast.AssignStmt, hot string) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt, ok := pass.Info.Types[n.Lhs[i]]
		if !ok || lt.Type == nil || !isIface(lt.Type) {
			continue
		}
		if !isInterfaceExpr(pass.Info, n.Rhs[i]) && !isNilExpr(pass.Info, n.Rhs[i]) {
			pass.Reportf(n.Rhs[i].Pos(), "assignment boxes %s into interface %s in hot path %s",
				exprTypeString(pass.Info, n.Rhs[i]), lt.Type.String(), hot)
		}
	}
}

func isInterfaceExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown: stay quiet
	}
	return isIface(tv.Type)
}

// isIface reports whether t is a plain interface type. Type parameters are
// excluded: passing a T into a T-typed parameter is not boxing, even though
// a type parameter's underlying type is its constraint interface.
func isIface(t types.Type) bool {
	if _, isTP := unalias(t).(*types.TypeParam); isTP {
		return false
	}
	return types.IsInterface(t)
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func exprTypeString(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "value"
}
