package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeaseBalance enforces the engine's executor-leasing contract: a resource
// obtained from a sync.Pool (or from a function annotated //cake:lease)
// must, on every control-flow path of the obtaining function, be either
// released — passed to a Put/Release call or having its Close method
// called — or ownership-transferred by returning it. A leaked lease is not
// a memory leak (the GC reclaims it) but a throughput leak: every dropped
// executor forfeits its packed-panel buffers and forces a cold rebuild,
// which is exactly the allocation the lease cache exists to avoid.
//
// Additionally, a lease that does work between acquisition and a
// non-deferred release — any method call on the leased value — must be
// released in a defer: GEMM work can panic (packing layout guards do), and
// a panic between Get and Put drops the lease on the floor. The
// ok-flag-plus-defer pattern in engine.GemmScaled is the blessed shape.
//
// The analysis is intra-procedural over the AST with a conservative path
// walk: branches merge with logical AND (released only if released on both
// arms), loop bodies cannot satisfy the obligation for code after the loop
// (they may run zero times), and nil-comparison guards (`if v != nil`)
// void the obligation on the nil arm.
var LeaseBalance = &Analyzer{
	Name: "leasebalance",
	Doc:  "requires sync.Pool / //cake:lease resources to be released or returned on every control-flow path, deferred when work may panic",
	Run:  runLeaseBalance,
}

// releaseNames are callee names that discharge a lease when the leased
// value is the receiver or an argument.
var releaseNames = map[string]bool{
	"Put": true, "put": true,
	"Close": true, "close": true,
	"Release": true, "release": true,
}

func runLeaseBalance(pass *Pass) error {
	// Same-package functions annotated //cake:lease mint leases at their
	// call sites (their own body's Pool.Get obligations are checked too —
	// returning the resource transfers ownership outward).
	leaseFuncs := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fn.Doc, "lease") {
				continue
			}
			if obj := pass.Info.Defs[fn.Name]; obj != nil {
				leaseFuncs[obj] = true
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLeases(pass, fn, leaseFuncs)
		}
	}
	return nil
}

// isLeaseCall reports whether call acquires a lease: (*sync.Pool).Get or a
// call to a //cake:lease function from this package.
func isLeaseCall(pass *Pass, call *ast.CallExpr, leaseFuncs map[types.Object]bool) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			if s.Obj().Name() == "Get" && isNamedType(s.Recv(), "sync", "Pool") {
				return true
			}
		}
		if obj := pass.Info.Uses[fun.Sel]; obj != nil && leaseFuncs[obj] {
			return true
		}
	case *ast.Ident:
		if obj := pass.Info.Uses[fun]; obj != nil && leaseFuncs[obj] {
			return true
		}
	case *ast.IndexExpr: // generic instantiation: leaseExecutor[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && leaseFuncs[obj] {
				return true
			}
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && leaseFuncs[obj] {
				return true
			}
		}
	}
	return false
}

// lease is one tracked obligation within a function.
type lease struct {
	pos               token.Pos             // acquisition site
	vars              map[types.Object]bool // the leased variable and its aliases
	errVar            types.Object          // err of `x, err := lease()`: nil-checks on it guard resource absence
	deferredRelease   bool                  // a defer discharges every later path
	releasedSomewhere bool                  // any non-deferred release seen
	workCalls         []token.Pos           // method calls on the leased value (may panic)
}

// checkLeases finds every lease acquisition in fn and walks the body once
// per lease, reporting paths that drop the obligation.
func checkLeases(pass *Pass, fn *ast.FuncDecl, leaseFuncs map[types.Object]bool) {
	// Collect acquisitions: assignments whose RHS is a lease call. The
	// leased variable is the first non-error LHS.
	var leases []*lease
	bind := func(stmt ast.Stmt) {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isLeaseCall(pass, call, leaseFuncs) {
			return
		}
		if len(as.Lhs) == 0 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		l := &lease{pos: call.Pos(), vars: map[types.Object]bool{obj: true}}
		// `x, err := lease()` (any arity — the error is conventionally last,
		// as in `x, reused, err := lease()`): remember err so early
		// `if err != nil` guards (where the resource is absent) are not
		// reported as leaks.
		if len(as.Lhs) >= 2 {
			if eid, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && eid.Name != "_" {
				if eobj := pass.Info.Defs[eid]; eobj != nil {
					l.errVar = eobj
				} else {
					l.errVar = pass.Info.Uses[eid]
				}
			}
		}
		leases = append(leases, l)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are their own scope; keep it intra-procedural
		case *ast.AssignStmt:
			// Covers plain statements and if/for/switch Init clauses alike:
			// Inspect descends into those.
			bind(n)
		}
		return true
	})
	if len(leases) == 0 {
		return
	}

	for _, l := range leases {
		collectAliases(pass, fn.Body, l)
		w := &leaseWalker{pass: pass, l: l}
		st := w.block(fn.Body.List, pathState{})
		if !st.terminated && !st.satisfied() {
			pass.Reportf(l.pos, "leased resource is not released or returned on the path reaching the end of %s", fn.Name.Name)
		}
		if l.releasedSomewhere && !l.deferredRelease && len(l.workCalls) > 0 {
			pass.Reportf(l.pos, "leased resource does work (method call at %s) before a non-deferred release in %s; release it in a defer so a panic cannot drop the lease",
				pass.Fset.Position(l.workCalls[0]), fn.Name.Name)
		}
	}
}

// collectAliases grows the lease's variable set across assignments like
// `d = v.(*T)` or `d := v`, and records method calls on any leased alias
// (work that may panic) plus whether any release is deferred.
func collectAliases(pass *Pass, body *ast.BlockStmt, l *lease) {
	// Iterate to a fixed point: aliasing chains are short in practice.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				if !l.refersTo(pass, as.Rhs[i]) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil && !l.vars[obj] {
					l.vars[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if releasesLease(pass, n.Call, l) || closureReleases(pass, n.Call, l) {
				l.deferredRelease = true
			}
			return false
		case *ast.CallExpr:
			if releasesLease(pass, n, l) {
				l.releasedSomewhere = true
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && l.isVar(pass, id) {
					l.workCalls = append(l.workCalls, n.Pos())
				}
			}
		}
		return true
	})
}

// refersTo reports whether e is the leased variable, possibly through a
// type assertion (`v.(*T)`).
func (l *lease) refersTo(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return l.isVar(pass, e)
	case *ast.TypeAssertExpr:
		return l.refersTo(pass, e.X)
	case *ast.ParenExpr:
		return l.refersTo(pass, e.X)
	}
	return false
}

func (l *lease) isVar(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	return obj != nil && l.vars[obj]
}

// releasesLease reports whether call discharges the lease: a Put/Close/
// Release-style call with the leased value as receiver or argument.
func releasesLease(pass *Pass, call *ast.CallExpr, l *lease) bool {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok && l.isVar(pass, id) && releaseNames[name] {
			return true // ex.Close()
		}
	case *ast.Ident:
		name = fun.Name
	}
	if !releaseNames[name] {
		return false
	}
	for _, arg := range call.Args {
		if l.refersTo(pass, arg) {
			return true // pool.Put(ex)
		}
	}
	return false
}

// closureReleases reports whether a deferred func-literal call releases the
// lease somewhere in its body (the ok-flag pattern: defer func(){ if ok {
// pool.Put(ex) } else { ex.Close() } }()).
func closureReleases(pass *Pass, call *ast.CallExpr, l *lease) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && releasesLease(pass, c, l) {
			found = true
		}
		return !found
	})
	return found
}

// pathState tracks one control-flow path's view of the obligation.
type pathState struct {
	released   bool // discharged on this path (release, transfer, or nil-guard)
	deferred   bool // a defer already guarantees discharge
	terminated bool // path ended (return/panic)
	live       bool // the lease statement has been passed on this path
	worked     bool // the leased value has been used since acquisition
}

func (s pathState) satisfied() bool { return !s.live || s.released || s.deferred }

// leaseWalker walks statements tracking a single lease's obligation.
type leaseWalker struct {
	pass *Pass
	l    *lease
}

// block walks a statement list, threading path state.
func (w *leaseWalker) block(stmts []ast.Stmt, st pathState) pathState {
	for _, s := range stmts {
		if st.terminated {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *leaseWalker) stmt(s ast.Stmt, st pathState) pathState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && call.Pos() == w.l.pos {
				st.live = true
				return st
			}
		}
		if w.stmtReleases(s) {
			st.released = true
		}
	case *ast.ExprStmt:
		if w.stmtReleases(s) {
			st.released = true
		}
	case *ast.DeferStmt:
		if releasesLease(w.pass, s.Call, w.l) || closureReleases(w.pass, s.Call, w.l) {
			st.deferred = true
		}
	case *ast.ReturnStmt:
		if st.live && !st.released && !st.deferred && !w.returnsLease(s) {
			w.pass.Reportf(s.Pos(), "return without releasing leased resource acquired at %s",
				w.pass.Fset.Position(w.l.pos))
		}
		st.terminated = true
	case *ast.BlockStmt:
		st = w.block(s.List, st)
	case *ast.IfStmt:
		st = w.ifStmt(s, st)
	case *ast.ForStmt:
		// A release inside a loop body may run zero times: check returns
		// inside, but discard the body's discharge for code after the loop.
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		body := w.block(s.Body.List, st)
		st.deferred = st.deferred || body.deferred
		if s.Cond == nil && !hasBreak(s.Body) {
			// `for {}` with no break never falls through.
			st.terminated = true
		}
	case *ast.RangeStmt:
		_ = w.block(s.Body.List, st)
	case *ast.SwitchStmt:
		st = w.caseBodies(switchBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		st = w.caseBodies(switchBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		st = w.caseBodies(bodies, true, st)
	case *ast.LabeledStmt:
		st = w.stmt(s.Stmt, st)
	case *ast.GoStmt:
		// A goroutine's release is not ordered with this function's return.
	}
	if isPanicStmt(w.pass.Info, s) {
		st.terminated = true
	}
	if st.live && !st.worked && w.stmtMentionsLease(s) {
		st.worked = true
	}
	return st
}

// stmtMentionsLease reports whether s uses the leased value outside a func
// literal. Once a lease has been used, `err` no longer proves its absence,
// so the err-guard exemption in ifStmt only applies before first use.
func (w *leaseWalker) stmtMentionsLease(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if w.l.isVar(w.pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmtReleases reports whether any call directly inside s (not nested in a
// func literal) discharges the lease.
func (w *leaseWalker) stmtReleases(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if releasesLease(w.pass, n, w.l) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (w *leaseWalker) returnsLease(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if w.l.refersTo(w.pass, r) {
			return true
		}
	}
	return false
}

// ifStmt handles branch merge, including nil-guard special cases: in
// `if v == nil { ... }` the then-arm holds no obligation; in `if v != nil
// { ... }` the implicit (or explicit) else-arm holds none.
func (w *leaseWalker) ifStmt(s *ast.IfStmt, st pathState) pathState {
	if s.Init != nil {
		st = w.stmt(s.Init, st)
	}
	thenSt, elseSt := st, st
	if op, isNilCmp := w.nilCompare(s.Cond); isNilCmp {
		if op == token.EQL {
			thenSt.released = true // v == nil: nothing leased on this arm
		} else {
			elseSt.released = true // v != nil: nil arm is the else
		}
	}
	// `x, err := lease(); if err != nil { return ... }`: on the err-non-nil
	// arm the resource was never produced — but only before x's first use,
	// after which a reassigned err proves nothing about x.
	if op, isErrCmp := w.errCompare(s.Cond); isErrCmp && !st.worked {
		if op == token.NEQ {
			thenSt.released = true
		} else {
			elseSt.released = true
		}
	}
	thenSt = w.block(s.Body.List, thenSt)
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseSt = w.block(e.List, elseSt)
	case *ast.IfStmt:
		elseSt = w.ifStmt(e, elseSt)
	}
	return mergePaths(thenSt, elseSt)
}

// nilCompare matches `X == nil` / `X != nil` where X is the leased value.
func (w *leaseWalker) nilCompare(cond ast.Expr) (token.Token, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0, false
	}
	xNil, yNil := isNilExpr(w.pass.Info, be.X), isNilExpr(w.pass.Info, be.Y)
	if xNil == yNil {
		return 0, false
	}
	valueSide := be.X
	if xNil {
		valueSide = be.Y
	}
	if !w.l.refersTo(w.pass, valueSide) {
		return 0, false
	}
	return be.Op, true
}

// errCompare matches `err == nil` / `err != nil` on the lease's error
// companion variable.
func (w *leaseWalker) errCompare(cond ast.Expr) (token.Token, bool) {
	if w.l.errVar == nil {
		return 0, false
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0, false
	}
	xNil, yNil := isNilExpr(w.pass.Info, be.X), isNilExpr(w.pass.Info, be.Y)
	if xNil == yNil {
		return 0, false
	}
	valueSide := be.X
	if xNil {
		valueSide = be.Y
	}
	id, ok := valueSide.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := w.pass.Info.Uses[id]
	if obj == nil || obj != w.l.errVar {
		return 0, false
	}
	return be.Op, true
}

func mergePaths(a, b pathState) pathState {
	switch {
	case a.terminated && b.terminated:
		return pathState{terminated: true, live: a.live || b.live}
	case a.terminated:
		return b
	case b.terminated:
		return a
	}
	return pathState{
		released: a.released && b.released,
		deferred: a.deferred && b.deferred,
		live:     a.live || b.live,
		worked:   a.worked || b.worked,
	}
}

// caseBodies merges switch/select arms; without a default clause the
// fall-past path keeps the incoming state.
func (w *leaseWalker) caseBodies(bodies [][]ast.Stmt, hasDefault bool, st pathState) pathState {
	if len(bodies) == 0 {
		return st
	}
	merged := pathState{terminated: true}
	for _, b := range bodies {
		merged = mergePaths(merged, w.block(b, st))
	}
	if !hasDefault {
		merged = mergePaths(merged, st)
	}
	return merged
}

func switchBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break there binds to the inner statement
		}
		return !found
	})
	return found
}

func isPanicStmt(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isPanicCall(info, call)
}
