package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Fixture testing in the analysistest style, self-contained on the
// standard library: a fixture package under testdata/src/<analyzer> mixes
// violating and conforming code, and every line expected to trip the
// analyzer carries a trailing
//
//	// want "regexp"
//
// comment. RunFixture loads the package (testdata directories are invisible
// to ./... patterns but loadable as explicit directories, so `go vet` and
// the build never see the seeded violations), runs the analyzer, and
// reports both missed expectations and unexpected diagnostics.

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(\".*\"|`[^`]*`)\\s*$")

// FixtureDiff loads the fixture package rooted at dir, runs the analyzer,
// and returns a list of human-readable mismatches (empty means the fixture
// behaves exactly as annotated).
func FixtureDiff(a *Analyzer, dir string) ([]string, error) {
	pkgs, err := Load(dir, ".")
	if err != nil {
		return nil, fmt.Errorf("load fixture %s: %w", dir, err)
	}
	var expects []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			exp, err := collectWants(pkg.Fset, f)
			if err != nil {
				return nil, err
			}
			expects = append(expects, exp...)
		}
	}
	diags, err := Check(pkgs, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.matched || e.line != d.Pos.Line || filepath.Base(e.file) != filepath.Base(d.Pos.Filename) {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, e := range expects {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q",
				filepath.Base(e.file), e.line, e.pattern))
		}
	}
	return problems, nil
}

// collectWants extracts `// want "re"` annotations from a parsed file.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pat, err := strconv.Unquote(m[1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %w", m[1], err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("bad want regexp %q: %w", pat, err)
			}
			pos := fset.Position(c.Pos())
			out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
		}
	}
	return out, nil
}

// FixtureDir resolves the conventional fixture directory for an analyzer
// name relative to this package's testdata tree.
func FixtureDir(name string) string {
	return filepath.Join("testdata", "src", strings.TrimSpace(name))
}
