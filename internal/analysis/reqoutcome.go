package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ReqOutcome is spanbytes' sibling for the request-lifecycle layer. A
// reqtrace.Record's zero Outcome is deliberately OutcomeUnset — not OK — so
// a producer that forgets to decide the outcome is visible in the flight
// recorder instead of silently counting as a success. That design only
// works if forgetting stays visible at the construction site too: Go
// zero-initialises omitted struct fields, so a new Record literal without
// Outcome compiles cleanly and every request it produces reports "unset"
// until someone notices the dashboards. This analyzer makes the outcome a
// decision instead of an omission: every reqtrace.Record composite literal
// must mention Outcome explicitly (Outcome: reqtrace.OutcomeUnset is fine —
// it says "a later assignment decides" out loud), or set every field
// positionally.
var ReqOutcome = &Analyzer{
	Name: "reqoutcome",
	Doc:  "requires every reqtrace.Record composite literal to set the Outcome field explicitly",
	Run:  runReqOutcome,
}

func runReqOutcome(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || !isRecordType(tv.Type) {
				return true
			}
			if litSetsField(lit, "Outcome") {
				return true
			}
			pass.Reportf(lit.Pos(),
				"reqtrace.Record literal does not set Outcome; the request outcome must be explicit (use Outcome: reqtrace.OutcomeUnset when a later assignment decides it)")
			return true
		})
	}
	return nil
}

// isRecordType matches the reqtrace package's Record type. The package path
// is matched by suffix so the fixture package's local reqtrace stand-in
// exercises the same code path as the real internal/obs/reqtrace.
func isRecordType(t types.Type) bool {
	n, ok := unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Record" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "repro/internal/obs/reqtrace" || strings.HasSuffix(obj.Pkg().Path(), "/reqtrace"))
}

// litSetsField reports whether a composite literal mentions the field by
// key, or sets every field positionally (a positional literal that
// type-checks is full, so the field is set).
func litSetsField(lit *ast.CompositeLit, field string) bool {
	sawKeyed := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		sawKeyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return true
		}
	}
	return !sawKeyed && len(lit.Elts) > 0
}
