package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestEscapeCheckFixture drives the full pipeline live: the real compiler's
// escape analysis over the seeded fixture, attributed back to //cake:hotpath
// functions, against the fixture's `// want` annotations.
func TestEscapeCheckFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the compiler; skipped in -short")
	}
	dir, err := filepath.Abs(FixtureDir("escapecheck"))
	if err != nil {
		t.Fatal(err)
	}
	log, raw, err := CaptureEscapeDiagnostics(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	if log.Diags == 0 {
		t.Fatalf("no diagnostics captured from %s; raw output:\n%s", dir, raw)
	}
	problems, err := FixtureDiff(NewEscapeCheck(log), dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}

	// Re-parsing the raw bytes (the CI caching path) must reproduce the
	// capture exactly.
	reparsed, err := ParseEscapeDiagnostics(raw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Diags != log.Diags {
		t.Errorf("re-parse of cached bytes: %d diags, capture had %d", reparsed.Diags, log.Diags)
	}
}

// syntheticEscapeLog is a hand-written -gcflags='-m -m' transcript exercising
// every parser branch without invoking the compiler.
const syntheticEscapeLog = `# repro/internal/fake
./fake.go:10:6: can inline tiny with cost 4 as: func(int) int { return n + 1 }
./fake.go:14:2: moved to heap: v
./fake.go:14:2: v escapes to heap:
./fake.go:14:2:   flow: ~r0 = &v:
./fake.go:14:2:     from &v (address-of) at ./fake.go:15:9
./fake.go:20:13: make([]int, n) escapes to heap
./fake.go:20:13: make([]int, n) escapes to heap:
./fake.go:25:6: cannot inline big: function too complex: cost 123 exceeds budget 80
./fake.go:30:7: leaking param: p
./fake.go:33:20: inlining call to tiny
/abs/other.go:7:9: q escapes to heap
not a diagnostic line
./fake.go:bad:1: moved to heap: x
`

func TestParseEscapeDiagnostics(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	log, err := ParseEscapeDiagnostics([]byte(syntheticEscapeLog), root)
	if err != nil {
		t.Fatal(err)
	}
	fake := filepath.Join(root, "fake.go")

	// moved(14) + make-escape(20) + cannot-inline(25) + abs-path escape(7).
	// The flow-detail header at 14:2 must NOT add a second diag for v, and
	// "can inline" / "leaking param" / "inlining call to" / malformed lines
	// are all skipped.
	if log.Diags != 4 {
		t.Fatalf("parsed %d diags, want 4: %+v", log.Diags, log.ByFile)
	}
	byPos := map[string]EscapeDiag{}
	for _, ds := range log.ByFile {
		for _, d := range ds {
			byPos[d.File+":"+strconv.Itoa(d.Line)] = d
		}
	}
	cases := []struct {
		key  string
		kind EscapeKind
		msg  string
	}{
		{fake + ":14", EscapeMoved, "moved to heap: v"},
		{fake + ":20", EscapeHeap, "make([]int, n) escapes to heap"},
		{fake + ":25", EscapeNoInline, "cannot inline big: function too complex: cost 123 exceeds budget 80"},
		{filepath.Clean("/abs/other.go") + ":7", EscapeHeap, "q escapes to heap"},
	}
	for _, c := range cases {
		d, ok := byPos[c.key]
		if !ok {
			t.Errorf("no diagnostic at %s", c.key)
			continue
		}
		if d.Kind != c.kind {
			t.Errorf("%s: kind %d, want %d", c.key, d.Kind, c.kind)
		}
		if d.Message != c.msg {
			t.Errorf("%s: message %q, want %q", c.key, d.Message, c.msg)
		}
	}
}

// TestParseEscapeDiagnosticsDedup: generic instantiations and importing
// packages replay the same decision many times; each (pos, kind) is kept once.
func TestParseEscapeDiagnosticsDedup(t *testing.T) {
	log, err := ParseEscapeDiagnostics([]byte(strings.Repeat("./g.go:5:2: moved to heap: x\n", 6)), "/m")
	if err != nil {
		t.Fatal(err)
	}
	if log.Diags != 1 {
		t.Fatalf("replayed line parsed %d times, want 1", log.Diags)
	}
}

// TestEscapeCheckNilLog: with no log (fresh environment, capture disabled)
// the analyzer is a silent no-op on any package.
func TestEscapeCheckNilLog(t *testing.T) {
	pkgs, err := LoadSyntax(FixtureDir("escapecheck"), ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, log := range []*EscapeLog{nil, {ByFile: map[string][]EscapeDiag{}}} {
		diags, err := Check(pkgs, []*Analyzer{NewEscapeCheck(log)})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Fatalf("empty log must report nothing, got %v", diags)
		}
	}
}
