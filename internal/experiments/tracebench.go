package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/gotoalg"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// TraceBuckets is the fixed bucket count of the bandwidth timelines: both
// executors' runs are divided into the same number of windows so their
// coefficients of variation compare bucket-for-bucket regardless of wall
// time. The count is deliberately coarse — each bucket must span several
// CB-block periods, or the sampling aliases with CAKE's per-block pack
// bursts and manufactures spikiness the memory bus never sees (GOTO's
// panel period is far longer, so its bursts survive any bucketing).
const TraceBuckets = 12

// ExecTimeline is one traced execution reduced to its bandwidth story.
type ExecTimeline struct {
	Executor  string    `json:"executor"`
	WallNanos int64     `json:"wall_nanos"`
	GFLOPS    float64   `json:"gflops"`
	Spans     int       `json:"spans"`
	Dropped   int64     `json:"dropped_spans"`
	BucketNs  int64     `json:"bucket_ns"`
	GBperS    []float64 `json:"gb_per_s"` // per-bucket DRAM bandwidth
	MeanGBps  float64   `json:"mean_gbps"`
	PeakGBps  float64   `json:"peak_gbps"`
	CoV       float64   `json:"cov"`
}

// TraceBenchResult is the machine-readable artifact of one trace run: the
// same skewed shape through the CAKE pipelined executor and the GOTO
// baseline, each with a full span recorder attached.
type TraceBenchResult struct {
	Envelope
	M     int          `json:"m"`
	K     int          `json:"k"`
	N     int          `json:"n"`
	Cores int          `json:"cores"`
	Cake  ExecTimeline `json:"cake"`
	Goto  ExecTimeline `json:"goto"`

	// Recorders for trace export; not serialised.
	CakeRec *obs.Recorder `json:"-"`
	GotoRec *obs.Recorder `json:"-"`
}

// traceShape returns the matched skewed shape and both executors' configs.
// Small M with large K and N is the §5.2.1 pack-heavy class where the
// temporal contrast is starkest: CAKE streams panel packs continuously
// under compute, while GOTO alternates wide B-panel pack bursts with
// partial-C streaming.
func traceShape(cores int, quick bool) (m, k, n int, cakeCfg core.Config, gotoCfg gotoalg.Config) {
	m, k, n = 32, 1024, 512
	cakeCfg = core.Config{Cores: cores, MC: 8, KC: 512, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto}
	gotoCfg = gotoalg.Config{Cores: cores, MC: 32, KC: 128, NC: 512, MR: 8, NR: 8}
	if quick {
		k, n = 512, 256
		cakeCfg.KC = 256
		gotoCfg.NC = 256
	}
	return
}

// TraceBench runs CAKE (pipelined, default panel ring) and GOTO on the
// same skewed shape with span recorders attached and reduces both traces
// to bandwidth timelines. reps wall-clock runs are taken per executor and
// the trace of the fastest kept, damping scheduler noise.
func TraceBench(cores int, quick bool) (*TraceBenchResult, error) {
	m, k, n, cakeCfg, gotoCfg := traceShape(cores, quick)
	reps := 3
	if quick {
		reps = 2
	}

	rng := rand.New(rand.NewSource(23))
	a := matrix.New[float32](m, k)
	b := matrix.New[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](m, n)
	flops := matrix.GemmFlops(m, n, k)

	res := &TraceBenchResult{Envelope: NewEnvelope("bwtimeline"), M: m, K: k, N: n, Cores: cores}

	cakeRec := obs.NewRecorder(cores, 0)
	ce, err := core.NewExecutor[float32](cakeCfg, nil, core.WithTrace(cakeRec))
	if err != nil {
		return nil, fmt.Errorf("experiments: trace cake: %w", err)
	}
	cakeWall, err := tracedRun(reps, cakeRec, func() error { _, err := ce.Gemm(c, a, b); return err })
	ce.Close()
	if err != nil {
		return nil, fmt.Errorf("experiments: trace cake: %w", err)
	}
	res.CakeRec = cakeRec
	res.Cake = reduceTimeline("cake", cakeRec, cakeWall, flops)

	gotoRec := obs.NewRecorder(cores, 0)
	ge, err := gotoalg.NewExecutor[float32](gotoCfg, nil, gotoalg.WithTrace(gotoRec))
	if err != nil {
		return nil, fmt.Errorf("experiments: trace goto: %w", err)
	}
	gotoWall, err := tracedRun(reps, gotoRec, func() error { _, err := ge.Gemm(c, a, b); return err })
	ge.Close()
	if err != nil {
		return nil, fmt.Errorf("experiments: trace goto: %w", err)
	}
	res.GotoRec = gotoRec
	res.Goto = reduceTimeline("goto", gotoRec, gotoWall, flops)
	return res, nil
}

// tracedRun executes reps-1 warmup runs (populating caches and buffers),
// then resets the recorder and takes one measured run, so the retained
// trace, the wall time and the timeline all describe the same execution.
func tracedRun(reps int, rec *obs.Recorder, run func() error) (time.Duration, error) {
	for r := 0; r < reps-1; r++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	rec.Reset()
	t0 := time.Now()
	if err := run(); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

// reduceTimeline turns one recorder's spans into the serialisable summary.
func reduceTimeline(name string, rec *obs.Recorder, wall time.Duration, flops float64) ExecTimeline {
	spans := rec.Spans()
	tl := obs.NewTimelineN(spans, TraceBuckets)
	st := tl.Stats()
	out := ExecTimeline{
		Executor:  name,
		WallNanos: wall.Nanoseconds(),
		GFLOPS:    flops / float64(max(wall.Nanoseconds(), 1)),
		Spans:     len(spans),
		Dropped:   rec.Dropped(),
		BucketNs:  tl.BucketNs,
		MeanGBps:  st.MeanBps / 1e9,
		PeakGBps:  st.PeakBps / 1e9,
		CoV:       st.CoV,
	}
	secPerBucket := float64(tl.BucketNs) / 1e9
	for _, bytes := range tl.Bytes {
		out.GBperS = append(out.GBperS, bytes/secPerBucket/1e9)
	}
	return out
}
