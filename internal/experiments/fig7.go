package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/memtrace"
	"repro/internal/platform"
)

// Bars is a grouped bar chart: one value per (category, group), the form of
// Figure 7's stall and access profiles.
type Bars struct {
	ID         string
	Title      string
	Unit       string
	Categories []string
	Groups     []string
	Values     [][]float64 // Values[group][category]
}

// CSV writes the bars as comma-separated values (levels × groups).
func (b *Bars) CSV(w io.Writer) {
	fmt.Fprintf(w, "level,%s\n", strings.Join(b.Groups, ","))
	for ci, cat := range b.Categories {
		row := []string{cat}
		for gi := range b.Groups {
			row = append(row, fmt.Sprintf("%g", b.Values[gi][ci]))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Render writes the bars as an aligned table.
func (b *Bars) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", b.ID, b.Title)
	rows := [][]string{append([]string{"level"}, b.Groups...)}
	for ci, cat := range b.Categories {
		row := []string{cat}
		for gi := range b.Groups {
			row = append(row, formatNum(b.Values[gi][ci]))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintf(w, "    (unit: %s)\n\n", b.Unit)
}

// Fig7a reproduces the Intel stall profile: clock ticks spent stalled on
// each memory level for a size³ GEMM on all cores, CAKE vs the MKL proxy.
// L1/L2 stalls come from the analytic kernel profile with the platform's
// load-to-use latencies (×(1−hide) for out-of-order latency hiding); LLC
// stalls combine the simulator's internal-bandwidth stall with the latency
// cost of LLC-served kernel traffic (CAKE's resident partial C); DRAM
// stalls are the simulator's external stalls, which for the GOTO proxy
// include its partial-C demand streams.
func Fig7a(pl *platform.Platform, size int) (*Bars, error) {
	const hide = 0.95 // fraction of load latency an OoO core hides
	cm, ccfg, err := SimCake(pl, pl.Cores, size, size, size)
	if err != nil {
		return nil, err
	}
	gm, gcfg, err := SimGoto(pl, pl.Cores, size, size, size)
	if err != nil {
		return nil, err
	}
	cProf := memtrace.ProfileKernel(size, size, size, ccfg.MR, ccfg.NR, ccfg.KC)
	gProf := memtrace.ProfileKernel(size, size, size, gcfg.MR, gcfg.NR, gcfg.KC)

	lat := func(hits int64, latency int) float64 {
		return float64(hits) * float64(latency) * (1 - hide) / float64(pl.Cores)
	}
	// LLC-served kernel elements: B panel re-reads for both; plus the
	// resident partial-C read-modify-write for CAKE (GOTO's goes to DRAM).
	cakeLLCServed := cProf.BeyondL1 + 2*int64(size)*int64(size)*int64((size+ccfg.KC-1)/ccfg.KC)
	gotoLLCServed := gProf.BeyondL1

	cake := []float64{
		lat(cProf.L1Hits, pl.LatL1),
		lat(cProf.BeyondL1, pl.LatL2),
		lat(cakeLLCServed, pl.LatLLC) + float64(cm.StallInternal),
		float64(cm.StallDRAM),
	}
	base := []float64{
		lat(gProf.L1Hits, pl.LatL1),
		lat(gProf.BeyondL1, pl.LatL2),
		lat(gotoLLCServed, pl.LatLLC) + float64(gm.StallInternal),
		float64(gm.StallDRAM),
	}
	return &Bars{
		ID:         "fig7a",
		Title:      fmt.Sprintf("Memory request stalls on %s (%d×%d, %d cores)", pl.Name, size, size, pl.Cores),
		Unit:       "clock ticks (model)",
		Categories: []string{"L1", "L2", "L3", "Main Memory"},
		Groups:     []string{"Cake", "MKL"},
		Values:     [][]float64{cake, base},
	}, nil
}

// Fig7b reproduces the ARM access profile: L1 hits, LLC (L2) hits and DRAM
// requests for a size³ GEMM. L1 hits come from the kernel profile; DRAM
// requests come from driving each schedule's tile-granularity trace through
// an exact-LRU model of the shared L2 (the perf-counter substitution of
// DESIGN.md); LLC hits are the beyond-L1 traffic the LRU model retained.
func Fig7b(pl *platform.Platform, size int) (*Bars, error) {
	cm, ccfg, err := SimCake(pl, pl.Cores, size, size, size)
	if err != nil {
		return nil, err
	}
	gm, gcfg, err := SimGoto(pl, pl.Cores, size, size, size)
	if err != nil {
		return nil, err
	}
	cProf := memtrace.ProfileKernel(size, size, size, ccfg.MR, ccfg.NR, ccfg.KC)
	gProf := memtrace.ProfileKernel(size, size, size, gcfg.MR, gcfg.NR, gcfg.KC)

	const lineBytes = 64
	cakeDRAM := float64(cm.DRAMReadBytes+cm.DRAMWriteBytes) / lineBytes
	gotoDRAM := float64(gm.DRAMReadBytes+gm.DRAMWriteBytes) / lineBytes

	// Cross-check the simulator's DRAM traffic with the exact-LRU trace.
	if err := crossCheckLRU(pl, size, ccfg.Cores, ccfg.MC, ccfg.Alpha, gcfg.MC, gcfg.NC); err != nil {
		return nil, err
	}

	elemsPerLine := float64(lineBytes / elemBytes)
	cake := []float64{
		float64(cProf.L1Hits),
		float64(cProf.BeyondL1) - cakeDRAM*elemsPerLine,
		cakeDRAM,
	}
	base := []float64{
		float64(gProf.L1Hits),
		float64(gProf.BeyondL1) - gotoDRAM*elemsPerLine,
		gotoDRAM,
	}
	return &Bars{
		ID:         "fig7b",
		Title:      fmt.Sprintf("Cache and DRAM accesses on %s (%d×%d, %d cores)", pl.Name, size, size, pl.Cores),
		Unit:       "accesses (L1/L2: elements; DRAM: 64B requests)",
		Categories: []string{"L1 Hits", "L2 Hits", "DRAM Requests"},
		Groups:     []string{"Cake", "ARMPL"},
		Values:     [][]float64{cake, base},
	}, nil
}

// crossCheckLRU validates the block-level simulator's DRAM accounting
// against the exact LRU cache model driven by the schedules' tile traces:
// the CAKE-vs-GOTO traffic ratio must agree in direction (GOTO ≥ CAKE).
func crossCheckLRU(pl *platform.Platform, size, p, cakeMC int, alpha float64, gotoMC, gotoNC int) error {
	// Sub-tile granularity must divide the block sides so chunks align with
	// block boundaries; both planners emit multiples of the register tile.
	gran := 8
	hc := cachesim.NewHierarchy[memtrace.Key]([]string{"LLC"}, []int64{pl.LLCBytes})
	rc, err := memtrace.Run(func(e memtrace.Emit) error {
		return memtrace.Cake(size, size, size, memtrace.CakeParams{P: p, MC: cakeMC, Alpha: alpha}, gran, elemBytes, e)
	}, hc)
	if err != nil {
		return err
	}
	hg := cachesim.NewHierarchy[memtrace.Key]([]string{"LLC"}, []int64{pl.LLCBytes})
	rg, err := memtrace.Run(func(e memtrace.Emit) error {
		return memtrace.Goto(size, size, size, memtrace.GotoParams{MC: gotoMC, NC: gotoNC}, gran, elemBytes, e)
	}, hg)
	if err != nil {
		return err
	}
	if rg.BytesMoved < rc.BytesMoved {
		return fmt.Errorf("experiments: LRU cross-check failed: GOTO moved %d < CAKE %d", rg.BytesMoved, rc.BytesMoved)
	}
	return nil
}
