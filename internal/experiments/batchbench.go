package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
	"unsafe"

	"repro/internal/engine"
	"repro/internal/matrix"
)

// BatchBenchRow is one (shape, batch size) point's looped-vs-batched
// measurement: the same N uniform GEMMs against a shared weight operand
// issued as N independent engine requests (admission + lease + B pack per
// call) and as one GemmBatch request (one admission, one lease, B packed
// once and served to every call).
type BatchBenchRow struct {
	Shape             string  `json:"shape"`
	Dtype             string  `json:"dtype"`
	Tier              string  `json:"tier"`
	M                 int     `json:"m"`
	K                 int     `json:"k"`
	N                 int     `json:"n"`
	Batch             int     `json:"batch"` // GEMMs per batch
	Reps              int     `json:"reps"`  // timed batches per side
	LoopedGemmsPerSec float64 `json:"looped_gemms_per_sec"`
	BatchGemmsPerSec  float64 `json:"batch_gemms_per_sec"`
	Speedup           float64 `json:"speedup"`           // batched vs looped GEMMs/s
	LoopedP50Micros   float64 `json:"looped_p50_micros"` // per batch-sized group
	BatchP50Micros    float64 `json:"batch_p50_micros"`  // per batch request
	LoopedP99Micros   float64 `json:"looped_p99_micros"`
	BatchP99Micros    float64 `json:"batch_p99_micros"`
	Gate              bool    `json:"gate"` // carries the absolute speedup floor
}

// BatchBenchResult is the full `cake-bench batch` measurement.
type BatchBenchResult struct {
	Envelope
	Cores     int             `json:"cores"`
	GateShape string          `json:"gate_shape"`
	Rows      []BatchBenchRow `json:"rows"`
	// Aggregate batch-loop counters across every batched side: how many
	// calls rode a batch and how many per-call B packs the shared-operand
	// reuse elided (§4.4 pack traffic that never happened).
	BatchCalls   int64 `json:"batch_calls"`
	SharedBPacks int64 `json:"shared_b_packs"`
}

// BatchGateShape is the row carrying the absolute batched-vs-looped speedup
// floor: the tiny direct-tier shape at batch 32, where per-call dispatch
// overhead and the repeated shared-B pack are the dominant non-compute terms
// — the shape class batching exists for.
const BatchGateShape = "tiny-8x24x24/b32/f32"

// batchShape measures one (shape, batch) point both ways on a shared engine.
// A is a distinct activation per call; B is literally one shared *Matrix —
// the pointer identity the batch loop's pack reuse keys on. The looped side
// is timed in batch-sized groups so the latency percentiles compare like
// with like.
func batchShape[T matrix.Scalar](e *engine.Engine, name, dtype string, m, k, n, batch, reps int, gate bool, rng *rand.Rand) (BatchBenchRow, int64, int64, error) {
	row := BatchBenchRow{
		Shape: fmt.Sprintf("%s/b%d/%s", name, batch, dtype),
		Dtype: dtype, M: m, K: k, N: n, Batch: batch, Reps: reps, Gate: gate,
	}
	var zero T
	elem := int(unsafe.Sizeof(zero))
	row.Tier = e.TierFor(m, k, n, elem).String()

	b := matrix.New[T](k, n)
	b.Randomize(rng)
	as := make([]*matrix.Matrix[T], batch)
	bs := make([]*matrix.Matrix[T], batch)
	cs := make([]*matrix.Matrix[T], batch)
	for i := range as {
		as[i] = matrix.New[T](m, k)
		as[i].Randomize(rng)
		bs[i] = b
		cs[i] = matrix.New[T](m, n)
	}

	looped := func() error {
		for i := range cs {
			if _, err := engine.GemmScaled(e, cs[i], as[i], b, false, false, 1, 0); err != nil {
				return err
			}
		}
		return nil
	}
	var batchCalls, sharedPacks int64
	batched := func() error {
		st, err := engine.GemmBatchScaled(e, cs, as, bs, false, false, 1, 0)
		if err != nil {
			return err
		}
		batchCalls += int64(st.BatchCalls)
		sharedPacks += int64(st.SharedBPacks)
		return nil
	}
	for i := 0; i < 2; i++ { // warm both paths (buffers, lease pool)
		if err := looped(); err != nil {
			return row, 0, 0, err
		}
		if err := batched(); err != nil {
			return row, 0, 0, err
		}
	}
	batchCalls, sharedPacks = 0, 0
	time_ := func(run func() error) (gemmsPerSec, p50, p99 float64, err error) {
		lat := make([]time.Duration, 0, reps)
		start := time.Now()
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := run(); err != nil {
				return 0, 0, 0, err
			}
			lat = append(lat, time.Since(t0))
		}
		elapsed := time.Since(start)
		return float64(reps*batch) / elapsed.Seconds(), percentileMicros(lat, 50), percentileMicros(lat, 99), nil
	}
	var err error
	if row.LoopedGemmsPerSec, row.LoopedP50Micros, row.LoopedP99Micros, err = time_(looped); err != nil {
		return row, 0, 0, fmt.Errorf("experiments: batch looped side %s: %w", row.Shape, err)
	}
	if row.BatchGemmsPerSec, row.BatchP50Micros, row.BatchP99Micros, err = time_(batched); err != nil {
		return row, 0, 0, fmt.Errorf("experiments: batched side %s: %w", row.Shape, err)
	}
	if row.LoopedGemmsPerSec > 0 {
		row.Speedup = row.BatchGemmsPerSec / row.LoopedGemmsPerSec
	}
	return row, batchCalls, sharedPacks, nil
}

// BatchBench measures the batched-dispatch win: for each (shape, batch size)
// point, N uniform shared-weight GEMMs issued as N engine requests vs one
// GemmBatch request. Tier thresholds come from the fixed serve-bench
// platform model so the dispatch is host-independent; only the measured
// times follow the machine.
func BatchBench(cores int, quick bool) (*BatchBenchResult, error) {
	if cores < 1 {
		cores = runtime.GOMAXPROCS(0)
	}
	e, err := engine.NewEngine(engine.Options{Platform: servePlatform(cores), Name: "batch-bench"})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	scale := 1
	if quick {
		scale = 4
	}
	shapes := []struct {
		name    string
		dtype   string
		m, k, n int
		reps    int // timed batches at batch size 1 — divided by the batch size
	}{
		// Tiny: the direct-microkernel tier, where per-request overhead and
		// the shared-B pack dominate — the gated class.
		{"tiny-8x24x24", "f32", 8, 24, 24, 2048},
		// Small: cache-resident single-CB-block tier; compute is larger but
		// the per-call B pack is still pure amortizable overhead.
		{"small-8x320x320", "f32", 8, 320, 320, 512},
	}
	res := &BatchBenchResult{Envelope: NewEnvelope("batch"), Cores: cores, GateShape: BatchGateShape}
	rng := rand.New(rand.NewSource(11))
	for _, sh := range shapes {
		for _, batch := range []int{4, 32, 256} {
			reps := sh.reps / batch / scale
			if reps < 2 {
				reps = 2
			}
			gate := fmt.Sprintf("%s/b%d/%s", sh.name, batch, sh.dtype) == BatchGateShape
			row, calls, packs, err := batchShape[float32](e, sh.name, sh.dtype, sh.m, sh.k, sh.n, batch, reps, gate, rng)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			res.BatchCalls += calls
			res.SharedBPacks += packs
		}
	}
	return res, nil
}
