package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// Table 2: Intel 40 GB/s; ARM lists its shared 512 KiB L2 and N/A for
	// L3; AMD has 16 cores.
	if rows[1][6] != "40 GB/s" || rows[3][2] != "512 KiB" || rows[3][3] != "N/A" || rows[2][5] != "16" {
		t.Fatalf("table content: %v", rows)
	}
}

func TestFig4ConstantBW(t *testing.T) {
	r := Fig4()
	bw, ct, ai := r.Series[0], r.Series[1], r.Series[2]
	for i := 1; i < len(bw.Y); i++ {
		if d := bw.Y[i] - bw.Y[0]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("external BW not constant: %v", bw.Y)
		}
		if ct.Y[i] <= ct.Y[i-1] || ai.Y[i] <= ai.Y[i-1] {
			t.Fatal("throughput and AI must increase with p")
		}
	}
}

func TestFig7aShape(t *testing.T) {
	// Scaled-down Figure 7a (the paper's 10000² at full size runs in the
	// bench harness): CAKE must stall less on main memory and more on the
	// LLC than the MKL proxy.
	b, err := Fig7a(platform.IntelI9(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	cake, mkl := b.Values[0], b.Values[1]
	if len(cake) != 4 || len(mkl) != 4 {
		t.Fatal("level count")
	}
	if cake[3] >= mkl[3] {
		t.Fatalf("CAKE main-memory stalls (%v) must be below MKL's (%v)", cake[3], mkl[3])
	}
	if cake[2] <= mkl[2] {
		t.Fatalf("CAKE LLC stalls (%v) must exceed MKL's (%v) — resident partial C", cake[2], mkl[2])
	}
	var buf bytes.Buffer
	b.Render(&buf)
	if !strings.Contains(buf.String(), "Main Memory") {
		t.Fatal("render missing categories")
	}
}

func TestFig7bShape(t *testing.T) {
	b, err := Fig7b(platform.ARMCortexA53(), 1500)
	if err != nil {
		t.Fatal(err)
	}
	cake, armpl := b.Values[0], b.Values[1]
	// The paper: ARMPL performs ≈2.5× more DRAM requests than CAKE.
	if armpl[2] < 1.8*cake[2] {
		t.Fatalf("ARMPL DRAM requests %v not well above CAKE %v", armpl[2], cake[2])
	}
	// CAKE shifts demand to internal memory: more LLC hits.
	if cake[1] <= armpl[1] {
		t.Fatalf("CAKE L2 hits %v must exceed ARMPL %v", cake[1], armpl[1])
	}
	for gi := range b.Values {
		for ci, v := range b.Values[gi] {
			if v < 0 {
				t.Fatalf("negative count at group %d cat %d: %v", gi, ci, v)
			}
		}
	}
}

func TestFig8SmallGrid(t *testing.T) {
	grids, err := Fig8(platform.IntelI9(), 2000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 4 {
		t.Fatalf("panels %d", len(grids))
	}
	for _, g := range grids {
		if len(g.Z) != 2 || len(g.Z[0]) != 2 {
			t.Fatalf("%s grid shape", g.ID)
		}
		for _, row := range g.Z {
			for _, v := range row {
				if v <= 0 {
					t.Fatalf("%s: non-positive ratio %v", g.ID, v)
				}
			}
		}
		if c := g.Coverage(0.01); c != 1 {
			t.Fatalf("coverage at tiny threshold should be 1, got %v", c)
		}
		var buf bytes.Buffer
		g.Render(&buf)
		g.CSV(&buf)
		if !strings.Contains(buf.String(), g.ID) {
			t.Fatal("render missing id")
		}
	}
}

func TestFig8SkewedFavoursCake(t *testing.T) {
	// The paper's core Figure 8 finding: CAKE's advantage grows as matrices
	// shrink or skew (memory-bound regime). The most skewed panel (M=8N)
	// at the smallest size must show a higher ratio than the biggest
	// square case.
	grids, err := Fig8(platform.IntelI9(), 4000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	square := grids[0]
	skewed := grids[3]
	bigSquare := square.Z[len(square.Z)-1][len(square.Xs)-1]
	smallSkewed := skewed.Z[0][0]
	if smallSkewed <= bigSquare {
		t.Fatalf("small skewed ratio %v should exceed big square ratio %v", smallSkewed, bigSquare)
	}
}

func TestFig9ARM(t *testing.T) {
	pl := platform.ARMCortexA53()
	r, err := Fig9(pl, []int{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("series %d", len(r.Series))
	}
	// Per size: baseline series then cake series. CAKE's 4-core speedup
	// must beat the ARMPL proxy's (Fig. 9b).
	for i := 0; i < len(r.Series); i += 2 {
		base, cake := r.Series[i], r.Series[i+1]
		if cake.Y[len(cake.Y)-1] <= base.Y[len(base.Y)-1] {
			t.Fatalf("CAKE speedup %v not above baseline %v", cake.Y, base.Y)
		}
		if cake.Y[0] != 1 || base.Y[0] != 1 {
			t.Fatal("speedup must be normalised to 1 at p=1")
		}
	}
}

func TestFigTrioARM(t *testing.T) {
	pl := platform.ARMCortexA53()
	bw, tp, internal, err := FigTrio(pl, "fig11", TrioSizes{Size: 1024, ExtrapTo: 8})
	if err != nil {
		t.Fatal(err)
	}
	// (a) CAKE observed BW must stay below the baseline's at full cores and
	// stay near-flat; baseline BW must grow.
	gotoBW, cakeBW := bw.Series[0], bw.Series[1]
	if cakeBW.Y[3] >= gotoBW.Y[3] {
		t.Fatalf("CAKE BW %v above baseline %v at 4 cores", cakeBW.Y[3], gotoBW.Y[3])
	}
	if gotoBW.Y[3] < 1.5*gotoBW.Y[0] {
		t.Fatalf("baseline BW did not grow: %v", gotoBW.Y)
	}
	// (b) extrapolated series reach 8 cores; observed stop at 4.
	for _, s := range tp.Series {
		if strings.Contains(s.Name, "extrapolated") {
			if len(s.Y) != 8 {
				t.Fatalf("extrapolation length %d", len(s.Y))
			}
		} else if len(s.Y) != 4 {
			t.Fatalf("observed length %d", len(s.Y))
		}
	}
	// CAKE observed throughput ≥ baseline at every core count (Fig. 11b).
	gotoObs, cakeObs := tp.Series[2], tp.Series[3]
	for i := range cakeObs.Y {
		if cakeObs.Y[i] < gotoObs.Y[i] {
			t.Fatalf("CAKE %v below baseline %v at p=%d", cakeObs.Y[i], gotoObs.Y[i], i+1)
		}
	}
	// (c) internal BW model flattens past 2 cores.
	obs := internal.Series[0]
	if obs.Y[3]-obs.Y[1] > 0.2*obs.Y[1] {
		t.Fatalf("ARM internal BW should flatten: %v", obs.Y)
	}
	var buf bytes.Buffer
	bw.Render(&buf)
	tp.CSV(&buf)
	internal.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("render empty")
	}
}

func TestFigTrioIntelConstantBW(t *testing.T) {
	pl := platform.IntelI9()
	// 3520 = 2×(10·176): both CAKE's CB block and GOTO's ic rounds tile the
	// M dimension exactly, so the comparison isolates the algorithms from
	// edge-utilisation effects (real MKL shape-tunes those away; at the
	// paper's 23040 both sides are ≥94% aligned).
	bw, tp, _, err := FigTrio(pl, "fig10", TrioSizes{Size: 3520, ExtrapTo: 20})
	if err != nil {
		t.Fatal(err)
	}
	cakeBW := bw.Series[1]
	if cakeBW.Y[9] > 2*cakeBW.Y[1] {
		t.Fatalf("CAKE DRAM BW grew with cores: %v", cakeBW.Y)
	}
	// CAKE within a reasonable band of MKL's throughput at 10 cores
	// (paper: within 3%; the proxy models justify a looser check).
	gotoObs, cakeObs := tp.Series[2], tp.Series[3]
	ratio := cakeObs.Y[9] / gotoObs.Y[9]
	if ratio < 0.85 || ratio > 1.3 {
		t.Fatalf("CAKE/MKL throughput ratio %v at 10 cores outside band", ratio)
	}
}

func TestBaselineNames(t *testing.T) {
	if BaselineName(platform.IntelI9()) != "MKL (GOTO proxy)" ||
		BaselineName(platform.AMDRyzen9()) != "OpenBLAS (GOTO proxy)" ||
		BaselineName(platform.ARMCortexA53()) != "ARMPL (GOTO proxy)" {
		t.Fatal("baseline names")
	}
	if shortBaseline(platform.IntelI9()) != "mkl" {
		t.Fatal("short name")
	}
}

func TestResultRenderAndCSV(t *testing.T) {
	r := &Result{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
		},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "20") {
		t.Fatalf("render: %q", out)
	}
	buf.Reset()
	r.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || lines[0] != "x,a,b" {
		t.Fatalf("csv: %q", buf.String())
	}
	// Ragged series render "-"/empty past their end.
	if !strings.Contains(lines[3], ",,3") && !strings.Contains(lines[3], ",3") {
		t.Fatalf("ragged csv row: %q", lines[3])
	}
}

func TestPaperTrioSizes(t *testing.T) {
	if s := PaperTrioSizes(platform.ARMCortexA53()); s.Size != 3000 || s.ExtrapTo != 8 {
		t.Fatalf("ARM sizes %+v", s)
	}
	if s := PaperTrioSizes(platform.IntelI9()); s.Size != 23040 || s.ExtrapTo != 20 {
		t.Fatalf("Intel sizes %+v", s)
	}
}

func TestPackingOverheadSkewedShapes(t *testing.T) {
	if testing.Short() {
		// Asserts relative wall-clock shares; the race detector's ~10x
		// slowdown distorts them, so the -short race gate skips this and
		// the plain `go test ./...` run keeps the coverage.
		t.Skip("wall-clock-sensitive assertions")
	}
	rows, err := PackingOverhead(1, DefaultPackShapes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	square := rows[0]
	if square.PackShare <= 0 || square.PackShare >= 0.5 {
		t.Fatalf("square pack share %v implausible", square.PackShare)
	}
	// Section 5.2.1: skewed shapes pay a substantially larger packing
	// fraction than the square case. Thin-K is the strong, timing-robust
	// case (the whole reduction fits one kc, so packing amortises over the
	// least compute); the others are asserted loosely because their margin
	// over square is small and wall-clock timing is noisy in CI.
	thinK := rows[1]
	if thinK.PackShare <= 1.5*square.PackShare {
		t.Fatalf("thin-K pack share %v not clearly above square %v",
			thinK.PackShare, square.PackShare)
	}
	for _, skewed := range rows[2:] {
		if skewed.PackShare < 0.5*square.PackShare {
			t.Fatalf("%s pack share %v implausibly below square %v",
				skewed.Name, skewed.PackShare, square.PackShare)
		}
	}
}

func TestFigTrioAMDShape(t *testing.T) {
	pl := platform.AMDRyzen9()
	// 3584 = 16·224: one full CB block row at 16 cores, so the
	// constant-bandwidth property is visible without edge effects (the
	// full 23040³ run in results/ shows the same shape).
	bw, tp, internal, err := FigTrio(pl, "fig12", TrioSizes{Size: 3584, ExtrapTo: 32})
	if err != nil {
		t.Fatal(err)
	}
	// (a) OpenBLAS proxy BW grows with cores; CAKE's stays bounded.
	gotoBW, cakeBW := bw.Series[0], bw.Series[1]
	if gotoBW.Y[15] < 3*gotoBW.Y[0] {
		t.Fatalf("OpenBLAS BW did not grow: %v", gotoBW.Y)
	}
	if cakeBW.Y[15] > 3*cakeBW.Y[0] {
		t.Fatalf("CAKE BW grew with cores: %v", cakeBW.Y)
	}
	// (b) Both scale well on the least-constrained machine; extrapolations
	// reach 32 entries.
	for _, s := range tp.Series[:2] {
		if len(s.Y) != 32 {
			t.Fatalf("extrapolation length %d", len(s.Y))
		}
	}
	// (c) internal BW ~linear at 50 GB/s per core.
	obs := internal.Series[0]
	if d := obs.Y[15] - obs.Y[14]; d < 45 || d > 55 {
		t.Fatalf("AMD internal slope %v", d)
	}
}
