package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runMicroCorpus measures the 4-cell CI grid once; shared by the round-trip
// and store tests so the (slowish) measurement happens per-test but stays in
// quick/runs=1 territory.
func runMicroCorpus(t *testing.T) *CorpusEpoch {
	t.Helper()
	epoch, err := RunCorpus(CorpusOptions{Runs: 1, Grid: "micro", Quick: true})
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	return epoch
}

func TestRunCorpusMicroGrid(t *testing.T) {
	epoch := runMicroCorpus(t)
	if len(epoch.Cells) != 4 {
		t.Fatalf("micro grid cells = %d, want 4", len(epoch.Cells))
	}
	wantKeys := map[string]bool{"tiny/fresh/f32": false, "small/resident/f32": false,
		"tiny/batch/f32": false, "small/batch/f32": false}
	for _, c := range epoch.Cells {
		if _, ok := wantKeys[c.Key()]; !ok {
			t.Fatalf("unexpected cell %s", c.Key())
		}
		wantKeys[c.Key()] = true
		if c.GFLOPS <= 0 {
			t.Fatalf("cell %s gflops = %v, want > 0", c.Key(), c.GFLOPS)
		}
		if c.GFLOPS > c.BestGFLOPS+1e-9 {
			t.Fatalf("cell %s worst %v exceeds best %v", c.Key(), c.GFLOPS, c.BestGFLOPS)
		}
		if c.Tier == "" {
			t.Fatalf("cell %s missing tier", c.Key())
		}
	}
	for k, seen := range wantKeys {
		if !seen {
			t.Fatalf("micro grid missing cell %s", k)
		}
	}
	if epoch.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version = %d, want %d", epoch.SchemaVersion, BenchSchemaVersion)
	}
	if epoch.Artifact != "corpus" {
		t.Fatalf("artifact = %q", epoch.Artifact)
	}
	if epoch.Protocol == "" || !strings.Contains(epoch.Protocol, "worst-of-N") {
		t.Fatalf("protocol not recorded: %q", epoch.Protocol)
	}
	if epoch.Host.Cores < 1 {
		t.Fatalf("host fingerprint not stamped: %+v", epoch.Host)
	}
	if epoch.Seq != 0 {
		t.Fatalf("fresh epoch seq = %d, want 0 until the store assigns one", epoch.Seq)
	}
}

func TestCorpusStoreRoundTrip(t *testing.T) {
	epoch := runMicroCorpus(t)
	dir := filepath.Join(t.TempDir(), "corpus")
	st := OpenCorpusStore(dir)

	path, err := st.Append(epoch)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if epoch.Seq != 1 {
		t.Fatalf("first epoch seq = %d, want 1", epoch.Seq)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "0001-") || !strings.HasSuffix(base, ".json") {
		t.Fatalf("epoch file name = %q, want 0001-<rev>.json", base)
	}

	loaded, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d epochs, want 1", len(loaded))
	}
	got, want := loaded[0], epoch
	if got.Seq != want.Seq || got.Grid != want.Grid || len(got.Cells) != len(want.Cells) {
		t.Fatalf("round-trip mismatch: got seq=%d grid=%q cells=%d", got.Seq, got.Grid, len(got.Cells))
	}
	for i, c := range want.Cells {
		if loaded[0].Cells[i] != c {
			t.Fatalf("cell %d changed in round-trip:\n got %+v\nwant %+v", i, loaded[0].Cells[i], c)
		}
	}
	if got.Host.Key() != want.Host.Key() {
		t.Fatalf("host key changed: %q vs %q", got.Host.Key(), want.Host.Key())
	}

	// Second append continues the sequence; Load returns store order.
	second := runMicroCorpus(t)
	if _, err := st.Append(second); err != nil {
		t.Fatalf("second Append: %v", err)
	}
	if second.Seq != 2 {
		t.Fatalf("second epoch seq = %d, want 2", second.Seq)
	}
	all, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Seq != 1 || all[1].Seq != 2 {
		t.Fatalf("store order wrong: %d epochs", len(all))
	}
	latest, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 2 {
		t.Fatalf("Latest seq = %d, want 2", latest.Seq)
	}
}

func TestCorpusStoreEmptyAndJunk(t *testing.T) {
	st := OpenCorpusStore(filepath.Join(t.TempDir(), "missing"))
	eps, err := st.Load()
	if err != nil || len(eps) != 0 {
		t.Fatalf("missing dir: eps=%d err=%v", len(eps), err)
	}
	latest, err := st.Latest()
	if err != nil || latest != nil {
		t.Fatalf("missing dir Latest: %v %v", latest, err)
	}

	// Non-epoch files (REPORT.md, profile dirs) are ignored by Load.
	dir := t.TempDir()
	st = OpenCorpusStore(dir)
	os.WriteFile(filepath.Join(dir, "REPORT.md"), []byte("# x\n"), 0o644)
	os.MkdirAll(filepath.Join(dir, "0001-deadbeef"), 0o755)
	eps, err = st.Load()
	if err != nil || len(eps) != 0 {
		t.Fatalf("junk dir: eps=%d err=%v", len(eps), err)
	}
}

func TestCorpusStoreProfileDirNames(t *testing.T) {
	dir := t.TempDir()
	st := OpenCorpusStore(dir)
	next, err := st.NextProfileDir("abcdef0123456789")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "0001-abcdef012345"); next != want {
		t.Fatalf("NextProfileDir = %q, want %q", next, want)
	}
	if got, want := st.ProfileDir(7, ""), filepath.Join(dir, "0007-norev"); got != want {
		t.Fatalf("ProfileDir = %q, want %q", got, want)
	}
}

func TestCorpusEnvelopeBackCompat(t *testing.T) {
	// A pre-envelope (schema v1) epoch file — no envelope fields at all —
	// must still load; absence of schema_version means version 1.
	dir := t.TempDir()
	raw := map[string]any{
		"seq":  1,
		"grid": "micro",
		"cells": []map[string]any{{
			"shape": "tiny", "scenario": "fresh", "dtype": "f32",
			"m": 8, "k": 24, "n": 24, "tier": "tiny", "reps": 10, "runs": 1,
			"gflops": 1.5, "best_gflops": 1.5, "median_gflops": 1.5, "cov": 0,
		}},
	}
	data, _ := json.Marshal(raw)
	path := filepath.Join(dir, "0001-norev.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := LoadCorpusEpoch(path)
	if err != nil {
		t.Fatalf("LoadCorpusEpoch: %v", err)
	}
	if e.SchemaVersion != 0 {
		t.Fatalf("schema version = %d, want 0 (implicit v1)", e.SchemaVersion)
	}
	if got, ok := e.CellByKey("tiny/fresh/f32"); !ok || got.GFLOPS != 1.5 {
		t.Fatalf("cell lost: %+v ok=%v", got, ok)
	}
}

func TestCorpusUnknownGrid(t *testing.T) {
	if _, err := RunCorpus(CorpusOptions{Grid: "nope"}); err == nil {
		t.Fatal("want error for unknown grid")
	}
}

func TestShortRev(t *testing.T) {
	if got := ShortRev(""); got != "norev" {
		t.Fatalf("ShortRev(\"\") = %q", got)
	}
	if got := ShortRev("0123456789abcdef"); got != "0123456789ab" {
		t.Fatalf("ShortRev long = %q", got)
	}
	if got := ShortRev("abc"); got != "abc" {
		t.Fatalf("ShortRev short = %q", got)
	}
}
