package experiments

import (
	"path/filepath"
	"testing"
)

// TestProfileRoundtrip pins the minimal pprof writer against the minimal
// reader: whatever WriteProfile emits, ReadProfileSummary must recover —
// sample type, unit, total, and per-function flat values. This is the
// contract hotcover's synthetic-corpus tests stand on.
func TestProfileRoundtrip(t *testing.T) {
	frames := []Frame{
		{Name: "repro/internal/kernel.kernel8x8[go.shape.float64]", Value: 700},
		{Name: "repro/internal/matrix.(*Matrix).At", Value: 200},
		{Name: "runtime.memmove", Value: 100},
	}
	path := filepath.Join(t.TempDir(), "cpu-test.pprof")
	if err := WriteProfile(path, "cpu", "nanoseconds", frames); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadProfileSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SampleType != "cpu" || sum.Unit != "nanoseconds" {
		t.Errorf("sample type %q/%q, want cpu/nanoseconds", sum.SampleType, sum.Unit)
	}
	if sum.Total != 1000 {
		t.Errorf("total %d, want 1000", sum.Total)
	}
	if len(sum.Frames) != len(frames) {
		t.Fatalf("%d frames, want %d: %+v", len(sum.Frames), len(frames), sum.Frames)
	}
	// ReadProfileSummary sorts by value descending; the writer input above is
	// already in that order, so the roundtrip must match element-wise.
	for i, f := range sum.Frames {
		if f != frames[i] {
			t.Errorf("frame %d = %+v, want %+v", i, f, frames[i])
		}
	}
}

// TestMarshalProfileIsGzip: corpus profiles are stored gzipped (the pprof
// tool's wire default); the reader's magic sniff must take the gzip path.
func TestMarshalProfileIsGzip(t *testing.T) {
	data, err := MarshalProfile("cpu", "nanoseconds", []Frame{{Name: "f", Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("MarshalProfile output is not gzipped (leading bytes % x)", data[:2])
	}
}
