package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/platform"
)

// Grid is one Figure 8 panel: CAKE-vs-baseline throughput ratio over a grid
// of matrix dimensions at a fixed M:N aspect ratio.
type Grid struct {
	ID     string
	Title  string
	XLabel string // e.g. "M = 2N"
	YLabel string // "K"
	Xs, Ys []int
	Z      [][]float64 // Z[yi][xi] = CAKE/baseline throughput ratio
}

// Render writes the ratio grid and the contour coverage summary (the
// shaded-region fractions of the paper's plot).
func (g *Grid) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", g.ID, g.Title)
	header := []string{g.YLabel + `\` + g.XLabel}
	for _, x := range g.Xs {
		header = append(header, fmt.Sprintf("%d", x))
	}
	rows := [][]string{header}
	for yi, y := range g.Ys {
		row := []string{fmt.Sprintf("%d", y)}
		for xi := range g.Xs {
			row = append(row, fmt.Sprintf("%.2f", g.Z[yi][xi]))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	for _, th := range []float64{1.0, 1.25, 1.5, 2.0} {
		fmt.Fprintf(w, "    ratio >= %.2fx over %.0f%% of the grid\n", th, 100*g.Coverage(th))
	}
	fmt.Fprintln(w)
}

// CSV writes the grid with K rows and dimension columns.
func (g *Grid) CSV(w io.Writer) {
	cols := []string{g.YLabel}
	for _, x := range g.Xs {
		cols = append(cols, fmt.Sprintf("%d", x))
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for yi, y := range g.Ys {
		row := []string{fmt.Sprintf("%d", y)}
		for xi := range g.Xs {
			row = append(row, fmt.Sprintf("%.4f", g.Z[yi][xi]))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Coverage returns the fraction of grid cells with ratio ≥ threshold.
func (g *Grid) Coverage(threshold float64) float64 {
	total, over := 0, 0
	for _, row := range g.Z {
		for _, v := range row {
			total++
			if v >= threshold {
				over++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(over) / float64(total)
}

// Fig8 reproduces the relative-throughput contours: for each M:N aspect
// ratio the paper plots (1, 2, 4, 8), sweep M and K over [step, maxDim] and
// record CAKE/baseline simulated throughput on all cores of pl.
func Fig8(pl *platform.Platform, maxDim, step int) ([]*Grid, error) {
	var grids []*Grid
	for gi, ratio := range []int{1, 2, 4, 8} {
		xlabel := "M = N"
		if ratio > 1 {
			xlabel = fmt.Sprintf("M = %dN", ratio)
		}
		g := &Grid{
			ID:     fmt.Sprintf("fig8%c", 'a'+gi),
			Title:  fmt.Sprintf("CAKE vs %s relative throughput on %s (%s)", BaselineName(pl), pl.Name, xlabel),
			XLabel: xlabel,
			YLabel: "K",
		}
		for d := step; d <= maxDim; d += step {
			g.Xs = append(g.Xs, d)
		}
		for kd := step; kd <= maxDim; kd += step {
			g.Ys = append(g.Ys, kd)
		}
		for _, kd := range g.Ys {
			row := make([]float64, 0, len(g.Xs))
			for _, d := range g.Xs {
				m := d
				n := max(1, d/ratio)
				cm, _, err := SimCake(pl, pl.Cores, m, kd, n)
				if err != nil {
					return nil, err
				}
				gm, _, err := SimGoto(pl, pl.Cores, m, kd, n)
				if err != nil {
					return nil, err
				}
				row = append(row, cm.ThroughputGFLOPS(pl.ClockHz)/gm.ThroughputGFLOPS(pl.ClockHz))
			}
			g.Z = append(g.Z, row)
		}
		grids = append(grids, g)
	}
	return grids, nil
}
