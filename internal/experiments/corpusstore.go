package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// CorpusStore is the append-only perf-history store: one JSON file per epoch
// named NNNN-<rev>.json under Dir (canonically results/corpus), plus an
// optional NNNN-<rev>/ directory holding that epoch's pprof profiles.
// Epochs are never rewritten — the trajectory is the artifact — so sequence
// numbers only grow and Load returns the files in sequence order.
type CorpusStore struct {
	Dir string
}

// OpenCorpusStore points a store at dir (created lazily on first Append).
func OpenCorpusStore(dir string) *CorpusStore { return &CorpusStore{Dir: dir} }

// epochFileRe matches epoch file names: 4-digit sequence, dash, revision tag.
var epochFileRe = regexp.MustCompile(`^(\d{4})-([0-9a-zA-Z]+)\.json$`)

// epochs lists (seq, filename) pairs in sequence order.
func (s *CorpusStore) epochFiles() ([]struct {
	seq  int
	name string
}, error) {
	entries, err := os.ReadDir(s.Dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []struct {
		seq  int
		name string
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		m := epochFileRe.FindStringSubmatch(ent.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.Atoi(m[1])
		if err != nil || seq < 1 {
			continue
		}
		out = append(out, struct {
			seq  int
			name string
		}{seq, ent.Name()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// Append assigns the next sequence number to the epoch, writes it as
// NNNN-<rev>.json, and returns the file path. The epoch's Seq field is
// filled in place so callers can emit the root BENCH_corpus.json with the
// same identity the store recorded.
func (s *CorpusStore) Append(e *CorpusEpoch) (string, error) {
	files, err := s.epochFiles()
	if err != nil {
		return "", err
	}
	next := 1
	if len(files) > 0 {
		next = files[len(files)-1].seq + 1
	}
	if next > 9999 {
		return "", fmt.Errorf("experiments: corpus store %s: sequence space exhausted", s.Dir)
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", err
	}
	e.Seq = next
	path := filepath.Join(s.Dir, s.epochName(next, e.GitRev))
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// epochName renders an epoch file name for a sequence number and revision.
func (s *CorpusStore) epochName(seq int, rev string) string {
	return fmt.Sprintf("%04d-%s.json", seq, ShortRev(rev))
}

// ProfileDir returns the directory an epoch's pprof profiles live in
// (NNNN-<rev>/ next to the epoch file). It is not created here — the corpus
// runner creates it only when profiling is requested.
func (s *CorpusStore) ProfileDir(seq int, rev string) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%04d-%s", seq, ShortRev(rev)))
}

// NextProfileDir is the profile directory the NEXT Append will own — usable
// before the epoch is written so the runner can capture profiles into it.
func (s *CorpusStore) NextProfileDir(rev string) (string, error) {
	files, err := s.epochFiles()
	if err != nil {
		return "", err
	}
	next := 1
	if len(files) > 0 {
		next = files[len(files)-1].seq + 1
	}
	return s.ProfileDir(next, rev), nil
}

// Load reads every epoch in sequence order (oldest first).
func (s *CorpusStore) Load() ([]*CorpusEpoch, error) {
	files, err := s.epochFiles()
	if err != nil {
		return nil, err
	}
	out := make([]*CorpusEpoch, 0, len(files))
	for _, f := range files {
		e, err := s.loadFile(filepath.Join(s.Dir, f.name))
		if err != nil {
			return nil, err
		}
		if e.Seq == 0 {
			e.Seq = f.seq // tolerate hand-written epochs without the field
		}
		out = append(out, e)
	}
	return out, nil
}

// Latest returns the newest epoch, or nil when the store is empty.
func (s *CorpusStore) Latest() (*CorpusEpoch, error) {
	all, err := s.Load()
	if err != nil || len(all) == 0 {
		return nil, err
	}
	return all[len(all)-1], nil
}

func (s *CorpusStore) loadFile(path string) (*CorpusEpoch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e CorpusEpoch
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("experiments: corpus epoch %s: %w", path, err)
	}
	if len(e.Cells) == 0 {
		return nil, fmt.Errorf("experiments: corpus epoch %s has no cells", path)
	}
	return &e, nil
}

// LoadCorpusEpoch reads a single epoch file (the root BENCH_corpus.json, or
// any store file directly).
func LoadCorpusEpoch(path string) (*CorpusEpoch, error) {
	return (&CorpusStore{}).loadFile(path)
}
