package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/platform"
)

// BenchSchemaVersion is the version of the unified BENCH_*.json envelope.
// Version 1 is the implicit pre-envelope format (no schema_version field —
// readers treat its absence as 1); version 2 added the envelope itself:
// artifact name, host fingerprint, git revision, and generation timestamp.
const BenchSchemaVersion = 2

// Envelope is the shared header every machine-readable benchmark artifact
// embeds. It answers the three questions a longitudinal perf record needs
// (GEMMbench's reproducibility criteria): what was measured (Artifact,
// SchemaVersion), where (Host), and at which point in the code's history
// (GitRev, GeneratedAt). Loaders tolerate its absence so baselines committed
// before the envelope existed keep gating.
type Envelope struct {
	SchemaVersion int                  `json:"schema_version"`
	Artifact      string               `json:"artifact"`
	Host          platform.Fingerprint `json:"host"`
	GitRev        string               `json:"git_rev,omitempty"`
	GeneratedAt   string               `json:"generated_at,omitempty"` // RFC 3339 UTC
}

// NewEnvelope stamps an envelope for an artifact measured on this host now.
func NewEnvelope(artifact string) Envelope {
	return Envelope{
		SchemaVersion: BenchSchemaVersion,
		Artifact:      artifact,
		Host:          platform.HostFingerprint(runtime.GOMAXPROCS(0)),
		GitRev:        GitRev(),
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
	}
}

// GitRev returns the repository's HEAD commit hash, found by walking up from
// the working directory to the nearest .git and reading HEAD (following one
// level of symbolic ref, then packed-refs). Purely stdlib — no git binary —
// and best-effort: any miss returns "" rather than failing the benchmark
// that wanted the stamp.
func GitRev() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		gitDir := filepath.Join(dir, ".git")
		if fi, err := os.Stat(gitDir); err == nil {
			if !fi.IsDir() {
				// Worktree: .git is a file "gitdir: <path>".
				data, err := os.ReadFile(gitDir)
				if err != nil {
					return ""
				}
				p := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(string(data)), "gitdir:"))
				if !filepath.IsAbs(p) {
					p = filepath.Join(dir, p)
				}
				gitDir = p
			}
			return readGitHead(gitDir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// readGitHead resolves HEAD inside a .git directory.
func readGitHead(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	h := strings.TrimSpace(string(head))
	ref, isRef := strings.CutPrefix(h, "ref: ")
	if !isRef {
		return h // detached HEAD: the hash itself
	}
	ref = strings.TrimSpace(ref)
	if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(data))
	}
	// Ref not loose — search packed-refs ("<hash> <ref>" lines).
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(packed), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "^") {
			continue
		}
		hash, name, ok := strings.Cut(line, " ")
		if ok && name == ref {
			return hash
		}
	}
	return ""
}

// ShortRev trims a revision hash for filenames and display (12 chars, the
// git default abbreviation ceiling); empty input becomes "norev".
func ShortRev(rev string) string {
	if rev == "" {
		return "norev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev
}
