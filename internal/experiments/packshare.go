package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
)

// PackShareRow is one shape's packing-overhead measurement.
type PackShareRow struct {
	Name      string
	M, K, N   int
	PackShare float64 // fraction of time in packing / block management
	GFLOPS    float64
}

// PackingOverhead measures, on the real machine, the fraction of CAKE's
// execution spent packing for a set of matrix shapes — the Section 5.2.1
// observation that packing is negligible when M, N and K are all large but
// "may constitute a significant fraction of total computation time" for
// skewed shapes (one dimension much smaller than the other two).
func PackingOverhead(cores int, shapes []PackShareRow) ([]PackShareRow, error) {
	cfg := core.Config{
		Cores: cores, MC: 64, KC: 64, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto,
	}
	// The synchronous executor: this experiment reproduces the paper's
	// baseline packing overhead, which panel reuse would understate.
	e, err := core.NewExecutor[float32](cfg, nil, core.WithPipeline(false))
	if err != nil {
		return nil, err
	}
	defer e.Close()

	out := make([]PackShareRow, 0, len(shapes))
	for _, row := range shapes {
		a := matrix.New[float32](row.M, row.K)
		b := matrix.New[float32](row.K, row.N)
		a.Fill(1)
		b.Fill(1)
		c := matrix.New[float32](row.M, row.N)
		st, err := e.Gemm(c, a, b)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", row.Name, err)
		}
		row.PackShare = st.PackShare()
		total := st.PackNanos + st.ComputeNanos
		if total > 0 {
			row.GFLOPS = matrix.GemmFlops(row.M, row.N, row.K) / float64(total)
		}
		out = append(out, row)
	}
	return out, nil
}

// DefaultPackShapes returns the square-vs-skewed comparison set.
func DefaultPackShapes() []PackShareRow {
	return []PackShareRow{
		{Name: "square", M: 512, K: 512, N: 512},
		{Name: "thin-K", M: 512, K: 16, N: 512},
		{Name: "thin-M", M: 16, K: 512, N: 512},
		{Name: "thin-N", M: 512, K: 512, N: 16},
	}
}
