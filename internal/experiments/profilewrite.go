package experiments

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
)

// WriteProfile is the inverse of ReadProfileSummary for the subset of the
// pprof wire format the reader consumes: one sample type, one flat sample per
// frame, each frame backed by its own location → line → function chain. It
// exists so tests (hotcover fixtures, reader robustness) can synthesize
// byte-real profiles instead of committing opaque binaries, and so tools can
// re-emit an aggregated summary as a profile other pprof consumers open.
// Output is gzipped, matching what runtime/pprof writes.
func WriteProfile(path, sampleType, unit string, frames []Frame) error {
	data, err := MarshalProfile(sampleType, unit, frames)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// MarshalProfile renders the gzipped profile bytes WriteProfile persists.
func MarshalProfile(sampleType, unit string, frames []Frame) ([]byte, error) {
	// String table: index 0 must be the empty string (proto3 pprof contract).
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		strIdx[s] = int64(len(strs))
		strs = append(strs, s)
		return strIdx[s]
	}
	typeIdx, unitIdx := intern(sampleType), intern(unit)

	var body []byte
	// Field 1: sample_type {type, unit}.
	var vt []byte
	vt = appendTag(vt, 1, 0)
	vt = appendUvarint(vt, uint64(typeIdx))
	vt = appendTag(vt, 2, 0)
	vt = appendUvarint(vt, uint64(unitIdx))
	body = appendMessage(body, 1, vt)

	for i, fr := range frames {
		id := uint64(i + 1)
		// Field 2: sample {location_id, value}.
		var sm []byte
		sm = appendTag(sm, 1, 0)
		sm = appendUvarint(sm, id)
		sm = appendTag(sm, 2, 0)
		sm = appendUvarint(sm, uint64(fr.Value))
		body = appendMessage(body, 2, sm)

		// Field 4: location {id, line{function_id}}.
		var line []byte
		line = appendTag(line, 1, 0)
		line = appendUvarint(line, id)
		var loc []byte
		loc = appendTag(loc, 1, 0)
		loc = appendUvarint(loc, id)
		loc = appendMessage(loc, 4, line)
		body = appendMessage(body, 4, loc)

		// Field 5: function {id, name}.
		var fn []byte
		fn = appendTag(fn, 1, 0)
		fn = appendUvarint(fn, id)
		fn = appendTag(fn, 2, 0)
		fn = appendUvarint(fn, uint64(intern(fr.Name)))
		body = appendMessage(body, 5, fn)
	}

	// Field 6: string_table, in index order.
	for _, s := range strs {
		body = appendMessage(body, 6, []byte(s))
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		return nil, fmt.Errorf("experiments: marshal profile: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("experiments: marshal profile: %w", err)
	}
	return buf.Bytes(), nil
}

func appendTag(b []byte, field, wire int) []byte {
	return appendUvarint(b, uint64(field)<<3|uint64(wire))
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendMessage(b []byte, field int, msg []byte) []byte {
	b = appendTag(b, field, 2)
	b = appendUvarint(b, uint64(len(msg)))
	return append(b, msg...)
}
