package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
	"unsafe"

	"repro/internal/engine"
	"repro/internal/matrix"
)

// ResidentBenchRow is one weight shape's fresh-vs-resident serving
// measurement: the same activation GEMM served by re-packing the weights
// every call (GemmScaled with transB — DNN weights ship transposed) and by
// the resident path (RegisterBT once, GemmResident per call).
type ResidentBenchRow struct {
	Shape               string  `json:"shape"`
	Dtype               string  `json:"dtype"`
	Tier                string  `json:"tier"`
	M                   int     `json:"m"`
	K                   int     `json:"k"`
	N                   int     `json:"n"`
	Reps                int     `json:"reps"`
	FreshGemmsPerSec    float64 `json:"fresh_gemms_per_sec"`
	ResidentGemmsPerSec float64 `json:"resident_gemms_per_sec"`
	Speedup             float64 `json:"speedup"` // resident vs fresh GEMMs/s
	FreshP50Micros      float64 `json:"fresh_p50_micros"`
	ResidentP50Micros   float64 `json:"resident_p50_micros"`
	FreshP99Micros      float64 `json:"fresh_p99_micros"`
	ResidentP99Micros   float64 `json:"resident_p99_micros"`
	Gate                bool    `json:"gate"` // carries the absolute speedup floor
}

// ResidentBenchResult is the full `cake-bench resident` measurement.
type ResidentBenchResult struct {
	Envelope
	Cores     int                `json:"cores"`
	GateShape string             `json:"gate_shape"`
	Rows      []ResidentBenchRow `json:"rows"`
	// Store counters after the run: how much §4.4 pack traffic the
	// resident panels absorbed.
	Hits             int64 `json:"hits"`
	Evictions        int64 `json:"evictions"`
	ResidentBytes    int64 `json:"resident_bytes"`
	AvoidedPackBytes int64 `json:"avoided_pack_bytes"`
}

// ResidentGateShape is the row carrying the absolute resident-vs-fresh
// speedup floor: a skewed small-M activation GEMM against a weight operand
// whose per-call PackBT cost is the dominant non-compute term — the shape
// the resident store exists for.
const ResidentGateShape = "serve-8x384x384/f64"

// residentShape measures one weight shape both ways on a shared engine.
// Weights are generated transposed (N×K, the PyTorch/ONNX linear-layer
// convention), so the fresh side pays the strided PackBT gather every call
// while the resident side paid it once at registration.
func residentShape[T matrix.Scalar](e *engine.Engine, name, dtype string, m, k, n, reps int, gate bool, rng *rand.Rand) (ResidentBenchRow, error) {
	row := ResidentBenchRow{Shape: name + "/" + dtype, Dtype: dtype, M: m, K: k, N: n, Reps: reps, Gate: gate}
	var zero T
	elem := int(unsafe.Sizeof(zero))
	row.Tier = e.TierFor(m, k, n, elem).String()

	a := matrix.New[T](m, k)
	bt := matrix.New[T](n, k) // weights stored transposed
	a.Randomize(rng)
	bt.Randomize(rng)
	c := matrix.New[T](m, n)

	id := "bench-" + row.Shape
	// Registered operands stay resident for the whole run (Engine.Close
	// drains them), so the final store snapshot reports real residency.
	if err := engine.RegisterBT(e, id, bt, true); err != nil {
		return row, fmt.Errorf("experiments: resident register %s: %w", row.Shape, err)
	}

	fresh := func() error {
		_, err := engine.GemmScaled(e, c, a, bt, false, true, 1, 0)
		return err
	}
	resident := func() error {
		_, err := engine.GemmResidentScaled(e, c, a, id, false, 1, 0)
		return err
	}
	for i := 0; i < 2; i++ { // warm both paths (buffers, lease pool)
		if err := fresh(); err != nil {
			return row, err
		}
		if err := resident(); err != nil {
			return row, err
		}
	}
	time_ := func(run func() error) (gemmsPerSec, p50, p99 float64, err error) {
		lat := make([]time.Duration, 0, reps)
		start := time.Now()
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := run(); err != nil {
				return 0, 0, 0, err
			}
			lat = append(lat, time.Since(t0))
		}
		elapsed := time.Since(start)
		return float64(reps) / elapsed.Seconds(), percentileMicros(lat, 50), percentileMicros(lat, 99), nil
	}
	var err error
	if row.FreshGemmsPerSec, row.FreshP50Micros, row.FreshP99Micros, err = time_(fresh); err != nil {
		return row, fmt.Errorf("experiments: resident fresh side %s: %w", row.Shape, err)
	}
	if row.ResidentGemmsPerSec, row.ResidentP50Micros, row.ResidentP99Micros, err = time_(resident); err != nil {
		return row, fmt.Errorf("experiments: resident side %s: %w", row.Shape, err)
	}
	if row.FreshGemmsPerSec > 0 {
		row.Speedup = row.ResidentGemmsPerSec / row.FreshGemmsPerSec
	}
	return row, nil
}

// ResidentBench measures the resident-operand store's serving win: for each
// weight shape, activations served fresh (per-call B pack) vs resident
// (pre-packed panels). Tier thresholds come from the fixed serve-bench
// platform model so the dispatch is host-independent; only the measured
// times follow the machine.
func ResidentBench(cores int, quick bool) (*ResidentBenchResult, error) {
	if cores < 1 {
		cores = runtime.GOMAXPROCS(0)
	}
	e, err := engine.NewEngine(engine.Options{Platform: servePlatform(cores), Name: "resident-bench"})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	scale := 1
	if quick {
		scale = 4
	}
	shapes := []struct {
		name    string
		dtype   string
		m, k, n int
		reps    int
		gate    bool
	}{
		// Tiny: the whole problem fits L1; the direct path serves from the
		// kernel-layout panel.
		{"tiny-8x24x24", "f32", 8, 24, 24, 2000, false},
		// Small: cache-resident weights; single-CB-block layout.
		{"small-8x320x320", "f32", 8, 320, 320, 400, false},
		// The gate shape: past the model LLC, K-first panel grid, f64 PackBT
		// is the costliest per-call gather the fresh side can pay.
		{"serve-8x384x384", "f64", 8, 384, 384, 240, true},
		// Contrast: a batch shape where compute dominates and the resident
		// win is expected to be modest.
		{"batch-48x576x576", "f32", 48, 576, 576, 60, false},
	}
	res := &ResidentBenchResult{Envelope: NewEnvelope("resident"), Cores: cores, GateShape: ResidentGateShape}
	rng := rand.New(rand.NewSource(7))
	for _, sh := range shapes {
		reps := sh.reps / scale
		if reps < 8 {
			reps = 8
		}
		var row ResidentBenchRow
		var err error
		switch sh.dtype {
		case "f64":
			row, err = residentShape[float64](e, sh.name, sh.dtype, sh.m, sh.k, sh.n, reps, sh.gate, rng)
		default:
			row, err = residentShape[float32](e, sh.name, sh.dtype, sh.m, sh.k, sh.n, reps, sh.gate, rng)
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	st := e.ResidentStats()
	res.Hits, res.Evictions = st.Hits, st.Evictions
	res.ResidentBytes, res.AvoidedPackBytes = st.Bytes, st.AvoidedPackBytes
	return res, nil
}
