package experiments

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
)

// Minimal pprof profile reader: just enough of the profile.proto wire format
// (gzipped protobuf) to aggregate flat sample values per leaf function, so
// corpus epochs can summarize "which frames got hotter since the last epoch"
// without importing any profiling dependency. Follows the proto3 layout
// runtime/pprof emits:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function), 6 string_table
//	ValueType: 1 type (string idx), 2 unit (string idx)
//	Sample:    1 location_id (repeated uint64), 2 value (repeated int64)
//	Location:  1 id, 4 line (Line)
//	Line:      1 function_id
//	Function:  1 id, 2 name (string idx)

// Frame is one function's flat (self) value in a profile.
type Frame struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// ProfileSummary is a profile reduced to per-leaf-function flat values for
// one chosen sample type.
type ProfileSummary struct {
	SampleType string  `json:"sample_type"` // e.g. "cpu" or "inuse_space"
	Unit       string  `json:"unit"`        // e.g. "nanoseconds", "bytes"
	Total      int64   `json:"total"`
	Frames     []Frame `json:"frames"` // sorted by value, descending
}

// Top returns the n hottest frames.
func (s *ProfileSummary) Top(n int) []Frame {
	if n > len(s.Frames) {
		n = len(s.Frames)
	}
	return s.Frames[:n]
}

// FrameDelta is one function's change between two epochs' profiles.
type FrameDelta struct {
	Name       string `json:"name"`
	Prev       int64  `json:"prev"`
	Cur        int64  `json:"cur"`
	Difference int64  `json:"delta"`
}

// DiffProfiles joins two summaries by frame name and returns the n largest
// absolute changes, biggest first. Frames absent on one side count as zero.
func DiffProfiles(prev, cur *ProfileSummary, n int) []FrameDelta {
	vals := map[string]*FrameDelta{}
	for _, f := range prev.Frames {
		vals[f.Name] = &FrameDelta{Name: f.Name, Prev: f.Value}
	}
	for _, f := range cur.Frames {
		d := vals[f.Name]
		if d == nil {
			d = &FrameDelta{Name: f.Name}
			vals[f.Name] = d
		}
		d.Cur = f.Value
	}
	out := make([]FrameDelta, 0, len(vals))
	for _, d := range vals {
		d.Difference = d.Cur - d.Prev
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Difference, out[j].Difference
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// ReadProfileSummary parses a pprof file (gzipped or raw proto) into flat
// per-function values. The sample type is chosen by preference: "cpu", then
// "inuse_space", then the last type in the profile (runtime/pprof's
// convention for the most useful default).
func ReadProfileSummary(path string) (*ProfileSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("experiments: pprof %s: %w", path, err)
		}
		data, err = io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: pprof %s: %w", path, err)
		}
	}
	p, err := parsePprof(data)
	if err != nil {
		return nil, fmt.Errorf("experiments: pprof %s: %w", path, err)
	}
	return p.summarize(), nil
}

type pprofValueType struct{ typ, unit int64 } // string-table indices

type pprofSample struct {
	locs   []uint64
	values []int64
}

type pprofData struct {
	sampleTypes []pprofValueType
	samples     []pprofSample
	locFunc     map[uint64]uint64 // location id → leaf function id
	funcName    map[uint64]int64  // function id → name string idx
	strings     []string
}

func (p *pprofData) str(idx int64) string {
	if idx < 0 || int(idx) >= len(p.strings) {
		return ""
	}
	return p.strings[idx]
}

// pickValueIndex selects which sample value column to aggregate.
func (p *pprofData) pickValueIndex() int {
	for i, vt := range p.sampleTypes {
		if p.str(vt.typ) == "cpu" {
			return i
		}
	}
	for i, vt := range p.sampleTypes {
		if p.str(vt.typ) == "inuse_space" {
			return i
		}
	}
	return len(p.sampleTypes) - 1
}

func (p *pprofData) summarize() *ProfileSummary {
	s := &ProfileSummary{}
	vi := p.pickValueIndex()
	if vi >= 0 && vi < len(p.sampleTypes) {
		s.SampleType = p.str(p.sampleTypes[vi].typ)
		s.Unit = p.str(p.sampleTypes[vi].unit)
	}
	flat := map[string]int64{}
	for _, sm := range p.samples {
		if vi < 0 || vi >= len(sm.values) || len(sm.locs) == 0 {
			continue
		}
		v := sm.values[vi]
		name := "<unknown>"
		if fid, ok := p.locFunc[sm.locs[0]]; ok {
			if n := p.str(p.funcName[fid]); n != "" {
				name = n
			}
		}
		flat[name] += v
		s.Total += v
	}
	for name, v := range flat {
		s.Frames = append(s.Frames, Frame{Name: name, Value: v})
	}
	sort.Slice(s.Frames, func(i, j int) bool {
		if s.Frames[i].Value != s.Frames[j].Value {
			return s.Frames[i].Value > s.Frames[j].Value
		}
		return s.Frames[i].Name < s.Frames[j].Name
	})
	return s
}

// --- protobuf wire-format scanning ---

// protoField is one decoded field: varint payload for wire type 0, raw bytes
// for wire type 2.
type protoField struct {
	num  int
	wire int
	vi   uint64
	data []byte
}

// scanProto walks a message's fields, invoking fn per field. Unknown wire
// types fail — the pprof writer only uses 0, 1, 2 and 5.
func scanProto(buf []byte, fn func(f protoField) error) error {
	for len(buf) > 0 {
		key, n := uvarint(buf)
		if n <= 0 {
			return fmt.Errorf("bad field key")
		}
		buf = buf[n:]
		f := protoField{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0:
			v, n := uvarint(buf)
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", f.num)
			}
			f.vi = v
			buf = buf[n:]
		case 1:
			if len(buf) < 8 {
				return fmt.Errorf("short fixed64 in field %d", f.num)
			}
			buf = buf[8:]
		case 2:
			l, n := uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < l {
				return fmt.Errorf("bad length in field %d", f.num)
			}
			f.data = buf[n : n+int(l)]
			buf = buf[n+int(l):]
		case 5:
			if len(buf) < 4 {
				return fmt.Errorf("short fixed32 in field %d", f.num)
			}
			buf = buf[4:]
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", f.wire, f.num)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// uvarint decodes a varint, returning (value, bytes consumed); n<=0 on error.
func uvarint(buf []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(buf) && i < 10; i++ {
		b := buf[i]
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// repeatedUvarints decodes a repeated scalar field that may arrive packed
// (wire 2) or one-per-field (wire 0).
func repeatedUvarints(f protoField, dst *[]uint64) error {
	if f.wire == 0 {
		*dst = append(*dst, f.vi)
		return nil
	}
	buf := f.data
	for len(buf) > 0 {
		v, n := uvarint(buf)
		if n <= 0 {
			return fmt.Errorf("bad packed varint")
		}
		*dst = append(*dst, v)
		buf = buf[n:]
	}
	return nil
}

func parsePprof(data []byte) (*pprofData, error) {
	p := &pprofData{
		locFunc:  map[uint64]uint64{},
		funcName: map[uint64]int64{},
	}
	err := scanProto(data, func(f protoField) error {
		switch f.num {
		case 1: // sample_type
			var vt pprofValueType
			if err := scanProto(f.data, func(g protoField) error {
				switch g.num {
				case 1:
					vt.typ = int64(g.vi)
				case 2:
					vt.unit = int64(g.vi)
				}
				return nil
			}); err != nil {
				return err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case 2: // sample
			var sm pprofSample
			var raw []uint64
			if err := scanProto(f.data, func(g protoField) error {
				switch g.num {
				case 1:
					return repeatedUvarints(g, &sm.locs)
				case 2:
					return repeatedUvarints(g, &raw)
				}
				return nil
			}); err != nil {
				return err
			}
			sm.values = make([]int64, len(raw))
			for i, v := range raw {
				sm.values[i] = int64(v)
			}
			p.samples = append(p.samples, sm)
		case 4: // location
			var id, fid uint64
			if err := scanProto(f.data, func(g protoField) error {
				switch g.num {
				case 1:
					id = g.vi
				case 4: // line — first one is the leaf frame's line
					if fid == 0 {
						return scanProto(g.data, func(l protoField) error {
							if l.num == 1 && fid == 0 {
								fid = l.vi
							}
							return nil
						})
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if id != 0 {
				p.locFunc[id] = fid
			}
		case 5: // function
			var id uint64
			var name int64
			if err := scanProto(f.data, func(g protoField) error {
				switch g.num {
				case 1:
					id = g.vi
				case 2:
					name = int64(g.vi)
				}
				return nil
			}); err != nil {
				return err
			}
			if id != 0 {
				p.funcName[id] = name
			}
		case 6: // string_table
			p.strings = append(p.strings, string(f.data))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(p.sampleTypes) == 0 {
		return nil, fmt.Errorf("no sample types (not a pprof profile?)")
	}
	return p, nil
}
