package experiments

import (
	"testing"

	"repro/internal/engine"
)

// TestResidentBenchQuickRun exercises the benchmark end to end in quick
// mode, checking structure: every shape produces both measurements, tiers
// span the dispatch range, the gate row exists exactly once under the
// exported name, and the store counters show the resident path actually
// skipped pack traffic.
func TestResidentBenchQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("resident bench run in -short mode")
	}
	res, err := ResidentBench(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.GateShape != ResidentGateShape {
		t.Fatalf("gate shape = %q, want %q", res.GateShape, ResidentGateShape)
	}
	gates := 0
	tiers := map[string]bool{}
	for _, row := range res.Rows {
		if row.FreshGemmsPerSec <= 0 || row.ResidentGemmsPerSec <= 0 || row.Speedup <= 0 {
			t.Fatalf("row not measured: %+v", row)
		}
		tiers[row.Tier] = true
		if row.Gate {
			gates++
			if row.Shape != ResidentGateShape {
				t.Fatalf("gate row is %q, want %q", row.Shape, ResidentGateShape)
			}
		}
	}
	if gates != 1 {
		t.Fatalf("%d gate rows, want exactly 1", gates)
	}
	for _, tier := range []string{"tiny", "small", "large"} {
		if !tiers[tier] {
			t.Fatalf("no row landed on the %s tier: %v", tier, tiers)
		}
	}
	if res.Hits == 0 || res.AvoidedPackBytes == 0 {
		t.Fatalf("resident counters empty after run: %+v", res)
	}
}

// TestResidentBenchTierNames pins the fixed-model tier classification of
// the benchmark shapes, so a platform-model change that silently moves a
// shape across tiers fails loudly rather than shifting the gate's meaning.
func TestResidentBenchTierNames(t *testing.T) {
	e, err := engine.NewEngine(engine.Options{Platform: servePlatform(1), Name: "resident-tier-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if tier := e.TierFor(8, 24, 24, 4); tier != engine.TierTiny {
		t.Fatalf("8x24x24 f32 = %v, want tiny", tier)
	}
	if tier := e.TierFor(8, 320, 320, 4); tier != engine.TierSmall {
		t.Fatalf("8x320x320 f32 = %v, want small", tier)
	}
	if tier := e.TierFor(8, 384, 384, 8); tier != engine.TierLarge {
		t.Fatalf("8x384x384 f64 = %v, want large", tier)
	}
	if tier := e.TierFor(48, 576, 576, 4); tier != engine.TierLarge {
		t.Fatalf("48x576x576 f32 = %v, want large", tier)
	}
}
