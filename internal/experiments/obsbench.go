package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/obs/reqtrace"
)

// ObsBenchResult is the `cake-bench obs` measurement: the same fixed
// serve-mix driven through two engines that differ only in the request
// observability layer — flight recorder, per-tier histograms, and SLO
// windows on vs Trace.Disable. The recorder's design bar is the one the
// nil-recorder fast path meets: a handful of atomics per request, under 2%
// of serving throughput. This benchmark is the gate that keeps that claim
// true as the layer grows.
type ObsBenchResult struct {
	Envelope
	Cores        int     `json:"cores"`
	Clients      int     `json:"clients"`
	ClientMix    string  `json:"client_mix"`
	DurationSecs float64 `json:"duration_secs"` // per side per round
	Rounds       int     `json:"rounds"`

	// Best-of-rounds aggregate GEMMs/s per side (alternating rounds, so both
	// sides sample the same machine conditions).
	RecorderOnGemmsPerSec  float64 `json:"recorder_on_gemms_per_sec"`
	RecorderOffGemmsPerSec float64 `json:"recorder_off_gemms_per_sec"`

	// OverheadFrac is (off − on)/off on the best-of-rounds throughputs.
	// Negative means the recorder side measured faster (pure noise).
	OverheadFrac float64 `json:"overhead_frac"`

	// RecorderRecords counts the requests the flight recorder committed
	// across every recorder-on round — proof the measured side actually
	// recorded (a silently nil tracer would make the A/B meaningless).
	RecorderRecords int64 `json:"recorder_records"`
}

// obsSide runs one serving side and returns aggregate GEMMs/s.
func obsSide(e *engine.Engine, pools map[engine.Tier][]serveWorkItem, clients int, dur time.Duration) (float64, error) {
	agg, elapsed, err := runServeSide(pools, clients, dur,
		func(it *serveWorkItem, c *matrix.Matrix[float32]) error {
			_, err := engine.GemmScaledFor(e, "obs-bench", c, it.a, it.b, false, false, 1, 0)
			return err
		})
	if err != nil {
		return 0, err
	}
	var total int
	for _, ts := range agg {
		total += ts.n
	}
	return float64(total) / elapsed.Seconds(), nil
}

// ObsBench measures the request-observability overhead A/B. Rounds
// alternate recorder-on and recorder-off so slow drift in machine load hits
// both sides; each side's throughput is summarised best-of-rounds, the same
// noise treatment the other gates use.
func ObsBench(cores, clients int, dur time.Duration, rounds int) (*ObsBenchResult, error) {
	if clients < 1 {
		clients = 8
	}
	if rounds < 1 {
		rounds = 3
	}
	pl := servePlatform(cores)

	// The recorder-on engine runs the full layer: ring, tier histograms, and
	// live SLO objectives (per-tier and per-tenant, so both selector paths
	// execute per request).
	onOpts := engine.Options{
		Platform: pl, Name: "obs-bench-on", LargePanelSlots: 8,
		Trace: reqtrace.Options{
			Objectives: []reqtrace.Objective{
				{Tier: "tiny", Target: 10 * time.Millisecond},
				{Tier: "small", Target: 100 * time.Millisecond},
				{Tier: "large", Target: time.Second},
				{Tenant: "obs-bench"},
			},
		},
	}
	offOpts := engine.Options{
		Platform: pl, Name: "obs-bench-off", LargePanelSlots: 8,
		Trace: reqtrace.Options{Disable: true},
	}

	on, err := engine.NewEngine(onOpts)
	if err != nil {
		return nil, err
	}
	defer on.Close()
	off, err := engine.NewEngine(offOpts)
	if err != nil {
		return nil, err
	}
	defer off.Close()
	if on.Tracer() == nil {
		return nil, fmt.Errorf("experiments: obs bench recorder-on engine has no tracer")
	}
	if off.Tracer() != nil {
		return nil, fmt.Errorf("experiments: obs bench recorder-off engine has a tracer")
	}

	// Same workload pools for both sides (same platform model ⇒ same tier
	// classification ⇒ identical operands and dispatch).
	pools := serveWorkload(on)

	res := &ObsBenchResult{
		Envelope: NewEnvelope("obs"),
		Cores:    cores, Clients: clients, ClientMix: ServeClientMix,
		DurationSecs: dur.Seconds(), Rounds: rounds,
	}
	for r := 0; r < rounds; r++ {
		onRate, err := obsSide(on, pools, clients, dur)
		if err != nil {
			return nil, fmt.Errorf("experiments: obs bench recorder-on round %d: %w", r, err)
		}
		offRate, err := obsSide(off, pools, clients, dur)
		if err != nil {
			return nil, fmt.Errorf("experiments: obs bench recorder-off round %d: %w", r, err)
		}
		if onRate > res.RecorderOnGemmsPerSec {
			res.RecorderOnGemmsPerSec = onRate
		}
		if offRate > res.RecorderOffGemmsPerSec {
			res.RecorderOffGemmsPerSec = offRate
		}
	}
	res.RecorderRecords = on.Tracer().Committed()
	if res.RecorderRecords == 0 {
		return nil, fmt.Errorf("experiments: obs bench recorder committed no records")
	}
	if res.RecorderOffGemmsPerSec > 0 {
		res.OverheadFrac = (res.RecorderOffGemmsPerSec - res.RecorderOnGemmsPerSec) / res.RecorderOffGemmsPerSec
	}
	return res, nil
}
