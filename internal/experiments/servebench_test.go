package experiments

import (
	"testing"
	"time"

	"repro/internal/engine"
)

func serveTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.NewEngine(engine.Options{Platform: servePlatform(1), Name: "serve-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestServeWorkloadDeterministicTiers(t *testing.T) {
	e := serveTestEngine(t)
	pools := serveWorkload(e)
	want := map[engine.Tier]int{engine.TierTiny: 32, engine.TierSmall: 16, engine.TierLarge: 4}
	for tier, n := range want {
		items := pools[tier]
		if len(items) != n {
			t.Fatalf("%v pool = %d items, want %d", tier, len(items), n)
		}
		for _, it := range items {
			if it.tier != tier {
				t.Fatalf("%dx%dx%d classified %v in the %v pool", it.m, it.k, it.n, it.tier, tier)
			}
		}
	}
	// The pools are seeded: a second generation must produce identical dims.
	again := serveWorkload(e)
	for tier := range want {
		for i := range pools[tier] {
			a, b := pools[tier][i], again[tier][i]
			if a.m != b.m || a.k != b.k || a.n != b.n {
				t.Fatalf("%v item %d dims changed across generations: %dx%dx%d vs %dx%dx%d",
					tier, i, a.m, a.k, a.n, b.m, b.k, b.n)
			}
		}
	}
}

func TestClientTierMix(t *testing.T) {
	counts := map[engine.Tier]int{}
	for cl := 0; cl < 16; cl++ {
		counts[clientTier(cl)]++
	}
	if counts[engine.TierTiny] != 10 || counts[engine.TierSmall] != 4 || counts[engine.TierLarge] != 2 {
		t.Fatalf("client mix over 16 clients = %v, want 10/4/2", counts)
	}
}

func TestPercentileMicros(t *testing.T) {
	samples := []time.Duration{
		4 * time.Microsecond, 1 * time.Microsecond, 3 * time.Microsecond, 2 * time.Microsecond,
	}
	if got := percentileMicros(samples, 50); got != 2 {
		t.Fatalf("p50 = %g, want 2 (nearest rank)", got)
	}
	if got := percentileMicros(samples, 100); got != 4 {
		t.Fatalf("p100 = %g, want 4", got)
	}
	if got := percentileMicros(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %g, want 0", got)
	}
}

// TestServeBenchShortRun exercises the full benchmark end to end with a
// short window, checking structure rather than timing: both modes produce
// tiny rows, counters are populated, and the A/B measured both paths.
func TestServeBenchShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench run in -short mode")
	}
	res, err := ServeBench(1, 8, 300*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]bool{}
	for _, row := range res.Tiers {
		if row.Requests <= 0 || row.GemmsPerSec <= 0 {
			t.Fatalf("empty row emitted: %+v", row)
		}
		if row.Tier == "tiny" {
			modes[row.Mode] = true
		}
	}
	if !modes["engine"] || !modes["serialized"] {
		t.Fatalf("tiny rows missing a mode: %+v", res.Tiers)
	}
	if res.EngineGemmsPer <= 0 || res.SerializedGemms <= 0 || res.Speedup <= 0 {
		t.Fatalf("aggregate throughput not populated: %+v", res)
	}
	if res.TinyDirectP50Micros <= 0 || res.TinyCakeP50Micros <= 0 {
		t.Fatalf("tiny dispatch A/B not measured: %+v", res)
	}
	if res.LeaseNew+res.LeaseReused == 0 {
		t.Fatal("engine lease counters empty after serve run")
	}
	if res.ClientMix != ServeClientMix {
		t.Fatalf("client mix = %q", res.ClientMix)
	}
}
