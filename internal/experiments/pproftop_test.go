package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
)

// TestReadProfileSummaryHeap parses a real heap profile written by
// runtime/pprof — the exact artifact the corpus runner captures per scenario.
func TestReadProfileSummaryHeap(t *testing.T) {
	// Allocate something attributable so the profile is non-trivial.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 64<<10)
	}
	runtime.GC()

	path := filepath.Join(t.TempDir(), "heap.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := ReadProfileSummary(path)
	if err != nil {
		t.Fatalf("ReadProfileSummary: %v", err)
	}
	if sum.SampleType != "inuse_space" {
		t.Fatalf("sample type = %q, want inuse_space", sum.SampleType)
	}
	if sum.Unit != "bytes" {
		t.Fatalf("unit = %q, want bytes", sum.Unit)
	}
	if sum.Total <= 0 {
		t.Fatalf("total = %d, want > 0", sum.Total)
	}
	if len(sum.Frames) == 0 {
		t.Fatal("no frames parsed")
	}
	// Frames are sorted hottest-first and Top truncates.
	for i := 1; i < len(sum.Frames); i++ {
		if sum.Frames[i].Value > sum.Frames[i-1].Value {
			t.Fatalf("frames not sorted at %d", i)
		}
	}
	if top := sum.Top(3); len(top) > 3 {
		t.Fatalf("Top(3) = %d frames", len(top))
	}
	if top := sum.Top(len(sum.Frames) + 10); len(top) != len(sum.Frames) {
		t.Fatalf("Top over-length = %d, want %d", len(top), len(sum.Frames))
	}
	_ = sink
}

func TestReadProfileSummaryRejectsJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.pprof")
	if err := os.WriteFile(path, []byte("this is not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileSummary(path); err == nil {
		t.Fatal("want error for non-profile input")
	}
	if _, err := ReadProfileSummary(filepath.Join(t.TempDir(), "absent.pprof")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestDiffProfiles(t *testing.T) {
	prev := &ProfileSummary{Frames: []Frame{
		{Name: "pack", Value: 100},
		{Name: "kernel", Value: 900},
		{Name: "gone", Value: 50},
	}}
	cur := &ProfileSummary{Frames: []Frame{
		{Name: "pack", Value: 400},
		{Name: "kernel", Value: 910},
		{Name: "new", Value: 5},
	}}
	deltas := DiffProfiles(prev, cur, 10)
	if len(deltas) != 4 {
		t.Fatalf("deltas = %d, want 4", len(deltas))
	}
	// Largest absolute change first: pack +300.
	if deltas[0].Name != "pack" || deltas[0].Difference != 300 {
		t.Fatalf("deltas[0] = %+v", deltas[0])
	}
	byName := map[string]FrameDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["gone"]; d.Prev != 50 || d.Cur != 0 || d.Difference != -50 {
		t.Fatalf("gone = %+v", d)
	}
	if d := byName["new"]; d.Prev != 0 || d.Cur != 5 || d.Difference != 5 {
		t.Fatalf("new = %+v", d)
	}
	// Truncation keeps the biggest movers.
	top2 := DiffProfiles(prev, cur, 2)
	if len(top2) != 2 || top2[0].Name != "pack" || top2[1].Name != "gone" {
		t.Fatalf("top2 = %+v", top2)
	}
}

func TestDiffProfilesEmptyPrev(t *testing.T) {
	cur := &ProfileSummary{Frames: []Frame{{Name: "a", Value: 7}}}
	deltas := DiffProfiles(&ProfileSummary{}, cur, 5)
	if len(deltas) != 1 || deltas[0].Difference != 7 {
		t.Fatalf("deltas = %+v", deltas)
	}
}
