package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
)

// ServeTierRow is one size tier's serving measurement under one serving
// mode: request rate and latency percentiles for that tier's slice of the
// mixed workload.
type ServeTierRow struct {
	Mode        string  `json:"mode"` // engine | serialized
	Tier        string  `json:"tier"` // tiny | small | large
	Requests    int     `json:"requests"`
	GemmsPerSec float64 `json:"gemms_per_sec"`
	P50Micros   float64 `json:"p50_micros"`
	P95Micros   float64 `json:"p95_micros"`
	P99Micros   float64 `json:"p99_micros"`
	GFLOPS      float64 `json:"gflops"`
}

// ServeBenchResult is the full `cake-bench serve` measurement: concurrent
// client streams of mixed sizes, served once by the engine (tiered dispatch
// + leasing + admission) and once by the serialized baseline the issue
// names — a mutex around one full-CAKE executor. The aggregate GEMMs/s
// speedup quantifies convoy elimination: under the mutex, microsecond tiny
// requests wait behind tens-of-milliseconds large GEMMs; the engine's
// direct tiny path never enters that queue.
type ServeBenchResult struct {
	Envelope
	Cores            int            `json:"cores"`
	Clients          int            `json:"clients"`
	ClientMix        string         `json:"client_mix"`
	DurationSecs     float64        `json:"duration_secs"`
	Tiers            []ServeTierRow `json:"tiers"`
	EngineGemmsPer   float64        `json:"engine_gemms_per_sec"`
	EngineGFLOPS     float64        `json:"engine_gflops"`
	SerializedGemms  float64        `json:"serialized_gemms_per_sec"`
	SerializedGFLOPS float64        `json:"serialized_gflops"`
	Speedup          float64        `json:"speedup"` // engine vs serialized GEMMs/s
	// Tiny-tier dispatch A/B on identical calls: direct path vs sending the
	// same tiny GEMMs through a full-CAKE executor.
	TinyDirectP50Micros float64 `json:"tiny_direct_p50_micros"`
	TinyCakeP50Micros   float64 `json:"tiny_cake_p50_micros"`
	// Engine counters after the run (lease reuse rate, queueing).
	LeaseNew    int64 `json:"lease_new"`
	LeaseReused int64 `json:"lease_reused"`
	QueuedTotal int64 `json:"queued_total"`
}

// serveWorkItem is one pre-generated request.
type serveWorkItem struct {
	m, k, n int
	tier    engine.Tier
	a, b    *matrix.Matrix[float32]
}

// servePlatform pins the tier thresholds for the benchmark: results must be
// comparable across hosts with different caches, so the serve workload is
// classified against a fixed model (L1 32 KB, LLC 2 MB) rather than the
// host's detected geometry. Only Cores follows the machine.
func servePlatform(cores int) *platform.Platform {
	return &platform.Platform{
		Name:          "serve-bench",
		Cores:         cores,
		L1Bytes:       32 << 10,
		L2Bytes:       256 << 10,
		LLCBytes:      2 << 20,
		DRAMBytes:     8 << 30,
		DRAMBW:        25e9,
		ClockHz:       3e9,
		FlopsPerCycle: 4,
		Internal:      platform.BWCurve{SlopePre: 40e9, Knee: 8, SlopePost: 15e9},
		LatL1:         4, LatL2: 12, LatLLC: 40, LatDRAM: 200,
		DemandOverlap: 0.95,
		HasL3:         true,
	}
}

// serveWorkload generates the deterministic per-tier request pools. Every
// client stream draws from the pool of its own size class, so both serving
// modes see identical operands.
func serveWorkload(e *engine.Engine) map[engine.Tier][]serveWorkItem {
	rng := rand.New(rand.NewSource(42))
	// 384³ f32 is a 2.95 MB §4.3 working set — safely past the 2 MB model
	// LLC (shrinking it below 320 would fold the tier into small).
	const large = 384
	gen := func(n int, dims func() (m, k, n int)) []serveWorkItem {
		out := make([]serveWorkItem, n)
		for i := range out {
			m, k, nn := dims()
			a := matrix.New[float32](m, k)
			b := matrix.New[float32](k, nn)
			a.Randomize(rng)
			b.Randomize(rng)
			out[i] = serveWorkItem{m: m, k: k, n: nn, tier: e.TierFor(m, k, nn, 4), a: a, b: b}
		}
		return out
	}
	return map[engine.Tier][]serveWorkItem{
		engine.TierTiny: gen(32, func() (int, int, int) { // fits L1
			return 8 + rng.Intn(24), 8 + rng.Intn(24), 8 + rng.Intn(24)
		}),
		engine.TierSmall: gen(16, func() (int, int, int) { // cache-resident
			return 96 + rng.Intn(64), 96 + rng.Intn(64), 96 + rng.Intn(64)
		}),
		engine.TierLarge: gen(4, func() (int, int, int) { // beyond model LLC
			return large, large, large
		}),
	}
}

// clientTier maps a client index onto its stream's size class. Per eight
// clients: five interactive tiny streams (activations-×-weights requests),
// two cache-resident mid-size streams, one full-machine batch stream —
// the multi-tenant serving mix of §4.3.
func clientTier(cl int) engine.Tier {
	switch cl % 8 {
	case 5, 6:
		return engine.TierSmall
	case 7:
		return engine.TierLarge
	default:
		return engine.TierTiny
	}
}

// ServeClientMix describes clientTier's pattern, for reports.
const ServeClientMix = "per 8 clients: 5 tiny, 2 small, 1 large"

// tinyThink is the closed-loop think time of interactive tiny streams.
// Without a gap a tiny client is a pure spin loop, and on a small host the
// five spinners starve the compute tiers of CPU; 100µs models a caller that
// does some work between requests while still offering thousands of
// requests per second per stream.
const tinyThink = 100 * time.Microsecond

// percentileMicros returns the p-th percentile (0–100) of the samples in
// microseconds (nearest-rank on a sorted copy).
func percentileMicros(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	return float64(s[idx].Nanoseconds()) / 1e3
}

// maxLatSamples caps the retained per-client latency samples per tier; a
// fast tiny stream can complete millions of requests, and percentiles from
// the first 200k are representative enough not to hold them all.
const maxLatSamples = 200_000

// runServeSide drives the per-tier workload pools with `clients` concurrent
// closed-loop client streams for the given duration through run(),
// collecting per-tier request counts and latencies. Client cl serves the
// size class clientTier(cl) and walks its pool from offset cl, so the two
// serving modes see the same request streams regardless of relative speed.
func runServeSide(pools map[engine.Tier][]serveWorkItem, clients int, dur time.Duration,
	run func(it *serveWorkItem, c *matrix.Matrix[float32]) error) (map[engine.Tier]*tierSamples, time.Duration, error) {
	agg := make(map[engine.Tier]*tierSamples, 3)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	deadline := start.Add(dur)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			items := pools[clientTier(cl)]
			c := matrix.New[float32](512, 512) // reused output, resized by view
			local := &tierSamples{}
			for i := cl; time.Now().Before(deadline); i++ {
				it := &items[i%len(items)]
				cv := c.View(0, 0, it.m, it.n)
				cv.Zero()
				t0 := time.Now()
				if err := run(it, cv); err != nil {
					errCh <- err
					return
				}
				if len(local.lat) < maxLatSamples {
					local.lat = append(local.lat, time.Since(t0))
				}
				local.n++
				local.flops += matrix.GemmFlops(it.m, it.n, it.k)
				if it.tier == engine.TierTiny {
					time.Sleep(tinyThink)
				}
			}
			mu.Lock()
			tier := clientTier(cl)
			dst := agg[tier]
			if dst == nil {
				agg[tier] = local
			} else {
				dst.lat = append(dst.lat, local.lat...)
				dst.n += local.n
				dst.flops += local.flops
			}
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, 0, err
	}
	return agg, elapsed, nil
}

// tierSamples accumulates one tier's request count, latencies, and work
// volume. n counts every completed request; lat is capped.
type tierSamples struct {
	lat   []time.Duration
	n     int
	flops float64
}

// ServeBench measures serving throughput: engine vs serialized baseline on
// identical mixed-size client streams, plus the tiny-tier dispatch A/B.
func ServeBench(cores, clients int, dur time.Duration, quick bool) (*ServeBenchResult, error) {
	if clients < 1 {
		clients = 8
	}
	pl := servePlatform(cores)
	eng, err := engine.NewEngine(engine.Options{Platform: pl, Name: "serve-bench", LargePanelSlots: 8})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	pools := serveWorkload(eng)

	// Serialized baseline: the pre-engine concurrency answer — one full-CAKE
	// executor planned for a large shape, a mutex serializing every caller.
	baseCfg, err := core.Plan(pl, 384, 384, 384, 4)
	if err != nil {
		return nil, err
	}
	baseExec, err := core.NewExecutor[float32](baseCfg, nil)
	if err != nil {
		return nil, err
	}
	defer baseExec.Close()
	var baseMu sync.Mutex

	engAgg, engElapsed, err := runServeSide(pools, clients, dur,
		func(it *serveWorkItem, c *matrix.Matrix[float32]) error {
			_, err := engine.Gemm(eng, c, it.a, it.b)
			return err
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: serve engine side: %w", err)
	}
	serAgg, serElapsed, err := runServeSide(pools, clients, dur,
		func(it *serveWorkItem, c *matrix.Matrix[float32]) error {
			baseMu.Lock()
			defer baseMu.Unlock()
			_, err := baseExec.Gemm(c, it.a, it.b)
			return err
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: serve serialized side: %w", err)
	}

	res := &ServeBenchResult{
		Envelope:     NewEnvelope("serve"),
		Cores:        cores,
		Clients:      clients,
		ClientMix:    ServeClientMix,
		DurationSecs: dur.Seconds(),
	}
	var engTotal, serTotal int
	var engFlops, serFlops float64
	for _, side := range []struct {
		mode    string
		agg     map[engine.Tier]*tierSamples
		elapsed time.Duration
	}{{"engine", engAgg, engElapsed}, {"serialized", serAgg, serElapsed}} {
		for _, tier := range []engine.Tier{engine.TierTiny, engine.TierSmall, engine.TierLarge} {
			ts := side.agg[tier]
			if ts == nil || ts.n == 0 {
				continue
			}
			res.Tiers = append(res.Tiers, ServeTierRow{
				Mode:        side.mode,
				Tier:        tier.String(),
				Requests:    ts.n,
				GemmsPerSec: float64(ts.n) / side.elapsed.Seconds(),
				P50Micros:   percentileMicros(ts.lat, 50),
				P95Micros:   percentileMicros(ts.lat, 95),
				P99Micros:   percentileMicros(ts.lat, 99),
				GFLOPS:      ts.flops / 1e9 / side.elapsed.Seconds(),
			})
			if side.mode == "engine" {
				engTotal += ts.n
				engFlops += ts.flops
			} else {
				serTotal += ts.n
				serFlops += ts.flops
			}
		}
	}
	res.EngineGemmsPer = float64(engTotal) / engElapsed.Seconds()
	res.EngineGFLOPS = engFlops / 1e9 / engElapsed.Seconds()
	res.SerializedGemms = float64(serTotal) / serElapsed.Seconds()
	res.SerializedGFLOPS = serFlops / 1e9 / serElapsed.Seconds()
	if res.SerializedGemms > 0 {
		res.Speedup = res.EngineGemmsPer / res.SerializedGemms
	}

	abReps := 20
	if quick {
		abReps = 5
	}
	res.TinyDirectP50Micros, res.TinyCakeP50Micros, err = tinyDispatchAB(pools[engine.TierTiny], baseCfg, abReps)
	if err != nil {
		return nil, err
	}

	st := eng.Counters()
	res.LeaseNew, res.LeaseReused, res.QueuedTotal = st.LeaseNew, st.LeaseReused, st.QueuedTotal
	return res, nil
}

// tinyDispatchAB times the same tiny GEMMs down both dispatch paths — the
// engine's direct microkernel path and a full-CAKE executor — sequentially
// on one goroutine, isolating dispatch overhead from contention.
func tinyDispatchAB(tiny []serveWorkItem, cakeCfg core.Config, reps int) (directP50, cakeP50 float64, err error) {
	if len(tiny) == 0 {
		return 0, 0, nil
	}
	d := engine.NewDirectScratch[float32](8, 8)
	ex, err := core.NewExecutor[float32](cakeCfg, nil)
	if err != nil {
		return 0, 0, err
	}
	defer ex.Close()
	var directLat, cakeLat []time.Duration
	for r := 0; r < reps; r++ {
		for i := range tiny {
			it := &tiny[i]
			c := matrix.New[float32](it.m, it.n)
			t0 := time.Now()
			if _, err := d.GemmScaled(c, it.a, it.b, false, false, 1, 1); err != nil {
				return 0, 0, err
			}
			directLat = append(directLat, time.Since(t0))
			c.Zero()
			t0 = time.Now()
			if _, err := ex.Gemm(c, it.a, it.b); err != nil {
				return 0, 0, err
			}
			cakeLat = append(cakeLat, time.Since(t0))
		}
	}
	return percentileMicros(directLat, 50), percentileMicros(cakeLat, 50), nil
}
