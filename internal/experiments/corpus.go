package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"
	"unsafe"

	"repro/internal/engine"
	"repro/internal/matrix"
)

// The performance-trajectory corpus: a declarative shape × scenario × dtype
// grid run under one schema-versioned envelope, emitted as BENCH_corpus.json
// and appended as an epoch to the append-only history store
// (results/corpus/NNNN-<rev>.json). GEMMbench (PAPERS.md) argues GEMM
// performance claims are only meaningful as a reproducible corpus over such
// a grid; the trend analyzer in internal/benchgate reads the epoch sequence
// this package writes.

// CorpusProtocol documents the worst-of-N noise discipline every epoch
// records in its metadata: scheduler and thermal noise on shared machines is
// one-sided (it only slows runs down), so the committed per-cell GFLOP/s is
// the MINIMUM across N runs — a capability floor any healthy future run can
// beat — while best/median/CoV across the same runs are kept as the cell's
// noise statistics for the trend analyzer's bands.
const CorpusProtocol = "worst-of-N: gflops is the minimum across runs (one-sided noise floor); best/median/cov across runs recorded per cell"

// CorpusCell is one grid point's measurement.
type CorpusCell struct {
	Shape    string `json:"shape"`    // tiny | small | large | skewed | tall-skinny
	Scenario string `json:"scenario"` // fresh | resident | serve
	Dtype    string `json:"dtype"`    // f32 | f64
	M        int    `json:"m"`
	K        int    `json:"k"`
	N        int    `json:"n"`
	Tier     string `json:"tier"`              // engine dispatch tier for the shape
	Workers  int    `json:"workers,omitempty"` // serve scenario: concurrent streams
	Batch    int    `json:"batch,omitempty"`   // batch scenario: GEMMs per GemmBatch
	Reps     int    `json:"reps"`              // GEMMs per run
	Runs     int    `json:"runs"`              // runs in the worst-of-N protocol

	GFLOPS       float64 `json:"gflops"` // worst of runs (the committed value)
	BestGFLOPS   float64 `json:"best_gflops"`
	MedianGFLOPS float64 `json:"median_gflops"`
	CoV          float64 `json:"cov"`           // across-runs coefficient of variation
	GemmsPerSec  float64 `json:"gemms_per_sec"` // from the worst run
}

// Key identifies the cell across epochs: shape/scenario/dtype.
func (c CorpusCell) Key() string { return c.Shape + "/" + c.Scenario + "/" + c.Dtype }

// CorpusEpoch is one full grid run: the unified envelope (schema version,
// host fingerprint, git rev) plus every cell and the noise-protocol record.
// Seq is 0 until the history store assigns it on Append.
type CorpusEpoch struct {
	Envelope
	Seq      int          `json:"seq"`
	Grid     string       `json:"grid"` // full | micro
	Quick    bool         `json:"quick"`
	Protocol string       `json:"protocol"`
	Cells    []CorpusCell `json:"cells"`
	// Profiles lists pprof files captured next to this epoch (paths relative
	// to the epoch's profile directory in the store), when profiling was on.
	Profiles []string `json:"profiles,omitempty"`
}

// CellByKey returns the epoch's cell for a key, if present.
func (e *CorpusEpoch) CellByKey(key string) (CorpusCell, bool) {
	for _, c := range e.Cells {
		if c.Key() == key {
			return c, true
		}
	}
	return CorpusCell{}, false
}

// CorpusOptions configures a corpus run.
type CorpusOptions struct {
	Cores int
	Runs  int    // worst-of-N runs per cell (default 3)
	Grid  string // "full" (default) or "micro" — the 2-cell CI smoke grid
	Quick bool
	// ProfileDir, when set, captures a CPU and a heap pprof profile per
	// scenario into that directory (cpu-<scenario>.pprof, heap-<scenario>.pprof).
	ProfileDir string
}

// corpusShape is one declarative shape class of the grid.
type corpusShape struct {
	name    string
	m, k, n int
	reps    int // per-run GEMM count, tuned so every run is a few tens of ms
}

// corpusShapes returns the grid's shape axis. Sizes are classified against
// the fixed serve-bench platform model (servePlatform), so the tier a shape
// lands in is host-independent and the cell keys stay stable across machines.
func corpusShapes(quick bool) []corpusShape {
	shapes := []corpusShape{
		{"tiny", 8, 24, 24, 600},          // direct-microkernel tier
		{"small", 8, 320, 320, 60},        // cache-resident single-block tier
		{"large", 256, 256, 256, 4},       // full pipelined CAKE
		{"skewed", 32, 1024, 512, 3},      // §5.2.1 pack-heavy small-M class
		{"tall-skinny", 1024, 64, 32, 40}, // tall A panel, narrow output
	}
	if quick {
		shapes[1] = corpusShape{"small", 8, 192, 192, 40}
		shapes[2] = corpusShape{"large", 160, 160, 160, 4}
		shapes[3] = corpusShape{"skewed", 32, 512, 256, 4}
		shapes[4] = corpusShape{"tall-skinny", 512, 64, 32, 30}
	}
	return shapes
}

// corpusScenarios is the scenario axis crossed with every shape: fresh packs
// operands every call, resident serves B from pre-packed panels, serve
// drives the same GEMM from concurrent closed-loop streams through the
// engine's admission path. The batch scenario (one GemmBatch per timed unit,
// shared B packed once) is not crossed with the full shape axis — it runs
// only on the shapes batching targets (see corpusBatchCells).
var corpusScenarios = []string{"fresh", "resident", "serve"}

// corpusBatchCells is the batch scenario's own (shape index, batch size)
// axis: the tiny direct tier at batch 32 (the benchgate-floored class) and
// the small cache-resident tier at batch 8.
var corpusBatchCells = []struct {
	shapeIdx int
	batch    int
}{
	{0, 32}, // tiny
	{1, 8},  // small
}

// corpusDtypes is the dtype axis.
var corpusDtypes = []string{"f32", "f64"}

// corpusCellSpec is one expanded grid point before measurement.
type corpusCellSpec struct {
	shape    corpusShape
	scenario string
	dtype    string
	batch    int // batch scenario only: GEMMs per GemmBatch
}

// corpusGrid expands the named grid. "micro" is the 4-cell CI smoke grid
// (tiny/fresh/f32, small/resident/f32, tiny/batch/f32, small/batch/f32);
// "full" is the complete scenario×shape×dtype cross product plus the batch
// cells from corpusBatchCells.
func corpusGrid(name string, quick bool) ([]corpusCellSpec, error) {
	shapes := corpusShapes(quick)
	switch name {
	case "", "full":
		var out []corpusCellSpec
		for _, sc := range corpusScenarios {
			for _, sh := range shapes {
				for _, dt := range corpusDtypes {
					out = append(out, corpusCellSpec{shape: sh, scenario: sc, dtype: dt})
				}
			}
		}
		for _, bc := range corpusBatchCells {
			for _, dt := range corpusDtypes {
				out = append(out, corpusCellSpec{shape: shapes[bc.shapeIdx], scenario: "batch", dtype: dt, batch: bc.batch})
			}
		}
		return out, nil
	case "micro":
		return []corpusCellSpec{
			{shape: shapes[0], scenario: "fresh", dtype: "f32"},
			{shape: shapes[1], scenario: "resident", dtype: "f32"},
			{shape: shapes[0], scenario: "batch", dtype: "f32", batch: corpusBatchCells[0].batch},
			{shape: shapes[1], scenario: "batch", dtype: "f32", batch: corpusBatchCells[1].batch},
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown corpus grid %q (full|micro)", name)
	}
}

// RunCorpus measures the grid and returns the epoch (Seq unassigned). The
// engine uses the fixed serve-bench platform model so tier dispatch — and
// therefore what each cell measures — is identical on every host; only the
// measured throughput follows the machine.
func RunCorpus(opt CorpusOptions) (*CorpusEpoch, error) {
	if opt.Cores < 1 {
		opt.Cores = runtime.GOMAXPROCS(0)
	}
	if opt.Runs < 1 {
		opt.Runs = 3
	}
	grid, err := corpusGrid(opt.Grid, opt.Quick)
	if err != nil {
		return nil, err
	}
	gridName := opt.Grid
	if gridName == "" {
		gridName = "full"
	}
	e, err := engine.NewEngine(engine.Options{Platform: servePlatform(opt.Cores), Name: "corpus"})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	epoch := &CorpusEpoch{
		Envelope: NewEnvelope("corpus"),
		Grid:     gridName,
		Quick:    opt.Quick,
		Protocol: CorpusProtocol,
	}
	rng := rand.New(rand.NewSource(23))

	// Group by scenario so the optional pprof capture brackets one scenario's
	// cells per profile file.
	byScenario := map[string][]corpusCellSpec{}
	var order []string
	for _, spec := range grid {
		if _, seen := byScenario[spec.scenario]; !seen {
			order = append(order, spec.scenario)
		}
		byScenario[spec.scenario] = append(byScenario[spec.scenario], spec)
	}
	for _, scenario := range order {
		profs, err := startScenarioProfiles(opt.ProfileDir, scenario)
		if err != nil {
			return nil, err
		}
		for _, spec := range byScenario[scenario] {
			var cell CorpusCell
			switch spec.dtype {
			case "f64":
				cell, err = corpusCell[float64](e, spec, opt.Runs, opt.Cores, rng)
			default:
				cell, err = corpusCell[float32](e, spec, opt.Runs, opt.Cores, rng)
			}
			if err != nil {
				profs.abort()
				return nil, fmt.Errorf("experiments: corpus cell %s/%s/%s: %w",
					spec.shape.name, spec.scenario, spec.dtype, err)
			}
			epoch.Cells = append(epoch.Cells, cell)
		}
		files, err := profs.finish()
		if err != nil {
			return nil, err
		}
		epoch.Profiles = append(epoch.Profiles, files...)
	}
	return epoch, nil
}

// corpusCell measures one grid point under the worst-of-N protocol.
func corpusCell[T matrix.Scalar](e *engine.Engine, spec corpusCellSpec, runs, cores int, rng *rand.Rand) (CorpusCell, error) {
	sh := spec.shape
	var zero T
	elem := int(unsafe.Sizeof(zero))
	cell := CorpusCell{
		Shape: sh.name, Scenario: spec.scenario, Dtype: spec.dtype,
		M: sh.m, K: sh.k, N: sh.n,
		Tier: e.TierFor(sh.m, sh.k, sh.n, elem).String(),
		Reps: sh.reps, Runs: runs,
	}
	a := matrix.New[T](sh.m, sh.k)
	b := matrix.New[T](sh.k, sh.n)
	a.Randomize(rng)
	b.Randomize(rng)
	flops := matrix.GemmFlops(sh.m, sh.n, sh.k)

	var do func() error // one timed unit; gemms() GEMMs per unit
	gemms := sh.reps
	switch spec.scenario {
	case "fresh":
		c := matrix.New[T](sh.m, sh.n)
		do = func() error {
			for i := 0; i < sh.reps; i++ {
				if _, err := engine.Gemm(e, c, a, b); err != nil {
					return err
				}
			}
			return nil
		}
	case "resident":
		id := fmt.Sprintf("corpus-%s", cell.Key())
		if err := engine.RegisterB(e, id, b); err != nil {
			return cell, err
		}
		defer e.ReleaseB(id)
		c := matrix.New[T](sh.m, sh.n)
		do = func() error {
			for i := 0; i < sh.reps; i++ {
				if _, err := engine.GemmResident(e, c, a, id); err != nil {
					return err
				}
			}
			return nil
		}
	case "batch":
		// One GemmBatch per group: distinct activations against one shared
		// weight matrix (the same *Matrix repeated, so the batch path packs
		// it once and serves every call from the packed panels).
		batch := spec.batch
		cell.Batch = batch
		groups := sh.reps / batch
		if groups < 1 {
			groups = 1
		}
		gemms = groups * batch
		cell.Reps = gemms
		as := make([]*matrix.Matrix[T], batch)
		bs := make([]*matrix.Matrix[T], batch)
		cs := make([]*matrix.Matrix[T], batch)
		for i := range as {
			as[i] = matrix.New[T](sh.m, sh.k)
			as[i].Randomize(rng)
			bs[i] = b
			cs[i] = matrix.New[T](sh.m, sh.n)
		}
		do = func() error {
			for g := 0; g < groups; g++ {
				if _, err := engine.GemmBatch(e, cs, as, bs); err != nil {
					return err
				}
			}
			return nil
		}
	case "serve":
		workers := cores
		if workers < 2 {
			workers = 2
		}
		if workers > 4 {
			workers = 4
		}
		cell.Workers = workers
		gemms = sh.reps * workers
		outs := make([]*matrix.Matrix[T], workers)
		for i := range outs {
			outs[i] = matrix.New[T](sh.m, sh.n)
		}
		do = func() error {
			errCh := make(chan error, workers)
			for wk := 0; wk < workers; wk++ {
				go func(c *matrix.Matrix[T]) {
					for i := 0; i < sh.reps; i++ {
						if _, err := engine.GemmScaledFor(e, "corpus", c, a, b, false, false, 1, 0); err != nil {
							errCh <- err
							return
						}
					}
					errCh <- nil
				}(outs[wk])
			}
			for wk := 0; wk < workers; wk++ {
				if err := <-errCh; err != nil {
					return err
				}
			}
			return nil
		}
	default:
		return cell, fmt.Errorf("unknown scenario %q", spec.scenario)
	}

	if err := do(); err != nil { // warm operands, lease pools, resident panels
		return cell, err
	}
	samples := make([]float64, 0, runs)
	worstElapsed := time.Duration(0)
	for r := 0; r < runs; r++ {
		t0 := time.Now()
		if err := do(); err != nil {
			return cell, err
		}
		el := time.Since(t0)
		samples = append(samples, flops*float64(gemms)/float64(el.Nanoseconds()))
		if el > worstElapsed {
			worstElapsed = el
		}
	}
	cell.GFLOPS = minF(samples)
	cell.BestGFLOPS = maxF(samples)
	cell.MedianGFLOPS = medianF(samples)
	cell.CoV = covF(samples)
	if worstElapsed > 0 {
		cell.GemmsPerSec = float64(gemms) / worstElapsed.Seconds()
	}
	return cell, nil
}

// scenarioProfiles brackets one scenario's cells with pprof capture.
type scenarioProfiles struct {
	cpuFile  *os.File
	heapPath string
	names    []string
}

// startScenarioProfiles begins CPU profiling for a scenario when dir is
// non-empty; finish stops it and snapshots the heap.
func startScenarioProfiles(dir, scenario string) (*scenarioProfiles, error) {
	if dir == "" {
		return &scenarioProfiles{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpuName := "cpu-" + scenario + ".pprof"
	f, err := os.Create(filepath.Join(dir, cpuName))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: corpus cpu profile: %w", err)
	}
	return &scenarioProfiles{
		cpuFile:  f,
		heapPath: filepath.Join(dir, "heap-"+scenario+".pprof"),
		names:    []string{cpuName, "heap-" + scenario + ".pprof"},
	}, nil
}

// finish stops the CPU profile and writes the heap snapshot, returning the
// captured file names (relative to the profile dir).
func (p *scenarioProfiles) finish() ([]string, error) {
	if p.cpuFile == nil {
		return nil, nil
	}
	pprof.StopCPUProfile()
	if err := p.cpuFile.Close(); err != nil {
		return nil, err
	}
	p.cpuFile = nil
	hf, err := os.Create(p.heapPath)
	if err != nil {
		return nil, err
	}
	runtime.GC() // settle the heap so inuse numbers are comparable across epochs
	werr := pprof.Lookup("heap").WriteTo(hf, 0)
	if cerr := hf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, werr
	}
	return p.names, nil
}

// abort stops an in-flight CPU profile on the error path.
func (p *scenarioProfiles) abort() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

func minF(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxF(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func medianF(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// covF is the coefficient of variation (population stddev over mean).
func covF(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(vals))) / mean
}
