package experiments

import (
	"fmt"

	"repro/internal/cbtheory"
	"repro/internal/platform"
)

// Table2 renders the evaluated-platform table (paper Table 2) from the
// platform models.
func Table2() [][]string {
	rows := [][]string{{"CPU", "L1", "L2", "LLC", "DRAM", "Cores", "DRAM Bandwidth"}}
	for _, pl := range platform.All() {
		l2 := "N/A"
		if pl.L2Bytes > 0 {
			l2 = fmt.Sprintf("%d KiB", pl.L2Bytes>>10)
		}
		llc := fmt.Sprintf("%d MiB", pl.LLCBytes>>20)
		if pl.LLCBytes < 1<<20 {
			llc = fmt.Sprintf("%d KiB", pl.LLCBytes>>10)
		}
		if !pl.HasL3 {
			// The A53 has no L3; Table 2 lists its shared L2 in the L2
			// column and N/A for L3-like storage beyond it.
			l2, llc = llc, "N/A"
		}
		rows = append(rows, []string{
			pl.Name,
			fmt.Sprintf("%d KiB", pl.L1Bytes>>10),
			l2,
			llc,
			fmt.Sprintf("%d GB", pl.DRAMBytes>>30),
			fmt.Sprintf("%d", pl.Cores),
			fmt.Sprintf("%.0f GB/s", pl.DRAMBW/1e9),
		})
	}
	return rows
}

// Fig4 demonstrates the constant-bandwidth property: CB blocks scaled for
// p = 1, 2, 4, ... cores (Figure 4's (a), (b), (c) and beyond) keep the
// same external bandwidth while arithmetic intensity and computation
// throughput grow.
func Fig4() *Result {
	const k = 16 // tile-unit block depth
	r := &Result{
		ID:     "fig4",
		Title:  "CB blocks: constant bandwidth as compute scales",
		XLabel: "p (core-count scale factor)",
		YLabel: "tiles/unit-time (BW, CT) and MACs/element (AI)",
	}
	bw := Series{Name: "external BW"}
	ct := Series{Name: "compute throughput"}
	ai := Series{Name: "arithmetic intensity"}
	for _, p := range []int{1, 2, 4, 8, 16} {
		s := cbtheory.Shape{P: p, MC: k, KC: k, Alpha: 1}
		t := float64(s.NDim()) // N-dimension compute: T = αpk unit times
		x := float64(p)
		bw.X = append(bw.X, x)
		bw.Y = append(bw.Y, s.ExternalIOElems()/t)
		ct.X = append(ct.X, x)
		ct.Y = append(ct.Y, float64(s.MDim())*float64(s.KDim())*float64(s.NDim())/t)
		ai.X = append(ai.X, x)
		ai.Y = append(ai.Y, s.AI())
	}
	r.Series = []Series{bw, ct, ai}
	return r
}

// Fig9 computes the speedup curves of Figure 9: throughput speedup t_p/t_1
// for square matrices, CAKE vs the platform's vendor-library proxy.
func Fig9(pl *platform.Platform, sizes []int) (*Result, error) {
	r := &Result{
		ID:     "fig9",
		Title:  fmt.Sprintf("Speedup for square matrices, CAKE vs %s on %s", BaselineName(pl), pl.Name),
		XLabel: "cores",
		YLabel: "speedup (t_p / t_1)",
	}
	for _, size := range sizes {
		cake := Series{Name: fmt.Sprintf("%d (cake)", size)}
		base := Series{Name: fmt.Sprintf("%d (%s)", size, shortBaseline(pl))}
		var cake1, base1 float64
		for p := 1; p <= pl.Cores; p++ {
			cm, _, err := SimCake(pl, p, size, size, size)
			if err != nil {
				return nil, err
			}
			gm, _, err := SimGoto(pl, p, size, size, size)
			if err != nil {
				return nil, err
			}
			cg := cm.ThroughputGFLOPS(pl.ClockHz)
			gg := gm.ThroughputGFLOPS(pl.ClockHz)
			if p == 1 {
				cake1, base1 = cg, gg
			}
			cake.X = append(cake.X, float64(p))
			cake.Y = append(cake.Y, cg/cake1)
			base.X = append(base.X, float64(p))
			base.Y = append(base.Y, gg/base1)
		}
		r.Series = append(r.Series, base, cake)
	}
	return r, nil
}

func shortBaseline(pl *platform.Platform) string {
	switch BaselineName(pl)[0] {
	case 'M':
		return "mkl"
	case 'O':
		return "openblas"
	default:
		return "armpl"
	}
}

// TrioSizes holds the per-platform problem sizes of Figures 10–12. The
// paper uses 23040³ on the desktops and 3000³ on the ARM; Size scales down
// for quick runs while preserving every curve's shape.
type TrioSizes struct {
	Size     int // square problem dimension
	ExtrapTo int // extrapolated core count (dotted lines)
}

// PaperTrioSizes returns the evaluation sizes the paper uses for a platform.
func PaperTrioSizes(pl *platform.Platform) TrioSizes {
	if pl.Cores <= 4 { // ARM A53
		return TrioSizes{Size: 3000, ExtrapTo: 8}
	}
	return TrioSizes{Size: 23040, ExtrapTo: 2 * pl.Cores}
}

// FigTrio regenerates one platform's evaluation trio (Figures 10, 11, 12):
// (a) average DRAM bandwidth vs cores with the CAKE-optimal dashed curve,
// (b) computation throughput vs cores with last-two-point extrapolations,
// (c) internal (LLC↔core) bandwidth vs cores with linear extrapolation.
func FigTrio(pl *platform.Platform, id string, ts TrioSizes) (bw, tp, internal *Result, err error) {
	s := ts.Size
	cakeBW := Series{Name: "CAKE Observed"}
	gotoBW := Series{Name: BaselineName(pl) + " Observed"}
	optBW := Series{Name: "CAKE Optimal"}
	cakeTP := Series{Name: "CAKE Observed"}
	gotoTP := Series{Name: BaselineName(pl) + " Observed"}

	rates := cbtheory.Rates{ClockHz: pl.ClockHz, FlopsPerCycle: pl.FlopsPerCycle, ElemBytes: elemBytes}
	for p := 1; p <= pl.Cores; p++ {
		cm, ccfg, err := SimCake(pl, p, s, s, s)
		if err != nil {
			return nil, nil, nil, err
		}
		gm, _, err := SimGoto(pl, p, s, s, s)
		if err != nil {
			return nil, nil, nil, err
		}
		x := float64(p)
		cakeBW.X, cakeBW.Y = append(cakeBW.X, x), append(cakeBW.Y, cm.AvgDRAMBW(pl.ClockHz)/1e9)
		gotoBW.X, gotoBW.Y = append(gotoBW.X, x), append(gotoBW.Y, gm.AvgDRAMBW(pl.ClockHz)/1e9)
		optBW.X = append(optBW.X, x)
		optBW.Y = append(optBW.Y, cbtheory.CakeOptimalDRAMBW(rates, ccfg.Alpha, ccfg.MR, ccfg.NR, ccfg.KC)/1e9)
		cakeTP.X, cakeTP.Y = append(cakeTP.X, x), append(cakeTP.Y, cm.ThroughputGFLOPS(pl.ClockHz))
		gotoTP.X, gotoTP.Y = append(gotoTP.X, x), append(gotoTP.Y, gm.ThroughputGFLOPS(pl.ClockHz))
	}

	bw = &Result{
		ID: id + "a", Title: fmt.Sprintf("DRAM bandwidth, CAKE vs %s on %s (%d³)", BaselineName(pl), pl.Name, s),
		XLabel: "cores", YLabel: "Avg DRAM BW (GB/s)",
		Series: []Series{gotoBW, cakeBW, optBW},
	}

	// Extrapolations: the paper extends both libraries' throughput with the
	// slope of the last two observed points, assuming internal bandwidth
	// keeps scaling and DRAM bandwidth stays fixed. GOTO's line additionally
	// caps where fixed DRAM bandwidth saturates.
	xs := make([]float64, ts.ExtrapTo)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	cakeExt := Series{Name: "CAKE extrapolated", X: xs, Y: platform.Extrapolate(cakeTP.Y, ts.ExtrapTo)}
	gotoExtY := platform.Extrapolate(gotoTP.Y, ts.ExtrapTo)
	if cap := gotoDRAMCap(pl, gotoTP, gotoBW); cap > 0 {
		for i := range gotoExtY {
			if gotoExtY[i] > cap {
				gotoExtY[i] = cap
			}
		}
	}
	gotoExt := Series{Name: BaselineName(pl) + " extrapolated", X: xs, Y: gotoExtY}
	tp = &Result{
		ID: id + "b", Title: fmt.Sprintf("Computation throughput, CAKE vs %s on %s (%d³)", BaselineName(pl), pl.Name, s),
		XLabel: "cores", YLabel: "Throughput (GFLOP/s)",
		Series: []Series{gotoExt, cakeExt, gotoTP, cakeTP},
	}

	intObs := Series{Name: pl.Name + " measured (pmbw model)"}
	for p := 1; p <= pl.Cores; p++ {
		intObs.X = append(intObs.X, float64(p))
		intObs.Y = append(intObs.Y, pl.Internal.At(p)/1e9)
	}
	intExt := Series{Name: "extrapolated", X: xs, Y: platform.Extrapolate(intObs.Y, ts.ExtrapTo)}
	internal = &Result{
		ID: id + "c", Title: fmt.Sprintf("Internal bandwidth on %s", pl.Name),
		XLabel: "cores", YLabel: "Bandwidth (GB/s)",
		Series: []Series{intObs, intExt},
	}
	return bw, tp, internal, nil
}

// gotoDRAMCap estimates the throughput where GOTO exhausts the platform's
// fixed DRAM bandwidth: observed GFLOP/s per GB/s of observed DRAM traffic,
// times the available bandwidth.
func gotoDRAMCap(pl *platform.Platform, tp, bw Series) float64 {
	n := len(tp.Y)
	if n == 0 || bw.Y[n-1] <= 0 {
		return 0
	}
	perGB := tp.Y[n-1] / bw.Y[n-1]
	return perGB * pl.DRAMBW / 1e9
}
