// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from this repository's own substrates: the CAKE
// and GOTO planners, the architecture simulator, the LRU cache hierarchy,
// and the platform models. Each FigNN function returns structured results;
// cmd/cake-bench renders them as the rows/series the paper plots, and
// EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/gotoalg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Series is one plotted line: Y(X).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is one figure panel: a set of series over a common axis.
type Result struct {
	ID     string // e.g. "fig10a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the panel as an aligned text table (one column per series).
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i := 0; i < r.axisLen(); i++ {
		row := make([]string, 0, len(r.Series)+1)
		row = append(row, formatNum(r.axisAt(i)))
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, formatNum(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintf(w, "    (y: %s)\n\n", r.YLabel)
}

// CSV writes the panel as comma-separated values with a header row.
func (r *Result) CSV(w io.Writer) {
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for i := 0; i < r.axisLen(); i++ {
		row := []string{fmt.Sprintf("%g", r.axisAt(i))}
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// axisLen returns the longest series length (series may differ when some
// lines are extrapolated further than others, as in Figures 10b–12b).
func (r *Result) axisLen() int {
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	return n
}

func (r *Result) axisAt(i int) float64 {
	for _, s := range r.Series {
		if i < len(s.X) {
			return s.X[i]
		}
	}
	return 0
}

func formatNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// BaselineName returns the vendor library the paper compares against on a
// platform; our simulated baseline runs the GOTO algorithm those libraries
// implement (Section 4.1).
func BaselineName(pl *platform.Platform) string {
	switch {
	case strings.Contains(pl.Name, "Intel"):
		return "MKL (GOTO proxy)"
	case strings.Contains(pl.Name, "AMD"):
		return "OpenBLAS (GOTO proxy)"
	default:
		return "ARMPL (GOTO proxy)"
	}
}

const elemBytes = 4 // the paper evaluates single-precision GEMM

// atCores returns a copy of the platform restricted to p cores, which is
// how the evaluation sweeps "number of cores" on a fixed machine.
func atCores(pl *platform.Platform, p int) *platform.Platform {
	pp := *pl
	pp.Cores = p
	return &pp
}

// SimCake plans and simulates a CAKE GEMM of m×k×n on p cores of pl.
func SimCake(pl *platform.Platform, p, m, k, n int) (sim.Metrics, core.Config, error) {
	cfg, err := core.Plan(atCores(pl, p), m, k, n, elemBytes)
	if err != nil {
		return sim.Metrics{}, core.Config{}, err
	}
	w := sim.CakeWorkload{
		P: p, MC: cfg.MC, KC: cfg.KC, Alpha: cfg.Alpha,
		MR: cfg.MR, NR: cfg.NR, ElemBytes: elemBytes,
	}
	ops, err := sim.CakeOps(w, m, k, n)
	if err != nil {
		return sim.Metrics{}, core.Config{}, err
	}
	met, err := sim.Run(sim.FromPlatform(pl, p), ops)
	return met, cfg, err
}

// SimGoto plans and simulates the GOTO baseline on p cores of pl.
func SimGoto(pl *platform.Platform, p, m, k, n int) (sim.Metrics, gotoalg.Config, error) {
	cfg, err := gotoalg.Plan(atCores(pl, p), elemBytes)
	if err != nil {
		return sim.Metrics{}, gotoalg.Config{}, err
	}
	w := sim.GotoWorkload{
		P: p, MC: cfg.MC, KC: cfg.KC, NC: cfg.NC,
		MR: cfg.MR, NR: cfg.NR, ElemBytes: elemBytes,
	}
	ops, err := sim.GotoOps(w, m, k, n)
	if err != nil {
		return sim.Metrics{}, gotoalg.Config{}, err
	}
	met, err := sim.Run(sim.FromPlatform(pl, p), ops)
	return met, cfg, err
}
