package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
)

// GemmBenchRow is one (shape, executor mode) measurement from the real-GEMM
// executor comparison: wall-clock throughput plus the packing / panel-reuse
// accounting that explains it.
type GemmBenchRow struct {
	Shape         string  `json:"shape"`
	Mode          string  `json:"mode"` // sync | pipelined | pipelined+cache
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	GFLOPS        float64 `json:"gflops"`
	PackShare     float64 `json:"pack_share"`
	PackedAElems  int64   `json:"packed_a_elems"`
	PackedBElems  int64   `json:"packed_b_elems"`
	ReusedAElems  int64   `json:"reused_a_elems"`
	ReusedBElems  int64   `json:"reused_b_elems"`
	OverlapNanos  int64   `json:"overlap_nanos"`
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

// gemmBenchCase is one shape class with the CB geometry used to run it.
type gemmBenchCase struct {
	name    string
	m, k, n int
	cfg     core.Config
}

func gemmBenchCases(cores int, quick bool) []gemmBenchCase {
	square := gemmBenchCase{
		name: "square", m: 384, k: 384, n: 384,
		cfg: core.Config{Cores: cores, MC: 64, KC: 128, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto},
	}
	// The Fig. 11 / Section 5.2.1 skewed class: M far smaller than K and N,
	// so packing is a large share of the work and the K-first schedule
	// revisits the small set of A panels on every N step.
	skewed := gemmBenchCase{
		name: "skewed-small-M", m: 32, k: 1024, n: 512,
		cfg: core.Config{Cores: cores, MC: 8, KC: 512, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto},
	}
	if quick {
		square.m, square.k, square.n = 192, 192, 192
		skewed.m, skewed.k, skewed.n = 32, 512, 256
		skewed.cfg.KC = 256
	}
	return []gemmBenchCase{square, skewed}
}

// GemmBench compares the synchronous executor against the pipelined one
// (with and without a panel cache) on real host GEMMs, one row per
// (shape, mode). reps wall-clock runs are taken per row and the best kept.
func GemmBench(cores int, quick bool) ([]GemmBenchRow, error) {
	reps := 3
	if quick {
		reps = 2
	}
	modes := []struct {
		name string
		opts []core.Option
	}{
		{"sync", []core.Option{core.WithPipeline(false)}},
		{"pipelined", nil},
		{"pipelined+cache", []core.Option{core.WithPanelCache(16)}},
	}
	var out []GemmBenchRow
	for _, bc := range gemmBenchCases(cores, quick) {
		rng := rand.New(rand.NewSource(11))
		a := matrix.New[float32](bc.m, bc.k)
		b := matrix.New[float32](bc.k, bc.n)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float32](bc.m, bc.n)
		flops := matrix.GemmFlops(bc.m, bc.n, bc.k)

		syncIdx := len(out)
		for _, mode := range modes {
			e, err := core.NewExecutor[float32](bc.cfg, nil, mode.opts...)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", bc.name, mode.name, err)
			}
			var best time.Duration
			var st core.Stats
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				st, err = e.Gemm(c, a, b)
				el := time.Since(t0)
				if err != nil {
					e.Close()
					return nil, fmt.Errorf("experiments: %s/%s: %w", bc.name, mode.name, err)
				}
				if r == 0 || el < best {
					best = el
				}
			}
			e.Close()
			out = append(out, GemmBenchRow{
				Shape: bc.name, Mode: mode.name, M: bc.m, K: bc.k, N: bc.n,
				GFLOPS:       flops / float64(best.Nanoseconds()),
				PackShare:    st.PackShare(),
				PackedAElems: st.PackedAElems, PackedBElems: st.PackedBElems,
				ReusedAElems: st.ReusedAElems, ReusedBElems: st.ReusedBElems,
				OverlapNanos: st.OverlapNanos,
			})
		}
		syncG := out[syncIdx].GFLOPS
		for i := syncIdx; i < len(out); i++ {
			if syncG > 0 {
				out[i].SpeedupVsSync = out[i].GFLOPS / syncG
			}
		}
	}
	return out, nil
}
