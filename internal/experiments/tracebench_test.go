package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// TestTraceBenchAcceptance is the PR's acceptance check: CAKE and GOTO run
// the same skewed shape with tracing enabled, the exported trace must be
// valid Chrome Trace Event JSON with pack and compute spans on distinct
// worker lanes, and CAKE's bandwidth timeline must be flatter (lower
// coefficient of variation) than GOTO's — the empirical §3
// constant-bandwidth property. Scheduler noise can flip a single CoV
// comparison on a loaded machine, so the run retries a couple of times and
// fails only if GOTO never looks spikier.
func TestTraceBenchAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("trace bench runs full GEMMs")
	}
	const cores = 4
	var res *TraceBenchResult
	var err error
	covOK := false
	for attempt := 0; attempt < 3 && !covOK; attempt++ {
		res, err = TraceBench(cores, true)
		if err != nil {
			t.Fatalf("TraceBench: %v", err)
		}
		covOK = res.Cake.CoV < res.Goto.CoV
		if !covOK {
			t.Logf("attempt %d: cake CoV %.3f not below goto CoV %.3f, retrying",
				attempt, res.Cake.CoV, res.Goto.CoV)
		}
	}
	if !covOK {
		t.Errorf("CAKE bandwidth CoV %.3f never fell below GOTO's %.3f: constant-bandwidth property not visible",
			res.Cake.CoV, res.Goto.CoV)
	}
	t.Logf("cake: %.2f GB/s mean, %.2f peak, CoV %.3f over %d spans", res.Cake.MeanGBps, res.Cake.PeakGBps, res.Cake.CoV, res.Cake.Spans)
	t.Logf("goto: %.2f GB/s mean, %.2f peak, CoV %.3f over %d spans", res.Goto.MeanGBps, res.Goto.PeakGBps, res.Goto.CoV, res.Goto.Spans)

	if res.Cake.Spans == 0 || res.Goto.Spans == 0 {
		t.Fatalf("empty trace: cake %d spans, goto %d", res.Cake.Spans, res.Goto.Spans)
	}
	if res.Cake.Dropped != 0 || res.Goto.Dropped != 0 {
		t.Fatalf("dropped spans: cake %d, goto %d", res.Cake.Dropped, res.Goto.Dropped)
	}

	// Export exactly as cake-bench trace does and validate the JSON.
	var buf bytes.Buffer
	err = obs.WriteChromeTrace(&buf,
		obs.Process{Name: "cake", Rec: res.CakeRec},
		obs.Process{Name: "goto", Rec: res.GotoRec})
	if err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid Chrome Trace Event JSON: %v", err)
	}
	// Per process: pack and compute spans must exist and land on more than
	// one worker lane.
	for pid, name := range map[int]string{1: "cake", 2: "goto"} {
		packLanes := map[int]bool{}
		computeLanes := map[int]bool{}
		for _, ev := range trace.TraceEvents {
			if ev.Pid != pid || ev.Ph != "X" {
				continue
			}
			switch ev.Name {
			case "pack":
				packLanes[ev.Tid] = true
			case "compute":
				computeLanes[ev.Tid] = true
			}
		}
		if len(packLanes) == 0 || len(computeLanes) == 0 {
			t.Fatalf("%s: pack lanes %v, compute lanes %v", name, packLanes, computeLanes)
		}
		lanes := map[int]bool{}
		for l := range packLanes {
			lanes[l] = true
		}
		for l := range computeLanes {
			lanes[l] = true
		}
		if len(lanes) < 2 {
			t.Fatalf("%s: all spans on a single worker lane %v", name, lanes)
		}
	}

	// The serialisable result must round-trip: it is what cake-bench writes
	// to BENCH_bwtimeline.json.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	var back TraceBenchResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Cake.Executor != "cake" || len(back.Cake.GBperS) != len(res.Cake.GBperS) {
		t.Fatalf("round-trip lost data: %+v", back.Cake)
	}
}
