package gotoalg

import "repro/internal/obs"

// PredictTraffic returns the DRAM traffic the five-loop GOTO schedule
// implies for an M×K×N multiplication, using the same accounting the traced
// executor records: each (jc, pc) panel packs the kcEff×ncEff B panel and
// repacks all of A's rows at that depth (m·kcEff — A blocks are not reused
// across jc), and every pc step streams the full m×ncEff C slab to and from
// the output matrix (2·m·ncEff read-modify-write elements) — the partial-C
// round-trips of §4.1 that grow GOTO's compute-phase traffic where CAKE's
// stays at zero.
func (c Config) PredictTraffic(m, k, n, elemBytes int) obs.Traffic {
	eb := int64(elemBytes)
	var t obs.Traffic
	for jc := 0; jc < n; jc += c.NC {
		ncEff := min(c.NC, n-jc)
		for pc := 0; pc < k; pc += c.KC {
			kcEff := min(c.KC, k-pc)
			t.PackBytes += (int64(kcEff)*int64(ncEff) + int64(m)*int64(kcEff)) * eb
			t.ComputeBytes += 2 * int64(m) * int64(ncEff) * eb
		}
	}
	return t
}
