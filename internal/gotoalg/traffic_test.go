package gotoalg

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/obs"
)

// A traced GOTO run's measured traffic must meet PredictTraffic exactly —
// the prediction iterates the same (jc, pc) panel loop the executor runs.
func TestPredictTrafficMatchesTracedRun(t *testing.T) {
	for _, tc := range []struct{ m, k, n int }{
		{64, 128, 64},
		{50, 100, 70}, // ragged panels
	} {
		cfg := Config{Cores: 2, MC: 16, KC: 32, NC: 32, MR: 8, NR: 8}
		rec := obs.NewRecorder(cfg.Cores, 4096)
		e, err := NewExecutor[float32](cfg, nil, WithTrace(rec))
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(7))
		a := matrix.New[float32](tc.m, tc.k)
		b := matrix.New[float32](tc.k, tc.n)
		c := matrix.New[float32](tc.m, tc.n)
		a.Randomize(rng)
		b.Randomize(rng)
		if _, err := e.Gemm(c, a, b); err != nil {
			t.Fatal(err)
		}
		e.Close()
		if d := rec.Dropped(); d > 0 {
			t.Fatalf("recorder dropped %d spans; grow the ring", d)
		}

		pred := cfg.PredictTraffic(tc.m, tc.k, tc.n, 4)
		meas, avoided := obs.MeasuredTraffic(rec.Spans())
		if avoided != 0 {
			t.Errorf("%dx%dx%d: GOTO has no panel cache, avoided = %d", tc.m, tc.k, tc.n, avoided)
		}
		if meas != pred {
			t.Errorf("%dx%dx%d: measured %+v, predicted %+v", tc.m, tc.k, tc.n, meas, pred)
		}
		if pred.ComputeBytes == 0 {
			t.Errorf("%dx%dx%d: GOTO compute traffic predicted 0; partial-C streaming missing", tc.m, tc.k, tc.n)
		}
	}
}

func TestPredictTrafficGrowsWithPanelRevisits(t *testing.T) {
	// Halving NC doubles the number of jc panels, and with it the A repack
	// traffic and the partial-C streaming — the §4.1 cost CAKE avoids.
	wide := Config{Cores: 1, MC: 16, KC: 32, NC: 64, MR: 8, NR: 8}
	narrow := wide
	narrow.NC = 32
	tw := wide.PredictTraffic(64, 64, 64, 4)
	tn := narrow.PredictTraffic(64, 64, 64, 4)
	if tn.PackBytes <= tw.PackBytes {
		t.Fatalf("narrow NC pack %d not above wide NC pack %d", tn.PackBytes, tw.PackBytes)
	}
	if tn.ComputeBytes != tw.ComputeBytes {
		// Same k split: per-jc streaming halves in width but doubles in
		// count, so total partial-C traffic is unchanged here.
		t.Fatalf("compute traffic changed: %d vs %d", tn.ComputeBytes, tw.ComputeBytes)
	}
}
