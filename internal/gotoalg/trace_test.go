package gotoalg

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/obs"
)

func TestTraceGotoByteAccounting(t *testing.T) {
	const elem = 4 // float32
	cfg := Config{Cores: 2, MC: 16, KC: 16, NC: 32, MR: 8, NR: 8}
	rec := obs.NewRecorder(cfg.Cores, 0)

	rng := rand.New(rand.NewSource(31))
	m, k, n := 50, 40, 70 // ragged against every block dim
	a := matrix.New[float32](m, k)
	b := matrix.New[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](m, n)
	want := c.Clone()

	st, err := Gemm(c, a, b, cfg, WithTrace(rec))
	if err != nil {
		t.Fatalf("Gemm: %v", err)
	}
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, k, 1e-4) {
		t.Fatalf("traced GOTO wrong result: max diff %g", c.MaxAbsDiff(want))
	}

	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d spans", rec.Dropped())
	}
	bytes := map[obs.Phase]int64{}
	count := map[obs.Phase]int{}
	for _, s := range rec.Spans() {
		bytes[s.Phase] += s.Bytes
		count[s.Phase]++
	}
	if count[obs.PhasePack] == 0 || count[obs.PhaseCompute] == 0 {
		t.Fatalf("missing phases: %v", count)
	}
	if want := (st.PackedAElems + st.PackedBElems) * elem; bytes[obs.PhasePack] != want {
		t.Fatalf("pack span bytes = %d, want %d", bytes[obs.PhasePack], want)
	}
	// GOTO streams partial C to DRAM and reads it back every pc step: the
	// compute spans carry that 2× read-modify-write traffic (§4.4).
	if want := 2 * st.CStreamElems * elem; bytes[obs.PhaseCompute] != want {
		t.Fatalf("compute span bytes = %d, want %d (2× CStreamElems)", bytes[obs.PhaseCompute], want)
	}
}

func TestGotoUntracedStillWorks(t *testing.T) {
	cfg := Config{Cores: 2, MC: 16, KC: 16, NC: 32, MR: 8, NR: 8}
	rng := rand.New(rand.NewSource(32))
	a := matrix.New[float64](30, 20)
	b := matrix.New[float64](20, 40)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float64](30, 40)
	want := c.Clone()
	if _, err := Gemm(c, a, b, cfg); err != nil {
		t.Fatalf("Gemm: %v", err)
	}
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, 20, 1e-12) {
		t.Fatalf("untraced GOTO wrong result: max diff %g", c.MaxAbsDiff(want))
	}
}
