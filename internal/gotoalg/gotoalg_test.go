package gotoalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/pool"
)

func smallConfig(p int) Config {
	return Config{Cores: p, MC: 16, KC: 16, NC: 32, MR: 8, NR: 8}
}

func checkGemm[T matrix.Scalar](t *testing.T, cfg Config, m, k, n int, seed int64, tol float64) Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[T](m, k)
	b := matrix.New[T](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[T](m, n)
	c.Randomize(rng)
	want := c.Clone()

	st, err := Gemm(c, a, b, cfg)
	if err != nil {
		t.Fatalf("Gemm(%v, %dx%dx%d): %v", cfg, m, k, n, err)
	}
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, k, tol) {
		t.Fatalf("cfg=%v dims=%dx%dx%d: max diff %g", cfg, m, k, n, c.MaxAbsDiff(want))
	}
	return st
}

func TestGemmExactBlocks(t *testing.T) {
	checkGemm[float64](t, smallConfig(2), 64, 32, 64, 1, 1e-12)
}

func TestGemmRagged(t *testing.T) {
	checkGemm[float64](t, smallConfig(3), 50, 23, 70, 2, 1e-12)
	checkGemm[float64](t, smallConfig(2), 1, 1, 1, 3, 1e-12)
	checkGemm[float64](t, smallConfig(2), 17, 33, 31, 4, 1e-12)
}

func TestGemmSkewed(t *testing.T) {
	cfg := smallConfig(2)
	checkGemm[float64](t, cfg, 200, 8, 16, 5, 1e-12)
	checkGemm[float64](t, cfg, 8, 200, 16, 6, 1e-12)
	checkGemm[float64](t, cfg, 16, 8, 200, 7, 1e-12)
}

func TestGemmFloat32(t *testing.T) {
	checkGemm[float32](t, smallConfig(2), 60, 45, 55, 8, 2e-5)
}

func TestGemmSingleCore(t *testing.T) {
	checkGemm[float64](t, smallConfig(1), 40, 40, 40, 9, 1e-12)
}

func TestGemmAccumulates(t *testing.T) {
	a := matrix.New[float64](8, 8)
	b := matrix.New[float64](8, 8)
	a.Fill(1)
	b.Fill(1)
	c := matrix.New[float64](8, 8)
	c.Fill(5)
	if _, err := Gemm(c, a, b, smallConfig(2)); err != nil {
		t.Fatal(err)
	}
	if c.At(3, 3) != 13 {
		t.Fatalf("C += A×B broken: got %v", c.At(3, 3))
	}
}

func TestGemmStatsPartialStreaming(t *testing.T) {
	// The defining GOTO behaviour: C streams once per pc iteration, so its
	// traffic is M·N·ceil(K/kc) — growing with K, unlike CAKE's single
	// unpack per element.
	cfg := smallConfig(2) // kc = 16
	st := checkGemm[float64](t, cfg, 32, 64, 32, 10, 1e-12)
	if want := int64(32 * 32 * 4); st.CStreamElems != want {
		t.Fatalf("CStreamElems=%d want %d", st.CStreamElems, want)
	}
	// B packed once per (jc, pc): elements = K·N once each.
	if want := int64(64 * 32); st.PackedBElems != want {
		t.Fatalf("PackedBElems=%d want %d", st.PackedBElems, want)
	}
	// A repacked for every jc: K·M per jc, Nb=1 here.
	if want := int64(32 * 64); st.PackedAElems != want {
		t.Fatalf("PackedAElems=%d want %d", st.PackedAElems, want)
	}
	if st.Panels != 4 {
		t.Fatalf("Panels=%d want 4", st.Panels)
	}
}

func TestGemmQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Cores: 1 + rng.Intn(4),
			MC:    8 * (1 + rng.Intn(3)),
			KC:    1 + rng.Intn(24),
			NC:    8 * (1 + rng.Intn(5)),
			MR:    8, NR: 8,
		}
		m, k, n := 1+rng.Intn(90), 1+rng.Intn(90), 1+rng.Intn(90)
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		c := matrix.New[float64](m, n)
		a.Randomize(rng)
		b.Randomize(rng)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		if _, err := Gemm(c, a, b, cfg); err != nil {
			return false
		}
		return c.AlmostEqual(want, k, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCakeAndGotoAgree(t *testing.T) {
	// Integration: both drivers compute the same product.
	rng := rand.New(rand.NewSource(42))
	a := matrix.New[float64](77, 53)
	b := matrix.New[float64](53, 91)
	a.Randomize(rng)
	b.Randomize(rng)
	c1 := matrix.New[float64](77, 91)
	c2 := matrix.New[float64](77, 91)
	if _, err := Gemm(c1, a, b, smallConfig(3)); err != nil {
		t.Fatal(err)
	}
	matrix.BlockedGemm(c2, a, b, 16)
	if !c1.AlmostEqual(c2, 53, 1e-12) {
		t.Fatal("GOTO disagrees with blocked reference")
	}
}

func TestValidate(t *testing.T) {
	if err := smallConfig(2).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.MC = 4 },
		func(c *Config) { c.MC = 20 },
		func(c *Config) { c.KC = 0 },
		func(c *Config) { c.NC = 4 },
		func(c *Config) { c.MR = 0 },
	}
	for i, mut := range cases {
		c := smallConfig(2)
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestPlanForPlatforms(t *testing.T) {
	for _, pl := range platform.All() {
		cfg, err := Plan(pl, 4)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		// A block fits the private L2 (or the L1 on the A53).
		l2 := pl.L2Bytes
		if l2 == 0 {
			l2 = pl.L1Bytes
		}
		if int64(cfg.MC*cfg.KC*4) > l2 {
			t.Fatalf("%s: A block %d bytes exceeds L2 %d", pl.Name, cfg.MC*cfg.KC*4, l2)
		}
		// B panel fits the LLC.
		if int64(cfg.KC*cfg.NC*4) > pl.LLCBytes {
			t.Fatalf("%s: B panel exceeds LLC", pl.Name)
		}
		if cfg.MC != cfg.KC {
			t.Fatalf("%s: GOTO uses square A blocks (mc=kc), got %d,%d", pl.Name, cfg.MC, cfg.KC)
		}
	}
}

func TestPlanRejectsBadInput(t *testing.T) {
	if _, err := Plan(platform.IntelI9(), 0); err == nil {
		t.Fatal("elemBytes=0 accepted")
	}
	bad := platform.IntelI9()
	bad.Cores = -1
	if _, err := Plan(bad, 4); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestPlannedGemmEndToEnd(t *testing.T) {
	cfg, err := Plan(platform.ARMCortexA53(), 8)
	if err != nil {
		t.Fatal(err)
	}
	checkGemm[float64](t, cfg, 300, 200, 250, 11, 1e-12)
}

func TestExecutorSharedPoolAndReuse(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	e, err := NewExecutor[float64](smallConfig(4), p)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 3; trial++ {
		m, k, n := 10+rng.Intn(50), 1+rng.Intn(50), 1+rng.Intn(50)
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		c := matrix.New[float64](m, n)
		a.Randomize(rng)
		b.Randomize(rng)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		if _, err := e.Gemm(c, a, b); err != nil {
			t.Fatal(err)
		}
		if !c.AlmostEqual(want, k, 1e-12) {
			t.Fatalf("trial %d wrong", trial)
		}
	}
	if _, err := NewExecutor[float64](smallConfig(8), p); err == nil {
		t.Fatal("undersized pool accepted")
	}
}
