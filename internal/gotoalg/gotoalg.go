// Package gotoalg implements the GOTO algorithm (Goto & van de Geijn,
// "Anatomy of High-Performance Matrix Multiplication"), the state-of-the-art
// baseline the paper compares CAKE against (Section 4.1). Intel MKL, ARMPL
// and OpenBLAS all implement this blocking, which is why the paper's
// analysis — and this reproduction — use GOTO as the stand-in for those
// vendor libraries.
//
// Structure (Figure 5): the classic five-loop nest. An nc-wide B panel is
// packed into the shared LLC once per (jc, pc); each core packs its own
// square mc×kc A block into its private L2 and computes an mc×nc slab of C.
// Partial C results stream directly to the output matrix ("DRAM") and are
// read back for accumulation on the next pc iteration — the partial-result
// round-trips whose external bandwidth cost grows with p and that CAKE
// eliminates (Section 4.4).
package gotoalg

import (
	"context"
	"fmt"
	"math"
	"time"
	"unsafe"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/packing"
	"repro/internal/platform"
	"repro/internal/pool"
)

// Config determines a GOTO execution.
type Config struct {
	Cores int // parallel workers for the ic loop
	MC    int // A block rows per core (square: mc = kc in the paper)
	KC    int // reduction depth per panel
	NC    int // B panel width (sized to the LLC)
	MR    int // register tile rows
	NR    int // register tile cols
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("gotoalg: config needs >=1 cores, got %d", c.Cores)
	case c.MR < 1 || c.NR < 1:
		return fmt.Errorf("gotoalg: invalid register tile %dx%d", c.MR, c.NR)
	case c.MC < c.MR || c.MC%c.MR != 0:
		return fmt.Errorf("gotoalg: mc=%d must be a positive multiple of mr=%d", c.MC, c.MR)
	case c.KC < 1:
		return fmt.Errorf("gotoalg: kc=%d", c.KC)
	case c.NC < c.NR:
		return fmt.Errorf("gotoalg: nc=%d smaller than nr=%d", c.NC, c.NR)
	default:
		return nil
	}
}

func (c Config) String() string {
	return fmt.Sprintf("goto{p=%d mc=%d kc=%d nc=%d tile=%dx%d}", c.Cores, c.MC, c.KC, c.NC, c.MR, c.NR)
}

// Plan derives the GOTO blocking for a platform, following Section 4.1:
// a square mc×kc A block filling half the per-core L2 (the other half
// covers the streamed B/C traffic through L2), and nc chosen so the kc×nc
// B panel fills the LLC share GOTO dedicates to B.
func Plan(pl *platform.Platform, elemBytes int) (Config, error) {
	if err := pl.Validate(); err != nil {
		return Config{}, err
	}
	if elemBytes < 1 {
		return Config{}, fmt.Errorf("gotoalg: invalid element size %d", elemBytes)
	}
	const mr, nr = 8, 8
	l2 := pl.L2Bytes
	if l2 == 0 {
		// No private L2 (ARM A53): the only private level is L1, so the
		// square A block is sized against it, as ARMPL's small-core
		// kernels do.
		l2 = pl.L1Bytes
	}
	l2Elems := float64(l2) / float64(elemBytes)
	mc := int(math.Sqrt(l2Elems / 2))
	mc -= mc % mr
	if mc < mr {
		mc = mr
	}
	kc := mc
	llcElems := float64(pl.LLCBytes) / float64(elemBytes)
	nc := int(llcElems/2) / kc // half the LLC for the B panel
	nc -= nc % nr
	if nc < nr {
		nc = nr
	}
	cfg := Config{Cores: pl.Cores, MC: mc, KC: kc, NC: nc, MR: mr, NR: nr}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("gotoalg: planner produced invalid config: %w", err)
	}
	return cfg, nil
}

// Stats summarises one GOTO GEMM execution.
type Stats struct {
	PackedAElems int64 // elements packed from A (each A block repacked per jc)
	PackedBElems int64 // elements packed from B
	CStreamElems int64 // C elements read-modified-written (partial streaming)
	Panels       int   // (jc, pc) panel iterations
}

// Option adjusts executor behaviour beyond the numeric Config.
type Option func(*execOptions)

type execOptions struct {
	rec *obs.Recorder
}

// WithTrace attaches a span recorder: B-panel packs, per-core A packs and
// macro-kernel executions are recorded with worker id, panel coordinates
// and DRAM bytes moved — GOTO's compute spans carry the partial-C
// read-modify-write traffic CAKE eliminates (§4.4), which is what makes
// its bandwidth timeline spiky next to CAKE's on the same shape. Pool jobs
// additionally run under {executor=goto, phase} pprof labels. A nil
// recorder records nothing.
func WithTrace(rec *obs.Recorder) Option { return func(o *execOptions) { o.rec = rec } }

// Executor runs GOTO GEMMs with a fixed configuration, reusing buffers and
// workers across calls.
type Executor[T matrix.Scalar] struct {
	cfg     Config
	kern    kernel.Kernel[T]
	pool    *pool.Pool
	ownPool bool
	scratch []*kernel.Scratch[T]
	bufB    []T
	bufA    [][]T // one per worker: each core's private L2-resident block

	// Observability (nil/zero unless WithTrace attached a recorder).
	rec                 *obs.Recorder
	met                 *obs.ExecMetrics // phase-latency histograms; refreshed per Gemm, nil when metrics are off
	elemBytes           int64
	packCtx, computeCtx context.Context
	curBlk              obs.Block // (ic, pc, jc) grid coordinates being packed
}

// NewExecutor validates cfg and prepares an executor; p as in core.NewExecutor.
func NewExecutor[T matrix.Scalar](cfg Config, p *pool.Pool, opts ...Option) (*Executor[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var o execOptions
	for _, opt := range opts {
		opt(&o)
	}
	e := &Executor[T]{cfg: cfg, kern: kernel.Best[T](cfg.MR, cfg.NR)}
	var zero T
	e.elemBytes = int64(unsafe.Sizeof(zero))
	if o.rec != nil {
		e.rec = o.rec
		e.packCtx = obs.LabelCtx("goto", obs.PhasePack)
		e.computeCtx = obs.LabelCtx("goto", obs.PhaseCompute)
	}
	if p == nil {
		e.pool = pool.New(cfg.Cores)
		e.ownPool = true
	} else {
		if p.Workers() < cfg.Cores {
			return nil, fmt.Errorf("gotoalg: pool has %d workers, config needs %d", p.Workers(), cfg.Cores)
		}
		e.pool = p
	}
	w := e.pool.Workers()
	e.scratch = make([]*kernel.Scratch[T], w)
	e.bufA = make([][]T, w)
	for i := 0; i < w; i++ {
		e.scratch[i] = kernel.NewScratch[T](cfg.MR, cfg.NR)
		e.bufA[i] = make([]T, packing.PackedASize(cfg.MC, cfg.KC, cfg.MR))
	}
	return e, nil
}

// Close releases the executor's pool if it owns one.
func (e *Executor[T]) Close() {
	if e.ownPool {
		e.pool.Close()
		e.ownPool = false
	}
}

// Config returns the executor's configuration.
func (e *Executor[T]) Config() Config { return e.cfg }

// now returns the wall clock for span timing, or 0 when tracing is off.
func (e *Executor[T]) now() int64 {
	if e.rec == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// span records one phase execution that started at t0 (from now()).
func (e *Executor[T]) span(worker int, ph obs.Phase, blk obs.Block, t0, bytes int64) {
	if e.rec == nil {
		return
	}
	dur := time.Now().UnixNano() - t0
	e.rec.Record(worker, obs.Span{
		StartNs: t0, DurNs: dur,
		Bytes: bytes, Block: blk, Phase: ph,
	})
	if e.met != nil {
		e.met.ObservePhase(ph, dur)
	}
}

// Gemm computes C += A×B with the five-loop GOTO schedule.
func (e *Executor[T]) Gemm(c, a, b *matrix.Matrix[T]) (Stats, error) {
	matrix.CheckMul(c, a, b)
	m, k, n := a.Rows, a.Cols, b.Cols
	cfg := e.cfg
	if e.rec != nil {
		// Traced spans double as phase-latency histogram samples when the
		// metrics registry is live; cache the lookup for the whole call.
		e.met = obs.MetricsFor("goto")
	}

	needB := packing.PackedBSize(min(cfg.KC, k), min(cfg.NC, roundUp(n, cfg.NR)), cfg.NR)
	if cap(e.bufB) < needB {
		e.bufB = make([]T, needB)
	}

	var st Stats
	for jc := 0; jc < n; jc += cfg.NC { // loop 5
		ncEff := min(cfg.NC, n-jc)
		for pc := 0; pc < k; pc += cfg.KC { // loop 4
			kcEff := min(cfg.KC, k-pc)
			e.curBlk = obs.Block{K: int32(pc / cfg.KC), N: int32(jc / cfg.NC)}
			e.packB(b, pc, kcEff, jc, ncEff)
			st.PackedBElems += int64(kcEff) * int64(ncEff)
			st.Panels++

			bp := e.bufB[:packing.PackedBSize(kcEff, ncEff, cfg.NR)]
			blocks := ceilDiv(m, cfg.MC)
			// Loop 3 parallelised over cores: each worker packs its own A
			// block into its private buffer, then updates its C slab.
			e.pool.ForLabeled(e.computeCtx, blocks, func(worker, blk int) {
				ic := blk * cfg.MC
				mcEff := min(cfg.MC, m-ic)
				coord := obs.Block{M: int32(blk), K: int32(pc / cfg.KC), N: int32(jc / cfg.NC)}
				u0 := e.now()
				ap := packing.PackA(e.bufA[worker], a.View(ic, pc, mcEff, kcEff), cfg.MR, 1)
				e.span(worker, obs.PhasePack, coord, u0, int64(mcEff)*int64(kcEff)*e.elemBytes)
				u0 = e.now()
				cv := c.View(ic, jc, mcEff, ncEff)
				packing.Macro(e.kern, kcEff, ap, bp, cv, e.scratch[worker])
				// Partial C streams to and from the output matrix: a DRAM
				// read-modify-write of the mc×nc slab on every pc step —
				// the traffic §4.4 charges GOTO for.
				e.span(worker, obs.PhaseCompute, coord, u0, 2*int64(mcEff)*int64(ncEff)*e.elemBytes)
			})
			st.PackedAElems += int64(m) * int64(kcEff)
			st.CStreamElems += int64(m) * int64(ncEff)
		}
	}
	obs.AccountGemm("goto", st.Panels, (st.PackedAElems+st.PackedBElems)*e.elemBytes,
		0, 0, 0, 0)
	return st, nil
}

// packB packs the kcEff×ncEff panel of B, splitting nr panels across cores.
func (e *Executor[T]) packB(b *matrix.Matrix[T], pc, kcEff, jc, ncEff int) {
	nr := e.cfg.NR
	panels := ceilDiv(ncEff, nr)
	chunks := min(e.cfg.Cores, panels)
	perChunk := ceilDiv(panels, chunks)
	e.pool.ForStaticLabeled(e.packCtx, chunks, func(core, ch int) {
		p0 := ch * perChunk
		pn := min(perChunk, panels-p0)
		if pn <= 0 {
			return
		}
		u0 := e.now()
		c0 := p0 * nr
		cols := min(pn*nr, ncEff-c0)
		packing.PackB(e.bufB[c0*kcEff:], b.View(pc, jc+c0, kcEff, cols), nr)
		e.span(core, obs.PhasePack, e.curBlk, u0, int64(kcEff)*int64(cols)*e.elemBytes)
	})
}

// Gemm is the one-shot entry point.
func Gemm[T matrix.Scalar](c, a, b *matrix.Matrix[T], cfg Config, opts ...Option) (Stats, error) {
	e, err := NewExecutor[T](cfg, nil, opts...)
	if err != nil {
		return Stats{}, err
	}
	defer e.Close()
	return e.Gemm(c, a, b)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func roundUp(v, m int) int { return ceilDiv(v, m) * m }
