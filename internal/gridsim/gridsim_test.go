package gridsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cbtheory"
	"repro/internal/matrix"
)

func TestConfigValidate(t *testing.T) {
	if (Config{P: 2, K: 2, Alpha: 1}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
	for _, bad := range []Config{{P: 0, K: 1, Alpha: 1}, {P: 1, K: 0, Alpha: 1}, {P: 1, K: 1, Alpha: 0.5}} {
		if bad.Validate() == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	c := Config{P: 2, K: 4, Alpha: 2}
	if c.Cores() != 32 {
		t.Fatalf("cores %d want p·k² = 32", c.Cores())
	}
	m, k, n := c.BlockDims()
	if m != 8 || k != 4 || n != 16 {
		t.Fatalf("block %dx%dx%d", m, k, n)
	}
}

func TestMultiplyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{16, 8, 16}, {17, 9, 23}, {1, 1, 1}, {40, 3, 7}} {
		a := matrix.New[float64](dims[0], dims[1])
		b := matrix.New[float64](dims[1], dims[2])
		a.Randomize(rng)
		b.Randomize(rng)
		got, _, err := Multiply(Config{P: 2, K: 4, Alpha: 1}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.New[float64](dims[0], dims[2])
		matrix.NaiveGemm(want, a, b)
		if !got.AlmostEqual(want, dims[1], 1e-12) {
			t.Fatalf("dims %v: diff %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestMultiplyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{P: 1 + rng.Intn(3), K: 1 + rng.Intn(4), Alpha: 1 + 2*rng.Float64()}
		m, k, n := 1+rng.Intn(50), 1+rng.Intn(50), 1+rng.Intn(50)
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		a.Randomize(rng)
		b.Randomize(rng)
		got, met, err := Multiply(cfg, a, b)
		if err != nil {
			return false
		}
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		// Every C tile leaves external memory exactly once.
		return got.AlmostEqual(want, k, 1e-11) && met.ExtOutTiles == int64(m)*int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyRejectsBadInput(t *testing.T) {
	a := matrix.New[float64](4, 4)
	b := matrix.New[float64](5, 4)
	if _, _, err := Multiply(Config{P: 1, K: 1, Alpha: 1}, a, b); err == nil {
		t.Fatal("inner-dim mismatch accepted")
	}
	if _, _, err := Multiply(Config{}, a, a); err == nil {
		t.Fatal("zero config accepted")
	}
}

// exactProblem builds a problem that tiles the CB grid exactly so the
// metered bandwidths hit the closed forms with no edge effects.
func exactProblem(cfg Config, mb, nb, kb int) (a, b *matrix.Matrix[float64]) {
	bm, bk, bn := cfg.BlockDims()
	rng := rand.New(rand.NewSource(7))
	a = matrix.New[float64](mb*bm, kb*bk)
	b = matrix.New[float64](kb*bk, nb*bn)
	a.Randomize(rng)
	b.Randomize(rng)
	return
}

func TestExternalBWMatchesEquation2(t *testing.T) {
	// On an exact tiling with a single N step, input bandwidth per block is
	// (A+B)/T = (α+1)/α · k tiles/unit — Equation 2. With multiple blocks
	// the schedule's reuse only lowers it.
	for _, cfg := range []Config{{P: 2, K: 4, Alpha: 1}, {P: 1, K: 3, Alpha: 2}, {P: 4, K: 2, Alpha: 1.5}} {
		a, b := exactProblem(cfg, 1, 1, 1)
		_, met, err := Multiply(cfg, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := cbtheory.MinExternalBWTiles(cfg.Alpha, float64(cfg.K))
		if got := met.ExternalBW(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%+v: external BW %v, Eq.2 predicts %v", cfg, got, want)
		}
	}
}

func TestExternalBWConstantAcrossP(t *testing.T) {
	// The constant-bandwidth property on the executing machine: scaling p
	// (more cores, bigger blocks) leaves the metered external bandwidth
	// unchanged while total work per unit time grows.
	var ref float64
	for i, p := range []int{1, 2, 4} {
		cfg := Config{P: p, K: 4, Alpha: 1}
		a, b := exactProblem(cfg, 1, 1, 1)
		_, met, err := Multiply(cfg, a, b)
		if err != nil {
			t.Fatal(err)
		}
		bw := met.ExternalBW()
		if i == 0 {
			ref = bw
			continue
		}
		if math.Abs(bw-ref) > 1e-9 {
			t.Fatalf("p=%d: BW %v != %v — constant-bandwidth property broken", p, bw, ref)
		}
	}
}

func TestInternalBWMatchesEquation3(t *testing.T) {
	// Internal traffic per unit time on an exact single-block tiling:
	// (A+B+2C)/T = Rk + 2pk with R = (α+1)/α — Equation 3 at the minimum
	// external bandwidth.
	cfg := Config{P: 3, K: 4, Alpha: 2}
	a, b := exactProblem(cfg, 1, 1, 1)
	_, met, err := Multiply(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := (cfg.Alpha + 1) / cfg.Alpha
	want := cbtheory.InternalBWTiles(r, float64(cfg.P), float64(cfg.K))
	if got := met.InternalBW(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("internal BW %v, Eq.3 predicts %v", got, want)
	}
}

func TestPeakLocalMemMatchesEquation1(t *testing.T) {
	cfg := Config{P: 2, K: 3, Alpha: 2}
	a, b := exactProblem(cfg, 2, 2, 2)
	_, met, err := Multiply(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cbtheory.InternalMemTiles(cfg.Alpha, float64(cfg.P), float64(cfg.K)))
	if met.PeakLocalMem != want {
		t.Fatalf("peak local mem %d, Eq.1 predicts %d", met.PeakLocalMem, want)
	}
}

func TestScheduleReuseLowersExternalBW(t *testing.T) {
	// Across a multi-block space the K-first schedule reuses input surfaces
	// at run boundaries, so average external input BW dips below the
	// single-block Eq. 2 value.
	cfg := Config{P: 2, K: 4, Alpha: 1}
	a, b := exactProblem(cfg, 3, 3, 3)
	_, met, err := Multiply(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	single := cbtheory.MinExternalBWTiles(cfg.Alpha, float64(cfg.K))
	if met.ExternalBW() > single {
		t.Fatalf("multi-block BW %v above single-block bound %v", met.ExternalBW(), single)
	}
}

func TestThroughputScalesWithP(t *testing.T) {
	// Same total problem, bigger grid: unit times must fall ∝ 1/p on exact
	// tilings (each unit time does p·k² MACs... more cores, same BW).
	base := Config{P: 1, K: 4, Alpha: 1}
	big := Config{P: 4, K: 4, Alpha: 1}
	a, b := exactProblem(big, 1, 1, 4) // divides both grids exactly
	_, mBase, err := Multiply(base, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, mBig, err := Multiply(big, a, b)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mBase.UnitTimes) / float64(mBig.UnitTimes)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("4x grid should cut unit times 4x, got %v (%d vs %d)", ratio, mBase.UnitTimes, mBig.UnitTimes)
	}
}
