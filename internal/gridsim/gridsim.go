// Package gridsim is a functional simulator of the paper's abstract
// machine (Sections 2–3, Figure 3): a processing grid of m×k cores, each
// holding one stationary A tile, computing CB blocks as sums of outer
// products. B tiles are broadcast down core columns, partial results
// accumulate across the K dimension of the grid, and the resident C surface
// returns to external memory only when its reduction completes.
//
// The simulator executes real multiplications (tile side 1, i.e. scalar
// tiles) so the CB block design and the K-first schedule are validated
// functionally — the role the authors' SystemC simulator plays in Section
// 6.2 — while metering exactly the quantities of the Section 3 analysis:
// external IO (Equation 2), local memory (Equation 1) and internal traffic
// (Equation 3), all in tiles and unit times.
package gridsim

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/schedule"
)

// Config shapes the grid and its CB blocks: the grid has p·k × k cores
// (one per A-surface tile); blocks are p·k × k × α·p·k tiles.
type Config struct {
	P     int     // core-count scale factor (grid rows = p·k)
	K     int     // reduction width of the grid (grid cols = k)
	Alpha float64 // CB aspect factor ≥ 1
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.P < 1 || c.K < 1:
		return fmt.Errorf("gridsim: invalid grid p=%d k=%d", c.P, c.K)
	case c.Alpha < 1:
		return fmt.Errorf("gridsim: alpha %v < 1", c.Alpha)
	default:
		return nil
	}
}

// Cores returns the number of cores in the processing grid (= A tiles per
// block, Section 3: "the number of tiles in the A surface ... is equal to
// the number of cores").
func (c Config) Cores() int { return c.P * c.K * c.K }

// BlockDims returns the CB block extents in tiles.
func (c Config) BlockDims() (m, k, n int) {
	m = c.P * c.K
	k = c.K
	n = int(c.Alpha * float64(m))
	return
}

// Metrics meters a run in the paper's tile units.
type Metrics struct {
	UnitTimes     int64 // total computation time (T = n per block + fills)
	Blocks        int64
	ExtInTiles    int64 // A and B tiles fetched from external memory
	ExtOutTiles   int64 // completed C tiles written back
	InternalTiles int64 // tiles moved between local memory and the grid
	PeakLocalMem  int64 // largest per-block surface footprint (tiles)
}

// ExternalBW returns the average external bandwidth in tiles per unit time
// (Equation 2 predicts (α+1)/α·k for input traffic on exact tilings).
func (m Metrics) ExternalBW() float64 {
	if m.UnitTimes == 0 {
		return 0
	}
	return float64(m.ExtInTiles) / float64(m.UnitTimes)
}

// InternalBW returns the average internal bandwidth in tiles per unit time
// (Equation 3 predicts Rk + 2pk).
func (m Metrics) InternalBW() float64 {
	if m.UnitTimes == 0 {
		return 0
	}
	return float64(m.InternalTiles) / float64(m.UnitTimes)
}

// Multiply computes C = A×B on the simulated grid (tile side 1: each core
// holds one scalar of A). Dimensions may be arbitrary; edge blocks run with
// idle cores. Returns the result and the metered run.
func Multiply(cfg Config, a, b *matrix.Matrix[float64]) (*matrix.Matrix[float64], Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Metrics{}, err
	}
	if a.Cols != b.Rows {
		return nil, Metrics{}, fmt.Errorf("gridsim: inner dims %d vs %d", a.Cols, b.Rows)
	}
	mDim, kDim, nDim := a.Rows, a.Cols, b.Cols
	bm, bk, bn := cfg.BlockDims()
	grid := schedule.Dims{
		Mb: ceilDiv(mDim, bm), Nb: ceilDiv(nDim, bn), Kb: ceilDiv(kDim, bk),
	}
	seq := schedule.KFirst(grid, schedule.OrderFor(mDim, nDim))

	c := matrix.New[float64](mDim, nDim)
	// The grid's stationary A register file and the local (resident) C
	// block surface.
	aTiles := matrix.New[float64](bm, bk)
	cLocal := matrix.New[float64](bm, bn)

	var met Metrics
	for i, cur := range seq {
		m0, mEff := clip(cur.M, bm, mDim)
		k0, kEff := clip(cur.K, bk, kDim)
		n0, nEff := clip(cur.N, bn, nDim)
		aShared, bShared := false, false
		if i > 0 {
			aShared, bShared, _ = schedule.Shared(seq[i-1], cur)
		}
		runStart := i == 0 || seq[i-1].M != cur.M || seq[i-1].N != cur.N
		runEnd := i == len(seq)-1 || seq[i+1].M != cur.M || seq[i+1].N != cur.N

		// Load phase: each core receives its stationary A tile (reused
		// across the N step when the schedule preserves the surface).
		if !aShared {
			aTiles.Zero()
			aTiles.View(0, 0, mEff, kEff).CopyFrom(a.View(m0, k0, mEff, kEff))
			met.ExtInTiles += int64(mEff) * int64(kEff)
		}
		if !bShared {
			met.ExtInTiles += int64(kEff) * int64(nEff)
		}
		if runStart {
			cLocal.Zero()
		}

		// Compute phase: one unit time per N position. Core column j
		// receives the broadcast B tile (k0+j, n0+t); core (i, j) multiplies
		// its stationary tile; the column's products accumulate across K
		// into the local C tile (i, t) — the grid's outer-product step.
		for t := 0; t < nEff; t++ {
			for i2 := 0; i2 < mEff; i2++ {
				var sum float64
				arow := aTiles.Row(i2)
				for j := 0; j < kEff; j++ {
					sum += arow[j] * b.At(k0+j, n0+t)
				}
				cLocal.Add(i2, t, sum)
			}
		}
		met.UnitTimes += int64(nEff)
		// Internal traffic per block: A and B surfaces read once onto the
		// grid, the partial C surface read and written once (Section 3.3).
		met.InternalTiles += int64(mEff)*int64(kEff) + int64(kEff)*int64(nEff) + 2*int64(mEff)*int64(nEff)
		if fp := int64(mEff)*int64(kEff) + int64(kEff)*int64(nEff) + int64(mEff)*int64(nEff); fp > met.PeakLocalMem {
			met.PeakLocalMem = fp
		}
		met.Blocks++

		// Retire phase: completed results leave for external memory once
		// per C surface (partials never travel, Section 2.2).
		if runEnd {
			cv := c.View(m0, n0, mEff, nEff)
			for i2 := 0; i2 < mEff; i2++ {
				crow := cv.Row(i2)
				lrow := cLocal.Row(i2)
				copy(crow, lrow[:nEff])
			}
			met.ExtOutTiles += int64(mEff) * int64(nEff)
		}
	}
	return c, met, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clip(idx, block, total int) (off, eff int) {
	off = idx * block
	eff = min(block, total-off)
	return
}
