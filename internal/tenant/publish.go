package tenant

import (
	"encoding/json"
	"expvar"
	"sync"
)

// tenantsVar is the process-wide "cake_tenants" expvar. expvar panics on
// duplicate Publish, so registration happens once; subsequent Publish calls
// on any Plan replace the map's contents.
var (
	publishOnce sync.Once
	tenantsVar  *expvar.Map
)

// assignmentVar renders one Assignment as a JSON expvar value.
type assignmentVar struct {
	Cores     int     `json:"cores"`
	LLCBytes  int64   `json:"llc_bytes"`
	DRAMBWBps float64 `json:"dram_bw_bps"`
	M         int     `json:"m"`
	K         int     `json:"k"`
	N         int     `json:"n"`
	MC        int     `json:"mc"`
	KC        int     `json:"kc"`
	Alpha     float64 `json:"alpha"`
}

func (v assignmentVar) String() string {
	b, _ := json.Marshal(v)
	return string(b)
}

// Publish exposes the plan's per-tenant resource slices under the
// "cake_tenants" expvar map, so a live partition is inspectable at
// /debug/vars alongside the executor metrics. Re-publishing (a new plan)
// replaces all entries.
func (p Plan) Publish() {
	publishOnce.Do(func() {
		tenantsVar = expvar.NewMap("cake_tenants")
	})
	tenantsVar.Init()
	for _, as := range p.Assignments {
		tenantsVar.Set(as.Job.Name, assignmentVar{
			Cores:     as.Cores,
			LLCBytes:  as.LLCBytes,
			DRAMBWBps: as.DRAMBW,
			M:         as.Job.M,
			K:         as.Job.K,
			N:         as.Job.N,
			MC:        as.Config.MC,
			KC:        as.Config.KC,
			Alpha:     as.Config.Alpha,
		})
	}
}
