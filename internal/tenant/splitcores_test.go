package tenant

import "testing"

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func TestSplitCoresProportional(t *testing.T) {
	got := SplitCores(8, []float64{3, 1})
	if got[0] != 6 || got[1] != 2 {
		t.Fatalf("3:1 over 8 cores = %v, want [6 2]", got)
	}
	if sum(got) != 8 {
		t.Fatalf("sum %d != 8", sum(got))
	}
}

func TestSplitCoresFloorOfOne(t *testing.T) {
	got := SplitCores(8, []float64{1e9, 1})
	if got[1] < 1 {
		t.Fatalf("tiny class got %d cores, floor is 1", got[1])
	}
	if sum(got) != 8 {
		t.Fatalf("sum %d != 8 (%v)", sum(got), got)
	}
}

func TestSplitCoresMoreClassesThanCores(t *testing.T) {
	// Floors alone exceed the machine: each class still reports a demand of
	// ≥1 core (the caller clamps at admission time), so the sum exceeds total.
	got := SplitCores(2, []float64{1, 1, 1, 1})
	for i, c := range got {
		if c != 1 {
			t.Fatalf("class %d got %d cores, want floor of 1 (%v)", i, c, got)
		}
	}
}

func TestSplitCoresZeroWeightsEqualShares(t *testing.T) {
	got := SplitCores(6, []float64{0, 0, 0})
	for i, c := range got {
		if c != 2 {
			t.Fatalf("class %d got %d cores, want 2 (%v)", i, c, got)
		}
	}
}

func TestSplitCoresMixedZeroAndPositive(t *testing.T) {
	// A zero weight counts as one equal share of the *uniform* unit, not of
	// the positive mass: volume must include the substituted shares.
	got := SplitCores(6, []float64{4, 0, 0})
	if sum(got) != 6 {
		t.Fatalf("sum %d != 6 (%v)", sum(got), got)
	}
	if got[0] < got[1] || got[0] < got[2] {
		t.Fatalf("heaviest class not largest: %v", got)
	}
	if got[1] < 1 || got[2] < 1 {
		t.Fatalf("zero-weight classes below floor: %v", got)
	}
}

func TestSplitCoresSingleClassTakesAll(t *testing.T) {
	got := SplitCores(16, []float64{7.5})
	if len(got) != 1 || got[0] != 16 {
		t.Fatalf("single class = %v, want [16]", got)
	}
}
