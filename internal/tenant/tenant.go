// Package tenant implements the multi-tenant scheduling extension the
// paper points at in Section 6.1 ("CAKE can also help reduce searches for
// optimal multi-tenant schedules"): several GEMM jobs sharing one machine.
//
// The CB property is what makes this tractable without search: a CAKE
// tenant running on p_i cores needs a *constant, analytically known* DRAM
// bandwidth (Equation 4) and LLC share (Equation 5), so the machine's
// cores, cache and memory bandwidth can be statically partitioned and each
// tenant provisioned exactly — where GOTO tenants' demands grow with their
// core counts and collide on the memory bus.
package tenant

import (
	"fmt"

	"repro/internal/cbtheory"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Job is one tenant's GEMM workload.
type Job struct {
	Name    string
	M, K, N int
}

// MACs returns the job's work volume.
func (j Job) MACs() float64 { return float64(j.M) * float64(j.K) * float64(j.N) }

// Assignment is one tenant's resource slice and plan.
type Assignment struct {
	Job      Job
	Cores    int
	LLCBytes int64       // shared-cache partition
	DRAMBW   float64     // reserved external bandwidth (bytes/s)
	Config   core.Config // CAKE plan within the slice
}

// Plan is a full machine partition.
type Plan struct {
	Platform    *platform.Platform
	Assignments []Assignment
}

// PlanTenants partitions the machine among jobs: cores proportionally to
// work volume (every tenant gets at least one), the LLC proportionally to
// the Equation 5 footprint the core counts imply (∝ p_i²), and DRAM
// bandwidth per tenant at its Equation 4 requirement. Returns an error if
// the jobs cannot fit (more jobs than cores, or aggregate bandwidth demand
// beyond the machine).
func PlanTenants(pl *platform.Platform, jobs []Job) (Plan, error) {
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	if len(jobs) == 0 {
		return Plan{}, fmt.Errorf("tenant: no jobs")
	}
	if len(jobs) > pl.Cores {
		return Plan{}, fmt.Errorf("tenant: %d jobs exceed %d cores", len(jobs), pl.Cores)
	}

	cores := splitProportional(pl.Cores, jobs)
	// LLC ∝ p², the dominant Eq. 5 term; a tenant with more cores needs a
	// quadratically larger resident-C surface.
	var p2 float64
	for _, c := range cores {
		p2 += float64(c * c)
	}

	plan := Plan{Platform: pl, Assignments: make([]Assignment, len(jobs))}
	var bwTotal float64
	for i, job := range jobs {
		share := int64(float64(pl.LLCBytes) * float64(cores[i]*cores[i]) / p2)
		slice := *pl
		slice.Cores = cores[i]
		slice.LLCBytes = share
		cfg, err := core.Plan(&slice, job.M, job.K, job.N, 4)
		if err != nil {
			return Plan{}, fmt.Errorf("tenant: %s: %w", job.Name, err)
		}
		rates := cbtheory.Rates{ClockHz: pl.ClockHz, FlopsPerCycle: pl.FlopsPerCycle, ElemBytes: 4}
		need := cbtheory.CakeOptimalDRAMBW(rates, cfg.Alpha, cfg.MR, cfg.NR, cfg.KC)
		// Headroom for C writebacks and edge blocks.
		need *= 1.25
		bwTotal += need
		plan.Assignments[i] = Assignment{
			Job: job, Cores: cores[i], LLCBytes: share, DRAMBW: need, Config: cfg,
		}
	}
	if bwTotal > pl.DRAMBW {
		return Plan{}, fmt.Errorf("tenant: aggregate bandwidth demand %.2f GB/s exceeds machine's %.2f GB/s",
			bwTotal/1e9, pl.DRAMBW/1e9)
	}
	// Distribute leftover bandwidth proportionally — CAKE tenants do not
	// need it, but it absorbs simulation transients.
	spare := pl.DRAMBW - bwTotal
	for i := range plan.Assignments {
		plan.Assignments[i].DRAMBW += spare / float64(len(jobs))
	}
	return plan, nil
}

// splitProportional allocates total cores to jobs ∝ MACs with a floor of 1.
func splitProportional(total int, jobs []Job) []int {
	w := make([]float64, len(jobs))
	for i, j := range jobs {
		w[i] = j.MACs()
	}
	return SplitCores(total, w)
}

// SplitCores partitions total cores across concurrent request classes
// proportionally to their weights, with a floor of one core per class. This
// is the §4.3 core partition in its rawest form: p cores serving q tenants,
// each slice sized to its share of the work, so every slice runs CAKE at its
// own constant bandwidth. When the floors alone exceed total (more classes
// than cores) the result intentionally sums above total — callers treat the
// entries as per-request demands, not a simultaneous static layout, and
// clamp to the machine. Non-positive weights count as equal shares.
func SplitCores(total int, weights []float64) []int {
	share := func(i int) float64 {
		if weights[i] > 0 {
			return weights[i]
		}
		return 1
	}
	var volume float64
	for i := range weights {
		volume += share(i)
	}
	out := make([]int, len(weights))
	used := 0
	for i := range weights {
		c := int(float64(total) * share(i) / volume)
		if c < 1 {
			c = 1
		}
		out[i] = c
		used += c
	}
	// Fix rounding: trim from / add to the largest allocations.
	for used > total {
		maxI := 0
		for i, c := range out {
			if c > out[maxI] {
				maxI = i
			}
		}
		if out[maxI] == 1 {
			break
		}
		out[maxI]--
		used--
	}
	for used < total {
		maxI := 0
		for i := range weights {
			if share(i)/float64(out[i]) > share(maxI)/float64(out[maxI]) {
				maxI = i
			}
		}
		out[maxI]++
		used++
	}
	return out
}

// TenantResult is one tenant's simulated co-run outcome.
type TenantResult struct {
	Job      Job
	Metrics  sim.Metrics
	GFLOPS   float64
	Isolated float64 // throughput with the whole machine's bandwidth
}

// Share returns co-run throughput as a fraction of isolated throughput at
// the same core count: 1.0 means the static partition cost the tenant
// nothing — the no-interference outcome CB provisioning is meant to buy.
func (r TenantResult) Share() float64 {
	if r.Isolated == 0 {
		return 0
	}
	return r.GFLOPS / r.Isolated
}

// Simulate co-runs the plan: each tenant executes on its core slice with
// its reserved DRAM bandwidth and its LLC partition (the static partition
// the CB analysis provisioned). For comparison, each tenant is also run
// with the machine's entire DRAM bandwidth (the isolated baseline).
func Simulate(plan Plan) ([]TenantResult, error) {
	pl := plan.Platform
	out := make([]TenantResult, 0, len(plan.Assignments))
	for _, as := range plan.Assignments {
		w := sim.CakeWorkload{
			P: as.Cores, MC: as.Config.MC, KC: as.Config.KC, Alpha: as.Config.Alpha,
			MR: as.Config.MR, NR: as.Config.NR, ElemBytes: 4,
		}
		ops, err := sim.CakeOps(w, as.Job.M, as.Job.K, as.Job.N)
		if err != nil {
			return nil, err
		}
		mcfg := sim.FromPlatform(pl, as.Cores)
		mcfg.ExtBW = as.DRAMBW / pl.ClockHz
		// The internal bus is shared too; scale by the core share.
		mcfg.IntBW = pl.Internal.At(pl.Cores) / pl.ClockHz * float64(as.Cores) / float64(pl.Cores)
		mcfg.LLCBytes = as.LLCBytes
		met, err := sim.Run(mcfg, ops)
		if err != nil {
			return nil, err
		}

		iso := sim.FromPlatform(pl, as.Cores)
		isoMet, err := sim.Run(iso, ops)
		if err != nil {
			return nil, err
		}
		out = append(out, TenantResult{
			Job:      as.Job,
			Metrics:  met,
			GFLOPS:   met.ThroughputGFLOPS(pl.ClockHz),
			Isolated: isoMet.ThroughputGFLOPS(pl.ClockHz),
		})
	}
	return out, nil
}
