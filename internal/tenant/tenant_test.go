package tenant

import (
	"encoding/json"
	"expvar"
	"testing"

	"repro/internal/platform"
)

func jobs3() []Job {
	return []Job{
		{Name: "big", M: 4096, K: 4096, N: 4096},
		{Name: "mid", M: 2048, K: 2048, N: 2048},
		{Name: "small", M: 1024, K: 1024, N: 1024},
	}
}

func TestPlanTenantsPartition(t *testing.T) {
	pl := platform.IntelI9()
	plan, err := PlanTenants(pl, jobs3())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 3 {
		t.Fatalf("assignments %d", len(plan.Assignments))
	}
	var cores int
	var llc int64
	var bw float64
	for _, as := range plan.Assignments {
		if as.Cores < 1 {
			t.Fatalf("%s got %d cores", as.Job.Name, as.Cores)
		}
		if err := as.Config.Validate(); err != nil {
			t.Fatalf("%s config: %v", as.Job.Name, err)
		}
		// Each tenant's CB block must fit its LLC partition.
		if mem := as.Config.Shape().LocalMemElems() * 4; mem > float64(as.LLCBytes) {
			t.Fatalf("%s block %v bytes exceeds partition %d", as.Job.Name, mem, as.LLCBytes)
		}
		cores += as.Cores
		llc += as.LLCBytes
		bw += as.DRAMBW
	}
	if cores != pl.Cores {
		t.Fatalf("cores allocated %d of %d", cores, pl.Cores)
	}
	if llc > pl.LLCBytes {
		t.Fatalf("LLC over-allocated: %d > %d", llc, pl.LLCBytes)
	}
	if bw > pl.DRAMBW*1.001 {
		t.Fatalf("bandwidth over-allocated: %v > %v", bw, pl.DRAMBW)
	}
	// The big job must get the most cores.
	if plan.Assignments[0].Cores <= plan.Assignments[2].Cores {
		t.Fatalf("core split ignores volume: %d vs %d",
			plan.Assignments[0].Cores, plan.Assignments[2].Cores)
	}
}

func TestPlanTenantsErrors(t *testing.T) {
	pl := platform.ARMCortexA53() // 4 cores
	if _, err := PlanTenants(pl, nil); err == nil {
		t.Fatal("no jobs accepted")
	}
	five := make([]Job, 5)
	for i := range five {
		five[i] = Job{Name: "j", M: 64, K: 64, N: 64}
	}
	if _, err := PlanTenants(pl, five); err == nil {
		t.Fatal("more jobs than cores accepted")
	}
	bad := *pl
	bad.Cores = 0
	if _, err := PlanTenants(&bad, jobs3()[:1]); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestSimulateNoInterference(t *testing.T) {
	// The Section 6.1 payoff: with CB-provisioned static partitions, every
	// tenant runs at nearly its isolated throughput — no search, no
	// interference.
	pl := platform.IntelI9()
	plan, err := PlanTenants(pl, jobs3())
	if err != nil {
		t.Fatal(err)
	}
	results, err := Simulate(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.GFLOPS <= 0 {
			t.Fatalf("%s: no throughput", r.Job.Name)
		}
		if s := r.Share(); s < 0.85 {
			t.Fatalf("%s: co-run at %.0f%% of isolated (%.1f vs %.1f GFLOP/s)",
				r.Job.Name, 100*s, r.GFLOPS, r.Isolated)
		}
	}
}

func TestSimulateWorkConservation(t *testing.T) {
	pl := platform.AMDRyzen9()
	plan, err := PlanTenants(pl, jobs3())
	if err != nil {
		t.Fatal(err)
	}
	results, err := Simulate(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := jobs3()[i]
		if r.Metrics.MACs != int64(want.M)*int64(want.K)*int64(want.N) {
			t.Fatalf("%s: MACs %d", want.Name, r.Metrics.MACs)
		}
	}
}

func TestSplitProportional(t *testing.T) {
	jobs := []Job{
		{M: 100, K: 100, N: 100}, // 1e6
		{M: 100, K: 100, N: 100}, // 1e6
	}
	c := splitProportional(10, jobs)
	if c[0]+c[1] != 10 || c[0] != 5 {
		t.Fatalf("even split: %v", c)
	}
	skew := []Job{
		{M: 400, K: 400, N: 400},
		{M: 10, K: 10, N: 10},
	}
	c = splitProportional(8, skew)
	if c[0]+c[1] != 8 || c[1] != 1 || c[0] != 7 {
		t.Fatalf("skewed split: %v", c)
	}
	// Floor of 1 even for vanishing jobs.
	tiny := []Job{{M: 1000, K: 1000, N: 1000}, {M: 1, K: 1, N: 1}, {M: 1, K: 1, N: 1}}
	c = splitProportional(4, tiny)
	if c[0]+c[1]+c[2] != 4 || c[1] < 1 || c[2] < 1 {
		t.Fatalf("floor split: %v", c)
	}
}

func TestTenantResultShareZeroSafe(t *testing.T) {
	var r TenantResult
	if r.Share() != 0 {
		t.Fatal("zero-value share")
	}
}

func TestPlanTenantsBandwidthExceeded(t *testing.T) {
	pl := platform.IntelI9()
	pl.DRAMBW = 1e9 // 1 GB/s cannot host three tenants' Eq.4 demands
	if _, err := PlanTenants(pl, jobs3()); err == nil {
		t.Fatal("infeasible bandwidth accepted")
	}
}

func TestPlanTenantsSingleJobGetsEverything(t *testing.T) {
	pl := platform.AMDRyzen9()
	plan, err := PlanTenants(pl, jobs3()[:1])
	if err != nil {
		t.Fatal(err)
	}
	as := plan.Assignments[0]
	if as.Cores != pl.Cores {
		t.Fatalf("single tenant got %d of %d cores", as.Cores, pl.Cores)
	}
	if as.LLCBytes != pl.LLCBytes {
		t.Fatalf("single tenant got %d of %d LLC bytes", as.LLCBytes, pl.LLCBytes)
	}
	res, err := Simulate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if s := res[0].Share(); s < 0.95 {
		t.Fatalf("single tenant share %v", s)
	}
}

func TestPublishExposesTenantExpvar(t *testing.T) {
	pl := platform.IntelI9()
	jobs := []Job{
		{Name: "training", M: 2048, K: 2048, N: 2048},
		{Name: "serving", M: 1024, K: 1024, N: 1024},
	}
	plan, err := PlanTenants(pl, jobs)
	if err != nil {
		t.Fatal(err)
	}
	plan.Publish()
	v := expvar.Get("cake_tenants")
	if v == nil {
		t.Fatal("cake_tenants expvar not registered")
	}
	var decoded map[string]map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("cake_tenants is not JSON: %v\n%s", err, v.String())
	}
	for _, name := range []string{"training", "serving"} {
		entry, ok := decoded[name]
		if !ok {
			t.Fatalf("tenant %q missing from %v", name, decoded)
		}
		if entry["cores"].(float64) < 1 || entry["kc"].(float64) <= 0 {
			t.Fatalf("tenant %q has degenerate slice: %v", name, entry)
		}
	}

	// Re-publishing a smaller plan replaces, not accumulates.
	plan2, err := PlanTenants(pl, jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	plan2.Publish()
	decoded = nil
	if err := json.Unmarshal([]byte(expvar.Get("cake_tenants").String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, stale := decoded["serving"]; stale || len(decoded) != 1 {
		t.Fatalf("re-publish did not replace entries: %v", decoded)
	}
}
