package tenant

import (
	"time"

	"repro/internal/obs/reqtrace"
)

// Objectives derives per-tenant SLO objectives from the plan: one objective
// per assignment, keyed on the job name as the tenant label, ready to drop
// into engine.Options.Trace.Objectives. Requests tagged with the tenant
// label (engine.GemmScaledFor / GemmResidentScaledFor) route into them.
// target and goal apply uniformly — a plan partitions resources, it does
// not rank tenants — and an empty windows list takes the reqtrace
// multi-window defaults.
func (p Plan) Objectives(target time.Duration, goal float64, windows ...time.Duration) []reqtrace.Objective {
	out := make([]reqtrace.Objective, 0, len(p.Assignments))
	for _, as := range p.Assignments {
		out = append(out, reqtrace.Objective{
			Name:    "tenant=" + as.Job.Name,
			Tenant:  as.Job.Name,
			Target:  target,
			Goal:    goal,
			Windows: windows,
		})
	}
	return out
}
