// Batched engine requests: one admission-queue slot, one executor lease, N
// multiplications. The paper's serving workload (DNN inference, Section 5)
// issues many uniform GEMMs against shared weights; dispatching them one by
// one pays admission, leasing and packing per call. GemmBatch classifies the
// whole batch once (by its widest call), admits it as a single request on
// that tier's core slice, leases one executor (or direct scratch) for the
// batch's lifetime, and streams the calls through core's batch loop, which
// carries shared-operand packed panels across calls. The flight recorder
// sees ONE record per batch, carrying the call count and the amortized
// per-call latency.
package engine

import (
	"fmt"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/obs/reqtrace"
)

// GemmBatch computes C[i] += A[i]×B[i] for every i as one engine request.
func GemmBatch[T matrix.Scalar](e *Engine, cs, as, bs []*matrix.Matrix[T]) (core.Stats, error) {
	return GemmBatchScaled(e, cs, as, bs, false, false, 1, 1)
}

// GemmBatchScaled computes C[i] = α·op(A[i])×op(B[i]) + β·C[i] for every i
// as one engine request: one admission, one lease, calls executed in order
// with results bit-exact to the equivalent sequence of GemmScaled calls.
// Transposes and scalars are batch-uniform. The batch dispatches on the
// tier of its widest call, so a ragged final batch never lands a too-large
// call on a too-small tier.
func GemmBatchScaled[T matrix.Scalar](e *Engine, cs, as, bs []*matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	return GemmBatchScaledFor(e, "", cs, as, bs, transA, transB, alpha, beta)
}

// GemmBatchScaledFor is GemmBatchScaled with a tenant label (see
// GemmScaledFor). The one-per-batch request record carries the label, the
// first call's dimensions, the call count and the amortized per-call
// latency.
func GemmBatchScaledFor[T matrix.Scalar](e *Engine, tenantLabel string, cs, as, bs []*matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	start := time.Now()
	rec := reqtrace.Record{
		ID:      e.trace.NextID(),
		StartNs: start.UnixNano(),
		Tenant:  tenantLabel,
		Outcome: reqtrace.OutcomeUnset,
	}
	st, err := gemmBatch(e, &rec, cs, as, bs, transA, transB, alpha, beta)
	e.finishRecord(&rec, start, st, err)
	return st, err
}

func gemmBatch[T matrix.Scalar](e *Engine, rec *reqtrace.Record, cs, as, bs []*matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	if len(cs) == 0 || len(as) != len(cs) || len(bs) != len(cs) {
		return core.Stats{}, fmt.Errorf("%w: len(C)=%d len(A)=%d len(B)=%d", core.ErrBatchShape, len(cs), len(as), len(bs))
	}
	rec.BatchCalls = int32(len(cs))
	elemBytes := int(unsafe.Sizeof(*new(T)))
	t := TierTiny
	for i := range cs {
		m, k := as[i].Rows, as[i].Cols
		if transA {
			m, k = k, m
		}
		kb, n := bs[i].Rows, bs[i].Cols
		if transB {
			kb, n = n, kb
		}
		if k != kb || cs[i].Rows != m || cs[i].Cols != n {
			return core.Stats{}, fmt.Errorf("engine: invalid GEMM dims in batch call %d: C[%dx%d] = op(A)[%dx%d] x op(B)[%dx%d]",
				i, cs[i].Rows, cs[i].Cols, m, k, kb, n)
		}
		if i == 0 {
			rec.M, rec.K, rec.N = int32(m), int32(k), int32(n)
		}
		// The batch holds its admission slot and lease for every call, so
		// dispatch must satisfy the *widest* call's cache arithmetic: tiers
		// are ordered by footprint and TierFor is monotone in it.
		if ct := e.TierFor(m, k, n, elemBytes); ct > t {
			t = ct
		}
	}
	rec.Tier = t.String()
	e.tierHits[t].Add(1)

	if t == TierTiny {
		return runDirect(e, rec, func(d *DirectScratch[T]) (core.Stats, error) {
			return d.GemmBatchScaled(cs, as, bs, transA, transB, alpha, beta)
		})
	}
	return runPooled(e, t, rec, func(ex *core.Executor[T]) (core.Stats, error) {
		return ex.GemmBatchScaled(cs, as, bs, transA, transB, alpha, beta)
	})
}

// StridedBatch describes a uniform batch whose operands sit at constant
// element strides in flat backing slices — the im2col / attention layout
// where call i reads A at offset i·StrideA and so on. A zero stride shares
// that operand across the whole batch (it is materialized as one matrix, so
// the batch path packs it once); C must always advance, and a non-zero
// stride must cover the operand so calls never alias.
type StridedBatch[T matrix.Scalar] struct {
	Count   int // number of GEMMs
	M, K, N int // per-call dims: C[M×N] = A[M×K] × B[K×N], no transposes

	C, A, B                   []T
	StrideC, StrideA, StrideB int // elements between consecutive calls; 0 shares the operand
}

// Matrices materializes the batch as per-call matrix views suitable for
// GemmBatchScaled. Shared (stride-0) operands come back as one *Matrix
// repeated Count times — the pointer identity the batch pack reuse keys on.
func (sb StridedBatch[T]) Matrices() (cs, as, bs []*matrix.Matrix[T], err error) {
	if sb.Count <= 0 || sb.M <= 0 || sb.K <= 0 || sb.N <= 0 {
		return nil, nil, nil, fmt.Errorf("engine: strided batch needs positive count and dims, got count=%d M=%d K=%d N=%d",
			sb.Count, sb.M, sb.K, sb.N)
	}
	if sb.StrideC == 0 {
		return nil, nil, nil, fmt.Errorf("engine: strided batch C operand cannot be shared (StrideC=0)")
	}
	if cs, err = stridedViews(sb.C, sb.M, sb.N, sb.StrideC, sb.Count, "C"); err != nil {
		return nil, nil, nil, err
	}
	if as, err = stridedViews(sb.A, sb.M, sb.K, sb.StrideA, sb.Count, "A"); err != nil {
		return nil, nil, nil, err
	}
	if bs, err = stridedViews(sb.B, sb.K, sb.N, sb.StrideB, sb.Count, "B"); err != nil {
		return nil, nil, nil, err
	}
	return cs, as, bs, nil
}

// stridedViews carves count rows×cols views out of data at the given stride.
func stridedViews[T matrix.Scalar](data []T, rows, cols, stride, count int, name string) ([]*matrix.Matrix[T], error) {
	size := rows * cols
	if stride == 0 {
		if len(data) < size {
			return nil, fmt.Errorf("engine: strided batch %s has %d elements, shared %dx%d needs %d", name, len(data), rows, cols, size)
		}
		shared := matrix.FromSlice(rows, cols, data[:size])
		views := make([]*matrix.Matrix[T], count)
		for i := range views {
			views[i] = shared
		}
		return views, nil
	}
	if stride < size {
		return nil, fmt.Errorf("engine: strided batch %s stride %d < %dx%d operand size %d (calls would alias)", name, stride, rows, cols, size)
	}
	if need := (count-1)*stride + size; len(data) < need {
		return nil, fmt.Errorf("engine: strided batch %s has %d elements, %d calls at stride %d need %d", name, len(data), count, stride, need)
	}
	views := make([]*matrix.Matrix[T], count)
	for i := range views {
		off := i * stride
		views[i] = matrix.FromSlice(rows, cols, data[off:off+size])
	}
	return views, nil
}

// GemmBatchStrided computes C[i] = α·A[i]×B[i] + β·C[i] over a strided
// batch layout as one engine request (see StridedBatch and GemmBatchScaled).
func GemmBatchStrided[T matrix.Scalar](e *Engine, sb StridedBatch[T], alpha, beta T) (core.Stats, error) {
	return GemmBatchStridedFor(e, "", sb, alpha, beta)
}

// GemmBatchStridedFor is GemmBatchStrided with a tenant label.
func GemmBatchStridedFor[T matrix.Scalar](e *Engine, tenantLabel string, sb StridedBatch[T], alpha, beta T) (core.Stats, error) {
	cs, as, bs, err := sb.Matrices()
	if err != nil {
		return core.Stats{}, err
	}
	return GemmBatchScaledFor(e, tenantLabel, cs, as, bs, false, false, alpha, beta)
}

// GemmBatchResident computes C[i] += op(A[i])×B_id for every i against the
// resident operand registered under id, as one engine request with the
// operand pinned once for the whole batch.
func GemmBatchResident[T matrix.Scalar](e *Engine, cs, as []*matrix.Matrix[T], id string) (core.Stats, error) {
	return GemmBatchResidentScaled(e, cs, as, id, false, 1, 1)
}

// GemmBatchResidentScaled is the full resident batch entry point:
// C[i] = α·op(A[i])×B_id + β·C[i]. The operand is pinned before the first
// call and released after the last — eviction cannot split a batch — and
// every call is served from the tier's pre-packed panels with no B packing.
func GemmBatchResidentScaled[T matrix.Scalar](e *Engine, cs, as []*matrix.Matrix[T], id string, transA bool, alpha, beta T) (core.Stats, error) {
	return GemmBatchResidentScaledFor(e, "", cs, as, id, transA, alpha, beta)
}

// GemmBatchResidentScaledFor is GemmBatchResidentScaled with a tenant label.
func GemmBatchResidentScaledFor[T matrix.Scalar](e *Engine, tenantLabel string, cs, as []*matrix.Matrix[T], id string, transA bool, alpha, beta T) (core.Stats, error) {
	start := time.Now()
	rec := reqtrace.Record{
		ID:         e.trace.NextID(),
		StartNs:    start.UnixNano(),
		Tenant:     tenantLabel,
		ResidentID: id,
		Outcome:    reqtrace.OutcomeUnset,
	}
	st, err := gemmBatchResident(e, &rec, cs, as, id, transA, alpha, beta)
	e.finishRecord(&rec, start, st, err)
	return st, err
}

func gemmBatchResident[T matrix.Scalar](e *Engine, rec *reqtrace.Record, cs, as []*matrix.Matrix[T], id string, transA bool, alpha, beta T) (core.Stats, error) {
	if e.closedFast.Load() {
		return core.Stats{}, ErrClosed
	}
	if len(cs) == 0 || len(as) != len(cs) {
		return core.Stats{}, fmt.Errorf("%w: len(C)=%d len(A)=%d", core.ErrBatchShape, len(cs), len(as))
	}
	rec.BatchCalls = int32(len(cs))
	h, err := acquireOperand[T](e, id)
	if err != nil {
		rec.Resident = reqtrace.ResidentMiss
		return core.Stats{}, err
	}
	rec.Resident = reqtrace.ResidentHit
	defer h.Release()
	op := h.op

	elemBytes := int(unsafe.Sizeof(*new(T)))
	t := TierTiny
	for i := range cs {
		m, k := as[i].Rows, as[i].Cols
		if transA {
			m, k = k, m
		}
		if k != op.k || cs[i].Rows != m || cs[i].Cols != op.n {
			return core.Stats{}, fmt.Errorf("engine: invalid GEMM dims in resident batch call %d: C[%dx%d] = op(A)[%dx%d] x residentB[%dx%d] (%q)",
				i, cs[i].Rows, cs[i].Cols, m, k, op.k, op.n, id)
		}
		if i == 0 {
			rec.M, rec.K, rec.N = int32(m), int32(k), int32(op.n)
		}
		if ct := e.TierFor(m, k, op.n, elemBytes); ct > t {
			t = ct
		}
	}
	// Same layout fall-through as the single-call resident path.
	if t == TierTiny && op.tiny == nil {
		t = TierSmall
	}
	if t == TierSmall && op.small == nil {
		t = TierLarge
	}
	rec.Tier = t.String()
	e.tierHits[t].Add(1)

	var st core.Stats
	if t == TierTiny {
		st, err = runDirect(e, rec, func(d *DirectScratch[T]) (core.Stats, error) {
			var agg core.Stats
			for i := range cs {
				cst, cerr := d.GemmResident(cs[i], as[i], op.tiny, op.k, op.n, transA, alpha, beta)
				if cerr != nil {
					return agg, fmt.Errorf("engine: resident batch call %d: %w", i, cerr)
				}
				agg.Add(cst)
			}
			agg.BatchCalls = len(cs)
			agg.SharedBPacks = len(cs) - 1
			return agg, nil
		})
	} else {
		rb := op.large
		if t == TierSmall {
			rb = op.small
		}
		st, err = runPooled(e, t, rec, func(ex *core.Executor[T]) (core.Stats, error) {
			return ex.GemmBatchResident(cs, as, rb, transA, alpha, beta)
		})
	}
	if err != nil {
		return st, err
	}
	e.resident.AccountAvoided(st.ResidentBElems * int64(elemBytes))
	return st, nil
}
