package engine

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/packing"
	"repro/internal/schedule"

	"repro/internal/core"
)

// DirectScratch is the tiny-GEMM fast path's working set: one packed panel
// per operand, a local C accumulator and a kernel edge tile. For problems
// whose whole footprint fits in L1 the CB-block machinery — block grids, the
// K-first schedule, pipeline slots, pool dispatch — costs more than the
// multiplication itself, so the direct path packs both operands once and
// runs the macro-kernel as a single mr×nr tile sweep on the calling
// goroutine.
//
// Numerically the path is the degenerate single-block CAKE execution: α is
// folded into the packed A panel, C accumulates into a zeroed local buffer
// and is added back once, and the per-element reduction runs k-ascending
// inside the microkernel — bit-identical to core.Gemm with an undivided K
// dimension (KC ≥ k) and the same register tile.
type DirectScratch[T matrix.Scalar] struct {
	kern    kernel.Kernel[T]
	packA   []T
	packB   []T
	bufC    []T
	scratch *kernel.Scratch[T]
}

// NewDirectScratch returns a direct-path working set for the given register
// tile. Buffers grow on demand and are retained across calls.
func NewDirectScratch[T matrix.Scalar](mr, nr int) *DirectScratch[T] {
	k := kernel.Best[T](mr, nr)
	return &DirectScratch[T]{kern: k, scratch: kernel.NewScratch[T](mr, nr)}
}

// Kernel returns the register tile the scratch packs for.
func (d *DirectScratch[T]) Kernel() kernel.Kernel[T] { return d.kern }

// GemmScaled computes C = α·op(A)×op(B) + β·C without blocking or worker
// dispatch: pack A (α folded) and B whole, zero a local accumulator, run one
// macro-kernel sweep with kc = k, add back into C.
func (d *DirectScratch[T]) GemmScaled(c, a, b *matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if transB {
		kb, n = n, kb
	}
	if k != kb || c.Rows != m || c.Cols != n {
		return core.Stats{}, fmt.Errorf("engine: invalid GEMM dims C[%dx%d] = op(A)[%dx%d] x op(B)[%dx%d]",
			c.Rows, c.Cols, m, k, kb, n)
	}
	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}
	if alpha == 0 {
		return core.Stats{}, nil
	}

	t0 := time.Now()
	needA := packing.PackedASize(m, k, d.kern.MR)
	needB := packing.PackedBSize(k, n, d.kern.NR)
	needC := m * n
	if cap(d.packA) < needA {
		d.packA = make([]T, needA)
	}
	if cap(d.packB) < needB {
		d.packB = make([]T, needB)
	}
	if cap(d.bufC) < needC {
		d.bufC = make([]T, needC)
	}
	var ap, bp []T
	if transA {
		ap = packing.PackAT(d.packA[:needA], a, d.kern.MR, alpha)
	} else {
		ap = packing.PackA(d.packA[:needA], a, d.kern.MR, alpha)
	}
	if transB {
		bp = packing.PackBT(d.packB[:needB], b, d.kern.NR)
	} else {
		bp = packing.PackB(d.packB[:needB], b, d.kern.NR)
	}
	cBlock := matrix.FromSlice(m, n, d.bufC[:needC])
	cBlock.Zero()
	packNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	packing.Macro(d.kern, k, ap, bp, cBlock, d.scratch)
	computeNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	packing.AddInto(c, cBlock)
	packNs += time.Since(t0).Nanoseconds()

	return core.Stats{
		Grid:         schedule.Dims{Mb: 1, Nb: 1, Kb: 1},
		Blocks:       1,
		PackedAElems: int64(m) * int64(k),
		PackedBElems: int64(k) * int64(n),
		UnpackCElems: int64(m) * int64(n),
		PackNanos:    packNs,
		ComputeNanos: computeNs,
	}, nil
}

// GemmBatchScaled computes C[i] = α·op(A[i])×op(B[i]) + β·C[i] for every i
// on the calling goroutine — the tiny tier's batch loop. All dimensions are
// validated before any call mutates its C. When consecutive calls share a B
// operand (pointer equality) the panel packed for the predecessor is served
// straight from d.packB via the resident entry point, skipping the repack;
// the skipped traffic is re-bucketed into ReusedBElems (batch-local panel
// reuse, not cross-request residency) and counted in SharedBPacks. Results
// are bit-exact with the equivalent sequence of GemmScaled calls: the packed
// panel bytes are identical, and the tile sweep is shared code.
func (d *DirectScratch[T]) GemmBatchScaled(cs, as, bs []*matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	if len(cs) == 0 || len(as) != len(cs) || len(bs) != len(cs) {
		return core.Stats{}, fmt.Errorf("%w: len(C)=%d len(A)=%d len(B)=%d", core.ErrBatchShape, len(cs), len(as), len(bs))
	}
	type bDims struct{ k, n int }
	dims := make([]bDims, len(cs))
	for i := range cs {
		m, k := as[i].Rows, as[i].Cols
		if transA {
			m, k = k, m
		}
		kb, n := bs[i].Rows, bs[i].Cols
		if transB {
			kb, n = n, kb
		}
		if k != kb || cs[i].Rows != m || cs[i].Cols != n {
			return core.Stats{}, fmt.Errorf("engine: invalid GEMM dims in batch call %d: C[%dx%d] = op(A)[%dx%d] x op(B)[%dx%d]",
				i, cs[i].Rows, cs[i].Cols, m, k, kb, n)
		}
		dims[i] = bDims{k, n}
	}
	var agg core.Stats
	packedB := false // d.packB holds call i−1's packed B panel
	for i := range cs {
		var st core.Stats
		var err error
		if i > 0 && bs[i] == bs[i-1] && packedB {
			need := packing.PackedBSize(dims[i].k, dims[i].n, d.kern.NR)
			st, err = d.GemmResident(cs[i], as[i], d.packB[:need], dims[i].k, dims[i].n, transA, alpha, beta)
			st.ReusedBElems += st.ResidentBElems
			st.ResidentBElems = 0
			agg.SharedBPacks++
		} else {
			st, err = d.GemmScaled(cs[i], as[i], bs[i], transA, transB, alpha, beta)
			packedB = err == nil && alpha != 0 // α = 0 returns before packing
		}
		if err != nil {
			return agg, fmt.Errorf("engine: batch call %d: %w", i, err)
		}
		agg.Add(st)
	}
	agg.BatchCalls = len(cs)
	return agg, nil
}

// GemmResident computes C = α·op(A)×B + β·C where bp holds the whole k×n B
// operand already packed in d.Kernel().NR-column panels — the tiny tier's
// resident layout (see engine.RegisterB). The B pack is skipped entirely;
// everything else matches GemmScaled, so results are bit-exact with the
// fresh-pack path.
func (d *DirectScratch[T]) GemmResident(c, a *matrix.Matrix[T], bp []T, k, n int, transA bool, alpha, beta T) (core.Stats, error) {
	m, ka := a.Rows, a.Cols
	if transA {
		m, ka = ka, m
	}
	if ka != k || c.Rows != m || c.Cols != n {
		return core.Stats{}, fmt.Errorf("engine: invalid GEMM dims C[%dx%d] = op(A)[%dx%d] x residentB[%dx%d]",
			c.Rows, c.Cols, m, ka, k, n)
	}
	if need := packing.PackedBSize(k, n, d.kern.NR); len(bp) < need {
		return core.Stats{}, fmt.Errorf("engine: resident B panel has %d elements, %dx%d needs %d", len(bp), k, n, need)
	}
	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}
	if alpha == 0 {
		return core.Stats{}, nil
	}

	t0 := time.Now()
	needA := packing.PackedASize(m, k, d.kern.MR)
	needC := m * n
	if cap(d.packA) < needA {
		d.packA = make([]T, needA)
	}
	if cap(d.bufC) < needC {
		d.bufC = make([]T, needC)
	}
	var ap []T
	if transA {
		ap = packing.PackAT(d.packA[:needA], a, d.kern.MR, alpha)
	} else {
		ap = packing.PackA(d.packA[:needA], a, d.kern.MR, alpha)
	}
	cBlock := matrix.FromSlice(m, n, d.bufC[:needC])
	cBlock.Zero()
	packNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	packing.Macro(d.kern, k, ap, bp, cBlock, d.scratch)
	computeNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	packing.AddInto(c, cBlock)
	packNs += time.Since(t0).Nanoseconds()

	return core.Stats{
		Grid:           schedule.Dims{Mb: 1, Nb: 1, Kb: 1},
		Blocks:         1,
		PackedAElems:   int64(m) * int64(k),
		ResidentBElems: int64(k) * int64(n),
		UnpackCElems:   int64(m) * int64(n),
		PackNanos:      packNs,
		ComputeNanos:   computeNs,
	}, nil
}
