package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/platform"
)

// testPlatform has deliberately small caches so every tier is reachable
// with test-sized matrices: tiny ≤ 8 KB total footprint, small ≤ 256 KB
// working set, large beyond.
func testPlatform(cores int) *platform.Platform {
	return &platform.Platform{
		Name:          "engine-test",
		Cores:         cores,
		L1Bytes:       8 << 10,
		L2Bytes:       64 << 10,
		LLCBytes:      256 << 10,
		DRAMBytes:     1 << 30,
		DRAMBW:        25e9,
		ClockHz:       3e9,
		FlopsPerCycle: 4,
		Internal:      platform.BWCurve{SlopePre: 40e9, Knee: 8, SlopePost: 15e9},
		LatL1:         4, LatL2: 12, LatLLC: 40, LatDRAM: 200,
		DemandOverlap: 0.95,
		HasL3:         true,
	}
}

func newTestEngine(t *testing.T, cores int, opts Options) *Engine {
	t.Helper()
	if opts.Platform == nil {
		opts.Platform = testPlatform(cores)
	}
	if opts.Name == "" {
		opts.Name = "test-" + t.Name()
	}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestTierForThresholds(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	// 16×16×16 f32: 3·16²·4 = 3 KB ≤ 8 KB L1.
	if tier := e.TierFor(16, 16, 16, 4); tier != TierTiny {
		t.Fatalf("16³ = %v, want tiny", tier)
	}
	// 64×64×64 f32: footprint 48 KB > L1, working set 5·64²·4 = 80 KB ≤ 256 KB.
	if tier := e.TierFor(64, 64, 64, 4); tier != TierSmall {
		t.Fatalf("64³ = %v, want small", tier)
	}
	// 256×256×256 f32: working set 5·256²·4 = 1.25 MB > 256 KB.
	if tier := e.TierFor(256, 256, 256, 4); tier != TierLarge {
		t.Fatalf("256³ = %v, want large", tier)
	}
	// Element size moves the boundary: 16³ f64 is 6 KB (tiny), 24³ f64 is
	// 13.5 KB (beyond L1).
	if tier := e.TierFor(16, 16, 16, 8); tier != TierTiny {
		t.Fatalf("16³ f64 = %v, want tiny", tier)
	}
	if tier := e.TierFor(24, 24, 24, 8); tier == TierTiny {
		t.Fatal("24³ f64 classified tiny, footprint exceeds L1")
	}
}

func TestEngineOracleAllTiers(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	rng := rand.New(rand.NewSource(10))
	for _, sh := range [][3]int{{16, 16, 16}, {64, 48, 80}, {200, 160, 220}} {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := matrix.New[float32](m, k), matrix.New[float32](k, n)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float32](m, n)
		if _, err := Gemm(e, c, a, b); err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		want := matrix.New[float32](m, n)
		matrix.NaiveGemm(want, a, b)
		if !c.AlmostEqual(want, k, 1e-4) {
			t.Fatalf("%v: engine result wrong (max diff %g)", sh, c.MaxAbsDiff(want))
		}
	}
}

// TestEngineConcurrentBitExact is the acceptance oracle: many goroutines
// hammer the engine with mixed-size problems and every result must be
// bit-exact against a sequential executor running the same tier config
// (same config ⇒ same block split ⇒ same floating-point reduction order).
// Run under -race this also proves lease isolation.
func TestEngineConcurrentBitExact(t *testing.T) {
	e := newTestEngine(t, 4, Options{})
	rng := rand.New(rand.NewSource(11))
	type problem struct {
		a, b, want *matrix.Matrix[float32]
	}
	shapes := [][3]int{{12, 12, 12}, {16, 8, 16}, {64, 64, 64}, {72, 40, 64}, {192, 128, 176}}
	probs := make([]problem, len(shapes))
	for i, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		p := problem{a: matrix.New[float32](m, k), b: matrix.New[float32](k, n), want: matrix.New[float32](m, n)}
		p.a.Randomize(rng)
		p.b.Randomize(rng)
		// Sequential oracle with the exact tier config the engine will use.
		tier := e.TierFor(m, k, n, 4)
		if tier == TierTiny {
			d := NewDirectScratch[float32](8, 8)
			if _, err := d.GemmScaled(p.want, p.a, p.b, false, false, 1, 1); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := core.Gemm(p.want, p.a, p.b, e.TierConfig(tier, 4)); err != nil {
				t.Fatal(err)
			}
		}
		probs[i] = p
	}

	const goroutines, iters = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := probs[(g+i)%len(probs)]
				c := matrix.New[float32](p.want.Rows, p.want.Cols)
				if _, err := Gemm(e, c, p.a, p.b); err != nil {
					errs <- err
					return
				}
				if !c.Equal(p.want) {
					errs <- errors.New("concurrent engine result not bit-exact vs sequential oracle")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st := e.Counters()
	if st.TierTiny == 0 || st.TierSmall == 0 || st.TierLarge == 0 {
		t.Fatalf("all tiers should have been hit: %+v", st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}
}

func TestEngineLeaseReuse(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	rng := rand.New(rand.NewSource(12))
	a, b := matrix.New[float32](64, 64), matrix.New[float32](64, 64)
	a.Randomize(rng)
	b.Randomize(rng)
	for i := 0; i < 8; i++ {
		c := matrix.New[float32](64, 64)
		if _, err := Gemm(e, c, a, b); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Counters()
	if st.LeaseReused < 1 {
		t.Fatalf("sequential calls never reused a lease: %+v", st)
	}
	if st.LeaseNew < 1 {
		t.Fatalf("first call should have constructed an executor: %+v", st)
	}
}

func TestEngineAdmissionFIFOAndCounts(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	// Take the whole machine, then queue two waiters; they must be granted
	// in submission order when capacity frees up.
	if err := e.acquire(2); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := e.acquire(1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
		}(i)
		// Deterministic queue order: wait until this waiter is enqueued.
		for {
			e.mu.Lock()
			n := len(e.waiters)
			e.mu.Unlock()
			if n >= i {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if got := e.Counters().Queued; got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}
	// Free one core at a time so grants are observable one by one.
	e.release(1)
	if first := <-order; first != 1 {
		t.Fatalf("FIFO violated: waiter %d granted first", first)
	}
	e.release(1)
	if second := <-order; second != 2 {
		t.Fatalf("FIFO violated: waiter %d granted second", second)
	}
	wg.Wait()
	e.release(1)
	e.release(1)
	st := e.Counters()
	if st.QueuedTotal != 2 || st.Queued != 0 {
		t.Fatalf("queue counters wrong: %+v", st)
	}
}

func TestEngineMaxQueueSaturation(t *testing.T) {
	e := newTestEngine(t, 1, Options{MaxQueue: 1})
	if err := e.acquire(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.acquire(1) }()
	for {
		e.mu.Lock()
		n := len(e.waiters)
		e.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.acquire(1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-queue acquire = %v, want ErrSaturated", err)
	}
	if got := e.Counters().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	e.release(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.release(1)
}

func TestEngineCloseDrainsWaiters(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	if err := e.acquire(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.acquire(1) }()
	for {
		e.mu.Lock()
		n := len(e.waiters)
		e.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter got %v, want ErrClosed", err)
	}
	rng := rand.New(rand.NewSource(13))
	a := matrix.New[float32](8, 8)
	a.Randomize(rng)
	if _, err := Gemm(e, matrix.New[float32](8, 8), a, a); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Gemm = %v, want ErrClosed", err)
	}
}

func TestEngineDimMismatch(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	_, err := Gemm(e, matrix.New[float32](2, 2), matrix.New[float32](2, 3), matrix.New[float32](4, 2))
	if err == nil {
		t.Fatal("dimension mismatch not reported")
	}
	if st := e.Counters(); st.TierTiny+st.TierSmall+st.TierLarge != 0 {
		t.Fatalf("invalid request counted as a dispatch: %+v", st)
	}
}

func TestEngineFloat64(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	rng := rand.New(rand.NewSource(14))
	a, b := matrix.New[float64](48, 32), matrix.New[float64](32, 56)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float64](48, 56)
	if _, err := GemmT(e, c, a.Transpose(), b, true, false); err != nil {
		t.Fatal(err)
	}
	want := matrix.New[float64](48, 56)
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, 32, 1e-12) {
		t.Fatal("float64 engine GemmT wrong")
	}
}
