// Package engine is the process-wide concurrent GEMM front end. The paper's
// §4.3 observation — CB blocks let p cores serve q simultaneous
// multiplications by partitioning cores, without inflating DRAM traffic —
// becomes a serving layer here:
//
//   - Size-tiered dispatch. A problem is classified against the platform's
//     cache sizes: tiny GEMMs (whole footprint in L1) skip packing ceremony
//     and block scheduling entirely via the direct microkernel path; small
//     ones (§4.3 LRU rule C + 2(A+B) ≤ LLC) run as a single cache-resident
//     CB block; everything else takes the full pipelined CAKE executor.
//   - Executor leasing. core.Executor is single-flight (its packing buffers
//     are per-call state), so the engine leases one executor per in-flight
//     request from a per-tier sync.Pool cache. Leased executors share the
//     engine's one worker pool and own no goroutines, so the GC can drop
//     cold cache entries freely.
//   - Core partitioning with admission queueing. Each pool-using tier
//     (small, large) demands a core slice computed by tenant.SplitCores
//     over the tier work weights — the §4.3 static partition — and a
//     weighted FIFO semaphore admits requests while demand fits the
//     machine, queueing (or rejecting, past MaxQueue) the rest. Tiny
//     requests run on their caller's goroutine, hold no pool cores and
//     skip admission.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/engine/resident"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/tenant"
)

// Tier is a problem-size class with its own dispatch path.
type Tier int

const (
	// TierTiny fits A, B and C in L1 together: direct microkernel path.
	TierTiny Tier = iota
	// TierSmall passes the §4.3 LRU rule against the LLC: one CB block.
	TierSmall
	// TierLarge is everything else: full pipelined CAKE.
	TierLarge
	tierCount
)

func (t Tier) String() string {
	switch t {
	case TierTiny:
		return "tiny"
	case TierSmall:
		return "small"
	case TierLarge:
		return "large"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// tierWeights are the relative core demands of the pool-using tiers (small,
// large) for the §4.3 partition; SplitCores turns them into per-tier core
// slices. The tiny tier is absent on purpose: its direct path runs entirely
// on the calling goroutine and never dispatches to the shared worker pool,
// so it holds zero pool cores and bypasses admission — a tiny GEMM is a few
// microseconds of register-tile arithmetic, and queueing it behind
// multi-millisecond CB-block runs would invert the latency story the tier
// exists for.
var tierWeights = []float64{2, 4}

var (
	// ErrSaturated is returned when admission would exceed Options.MaxQueue.
	ErrSaturated = errors.New("engine: admission queue full")
	// ErrClosed is returned for requests after Close.
	ErrClosed = errors.New("engine: closed")
)

// Options configures NewEngine.
type Options struct {
	// Platform supplies cache sizes for tier thresholds and planning. Nil
	// detects the host (platform.DetectHost) with GOMAXPROCS cores.
	Platform *platform.Platform
	// Name labels the engine in obs metrics. Default "default".
	Name string
	// MaxQueue bounds the admission queue; a request arriving with MaxQueue
	// waiters already queued fails with ErrSaturated. 0 means unbounded.
	MaxQueue int
	// LargePanelSlots is the pipelined executor's panel cache size for the
	// large tier (see core.WithPanelCache). 0 keeps the ping-pong default.
	LargePanelSlots int
	// ResidentBudgetBytes bounds the resident-operand store (RegisterB):
	// packed weight panels are kept under this many bytes with strict LRU
	// eviction of unpinned operands. 0 means DefaultResidentBudget; negative
	// disables the budget (nothing is ever evicted).
	ResidentBudgetBytes int64
	// Trace configures the request-lifecycle observability layer (flight
	// recorder ring, anomaly snapshots, SLO objectives). The zero value
	// enables it with defaults; set Trace.Disable to run without it.
	Trace reqtrace.Options
}

// tierSpec is one tier's static slice of the machine: its core demand and
// the CAKE configs planned for that slice (per scalar type, since element
// size changes the cache arithmetic).
type tierSpec struct {
	cores int
	cfg32 core.Config
	cfg64 core.Config
}

// typedCaches holds the per-scalar-type executor leases. Direct scratches
// are pooled separately: the tiny tier leases a working set, not an
// executor.
type typedCaches[T matrix.Scalar] struct {
	execs  [tierCount]sync.Pool // of *core.Executor[T]
	direct sync.Pool            // of *DirectScratch[T]
}

// waiter is one queued admission request.
type waiter struct {
	cores int
	ready chan struct{}
	err   error
}

// Engine serves concurrent GEMMs over one shared worker pool.
type Engine struct {
	name       string
	pl         *platform.Platform
	pool       *pool.Pool
	tiers      [tierCount]tierSpec
	panelSlots int             // large-tier panel cache (core.WithPanelCache), set once at construction
	resident   *resident.Store // cross-request pre-packed operands (RegisterB)
	trace      *reqtrace.Tracer

	mu       sync.Mutex
	free     int
	waiters  []*waiter
	maxQueue int
	closed   bool
	// closedFast mirrors closed for paths that never take mu (tiny tier).
	closedFast atomic.Bool

	f32 typedCaches[float32]
	f64 typedCaches[float64]

	inFlight    atomic.Int64
	queued      atomic.Int64
	queuedTotal atomic.Int64
	rejected    atomic.Int64
	tierHits    [tierCount]atomic.Int64
	leaseNew    atomic.Int64
	leaseReused atomic.Int64
}

// NewEngine builds an engine for the platform: plans per-tier configs on
// proportional platform slices, starts the shared pool, and publishes the
// engine's counters under the obs "cake_engine" expvar.
func NewEngine(opts Options) (*Engine, error) {
	pl := opts.Platform
	if pl == nil {
		pl = platform.DetectHost(runtime.GOMAXPROCS(0))
	}
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	name := opts.Name
	if name == "" {
		name = "default"
	}
	e := &Engine{
		name:     name,
		pl:       pl,
		free:     pl.Cores,
		maxQueue: opts.MaxQueue,
	}

	// §4.3 static partition: per-tier core demands from the work weights,
	// clamped to the machine (SplitCores floors every class at one core, so
	// on small machines the demands sum above Cores and admission arbitrates).
	// The tiny tier demands zero pool cores — its direct path runs on the
	// calling goroutine (see tierWeights).
	split := tenant.SplitCores(pl.Cores, tierWeights)
	demands := [tierCount]int{TierTiny: 0, TierSmall: split[0], TierLarge: split[1]}
	for t := Tier(0); t < tierCount; t++ {
		cores := min(demands[t], pl.Cores)
		spec := tierSpec{cores: cores}
		if t == TierTiny {
			// No executor config: the direct path has no CB geometry.
			e.tiers[t] = spec
			continue
		}
		// Plan against the tier's slice of the machine: its cores and a
		// proportional LLC share, so each slice runs CAKE at its own
		// constant bandwidth (Section 4.3).
		slice := *pl
		slice.Cores = cores
		slice.LLCBytes = max(pl.LLCBytes*int64(cores)/int64(pl.Cores), 64<<10)
		m, k, n := tierPlanShape(t, &slice)
		var err error
		if spec.cfg32, err = core.Plan(&slice, m, k, n, 4); err != nil {
			return nil, fmt.Errorf("engine: plan %s/f32: %w", t, err)
		}
		if spec.cfg64, err = core.Plan(&slice, m, k, n, 8); err != nil {
			return nil, fmt.Errorf("engine: plan %s/f64: %w", t, err)
		}
		e.tiers[t] = spec
	}
	e.panelSlots = opts.LargePanelSlots

	budget := opts.ResidentBudgetBytes
	if budget == 0 {
		budget = DefaultResidentBudget
	}
	if budget < 0 {
		budget = 0 // store treats ≤0 as unlimited
	}
	e.resident = resident.New(budget)

	e.pool = pool.New(pl.Cores)
	e.trace = reqtrace.New(name, opts.Trace)
	reqtrace.Publish(e.trace)
	e.resident.SetEvictHook(func(id string, bytes int64) {
		reqtrace.L().Info("resident operand evicted",
			"engine", name, "operand", id, "bytes", bytes)
	})
	obs.PublishEngine(name, e.Counters)
	obs.PublishResident(name, func() obs.ResidentStats {
		return residentStatsFor(e.resident.Stats())
	})
	reqtrace.L().Info("engine started",
		"engine", name, "cores", pl.Cores,
		"small_cores", e.tiers[TierSmall].cores, "large_cores", e.tiers[TierLarge].cores,
		"max_queue", opts.MaxQueue, "trace", e.trace != nil)
	return e, nil
}

// Tracer returns the engine's request-lifecycle tracer (nil when Options
// disabled it). Tests and hosts use it to read the flight recorder and SLO
// state directly; the debug endpoints reach it through reqtrace.Publish.
func (e *Engine) Tracer() *reqtrace.Tracer { return e.trace }

// tierPlanShape picks the representative problem each tier's config is
// planned for: tiny never plans (direct path), small uses the largest shape
// that still passes the tier's cache test, large uses a deep canonical
// square so KC and α settle at their asymptotic values.
func tierPlanShape(t Tier, pl *platform.Platform) (m, k, n int) {
	switch t {
	case TierSmall:
		// m=n=k=s with footprint (1+2·2)·s²·elem ≤ LLC → s = sqrt(LLC/(5·4)).
		s := 32
		for s*s*20 < int(pl.LLCBytes) {
			s += 16
		}
		return s, s, s
	default:
		return 4096, 4096, 4096
	}
}

// TierFor classifies a problem by its cache footprint in bytes-per-element
// terms: tiny when all three operands fit in L1 together, small when the
// §4.3 LRU working set C + 2(A+B) fits the LLC, large otherwise.
func (e *Engine) TierFor(m, k, n, elemBytes int) Tier {
	a := int64(m) * int64(k) * int64(elemBytes)
	b := int64(k) * int64(n) * int64(elemBytes)
	c := int64(m) * int64(n) * int64(elemBytes)
	if a+b+c <= e.pl.L1Bytes {
		return TierTiny
	}
	if c+2*(a+b) <= e.pl.LLCBytes {
		return TierSmall
	}
	return TierLarge
}

// TierConfig exposes the CAKE config a tier's leased executors run with —
// oracle tests replay the same config on a sequential executor to check the
// engine bit-exactly. The tiny tier has no config (direct path); it returns
// the small tier's.
func (e *Engine) TierConfig(t Tier, elemBytes int) core.Config {
	if t == TierTiny {
		t = TierSmall
	}
	if elemBytes == 8 {
		return e.tiers[t].cfg64
	}
	return e.tiers[t].cfg32
}

// TierCores returns the §4.3 core slice a tier's requests are admitted with.
func (e *Engine) TierCores(t Tier) int { return e.tiers[t].cores }

// Counters snapshots the engine's serving counters.
func (e *Engine) Counters() obs.EngineStats {
	return obs.EngineStats{
		InFlight:    e.inFlight.Load(),
		Queued:      e.queued.Load(),
		QueuedTotal: e.queuedTotal.Load(),
		Rejected:    e.rejected.Load(),
		TierTiny:    e.tierHits[TierTiny].Load(),
		TierSmall:   e.tierHits[TierSmall].Load(),
		TierLarge:   e.tierHits[TierLarge].Load(),
		LeaseNew:    e.leaseNew.Load(),
		LeaseReused: e.leaseReused.Load(),
	}
}

// acquire admits a request demanding n cores: immediate when the cores are
// free and nobody is queued ahead (FIFO — no starvation of wide requests by
// narrow ones), otherwise the caller waits its turn.
func (e *Engine) acquire(n int) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if len(e.waiters) == 0 && e.free >= n {
		e.free -= n
		e.mu.Unlock()
		return nil
	}
	if e.maxQueue > 0 && len(e.waiters) >= e.maxQueue {
		e.mu.Unlock()
		e.rejected.Add(1)
		return ErrSaturated
	}
	w := &waiter{cores: n, ready: make(chan struct{})}
	e.waiters = append(e.waiters, w)
	e.queued.Store(int64(len(e.waiters)))
	e.queuedTotal.Add(1)
	e.mu.Unlock()
	<-w.ready
	return w.err
}

// release returns n cores and grants queued waiters in FIFO order while
// they fit. Granting stops at the first waiter that does not fit, which is
// what keeps wide (large-tier) requests from starving behind a stream of
// narrow ones.
func (e *Engine) release(n int) {
	e.mu.Lock()
	e.free += n
	var grant []*waiter
	for len(e.waiters) > 0 && e.free >= e.waiters[0].cores {
		w := e.waiters[0]
		e.waiters = e.waiters[1:]
		e.free -= w.cores
		grant = append(grant, w)
	}
	e.queued.Store(int64(len(e.waiters)))
	e.mu.Unlock()
	for _, w := range grant {
		close(w.ready)
	}
}

// Close drains admission: queued waiters fail with ErrClosed, the resident
// store frees its packed panels (entries pinned by in-flight GEMMs free at
// their last unpin — a server reload cycle cannot leak weight memory), and
// the shared pool shuts down. In-flight calls finish normally.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.closedFast.Store(true)
	ws := e.waiters
	e.waiters = nil
	e.queued.Store(0)
	e.mu.Unlock()
	for _, w := range ws {
		w.err = ErrClosed
		close(w.ready)
	}
	e.resident.Close()
	e.pool.Close()
	reqtrace.L().Info("engine closed", "engine", e.name, "drained_waiters", len(ws))
}

// cachesOf selects the engine's lease caches for the scalar type.
func cachesOf[T matrix.Scalar](e *Engine) *typedCaches[T] {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return any(&e.f32).(*typedCaches[T])
	}
	return any(&e.f64).(*typedCaches[T])
}

// leaseExecutor takes a tier executor from the cache or builds one on the
// engine's shared pool (so leased executors own no goroutines and cold
// cache entries can be dropped by the GC without leaking workers). The
// reused result reports whether the lease came warm from the pool (the
// request record carries it). Callers own the lease: Put it back on
// success, Close it on failure.
//
//cake:lease
func leaseExecutor[T matrix.Scalar](e *Engine, t Tier) (ex *core.Executor[T], reused bool, err error) {
	tc := cachesOf[T](e)
	if v := tc.execs[t].Get(); v != nil {
		e.leaseReused.Add(1)
		return v.(*core.Executor[T]), true, nil
	}
	e.leaseNew.Add(1)
	cfg := e.TierConfig(t, int(unsafe.Sizeof(*new(T))))
	var opts []core.Option
	if t == TierLarge && e.panelSlots > 0 {
		opts = append(opts, core.WithPanelCache(e.panelSlots))
	}
	ex, err = core.NewExecutor[T](cfg, e.pool, opts...)
	return ex, false, err
}

// Gemm computes C += A×B through the engine.
func Gemm[T matrix.Scalar](e *Engine, c, a, b *matrix.Matrix[T]) (core.Stats, error) {
	return GemmScaled(e, c, a, b, false, false, 1, 1)
}

// GemmT computes C += op(A)×op(B) with per-operand transposes.
func GemmT[T matrix.Scalar](e *Engine, c, a, b *matrix.Matrix[T], transA, transB bool) (core.Stats, error) {
	return GemmScaled(e, c, a, b, transA, transB, 1, 1)
}

// GemmScaled is the engine's full entry point: classify the problem, admit
// it against the core partition, run it down its tier's path on leased
// state. Safe for any number of concurrent callers.
func GemmScaled[T matrix.Scalar](e *Engine, c, a, b *matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	return GemmScaledFor(e, "", c, a, b, transA, transB, alpha, beta)
}

// GemmScaledFor is GemmScaled with a tenant label: the label rides on the
// request record and routes the request into any per-tenant SLO objectives
// declared in Options.Trace. An empty label is the anonymous tenant.
func GemmScaledFor[T matrix.Scalar](e *Engine, tenantLabel string, c, a, b *matrix.Matrix[T], transA, transB bool, alpha, beta T) (core.Stats, error) {
	start := time.Now()
	rec := reqtrace.Record{
		ID:      e.trace.NextID(),
		StartNs: start.UnixNano(),
		Tenant:  tenantLabel,
		Outcome: reqtrace.OutcomeUnset,
	}
	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if transB {
		kb, n = n, kb
	}
	if k != kb || c.Rows != m || c.Cols != n {
		err := fmt.Errorf("engine: invalid GEMM dims C[%dx%d] = op(A)[%dx%d] x op(B)[%dx%d]",
			c.Rows, c.Cols, m, k, kb, n)
		e.finishRecord(&rec, start, core.Stats{}, err)
		return core.Stats{}, err
	}
	rec.M, rec.K, rec.N = int32(m), int32(k), int32(n)
	elemBytes := int(unsafe.Sizeof(*new(T)))
	t := e.TierFor(m, k, n, elemBytes)
	rec.Tier = t.String()
	e.tierHits[t].Add(1)

	var st core.Stats
	var err error
	if t == TierTiny {
		st, err = runDirect(e, &rec, func(d *DirectScratch[T]) (core.Stats, error) {
			return d.GemmScaled(c, a, b, transA, transB, alpha, beta)
		})
	} else {
		st, err = runPooled(e, t, &rec, func(ex *core.Executor[T]) (core.Stats, error) {
			return ex.GemmScaled(c, a, b, transA, transB, alpha, beta)
		})
	}
	e.finishRecord(&rec, start, st, err)
	return st, err
}

// outcomeOf maps an engine error onto the record's outcome class.
func outcomeOf(err error) reqtrace.Outcome {
	switch {
	case err == nil:
		return reqtrace.OutcomeOK
	case errors.Is(err, ErrSaturated):
		return reqtrace.OutcomeSaturated
	case errors.Is(err, ErrClosed):
		return reqtrace.OutcomeClosed
	case errors.Is(err, resident.ErrOperandEvicted):
		return reqtrace.OutcomeEvicted
	default:
		return reqtrace.OutcomeError
	}
}

// finishRecord stamps the terminal fields (duration, phase times, outcome)
// and commits the record to the flight recorder. One call per engine
// request, on every exit path.
func (e *Engine) finishRecord(rec *reqtrace.Record, start time.Time, st core.Stats, err error) {
	rec.DurNs = time.Since(start).Nanoseconds()
	rec.PackNs = st.PackNanos
	rec.ComputeNs = st.ComputeNanos
	if st.BatchCalls > 0 {
		rec.BatchCalls = int32(st.BatchCalls)
		rec.AmortNs = rec.DurNs / int64(st.BatchCalls)
	}
	rec.Outcome = outcomeOf(err)
	if err != nil {
		rec.Err = err.Error()
	}
	e.trace.Finish(*rec)
}

// directTileDim is the register tile the tiny tier's direct path runs with
// (kernel.Best picks the implementation); the resident store packs its
// tiny-tier panels for the same tile.
const directTileDim = 8

// runDirect leases a DirectScratch and runs fn on the calling goroutine —
// the tiny tier. The direct path never touches the shared worker pool, so it
// holds no core slice and skips admission entirely: queueing a few
// microseconds of register-tile work behind multi-millisecond CB runs would
// defeat the tier. rec picks up the lease provenance; admission fields stay
// zero (the tier never queues).
func runDirect[T matrix.Scalar](e *Engine, rec *reqtrace.Record, fn func(d *DirectScratch[T]) (core.Stats, error)) (core.Stats, error) {
	if e.closedFast.Load() {
		return core.Stats{}, ErrClosed
	}
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	tc := cachesOf[T](e)
	var d *DirectScratch[T]
	if v := tc.direct.Get(); v != nil {
		e.leaseReused.Add(1)
		rec.Lease = reqtrace.LeaseReused
		d = v.(*DirectScratch[T])
	} else {
		e.leaseNew.Add(1)
		rec.Lease = reqtrace.LeaseNew
		d = NewDirectScratch[T](directTileDim, directTileDim)
	}
	// Return the scratch on every exit, error and panic paths included:
	// DirectScratch keeps no cross-call state (its tiles are fully
	// overwritten on the next use), so even a failed run leaves it safe
	// to reuse, and dropping it would forfeit the warmed buffers the
	// lease cache exists to keep.
	defer tc.direct.Put(d)
	st, err := fn(d)
	if err != nil {
		return st, err
	}
	elem := int64(unsafe.Sizeof(*new(T)))
	obs.AccountGemm("cake", st.Blocks,
		(st.PackedAElems+st.PackedBElems)*elem,
		(st.ReusedAElems+st.ReusedBElems+st.ResidentBElems)*elem,
		st.PackNanos, st.ComputeNanos, 0)
	return st, nil
}

// runPooled admits a request on tier t's core slice and runs fn on a leased
// executor. rec picks up the admission evidence (queue depth at entry, wait
// time) and the lease provenance.
func runPooled[T matrix.Scalar](e *Engine, t Tier, rec *reqtrace.Record, fn func(ex *core.Executor[T]) (core.Stats, error)) (core.Stats, error) {
	rec.QueueDepth = int32(e.queued.Load())
	admitStart := time.Now()
	err := e.acquire(e.tiers[t].cores)
	rec.AdmitWaitNs = time.Since(admitStart).Nanoseconds()
	if err != nil {
		return core.Stats{}, err
	}
	e.inFlight.Add(1)
	defer func() {
		e.inFlight.Add(-1)
		e.release(e.tiers[t].cores)
	}()

	ex, reused, err := leaseExecutor[T](e, t)
	if err != nil {
		return core.Stats{}, err
	}
	if reused {
		rec.Lease = reqtrace.LeaseReused
	} else {
		rec.Lease = reqtrace.LeaseNew
	}
	// Settle the lease in a defer so a panic inside the run (packing layout
	// guards panic by design) cannot drop the executor: cache it after a
	// clean run, drop it rather than cache state of unknown integrity
	// otherwise.
	clean := false
	defer func() {
		if clean {
			cachesOf[T](e).execs[t].Put(ex)
		} else {
			ex.Close()
		}
	}()
	st, err := fn(ex)
	if err != nil {
		return st, err
	}
	clean = true
	return st, nil
}
