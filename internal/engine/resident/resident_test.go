package resident

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRegisterAcquireRelease(t *testing.T) {
	s := New(1000)
	if err := s.Register("w0", "payload-0", 400); err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire("w0")
	if err != nil {
		t.Fatal(err)
	}
	if h.Payload() != "payload-0" {
		t.Fatalf("payload = %v", h.Payload())
	}
	st := s.Stats()
	if st.Entries != 1 || st.Pinned != 1 || st.Bytes != 400 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
	h.Release()
	h.Release() // idempotent
	st = s.Stats()
	if st.Pinned != 0 || st.Bytes != 400 {
		t.Fatalf("after release: %+v", st)
	}
	if err := s.Release("w0"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after deregister: %+v", st)
	}
	if _, err := s.Acquire("w0"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("released id: %v, want ErrNotRegistered", err)
	}
}

func TestDoubleRegisterFailsTyped(t *testing.T) {
	s := New(0)
	if err := s.Register("w", 1, 10); err != nil {
		t.Fatal(err)
	}
	err := s.Register("w", 2, 10)
	if !errors.Is(err, ErrExists) {
		t.Fatalf("double register: %v, want ErrExists", err)
	}
	// Release → re-register is the sanctioned replace cycle.
	if err := s.Release("w"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("w", 2, 10); err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire("w")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Payload() != 2 {
		t.Fatalf("payload = %v, want replacement", h.Payload())
	}
}

func TestLRUEvictionAndTombstones(t *testing.T) {
	s := New(100)
	for i := 0; i < 4; i++ {
		if err := s.Register(fmt.Sprintf("w%d", i), i, 25); err != nil {
			t.Fatal(err)
		}
	}
	// Touch w0 so w1 is the LRU victim.
	h, err := s.Acquire("w0")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := s.Register("w4", 4, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("w1"); !errors.Is(err, ErrOperandEvicted) {
		t.Fatalf("evicted id: %v, want ErrOperandEvicted", err)
	}
	for _, id := range []string{"w0", "w2", "w3", "w4"} {
		h, err := s.Acquire(id)
		if err != nil {
			t.Fatalf("%s should have survived: %v", id, err)
		}
		h.Release()
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Misses != 1 || st.Bytes != 100 {
		t.Fatalf("stats %+v", st)
	}
	// Re-registering the evicted id clears the tombstone (and, with the
	// budget full again, sacrifices the next LRU victim, w2).
	if err := s.Register("w1", 1, 10); err != nil {
		t.Fatal(err)
	}
	h, err = s.Acquire("w1")
	if err != nil {
		t.Fatalf("re-registered id: %v", err)
	}
	h.Release()
	// Releasing an evicted id (after evicting w2 next) is a successful no-op.
	if err := s.Register("big", 0, 80); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Evictions < 2 {
		t.Fatalf("expected more evictions, stats %+v", st)
	}
}

func TestPinnedEntriesAreNotEvicted(t *testing.T) {
	s := New(100)
	if err := s.Register("pinned", 0, 60); err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire("pinned")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if err := s.Register("loose", 1, 30); err != nil {
		t.Fatal(err)
	}
	// 60 pinned + 30 loose; a 40-byte newcomer can only evict "loose", and
	// still fails because the pinned entry holds the rest.
	err = s.Register("newcomer", 2, 50)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("register over pinned bytes: %v, want ErrBudget", err)
	}
	if _, err := s.Acquire("loose"); !errors.Is(err, ErrOperandEvicted) {
		t.Fatalf("loose should have been sacrificed: %v", err)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != 60 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOversizedOperandRejected(t *testing.T) {
	s := New(100)
	if err := s.Register("huge", 0, 101); !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized register: %v, want ErrBudget", err)
	}
	// Unlimited budget takes anything.
	u := New(0)
	if err := u.Register("huge", 0, 1<<40); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWhilePinnedDefersFree(t *testing.T) {
	s := New(0)
	if err := s.Register("w", "v1", 40); err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release("w"); err != nil {
		t.Fatal(err)
	}
	// Deregistered but pinned: payload still readable, bytes still charged,
	// id free for re-registration.
	if h.Payload() != "v1" {
		t.Fatal("payload lost while pinned")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 40 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Register("w", "v2", 10); err != nil {
		t.Fatalf("re-register of defunct id: %v", err)
	}
	h.Release()
	if st := s.Stats(); st.Bytes != 10 {
		t.Fatalf("defunct bytes not freed at last unpin: %+v", st)
	}
}

func TestCloseDrains(t *testing.T) {
	s := New(0)
	if err := s.Register("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b", 1, 20); err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 20 {
		t.Fatalf("after close: %+v", st)
	}
	if err := s.Register("c", 2, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
	if _, err := s.Acquire("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	if err := s.Release("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("release after close: %v", err)
	}
	// The pinned entry's panels remained readable through Close; the last
	// unpin frees the final bytes.
	if h.Payload() != 1 {
		t.Fatal("pinned payload lost at close")
	}
	h.Release()
	if st := s.Stats(); st.Bytes != 0 {
		t.Fatalf("bytes leaked past close + unpin: %+v", st)
	}
}

func TestAccountAvoided(t *testing.T) {
	s := New(0)
	s.AccountAvoided(100)
	s.AccountAvoided(23)
	if st := s.Stats(); st.AvoidedPackBytes != 123 {
		t.Fatalf("avoided = %d", st.AvoidedPackBytes)
	}
}

// TestStoreStress hammers every store operation from many goroutines; run
// under -race it proves the locking discipline, and the final drain proves
// no bytes leak through any interleaving of eviction, deregistration,
// pinning and close-less shutdown.
func TestStoreStress(t *testing.T) {
	const (
		workers = 8
		ops     = 400
		ids     = 6
	)
	s := New(300) // tight budget: ~3 entries of 100 → constant eviction
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("w%d", (w+i)%ids)
				switch i % 4 {
				case 0:
					_ = s.Register(id, w, 100)
				case 1:
					if h, err := s.Acquire(id); err == nil {
						_ = h.Payload()
						h.Release()
					}
				case 2:
					if h, err := s.Acquire(id); err == nil {
						// Deregister while pinned: defunct path.
						_ = s.Release(id)
						h.Release()
					}
				default:
					_ = s.Release(id)
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
	if st.Bytes != st.Entries*100 {
		t.Fatalf("byte accounting drifted: %+v", st)
	}
	for i := 0; i < ids; i++ {
		_ = s.Release(fmt.Sprintf("w%d", i))
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("drain left %+v", st)
	}
}
