// Package resident is the engine's cross-request, cross-tenant store of
// pre-packed operands: the DNN-serving workload of the paper's introduction
// multiplies many activation matrices against a small set of weight
// matrices, and re-packing the weights on every call wastes exactly the
// DRAM traffic CAKE's block geometry budgets. The store keeps each
// registered operand's packed panels resident under a byte budget:
//
//   - Registration packs once (the caller supplies the packed payload and
//     its footprint) and may evict — strict LRU over unpinned entries — to
//     make room.
//   - In-flight GEMMs pin their operand with Acquire/Handle.Release
//     (refcounted; a pinned entry is never evicted, so compute never reads
//     freed panels).
//   - A registered id that was evicted under budget pressure fails later
//     Acquires with ErrOperandEvicted — distinguishable from an id that was
//     never registered — so servers can re-register instead of mis-serving.
//
// The store holds payloads as opaque values; packing geometry and scalar
// types are the caller's concern (internal/engine pairs each id with its
// per-tier packed panels).
package resident

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors, all wrapped with the offending id; match with errors.Is.
var (
	// ErrExists rejects Register of an id that is currently registered
	// (live or pinned-defunct ids must be Released first).
	ErrExists = errors.New("resident: operand id already registered")
	// ErrNotRegistered reports an id this store has never held.
	ErrNotRegistered = errors.New("resident: operand id not registered")
	// ErrOperandEvicted reports an id that was registered but lost to LRU
	// eviction under the byte budget.
	ErrOperandEvicted = errors.New("resident: operand evicted under byte budget")
	// ErrBudget rejects Register when the operand cannot fit: it is larger
	// than the whole budget, or everything evictable has been evicted and
	// pinned entries still hold too much.
	ErrBudget = errors.New("resident: operand does not fit byte budget")
	// ErrClosed fails every operation after Close.
	ErrClosed = errors.New("resident: store closed")
)

// entry is one registered operand. refs counts in-flight pins; defunct marks
// an entry released (or drained by Close) while pinned — its payload stays
// readable for the in-flight GEMMs and its bytes stay charged until the last
// pin drops.
type entry struct {
	id      string
	payload any
	bytes   int64
	refs    int
	defunct bool
	elem    *list.Element // LRU position; nil once off the live list
}

// Store is the refcounted LRU operand store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	budget  int64 // ≤0 = unlimited
	bytes   int64 // charged payload bytes, defunct-but-pinned included
	entries map[string]*entry
	lru     *list.List // of *entry; front = most recently used
	evicted map[string]bool
	closed  bool

	hits, misses, evictions int64
	avoidedBytes            int64

	evictHook func(id string, bytes int64)
}

// SetEvictHook installs fn, invoked once per LRU eviction with the victim's
// id and byte footprint. The hook runs outside the store lock (after the
// Register call that evicted), so it may log or count freely, but the
// eviction is already final when it runs. The engine uses it for structured
// eviction logging.
func (s *Store) SetEvictHook(fn func(id string, bytes int64)) {
	s.mu.Lock()
	s.evictHook = fn
	s.mu.Unlock()
}

// New builds a store with the given byte budget; budget ≤ 0 disables the
// budget entirely (nothing is ever evicted).
func New(budget int64) *Store {
	return &Store{
		budget:  budget,
		entries: map[string]*entry{},
		lru:     list.New(),
		evicted: map[string]bool{},
	}
}

// Register stores payload under id, charging bytes against the budget and
// evicting least-recently-used unpinned entries as needed to fit. A live id
// fails with ErrExists — release first, then re-register — and an operand
// that cannot fit even after eviction fails with ErrBudget.
func (s *Store) Register(id string, payload any, bytes int64) error {
	if bytes < 0 {
		bytes = 0
	}
	// Evictions are reported to the hook outside the lock, after they are
	// final — so the hook can log or call anything without deadlocking
	// against the store.
	var victims []*entry
	var hook func(string, int64)
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		hook = s.evictHook
		if s.closed {
			return ErrClosed
		}
		if _, ok := s.entries[id]; ok {
			return fmt.Errorf("%w: %q", ErrExists, id)
		}
		for s.budget > 0 && s.bytes+bytes > s.budget {
			victim := s.oldestUnpinned()
			if victim == nil {
				return fmt.Errorf("%w: %q needs %d bytes, %d of %d already held by pinned operands",
					ErrBudget, id, bytes, s.bytes, s.budget)
			}
			s.evictLocked(victim)
			victims = append(victims, victim)
		}
		e := &entry{id: id, payload: payload, bytes: bytes}
		e.elem = s.lru.PushFront(e)
		s.entries[id] = e
		s.bytes += bytes
		// A re-registration heals the eviction: later Acquires should hit, not
		// report the stale tombstone.
		delete(s.evicted, id)
		return nil
	}()
	if hook != nil {
		for _, v := range victims {
			hook(v.id, v.bytes)
		}
	}
	return err
}

// oldestUnpinned walks the LRU list back-to-front for an evictable victim.
func (s *Store) oldestUnpinned() *entry {
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.refs == 0 {
			return e
		}
	}
	return nil
}

// evictLocked drops a live unpinned entry, leaving a tombstone so Acquire
// can tell "evicted" from "never registered".
func (s *Store) evictLocked(e *entry) {
	s.lru.Remove(e.elem)
	e.elem = nil
	delete(s.entries, e.id)
	s.bytes -= e.bytes
	s.evicted[e.id] = true
	s.evictions++
}

// Handle pins one resident operand for the duration of one use. Release it
// on every path — error and panic paths included — or the entry can never
// be evicted or freed.
type Handle struct {
	s *Store
	e *entry
}

// Payload returns the registered payload; valid until Release.
func (h *Handle) Payload() any { return h.e.payload }

// Release drops the pin (idempotent). The last pin on a defunct entry frees
// its byte charge.
func (h *Handle) Release() {
	s := h.s
	if s == nil {
		return
	}
	e := h.e
	h.s, h.e = nil, nil
	s.mu.Lock()
	defer s.mu.Unlock()
	e.refs--
	if e.refs == 0 && e.defunct {
		s.bytes -= e.bytes
	}
}

// Acquire pins id's payload and marks it most recently used. Counted as a
// hit; a lookup that fails — evicted or never registered — is a miss.
//
//cake:lease
func (s *Store) Acquire(id string) (*Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	e, ok := s.entries[id]
	if !ok {
		s.misses++
		if s.evicted[id] {
			return nil, fmt.Errorf("%w: %q", ErrOperandEvicted, id)
		}
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, id)
	}
	e.refs++
	s.lru.MoveToFront(e.elem)
	s.hits++
	return &Handle{s: s, e: e}, nil
}

// Release deregisters id. An unpinned entry is freed immediately; a pinned
// one turns defunct — in-flight GEMMs keep their panels, the bytes free at
// the last unpin — and either way the id is immediately re-registrable.
// Releasing an already-evicted id clears its tombstone and succeeds.
func (s *Store) Release(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.entries[id]
	if !ok {
		if s.evicted[id] {
			delete(s.evicted, id)
			return nil
		}
		return fmt.Errorf("%w: %q", ErrNotRegistered, id)
	}
	s.lru.Remove(e.elem)
	e.elem = nil
	delete(s.entries, e.id)
	if e.refs > 0 {
		e.defunct = true
		return nil
	}
	s.bytes -= e.bytes
	return nil
}

// Close drains the store: unpinned entries are freed now, pinned entries
// turn defunct and free at their last unpin, and every later operation
// fails with ErrClosed. Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, e := range s.entries {
		s.lru.Remove(e.elem)
		e.elem = nil
		if e.refs > 0 {
			e.defunct = true
			continue
		}
		s.bytes -= e.bytes
	}
	s.entries = map[string]*entry{}
	s.evicted = map[string]bool{}
}

// AccountAvoided adds n bytes of pack traffic that resident-path GEMMs
// skipped — the store's reason to exist, surfaced as a counter.
func (s *Store) AccountAvoided(n int64) {
	s.mu.Lock()
	s.avoidedBytes += n
	s.mu.Unlock()
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	Entries          int64 // operands currently registered
	Pinned           int64 // of those, pinned by in-flight GEMMs
	Bytes            int64 // charged payload bytes (defunct-but-pinned included)
	Budget           int64 // configured budget; 0 = unlimited
	Hits             int64 // Acquires served
	Misses           int64 // Acquires failed (evicted or unknown id)
	Evictions        int64 // entries lost to budget pressure
	AvoidedPackBytes int64 // pack traffic skipped by resident-path GEMMs
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pinned int64
	for _, e := range s.entries {
		if e.refs > 0 {
			pinned++
		}
	}
	budget := s.budget
	if budget < 0 {
		budget = 0
	}
	return Stats{
		Entries:          int64(len(s.entries)),
		Pinned:           pinned,
		Bytes:            s.bytes,
		Budget:           budget,
		Hits:             s.hits,
		Misses:           s.misses,
		Evictions:        s.evictions,
		AvoidedPackBytes: s.avoidedBytes,
	}
}
