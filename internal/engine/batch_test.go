package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/obs/reqtrace"
)

// batchOracle builds a batch of problems (optionally all sharing one B),
// runs it through GemmBatchScaled, and demands bit-equality against the
// sequential GemmScaled loop over the same calls on the same engine.
func batchOracle[T matrix.Scalar](t *testing.T, e *Engine, shapes [][3]int, sharedB, transA, transB bool, alpha, beta T, seed int64) core.Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := len(shapes)
	as := make([]*matrix.Matrix[T], n)
	bs := make([]*matrix.Matrix[T], n)
	cBatch := make([]*matrix.Matrix[T], n)
	cSeq := make([]*matrix.Matrix[T], n)
	for i, sh := range shapes {
		ar, ac := sh[0], sh[1]
		if transA {
			ar, ac = ac, ar
		}
		as[i] = matrix.New[T](ar, ac)
		as[i].Randomize(rng)
		br, bc := sh[1], sh[2]
		if transB {
			br, bc = bc, br
		}
		if sharedB && i > 0 {
			bs[i] = bs[0]
		} else {
			bs[i] = matrix.New[T](br, bc)
			bs[i].Randomize(rng)
		}
		cBatch[i] = matrix.New[T](sh[0], sh[2])
		cBatch[i].Randomize(rng)
		cSeq[i] = cBatch[i].Clone()
	}
	st, err := GemmBatchScaled(e, cBatch, as, bs, transA, transB, alpha, beta)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if st.BatchCalls != n {
		t.Fatalf("BatchCalls = %d, want %d", st.BatchCalls, n)
	}
	for i := range shapes {
		if _, err := GemmScaled(e, cSeq[i], as[i], bs[i], transA, transB, alpha, beta); err != nil {
			t.Fatalf("sequential call %d: %v", i, err)
		}
	}
	for i := range shapes {
		for j := range cBatch[i].Data {
			if cBatch[i].Data[j] != cSeq[i].Data[j] {
				t.Fatalf("shapes=%v sharedB=%v transA=%v transB=%v call %d elem %d: batch %v != sequential %v",
					shapes, sharedB, transA, transB, i, j, cBatch[i].Data[j], cSeq[i].Data[j])
			}
		}
	}
	return st
}

func uniformShapes(m, k, n, count int) [][3]int {
	shapes := make([][3]int, count)
	for i := range shapes {
		shapes[i] = [3]int{m, k, n}
	}
	return shapes
}

// TestGemmBatchOracleAllTiers: batched execution must be bit-exact with the
// sequential loop on every tier, for both dtypes, with and without a shared
// B operand. Shared-B batches must actually skip repacks.
func TestGemmBatchOracleAllTiers(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	shapes := [][3]int{
		{16, 16, 16},    // tiny (f32): 3 KB footprint ≤ 8 KB L1
		{64, 48, 80},    // small
		{200, 160, 220}, // large
	}
	seed := int64(900)
	for _, sh := range shapes {
		for _, sharedB := range []bool{false, true} {
			seed++
			batch := uniformShapes(sh[0], sh[1], sh[2], 4)
			st32 := batchOracle[float32](t, e, batch, sharedB, false, false, 1, 1, seed)
			st64 := batchOracle[float64](t, e, batch, sharedB, false, false, 1, 1, seed)
			for _, st := range []core.Stats{st32, st64} {
				if sharedB {
					if st.SharedBPacks != 3 {
						t.Fatalf("%v sharedB: SharedBPacks = %d, want 3 (%+v)", sh, st.SharedBPacks, st)
					}
					if st.ReusedBElems == 0 {
						t.Fatalf("%v sharedB: no B pack skipped (%+v)", sh, st)
					}
				} else if st.SharedBPacks != 0 {
					t.Fatalf("%v distinct B: SharedBPacks = %d, want 0", sh, st.SharedBPacks)
				}
			}
		}
	}
	ct := e.Counters()
	if ct.TierTiny == 0 || ct.TierSmall == 0 || ct.TierLarge == 0 {
		t.Fatalf("not all tiers exercised: %+v", ct)
	}
}

// TestGemmBatchTransposesAndScaling sweeps op(A)/op(B)/α/β on a mid-size
// shape — the full BLAS surface must survive batching bit-exactly.
func TestGemmBatchTransposesAndScaling(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	seed := int64(950)
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			for _, ab := range [][2]float64{{1, 1}, {2.5, -1}, {0, 0.5}} {
				seed++
				batchOracle[float64](t, e, uniformShapes(48, 64, 96, 3), true, transA, transB, ab[0], ab[1], seed)
			}
		}
	}
}

// TestGemmBatchRagged: a ragged final batch (shorter trailing calls, same
// tier) must stay bit-exact with the sequential loop.
func TestGemmBatchRagged(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	// All small-tier, but the last two calls have smaller M — the im2col
	// tail of a dataset whose size doesn't divide the batch.
	shapes := [][3]int{{64, 48, 80}, {64, 48, 80}, {32, 48, 80}, {8, 48, 80}}
	batchOracle[float64](t, e, shapes, true, false, false, 1, 0, 975)
}

// TestGemmBatchMixedTierDispatch: a batch mixing footprints dispatches on
// its widest call's tier, and the numbers still agree with the naive oracle
// (bit-exactness against the per-call loop is out of scope here — the loop
// would legitimately pick different tiers per call).
func TestGemmBatchMixedTierDispatch(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	rng := rand.New(rand.NewSource(980))
	shapes := [][3]int{{16, 16, 16}, {200, 160, 220}}
	as := make([]*matrix.Matrix[float32], len(shapes))
	bs := make([]*matrix.Matrix[float32], len(shapes))
	cs := make([]*matrix.Matrix[float32], len(shapes))
	for i, sh := range shapes {
		as[i] = matrix.New[float32](sh[0], sh[1])
		bs[i] = matrix.New[float32](sh[1], sh[2])
		cs[i] = matrix.New[float32](sh[0], sh[2])
		as[i].Randomize(rng)
		bs[i].Randomize(rng)
	}
	large0 := e.Counters().TierLarge
	if _, err := GemmBatch(e, cs, as, bs); err != nil {
		t.Fatal(err)
	}
	if got := e.Counters().TierLarge - large0; got != 1 {
		t.Fatalf("mixed batch took %d large-tier dispatches, want exactly 1", got)
	}
	for i, sh := range shapes {
		want := matrix.New[float32](sh[0], sh[2])
		matrix.NaiveGemm(want, as[i], bs[i])
		if !cs[i].AlmostEqual(want, sh[1], 1e-4) {
			t.Fatalf("call %d wrong (max diff %g)", i, cs[i].MaxAbsDiff(want))
		}
	}
}

// TestGemmBatchSizeOne: the degenerate batch must behave exactly like the
// single-call entry point (and still stamp BatchCalls = 1).
func TestGemmBatchSizeOne(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	st := batchOracle[float64](t, e, uniformShapes(64, 48, 80, 1), false, false, false, 1, 1, 990)
	if st.BatchCalls != 1 || st.SharedBPacks != 0 {
		t.Fatalf("batch-of-one stats %+v", st)
	}
}

// TestGemmBatchErrors: malformed batches must fail up front, before any C
// is touched.
func TestGemmBatchErrors(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	a := matrix.New[float64](16, 16)
	b := matrix.New[float64](16, 16)
	c := matrix.New[float64](16, 16)
	if _, err := GemmBatch[float64](e, nil, nil, nil); !errors.Is(err, core.ErrBatchShape) {
		t.Fatalf("empty batch: %v, want ErrBatchShape", err)
	}
	if _, err := GemmBatch(e,
		[]*matrix.Matrix[float64]{c}, []*matrix.Matrix[float64]{a, a}, []*matrix.Matrix[float64]{b}); !errors.Is(err, core.ErrBatchShape) {
		t.Fatalf("mismatched lengths: %v, want ErrBatchShape", err)
	}
	// Second call has bad dims: the whole batch must be rejected with every
	// C untouched, including the valid first call's.
	c0 := matrix.New[float64](16, 16)
	c0.Randomize(rand.New(rand.NewSource(7)))
	keep := c0.Clone()
	badC := matrix.New[float64](8, 8)
	_, err := GemmBatch(e,
		[]*matrix.Matrix[float64]{c0, badC},
		[]*matrix.Matrix[float64]{a, a},
		[]*matrix.Matrix[float64]{b, b})
	if err == nil {
		t.Fatal("bad dims in call 1 accepted")
	}
	for i := range c0.Data {
		if c0.Data[i] != keep.Data[i] {
			t.Fatal("failed batch mutated an earlier call's C")
		}
	}
}

// TestGemmBatchStrided: the strided layout must agree bit-exactly with the
// slice-of-calls form it desugars to, shared (stride-0) operands included.
func TestGemmBatchStrided(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	rng := rand.New(rand.NewSource(1000))
	const m, k, n, count = 16, 16, 16, 4
	sb := StridedBatch[float32]{
		Count: count, M: m, K: k, N: n,
		C: make([]float32, count*m*n), StrideC: m * n,
		A: make([]float32, count*m*k), StrideA: m * k,
		B: make([]float32, k*n), StrideB: 0, // shared B
	}
	for i := range sb.A {
		sb.A[i] = rng.Float32()
	}
	for i := range sb.B {
		sb.B[i] = rng.Float32()
	}
	st, err := GemmBatchStrided(e, sb, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchCalls != count || st.SharedBPacks != count-1 {
		t.Fatalf("strided stats %+v", st)
	}
	b := matrix.FromSlice(k, n, sb.B)
	for i := 0; i < count; i++ {
		a := matrix.FromSlice(m, k, sb.A[i*m*k:(i+1)*m*k])
		want := matrix.New[float32](m, n)
		if _, err := GemmScaled(e, want, a, b, false, false, 1, 0); err != nil {
			t.Fatal(err)
		}
		got := sb.C[i*m*n : (i+1)*m*n]
		for j := range got {
			if got[j] != want.Data[j] {
				t.Fatalf("strided call %d elem %d: %v != %v", i, j, got[j], want.Data[j])
			}
		}
	}
}

func TestStridedBatchValidation(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	base := StridedBatch[float64]{
		Count: 2, M: 4, K: 4, N: 4,
		C: make([]float64, 32), StrideC: 16,
		A: make([]float64, 32), StrideA: 16,
		B: make([]float64, 32), StrideB: 16,
	}
	for _, tc := range []struct {
		name   string
		mutate func(*StridedBatch[float64])
	}{
		{"zero count", func(sb *StridedBatch[float64]) { sb.Count = 0 }},
		{"shared C", func(sb *StridedBatch[float64]) { sb.StrideC = 0 }},
		{"aliasing stride", func(sb *StridedBatch[float64]) { sb.StrideA = 8 }},
		{"short backing", func(sb *StridedBatch[float64]) { sb.B = sb.B[:20] }},
		{"short shared", func(sb *StridedBatch[float64]) { sb.StrideB = 0; sb.B = sb.B[:8] }},
	} {
		sb := base
		tc.mutate(&sb)
		if _, _, _, err := sb.Matrices(); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
		if _, err := GemmBatchStrided(e, sb, 1.0, 0.0); err == nil {
			t.Fatalf("%s accepted by GemmBatchStrided", tc.name)
		}
	}
	if _, _, _, err := base.Matrices(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
}

// TestGemmBatchResidentOracle: the resident batch must be bit-exact with the
// sequential resident loop, pin the operand exactly once, and pack no B.
func TestGemmBatchResidentOracle(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	rng := rand.New(rand.NewSource(1100))
	for _, sh := range [][3]int{
		{16, 16, 16},    // tiny (f32)
		{64, 48, 80},    // small
		{200, 160, 220}, // large
	} {
		m, k, n := sh[0], sh[1], sh[2]
		b := matrix.New[float32](k, n)
		b.Randomize(rng)
		id := fmt.Sprintf("batch-%dx%dx%d", m, k, n)
		if err := RegisterB(e, id, b); err != nil {
			t.Fatal(err)
		}
		const count = 4
		as := make([]*matrix.Matrix[float32], count)
		cBatch := make([]*matrix.Matrix[float32], count)
		cSeq := make([]*matrix.Matrix[float32], count)
		for i := range as {
			as[i] = matrix.New[float32](m, k)
			as[i].Randomize(rng)
			cBatch[i] = matrix.New[float32](m, n)
			cSeq[i] = matrix.New[float32](m, n)
		}
		hits0 := e.ResidentStats().Hits
		st, err := GemmBatchResident(e, cBatch, as, id)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.ResidentStats().Hits - hits0; got != 1 {
			t.Fatalf("%v: batch pinned the operand %d times, want once", sh, got)
		}
		if st.BatchCalls != count || st.PackedBElems != 0 || st.ResidentBElems == 0 {
			t.Fatalf("%v: resident batch stats %+v", sh, st)
		}
		for i := range as {
			if _, err := GemmResident(e, cSeq[i], as[i], id); err != nil {
				t.Fatal(err)
			}
			for j := range cBatch[i].Data {
				if cBatch[i].Data[j] != cSeq[i].Data[j] {
					t.Fatalf("%v call %d elem %d: batch %v != sequential %v", sh, i, j, cBatch[i].Data[j], cSeq[i].Data[j])
				}
			}
		}
		if err := e.ReleaseB(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchRequestRecord: a batch produces ONE flight-recorder record
// carrying the call count and the amortized per-call latency.
func TestBatchRequestRecord(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	committed0 := e.Tracer().Committed()
	st := batchOracle[float32](t, e, uniformShapes(16, 16, 16, 8), true, false, false, 1, 1, 1200)
	if st.BatchCalls != 8 {
		t.Fatalf("stats %+v", st)
	}
	// batchOracle issues 1 batch + 8 sequential calls = 9 records.
	if got := e.Tracer().Committed() - committed0; got != 9 {
		t.Fatalf("committed %d records, want 9 (1 batch + 8 sequential)", got)
	}
	var batchRec *reqtrace.Record
	for _, r := range e.Tracer().Recent() {
		if r.BatchCalls > 0 {
			rc := r
			batchRec = &rc
		}
	}
	if batchRec == nil {
		t.Fatal("no batch record in flight recorder")
	}
	if batchRec.BatchCalls != 8 || batchRec.Outcome != reqtrace.OutcomeOK {
		t.Fatalf("batch record %+v", batchRec)
	}
	if batchRec.AmortNs <= 0 || batchRec.AmortNs > batchRec.DurNs {
		t.Fatalf("amortized latency %d ns out of range (dur %d)", batchRec.AmortNs, batchRec.DurNs)
	}
}

// TestGemmBatchConcurrentStress hammers fresh and resident batches from
// many goroutines while operands churn through registration/release and the
// engine finally closes mid-traffic. Under -race this proves batch leases,
// batch pins and Close don't share unsynchronized state; the oracle check
// on every successful batch proves churn never corrupts a result.
func TestGemmBatchConcurrentStress(t *testing.T) {
	workers, iters := 4, 20
	if testing.Short() {
		workers, iters = 2, 6
	}
	e := newTestEngine(t, 4, Options{ResidentBudgetBytes: 200 << 10})
	const m, k, n, count = 8, 64, 64, 4
	rng := rand.New(rand.NewSource(1300))
	b := matrix.New[float64](k, n)
	b.Randomize(rng)
	as := make([]*matrix.Matrix[float64], count)
	want := make([]*matrix.Matrix[float64], count)
	for i := range as {
		as[i] = matrix.New[float64](m, k)
		as[i].Randomize(rng)
		want[i] = matrix.New[float64](m, n)
		if _, err := GemmScaled(e, want[i], as[i], b, false, false, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := RegisterB(e, "stress", b); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bs := []*matrix.Matrix[float64]{b, b, b, b}
			cs := make([]*matrix.Matrix[float64], count)
			for i := range cs {
				cs[i] = matrix.New[float64](m, n)
			}
			for i := 0; i < iters; i++ {
				var err error
				if (w+i)%2 == 0 {
					_, err = GemmBatchScaled(e, cs, as, bs, false, false, 1, 0)
				} else {
					_, err = GemmBatchResidentScaled(e, cs, as, "stress", false, 1, 0)
				}
				switch {
				case err == nil:
					for ci := range cs {
						for j := range cs[ci].Data {
							if cs[ci].Data[j] != want[ci].Data[j] {
								errCh <- fmt.Errorf("worker %d iter %d call %d diverged at %d", w, i, ci, j)
								return
							}
						}
					}
				case errors.Is(err, ErrClosed), errors.Is(err, ErrOperandEvicted), errors.Is(err, ErrOperandNotRegistered):
					// Legal outcomes under churn and shutdown.
				default:
					errCh <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	// Churn the resident operand under the batches. Close waits for the
	// traffic to drain: Engine.Close rejects NEW calls via closedFast but —
	// like Executor.Close — does not synchronize with a call already past
	// admission, so closing mid-flight is a caller error, not coverage.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			_ = e.ReleaseB("stress")
			err := RegisterB(e, "stress", b)
			if err != nil && !errors.Is(err, ErrOperandExists) && !errors.Is(err, ErrClosed) {
				errCh <- fmt.Errorf("re-register: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	e.Close()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
