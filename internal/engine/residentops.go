// Resident-operand serving: RegisterB packs a weight matrix once into every
// tier layout the dispatcher might pick, parks the panels in the engine's
// refcounted LRU store (internal/engine/resident), and GemmResident serves
// activations against them with the pack bypass — the paper's DNN-inference
// motivation turned into an API. Registration pays the pack (including the
// strided PackBT gather for transposed weights) exactly once; every serve
// call afterwards skips B packing on whichever tier it lands on.
package engine

import (
	"errors"
	"fmt"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/engine/resident"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/packing"
)

// Resident-store sentinel errors, re-exported so callers don't import the
// store package; match with errors.Is.
var (
	// ErrOperandExists rejects RegisterB of an id that is still registered.
	ErrOperandExists = resident.ErrExists
	// ErrOperandNotRegistered reports an id the engine has never held.
	ErrOperandNotRegistered = resident.ErrNotRegistered
	// ErrOperandEvicted reports an id lost to LRU eviction under the byte
	// budget; re-register to serve it again.
	ErrOperandEvicted = resident.ErrOperandEvicted
	// ErrOperandBudget rejects RegisterB of an operand that cannot fit the
	// byte budget even after evicting everything unpinned.
	ErrOperandBudget = resident.ErrBudget
	// ErrOperandType reports a GemmResident whose scalar type differs from
	// the one the id was registered with.
	ErrOperandType = errors.New("engine: resident operand registered with a different scalar type")
)

// DefaultResidentBudget bounds the resident store when Options leaves
// ResidentBudgetBytes zero: 256 MiB ≈ 64 f32 1024×1024 weight operands,
// comfortably a serving working set while still forcing LRU turnover on
// unbounded registration loops.
const DefaultResidentBudget int64 = 256 << 20

// residentOperand is one registered B packed for every dispatch tier that
// could serve it. The large layout always exists (any problem can land
// there); the tiny and small layouts exist iff the tier's cache arithmetic
// can ever select them for this operand — TierFor guarantees a+b+c ≤ L1
// implies b ≤ L1 and c+2(a+b) ≤ LLC implies 2b ≤ LLC, so a tier hit always
// finds its layout present.
type residentOperand[T matrix.Scalar] struct {
	k, n  int
	tiny  []T                // whole-operand kernel-NR panels (direct path)
	small *core.ResidentB[T] // single-CB-block tier grid
	large *core.ResidentB[T] // full K-first panel grid
}

// RegisterB packs B (stored K×N) once into the engine's per-tier panel
// layouts and keeps it resident under the byte budget, evicting
// least-recently-used unpinned operands to fit. A live id fails with
// ErrOperandExists — ReleaseB first, then re-register.
func RegisterB[T matrix.Scalar](e *Engine, id string, b *matrix.Matrix[T]) error {
	return RegisterBT(e, id, b, false)
}

// RegisterBT is RegisterB for an operand in either storage order: when
// transB, b holds Bᵀ (N×K — how DNN weights usually ship). The packed panel
// layout is storage-order oblivious, so serving calls never pay the strided
// transpose gather; it happens here, once.
func RegisterBT[T matrix.Scalar](e *Engine, id string, b *matrix.Matrix[T], transB bool) error {
	if e.closedFast.Load() {
		return ErrClosed
	}
	k, n := b.Rows, b.Cols
	if transB {
		k, n = n, k
	}
	var zero T
	elem := int64(unsafe.Sizeof(zero))
	op := &residentOperand[T]{k: k, n: n}
	bBytes := int64(k) * int64(n) * elem
	var total int64
	if bBytes <= e.pl.L1Bytes {
		kern := kernel.Best[T](directTileDim, directTileDim)
		op.tiny = make([]T, packing.PackedBSize(k, n, kern.NR))
		if transB {
			packing.PackBT(op.tiny, b, kern.NR)
		} else {
			packing.PackB(op.tiny, b, kern.NR)
		}
		total += int64(len(op.tiny)) * elem
	}
	if 2*bBytes <= e.pl.LLCBytes {
		rb, err := core.PackResidentB(e.TierConfig(TierSmall, int(elem)), b, transB)
		if err != nil {
			return fmt.Errorf("engine: register %q small tier: %w", id, err)
		}
		op.small = rb
		total += rb.Bytes()
	}
	rb, err := core.PackResidentB(e.TierConfig(TierLarge, int(elem)), b, transB)
	if err != nil {
		return fmt.Errorf("engine: register %q large tier: %w", id, err)
	}
	op.large = rb
	total += rb.Bytes()
	return e.resident.Register(id, op, total)
}

// ReleaseB deregisters a resident operand. Panels pinned by in-flight
// GemmResident calls stay readable until those calls finish; the id is
// immediately re-registrable either way.
func (e *Engine) ReleaseB(id string) error {
	if e.closedFast.Load() {
		return ErrClosed
	}
	return e.resident.Release(id)
}

// ResidentStats snapshots the resident store's counters.
func (e *Engine) ResidentStats() resident.Stats { return e.resident.Stats() }

// residentStatsFor maps store counters onto the obs export shape.
func residentStatsFor(s resident.Stats) obs.ResidentStats {
	return obs.ResidentStats{
		Entries:          s.Entries,
		Pinned:           s.Pinned,
		Bytes:            s.Bytes,
		Budget:           s.Budget,
		Hits:             s.Hits,
		Misses:           s.Misses,
		Evictions:        s.Evictions,
		AvoidedPackBytes: s.AvoidedPackBytes,
	}
}

// residentHandle pairs a store pin with its typed payload for the duration
// of one GEMM.
type residentHandle[T matrix.Scalar] struct {
	h  *resident.Handle
	op *residentOperand[T]
}

// Release drops the pin (idempotent).
func (h *residentHandle[T]) Release() { h.h.Release() }

// acquireOperand pins id's packed panels and types them. The caller owns the
// pin and must Release it on every path — the GEMM body can panic (packing
// layout guards panic by design), so release in a defer.
//
//cake:lease
func acquireOperand[T matrix.Scalar](e *Engine, id string) (*residentHandle[T], error) {
	h, err := e.resident.Acquire(id)
	if err != nil {
		return nil, err
	}
	op, ok := h.Payload().(*residentOperand[T])
	if !ok {
		h.Release()
		return nil, fmt.Errorf("%w: %q", ErrOperandType, id)
	}
	return &residentHandle[T]{h: h, op: op}, nil
}

// GemmResident computes C += op(A)×B_id against the resident operand
// registered under id, skipping B packing on every tier.
func GemmResident[T matrix.Scalar](e *Engine, c, a *matrix.Matrix[T], id string) (core.Stats, error) {
	return GemmResidentScaled(e, c, a, id, false, 1, 1)
}

// GemmResidentScaled is the full resident entry point:
// C = α·op(A)×B_id + β·C. The operand is pinned for the duration of the call
// (it cannot be evicted or freed mid-run), classified by the same tier
// arithmetic as GemmScaled, and served from the tier's pre-packed panels.
func GemmResidentScaled[T matrix.Scalar](e *Engine, c, a *matrix.Matrix[T], id string, transA bool, alpha, beta T) (core.Stats, error) {
	return GemmResidentScaledFor(e, "", c, a, id, transA, alpha, beta)
}

// GemmResidentScaledFor is GemmResidentScaled with a tenant label (see
// GemmScaledFor). The request record additionally carries the resident
// operand id and whether the panel pin hit or missed.
func GemmResidentScaledFor[T matrix.Scalar](e *Engine, tenantLabel string, c, a *matrix.Matrix[T], id string, transA bool, alpha, beta T) (core.Stats, error) {
	start := time.Now()
	rec := reqtrace.Record{
		ID:         e.trace.NextID(),
		StartNs:    start.UnixNano(),
		Tenant:     tenantLabel,
		ResidentID: id,
		Outcome:    reqtrace.OutcomeUnset,
	}
	st, err := gemmResident(e, &rec, c, a, id, transA, alpha, beta)
	e.finishRecord(&rec, start, st, err)
	return st, err
}

func gemmResident[T matrix.Scalar](e *Engine, rec *reqtrace.Record, c, a *matrix.Matrix[T], id string, transA bool, alpha, beta T) (core.Stats, error) {
	if e.closedFast.Load() {
		return core.Stats{}, ErrClosed
	}
	h, err := acquireOperand[T](e, id)
	if err != nil {
		rec.Resident = reqtrace.ResidentMiss
		return core.Stats{}, err
	}
	rec.Resident = reqtrace.ResidentHit
	defer h.Release()
	op := h.op

	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	if k != op.k || c.Rows != m || c.Cols != op.n {
		return core.Stats{}, fmt.Errorf("engine: invalid GEMM dims C[%dx%d] = op(A)[%dx%d] x residentB[%dx%d] (%q)",
			c.Rows, c.Cols, m, k, op.k, op.n, id)
	}
	rec.M, rec.K, rec.N = int32(m), int32(k), int32(op.n)
	elemBytes := int(unsafe.Sizeof(*new(T)))
	t := e.TierFor(m, k, op.n, elemBytes)
	// TierFor's arithmetic guarantees the tier's layout was packed (see
	// residentOperand); fall through to the next tier up if a pathological
	// platform geometry ever breaks that.
	if t == TierTiny && op.tiny == nil {
		t = TierSmall
	}
	if t == TierSmall && op.small == nil {
		t = TierLarge
	}
	rec.Tier = t.String()
	e.tierHits[t].Add(1)

	var st core.Stats
	if t == TierTiny {
		st, err = runDirect(e, rec, func(d *DirectScratch[T]) (core.Stats, error) {
			return d.GemmResident(c, a, op.tiny, op.k, op.n, transA, alpha, beta)
		})
	} else {
		rb := op.large
		if t == TierSmall {
			rb = op.small
		}
		st, err = runPooled(e, t, rec, func(ex *core.Executor[T]) (core.Stats, error) {
			return ex.GemmResident(c, a, rb, transA, alpha, beta)
		})
	}
	if err != nil {
		return st, err
	}
	e.resident.AccountAvoided(st.ResidentBElems * int64(elemBytes))
	return st, nil
}
