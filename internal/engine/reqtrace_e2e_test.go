package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
)

// TestRequestLifecycleEndToEnd drives a mixed workload — tiny, small, large
// and resident requests plus an injected saturation burst — through one
// engine and checks the whole observability chain: every flight-recorder
// record carries its lifecycle fields, the saturation burst freezes a
// snapshot containing the failing requests, and /debug/requests.json?reqid=
// serves the exact record back.
func TestRequestLifecycleEndToEnd(t *testing.T) {
	name := "e2e-" + t.Name()
	e := newTestEngine(t, 2, Options{
		Name:     name,
		MaxQueue: 1,
		Trace: reqtrace.Options{
			Ring: 512,
			// Latency trips would be nondeterministic under -race; this test
			// injects saturation, so keep the latency anomaly out of the way.
			AnomalyMultiple: -1,
		},
	})
	if e.Tracer() == nil {
		t.Fatal("engine built without a tracer")
	}

	rng := rand.New(rand.NewSource(42))
	mk := func(m, k int) *matrix.Matrix[float32] {
		x := matrix.New[float32](m, k)
		x.Randomize(rng)
		return x
	}

	// Mixed serve phase: every tier plus the resident path, under a tenant
	// label so per-tenant fields are exercised too.
	shapes := [][3]int{{16, 16, 16}, {64, 48, 80}, {200, 160, 220}}
	wantTiers := []string{"tiny", "small", "large"}
	for round := 0; round < 3; round++ {
		for i, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a, b := mk(m, k), mk(k, n)
			c := matrix.New[float32](m, n)
			if _, err := GemmScaledFor(e, "acme", c, a, b, false, false, 1, 0); err != nil {
				t.Fatalf("round %d %s: %v", round, wantTiers[i], err)
			}
		}
	}
	const residentID = "e2e-weights"
	if err := RegisterB(e, residentID, mk(48, 56)); err != nil {
		t.Fatal(err)
	}
	defer e.ReleaseB(residentID)
	if _, err := GemmResidentScaledFor(e, "acme", matrix.New[float32](32, 56), mk(32, 48), residentID, false, 1, 0); err != nil {
		t.Fatal(err)
	}

	// Every committed record must carry the lifecycle fields.
	recs := e.Tracer().Recent()
	if len(recs) != 10 {
		t.Fatalf("flight recorder has %d records, want 10", len(recs))
	}
	sawTier := map[string]bool{}
	sawResident := false
	for _, r := range recs {
		if r.ID == 0 {
			t.Fatalf("record without an ID: %+v", r)
		}
		if r.StartNs == 0 || r.DurNs <= 0 {
			t.Fatalf("record %d without timing: %+v", r.ID, r)
		}
		if r.Tier == "" {
			t.Fatalf("record %d without a tier: %+v", r.ID, r)
		}
		if r.Outcome != reqtrace.OutcomeOK {
			t.Fatalf("record %d outcome = %s, want ok: %+v", r.ID, r.Outcome, r)
		}
		if r.Lease == reqtrace.LeaseNone {
			t.Fatalf("completed record %d without a lease decision: %+v", r.ID, r)
		}
		if r.Tenant != "acme" {
			t.Fatalf("record %d tenant = %q: %+v", r.ID, r.Tenant, r)
		}
		if r.AdmitWaitNs < 0 || r.QueueDepth < 0 {
			t.Fatalf("record %d admission fields negative: %+v", r.ID, r)
		}
		if r.M == 0 || r.K == 0 || r.N == 0 {
			t.Fatalf("record %d without a shape: %+v", r.ID, r)
		}
		sawTier[r.Tier] = true
		if r.Resident == reqtrace.ResidentHit {
			sawResident = true
			if r.ResidentID != residentID {
				t.Fatalf("resident record %d id = %q, want %q", r.ID, r.ResidentID, residentID)
			}
		}
	}
	for _, tier := range wantTiers {
		if !sawTier[tier] {
			t.Fatalf("no record for tier %s: %v", tier, sawTier)
		}
	}
	if !sawResident {
		t.Fatal("no resident-hit record in the flight recorder")
	}

	// Pack/compute attribution reaches the records on the pooled tiers.
	var pooledTimed bool
	for _, r := range recs {
		if (r.Tier == "small" || r.Tier == "large") && r.ComputeNs > 0 {
			pooledTimed = true
		}
	}
	if !pooledTimed {
		t.Fatal("no pooled record carries compute time")
	}

	// Injected saturation burst: hold the whole machine, fill the one queue
	// slot, then throw concurrent large GEMMs at the wall. With MaxQueue=1
	// everything past the first waiter must reject with ErrSaturated.
	if err := e.acquire(2); err != nil {
		t.Fatal(err)
	}

	la, lb := mk(200, 160), mk(160, 220)
	const burst = 8
	var wg sync.WaitGroup
	satErrs := make(chan error, burst)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := matrix.New[float32](200, 220)
			_, err := GemmScaledFor(e, "acme", c, la, lb, false, false, 1, 0)
			satErrs <- err
		}()
	}
	// With the machine held and MaxQueue=1, exactly one burst request queues
	// and the rest reject. Wait for the rejections before freeing the cores,
	// so the queued request can then complete.
	for e.Counters().Rejected < burst-1 {
		time.Sleep(time.Millisecond)
	}
	e.release(2)
	wg.Wait()
	close(satErrs)
	var saturated int
	for err := range satErrs {
		if errors.Is(err, ErrSaturated) {
			saturated++
		} else if err != nil {
			t.Fatalf("burst error = %v", err)
		}
	}
	if saturated < burst-1 {
		t.Fatalf("saturated = %d, want at least %d", saturated, burst-1)
	}

	// The burst froze a snapshot, and the frozen ring contains the failing
	// requests (the ring write happens before the trip).
	snaps := e.Tracer().Snapshots()
	if len(snaps) == 0 {
		t.Fatal("saturation burst froze no snapshot")
	}
	snap := snaps[0]
	if snap.Reason != reqtrace.ReasonSaturation {
		t.Fatalf("snapshot reason = %s", snap.Reason)
	}
	if snap.Trigger.Outcome != reqtrace.OutcomeSaturated {
		t.Fatalf("snapshot trigger = %+v", snap.Trigger)
	}
	var frozenSat int
	for _, r := range snap.Records {
		if r.Outcome == reqtrace.OutcomeSaturated {
			frozenSat++
			if r.Err == "" {
				t.Fatalf("saturated record %d without an error string: %+v", r.ID, r)
			}
		}
	}
	if frozenSat == 0 {
		t.Fatal("frozen snapshot contains no saturated request")
	}
	counts := e.Tracer().OutcomeCounts()
	if counts[reqtrace.OutcomeSaturated] != int64(saturated) {
		t.Fatalf("saturated outcome count = %d, want %d", counts[reqtrace.OutcomeSaturated], saturated)
	}

	// The debug endpoint serves the exact record by ID, through the same
	// handler a live host mounts.
	reqtrace.Publish(e.Tracer())
	target := recs[len(recs)-1]
	srv := httptest.NewServer(obs.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("%s/debug/requests.json?engine=%s&reqid=%d", srv.URL, name, target.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reqid lookup status = %d: %s", resp.StatusCode, body)
	}
	var page struct {
		Engine string          `json:"engine"`
		Record reqtrace.Record `json:"record"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if page.Engine != name || page.Record != target {
		t.Fatalf("served record = %+v, want %+v", page.Record, target)
	}

	// SLO endpoint sanity for the same engine.
	resp, err = http.Get(srv.URL + "/debug/slo.json?engine=" + name)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slo status = %d: %s", resp.StatusCode, body)
	}
	var sloPage map[string]any
	if err := json.Unmarshal(body, &sloPage); err != nil {
		t.Fatalf("slo page invalid JSON: %v\n%s", err, body)
	}
}

// TestEngineObjectivesTrackOutcomes proves engine traffic reaches the SLO
// trackers declared in Options.Trace.
func TestEngineObjectivesTrackOutcomes(t *testing.T) {
	e := newTestEngine(t, 2, Options{
		Trace: reqtrace.Options{
			Objectives: []reqtrace.Objective{{Tier: "tiny", Goal: 0.5}},
		},
	})
	rng := rand.New(rand.NewSource(7))
	a := matrix.New[float32](16, 16)
	a.Randomize(rng)
	for i := 0; i < 4; i++ {
		if _, err := Gemm(e, matrix.New[float32](16, 16), a, a); err != nil {
			t.Fatal(err)
		}
	}
	sts := e.Tracer().SLOStatuses(time.Now())
	if len(sts) != 1 {
		t.Fatalf("statuses = %d", len(sts))
	}
	if sts[0].Good != 4 || sts[0].Bad != 0 {
		t.Fatalf("good/bad = %d/%d, want 4/0", sts[0].Good, sts[0].Bad)
	}
}

// TestEngineTraceDisabled proves the engine serves correctly with a nil
// tracer and no records are produced.
func TestEngineTraceDisabled(t *testing.T) {
	e := newTestEngine(t, 2, Options{Trace: reqtrace.Options{Disable: true}})
	if e.Tracer() != nil {
		t.Fatal("Disable did not yield a nil tracer")
	}
	rng := rand.New(rand.NewSource(8))
	a, b := matrix.New[float32](64, 48), matrix.New[float32](48, 56)
	a.Randomize(rng)
	b.Randomize(rng)
	c := matrix.New[float32](64, 56)
	if _, err := Gemm(e, c, a, b); err != nil {
		t.Fatal(err)
	}
	want := matrix.New[float32](64, 56)
	matrix.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, 48, 1e-4) {
		t.Fatal("disabled-trace engine result wrong")
	}
	if got := e.Tracer().Recent(); got != nil {
		t.Fatalf("nil tracer produced records: %v", got)
	}
}
