package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// directOracleConfig builds a core config whose block execution degenerates
// to the direct path's single-slice reduction: one K block (KC ≥ k), the
// same register tile, α folded identically — so the two must agree
// bit-for-bit, not just within tolerance.
func directOracleConfig(mr, nr, k int) core.Config {
	kc := k
	if kc < 1 {
		kc = 1
	}
	return core.Config{
		Cores: 1, MC: 16 * mr, KC: kc, Alpha: 1, MR: mr, NR: nr,
		Order: schedule.OuterN,
	}
}

// tinyShapes are the edge geometries the issue calls out: degenerate 1×1×1,
// one under the register tile, one over it, and skewed-K slivers.
func tinyShapes(mr, nr int) [][3]int {
	return [][3]int{
		{1, 1, 1},
		{mr - 1, 3, nr - 1},
		{mr, 4, nr},
		{mr + 1, 5, nr + 1},
		{2 * mr, 37, nr},
		{3, 61, 2},  // skewed k: deep reduction, sliver output
		{17, 1, 13}, // k=1: single rank-1 update
	}
}

func TestDirectGemmBitExactVsCore(t *testing.T) {
	tiles := [][2]int{{8, 8}, {4, 8}, {8, 4}, {4, 4}, {6, 8}, {5, 3}} // 5×3 exercises the generic fallback
	for _, tile := range tiles {
		mr, nr := tile[0], tile[1]
		kern := kernel.Best[float32](mr, nr)
		d := NewDirectScratch[float32](mr, nr)
		if d.Kernel().Name != kern.Name {
			t.Fatalf("scratch kernel %s != Best %s", d.Kernel().Name, kern.Name)
		}
		for _, sh := range tinyShapes(mr, nr) {
			m, k, n := sh[0], sh[1], sh[2]
			if m < 1 || n < 1 {
				continue
			}
			t.Run(fmt.Sprintf("%s/%dx%dx%d", kern.Name, m, k, n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(m*1000 + k*100 + n)))
				a, b := matrix.New[float32](m, k), matrix.New[float32](k, n)
				a.Randomize(rng)
				b.Randomize(rng)
				cDir, cRef := matrix.New[float32](m, n), matrix.New[float32](m, n)
				cDir.Randomize(rng)
				cRef.CopyFrom(cDir)

				if _, err := d.GemmScaled(cDir, a, b, false, false, 1, 1); err != nil {
					t.Fatal(err)
				}
				if _, err := core.Gemm(cRef, a, b, directOracleConfig(mr, nr, k)); err != nil {
					t.Fatal(err)
				}
				if !cDir.Equal(cRef) {
					t.Fatalf("direct path not bit-exact vs core (max diff %g)", cDir.MaxAbsDiff(cRef))
				}
			})
		}
	}
}

func TestDirectGemmScaledTransposedBitExact(t *testing.T) {
	const mr, nr = 8, 8
	d := NewDirectScratch[float64](mr, nr)
	rng := rand.New(rand.NewSource(7))
	const m, k, n = 7, 21, 9
	logicalA, logicalB := matrix.New[float64](m, k), matrix.New[float64](k, n)
	logicalA.Randomize(rng)
	logicalB.Randomize(rng)
	at, bt := logicalA.Transpose(), logicalB.Transpose()

	for _, alpha := range []float64{1, 0.5, 0} {
		for _, beta := range []float64{1, 0, -2} {
			cDir, cRef := matrix.New[float64](m, n), matrix.New[float64](m, n)
			cDir.Randomize(rng)
			cRef.CopyFrom(cDir)
			if _, err := d.GemmScaled(cDir, at, bt, true, true, alpha, beta); err != nil {
				t.Fatal(err)
			}
			e, err := core.NewExecutor[float64](directOracleConfig(mr, nr, k), nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.GemmScaled(cRef, at, bt, true, true, alpha, beta); err != nil {
				t.Fatal(err)
			}
			e.Close()
			if !cDir.Equal(cRef) {
				t.Fatalf("α=%g β=%g: transposed direct path not bit-exact (max diff %g)",
					alpha, beta, cDir.MaxAbsDiff(cRef))
			}
		}
	}
}

func TestDirectGemmDimMismatch(t *testing.T) {
	d := NewDirectScratch[float32](8, 8)
	_, err := d.GemmScaled(matrix.New[float32](2, 2), matrix.New[float32](2, 3), matrix.New[float32](4, 2),
		false, false, 1, 1)
	if err == nil {
		t.Fatal("dimension mismatch not reported")
	}
}

func TestDirectGemmBufferReuseAcrossSizes(t *testing.T) {
	// One scratch across shrinking and growing shapes: no stale-tail reads.
	d := NewDirectScratch[float32](8, 8)
	rng := rand.New(rand.NewSource(8))
	for _, s := range []int{31, 5, 17, 2, 29} {
		a, b := matrix.New[float32](s, s+1), matrix.New[float32](s+1, s)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float32](s, s)
		if _, err := d.GemmScaled(c, a, b, false, false, 1, 0); err != nil {
			t.Fatal(err)
		}
		want := matrix.New[float32](s, s)
		matrix.NaiveGemm(want, a, b)
		if !c.AlmostEqual(want, s+1, 1e-4) {
			t.Fatalf("s=%d wrong after buffer reuse", s)
		}
	}
}
