package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

// residentOracle registers B (optionally transposed) and demands the
// resident path reproduce the fresh-pack engine path bit-for-bit on the
// given shape — same tier arithmetic, same strip decomposition, so any
// divergence is a resident-layout bug.
func residentOracle[T matrix.Scalar](t *testing.T, e *Engine, m, k, n int, transA, transB bool, alpha, beta T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[T](m, k)
	if transA {
		a = matrix.New[T](k, m)
	}
	b := matrix.New[T](k, n)
	if transB {
		b = matrix.New[T](n, k)
	}
	a.Randomize(rng)
	b.Randomize(rng)
	c0 := matrix.New[T](m, n)
	c0.Randomize(rng)
	c1 := c0.Clone()

	id := fmt.Sprintf("oracle-%dx%dx%d-%v%v-%d", m, k, n, transA, transB, seed)
	if err := RegisterBT(e, id, b, transB); err != nil {
		t.Fatalf("RegisterBT: %v", err)
	}
	defer e.ReleaseB(id)

	if _, err := GemmScaled(e, c0, a, b, transA, transB, alpha, beta); err != nil {
		t.Fatalf("fresh: %v", err)
	}
	st, err := GemmResidentScaled(e, c1, a, id, transA, alpha, beta)
	if err != nil {
		t.Fatalf("resident: %v", err)
	}
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			t.Fatalf("%dx%dx%d transA=%v transB=%v: element %d differs: fresh %v resident %v",
				m, k, n, transA, transB, i, c0.Data[i], c1.Data[i])
		}
	}
	if st.PackedBElems != 0 {
		t.Fatalf("resident call packed B: %+v", st)
	}
	if alpha != 0 && st.ResidentBElems == 0 {
		t.Fatalf("resident call reported no ResidentBElems: %+v", st)
	}
}

func TestEngineResidentOracleAllTiers(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	shapes := [][3]int{
		{16, 16, 16},    // tiny: 6 KB f64 footprint ≤ 8 KB L1
		{64, 48, 80},    // small: ~151 KB f64 working set ≤ 256 KB LLC
		{200, 160, 220}, // large
		{8, 160, 160},   // skewed serving shape: small M over a big operand
	}
	seed := int64(500)
	for _, sh := range shapes {
		seed++
		residentOracle[float64](t, e, sh[0], sh[1], sh[2], false, false, 1, 1, seed)
		residentOracle[float32](t, e, sh[0], sh[1], sh[2], false, false, 1, 1, seed)
	}
	// Transposes and scaling on a mid-size shape.
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			seed++
			residentOracle[float64](t, e, 48, 64, 96, transA, transB, 2.5, -1, seed)
		}
	}
	ct := e.Counters()
	if ct.TierTiny == 0 || ct.TierSmall == 0 || ct.TierLarge == 0 {
		t.Fatalf("not all tiers exercised: %+v", ct)
	}
	if st := e.ResidentStats(); st.AvoidedPackBytes == 0 || st.Hits == 0 {
		t.Fatalf("resident counters flat: %+v", st)
	}
}

func TestEngineRegisterLifecycle(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	b := matrix.New[float64](64, 64)
	if err := RegisterB(e, "w", b); err != nil {
		t.Fatal(err)
	}
	if err := RegisterB(e, "w", b); !errors.Is(err, ErrOperandExists) {
		t.Fatalf("double register: %v, want ErrOperandExists", err)
	}
	if err := e.ReleaseB("w"); err != nil {
		t.Fatal(err)
	}
	if err := RegisterB(e, "w", b); err != nil {
		t.Fatalf("re-register after release: %v", err)
	}

	a := matrix.New[float64](8, 64)
	c := matrix.New[float64](8, 64)
	if _, err := GemmResident(e, c, a, "nope"); !errors.Is(err, ErrOperandNotRegistered) {
		t.Fatalf("unknown id: %v, want ErrOperandNotRegistered", err)
	}
	// Serving with the wrong scalar type is a typed failure, and must not
	// leave the operand pinned.
	a32 := matrix.New[float32](8, 64)
	c32 := matrix.New[float32](8, 64)
	if _, err := GemmResident(e, c32, a32, "w"); !errors.Is(err, ErrOperandType) {
		t.Fatalf("wrong type: %v, want ErrOperandType", err)
	}
	if st := e.ResidentStats(); st.Pinned != 0 {
		t.Fatalf("type-mismatch serve leaked a pin: %+v", st)
	}
	// Dimension mismatch likewise.
	bad := matrix.New[float64](8, 32)
	if _, err := GemmResident(e, c, bad, "w"); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if st := e.ResidentStats(); st.Pinned != 0 {
		t.Fatalf("dim-mismatch serve leaked a pin: %+v", st)
	}
}

func TestEngineResidentEviction(t *testing.T) {
	// Budget sized to hold one 64×64 f64 operand's panel sets but not two.
	b := matrix.New[float64](64, 64)
	e := newTestEngine(t, 2, Options{ResidentBudgetBytes: 100 << 10})
	if err := RegisterB(e, "w0", b); err != nil {
		t.Fatal(err)
	}
	if err := RegisterB(e, "w1", b); err != nil {
		t.Fatal(err)
	}
	a := matrix.New[float64](8, 64)
	c := matrix.New[float64](8, 64)
	if _, err := GemmResident(e, c, a, "w0"); !errors.Is(err, ErrOperandEvicted) {
		t.Fatalf("LRU victim: %v, want ErrOperandEvicted", err)
	}
	if _, err := GemmResident(e, c, a, "w1"); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if st := e.ResidentStats(); st.Evictions == 0 || st.Misses == 0 {
		t.Fatalf("eviction not counted: %+v", st)
	}
	// A single operand larger than the whole budget is rejected outright.
	huge := matrix.New[float64](128, 128)
	if err := RegisterB(e, "huge", huge); !errors.Is(err, ErrOperandBudget) {
		t.Fatalf("oversized operand: %v, want ErrOperandBudget", err)
	}
}

// TestEngineCloseDrainsResident is the satellite-2 regression: Close frees
// the resident panels and every subsequent resident operation fails with
// ErrClosed.
func TestEngineCloseDrainsResident(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	b := matrix.New[float64](64, 64)
	if err := RegisterB(e, "w", b); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if st := e.ResidentStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("close left resident panels: %+v", st)
	}
	if err := RegisterB(e, "late", b); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	if err := e.ReleaseB("w"); !errors.Is(err, ErrClosed) {
		t.Fatalf("release after close: %v, want ErrClosed", err)
	}
	a := matrix.New[float64](8, 64)
	c := matrix.New[float64](8, 64)
	if _, err := GemmResident(e, c, a, "w"); !errors.Is(err, ErrClosed) {
		t.Fatalf("serve after close: %v, want ErrClosed", err)
	}
}

// TestEngineResidentStress drives registration, serving, release and
// LRU eviction concurrently; under -race it proves the pin/evict/free
// dance has no data races, and the oracle check on every serve proves
// eviction never hands a GEMM freed or partially-replaced panels.
func TestEngineResidentStress(t *testing.T) {
	const ids = 4
	workers := 4
	iters := 30
	if testing.Short() {
		workers, iters = 2, 8
	}
	// Budget fits roughly two of the four operands: constant churn.
	e := newTestEngine(t, 2, Options{ResidentBudgetBytes: 200 << 10})
	const k, n, m = 64, 64, 8

	// Per-id reference inputs and expected product (alpha=1, beta=0).
	bs := make([]*matrix.Matrix[float64], ids)
	a := matrix.New[float64](m, k)
	rng := rand.New(rand.NewSource(99))
	a.Randomize(rng)
	want := make([]*matrix.Matrix[float64], ids)
	for i := range bs {
		bs[i] = matrix.New[float64](k, n)
		bs[i].Randomize(rng)
		want[i] = matrix.New[float64](m, n)
		if _, err := GemmScaled(e, want[i], a, bs[i], false, false, 1, 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := matrix.New[float64](m, n)
			for i := 0; i < iters; i++ {
				id := (w + i) % ids
				name := fmt.Sprintf("w%d", id)
				switch i % 3 {
				case 0:
					err := RegisterB(e, name, bs[id])
					if err != nil && !errors.Is(err, ErrOperandExists) && !errors.Is(err, ErrOperandBudget) {
						errCh <- fmt.Errorf("register %s: %w", name, err)
						return
					}
				case 1:
					_, err := GemmResidentScaled(e, c, a, name, false, 1, 0)
					switch {
					case err == nil:
						for j := range c.Data {
							if c.Data[j] != want[id].Data[j] {
								errCh <- fmt.Errorf("serve %s diverged at %d", name, j)
								return
							}
						}
					case errors.Is(err, ErrOperandNotRegistered), errors.Is(err, ErrOperandEvicted):
					default:
						errCh <- fmt.Errorf("serve %s: %w", name, err)
						return
					}
				default:
					err := e.ReleaseB(name)
					if err != nil && !errors.Is(err, ErrOperandNotRegistered) {
						errCh <- fmt.Errorf("release %s: %w", name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if st := e.ResidentStats(); st.Pinned != 0 {
		t.Fatalf("stress leaked pins: %+v", st)
	}
}
