// Package schedule implements Algorithm 2 of the CAKE paper: the K-first
// (reduction-first) block schedule with boustrophedon ("snake") traversal.
//
// The MM computation space is an Mb×Nb×Kb grid of CB blocks. A schedule is a
// permutation of the grid. The traversal direction of each dimension flips
// every time the enclosing dimension steps, so that consecutive blocks are
// always adjacent in the computation space and therefore share an IO
// surface: partial C within a K run, the B surface across an M step, and the
// A surface across an N step (Section 2.2).
//
// The package also provides the no-snake schedule the paper argues against
// (restart every dimension at index 0) and a stateful IO-cost model used to
// quantify the reuse each schedule achieves.
package schedule

import "fmt"

// Coord identifies one CB block in the partitioned computation space.
type Coord struct {
	M, N, K int
}

// Dims is the block-grid size: the computation space holds Mb·Nb·Kb blocks.
type Dims struct {
	Mb, Nb, Kb int
}

// Blocks returns the total block count.
func (d Dims) Blocks() int { return d.Mb * d.Nb * d.Kb }

// Validate checks that every dimension is positive.
func (d Dims) Validate() error {
	if d.Mb < 1 || d.Nb < 1 || d.Kb < 1 {
		return fmt.Errorf("schedule: invalid grid %dx%dx%d", d.Mb, d.Nb, d.Kb)
	}
	return nil
}

// Order selects which input surface the schedule prefers to reuse when a
// reduction run completes (Section 2.2).
type Order int

const (
	// OuterN completes the M dimension before stepping N, reusing the B
	// surface at M steps. Optimal when N ≥ M (B is the larger surface).
	OuterN Order = iota
	// OuterM completes the N dimension before stepping M, reusing the A
	// surface at N steps. Optimal when M > N.
	OuterM
)

func (o Order) String() string {
	if o == OuterN {
		return "OuterN"
	}
	return "OuterM"
}

// OrderFor returns the IO-minimising order for a computation space with M
// rows and N columns: reuse the larger input surface first (paper §2.2).
func OrderFor(m, n int) Order {
	if n >= m {
		return OuterN
	}
	return OuterM
}

// KFirst generates Algorithm 2's block sequence for the given grid. The K
// dimension is innermost (maximising partial-result reuse); the middle and
// outer dimensions are (M, N) for OuterN or (N, M) for OuterM. Inner
// traversal directions flip after every completed run.
func KFirst(d Dims, o Order) []Coord {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	out := make([]Coord, 0, d.Blocks())
	Walk(d, o, func(c Coord) { out = append(out, c) })
	return out
}

// Walk streams Algorithm 2's sequence to fn without materialising it,
// for grids too large to hold (the simulator walks 10⁵+ block grids).
func Walk(d Dims, o Order, fn func(Coord)) {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	outer, mid := d.Nb, d.Mb
	if o == OuterM {
		outer, mid = d.Mb, d.Nb
	}
	midDir, kDir := 1, 1
	for oi := 0; oi < outer; oi++ {
		for mj := 0; mj < mid; mj++ {
			mi := mj
			if midDir < 0 {
				mi = mid - 1 - mj
			}
			for kj := 0; kj < d.Kb; kj++ {
				ki := kj
				if kDir < 0 {
					ki = d.Kb - 1 - kj
				}
				if o == OuterN {
					fn(Coord{M: mi, N: oi, K: ki})
				} else {
					fn(Coord{M: oi, N: mi, K: ki})
				}
			}
			kDir = -kDir
		}
		midDir = -midDir
	}
}

// Naive generates the restart-at-zero schedule of the paper's
// counter-example: the same loop nest as KFirst but with every dimension
// always traversed in increasing order, losing the A/B surface reuse at run
// boundaries (the O(Mb·Nb + Nb) missed reuses of Section 2.2).
func Naive(d Dims, o Order) []Coord {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	out := make([]Coord, 0, d.Blocks())
	outer, mid := d.Nb, d.Mb
	if o == OuterM {
		outer, mid = d.Mb, d.Nb
	}
	for oi := 0; oi < outer; oi++ {
		for mi := 0; mi < mid; mi++ {
			for ki := 0; ki < d.Kb; ki++ {
				if o == OuterN {
					out = append(out, Coord{M: mi, N: oi, K: ki})
				} else {
					out = append(out, Coord{M: oi, N: mi, K: ki})
				}
			}
		}
	}
	return out
}

// Shared reports which IO surfaces two consecutively scheduled blocks have
// in common: the A surface is the (M, K) face, B the (K, N) face, and C the
// (M, N) face of the block.
func Shared(prev, cur Coord) (a, b, c bool) {
	a = prev.M == cur.M && prev.K == cur.K
	b = prev.K == cur.K && prev.N == cur.N
	c = prev.M == cur.M && prev.N == cur.N
	return
}

// IsPermutation reports whether seq visits every block of d exactly once.
func IsPermutation(d Dims, seq []Coord) bool {
	if len(seq) != d.Blocks() {
		return false
	}
	seen := make(map[Coord]bool, len(seq))
	for _, c := range seq {
		if c.M < 0 || c.M >= d.Mb || c.N < 0 || c.N >= d.Nb || c.K < 0 || c.K >= d.Kb {
			return false
		}
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}
