package schedule

import "fmt"

// Surfaces gives the element counts of one block's three IO surfaces.
type Surfaces struct {
	A, B, C float64
}

// Cost is the external-IO accounting of running a schedule with a local
// memory that retains exactly the previous block's A and B surfaces plus the
// current resident partial-C surface (the paper's LLC model, Section 2.2).
type Cost struct {
	AFetch        float64 // elements of A fetched from external memory
	BFetch        float64 // elements of B fetched
	CWrite        float64 // elements of C written back (partial or final)
	CFetch        float64 // elements of partial C re-fetched
	AReuses       int     // transitions where the A surface was reused
	BReuses       int     // transitions where the B surface was reused
	CReuses       int     // transitions where the partial C stayed resident
	PartialEvents int     // times a partial C had to round-trip to DRAM
}

// Total returns all external traffic in elements.
func (c Cost) Total() float64 { return c.AFetch + c.BFetch + c.CWrite + c.CFetch }

func (c Cost) String() string {
	return fmt.Sprintf("IO{A=%.0f B=%.0f Cw=%.0f Cr=%.0f reuse A/B/C=%d/%d/%d partials=%d}",
		c.AFetch, c.BFetch, c.CWrite, c.CFetch, c.AReuses, c.BReuses, c.CReuses, c.PartialEvents)
}

// EvalIO runs the reuse model over seq. A block's A surface is keyed by
// (M, K), B by (K, N) and C by (M, N). Only the immediately preceding
// block's A and B can be reused (single-block local memory); the partial C
// surface stays resident as long as consecutive blocks share it, and is
// written back when the schedule moves off it — once, as a completed result,
// when all Kb reduction steps for that (M, N) ran while it was resident;
// otherwise as a partial that must be re-fetched on return (costing the 2×
// IO the paper attributes to partial results in Section 2.2).
func EvalIO(d Dims, seq []Coord, s Surfaces) Cost {
	if !IsPermutation(d, seq) {
		panic("schedule: EvalIO requires a complete schedule")
	}
	var cost Cost
	progress := make(map[[2]int]int) // (M,N) → reduction steps accumulated
	for i, cur := range seq {
		aShared, bShared, cShared := false, false, false
		if i > 0 {
			aShared, bShared, cShared = Shared(seq[i-1], cur)
		}
		if aShared {
			cost.AReuses++
		} else {
			cost.AFetch += s.A
		}
		if bShared {
			cost.BReuses++
		} else {
			cost.BFetch += s.B
		}
		key := [2]int{cur.M, cur.N}
		if cShared {
			cost.CReuses++
		} else {
			// Leaving the previous C surface: write it back.
			if i > 0 {
				prevKey := [2]int{seq[i-1].M, seq[i-1].N}
				cost.CWrite += s.C
				if progress[prevKey] < d.Kb {
					cost.PartialEvents++
				}
			}
			// Arriving at this C surface: re-fetch any existing partial.
			if progress[key] > 0 {
				cost.CFetch += s.C
			}
		}
		progress[key]++
	}
	// Final block's C surface writes back at the end.
	cost.CWrite += s.C
	if last := seq[len(seq)-1]; progress[[2]int{last.M, last.N}] < d.Kb {
		cost.PartialEvents++
	}
	return cost
}

// OptimalIO returns the external-IO lower bound for a K-first schedule of
// the given order under the single-block reuse model: every (M, N) C surface
// is written exactly once (complete, never re-fetched) and one input surface
// is reused per run-boundary transition.
func OptimalIO(d Dims, o Order, s Surfaces) float64 {
	blocks := float64(d.Blocks())
	mn := float64(d.Mb * d.Nb)
	var aReuses, bReuses float64
	if o == OuterN {
		// Within a K run C is resident and both inputs stream; at an M-run
		// boundary the B surface is reused; at an N step the A surface is.
		bReuses = float64(d.Nb) * float64(d.Mb-1)
		aReuses = float64(d.Nb - 1)
	} else {
		aReuses = float64(d.Mb) * float64(d.Nb-1)
		bReuses = float64(d.Mb - 1)
	}
	return (blocks-aReuses)*s.A + (blocks-bReuses)*s.B + mn*s.C
}
