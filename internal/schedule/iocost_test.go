package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var testSurf = Surfaces{A: 100, B: 150, C: 400}

func TestEvalIORequiresPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalIO(Dims{2, 2, 2}, []Coord{{0, 0, 0}}, testSurf)
}

func TestKFirstAchievesOptimalIO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dims{1 + rng.Intn(5), 1 + rng.Intn(5), 1 + rng.Intn(5)}
		o := Order(rng.Intn(2))
		cost := EvalIO(d, KFirst(d, o), testSurf)
		return cost.Total() == OptimalIO(d, o, testSurf) &&
			cost.PartialEvents == 0 && cost.CFetch == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKFirstBeatsNaive(t *testing.T) {
	// The snake must never lose to restart-at-zero, and must strictly win
	// whenever there are run boundaries to exploit (Kb>1 with Mb>1 loses B
	// reuse at M steps; Nb>1 additionally loses A reuse).
	d := Dims{4, 4, 4}
	k := EvalIO(d, KFirst(d, OuterN), testSurf)
	n := EvalIO(d, Naive(d, OuterN), testSurf)
	if k.Total() >= n.Total() {
		t.Fatalf("KFirst %v not better than naive %v", k.Total(), n.Total())
	}
	// Naive still keeps C runs contiguous, so the gap is exactly the missed
	// A and B reuses.
	missedB := float64(d.Nb*(d.Mb-1)) * testSurf.B
	missedA := float64(d.Nb-1) * testSurf.A
	if got := n.Total() - k.Total(); got != missedA+missedB {
		t.Fatalf("reuse gap %v, want %v", got, missedA+missedB)
	}
}

func TestOrderChoiceMinimisesIO(t *testing.T) {
	// When Nb > Mb (B surface bigger side), OuterN must be at least as good;
	// symmetric for Mb > Nb. Surfaces scale with the same dims.
	dWide := Dims{Mb: 2, Nb: 6, Kb: 3}
	s := Surfaces{A: 100, B: 100, C: 300}
	on := EvalIO(dWide, KFirst(dWide, OuterN), s).Total()
	om := EvalIO(dWide, KFirst(dWide, OuterM), s).Total()
	if on > om {
		t.Fatalf("OuterN (%v) should win for wide space (OuterM %v)", on, om)
	}
	dTall := Dims{Mb: 6, Nb: 2, Kb: 3}
	on = EvalIO(dTall, KFirst(dTall, OuterN), s).Total()
	om = EvalIO(dTall, KFirst(dTall, OuterM), s).Total()
	if om > on {
		t.Fatalf("OuterM (%v) should win for tall space (OuterN %v)", om, on)
	}
}

func TestEvalIOCountsReuses(t *testing.T) {
	d := Dims{Mb: 2, Nb: 2, Kb: 2}
	cost := EvalIO(d, KFirst(d, OuterN), testSurf)
	// OuterN: B reused at each M step (Nb·(Mb−1) = 2), A at each N step (1),
	// C resident within each K run (Mb·Nb·(Kb−1) = 4).
	if cost.BReuses != 2 || cost.AReuses != 1 || cost.CReuses != 4 {
		t.Fatalf("reuses A/B/C = %d/%d/%d", cost.AReuses, cost.BReuses, cost.CReuses)
	}
	// C written once per (M,N).
	if cost.CWrite != 4*testSurf.C {
		t.Fatalf("CWrite=%v", cost.CWrite)
	}
}

func TestEvalIOChargesPartialRoundTrips(t *testing.T) {
	// A deliberately bad schedule: visit K=0 for all (M,N), then K=1 —
	// every C surface is left partial and must round-trip.
	d := Dims{Mb: 2, Nb: 1, Kb: 2}
	seq := []Coord{{0, 0, 0}, {1, 0, 0}, {0, 0, 1}, {1, 0, 1}}
	cost := EvalIO(d, seq, testSurf)
	if cost.PartialEvents != 2 {
		t.Fatalf("PartialEvents=%d want 2", cost.PartialEvents)
	}
	if cost.CFetch != 2*testSurf.C {
		t.Fatalf("CFetch=%v want %v", cost.CFetch, 2*testSurf.C)
	}
	// Its total must exceed K-first's.
	if best := EvalIO(d, KFirst(d, OuterN), testSurf); cost.Total() <= best.Total() {
		t.Fatal("partial-thrashing schedule should cost more than K-first")
	}
}

func TestEvalIOSingleBlock(t *testing.T) {
	d := Dims{1, 1, 1}
	cost := EvalIO(d, KFirst(d, OuterN), testSurf)
	if cost.Total() != testSurf.A+testSurf.B+testSurf.C {
		t.Fatalf("single block IO=%v", cost.Total())
	}
	if cost.PartialEvents != 0 {
		t.Fatal("complete single block flagged partial")
	}
}

func TestCostString(t *testing.T) {
	if EvalIO(Dims{1, 1, 1}, []Coord{{0, 0, 0}}, testSurf).String() == "" {
		t.Fatal("empty String")
	}
}

func TestRandomScheduleNeverBeatsKFirst(t *testing.T) {
	// Property: the K-first family is IO-optimal among sampled permutations
	// — no shuffle beats the better of the two snake orders. The baseline
	// must consider both orders: OrderFor picks by grid shape, which is the
	// right heuristic when the A and B surfaces are comparable, but
	// testSurf's asymmetric surfaces (B > A) make the opposite order
	// cheaper on shape-skewed grids, and a lucky shuffle can land on it.
	// (Verified exhaustively for all grids of ≤7 blocks: no permutation
	// beats the better snake.)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dims{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		best := EvalIO(d, KFirst(d, OuterM), testSurf).Total()
		if bn := EvalIO(d, KFirst(d, OuterN), testSurf).Total(); bn < best {
			best = bn
		}
		perm := KFirst(d, OuterN)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return EvalIO(d, perm, testSurf).Total() >= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
