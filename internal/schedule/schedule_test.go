package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimsValidate(t *testing.T) {
	if (Dims{2, 3, 4}).Validate() != nil {
		t.Fatal("valid dims rejected")
	}
	for _, d := range []Dims{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if d.Validate() == nil {
			t.Fatalf("invalid dims accepted: %+v", d)
		}
	}
	if (Dims{2, 3, 4}).Blocks() != 24 {
		t.Fatal("Blocks wrong")
	}
}

func TestOrderFor(t *testing.T) {
	if OrderFor(100, 200) != OuterN {
		t.Fatal("N>M should pick OuterN")
	}
	if OrderFor(100, 100) != OuterN {
		t.Fatal("N==M should pick OuterN (paper assumes N>=M)")
	}
	if OrderFor(200, 100) != OuterM {
		t.Fatal("M>N should pick OuterM")
	}
	if OuterN.String() != "OuterN" || OuterM.String() != "OuterM" {
		t.Fatal("Order.String")
	}
}

func TestKFirstPaperFigure3d(t *testing.T) {
	// Figure 3d: a 3-slice (Mb=3, Kb=3, one N index) executes blocks 1..9 in
	// a K-first snake: K runs forward, then the M step keeps K, then K runs
	// backward.
	seq := KFirst(Dims{Mb: 3, Nb: 1, Kb: 3}, OuterN)
	want := []Coord{
		{0, 0, 0}, {0, 0, 1}, {0, 0, 2},
		{1, 0, 2}, {1, 0, 1}, {1, 0, 0},
		{2, 0, 0}, {2, 0, 1}, {2, 0, 2},
	}
	if len(seq) != len(want) {
		t.Fatalf("len=%d", len(seq))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, seq[i], want[i])
		}
	}
}

func TestKFirstIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dims{1 + rng.Intn(6), 1 + rng.Intn(6), 1 + rng.Intn(6)}
		o := Order(rng.Intn(2))
		return IsPermutation(d, KFirst(d, o))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKFirstAdjacencyInvariant(t *testing.T) {
	// The paper's central scheduling property: every pair of consecutive
	// blocks shares at least one IO surface.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dims{1 + rng.Intn(6), 1 + rng.Intn(6), 1 + rng.Intn(6)}
		o := Order(rng.Intn(2))
		seq := KFirst(d, o)
		for i := 1; i < len(seq); i++ {
			a, b, c := Shared(seq[i-1], seq[i])
			if !a && !b && !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveLosesAdjacencyAtBoundaries(t *testing.T) {
	// With Kb > 1 and Mb > 1 the restart-at-zero schedule has transitions
	// sharing no surface (that's the point of the snake).
	seq := Naive(Dims{Mb: 2, Nb: 2, Kb: 3}, OuterN)
	broken := 0
	for i := 1; i < len(seq); i++ {
		a, b, c := Shared(seq[i-1], seq[i])
		if !a && !b && !c {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("naive schedule unexpectedly kept adjacency everywhere")
	}
}

func TestWalkMatchesKFirst(t *testing.T) {
	d := Dims{3, 4, 5}
	for _, o := range []Order{OuterN, OuterM} {
		var walked []Coord
		Walk(d, o, func(c Coord) { walked = append(walked, c) })
		gen := KFirst(d, o)
		if len(walked) != len(gen) {
			t.Fatal("length mismatch")
		}
		for i := range gen {
			if walked[i] != gen[i] {
				t.Fatalf("order %v step %d: %v vs %v", o, i, walked[i], gen[i])
			}
		}
	}
}

func TestKFirstKRunsAreContiguous(t *testing.T) {
	// Each (M,N) C surface must be completed in one contiguous run so
	// partial results never round-trip to DRAM.
	d := Dims{4, 3, 5}
	for _, o := range []Order{OuterN, OuterM} {
		seq := KFirst(d, o)
		done := map[[2]int]bool{}
		var curKey [2]int
		started := false
		for _, c := range seq {
			key := [2]int{c.M, c.N}
			if !started || key != curKey {
				if done[key] {
					t.Fatalf("order %v: C surface %v revisited after completion", o, key)
				}
				if started {
					done[curKey] = true
				}
				curKey = key
				started = true
			}
		}
	}
}

func TestInvalidDimsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"KFirst": func() { KFirst(Dims{0, 1, 1}, OuterN) },
		"Naive":  func() { Naive(Dims{1, 0, 1}, OuterN) },
		"Walk":   func() { Walk(Dims{1, 1, 0}, OuterN, func(Coord) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShared(t *testing.T) {
	a, b, c := Shared(Coord{1, 2, 3}, Coord{1, 5, 3})
	if !a || b || c {
		t.Fatal("same (M,K) should share A only")
	}
	a, b, c = Shared(Coord{1, 2, 3}, Coord{4, 2, 3})
	if a || !b || c {
		t.Fatal("same (K,N) should share B only")
	}
	a, b, c = Shared(Coord{1, 2, 3}, Coord{1, 2, 4})
	if a || b || !c {
		t.Fatal("same (M,N) should share C only")
	}
}

func TestIsPermutation(t *testing.T) {
	d := Dims{2, 2, 2}
	seq := KFirst(d, OuterN)
	if !IsPermutation(d, seq) {
		t.Fatal("KFirst should be a permutation")
	}
	if IsPermutation(d, seq[:7]) {
		t.Fatal("short sequence accepted")
	}
	dup := append([]Coord{}, seq...)
	dup[3] = dup[2]
	if IsPermutation(d, dup) {
		t.Fatal("duplicate accepted")
	}
	bad := append([]Coord{}, seq...)
	bad[0] = Coord{5, 0, 0}
	if IsPermutation(d, bad) {
		t.Fatal("out-of-range accepted")
	}
}
