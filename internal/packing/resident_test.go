package packing

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestBGridLayoutGeometry(t *testing.T) {
	l := BGridLayout{K: 50, N: 70, BK: 16, BN: 48, Strip: 0, NR: 8}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	kb, nb := l.Grid()
	if kb != 4 || nb != 2 {
		t.Fatalf("grid %dx%d, want 4x2", kb, nb)
	}
	// Interior cell: full extents.
	if k0, kEff, n0, nEff := l.CellSpan(1, 0); k0 != 16 || kEff != 16 || n0 != 0 || nEff != 48 {
		t.Fatalf("CellSpan(1,0) = %d,%d,%d,%d", k0, kEff, n0, nEff)
	}
	// Edge cell: clamped.
	if _, kEff, _, nEff := l.CellSpan(3, 1); kEff != 2 || nEff != 22 {
		t.Fatalf("edge cell %dx%d, want 2x22", kEff, nEff)
	}
	if got, want := l.CellElems(0, 0), PackedBSize(16, 48, 8); got != want {
		t.Fatalf("CellElems(0,0) = %d, want %d", got, want)
	}
	// Strip layout: fixed stride per strip, ragged tail still charged whole.
	ls := BGridLayout{K: 50, N: 70, BK: 32, BN: 48, Strip: 16, NR: 8}
	if got, want := ls.CellElems(1, 0), 2*PackedBSize(16, 48, 8); got != want {
		// Cell (1,·) spans K [32,50): 18 deep → two 16-deep strips.
		t.Fatalf("strip CellElems = %d, want %d", got, want)
	}
	if ls.TotalElems() <= 0 {
		t.Fatal("TotalElems must be positive")
	}

	if err := (BGridLayout{K: 0, N: 1, BK: 1, BN: 1, NR: 1}).Validate(); err == nil {
		t.Fatal("zero K accepted")
	}
	if err := (BGridLayout{K: 1, N: 1, BK: 1, BN: 1, NR: 1, Strip: -1}).Validate(); err == nil {
		t.Fatal("negative strip accepted")
	}
}

// TestPackBCellMatchesPackB checks every cell's packed image against PackB
// run on the same sub-block — the contract the executor's pack bypass
// depends on.
func TestPackBCellMatchesPackB(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := matrix.New[float64](50, 70)
	b.Randomize(rng)
	bt := matrix.New[float64](70, 50)
	for i := 0; i < 50; i++ {
		for j := 0; j < 70; j++ {
			bt.Data[j*bt.Stride+i] = b.At(i, j)
		}
	}
	for _, l := range []BGridLayout{
		{K: 50, N: 70, BK: 16, BN: 48, Strip: 0, NR: 8},
		{K: 50, N: 70, BK: 32, BN: 24, Strip: 16, NR: 8},
	} {
		kb, nb := l.Grid()
		for ki := 0; ki < kb; ki++ {
			for ni := 0; ni < nb; ni++ {
				k0, kEff, n0, nEff := l.CellSpan(ki, ni)
				got := make([]float64, l.CellElems(ki, ni))
				PackBCell(got, b, l, ki, ni, false)
				gotT := make([]float64, l.CellElems(ki, ni))
				PackBCell(gotT, bt, l, ki, ni, true)

				want := make([]float64, l.CellElems(ki, ni))
				if l.Strip <= 0 {
					PackB(want, b.View(k0, n0, kEff, nEff), l.NR)
				} else {
					stride := PackedBSize(l.Strip, nEff, l.NR)
					for s := 0; s*l.Strip < kEff; s++ {
						depth := min(l.Strip, kEff-s*l.Strip)
						PackB(want[s*stride:], b.View(k0+s*l.Strip, n0, depth, nEff), l.NR)
					}
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("layout %+v cell (%d,%d): element %d = %v, want %v", l, ki, ni, i, got[i], want[i])
					}
					if gotT[i] != want[i] {
						t.Fatalf("layout %+v cell (%d,%d) transposed: element %d = %v, want %v", l, ki, ni, i, gotT[i], want[i])
					}
				}
			}
		}
	}
}

func TestPackBCellShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	l := BGridLayout{K: 16, N: 16, BK: 16, BN: 16, NR: 8}
	PackBCell(make([]float64, 4), matrix.New[float64](16, 16), l, 0, 0, false)
}
