// Package packing implements the contiguous-buffer layouts that both the
// CAKE and GOTO drivers copy matrix operands into before computing
// (paper Section 5.2.1). Packing keeps kernel operands dense, prevents cache
// self-interference, and lets the LRU-eviction sizing rule of Section 4.3
// reason about whole surfaces.
//
// Layout contract (shared with internal/kernel):
//
//   - An A block of r×kc is stored as ceil(r/mr) row panels. Panel q holds
//     rows [q·mr, q·mr+mr) k-major: element (i, k) of the panel is at
//     dst[q·mr·kc + k·mr + i]. Rows past r are zero-padded.
//   - A B block of kc×c is stored as ceil(c/nr) column panels. Panel q holds
//     columns [q·nr, q·nr+nr) k-major: element (k, j) of the panel is at
//     dst[q·nr·kc + k·nr + j]. Columns past c are zero-padded.
//
// Zero padding means microkernels never see partial panels on the packed
// side; only the C write-back needs edge handling.
package packing

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

// PackedASize returns the buffer length needed to pack an r×kc A block in
// mr-row panels.
func PackedASize(r, kc, mr int) int {
	return ceilDiv(r, mr) * mr * kc
}

// PackedBSize returns the buffer length needed to pack a kc×c B block in
// nr-column panels.
func PackedBSize(kc, c, nr int) int {
	return ceilDiv(c, nr) * nr * kc
}

// PackA packs the dense block a (any r×kc view) into dst using mr-row
// panels, zero-padding the final partial panel, multiplying every element by
// scale on the way through (BLAS α folded into the single packing pass —
// scale 1 takes a multiply-free path). dst must have at least
// PackedASize(a.Rows, a.Cols, mr) elements; the used prefix is returned.
//
//cake:hotpath
func PackA[T matrix.Scalar](dst []T, a *matrix.Matrix[T], mr int, scale T) []T {
	r, kc := a.Rows, a.Cols
	n := PackedASize(r, kc, mr)
	if len(dst) < n {
		panic(fmt.Sprintf("packing: PackA dst %d < %d", len(dst), n))
	}
	dst = dst[:n]
	for q := 0; q < ceilDiv(r, mr); q++ {
		panel := dst[q*mr*kc : (q+1)*mr*kc]
		rows := min(mr, r-q*mr)
		for k := 0; k < kc; k++ {
			col := panel[k*mr : k*mr+mr]
			if scale == 1 {
				for i := 0; i < rows; i++ {
					col[i] = a.At(q*mr+i, k)
				}
			} else {
				for i := 0; i < rows; i++ {
					col[i] = a.At(q*mr+i, k) * scale
				}
			}
			for i := rows; i < mr; i++ {
				col[i] = 0
			}
		}
	}
	return dst
}

// PackB packs the dense block b (any kc×c view) into dst using nr-column
// panels, zero-padding the final partial panel. dst must have at least
// PackedBSize(b.Rows, b.Cols, nr) elements; the used prefix is returned.
//
//cake:hotpath
func PackB[T matrix.Scalar](dst []T, b *matrix.Matrix[T], nr int) []T {
	kc, c := b.Rows, b.Cols
	n := PackedBSize(kc, c, nr)
	if len(dst) < n {
		panic(fmt.Sprintf("packing: PackB dst %d < %d", len(dst), n))
	}
	dst = dst[:n]
	for q := 0; q < ceilDiv(c, nr); q++ {
		panel := dst[q*nr*kc : (q+1)*nr*kc]
		cols := min(nr, c-q*nr)
		for k := 0; k < kc; k++ {
			row := panel[k*nr : k*nr+nr]
			brow := b.Row(k)[q*nr : q*nr+cols]
			copy(row, brow)
			for j := cols; j < nr; j++ {
				row[j] = 0
			}
		}
	}
	return dst
}

// PackAT packs the transpose of the dense block at (a kc×r view, holding
// Aᵀ) into dst using the PackA layout: logical element A(i, k) = at(k, i),
// scaled by scale during the copy (scale 1 keeps the memmove fast path).
// Used for GEMM with a transposed left operand — the packed form is
// identical, so microkernels are oblivious to storage order.
//
//cake:hotpath
func PackAT[T matrix.Scalar](dst []T, at *matrix.Matrix[T], mr int, scale T) []T {
	kc, r := at.Rows, at.Cols
	n := PackedASize(r, kc, mr)
	if len(dst) < n {
		panic(fmt.Sprintf("packing: PackAT dst %d < %d", len(dst), n))
	}
	dst = dst[:n]
	for q := 0; q < ceilDiv(r, mr); q++ {
		panel := dst[q*mr*kc : (q+1)*mr*kc]
		rows := min(mr, r-q*mr)
		for k := 0; k < kc; k++ {
			col := panel[k*mr : k*mr+mr]
			arow := at.Row(k)[q*mr : q*mr+rows]
			if scale == 1 {
				copy(col, arow)
			} else {
				for i, v := range arow {
					col[i] = v * scale
				}
			}
			for i := rows; i < mr; i++ {
				col[i] = 0
			}
		}
	}
	return dst
}

// PackBT packs the transpose of the dense block bt (a c×kc view, holding
// Bᵀ) into dst using the PackB layout: logical element B(k, j) = bt(j, k).
//
//cake:hotpath
func PackBT[T matrix.Scalar](dst []T, bt *matrix.Matrix[T], nr int) []T {
	c, kc := bt.Rows, bt.Cols
	n := PackedBSize(kc, c, nr)
	if len(dst) < n {
		panic(fmt.Sprintf("packing: PackBT dst %d < %d", len(dst), n))
	}
	dst = dst[:n]
	for q := 0; q < ceilDiv(c, nr); q++ {
		panel := dst[q*nr*kc : (q+1)*nr*kc]
		cols := min(nr, c-q*nr)
		for k := 0; k < kc; k++ {
			row := panel[k*nr : k*nr+nr]
			for j := 0; j < cols; j++ {
				row[j] = bt.At(q*nr+j, k)
			}
			for j := cols; j < nr; j++ {
				row[j] = 0
			}
		}
	}
	return dst
}

// Macro runs the macro-kernel: C += Aᵖ × Bᵖ where Aᵖ packs c.Rows×kc and Bᵖ
// packs kc×c.Cols per the layout contract. It sweeps register tiles in the
// jr-inside-ir order of Figures 5c–d/6c–d (each A row panel is reused across
// all B column panels, the per-core reuse pattern of Section 2.1).
//
//cake:hotpath
func Macro[T matrix.Scalar](k kernel.Kernel[T], kc int, ap, bp []T, c *matrix.Matrix[T], s *kernel.Scratch[T]) {
	mPanels := ceilDiv(c.Rows, k.MR)
	nPanels := ceilDiv(c.Cols, k.NR)
	for ir := 0; ir < mPanels; ir++ {
		aPanel := ap[ir*k.MR*kc : (ir+1)*k.MR*kc]
		rows := min(k.MR, c.Rows-ir*k.MR)
		for jr := 0; jr < nPanels; jr++ {
			bPanel := bp[jr*k.NR*kc : (jr+1)*k.NR*kc]
			cols := min(k.NR, c.Cols-jr*k.NR)
			if rows == k.MR && cols == k.NR {
				// Full tile: write straight into C, no view allocation —
				// this is the hot path for everything but edge tiles.
				k.F(kc, aPanel, bPanel, c.Data[ir*k.MR*c.Stride+jr*k.NR:], c.Stride)
				continue
			}
			ct := c.View(ir*k.MR, jr*k.NR, k.MR, k.NR)
			kernel.ComputeTile(k, kc, aPanel, bPanel, ct, s)
		}
	}
}

// AddInto accumulates src into dst element-wise (dst += src). Used to fold a
// locally accumulated CB-block C buffer back into the output matrix once its
// K reduction completes.
//
//cake:hotpath
func AddInto[T matrix.Scalar](dst, src *matrix.Matrix[T]) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("packing: AddInto %dx%d += %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for j := range d {
			d[j] += s[j]
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
