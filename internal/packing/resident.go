// Resident-operand layout snapshot: a B operand packed once into the exact
// per-CB-block panel grid the executors read, so serving paths can skip
// PackB entirely (internal/engine/resident owns the lifetime; this file owns
// the geometry). The layout is a pure function of the executor Config — the
// store packs against it at registration and the executor verifies it at
// dispatch, so a stale snapshot is an error, never a wrong answer.
package packing

import (
	"fmt"

	"repro/internal/matrix"
)

// BGridLayout describes how a full K×N B operand decomposes into the packed
// per-block buffers an executor reads. Blocks tile the operand BK×BN; within
// a block the buffer is either one PackB image of the whole kEff×nEff cell
// (Strip == 0, the DimN/DimM schedules — DimM's nc-wide sub-strips are
// contiguous sub-ranges of that image because Validate forces MC%NR == 0) or
// ceil(kEff/Strip) reduction strips of fixed stride PackedBSize(Strip, nEff,
// NR) (the DimK schedule, Strip = KC).
type BGridLayout struct {
	K, N   int // logical operand extents
	BK, BN int // CB-block extents along K and N
	Strip  int // reduction-strip depth inside a block; 0 = single strip
	NR     int // kernel panel width the cells are packed for
}

// Validate rejects geometry no executor could have produced.
func (l BGridLayout) Validate() error {
	if l.K <= 0 || l.N <= 0 || l.BK <= 0 || l.BN <= 0 || l.NR <= 0 {
		return fmt.Errorf("packing: BGridLayout %+v has non-positive extent", l)
	}
	if l.Strip < 0 {
		return fmt.Errorf("packing: BGridLayout strip %d < 0", l.Strip)
	}
	return nil
}

// Grid returns the block-grid extents: blocks along K, blocks along N.
func (l BGridLayout) Grid() (kb, nb int) {
	return ceilDiv(l.K, l.BK), ceilDiv(l.N, l.BN)
}

// CellSpan resolves grid cell (ki, ni) to element coordinates: the origin
// and the clamped extents of the block, matching the executor's edge-block
// clamping.
func (l BGridLayout) CellSpan(ki, ni int) (k0, kEff, n0, nEff int) {
	k0, n0 = ki*l.BK, ni*l.BN
	return k0, min(l.BK, l.K-k0), n0, min(l.BN, l.N-n0)
}

// CellElems returns the packed buffer length of cell (ki, ni).
func (l BGridLayout) CellElems(ki, ni int) int {
	_, kEff, _, nEff := l.CellSpan(ki, ni)
	if l.Strip <= 0 {
		return PackedBSize(kEff, nEff, l.NR)
	}
	return ceilDiv(kEff, l.Strip) * PackedBSize(l.Strip, nEff, l.NR)
}

// TotalElems sums every cell's packed length — the resident footprint of the
// whole operand in elements.
func (l BGridLayout) TotalElems() int {
	kb, nb := l.Grid()
	total := 0
	for ki := 0; ki < kb; ki++ {
		for ni := 0; ni < nb; ni++ {
			total += l.CellElems(ki, ni)
		}
	}
	return total
}

// PackBCell packs grid cell (ki, ni) of the logical B operand into dst.
// When transB, b holds Bᵀ (an N×K matrix) and the gather pays the strided
// PackBT walk — once, at registration, which is the point of the resident
// store. dst needs CellElems(ki, ni) elements; the used prefix is returned.
func PackBCell[T matrix.Scalar](dst []T, b *matrix.Matrix[T], l BGridLayout, ki, ni int, transB bool) []T {
	k0, kEff, n0, nEff := l.CellSpan(ki, ni)
	need := l.CellElems(ki, ni)
	if len(dst) < need {
		panic(fmt.Sprintf("packing: PackBCell dst %d < %d", len(dst), need))
	}
	dst = dst[:need]
	pack := func(off []T, kk0, depth int) {
		if transB {
			PackBT(off, b.View(n0, kk0, nEff, depth), l.NR)
		} else {
			PackB(off, b.View(kk0, n0, depth, nEff), l.NR)
		}
	}
	if l.Strip <= 0 {
		pack(dst, k0, kEff)
		return dst
	}
	stride := PackedBSize(l.Strip, nEff, l.NR)
	for s := 0; s*l.Strip < kEff; s++ {
		depth := min(l.Strip, kEff-s*l.Strip)
		pack(dst[s*stride:], k0+s*l.Strip, depth)
	}
	return dst
}
