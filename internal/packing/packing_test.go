package packing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

func TestPackedSizes(t *testing.T) {
	if s := PackedASize(10, 4, 8); s != 2*8*4 {
		t.Fatalf("PackedASize=%d want 64", s)
	}
	if s := PackedASize(16, 4, 8); s != 2*8*4 {
		t.Fatalf("PackedASize exact=%d want 64", s)
	}
	if s := PackedBSize(3, 9, 8); s != 2*8*3 {
		t.Fatalf("PackedBSize=%d want 48", s)
	}
}

func TestPackARoundTrip(t *testing.T) {
	const mr = 4
	rng := rand.New(rand.NewSource(1))
	a := matrix.New[float64](10, 6) // 10 rows: two full panels + one half panel
	a.Randomize(rng)
	buf := make([]float64, PackedASize(10, 6, mr))
	PackA(buf, a, mr, 1)

	for q := 0; q < 3; q++ {
		for k := 0; k < 6; k++ {
			for i := 0; i < mr; i++ {
				got := buf[q*mr*6+k*mr+i]
				row := q*mr + i
				var want float64
				if row < 10 {
					want = a.At(row, k)
				}
				if got != want {
					t.Fatalf("panel %d k=%d i=%d: got %v want %v", q, k, i, got, want)
				}
			}
		}
	}
}

func TestPackBRoundTrip(t *testing.T) {
	const nr = 4
	rng := rand.New(rand.NewSource(2))
	b := matrix.New[float64](5, 10)
	b.Randomize(rng)
	buf := make([]float64, PackedBSize(5, 10, nr))
	PackB(buf, b, nr)

	for q := 0; q < 3; q++ {
		for k := 0; k < 5; k++ {
			for j := 0; j < nr; j++ {
				got := buf[q*nr*5+k*nr+j]
				col := q*nr + j
				var want float64
				if col < 10 {
					want = b.At(k, col)
				}
				if got != want {
					t.Fatalf("panel %d k=%d j=%d: got %v want %v", q, k, j, got, want)
				}
			}
		}
	}
}

func TestPackFromViews(t *testing.T) {
	// Packing must work from strided views (the drivers always pack views).
	rng := rand.New(rand.NewSource(3))
	big := matrix.New[float32](20, 20)
	big.Randomize(rng)
	v := big.View(3, 5, 7, 6)
	buf := make([]float32, PackedASize(7, 6, 8))
	PackA(buf, v, 8, 1)
	if buf[0] != big.At(3, 5) || buf[1] != big.At(4, 5) {
		t.Fatal("PackA from view reads wrong elements")
	}
	// Padding rows (7..8) must be zero.
	if buf[7] != 0 {
		t.Fatal("PackA padding not zeroed")
	}

	bbuf := make([]float32, PackedBSize(7, 6, 8))
	PackB(bbuf, v, 8)
	if bbuf[0] != big.At(3, 5) || bbuf[1] != big.At(3, 6) {
		t.Fatal("PackB from view reads wrong elements")
	}
	if bbuf[6] != 0 || bbuf[7] != 0 {
		t.Fatal("PackB padding not zeroed")
	}
}

func TestPackShortDstPanics(t *testing.T) {
	a := matrix.New[float32](8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackA(make([]float32, 10), a, 8, 1)
}

func TestPackBShortDstPanics(t *testing.T) {
	b := matrix.New[float32](8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackB(make([]float32, 10), b, 8)
}

func TestPackReusesDirtyBuffer(t *testing.T) {
	// Packing into a previously used buffer must fully overwrite padding.
	a := matrix.New[float64](5, 3)
	a.Fill(1)
	buf := make([]float64, PackedASize(5, 3, 4))
	for i := range buf {
		buf[i] = 99
	}
	PackA(buf, a, 4, 1)
	// Row 5..7 of the second panel are padding and must now be zero.
	for k := 0; k < 3; k++ {
		for i := 1; i < 4; i++ {
			if buf[4*3+k*4+i] != 0 {
				t.Fatalf("dirty padding survived at k=%d i=%d", k, i)
			}
		}
	}
}

func macroVsNaive(t *testing.T, m, n, kc int, mr, nr int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[float64](m, kc)
	b := matrix.New[float64](kc, n)
	a.Randomize(rng)
	b.Randomize(rng)

	ap := PackA(make([]float64, PackedASize(m, kc, mr)), a, mr, 1)
	bp := PackB(make([]float64, PackedBSize(kc, n, nr)), b, nr)

	got := matrix.New[float64](m, n)
	got.Randomize(rng)
	want := got.Clone()

	k := kernel.Best[float64](mr, nr)
	Macro(k, kc, ap, bp, got, kernel.NewScratch[float64](mr, nr))
	matrix.NaiveGemm(want, a, b)

	if !got.AlmostEqual(want, kc, 1e-12) {
		t.Fatalf("macro %dx%dx%d mr=%d nr=%d: diff %g", m, n, kc, mr, nr, got.MaxAbsDiff(want))
	}
}

func TestMacroMatchesNaiveExactTiles(t *testing.T) {
	macroVsNaive(t, 16, 16, 8, 8, 8, 1)
	macroVsNaive(t, 8, 24, 16, 4, 8, 2)
}

func TestMacroMatchesNaiveEdges(t *testing.T) {
	macroVsNaive(t, 13, 9, 7, 8, 8, 3)
	macroVsNaive(t, 1, 1, 1, 8, 8, 4)
	macroVsNaive(t, 5, 17, 3, 4, 4, 5)
	macroVsNaive(t, 23, 2, 11, 6, 8, 6)
}

func TestMacroQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		kc := 1 + rng.Intn(30)
		shapes := [][2]int{{8, 8}, {4, 8}, {4, 4}, {6, 8}, {3, 5}}
		s := shapes[rng.Intn(len(shapes))]

		a := matrix.New[float64](m, kc)
		b := matrix.New[float64](kc, n)
		a.Randomize(rng)
		b.Randomize(rng)
		ap := PackA(make([]float64, PackedASize(m, kc, s[0])), a, s[0], 1)
		bp := PackB(make([]float64, PackedBSize(kc, n, s[1])), b, s[1])

		got := matrix.New[float64](m, n)
		want := matrix.New[float64](m, n)
		Macro(kernel.Best[float64](s[0], s[1]), kc, ap, bp, got, kernel.NewScratch[float64](s[0], s[1]))
		matrix.NaiveGemm(want, a, b)
		return got.AlmostEqual(want, kc, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMacroWritesOnlyItsRegion(t *testing.T) {
	host := matrix.New[float64](12, 12)
	cv := host.View(2, 2, 5, 5)
	a := matrix.New[float64](5, 4)
	b := matrix.New[float64](4, 5)
	a.Fill(1)
	b.Fill(1)
	ap := PackA(make([]float64, PackedASize(5, 4, 8)), a, 8, 1)
	bp := PackB(make([]float64, PackedBSize(4, 5, 8)), b, 8)
	Macro(kernel.Best[float64](8, 8), 4, ap, bp, cv, kernel.NewScratch[float64](8, 8))
	if host.At(2, 2) != 4 {
		t.Fatalf("inside view: got %v want 4", host.At(2, 2))
	}
	if host.At(1, 1) != 0 || host.At(7, 7) != 0 || host.At(2, 7) != 0 {
		t.Fatal("macro wrote outside C view")
	}
}

func TestAddInto(t *testing.T) {
	d := matrix.New[float32](2, 2)
	d.Fill(1)
	s := matrix.New[float32](2, 2)
	s.Fill(2)
	AddInto(d, s)
	if d.At(1, 1) != 3 {
		t.Fatalf("AddInto got %v want 3", d.At(1, 1))
	}
}

func TestAddIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddInto(matrix.New[float32](2, 2), matrix.New[float32](2, 3))
}

func TestPackATMatchesPackA(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := matrix.New[float64](13, 9)
	a.Randomize(rng)
	want := PackA(make([]float64, PackedASize(13, 9, 8)), a, 8, 1)
	got := PackAT(make([]float64, PackedASize(13, 9, 8)), a.Transpose(), 8, 1)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("PackAT differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPackBTMatchesPackB(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := matrix.New[float64](9, 13)
	b.Randomize(rng)
	want := PackB(make([]float64, PackedBSize(9, 13, 8)), b, 8)
	got := PackBT(make([]float64, PackedBSize(9, 13, 8)), b.Transpose(), 8)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("PackBT differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPackTransShortDstPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"PackAT": func() { PackAT(make([]float64, 3), matrix.New[float64](4, 8), 8, 1) },
		"PackBT": func() { PackBT(make([]float64, 3), matrix.New[float64](8, 4), 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPackTransFromViews(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	big := matrix.New[float64](30, 30)
	big.Randomize(rng)
	// A 6×7 logical A block whose transpose lives at (2,3) as a 7×6 view.
	at := big.View(2, 3, 7, 6)
	got := PackAT(make([]float64, PackedASize(6, 7, 8)), at, 8, 1)
	want := PackA(make([]float64, PackedASize(6, 7, 8)), at.Clone().Transpose(), 8, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PackAT view mismatch at %d", i)
		}
	}
	bt := big.View(5, 1, 6, 7)
	gotB := PackBT(make([]float64, PackedBSize(7, 6, 8)), bt, 8)
	wantB := PackB(make([]float64, PackedBSize(7, 6, 8)), bt.Clone().Transpose(), 8)
	for i := range wantB {
		if gotB[i] != wantB[i] {
			t.Fatalf("PackBT view mismatch at %d", i)
		}
	}
}

func TestPackAScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := matrix.New[float64](11, 7) // ragged: padding must stay zero
	a.Randomize(rng)
	plain := PackA(make([]float64, PackedASize(11, 7, 8)), a, 8, 1)
	scaled := PackA(make([]float64, PackedASize(11, 7, 8)), a, 8, 2.5)
	for i := range plain {
		if scaled[i] != plain[i]*2.5 {
			t.Fatalf("PackA scale at %d: got %v want %v", i, scaled[i], plain[i]*2.5)
		}
	}
}

func TestPackATScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := matrix.New[float64](9, 5)
	a.Randomize(rng)
	want := PackA(make([]float64, PackedASize(9, 5, 8)), a, 8, -3)
	got := PackAT(make([]float64, PackedASize(9, 5, 8)), a.Transpose(), 8, -3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PackAT scale at %d: got %v want %v", i, got[i], want[i])
		}
	}
}
