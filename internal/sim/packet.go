package sim

import "fmt"

// ModuleID names a hardware module in the simulated machine.
type ModuleID int

// Fixed module identities; core n is CoreBase + n.
const (
	ModDRAM ModuleID = iota
	ModLLC
	CoreBase // first core; cores occupy [CoreBase, CoreBase+p)
)

func (m ModuleID) String() string {
	switch {
	case m == ModDRAM:
		return "DRAM"
	case m == ModLLC:
		return "LLC"
	default:
		return fmt.Sprintf("core%d", int(m-CoreBase))
	}
}

// PacketKind classifies a packet's payload.
type PacketKind uint8

const (
	PktA      PacketKind = iota // A-surface tile data
	PktB                        // B-surface tile data
	PktCWrite                   // completed C results heading to DRAM
	PktCtl                      // control (block-done notifications)
)

func (k PacketKind) String() string {
	switch k {
	case PktA:
		return "A"
	case PktB:
		return "B"
	case PktCWrite:
		return "Cw"
	default:
		return "ctl"
	}
}

// Packet is the standardised message of Section 6.2: a source route in the
// header, the tile's index into the computation space and CB block, and the
// payload size. Packets advance one hop per link traversal.
type Packet struct {
	Route []ModuleID // source routing: Route[0] is the origin
	Hop   int        // index of the module currently holding the packet
	Kind  PacketKind
	Block int   // CB block sequence number in the schedule
	Tile  int   // tile index within the block
	Bytes int64 // payload size
}

// Dst returns the packet's final destination.
func (p *Packet) Dst() ModuleID { return p.Route[len(p.Route)-1] }

// AtDst reports whether the packet has reached its destination.
func (p *Packet) AtDst() bool { return p.Hop == len(p.Route)-1 }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%s blk=%d tile=%d %dB %v@%d}", p.Kind, p.Block, p.Tile, p.Bytes, p.Route, p.Hop)
}

// Link is a bandwidth- and latency-constrained point-to-point channel.
// Transfers serialise: a packet occupies the link for Bytes/bw cycles, and
// arrives latency cycles after its serialisation completes.
type Link struct {
	eng       *Engine
	bw        float64 // bytes per cycle
	latency   int64   // cycles
	busyUntil int64

	BytesCarried int64
	BusyCycles   int64
}

// NewLink creates a link. bw must be positive.
func NewLink(eng *Engine, bytesPerCycle float64, latency int64) *Link {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("sim: link bandwidth %v", bytesPerCycle))
	}
	return &Link{eng: eng, bw: bytesPerCycle, latency: latency}
}

// Send schedules deliver(pkt) after the packet serialises over the link,
// respecting earlier queued transfers. It returns the arrival time.
func (l *Link) Send(pkt *Packet, deliver func(*Packet)) int64 {
	start := max(l.eng.Now(), l.busyUntil)
	ser := int64((float64(pkt.Bytes) + l.bw - 1) / l.bw)
	if ser < 1 {
		ser = 1
	}
	l.busyUntil = start + ser
	l.BytesCarried += pkt.Bytes
	l.BusyCycles += ser
	arrive := l.busyUntil + l.latency
	l.eng.At(arrive, func() { deliver(pkt) })
	return arrive
}

// FreeAt returns the earliest time a new transfer could start.
func (l *Link) FreeAt() int64 { return max(l.eng.Now(), l.busyUntil) }
