package sim

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

func sumOps(ops []BlockOp) (macs, reads, writes, demand int64) {
	for _, op := range ops {
		macs += op.MACs
		reads += op.FetchA + op.FetchB + op.DemandRead
		writes += op.WriteC + op.DemandWrite
		demand += op.DemandRead + op.DemandWrite
	}
	return
}

func TestCakeOpsValidation(t *testing.T) {
	if _, err := CakeOps(CakeWorkload{}, 10, 10, 10); err == nil {
		t.Fatal("zero workload accepted")
	}
	w := CakeWorkload{P: 2, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	if _, err := CakeOps(w, 0, 10, 10); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestCakeOpsConservation(t *testing.T) {
	w := CakeWorkload{P: 2, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	m, k, n := 40, 30, 50
	ops, err := CakeOps(w, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	macs, _, writes, demand := sumOps(ops)
	if macs != int64(m)*int64(k)*int64(n) {
		t.Fatalf("MACs %d != %d", macs, m*k*n)
	}
	// Every C element written back exactly once; no demand traffic.
	if writes != int64(m)*int64(n)*4 {
		t.Fatalf("writes %d", writes)
	}
	if demand != 0 {
		t.Fatal("CAKE must have no demand traffic (partials stay local)")
	}
}

func TestCakeOpsReuseMatchesSchedule(t *testing.T) {
	// 2×2×2 block grid with exact tiling: the K-first snake reuses A at the
	// single N step and B at the two M steps.
	w := CakeWorkload{P: 2, MC: 8, KC: 16, Alpha: 1, MR: 8, NR: 8, ElemBytes: 1}
	m, k, n := 32, 32, 32 // block 16×16×16 → grid 2×2×2
	ops, err := CakeOps(w, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 8 {
		t.Fatalf("blocks %d", len(ops))
	}
	var aFetches, bFetches int
	for _, op := range ops {
		if op.FetchA > 0 {
			aFetches++
		}
		if op.FetchB > 0 {
			bFetches++
		}
	}
	if aFetches != 8-1 { // A reused across the 1 N step
		t.Fatalf("A fetches %d", aFetches)
	}
	if bFetches != 8-2 { // B reused across the 2 M steps
		t.Fatalf("B fetches %d", bFetches)
	}
}

func TestCakeOpsActiveCores(t *testing.T) {
	// M smaller than one block row: only some cores active.
	w := CakeWorkload{P: 4, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	ops, err := CakeOps(w, 17, 8, 32) // 3 strips of mc=8
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Active != 3 {
			t.Fatalf("active %d want 3", op.Active)
		}
	}
}

func TestGotoOpsConservation(t *testing.T) {
	w := GotoWorkload{P: 2, MC: 8, KC: 8, NC: 16, MR: 8, NR: 8, ElemBytes: 4}
	m, k, n := 40, 24, 33
	ops, err := GotoOps(w, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	macs, _, writes, _ := sumOps(ops)
	if macs != int64(m)*int64(k)*int64(n) {
		t.Fatalf("MACs %d", macs)
	}
	// C streams out once per pc iteration: M·N·ceil(K/kc) elements.
	if want := int64(m) * int64(n) * 3 * 4; writes != want {
		t.Fatalf("writes %d want %d", writes, want)
	}
}

func TestGotoOpsDemandReadsAfterFirstPc(t *testing.T) {
	w := GotoWorkload{P: 2, MC: 8, KC: 8, NC: 64, MR: 8, NR: 8, ElemBytes: 4}
	ops, err := GotoOps(w, 16, 24, 64) // 3 pc iterations, 1 ic round each
	if err != nil {
		t.Fatal(err)
	}
	var reads int64
	for _, op := range ops {
		reads += op.DemandRead
	}
	// Partials read back on pc=1,2: 2 × M·N.
	if want := int64(2 * 16 * 64 * 4); reads != want {
		t.Fatalf("demand reads %d want %d", reads, want)
	}
}

func TestGotoOpsValidation(t *testing.T) {
	if _, err := GotoOps(GotoWorkload{}, 1, 1, 1); err == nil {
		t.Fatal("zero workload accepted")
	}
	w := GotoWorkload{P: 1, MC: 8, KC: 8, NC: 8, MR: 8, NR: 8, ElemBytes: 4}
	if _, err := GotoOps(w, 1, 0, 1); err == nil {
		t.Fatal("zero dims accepted")
	}
}

// simulateBoth runs CAKE and GOTO programs for a platform at p cores on an
// s×s×s problem (mirrors the experiments harness, scaled down for tests).
func simulateBoth(t *testing.T, pl *platform.Platform, p, s int) (cake, gt Metrics) {
	t.Helper()
	mc := 64 // modest block; LLC-safe for every Table 2 platform at small p
	cw := CakeWorkload{P: p, MC: mc, KC: mc, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	cakeOps, err := CakeOps(cw, s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	gw := GotoWorkload{P: p, MC: 48, KC: 48, NC: 1024, MR: 8, NR: 8, ElemBytes: 4}
	gotoOps, err := GotoOps(gw, s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FromPlatform(pl, p)
	cake, err = Run(cfg, cakeOps)
	if err != nil {
		t.Fatal(err)
	}
	gt, err = Run(cfg, gotoOps)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestCakeConstantBWGotoGrowingBW(t *testing.T) {
	// The headline of Figures 10a–12a: as cores increase, CAKE's DRAM
	// bandwidth stays ~constant while GOTO's grows.
	pl := platform.IntelI9()
	var cakeBW, gotoBW []float64
	for _, p := range []int{1, 2, 4, 8} {
		c, g := simulateBoth(t, pl, p, 1536)
		cakeBW = append(cakeBW, c.AvgDRAMBW(pl.ClockHz))
		gotoBW = append(gotoBW, g.AvgDRAMBW(pl.ClockHz))
	}
	if cakeBW[3] > 1.6*cakeBW[1] {
		t.Fatalf("CAKE BW grew with cores: %v", cakeBW)
	}
	if gotoBW[3] < 2.5*gotoBW[0] {
		t.Fatalf("GOTO BW did not grow with cores: %v", gotoBW)
	}
}

func TestCakeThroughputScalesOnARM(t *testing.T) {
	// Figure 11b: CAKE keeps scaling to 4 cores on the A53; the GOTO proxy
	// falls behind because its partial-C demand traffic stalls the in-order
	// cores against 2 GB/s of DRAM.
	pl := platform.ARMCortexA53()
	c1, _ := simulateBoth(t, pl, 1, 768)
	c4, g4 := simulateBoth(t, pl, 4, 768)
	cakeSpeedup := c4.ThroughputGFLOPS(pl.ClockHz) / c1.ThroughputGFLOPS(pl.ClockHz)
	if cakeSpeedup < 3 {
		t.Fatalf("CAKE 4-core speedup %v too low", cakeSpeedup)
	}
	if g4.ThroughputGFLOPS(pl.ClockHz) >= c4.ThroughputGFLOPS(pl.ClockHz) {
		t.Fatalf("GOTO (%v) should trail CAKE (%v) on the A53",
			g4.ThroughputGFLOPS(pl.ClockHz), c4.ThroughputGFLOPS(pl.ClockHz))
	}
}

func TestSimThroughputBelowPeak(t *testing.T) {
	// Sanity: no platform exceeds its compute roof.
	for _, pl := range platform.All() {
		c, g := simulateBoth(t, pl, pl.Cores, 768)
		peak := pl.PeakGFLOPS(pl.Cores)
		if c.ThroughputGFLOPS(pl.ClockHz) > peak*1.01 {
			t.Fatalf("%s: CAKE exceeds peak", pl.Name)
		}
		if g.ThroughputGFLOPS(pl.ClockHz) > peak*1.01 {
			t.Fatalf("%s: GOTO exceeds peak", pl.Name)
		}
	}
}

func TestRunEnforcesFootprint(t *testing.T) {
	cfg := testCfg()
	cfg.LLCBytes = 1000
	ops := []BlockOp{{MACs: 100, Active: 1, Footprint: 2000}}
	if _, err := Run(cfg, ops); err == nil {
		t.Fatal("over-footprint program accepted")
	}
	ops[0].Footprint = 900
	if _, err := Run(cfg, ops); err != nil {
		t.Fatal(err)
	}
	// Unchecked when either side is zero.
	cfg.LLCBytes = 0
	ops[0].Footprint = 1 << 40
	if _, err := Run(cfg, ops); err != nil {
		t.Fatal("LLCBytes=0 should disable the check")
	}
}

func TestCakeOpsFootprintMatchesLRURule(t *testing.T) {
	w := CakeWorkload{P: 2, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	ops, err := CakeOps(w, 32, 32, 32) // exact blocks of 16×8×16
	if err != nil {
		t.Fatal(err)
	}
	want := int64(16*16+2*(16*8+8*16)) * 4
	for _, op := range ops {
		if op.Footprint != want {
			t.Fatalf("footprint %d want %d", op.Footprint, want)
		}
	}
}

func TestCakeOpsMatchesScheduleEvalIO(t *testing.T) {
	// Two independent implementations of the same reuse accounting — the
	// schedule-level cost model and the workload compiler — must agree
	// exactly on external traffic for exact tilings.
	w := CakeWorkload{P: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	m, k, n := 96, 64, 128 // blocks 32×16×32 → grid 3×4×4
	ops, err := CakeOps(w, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	var fetchA, fetchB, writeC int64
	for _, op := range ops {
		fetchA += op.FetchA
		fetchB += op.FetchB
		writeC += op.WriteC
	}

	d := schedule.Dims{Mb: 3, Nb: 4, Kb: 4}
	surf := schedule.Surfaces{A: 32 * 16, B: 16 * 32, C: 32 * 32}
	cost := schedule.EvalIO(d, schedule.KFirst(d, schedule.OrderFor(m, n)), surf)
	if fetchA != int64(cost.AFetch)*4 {
		t.Fatalf("A traffic: ops %d vs EvalIO %v", fetchA, cost.AFetch*4)
	}
	if fetchB != int64(cost.BFetch)*4 {
		t.Fatalf("B traffic: ops %d vs EvalIO %v", fetchB, cost.BFetch*4)
	}
	if writeC != int64(cost.CWrite)*4 {
		t.Fatalf("C traffic: ops %d vs EvalIO %v", writeC, cost.CWrite*4)
	}
	if cost.CFetch != 0 {
		t.Fatal("K-first must never re-fetch partials")
	}
}
