package sim

import (
	"fmt"

	"repro/internal/platform"
)

// MachineConfig parameterises the simulated machine (Figure 1's
// architecture: external DRAM, shared local memory, p cores).
type MachineConfig struct {
	Cores            int
	MACsPerCoreCycle float64 // per-core multiply-accumulates per cycle
	ExtBW            float64 // DRAM↔LLC bandwidth, bytes/cycle
	IntBW            float64 // LLC↔cores aggregate bandwidth, bytes/cycle
	ExtLatency       int64   // DRAM access latency, cycles
	IntLatency       int64   // LLC access latency, cycles
	PacketBytes      int64   // max payload per packet (0 → default 64 KiB)
	LLCBytes         int64   // shared local memory capacity (0 → unchecked)

	// DemandOverlap ∈ [0,1]: the fraction of a block's demand-miss DRAM
	// traffic the cores hide behind computation (platform.DemandOverlap).
	DemandOverlap float64
}

// FromPlatform builds the machine model for a Table 2 platform running p of
// its cores.
func FromPlatform(pl *platform.Platform, p int) MachineConfig {
	return MachineConfig{
		Cores:            p,
		MACsPerCoreCycle: pl.FlopsPerCycle / 2,
		ExtBW:            pl.DRAMBW / pl.ClockHz,
		IntBW:            pl.Internal.At(p) / pl.ClockHz,
		ExtLatency:       int64(pl.LatDRAM),
		IntLatency:       int64(pl.LatLLC),
		PacketBytes:      64 << 10,
		LLCBytes:         pl.LLCBytes,
		DemandOverlap:    pl.DemandOverlap,
	}
}

// Validate reports the first problem with the configuration.
func (c MachineConfig) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("sim: %d cores", c.Cores)
	case c.MACsPerCoreCycle <= 0:
		return fmt.Errorf("sim: MAC rate %v", c.MACsPerCoreCycle)
	case c.ExtBW <= 0 || c.IntBW <= 0:
		return fmt.Errorf("sim: bandwidths ext=%v int=%v", c.ExtBW, c.IntBW)
	default:
		return nil
	}
}

// BlockOp is one scheduled block of work: the IO a block needs before
// compute, the local traffic during compute, and the results it retires.
// The workload builders (CakeOps, GotoOps) emit these from the respective
// schedules with all surface reuse already applied.
type BlockOp struct {
	FetchA int64 // DRAM→LLC bytes of A not reused from the previous block
	FetchB int64 // DRAM→LLC bytes of B not reused
	WriteC int64 // LLC→DRAM bytes retired after this block (overlappable)
	// Demand traffic: DRAM transfers the kernel issues inline with
	// computation (GOTO's partial-C read-modify-write streams). Unlike the
	// prefetched Fetch* surfaces these cannot be double-buffered; the
	// machine hides only DemandOverlap of their cost.
	DemandRead  int64
	DemandWrite int64
	Internal    int64 // LLC↔cores bytes moved during compute (kernel-level)
	MACs        int64 // multiply-accumulates in the block
	Active      int   // cores with work in this block (≤ Cores)
	// Footprint is the local-memory demand of executing this block with
	// double buffering (the Section 4.3 rule: resident C plus two
	// generations of input surfaces). Zero means unchecked.
	Footprint int64
}

// Metrics is the outcome of a simulation run.
type Metrics struct {
	Cycles         int64 // total makespan
	MACs           int64
	Blocks         int
	DRAMReadBytes  int64
	DRAMWriteBytes int64
	InternalBytes  int64
	ComputeCycles  int64 // Σ pure compute time of blocks (no stalls)
	StallDRAM      int64 // cycles compute waited on external fetches
	StallInternal  int64 // extra block cycles from LLC-bandwidth pressure
}

// ThroughputGFLOPS converts the run to the paper's GFLOP/s metric.
func (m Metrics) ThroughputGFLOPS(clockHz float64) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return 2 * float64(m.MACs) / (float64(m.Cycles) / clockHz) / 1e9
}

// AvgDRAMBW returns the observed average DRAM bandwidth in bytes/s.
func (m Metrics) AvgDRAMBW(clockHz float64) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.DRAMReadBytes+m.DRAMWriteBytes) / (float64(m.Cycles) / clockHz)
}

// machine wires the Section 6.2 modules together for one run.
type machine struct {
	cfg  MachineConfig
	eng  *Engine
	ext  *Link // DRAM↔LLC (shared by fetches and writebacks)
	intl *Link // LLC↔core grid

	ops []BlockOp
	met Metrics

	fetchDone   []int64 // arrival time of each block's last fetch packet
	fetchQueued int     // next block to enqueue fetches for
	computeIdx  int     // next block to compute
	running     bool    // a block is currently on the cores
	prevDone    int64   // completion time of the previous block
}

// Run simulates the block program on the machine and returns its metrics.
// Blocks execute in order with double buffering: block i+1's surfaces are
// fetched while block i computes (the LLC holds both, which is exactly what
// the C + 2(A+B) ≤ S rule of Section 4.3 provisions for).
func Run(cfg MachineConfig, ops []BlockOp) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if len(ops) == 0 {
		return Metrics{}, fmt.Errorf("sim: empty block program")
	}
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = 64 << 10
	}
	if cfg.LLCBytes > 0 {
		for i := range ops {
			if ops[i].Footprint > cfg.LLCBytes {
				return Metrics{}, fmt.Errorf("sim: block %d footprint %d exceeds local memory %d (violates C + 2(A+B) <= S)",
					i, ops[i].Footprint, cfg.LLCBytes)
			}
		}
	}
	m := &machine{
		cfg:       cfg,
		eng:       NewEngine(),
		ops:       ops,
		fetchDone: make([]int64, len(ops)),
	}
	m.ext = NewLink(m.eng, cfg.ExtBW, cfg.ExtLatency)
	m.intl = NewLink(m.eng, cfg.IntBW, cfg.IntLatency)
	for i := range m.fetchDone {
		m.fetchDone[i] = -1
	}
	// Prime the pipeline: fetch block 0 (and 1, via the double buffer).
	m.queueFetches()
	m.eng.Run()
	m.met.Cycles = m.prevDone
	m.met.Blocks = len(ops)
	return m.met, nil
}

// queueFetches enqueues DRAM→LLC packets for blocks up to one ahead of the
// block being computed (double buffering).
func (m *machine) queueFetches() {
	for m.fetchQueued < len(m.ops) && m.fetchQueued <= m.computeIdx+1 {
		i := m.fetchQueued
		m.fetchQueued++
		op := m.ops[i]
		total := op.FetchA + op.FetchB
		m.met.DRAMReadBytes += total
		if total == 0 {
			// Everything reused from the previous block: ready now.
			m.fetchDone[i] = m.eng.Now()
			m.tryCompute()
			continue
		}
		last := int64(0)
		send := func(kind PacketKind, bytes int64) {
			for _, sz := range splitPayload(bytes, m.cfg.PacketBytes) {
				pkt := &Packet{Route: []ModuleID{ModDRAM, ModLLC}, Kind: kind, Block: i, Bytes: sz}
				at := m.ext.Send(pkt, func(*Packet) {})
				if at > last {
					last = at
				}
			}
		}
		send(PktA, op.FetchA)
		send(PktB, op.FetchB)
		m.eng.At(last, func() {
			m.fetchDone[i] = m.eng.Now()
			m.tryCompute()
		})
	}
}

// tryCompute starts the next block when its fetch has landed and the cores
// are free.
func (m *machine) tryCompute() {
	i := m.computeIdx
	if m.running || i >= len(m.ops) || m.fetchDone[i] < 0 {
		return
	}
	m.running = true
	ready := max(m.prevDone, m.eng.Now())
	if m.fetchDone[i] > m.prevDone {
		m.met.StallDRAM += m.fetchDone[i] - max(m.prevDone, 0)
	}
	start := max(ready, m.fetchDone[i])

	op := m.ops[i]
	active := op.Active
	if active < 1 || active > m.cfg.Cores {
		active = m.cfg.Cores
	}
	compute := int64(float64(op.MACs)/(float64(active)*m.cfg.MACsPerCoreCycle)) + 1

	// Stream the block's kernel traffic over the internal bus; its last
	// arrival gates block completion alongside the pure compute time.
	intDone := start
	m.met.InternalBytes += op.Internal
	for _, sz := range splitPayload(op.Internal, m.cfg.PacketBytes) {
		pkt := &Packet{Route: []ModuleID{ModLLC, CoreBase}, Kind: PktB, Block: i, Bytes: sz}
		// Internal transfers cannot begin before the block starts.
		if m.intl.busyUntil < start {
			m.intl.busyUntil = start
		}
		at := m.intl.Send(pkt, func(*Packet) {})
		if at > intDone {
			intDone = at
		}
	}
	// Demand traffic: the kernel's inline DRAM streams occupy the external
	// link (contending with prefetches) and stall the cores for whatever
	// fraction the microarchitecture cannot overlap.
	demand := op.DemandRead + op.DemandWrite
	var demandStall int64
	if demand > 0 {
		m.met.DRAMReadBytes += op.DemandRead
		m.met.DRAMWriteBytes += op.DemandWrite
		for _, sz := range splitPayload(demand, m.cfg.PacketBytes) {
			pkt := &Packet{Route: []ModuleID{ModDRAM, ModLLC}, Kind: PktCWrite, Block: i, Bytes: sz}
			m.ext.Send(pkt, func(*Packet) {})
		}
		ser := int64(float64(demand) / m.cfg.ExtBW)
		demandStall = int64((1 - m.cfg.DemandOverlap) * float64(ser))
		m.met.StallDRAM += demandStall
	}

	done := max(start+compute+demandStall, intDone)
	m.met.ComputeCycles += compute
	m.met.MACs += op.MACs
	if done > start+compute+demandStall {
		m.met.StallInternal += done - (start + compute + demandStall)
	}

	m.eng.At(done, func() {
		m.prevDone = m.eng.Now()
		m.running = false
		if op.WriteC > 0 {
			m.met.DRAMWriteBytes += op.WriteC
			for _, sz := range splitPayload(op.WriteC, m.cfg.PacketBytes) {
				pkt := &Packet{Route: []ModuleID{ModLLC, ModDRAM}, Kind: PktCWrite, Block: i, Bytes: sz}
				m.ext.Send(pkt, func(*Packet) {})
			}
		}
		m.computeIdx++
		m.queueFetches()
		m.tryCompute()
	})
}

// maxPacketsPerTransfer bounds the event count of one logical transfer:
// packets grow beyond PacketBytes for very large transfers so simulation
// cost stays proportional to the block count, not the byte count.
const maxPacketsPerTransfer = 32

// splitPayload divides a transfer into packet payloads of at most maxBytes,
// subject to the per-transfer packet cap.
func splitPayload(bytes, maxBytes int64) []int64 {
	if bytes <= 0 {
		return nil
	}
	if lo := (bytes + maxPacketsPerTransfer - 1) / maxPacketsPerTransfer; maxBytes < lo {
		maxBytes = lo
	}
	n := (bytes + maxBytes - 1) / maxBytes
	out := make([]int64, 0, n)
	for bytes > 0 {
		sz := min(bytes, maxBytes)
		out = append(out, sz)
		bytes -= sz
	}
	return out
}
