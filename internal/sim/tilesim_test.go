package sim

import (
	"testing"
	"testing/quick"
)

func testBlock() TileBlock {
	return TileBlock{
		P: 4, MC: 32, KC: 32, N: 128,
		MR: 8, NR: 8, ElemBytes: 4, MACRate: 8,
	}
}

func TestTileBlockValidate(t *testing.T) {
	if err := testBlock().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*TileBlock){
		func(b *TileBlock) { b.P = 0 },
		func(b *TileBlock) { b.MC = 0 },
		func(b *TileBlock) { b.N = 0 },
		func(b *TileBlock) { b.MACRate = 0 },
		func(b *TileBlock) { b.ElemBytes = 0 },
	} {
		b := testBlock()
		mut(&b)
		if b.Validate() == nil {
			t.Fatalf("accepted %+v", b)
		}
	}
}

func TestSimulateBlockTilesComputeBound(t *testing.T) {
	// Huge internal bandwidth: the block finishes in ~compute time.
	b := testBlock()
	res, err := SimulateBlockTiles(b, 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < res.ComputeCycles {
		t.Fatalf("makespan %d below compute floor %d", res.Cycles, res.ComputeCycles)
	}
	if res.Cycles > res.ComputeCycles*12/10 {
		t.Fatalf("compute-bound block took %d vs compute %d", res.Cycles, res.ComputeCycles)
	}
	// Packet accounting: p A tiles + nTiles B broadcasts + p·nTiles C cycles.
	nTiles := int64((b.N + b.NR - 1) / b.NR)
	want := int64(b.P) + nTiles + int64(b.P)*nTiles
	if res.Packets != want {
		t.Fatalf("packets %d want %d", res.Packets, want)
	}
}

func TestSimulateBlockTilesBandwidthBound(t *testing.T) {
	// Starved bus: the makespan approaches the serialised transfer time and
	// exceeds compute.
	b := testBlock()
	res, err := SimulateBlockTiles(b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= res.ComputeCycles*2 {
		t.Fatalf("bandwidth-starved block finished too fast: %d vs compute %d", res.Cycles, res.ComputeCycles)
	}
	if res.Cycles < res.InternalBytes {
		t.Fatalf("makespan %d below serialisation floor %d", res.Cycles, res.InternalBytes)
	}
}

func TestSimulateBlockTilesInvalid(t *testing.T) {
	if _, err := SimulateBlockTiles(TileBlock{}, 10, 1); err == nil {
		t.Fatal("invalid block accepted")
	}
	if _, err := SimulateBlockTiles(testBlock(), 0, 1); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestTileLevelValidatesBlockLevel(t *testing.T) {
	// The whole point of the tile simulator: the coarse block-level model's
	// duration must agree with the detailed per-tile packet simulation
	// within a modest tolerance, in both compute-bound and bandwidth-bound
	// regimes.
	for _, bw := range []float64{2, 8, 64, 1024} {
		b := testBlock()
		fine, err := SimulateBlockTiles(b, bw, 2)
		if err != nil {
			t.Fatal(err)
		}
		coarse, coarseBytes := BlockLevelEstimate(b, bw)
		if coarseBytes != fine.InternalBytes {
			t.Fatalf("bw=%v: traffic accounting differs: %d vs %d", bw, coarseBytes, fine.InternalBytes)
		}
		ratio := float64(fine.Cycles) / float64(coarse)
		if ratio < 0.8 || ratio > 1.35 {
			t.Fatalf("bw=%v: tile-level %d vs block-level %d (ratio %.2f)", bw, fine.Cycles, coarse, ratio)
		}
	}
}

func TestTileLevelAgreementQuick(t *testing.T) {
	// Property over random block shapes: the coarse max(compute, transfer)
	// model is exact at the regime extremes (checked tightly above) and
	// within 2× in the transition zone, where the tile-level pipeline adds
	// non-overlapped tail latency the max() cannot see; it must never
	// overestimate by more than the packet rounding.
	f := func(seed int64) bool {
		r := uint64(seed)
		next := func(n int) int { r = r*6364136223846793005 + 1; return int(r>>33) % n }
		b := TileBlock{
			P:  1 + next(6),
			MC: 8 * (1 + next(6)),
			KC: 8 * (1 + next(6)),
			N:  8 * (1 + next(24)),
			MR: 8, NR: 8, ElemBytes: 4,
			MACRate: float64(1 + next(16)),
		}
		bw := float64(1 + next(256))
		fine, err := SimulateBlockTiles(b, bw, 1)
		if err != nil {
			return false
		}
		coarse, _ := BlockLevelEstimate(b, bw)
		ratio := float64(fine.Cycles) / float64(coarse)
		return ratio >= 0.5 && ratio <= 2.05 && fine.Cycles >= fine.ComputeCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
