package sim

import (
	"fmt"

	"repro/internal/schedule"
)

// CakeWorkload describes a CAKE execution to be simulated.
type CakeWorkload struct {
	P         int     // cores
	MC        int     // per-core block side (kc = KC below)
	KC        int     // reduction depth per block
	Alpha     float64 // CB aspect factor
	MR, NR    int     // register tile
	ElemBytes int
}

// CakeOps compiles an M×K×N CAKE GEMM into the simulator's block program:
// the K-first schedule of Algorithm 2 with per-transition surface reuse
// (inputs reused across adjacent blocks, partial C resident until its
// reduction completes, completed C written back exactly once).
func CakeOps(w CakeWorkload, m, k, n int) ([]BlockOp, error) {
	if w.P < 1 || w.MC < 1 || w.KC < 1 || w.Alpha < 1 || w.MR < 1 || w.NR < 1 || w.ElemBytes < 1 {
		return nil, fmt.Errorf("sim: invalid CAKE workload %+v", w)
	}
	if m < 1 || k < 1 || n < 1 {
		return nil, fmt.Errorf("sim: invalid dims %dx%dx%d", m, k, n)
	}
	bm := w.P * w.MC
	bk := w.KC
	bn := int(w.Alpha * float64(bm))
	grid := schedule.Dims{Mb: ceilDiv(m, bm), Nb: ceilDiv(n, bn), Kb: ceilDiv(k, bk)}
	seq := schedule.KFirst(grid, schedule.OrderFor(m, n))

	e := int64(w.ElemBytes)
	ops := make([]BlockOp, 0, len(seq))
	for i, cur := range seq {
		mEff := clipExtent(cur.M, bm, m)
		kEff := clipExtent(cur.K, bk, k)
		nEff := clipExtent(cur.N, bn, n)

		aShared, bShared := false, false
		if i > 0 {
			aShared, bShared, _ = schedule.Shared(seq[i-1], cur)
		}
		runEnd := i == len(seq)-1 || seq[i+1].M != cur.M || seq[i+1].N != cur.N

		op := BlockOp{
			MACs:   int64(mEff) * int64(kEff) * int64(nEff),
			Active: min(w.P, ceilDiv(mEff, w.MC)),
			// Section 4.3 residency demand: this block's C surface plus two
			// generations of A and B inputs (double buffering).
			Footprint: (int64(mEff)*int64(nEff) + 2*(int64(mEff)*int64(kEff)+int64(kEff)*int64(nEff))) * e,
		}
		if !aShared {
			op.FetchA = int64(mEff) * int64(kEff) * e
		}
		if !bShared {
			op.FetchB = int64(kEff) * int64(nEff) * e
		}
		if runEnd {
			op.WriteC = int64(mEff) * int64(nEff) * e
		}
		op.Internal = kernelLLCBytes(mEff, kEff, nEff, w.MR, e)
		ops = append(ops, op)
	}
	return ops, nil
}

// GotoWorkload describes a GOTO execution to be simulated.
type GotoWorkload struct {
	P         int // cores parallelising the ic loop
	MC        int // = kc, square per-core A block (L2-sized)
	KC        int
	NC        int // B panel width (LLC-sized)
	MR, NR    int
	ElemBytes int
}

// GotoOps compiles an M×K×N GOTO GEMM into a block program following the
// five-loop schedule of Figure 5. Each op is one round of p cores working
// on consecutive ic blocks. The defining external-IO behaviour of Section
// 4.1 falls out of the compilation: the B panel is fetched once per
// (jc, pc), A blocks once per (jc, pc, ic), and the partial C slab streams
// to DRAM every round — and back in again on every pc iteration after the
// first.
func GotoOps(w GotoWorkload, m, k, n int) ([]BlockOp, error) {
	if w.P < 1 || w.MC < 1 || w.KC < 1 || w.NC < 1 || w.MR < 1 || w.NR < 1 || w.ElemBytes < 1 {
		return nil, fmt.Errorf("sim: invalid GOTO workload %+v", w)
	}
	if m < 1 || k < 1 || n < 1 {
		return nil, fmt.Errorf("sim: invalid dims %dx%dx%d", m, k, n)
	}
	e := int64(w.ElemBytes)
	var ops []BlockOp
	for jc := 0; jc < n; jc += w.NC {
		ncEff := min(w.NC, n-jc)
		for pc := 0; pc < k; pc += w.KC {
			kcEff := min(w.KC, k-pc)
			first := true
			for ic := 0; ic < m; ic += w.P * w.MC {
				rows := min(w.P*w.MC, m-ic)
				active := ceilDiv(rows, w.MC)
				op := BlockOp{
					MACs:   int64(rows) * int64(kcEff) * int64(ncEff),
					Active: active,
					FetchA: int64(rows) * int64(kcEff) * e,
					// The partial C slab is demand traffic: it streams out
					// on every round, and back in for accumulation on every
					// pc iteration after the first, interleaved with the
					// kernel rather than prefetched.
					DemandWrite: int64(rows) * int64(ncEff) * e,
				}
				if first {
					op.FetchB = int64(kcEff) * int64(ncEff) * e
					first = false
				}
				if pc > 0 {
					op.DemandRead = int64(rows) * int64(ncEff) * e
				}
				op.Internal = kernelLLCBytes(rows, kcEff, ncEff, w.MR, e)
				ops = append(ops, op)
			}
		}
	}
	return ops, nil
}

// kernelLLCBytes returns the LLC↔core traffic the tiled kernel induces for
// an mEff×kEff×nEff slab: the B panel streams from the LLC once per mr-row
// panel of A (the macro-kernel sweep), the C slab is read and written once,
// and each A element enters a core's private cache once. This kernel-level
// accounting is what makes internal bandwidth the binding constraint at
// high core counts (Equation 6, Figures 10c/11c).
func kernelLLCBytes(mEff, kEff, nEff, mr int, elemBytes int64) int64 {
	bTraffic := int64(ceilDiv(mEff, mr)) * int64(kEff) * int64(nEff)
	cTraffic := 2 * int64(mEff) * int64(nEff)
	aTraffic := int64(mEff) * int64(kEff)
	return (bTraffic + cTraffic + aTraffic) * elemBytes
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// clipExtent returns the extent of block idx after clipping to the problem.
func clipExtent(idx, block, total int) int {
	return min(block, total-idx*block)
}
