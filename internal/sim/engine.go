// Package sim implements the CAKE architecture simulator of Section 6.2: a
// discrete-event model of a machine with external DRAM, a shared local
// memory (LLC), and a grid of cores, connected by bandwidth- and latency-
// constrained links that carry source-routed packets. The authors built the
// same kind of simulator in SystemC/MatchLib to validate CB block designs
// before implementing the library; here it additionally stands in for their
// hardware measurements (DESIGN.md substitutions), regenerating the DRAM
// bandwidth, throughput and stall profiles of Figures 7 and 10–12.
//
// Time is measured in core clock cycles.
package sim

import "container/heap"

// event is one scheduled callback.
type event struct {
	time int64
	seq  int64 // FIFO tie-break for equal times
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a deterministic discrete-event simulator core.
type Engine struct {
	now    int64
	seq    int64
	events eventHeap
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in cycles.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn at absolute time t (not before now). Events at equal
// times run in scheduling order.
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn d cycles from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue drains, returning the final time.
func (e *Engine) Run() int64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.time
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
