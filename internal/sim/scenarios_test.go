package sim

// Scenario sweeps: the paper's Section 6.2 says the simulator's purpose is
// verifying CB-block behaviour "under various system characteristics (e.g.,
// low external memory bandwidth)" and "corner cases that are difficult to
// analyze". These tests sweep extreme machines and assert the invariants
// that must hold everywhere.

import (
	"testing"
	"testing/quick"
)

// floorCycles returns the two lower bounds any run must respect: total
// compute at perfect parallelism and serialised prefetched DRAM traffic.
func floorCycles(cfg MachineConfig, ops []BlockOp) (computeFloor, dramFloor int64) {
	for _, op := range ops {
		active := op.Active
		if active < 1 || active > cfg.Cores {
			active = cfg.Cores
		}
		computeFloor += int64(float64(op.MACs) / (float64(active) * cfg.MACsPerCoreCycle))
		dramFloor += int64(float64(op.FetchA+op.FetchB) / cfg.ExtBW)
	}
	return
}

func scenarioOps(n int) []BlockOp {
	ops := make([]BlockOp, n)
	for i := range ops {
		ops[i] = BlockOp{
			FetchA: 4 << 10, FetchB: 8 << 10, WriteC: 2 << 10,
			Internal: 32 << 10, MACs: 200_000, Active: 4,
		}
	}
	return ops
}

func TestScenarioSweepInvariants(t *testing.T) {
	ops := scenarioOps(20)
	for _, tc := range []struct {
		name string
		cfg  MachineConfig
	}{
		{"balanced", MachineConfig{Cores: 4, MACsPerCoreCycle: 4, ExtBW: 16, IntBW: 128, DemandOverlap: 1}},
		{"starved-dram", MachineConfig{Cores: 4, MACsPerCoreCycle: 4, ExtBW: 0.25, IntBW: 128, DemandOverlap: 1}},
		{"starved-llc", MachineConfig{Cores: 4, MACsPerCoreCycle: 4, ExtBW: 16, IntBW: 0.5, DemandOverlap: 1}},
		{"huge-latency", MachineConfig{Cores: 4, MACsPerCoreCycle: 4, ExtBW: 16, IntBW: 128, ExtLatency: 100000, IntLatency: 5000, DemandOverlap: 1}},
		{"single-core", MachineConfig{Cores: 1, MACsPerCoreCycle: 1, ExtBW: 1, IntBW: 8, DemandOverlap: 0}},
		{"fat-machine", MachineConfig{Cores: 64, MACsPerCoreCycle: 32, ExtBW: 1e6, IntBW: 1e7, DemandOverlap: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			met, err := Run(tc.cfg, ops)
			if err != nil {
				t.Fatal(err)
			}
			// Termination with full accounting.
			if met.Blocks != len(ops) {
				t.Fatalf("blocks %d", met.Blocks)
			}
			var wantMACs, wantReads, wantWrites int64
			for _, op := range ops {
				wantMACs += op.MACs
				wantReads += op.FetchA + op.FetchB
				wantWrites += op.WriteC
			}
			if met.MACs != wantMACs || met.DRAMReadBytes != wantReads || met.DRAMWriteBytes != wantWrites {
				t.Fatalf("conservation broken: %+v", met)
			}
			// Lower bounds.
			computeFloor, dramFloor := floorCycles(tc.cfg, ops)
			if met.Cycles < computeFloor {
				t.Fatalf("cycles %d below compute floor %d", met.Cycles, computeFloor)
			}
			if met.Cycles < dramFloor {
				t.Fatalf("cycles %d below DRAM floor %d", met.Cycles, dramFloor)
			}
			// Stall accounting is non-negative and bounded by the makespan.
			if met.StallDRAM < 0 || met.StallInternal < 0 || met.StallDRAM > met.Cycles {
				t.Fatalf("stall accounting: %+v", met)
			}
		})
	}
}

func TestScenarioMonotoneInBandwidth(t *testing.T) {
	// More external bandwidth can never slow the machine.
	ops := scenarioOps(30)
	base := MachineConfig{Cores: 4, MACsPerCoreCycle: 2, ExtBW: 0.5, IntBW: 64, DemandOverlap: 1}
	prev := int64(1 << 62)
	for _, bw := range []float64{0.5, 1, 2, 8, 64} {
		cfg := base
		cfg.ExtBW = bw
		met, err := Run(cfg, ops)
		if err != nil {
			t.Fatal(err)
		}
		if met.Cycles > prev {
			t.Fatalf("ExtBW=%v slower than lower bandwidth: %d > %d", bw, met.Cycles, prev)
		}
		prev = met.Cycles
	}
}

func TestScenarioQuickRandomMachines(t *testing.T) {
	// Property: any positive machine and any block program terminates with
	// the floors respected.
	f := func(seed int64) bool {
		r := uint64(seed)
		next := func(n int) int { r = r*2862933555777941757 + 3037000493; return int(r>>33)%n + 1 }
		cfg := MachineConfig{
			Cores:            next(16),
			MACsPerCoreCycle: float64(next(32)),
			ExtBW:            float64(next(64)),
			IntBW:            float64(next(512)),
			ExtLatency:       int64(next(500)),
			IntLatency:       int64(next(50)),
			DemandOverlap:    float64(next(100)) / 100,
		}
		ops := make([]BlockOp, next(12))
		for i := range ops {
			ops[i] = BlockOp{
				FetchA:      int64(next(1 << 16)),
				FetchB:      int64(next(1 << 16)),
				WriteC:      int64(next(1 << 14)),
				DemandRead:  int64(next(1 << 12)),
				DemandWrite: int64(next(1 << 12)),
				Internal:    int64(next(1 << 18)),
				MACs:        int64(next(1 << 20)),
				Active:      next(cfg.Cores),
			}
		}
		met, err := Run(cfg, ops)
		if err != nil {
			return false
		}
		computeFloor, dramFloor := floorCycles(cfg, ops)
		return met.Cycles >= computeFloor && met.Cycles >= dramFloor && met.Blocks == len(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
