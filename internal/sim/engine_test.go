package sim

import "testing"

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time: FIFO
	end := e.Run()
	if end != 10 {
		t.Fatalf("end=%d", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var fired []int64
	e.At(3, func() {
		e.After(4, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 7 {
		t.Fatalf("fired %v", fired)
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	var at int64 = -1
	e.At(10, func() {
		e.At(3, func() { at = e.Now() }) // in the past: runs now
	})
	e.Run()
	if at != 10 {
		t.Fatalf("past event ran at %d", at)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatal("pending after run")
	}
}

func TestLinkSerialisation(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 10, 5) // 10 B/cycle, 5 cycles latency
	var arrivals []int64
	deliver := func(*Packet) { arrivals = append(arrivals, e.Now()) }
	l.Send(&Packet{Route: []ModuleID{ModDRAM, ModLLC}, Bytes: 100}, deliver) // ser 10
	l.Send(&Packet{Route: []ModuleID{ModDRAM, ModLLC}, Bytes: 50}, deliver)  // ser 5, queued
	e.Run()
	if len(arrivals) != 2 || arrivals[0] != 15 || arrivals[1] != 20 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if l.BytesCarried != 150 || l.BusyCycles != 15 {
		t.Fatalf("link accounting %d/%d", l.BytesCarried, l.BusyCycles)
	}
}

func TestLinkMinimumServiceTime(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 1000, 0)
	var at int64 = -1
	l.Send(&Packet{Route: []ModuleID{ModDRAM, ModLLC}, Bytes: 1}, func(*Packet) { at = e.Now() })
	e.Run()
	if at != 1 {
		t.Fatalf("tiny packet arrived at %d, want 1 cycle minimum", at)
	}
}

func TestLinkZeroBWPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLink(NewEngine(), 0, 0)
}

func TestPacketHelpers(t *testing.T) {
	p := &Packet{Route: []ModuleID{ModDRAM, ModLLC, CoreBase + 3}, Kind: PktA}
	if p.Dst() != CoreBase+3 || p.AtDst() {
		t.Fatal("routing helpers wrong")
	}
	p.Hop = 2
	if !p.AtDst() {
		t.Fatal("AtDst at final hop")
	}
	if p.String() == "" || PktCtl.String() != "ctl" || ModLLC.String() != "LLC" {
		t.Fatal("string forms")
	}
	if (CoreBase+2).String() != "core2" || ModDRAM.String() != "DRAM" {
		t.Fatal("module names")
	}
}
