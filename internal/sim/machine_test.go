package sim

import (
	"testing"

	"repro/internal/platform"
)

// testCfg is a machine where the numbers are easy to reason about:
// 4 cores × 1 MAC/cycle, 8 B/cycle DRAM, 64 B/cycle internal.
func testCfg() MachineConfig {
	return MachineConfig{
		Cores: 4, MACsPerCoreCycle: 1,
		ExtBW: 8, IntBW: 64,
		ExtLatency: 10, IntLatency: 2,
		PacketBytes: 1 << 10, DemandOverlap: 1,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(MachineConfig{}, []BlockOp{{MACs: 1}}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Run(testCfg(), nil); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestComputeBoundBlock(t *testing.T) {
	// One block: fetch 80 B (10 cycles + 10 latency), compute 1e6 MACs on
	// 4 cores = 250k cycles. Makespan ≈ fetch + compute.
	ops := []BlockOp{{FetchA: 80, MACs: 1_000_000, Internal: 100, Active: 4}}
	m, err := Run(testCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles < 250_000 || m.Cycles > 251_000 {
		t.Fatalf("cycles %d", m.Cycles)
	}
	if m.DRAMReadBytes != 80 || m.MACs != 1_000_000 {
		t.Fatalf("accounting %+v", m)
	}
	if m.StallDRAM == 0 {
		t.Fatal("pipeline-fill fetch should register as DRAM stall")
	}
}

func TestDoubleBufferingHidesFetch(t *testing.T) {
	// Many compute-heavy blocks: fetches for block i+1 overlap compute of
	// block i, so makespan ≈ first fetch + Σ compute.
	var ops []BlockOp
	for i := 0; i < 10; i++ {
		ops = append(ops, BlockOp{FetchA: 800, MACs: 40_000, Internal: 10, Active: 4})
	}
	m, err := Run(testCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	computePer := int64(10_000)
	fetchPer := int64(100 + 10)
	ideal := fetchPer + 10*computePer
	if m.Cycles > ideal+1000 {
		t.Fatalf("cycles %d, double buffering not overlapping (ideal %d)", m.Cycles, ideal)
	}
	// Only the pipeline fill stalls.
	if m.StallDRAM > 2*fetchPer {
		t.Fatalf("stalls %d", m.StallDRAM)
	}
}

func TestDRAMBoundBlocks(t *testing.T) {
	// Fetch 80 kB per block at 8 B/cycle = 10k cycles; compute only 1k
	// cycles. Makespan ≈ Σ fetch; stalls dominate.
	var ops []BlockOp
	for i := 0; i < 5; i++ {
		ops = append(ops, BlockOp{FetchA: 80_000, MACs: 4_000, Internal: 10, Active: 4})
	}
	m, err := Run(testCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles < 50_000 {
		t.Fatalf("cycles %d below serial fetch floor", m.Cycles)
	}
	if m.StallDRAM < 40_000 {
		t.Fatalf("DRAM stalls %d too low for a bandwidth-bound run", m.StallDRAM)
	}
}

func TestInternalBoundBlocks(t *testing.T) {
	// Internal traffic 640 kB at 64 B/cycle = 10k cycles vs 1k compute:
	// LLC bandwidth limits the block.
	ops := []BlockOp{{FetchA: 8, MACs: 4_000, Internal: 640_000, Active: 4}}
	m, err := Run(testCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if m.StallInternal < 8_000 {
		t.Fatalf("internal stalls %d", m.StallInternal)
	}
	if m.InternalBytes != 640_000 {
		t.Fatalf("internal bytes %d", m.InternalBytes)
	}
}

func TestDemandTrafficStallsInOrderCores(t *testing.T) {
	// Same block, overlap 1 vs 0: the non-overlapped machine pays the full
	// serialisation of the demand stream.
	op := BlockOp{FetchA: 8, MACs: 40_000, DemandWrite: 80_000, Internal: 10, Active: 4}
	cfgOverlap := testCfg()
	mOverlap, err := Run(cfgOverlap, []BlockOp{op})
	if err != nil {
		t.Fatal(err)
	}
	cfgStall := testCfg()
	cfgStall.DemandOverlap = 0
	mStall, err := Run(cfgStall, []BlockOp{op})
	if err != nil {
		t.Fatal(err)
	}
	if mStall.Cycles < mOverlap.Cycles+9_000 {
		t.Fatalf("in-order run %d not slower than overlapped %d by the demand cost", mStall.Cycles, mOverlap.Cycles)
	}
	if mStall.DRAMWriteBytes != 80_000 || mOverlap.DRAMWriteBytes != 80_000 {
		t.Fatal("demand bytes must count as DRAM writes regardless of overlap")
	}
}

func TestWritebackOverlapsNextBlocks(t *testing.T) {
	// CAKE-style writeback (WriteC) is posted: with compute-heavy blocks it
	// must not extend the makespan.
	var with, without []BlockOp
	for i := 0; i < 6; i++ {
		op := BlockOp{FetchA: 80, MACs: 400_000, Internal: 10, Active: 4}
		without = append(without, op)
		op.WriteC = 400
		with = append(with, op)
	}
	mW, err := Run(testCfg(), with)
	if err != nil {
		t.Fatal(err)
	}
	mWo, err := Run(testCfg(), without)
	if err != nil {
		t.Fatal(err)
	}
	if mW.Cycles > mWo.Cycles+1000 {
		t.Fatalf("writebacks not overlapped: %d vs %d", mW.Cycles, mWo.Cycles)
	}
	if mW.DRAMWriteBytes != 6*400 {
		t.Fatalf("write bytes %d", mW.DRAMWriteBytes)
	}
}

func TestZeroFetchBlocksReuseSurfaces(t *testing.T) {
	// Blocks with no fetch (full reuse) must not wait on the DRAM link.
	ops := []BlockOp{
		{FetchA: 80_000, MACs: 4_000, Internal: 10, Active: 4},
		{MACs: 4_000, Internal: 10, Active: 4},
		{MACs: 4_000, Internal: 10, Active: 4},
	}
	m, err := Run(testCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	firstFetch := int64(80_000/8) + 10
	if m.Cycles > firstFetch+3*1_001+100 {
		t.Fatalf("reused blocks stalled: %d", m.Cycles)
	}
}

func TestActiveCoresScaleCompute(t *testing.T) {
	full := BlockOp{FetchA: 8, MACs: 400_000, Internal: 1, Active: 4}
	half := full
	half.Active = 2
	mF, _ := Run(testCfg(), []BlockOp{full})
	mH, _ := Run(testCfg(), []BlockOp{half})
	if mH.Cycles < 2*mF.Cycles-1000 {
		t.Fatalf("half-active block should take ~2x: %d vs %d", mH.Cycles, mF.Cycles)
	}
}

func TestMetricsConversions(t *testing.T) {
	m := Metrics{Cycles: 1_000_000, MACs: 500_000_000, DRAMReadBytes: 3_000_000, DRAMWriteBytes: 1_000_000}
	clock := 1e9 // 1 GHz → run took 1 ms
	if g := m.ThroughputGFLOPS(clock); g < 999 || g > 1001 {
		t.Fatalf("GFLOPS %v", g)
	}
	if bw := m.AvgDRAMBW(clock); bw < 3.99e9 || bw > 4.01e9 {
		t.Fatalf("BW %v", bw)
	}
	var zero Metrics
	if zero.ThroughputGFLOPS(clock) != 0 || zero.AvgDRAMBW(clock) != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
}

func TestFromPlatform(t *testing.T) {
	pl := platform.IntelI9()
	cfg := FromPlatform(pl, 6)
	if cfg.Cores != 6 {
		t.Fatal("cores")
	}
	if cfg.MACsPerCoreCycle != 16 {
		t.Fatalf("MAC rate %v", cfg.MACsPerCoreCycle)
	}
	wantExt := 40e9 / 3.7e9
	if d := cfg.ExtBW - wantExt; d > 1e-9 || d < -1e-9 {
		t.Fatalf("ext BW %v", cfg.ExtBW)
	}
	if cfg.IntBW <= 0 || cfg.DemandOverlap != pl.DemandOverlap {
		t.Fatal("platform fields not carried over")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPayload(t *testing.T) {
	parts := splitPayload(250, 100)
	if len(parts) != 3 || parts[0] != 100 || parts[2] != 50 {
		t.Fatalf("parts %v", parts)
	}
	if splitPayload(0, 100) != nil {
		t.Fatal("zero bytes should give no packets")
	}
	var sum int64
	for _, p := range splitPayload(12345, 999) {
		sum += p
	}
	if sum != 12345 {
		t.Fatal("split loses bytes")
	}
}
