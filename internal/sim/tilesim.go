package sim

import "fmt"

// Tile-level simulation of a single CB block, at the granularity the
// paper's SystemC simulator models (Section 6.2): every packet carries one
// tile and its index into the CB block, cores are individual modules, the
// B surface is broadcast tile-by-tile over the shared internal bus, and
// partial-C tiles cycle between the cores and the LLC. The coarser
// block-level machine (machine.go) aggregates these flows; SimulateBlockTiles
// exists to validate that aggregation — tests check the two agree.

// TileBlock describes one CB block for tile-level simulation.
type TileBlock struct {
	P         int     // cores (= A tiles in the block's A surface column)
	MC        int     // per-core A tile rows (= kc)
	KC        int     // reduction depth
	N         int     // block N extent (α·p·mc)
	MR, NR    int     // register tile
	ElemBytes int64   // bytes per element
	MACRate   float64 // per-core MACs/cycle
}

// Validate reports the first problem with the block description.
func (b TileBlock) Validate() error {
	switch {
	case b.P < 1 || b.MC < 1 || b.KC < 1 || b.N < 1:
		return fmt.Errorf("sim: invalid tile block %+v", b)
	case b.MR < 1 || b.NR < 1 || b.ElemBytes < 1 || b.MACRate <= 0:
		return fmt.Errorf("sim: invalid tile block rates %+v", b)
	default:
		return nil
	}
}

// TileResult is the outcome of a tile-level block simulation.
type TileResult struct {
	Cycles        int64 // time for all cores to finish the block
	Packets       int64 // packets delivered
	InternalBytes int64 // bytes over the LLC↔core bus
	ComputeCycles int64 // per-core pure compute time (tile products)
}

// tileCore tracks one core module's progress through its strip.
type tileCore struct {
	freeAt   int64 // when the core finishes its current tile product
	haveA    bool
	done     int // B column tiles consumed
	cDone    int // partial-C writebacks retired
	finished int64
}

// SimulateBlockTiles runs one CB block at tile granularity on a machine
// with the given internal bus (bytes/cycle) and LLC latency. The flow per
// Figure 6 / Section 3: each core is first loaded with its A tile; B tiles
// of kc×nr columns are then streamed in broadcast order; after each tile
// product the mr×nr partial results cycle back to the LLC. The returned
// makespan is when the slowest core retires its last accumulate.
func SimulateBlockTiles(b TileBlock, intBW float64, latency int64) (TileResult, error) {
	if err := b.Validate(); err != nil {
		return TileResult{}, err
	}
	if intBW <= 0 {
		return TileResult{}, fmt.Errorf("sim: internal bandwidth %v", intBW)
	}
	eng := NewEngine()
	bus := NewLink(eng, intBW, latency)
	cores := make([]*tileCore, b.P)
	for i := range cores {
		cores[i] = &tileCore{}
	}
	var res TileResult

	// One tile product: an (mc×kc)·(kc×nr) panel product per B column tile,
	// i.e. mc·nr·kc MACs, taking mc·nr·kc/MACRate cycles.
	tileMACs := float64(b.MC) * float64(b.NR) * float64(b.KC)
	tileCycles := int64(tileMACs/b.MACRate) + 1
	nTiles := ceilDiv(b.N, b.NR) // B column tiles each core consumes

	aBytes := int64(b.MC) * int64(b.KC) * b.ElemBytes
	bBytes := int64(b.KC) * int64(b.NR) * b.ElemBytes
	cBytes := int64(b.MC) * int64(b.NR) * b.ElemBytes // per-core C slab per tile

	// Load phase: each core's stationary A tile (Section 3: "the CB block
	// is shaped to have exactly one A tile per core").
	for i := range cores {
		core := cores[i]
		pkt := &Packet{Route: []ModuleID{ModLLC, CoreBase + ModuleID(i)}, Kind: PktA, Tile: i, Bytes: aBytes}
		res.Packets++
		res.InternalBytes += aBytes
		bus.Send(pkt, func(*Packet) { core.haveA = true })
	}

	// Stream phase: B tiles broadcast to all cores; every core computes one
	// tile product per B tile and cycles its partial C through the LLC.
	// The broadcast bus carries each B tile once (all cores snoop it) plus
	// the per-core C read-modify-write traffic.
	for t := 0; t < nTiles; t++ {
		tile := t
		pkt := &Packet{Route: []ModuleID{ModLLC, CoreBase}, Kind: PktB, Tile: tile, Bytes: bBytes}
		res.Packets++
		res.InternalBytes += bBytes
		bus.Send(pkt, func(p *Packet) {
			for i := range cores {
				core := cores[i]
				start := max(eng.Now(), core.freeAt)
				core.freeAt = start + tileCycles
				core.done++
				// Partial C cycles back to local memory after the product
				// (2× for read+write of the accumulate).
				cpkt := &Packet{Route: []ModuleID{CoreBase + ModuleID(i), ModLLC}, Kind: PktCWrite, Tile: tile, Bytes: 2 * cBytes}
				res.Packets++
				res.InternalBytes += 2 * cBytes
				eng.At(core.freeAt, func() {
					bus.Send(cpkt, func(*Packet) {
						core.cDone++
						if core.cDone == nTiles {
							core.finished = eng.Now()
						}
					})
				})
			}
		})
	}
	eng.Run()

	for _, c := range cores {
		if !c.haveA || c.done != nTiles {
			return TileResult{}, fmt.Errorf("sim: core did not complete (%+v)", c)
		}
		if c.finished > res.Cycles {
			res.Cycles = c.finished
		}
	}
	res.ComputeCycles = int64(nTiles) * tileCycles
	return res, nil
}

// BlockLevelEstimate returns the coarse machine model's duration for the
// same block: max(compute, internal-transfer) with the same traffic
// accounting, for cross-validation against SimulateBlockTiles.
func BlockLevelEstimate(b TileBlock, intBW float64) (cycles int64, internalBytes int64) {
	nTiles := ceilDiv(b.N, b.NR)
	tileMACs := float64(b.MC) * float64(b.NR) * float64(b.KC)
	compute := int64(float64(nTiles)*tileMACs/b.MACRate) + 1

	aBytes := int64(b.P) * int64(b.MC) * int64(b.KC) * b.ElemBytes
	bBytes := int64(nTiles) * int64(b.KC) * int64(b.NR) * b.ElemBytes
	cBytes := int64(b.P) * int64(nTiles) * 2 * int64(b.MC) * int64(b.NR) * b.ElemBytes
	internalBytes = aBytes + bBytes + cBytes
	transfer := int64(float64(internalBytes)/intBW) + 1
	return max(compute, transfer), internalBytes
}
