// Package cachesim provides an exact LRU cache model and a multi-level
// hierarchy walker. The Figure 7 experiments drive it with tile-granularity
// memory traces (internal/memtrace) to count, per memory level, the hits and
// DRAM requests that the paper measures with VTune and Linux perf — the
// substitution documented in DESIGN.md.
//
// Entries are variable-sized (a "line" is whatever chunk the trace uses —
// typically one mc×kc sub-tile), the replacement policy is exact LRU over
// those chunks, and writebacks of dirty victims are counted.
package cachesim

import "fmt"

// node is an intrusive doubly-linked LRU list node.
type node[K comparable] struct {
	key        K
	size       int64
	dirty      bool
	prev, next *node[K]
}

// Stats counts cache events.
type Stats struct {
	Hits       int64 // accesses served by this cache
	Misses     int64 // accesses passed to the level below
	Evictions  int64 // entries displaced by capacity pressure
	Writebacks int64 // dirty entries displaced (traffic to the level below)
	BytesIn    int64 // bytes filled on misses
}

// Cache is a fully associative LRU cache over comparable keys with
// per-entry sizes.
type Cache[K comparable] struct {
	capacity int64
	used     int64
	entries  map[K]*node[K]
	head     *node[K] // most recently used
	tail     *node[K] // least recently used
	stats    Stats

	// OnEvict, when set, observes each eviction (used by the hierarchy to
	// propagate writebacks downward).
	OnEvict func(key K, size int64, dirty bool)
}

// New returns an empty cache holding at most capacity bytes.
func New[K comparable](capacity int64) *Cache[K] {
	if capacity <= 0 {
		panic(fmt.Sprintf("cachesim: capacity %d", capacity))
	}
	return &Cache[K]{capacity: capacity, entries: make(map[K]*node[K])}
}

// Capacity returns the configured capacity in bytes.
func (c *Cache[K]) Capacity() int64 { return c.capacity }

// Used returns the bytes currently resident.
func (c *Cache[K]) Used() int64 { return c.used }

// Len returns the number of resident entries.
func (c *Cache[K]) Len() int { return len(c.entries) }

// Stats returns the event counters.
func (c *Cache[K]) Stats() Stats { return c.stats }

// Contains reports residency without touching recency.
func (c *Cache[K]) Contains(key K) bool {
	_, ok := c.entries[key]
	return ok
}

// Access touches key with the given footprint. It returns true on a hit.
// On a miss the entry is installed (evicting LRU victims as needed) and
// false is returned. write marks the entry dirty; a dirty victim counts as
// a writeback. An entry larger than the whole cache bypasses installation
// (it could never be resident) but still counts as a miss.
func (c *Cache[K]) Access(key K, size int64, write bool) bool {
	if size <= 0 {
		panic(fmt.Sprintf("cachesim: access size %d", size))
	}
	if n, ok := c.entries[key]; ok {
		c.stats.Hits++
		n.dirty = n.dirty || write
		c.moveToFront(n)
		return true
	}
	c.stats.Misses++
	c.stats.BytesIn += size
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		c.evictLRU()
	}
	n := &node[K]{key: key, size: size, dirty: write}
	c.entries[key] = n
	c.used += size
	c.pushFront(n)
	return false
}

// Invalidate drops key if resident (no writeback accounting — use for
// explicit surface retirement). Reports whether it was resident.
func (c *Cache[K]) Invalidate(key K) bool {
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.entries, key)
	c.used -= n.size
	return true
}

// Flush evicts everything, counting dirty writebacks.
func (c *Cache[K]) Flush() {
	for c.tail != nil {
		c.evictLRU()
	}
}

func (c *Cache[K]) evictLRU() {
	v := c.tail
	if v == nil {
		panic("cachesim: eviction from empty cache")
	}
	c.unlink(v)
	delete(c.entries, v.key)
	c.used -= v.size
	c.stats.Evictions++
	if v.dirty {
		c.stats.Writebacks++
	}
	if c.OnEvict != nil {
		c.OnEvict(v.key, v.size, v.dirty)
	}
}

func (c *Cache[K]) pushFront(n *node[K]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[K]) unlink(n *node[K]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[K]) moveToFront(n *node[K]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// LevelStats pairs a level name with its counters.
type LevelStats struct {
	Name string
	Stats
}

// Hierarchy chains caches from fastest (index 0) to slowest; accesses that
// miss every level are DRAM requests. Fill policy is inclusive: a miss
// installs the entry at every level.
type Hierarchy[K comparable] struct {
	names  []string
	levels []*Cache[K]

	DRAMReads  int64 // accesses missing every cache level
	DRAMWrites int64 // dirty writebacks leaving the last level
}

// NewHierarchy builds a hierarchy; levels are ordered fastest-first and
// sized in bytes.
func NewHierarchy[K comparable](names []string, capacities []int64) *Hierarchy[K] {
	if len(names) != len(capacities) || len(names) == 0 {
		panic("cachesim: names/capacities mismatch")
	}
	h := &Hierarchy[K]{names: names}
	for i, cap := range capacities {
		c := New[K](cap)
		if i == len(capacities)-1 {
			c.OnEvict = func(_ K, _ int64, dirty bool) {
				if dirty {
					h.DRAMWrites++
				}
			}
		}
		h.levels = append(h.levels, c)
	}
	return h
}

// Access walks the hierarchy with an inclusive fill: the first level that
// hits serves the access; all faster levels are refilled. A global miss
// counts as a DRAM read.
func (h *Hierarchy[K]) Access(key K, size int64, write bool) (servedBy int) {
	for i, c := range h.levels {
		if c.Access(key, size, write) {
			// Refill the faster levels (inclusive); already done above by
			// the Access calls that missed and installed.
			return i
		}
	}
	h.DRAMReads++
	return len(h.levels)
}

// Levels returns per-level counters, fastest first.
func (h *Hierarchy[K]) Levels() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, c := range h.levels {
		out[i] = LevelStats{Name: h.names[i], Stats: c.Stats()}
	}
	return out
}

// Flush drains every level, propagating last-level dirty writebacks to the
// DRAM write counter.
func (h *Hierarchy[K]) Flush() {
	for _, c := range h.levels {
		c.Flush()
	}
}
