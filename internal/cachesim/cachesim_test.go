package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New[int](100)
	if c.Access(1, 40, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1, 40, false) {
		t.Fatal("warm access missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.BytesIn != 40 {
		t.Fatalf("stats %+v", s)
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](100)
	c.Access(1, 40, false)
	c.Access(2, 40, false)
	c.Access(1, 40, false) // 1 now MRU; 2 is LRU
	c.Access(3, 40, false) // evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatal("LRU order violated")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions %d", c.Stats().Evictions)
	}
}

func TestEvictionEvictsMultipleForLargeEntry(t *testing.T) {
	c := New[int](100)
	c.Access(1, 30, false)
	c.Access(2, 30, false)
	c.Access(3, 30, false)
	c.Access(4, 90, false) // must evict all three
	if c.Len() != 1 || !c.Contains(4) {
		t.Fatalf("len=%d", c.Len())
	}
	if c.Stats().Evictions != 3 {
		t.Fatalf("evictions %d", c.Stats().Evictions)
	}
}

func TestOversizedEntryBypasses(t *testing.T) {
	c := New[int](100)
	c.Access(1, 50, false)
	if c.Access(2, 200, false) {
		t.Fatal("oversized entry hit")
	}
	if c.Contains(2) {
		t.Fatal("oversized entry installed")
	}
	if !c.Contains(1) {
		t.Fatal("oversized entry evicted residents")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New[int](100)
	c.Access(1, 60, true)  // dirty
	c.Access(2, 60, false) // evicts 1 → writeback
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks %d", c.Stats().Writebacks)
	}
	c.Access(3, 60, false) // evicts 2, clean
	if c.Stats().Writebacks != 1 {
		t.Fatal("clean eviction counted as writeback")
	}
}

func TestWriteOnHitMarksDirty(t *testing.T) {
	c := New[int](100)
	c.Access(1, 60, false)
	c.Access(1, 60, true) // hit that dirties
	c.Access(2, 60, false)
	if c.Stats().Writebacks != 1 {
		t.Fatal("dirty-on-hit lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int](100)
	c.Access(1, 40, true)
	if !c.Invalidate(1) {
		t.Fatal("resident entry not invalidated")
	}
	if c.Invalidate(1) {
		t.Fatal("double invalidate")
	}
	if c.Used() != 0 {
		t.Fatal("used not released")
	}
	if c.Stats().Writebacks != 0 {
		t.Fatal("invalidate must not count a writeback")
	}
}

func TestFlush(t *testing.T) {
	c := New[int](100)
	c.Access(1, 40, true)
	c.Access(2, 40, false)
	c.Flush()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("flush left residents")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("flush writebacks %d", c.Stats().Writebacks)
	}
}

func TestOnEvictCallback(t *testing.T) {
	c := New[int](50)
	var got []int
	c.OnEvict = func(k int, _ int64, _ bool) { got = append(got, k) }
	c.Access(1, 30, false)
	c.Access(2, 30, false)
	c.Access(3, 30, false)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("evict order %v", got)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](0)
}

func TestZeroSizeAccessPanics(t *testing.T) {
	c := New[int](10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Access(1, 0, false)
}

func TestUsedNeverExceedsCapacityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New[int](1000)
		for i := 0; i < 500; i++ {
			c.Access(rng.Intn(50), int64(1+rng.Intn(400)), rng.Intn(2) == 0)
			if c.Used() > c.Capacity() {
				return false
			}
		}
		// Conservation: hits+misses = accesses; len matches entries.
		s := c.Stats()
		return s.Hits+s.Misses == 500 && c.Len() <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	// Property: against a simple slice-based LRU reference with uniform
	// sizes, hits/misses agree exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capEntries = 8
		c := New[int](capEntries) // size-1 entries
		var ref []int             // ref[0] = MRU
		for i := 0; i < 300; i++ {
			k := rng.Intn(20)
			got := c.Access(k, 1, false)
			want := false
			for j, rk := range ref {
				if rk == k {
					want = true
					ref = append(ref[:j], ref[j+1:]...)
					break
				}
			}
			ref = append([]int{k}, ref...)
			if len(ref) > capEntries {
				ref = ref[:capEntries]
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h := NewHierarchy[int]([]string{"L1", "L2"}, []int64{2, 10})
	if lvl := h.Access(1, 1, false); lvl != 2 {
		t.Fatalf("cold access served by %d, want DRAM (2)", lvl)
	}
	if lvl := h.Access(1, 1, false); lvl != 0 {
		t.Fatalf("warm access served by %d, want L1", lvl)
	}
	// Push key 1 out of tiny L1 but not out of L2.
	h.Access(2, 1, false)
	h.Access(3, 1, false)
	if lvl := h.Access(1, 1, false); lvl != 1 {
		t.Fatalf("capacity-evicted key served by %d, want L2", lvl)
	}
	if h.DRAMReads != 3 {
		t.Fatalf("DRAM reads %d want 3", h.DRAMReads)
	}
}

func TestHierarchyDRAMWritebacks(t *testing.T) {
	h := NewHierarchy[int]([]string{"LLC"}, []int64{2})
	h.Access(1, 1, true)
	h.Access(2, 1, true)
	h.Access(3, 1, false) // evicts dirty 1
	if h.DRAMWrites != 1 {
		t.Fatalf("DRAM writes %d", h.DRAMWrites)
	}
	h.Flush()
	if h.DRAMWrites != 2 {
		t.Fatalf("after flush DRAM writes %d", h.DRAMWrites)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy[int]([]string{"L1", "LLC"}, []int64{4, 16})
	for i := 0; i < 10; i++ {
		h.Access(i%5, 1, false)
	}
	ls := h.Levels()
	if len(ls) != 2 || ls[0].Name != "L1" || ls[1].Name != "LLC" {
		t.Fatalf("levels %+v", ls)
	}
	if ls[0].Hits+ls[1].Hits+h.DRAMReads != 10 {
		t.Fatal("level accounting does not sum to accesses")
	}
}

func TestHierarchyBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHierarchy[int]([]string{"L1"}, []int64{1, 2})
}
