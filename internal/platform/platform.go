// Package platform describes the three CPUs of the paper's Table 2 as
// parameter sets for the architecture simulator and the CAKE planner.
//
// Cache sizes, core counts, DRAM capacities and DRAM bandwidths are the
// paper's Table 2 values. Clock rates and per-core FLOP rates are calibrated
// so that peak simulated throughput matches the throughput the paper reports
// for each machine (Figures 10b, 11b, 12b); internal-bandwidth curves are
// piecewise-linear fits of the paper's pmbw measurements (Figures 10c, 11c,
// 12c). This is the substitution documented in DESIGN.md: the real machines
// and the pmbw tool are replaced by calibrated models with identical
// externally visible parameters.
package platform

import (
	"fmt"
	"math"
)

// BWCurve is a piecewise-linear internal-bandwidth model: bandwidth grows by
// SlopePre bytes/s per core up to Knee cores, then by SlopePost per core —
// the saturation shape pmbw measures on real parts (e.g. the i9's LLC stops
// scaling past 6 cores, Figure 10c).
type BWCurve struct {
	SlopePre  float64 // bytes/s added per core, cores 1..Knee
	Knee      int     // last core index with the pre-knee slope
	SlopePost float64 // bytes/s added per core past the knee
}

// At returns the aggregate internal bandwidth available to p cores.
func (c BWCurve) At(p int) float64 {
	if p <= 0 {
		return 0
	}
	if p <= c.Knee {
		return float64(p) * c.SlopePre
	}
	return float64(c.Knee)*c.SlopePre + float64(p-c.Knee)*c.SlopePost
}

// MemLevel identifies a level of the memory hierarchy.
type MemLevel int

const (
	L1 MemLevel = iota
	L2
	LLC // shared last-level cache: L3 on the desktop parts, L2 on the A53
	DRAM
)

func (l MemLevel) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	default:
		return "DRAM"
	}
}

// Platform is one evaluated CPU.
type Platform struct {
	Name  string
	Cores int

	L1Bytes  int64 // per-core L1D
	L2Bytes  int64 // per-core private L2 (0 when L2 is the shared LLC)
	LLCBytes int64 // shared last-level cache available to matrix operands

	DRAMBytes int64   // main memory capacity
	DRAMBW    float64 // sustained external bandwidth, bytes/s

	ClockHz       float64 // core clock
	FlopsPerCycle float64 // per-core single-precision FLOPs/cycle (MAC = 2)

	Internal BWCurve // LLC↔core aggregate bandwidth vs active cores

	// Load-to-use latencies in core cycles, for the stall model (Fig. 7).
	LatL1, LatL2, LatLLC, LatDRAM int

	// DemandOverlap ∈ [0,1] is the fraction of demand-miss DRAM traffic
	// (read-modify-write streams the kernel issues inline, e.g. GOTO's
	// partial-C round-trips) the core can hide behind computation: near 1
	// for deep out-of-order desktops, 0 for the in-order A53.
	DemandOverlap float64

	HasL3 bool // false on the A53, where the shared L2 is the LLC
}

// PeakGFLOPS returns the machine's dense-compute roof at p cores.
func (pl *Platform) PeakGFLOPS(p int) float64 {
	return pl.ClockHz * pl.FlopsPerCycle * float64(p) / 1e9
}

// Validate checks internal consistency.
func (pl *Platform) Validate() error {
	switch {
	case pl.Cores < 1:
		return fmt.Errorf("platform %s: %d cores", pl.Name, pl.Cores)
	case pl.LLCBytes <= 0 || pl.L1Bytes <= 0:
		return fmt.Errorf("platform %s: non-positive cache sizes", pl.Name)
	case pl.DRAMBW <= 0 || pl.ClockHz <= 0 || pl.FlopsPerCycle <= 0:
		return fmt.Errorf("platform %s: non-positive rates", pl.Name)
	default:
		return nil
	}
}

// IntelI9 returns the Intel i9-10900K model: high DRAM bandwidth and a large
// LLC, but internal bandwidth that stops scaling past 6 cores (Fig. 10c).
func IntelI9() *Platform {
	return &Platform{
		Name:          "Intel i9-10900K",
		Cores:         10,
		L1Bytes:       32 << 10,
		L2Bytes:       256 << 10,
		LLCBytes:      20 << 20,
		DRAMBytes:     32 << 30,
		DRAMBW:        40e9,
		ClockHz:       3.7e9,
		FlopsPerCycle: 32, // 2×256-bit FMA pipes
		Internal:      BWCurve{SlopePre: 60e9, Knee: 6, SlopePost: 25e9},
		LatL1:         4, LatL2: 12, LatLLC: 42, LatDRAM: 220,
		DemandOverlap: 0.98,
		HasL3:         true,
	}
}

// AMDRyzen9 returns the AMD Ryzen 9 5950X model: the least constrained
// machine — big LLC and internal bandwidth that keeps scaling ~50 GB/s per
// core (Fig. 12c).
func AMDRyzen9() *Platform {
	return &Platform{
		Name:          "AMD Ryzen 9 5950X",
		Cores:         16,
		L1Bytes:       32 << 10,
		L2Bytes:       512 << 10,
		LLCBytes:      64 << 20,
		DRAMBytes:     128 << 30,
		DRAMBW:        47e9,
		ClockHz:       3.4e9,
		FlopsPerCycle: 16,
		Internal:      BWCurve{SlopePre: 50e9, Knee: 16, SlopePost: 50e9},
		LatL1:         4, LatL2: 12, LatLLC: 46, LatDRAM: 230,
		DemandOverlap: 0.98,
		HasL3:         true,
	}
}

// ARMCortexA53 returns the embedded ARM v8 Cortex A53 model: severely
// limited DRAM bandwidth (2 GB/s), no L3 (the 512 KiB shared L2 is the
// LLC), and internal bandwidth that barely scales past 2 cores (Fig. 11c).
func ARMCortexA53() *Platform {
	return &Platform{
		Name:          "ARM v8 Cortex A53",
		Cores:         4,
		L1Bytes:       16 << 10,
		L2Bytes:       0, // shared L2 is the LLC
		LLCBytes:      512 << 10,
		DRAMBytes:     1 << 30,
		DRAMBW:        2e9,
		ClockHz:       1.4e9,
		FlopsPerCycle: 2,
		Internal:      BWCurve{SlopePre: 7e9, Knee: 2, SlopePost: 0.5e9},
		LatL1:         3, LatL2: 16, LatLLC: 16, LatDRAM: 160,
		DemandOverlap: 0,
		HasL3:         false,
	}
}

// All returns the Table 2 platforms in the paper's order.
func All() []*Platform {
	return []*Platform{IntelI9(), AMDRyzen9(), ARMCortexA53()}
}

// ByName returns the platform whose name contains the given substring
// (case-sensitive), e.g. "Intel", "AMD", "ARM".
func ByName(name string) (*Platform, error) {
	for _, p := range All() {
		if contains(p.Name, name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("platform: no platform matching %q", name)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Extrapolate extends an observed per-core series to target points using the
// slope of the last two observations — exactly how the paper's dotted
// extrapolation lines are initialised ("We use the last two data points in
// each plot to initialize the extrapolation line", Section 5.2).
func Extrapolate(observed []float64, target int) []float64 {
	if len(observed) == 0 {
		panic("platform: Extrapolate needs at least one observation")
	}
	out := make([]float64, target)
	n := copy(out, observed)
	if n >= target {
		return out[:target]
	}
	slope := 0.0
	if len(observed) >= 2 {
		slope = observed[len(observed)-1] - observed[len(observed)-2]
	}
	last := observed[len(observed)-1]
	for i := n; i < target; i++ {
		last += slope
		out[i] = math.Max(0, last)
	}
	return out
}
