package platform

import (
	"math"
	"testing"
)

func TestTable2Values(t *testing.T) {
	// The paper's Table 2, verbatim.
	intel := IntelI9()
	if intel.Cores != 10 || intel.LLCBytes != 20<<20 || intel.DRAMBW != 40e9 ||
		intel.L1Bytes != 32<<10 || intel.L2Bytes != 256<<10 || intel.DRAMBytes != 32<<30 {
		t.Fatalf("Intel Table 2 mismatch: %+v", intel)
	}
	amd := AMDRyzen9()
	if amd.Cores != 16 || amd.LLCBytes != 64<<20 || amd.DRAMBW != 47e9 ||
		amd.L2Bytes != 512<<10 || amd.DRAMBytes != 128<<30 {
		t.Fatalf("AMD Table 2 mismatch: %+v", amd)
	}
	arm := ARMCortexA53()
	if arm.Cores != 4 || arm.DRAMBW != 2e9 || arm.L1Bytes != 16<<10 ||
		arm.LLCBytes != 512<<10 || arm.DRAMBytes != 1<<30 || arm.HasL3 {
		t.Fatalf("ARM Table 2 mismatch: %+v", arm)
	}
}

func TestAllValid(t *testing.T) {
	ps := All()
	if len(ps) != 3 {
		t.Fatalf("expected 3 platforms, got %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	p := IntelI9()
	p.Cores = 0
	if p.Validate() == nil {
		t.Fatal("0 cores accepted")
	}
	p = IntelI9()
	p.DRAMBW = 0
	if p.Validate() == nil {
		t.Fatal("0 bandwidth accepted")
	}
	p = IntelI9()
	p.LLCBytes = 0
	if p.Validate() == nil {
		t.Fatal("0 LLC accepted")
	}
}

func TestByName(t *testing.T) {
	for _, sub := range []string{"Intel", "AMD", "ARM"} {
		p, err := ByName(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !contains(p.Name, sub) {
			t.Fatalf("ByName(%q) returned %q", sub, p.Name)
		}
	}
	if _, err := ByName("RISC-V"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestPeakGFLOPSCalibration(t *testing.T) {
	// Peaks must sit near the paper's reported maxima: ~1200 GFLOP/s for
	// the i9 at 10 cores (Fig. 10b), ~11 GFLOP/s for the A53 at 4 cores
	// (Fig. 11b), and AMD ≳ 800 at 16 (Fig. 12b).
	if g := IntelI9().PeakGFLOPS(10); g < 1000 || g > 1400 {
		t.Fatalf("Intel peak %v outside paper range", g)
	}
	if g := ARMCortexA53().PeakGFLOPS(4); g < 8 || g > 14 {
		t.Fatalf("ARM peak %v outside paper range", g)
	}
	if g := AMDRyzen9().PeakGFLOPS(16); g < 700 || g > 1300 {
		t.Fatalf("AMD peak %v outside paper range", g)
	}
}

func TestBWCurveShape(t *testing.T) {
	c := BWCurve{SlopePre: 10, Knee: 3, SlopePost: 2}
	if c.At(0) != 0 || c.At(-1) != 0 {
		t.Fatal("non-positive cores must give 0")
	}
	if c.At(2) != 20 || c.At(3) != 30 {
		t.Fatalf("pre-knee wrong: %v %v", c.At(2), c.At(3))
	}
	if c.At(5) != 34 {
		t.Fatalf("post-knee wrong: %v", c.At(5))
	}
}

func TestInternalBWMatchesPaperShapes(t *testing.T) {
	// Fig. 10c: Intel stops scaling proportionally past 6 cores.
	intel := IntelI9().Internal
	pre := intel.At(6) - intel.At(5)
	post := intel.At(10) - intel.At(9)
	if post >= pre {
		t.Fatal("Intel internal BW must flatten past the knee")
	}
	// Fig. 11c: ARM flat beyond 2 cores.
	arm := ARMCortexA53().Internal
	if arm.At(4)-arm.At(2) > 0.2*arm.At(2) {
		t.Fatal("ARM internal BW should barely grow past 2 cores")
	}
	// Fig. 12c: AMD roughly linear at ~50 GB/s/core through 16.
	amd := AMDRyzen9().Internal
	if d := amd.At(16) - amd.At(15); math.Abs(d-50e9) > 1e9 {
		t.Fatalf("AMD slope %v, want ~50 GB/s/core", d)
	}
}

func TestExtrapolate(t *testing.T) {
	obs := []float64{10, 20, 30}
	got := Extrapolate(obs, 5)
	want := []float64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestExtrapolateShortTarget(t *testing.T) {
	got := Extrapolate([]float64{5, 6, 7}, 2)
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestExtrapolateSinglePointFlat(t *testing.T) {
	got := Extrapolate([]float64{4}, 3)
	if got[1] != 4 || got[2] != 4 {
		t.Fatalf("single observation should extrapolate flat: %v", got)
	}
}

func TestExtrapolateNeverNegative(t *testing.T) {
	got := Extrapolate([]float64{10, 4}, 6)
	for _, v := range got {
		if v < 0 {
			t.Fatalf("negative extrapolation: %v", got)
		}
	}
}

func TestExtrapolateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Extrapolate(nil, 3)
}

func TestMemLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || LLC.String() != "LLC" || DRAM.String() != "DRAM" {
		t.Fatal("MemLevel names wrong")
	}
}
