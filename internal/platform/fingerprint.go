package platform

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Fingerprint identifies the machine a benchmark artifact was measured on.
// Performance numbers do not transfer between hosts ("DGEMM performance is
// data-dependent" shows drift across machines as well as shapes), so every
// schema-versioned benchmark envelope carries one, and the trend analyzer
// only compares epochs whose fingerprints match (Key).
type Fingerprint struct {
	Hostname  string `json:"hostname,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	Cores     int    `json:"cores"`
	CPUModel  string `json:"cpu_model,omitempty"`
	L1Bytes   int64  `json:"l1_bytes"`
	L2Bytes   int64  `json:"l2_bytes"`
	LLCBytes  int64  `json:"llc_bytes"`
	GoVersion string `json:"go_version"`
}

// HostFingerprint samples the running machine: topology from DetectHost
// (sysfs cache sizes with conservative fallbacks), CPU model from
// /proc/cpuinfo when readable, plus hostname and toolchain identity.
func HostFingerprint(cores int) Fingerprint {
	pl := DetectHost(cores)
	f := Fingerprint{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Cores:     cores,
		L1Bytes:   pl.L1Bytes,
		L2Bytes:   pl.L2Bytes,
		LLCBytes:  pl.LLCBytes,
		GoVersion: runtime.Version(),
	}
	if hn, err := os.Hostname(); err == nil {
		f.Hostname = hn
	}
	f.CPUModel = cpuModelName()
	return f
}

// Key collapses the fingerprint to a comparison identity: two epochs with the
// same key were measured on interchangeable hardware and may be judged
// against each other. The Go version is deliberately excluded — toolchain
// upgrades are exactly the kind of slow drift the trend analyzer should see,
// not silently partition away.
func (f Fingerprint) Key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%s|%d|%d|%d",
		f.Hostname, f.OS, f.Arch, f.Cores, f.CPUModel, f.L1Bytes, f.L2Bytes, f.LLCBytes)
}

// cpuModelName reads the first "model name" line from /proc/cpuinfo
// (linux-only; empty elsewhere or on unreadable files).
func cpuModelName() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
