package platform

import "testing"

func TestDetectHostPlausible(t *testing.T) {
	h := DetectHost(2)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Cores != 2 || h.LLCBytes < 1<<10 {
		t.Fatalf("implausible host: %+v", h)
	}
}

func TestEnvFloat(t *testing.T) {
	if _, ok := EnvFloat("CAKE_TEST_UNSET_VAR_PLATFORM"); ok {
		t.Fatal("unset var accepted")
	}
	t.Setenv("CAKE_TEST_VAR_PLATFORM", " 2.5 ")
	if v, ok := EnvFloat("CAKE_TEST_VAR_PLATFORM"); !ok || v != 2.5 {
		t.Fatalf("EnvFloat = %g,%v", v, ok)
	}
	t.Setenv("CAKE_TEST_VAR_PLATFORM", "-1")
	if _, ok := EnvFloat("CAKE_TEST_VAR_PLATFORM"); ok {
		t.Fatal("non-positive value accepted")
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int64{
		"32K":  32 << 10,
		"8M":   8 << 20,
		"1G":   1 << 30,
		"4096": 4096,
	}
	for in, want := range cases {
		got, ok := parseCacheSize(in)
		if !ok || got != want {
			t.Fatalf("parseCacheSize(%q) = %d,%v want %d", in, got, ok, want)
		}
	}
	for _, bad := range []string{"", "K", "-4K", "x"} {
		if _, ok := parseCacheSize(bad); ok {
			t.Fatalf("parseCacheSize(%q) accepted", bad)
		}
	}
}
