package platform

import (
	"strings"
	"testing"
)

func TestHostFingerprintPopulated(t *testing.T) {
	f := HostFingerprint(2)
	if f.OS == "" || f.Arch == "" || f.GoVersion == "" {
		t.Fatalf("fingerprint missing runtime identity: %+v", f)
	}
	if f.Cores != 2 {
		t.Fatalf("cores = %d, want 2", f.Cores)
	}
	if f.L1Bytes <= 0 || f.LLCBytes <= 0 {
		t.Fatalf("cache sizes must fall back to positive defaults: %+v", f)
	}
}

func TestFingerprintKeyDiscriminates(t *testing.T) {
	a := HostFingerprint(1)
	b := a
	if a.Key() != b.Key() {
		t.Fatal("identical fingerprints must share a key")
	}
	b.Cores = a.Cores + 1
	if a.Key() == b.Key() {
		t.Fatal("core-count change must change the key")
	}
	// Toolchain identity is excluded on purpose: a Go upgrade is a trend the
	// analyzer should see, not a host partition.
	c := a
	c.GoVersion = "go999.0"
	if a.Key() != c.Key() {
		t.Fatal("go version must not partition hosts")
	}
	if !strings.Contains(a.Key(), a.OS) {
		t.Fatalf("key %q should embed the OS", a.Key())
	}
}
