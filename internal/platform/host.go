package platform

import (
	"os"
	"strconv"
	"strings"
)

// DetectHost builds a Platform for the machine the process runs on, with the
// given core count. Cache sizes come from Linux sysfs when readable; anything
// missing falls back to conservative desktop defaults. Bandwidths use
// desktop-class defaults — callers who care calibrate with cmd/pmbw and apply
// the result either by setting the fields directly or through the
// CAKE_DRAM_BW / CAKE_CLOCK_HZ environment variables (values in bytes/s and
// Hz; scientific notation like "21.3e9" works), which override the defaults.
func DetectHost(cores int) *Platform {
	pl := &Platform{
		Name:          "host",
		Cores:         cores,
		L1Bytes:       32 << 10,
		L2Bytes:       512 << 10,
		LLCBytes:      16 << 20,
		DRAMBytes:     16 << 30,
		DRAMBW:        25e9,
		ClockHz:       3e9,
		FlopsPerCycle: 4, // pure-Go scalar kernels: no SIMD
		Internal:      BWCurve{SlopePre: 40e9, Knee: 8, SlopePost: 15e9},
		LatL1:         4, LatL2: 12, LatLLC: 40, LatDRAM: 200,
		DemandOverlap: 0.95,
		HasL3:         true,
	}
	if l1, ok := sysfsCacheBytes(0, 1); ok {
		pl.L1Bytes = l1
	}
	if l2, ok := sysfsCacheBytes(0, 2); ok {
		pl.L2Bytes = l2
	}
	if l3, ok := sysfsCacheBytes(0, 3); ok {
		pl.LLCBytes = l3
	} else {
		pl.HasL3 = false
		pl.LLCBytes = pl.L2Bytes
		pl.L2Bytes = 0
	}
	if bw, ok := EnvFloat("CAKE_DRAM_BW"); ok {
		pl.DRAMBW = bw
	}
	if hz, ok := EnvFloat("CAKE_CLOCK_HZ"); ok {
		pl.ClockHz = hz
	}
	return pl
}

// EnvFloat reads a positive float from the environment (pmbw calibration
// plumbing: CAKE_DRAM_BW, CAKE_CLOCK_HZ). Unset, empty, non-numeric or
// non-positive values are ignored so a typo degrades to the defaults.
func EnvFloat(name string) (float64, bool) {
	raw, ok := os.LookupEnv(name)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// sysfsCacheBytes reads the size of the given cache level for a CPU from
// /sys/devices/system/cpu. It scans the cache indices for a matching level
// with type Data or Unified.
func sysfsCacheBytes(cpu, level int) (int64, bool) {
	base := "/sys/devices/system/cpu/cpu" + strconv.Itoa(cpu) + "/cache"
	for idx := 0; idx < 8; idx++ {
		dir := base + "/index" + strconv.Itoa(idx)
		lvl, err := os.ReadFile(dir + "/level")
		if err != nil {
			break
		}
		if strings.TrimSpace(string(lvl)) != strconv.Itoa(level) {
			continue
		}
		typ, err := os.ReadFile(dir + "/type")
		if err != nil {
			continue
		}
		t := strings.TrimSpace(string(typ))
		if t != "Data" && t != "Unified" {
			continue
		}
		raw, err := os.ReadFile(dir + "/size")
		if err != nil {
			continue
		}
		return parseCacheSize(strings.TrimSpace(string(raw)))
	}
	return 0, false
}

// parseCacheSize parses sysfs size strings like "32K", "1024K", "8M".
func parseCacheSize(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M', 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G', 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v * mult, true
}
