// Roofline and optimal-blocking helpers for the conformance layer: where a
// measured execution should land given the platform's compute peak and DRAM
// bandwidth, and the reduction depth the Section 4.4 sizing rule would pick
// — the reference point mis-tuned configurations are judged against.
package cbtheory

import "math"

// PeakFlops returns the platform compute roof for p cores in FLOPs/s.
func PeakFlops(r Rates, p int) float64 {
	return float64(p) * r.ClockHz * r.FlopsPerCycle
}

// RooflineFlops returns the classic roofline bound min(peak, AI·BW) in
// FLOPs/s for an arithmetic intensity in MACs per element (the unit BlockAI
// and Shape.AI produce): each element moved at availBytesPerSec sustains
// ai MACs = 2·ai FLOPs.
func RooflineFlops(r Rates, p int, availBytesPerSec, aiMacsPerElem float64) float64 {
	memRoof := 2 * aiMacsPerElem * availBytesPerSec / float64(r.ElemBytes)
	return math.Min(PeakFlops(r, p), memRoof)
}

// OptimalKC returns the reduction depth the Section 4.4 sizing rule picks
// for a private cache of the given size: the square mc×kc A sub-block plus
// streaming headroom fills half the cache (2·kc² elements ≤ cache), rounded
// down to a multiple of mr and clamped below at mr. This is the kc both
// planners (core.Plan and gotoalg.Plan) derive, exposed so the conformance
// layer can score a config's kc without running a planner.
func OptimalKC(privateCacheBytes int64, elemBytes, mr int) int {
	if privateCacheBytes <= 0 || elemBytes < 1 || mr < 1 {
		return mr
	}
	kc := int(math.Sqrt(float64(privateCacheBytes) / float64(elemBytes) / 2))
	kc -= kc % mr
	if kc < mr {
		kc = mr
	}
	return kc
}
