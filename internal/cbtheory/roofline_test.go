package cbtheory

import (
	"math"
	"testing"
)

var confRates = Rates{ClockHz: 3e9, FlopsPerCycle: 4, ElemBytes: 4}

func TestPeakFlops(t *testing.T) {
	if got := PeakFlops(confRates, 1); got != 12e9 {
		t.Fatalf("1-core peak = %g, want 12e9", got)
	}
	if got := PeakFlops(confRates, 10); got != 120e9 {
		t.Fatalf("10-core peak = %g, want 120e9", got)
	}
}

func TestRooflineFlops(t *testing.T) {
	// High AI: compute-bound, roof = peak.
	if got := PeakFlops(confRates, 4); RooflineFlops(confRates, 4, 25e9, 1e6) != got {
		t.Fatalf("compute-bound roofline != peak")
	}
	// AI = 1 MAC/elem at 25 GB/s, 4B elements: 2·1·25e9/4 = 12.5 GFLOPs —
	// below even the single-core peak, so memory-bound.
	got := RooflineFlops(confRates, 4, 25e9, 1)
	want := 2 * 25e9 / 4.0
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("memory-bound roofline = %g, want %g", got, want)
	}
	// The memory roof scales linearly with AI while it stays below peak.
	if r2 := RooflineFlops(confRates, 4, 25e9, 2); math.Abs(r2-2*got) > 1e-6*r2 {
		t.Fatalf("roofline not linear in AI: %g vs 2×%g", r2, got)
	}
}

func TestOptimalKC(t *testing.T) {
	// 512 KiB private cache, float32, mr=8: sqrt(512Ki/4/2) = sqrt(65536)
	// = 256, already a multiple of 8 — the planners' kc on the default host.
	if got := OptimalKC(512<<10, 4, 8); got != 256 {
		t.Fatalf("OptimalKC(512KiB) = %d, want 256", got)
	}
	// 32 KiB L1, float32: sqrt(32Ki/4/2) = sqrt(4096) = 64.
	if got := OptimalKC(32<<10, 4, 8); got != 64 {
		t.Fatalf("OptimalKC(32KiB) = %d, want 64", got)
	}
	// Rounds down to an mr multiple.
	if got := OptimalKC(500<<10, 4, 8); got%8 != 0 {
		t.Fatalf("OptimalKC(500KiB) = %d, not a multiple of 8", got)
	}
	// Degenerate inputs clamp to mr instead of panicking or returning 0.
	for _, tc := range []struct{ cache int64 }{{0}, {-1}, {7}} {
		if got := OptimalKC(tc.cache, 4, 8); got != 8 {
			t.Fatalf("OptimalKC(%d) = %d, want mr=8", tc.cache, got)
		}
	}
}
