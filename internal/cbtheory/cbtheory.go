// Package cbtheory implements the constant-bandwidth block analysis of the
// CAKE paper: block shaping and sizing (Section 3), the CPU adaptation and
// GOTO comparison (Section 4), arithmetic-intensity accounting (Figure 4),
// and the LRU-eviction sizing rule (Section 4.3).
//
// Two unit systems appear, mirroring the paper:
//
//   - Tile units (Section 3): one abstract core computes one tile
//     multiplication per unit time; bandwidth is tiles/cycle.
//   - Element units (Section 4): a CPU core retires one mr×kc by kc×nr
//     register-tile product per "unit time" of mr·nr·kc MACs; bandwidth is
//     matrix elements per unit time, converted to bytes/s via the platform
//     clock and MAC rate.
package cbtheory

import (
	"errors"
	"fmt"
	"math"
)

// ErrBandwidthBound reports that the available external bandwidth is below
// the floor a CB block can reach even as α→∞ (R ≤ 1 in Section 3.2): no
// block shape balances IO with compute, so the computation is externally
// bandwidth-bound regardless of schedule.
var ErrBandwidthBound = errors.New("cbtheory: external bandwidth below CB floor (R <= 1)")

// ---------------------------------------------------------------------------
// Section 3: tile-unit analysis.
// ---------------------------------------------------------------------------

// AlphaForR returns the minimum aspect factor α satisfying the external
// bandwidth constraint BW_ext ≥ BW_min, i.e. α ≥ 1/(R−1) (Section 3.2),
// clamped below by 1 (the paper sets α = 1 when bandwidth is plentiful).
func AlphaForR(r float64) (float64, error) {
	if r <= 1 {
		return math.Inf(1), ErrBandwidthBound
	}
	return math.Max(1, 1/(r-1)), nil
}

// MinExternalBWTiles returns Equation 2, the minimum external bandwidth of a
// CB block in tiles/cycle: (α+1)/α · k.
func MinExternalBWTiles(alpha, k float64) float64 {
	return (alpha + 1) / alpha * k
}

// InternalMemTiles returns Equation 1, the local memory needed by one CB
// block in tiles: αpk² + pk² + αp²k².
func InternalMemTiles(alpha, p, k float64) float64 {
	return alpha*p*k*k + p*k*k + alpha*p*p*k*k
}

// InternalBWTiles returns Equation 3, the internal bandwidth requirement in
// tiles/cycle: Rk + 2pk.
func InternalBWTiles(r, p, k float64) float64 {
	return r*k + 2*p*k
}

// ---------------------------------------------------------------------------
// Arithmetic intensity (Figure 4).
// ---------------------------------------------------------------------------

// BlockAI returns the arithmetic intensity V/IO of an m×k×n block counting
// all three IO surfaces: mkn / (mk + kn + mn). Units: MACs per element.
func BlockAI(m, k, n float64) float64 {
	return m * k * n / (m*k + k*n + m*n)
}

// BlockAIResident returns the arithmetic intensity when the C surface stays
// resident in local memory (CAKE's partial-result reuse): mkn / (mk + kn).
func BlockAIResident(m, k, n float64) float64 {
	return m * k * n / (m*k + k*n)
}

// ---------------------------------------------------------------------------
// Section 4: CPU element-unit analysis.
// ---------------------------------------------------------------------------

// CakeExtBWElems returns Equation 4: CAKE's required external bandwidth in
// elements per unit time, (α+1)/α · mr·nr. Independent of p — the
// constant-bandwidth property.
func CakeExtBWElems(alpha float64, mr, nr int) float64 {
	return (alpha + 1) / alpha * float64(mr*nr)
}

// GotoExtBWElems returns Section 4.1's result: GOTO's required external
// bandwidth in elements per unit time, (1 + p + p·kc/nc) · mr·nr, which
// grows at least linearly in p.
func GotoExtBWElems(p int, kc, nc int, mr, nr int) float64 {
	return (1 + float64(p) + float64(kc)/float64(nc)*float64(p)) * float64(mr*nr)
}

// CakeLocalMemElems returns Equation 5: local memory for a CB block in
// elements, p·mc·kc·(α+1) + α·p²·mc².
func CakeLocalMemElems(p int, mc, kc int, alpha float64) float64 {
	return float64(p*mc*kc)*(alpha+1) + alpha*float64(p*p)*float64(mc)*float64(mc)
}

// CakeInternalBWElems returns Equation 6: internal bandwidth in elements per
// unit time, (2p + 1/α + 1) · mr·nr — linear in p.
func CakeInternalBWElems(p int, alpha float64, mr, nr int) float64 {
	return (2*float64(p) + 1/alpha + 1) * float64(mr*nr)
}

// ---------------------------------------------------------------------------
// Unit conversion: element units → bytes/second on a concrete CPU.
// ---------------------------------------------------------------------------

// Rates captures the per-core compute capability used to convert the
// paper's per-unit-time bandwidths into wall-clock bytes/s.
type Rates struct {
	ClockHz       float64 // core clock
	FlopsPerCycle float64 // per-core FLOPs/cycle (one MAC = 2 FLOPs)
	ElemBytes     int     // bytes per matrix element (4 for float32)
}

// UnitSeconds returns the duration of one Section 4 unit time — one core
// retiring an mr×kc × kc×nr register-tile product (mr·nr·kc MACs).
func (r Rates) UnitSeconds(mr, nr, kc int) float64 {
	macsPerSec := r.ClockHz * r.FlopsPerCycle / 2
	return float64(mr*nr*kc) / macsPerSec
}

// BytesPerSec converts a bandwidth in elements per unit time to bytes/s.
func (r Rates) BytesPerSec(elemsPerUnit float64, mr, nr, kc int) float64 {
	return elemsPerUnit * float64(r.ElemBytes) / r.UnitSeconds(mr, nr, kc)
}

// CakeOptimalDRAMBW returns the paper's "CAKE Optimal" dashed curve value:
// the external bandwidth (bytes/s) a CB block of the given shape needs,
// which is independent of core count.
func CakeOptimalDRAMBW(r Rates, alpha float64, mr, nr, kc int) float64 {
	return r.BytesPerSec(CakeExtBWElems(alpha, mr, nr), mr, nr, kc)
}

// GotoRequiredDRAMBW returns GOTO's required external bandwidth in bytes/s
// at p cores.
func GotoRequiredDRAMBW(r Rates, p, kc, nc, mr, nr int) float64 {
	return r.BytesPerSec(GotoExtBWElems(p, kc, nc, mr, nr), mr, nr, kc)
}

// RForBandwidth returns the paper's R constant for an available external
// bandwidth (bytes/s): the ratio of available bandwidth to the α→∞ CB
// floor, which for the CPU formulation is clock·flops/2/kc · mr·nr/(mr·nr)
// elements per unit. R > 1 means a finite α exists.
func RForBandwidth(r Rates, availBytesPerSec float64, mr, nr, kc int) float64 {
	floor := r.BytesPerSec(float64(mr*nr), mr, nr, kc) // (α+1)/α → 1 as α→∞
	return availBytesPerSec / floor
}

// AlphaForBandwidth picks α for a platform: the smallest α ≥ 1 whose CB
// block external bandwidth fits in availBytesPerSec, capped at maxAlpha.
// When even maxAlpha cannot fit (R ≤ 1 + 1/maxAlpha), it returns maxAlpha
// together with ErrBandwidthBound so callers can proceed bandwidth-bound,
// as CAKE on the ARM A53 does.
func AlphaForBandwidth(r Rates, availBytesPerSec float64, mr, nr, kc int, maxAlpha float64) (float64, error) {
	if maxAlpha < 1 {
		panic(fmt.Sprintf("cbtheory: maxAlpha %v < 1", maxAlpha))
	}
	rr := RForBandwidth(r, availBytesPerSec, mr, nr, kc)
	alpha, err := AlphaForR(rr)
	if err != nil || alpha > maxAlpha {
		if err == nil {
			err = ErrBandwidthBound
		}
		return maxAlpha, err
	}
	return alpha, nil
}

// ---------------------------------------------------------------------------
// Section 4.3: sizing CB blocks to minimise cache evictions.
// ---------------------------------------------------------------------------

// LRUSafe reports whether surfaces of the given sizes (elements) satisfy the
// Section 4.3 rule C + 2(A+B) ≤ S for a cache of sElems elements, which
// guarantees the resident partial-C surface survives the prefetch of the
// next block's A and B under LRU eviction.
func LRUSafe(aElems, bElems, cElems, sElems float64) bool {
	return cElems+2*(aElems+bElems) <= sElems
}

// MaxMCForCache returns the largest mc (= kc, the square per-core A block
// side) such that a CB block of p cores and aspect α passes LRUSafe in a
// cache of sElems elements, rounded down to a multiple of mr (so A row
// panels tile evenly) and clamped below at mr.
//
// With mc = kc the rule C + 2(A+B) ≤ S becomes
//
//	α·p²·mc² + 2·(1+α)·p·mc² ≤ S.
func MaxMCForCache(sElems float64, p int, alpha float64, mr int) int {
	if p < 1 || mr < 1 || sElems <= 0 {
		panic(fmt.Sprintf("cbtheory: MaxMCForCache invalid args S=%v p=%d mr=%d", sElems, p, mr))
	}
	den := alpha*float64(p*p) + 2*(1+alpha)*float64(p)
	mc := int(math.Sqrt(sElems / den))
	mc -= mc % mr
	if mc < mr {
		mc = mr
	}
	return mc
}

// Shape is a fully resolved CB block for a CPU: p·mc × kc × α·p·mc
// (Section 4.2's pmc × kc × αpmc with k = 1).
type Shape struct {
	P     int     // cores
	MC    int     // per-core A block rows (= kc in the paper's square form; the planner may shrink MC below KC to even out block rows)
	KC    int     // reduction depth per block
	Alpha float64 // aspect factor, ≥ 1 or the bandwidth-bound cap
}

// MDim returns the block's M extent, p·mc.
func (s Shape) MDim() int { return s.P * s.MC }

// KDim returns the block's K extent, kc.
func (s Shape) KDim() int { return s.KC }

// NDim returns the block's N extent, α·p·mc rounded to a whole number of
// elements (at α = 1 this equals MDim).
func (s Shape) NDim() int { return int(math.Round(s.Alpha * float64(s.P*s.MC))) }

// SurfaceElems returns the sizes of the three IO surfaces in elements.
func (s Shape) SurfaceElems() (a, b, c float64) {
	m, k, n := float64(s.MDim()), float64(s.KDim()), float64(s.NDim())
	return m * k, k * n, m * n
}

// ExternalIOElems returns the per-block external traffic A+B (partial C
// stays resident; Section 4.2).
func (s Shape) ExternalIOElems() float64 {
	a, b, _ := s.SurfaceElems()
	return a + b
}

// LocalMemElems returns the total local memory footprint A+B+C.
func (s Shape) LocalMemElems() float64 {
	a, b, c := s.SurfaceElems()
	return a + b + c
}

// ComputeUnits returns the block compute time in unit times for the given
// register tile: each of the p cores performs (mc/mr)·(n/nr)·1 tile products
// of depth kc, i.e. mc·n·kc/(mr·nr·kc) = α·p·mc²/(mr·nr) units (Section 4.2).
func (s Shape) ComputeUnits(mr, nr int) float64 {
	return float64(s.MDim()) * float64(s.NDim()) / float64(s.P) / float64(mr*nr)
}

// AI returns the block's external arithmetic intensity in MACs/element with
// partial C resident.
func (s Shape) AI() float64 {
	return BlockAIResident(float64(s.MDim()), float64(s.KDim()), float64(s.NDim()))
}

// Validate checks structural invariants.
func (s Shape) Validate() error {
	switch {
	case s.P < 1:
		return fmt.Errorf("cbtheory: shape has %d cores", s.P)
	case s.MC < 1 || s.KC < 1:
		return fmt.Errorf("cbtheory: shape has empty block %dx%d", s.MC, s.KC)
	case s.Alpha < 1:
		return fmt.Errorf("cbtheory: alpha %v < 1", s.Alpha)
	default:
		return nil
	}
}

func (s Shape) String() string {
	return fmt.Sprintf("CB[%dx%dx%d p=%d mc=%d alpha=%.3g]", s.MDim(), s.KDim(), s.NDim(), s.P, s.MC, s.Alpha)
}
