package cbtheory

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAlphaForR(t *testing.T) {
	// Plentiful bandwidth: α clamps to 1.
	if a, err := AlphaForR(3); err != nil || a != 1 {
		t.Fatalf("R=3: α=%v err=%v, want 1", a, err)
	}
	// R=2 ⇒ 1/(R−1)=1 exactly.
	if a, _ := AlphaForR(2); a != 1 {
		t.Fatalf("R=2: α=%v want 1", a)
	}
	// Scarce bandwidth: α = 1/(R−1) > 1.
	if a, _ := AlphaForR(1.25); !almost(a, 4, 1e-12) {
		t.Fatalf("R=1.25: α=%v want 4", a)
	}
	// R ≤ 1: no finite α.
	if _, err := AlphaForR(1); err != ErrBandwidthBound {
		t.Fatalf("R=1 should be bandwidth-bound, got %v", err)
	}
	if _, err := AlphaForR(0.5); err != ErrBandwidthBound {
		t.Fatal("R<1 should be bandwidth-bound")
	}
}

func TestMinExternalBWEq2(t *testing.T) {
	// Eq. 2 at α=1: 2k tiles/cycle.
	if bw := MinExternalBWTiles(1, 3); bw != 6 {
		t.Fatalf("got %v want 6", bw)
	}
	// α→large: approaches k.
	if bw := MinExternalBWTiles(1e9, 3); !almost(bw, 3, 1e-6) {
		t.Fatalf("α→∞ limit wrong: %v", bw)
	}
	// Raising α strictly lowers the requirement (the paper's compensation).
	if MinExternalBWTiles(4, 2) >= MinExternalBWTiles(2, 2) {
		t.Fatal("BW_min must decrease with α")
	}
}

func TestInternalMemEq1QuadraticInP(t *testing.T) {
	// Doubling p must grow memory ~4x once the αp²k² term dominates.
	base := InternalMemTiles(1, 64, 1)
	quad := InternalMemTiles(1, 128, 1)
	ratio := quad / base
	if ratio < 3.5 || ratio > 4.1 {
		t.Fatalf("p² scaling violated: ratio %v", ratio)
	}
	// Exact value check: α=2, p=3, k=2 ⇒ 2·3·4 + 3·4 + 2·9·4 = 24+12+72.
	if m := InternalMemTiles(2, 3, 2); m != 108 {
		t.Fatalf("Eq.1 got %v want 108", m)
	}
}

func TestInternalBWEq3LinearInP(t *testing.T) {
	// Eq. 3: Rk + 2pk.
	if bw := InternalBWTiles(1.5, 4, 2); bw != 1.5*2+2*4*2 {
		t.Fatalf("Eq.3 got %v", bw)
	}
	d1 := InternalBWTiles(2, 10, 1) - InternalBWTiles(2, 9, 1)
	d2 := InternalBWTiles(2, 100, 1) - InternalBWTiles(2, 99, 1)
	if d1 != d2 || d1 != 2 {
		t.Fatalf("internal BW must be linear in p with slope 2k: %v %v", d1, d2)
	}
}

func TestBlockAI(t *testing.T) {
	// Cube block m=k=n=s: AI = s³/3s² = s/3.
	if ai := BlockAI(6, 6, 6); !almost(ai, 2, 1e-12) {
		t.Fatalf("cube AI got %v want 2", ai)
	}
	// Resident-C AI of the same cube: s³/2s² = s/2.
	if ai := BlockAIResident(6, 6, 6); !almost(ai, 3, 1e-12) {
		t.Fatalf("resident AI got %v want 3", ai)
	}
}

func TestFig4ConstantBandwidthProperty(t *testing.T) {
	// Figure 4: scaling a CB block from p to 2p (m and n both double, k
	// fixed) doubles volume/time but keeps IO/time — external bandwidth —
	// constant, while AI increases.
	type blk struct{ m, k, n float64 }
	mk, kk := 4.0, 4.0
	blocks := []blk{
		{mk, kk, 1 * mk},
		{2 * mk, kk, 2 * mk},
		{4 * mk, kk, 4 * mk},
	}
	var bw0, ai0 float64
	for i, b := range blocks {
		io := b.m*b.k + b.k*b.n // A and B surfaces (C resident)
		tUnits := b.n           // paper: T = n unit times (N-dimension compute)
		bw := io / tUnits
		ai := BlockAIResident(b.m, b.k, b.n)
		if i == 0 {
			bw0, ai0 = bw, ai
			continue
		}
		if !almost(bw, bw0, 1e-9) {
			t.Fatalf("block %d: BW %v != %v — constant-bandwidth property broken", i, bw, bw0)
		}
		if ai <= ai0 {
			t.Fatalf("block %d: AI %v not increasing (prev %v)", i, ai, ai0)
		}
		ai0 = ai
	}
}

func TestCakeExtBWEq4IndependentOfP(t *testing.T) {
	// Eq. 4 has no p: verify the formula and its α behaviour.
	if bw := CakeExtBWElems(1, 8, 8); bw != 128 {
		t.Fatalf("α=1 got %v want 128", bw)
	}
	if bw := CakeExtBWElems(3, 8, 8); !almost(bw, 4.0/3*64, 1e-12) {
		t.Fatalf("α=3 got %v", bw)
	}
	if CakeExtBWElems(4, 8, 8) >= CakeExtBWElems(2, 8, 8) {
		t.Fatal("ext BW must fall as α rises")
	}
}

func TestGotoExtBWGrowsLinearlyInP(t *testing.T) {
	kc, nc, mr, nr := 192, 4096, 8, 8
	b1 := GotoExtBWElems(1, kc, nc, mr, nr)
	b2 := GotoExtBWElems(2, kc, nc, mr, nr)
	b4 := GotoExtBWElems(4, kc, nc, mr, nr)
	if !(b4 > b2 && b2 > b1) {
		t.Fatal("GOTO BW must grow with p")
	}
	// Slope: (1 + kc/nc)·mr·nr per extra core.
	slope := float64(mr*nr) * (1 + float64(kc)/float64(nc))
	if !almost(b2-b1, slope, 1e-9) || !almost(b4-b2, 2*slope, 1e-9) {
		t.Fatalf("GOTO BW slope wrong: %v vs %v", b2-b1, slope)
	}
}

func TestCakeVsGotoCrossover(t *testing.T) {
	// Section 4's headline: at p=1 the two are comparable; as p grows GOTO's
	// requirement exceeds CAKE's constant requirement.
	kc, nc, mr, nr := 192, 4096, 8, 8
	cake := CakeExtBWElems(1, mr, nr)
	if GotoExtBWElems(1, kc, nc, mr, nr) > 3*cake {
		t.Fatal("at p=1 GOTO should not already be far above CAKE")
	}
	if GotoExtBWElems(16, kc, nc, mr, nr) < 4*cake {
		t.Fatal("at p=16 GOTO must need multiples of CAKE's bandwidth")
	}
}

func TestCakeLocalMemEq5(t *testing.T) {
	// p=2, mc=kc=3, α=2: 2·3·3·3 + 2·4·9 = 54 + 72 = 126.
	if m := CakeLocalMemElems(2, 3, 3, 2); m != 126 {
		t.Fatalf("Eq.5 got %v want 126", m)
	}
	// Quadratic growth in p.
	r := CakeLocalMemElems(64, 16, 16, 1) / CakeLocalMemElems(32, 16, 16, 1)
	if r < 3.5 || r > 4.2 {
		t.Fatalf("Eq.5 p² growth: ratio %v", r)
	}
}

func TestCakeInternalBWEq6(t *testing.T) {
	// (2p + 1/α + 1)·mr·nr with p=2, α=1, 4x4: (4+1+1)*16 = 96.
	if bw := CakeInternalBWElems(2, 1, 4, 4); bw != 96 {
		t.Fatalf("Eq.6 got %v want 96", bw)
	}
	d := CakeInternalBWElems(10, 1, 8, 8) - CakeInternalBWElems(9, 1, 8, 8)
	if d != 2*64 {
		t.Fatalf("Eq.6 slope got %v want 128", d)
	}
}

func TestRatesConversions(t *testing.T) {
	r := Rates{ClockHz: 1e9, FlopsPerCycle: 2, ElemBytes: 4}
	// One unit = mr·nr·kc MACs at 1 GMAC/s.
	if u := r.UnitSeconds(8, 8, 100); !almost(u, 6400e-9, 1e-15) {
		t.Fatalf("UnitSeconds got %v", u)
	}
	// 64 elems/unit → 64*4 bytes / 6.4e-6 s = 40 MB/s.
	if b := r.BytesPerSec(64, 8, 8, 100); !almost(b, 40e6, 1) {
		t.Fatalf("BytesPerSec got %v", b)
	}
}

func TestCakeOptimalConstantInKernelScale(t *testing.T) {
	// The optimal DRAM BW depends on kc, not on p. Doubling kc halves it.
	r := Rates{ClockHz: 3.7e9, FlopsPerCycle: 32, ElemBytes: 4}
	b1 := CakeOptimalDRAMBW(r, 1, 8, 8, 96)
	b2 := CakeOptimalDRAMBW(r, 1, 8, 8, 192)
	if !almost(b1/b2, 2, 1e-9) {
		t.Fatalf("optimal BW should scale as 1/kc: %v vs %v", b1, b2)
	}
}

func TestAlphaForBandwidth(t *testing.T) {
	r := Rates{ClockHz: 1e9, FlopsPerCycle: 2, ElemBytes: 4}
	kc := 100
	floor := r.BytesPerSec(64, 8, 8, kc) // α→∞ requirement

	// Plenty of bandwidth (R=3): α = 1.
	a, err := AlphaForBandwidth(r, 3*floor, 8, 8, kc, 64)
	if err != nil || a != 1 {
		t.Fatalf("R=3: α=%v err=%v", a, err)
	}
	// R = 1.25: α = 4.
	a, err = AlphaForBandwidth(r, 1.25*floor, 8, 8, kc, 64)
	if err != nil || !almost(a, 4, 1e-9) {
		t.Fatalf("R=1.25: α=%v err=%v", a, err)
	}
	// R below 1: capped with error.
	a, err = AlphaForBandwidth(r, 0.9*floor, 8, 8, kc, 64)
	if err != ErrBandwidthBound || a != 64 {
		t.Fatalf("R<1: α=%v err=%v", a, err)
	}
	// Finite R but α demand above cap.
	a, err = AlphaForBandwidth(r, 1.01*floor, 8, 8, kc, 8)
	if err != ErrBandwidthBound || a != 8 {
		t.Fatalf("cap: α=%v err=%v", a, err)
	}
}

func TestAlphaForBandwidthBadCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AlphaForBandwidth(Rates{ClockHz: 1, FlopsPerCycle: 2, ElemBytes: 4}, 1, 8, 8, 1, 0.5)
}

func TestLRUSafe(t *testing.T) {
	if !LRUSafe(10, 10, 50, 90) {
		t.Fatal("50+2·20=90 ≤ 90 must pass")
	}
	if LRUSafe(10, 10, 51, 90) {
		t.Fatal("91 > 90 must fail")
	}
}

func TestMaxMCForCache(t *testing.T) {
	// The returned mc must satisfy LRUSafe; mc+mr must not.
	for _, tc := range []struct {
		s     float64
		p     int
		alpha float64
		mr    int
	}{
		{20 << 20 >> 2, 10, 1, 8}, // Intel i9 L3 in float32 elements
		{64 << 20 >> 2, 16, 1, 8}, // AMD 5950X
		{512 << 10 >> 2, 4, 4, 8}, // ARM A53 L2, α=4
	} {
		mc := MaxMCForCache(tc.s, tc.p, tc.alpha, tc.mr)
		if mc%tc.mr != 0 {
			t.Fatalf("mc=%d not multiple of mr=%d", mc, tc.mr)
		}
		a := float64(tc.p * mc * mc)
		b := tc.alpha * float64(tc.p*mc*mc)
		c := tc.alpha * float64(tc.p*tc.p) * float64(mc*mc)
		if !LRUSafe(a, b, c, tc.s) {
			t.Fatalf("mc=%d violates LRU rule for %+v", mc, tc)
		}
		mc2 := mc + tc.mr
		a2 := float64(tc.p * mc2 * mc2)
		b2 := tc.alpha * float64(tc.p*mc2*mc2)
		c2 := tc.alpha * float64(tc.p*tc.p) * float64(mc2*mc2)
		if LRUSafe(a2, b2, c2, tc.s) {
			t.Fatalf("mc=%d is not maximal for %+v", mc, tc)
		}
	}
}

func TestMaxMCForCacheIntelMatchesPaper(t *testing.T) {
	// Section 4.4: on the i9-10900K with p=10, α=1, the paper uses
	// mc = kc = 192 with B and C filling the L3. Our LRU-safe rule is
	// stricter (the paper's 192 fills the cache exactly; the safe size
	// backs off by the 2(A+B) guard), so we must land within [128, 192].
	sElems := float64(20<<20) / 4
	mc := MaxMCForCache(sElems, 10, 1, 8)
	if mc < 128 || mc > 192 {
		t.Fatalf("Intel mc=%d, want within [128,192]", mc)
	}
}

func TestMaxMCForCacheTinyCacheClamps(t *testing.T) {
	if mc := MaxMCForCache(10, 64, 8, 8); mc != 8 {
		t.Fatalf("tiny cache should clamp to mr: %d", mc)
	}
}

func TestMaxMCForCacheInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxMCForCache(0, 1, 1, 8)
}

func TestShapeGeometry(t *testing.T) {
	s := Shape{P: 10, MC: 192, KC: 192, Alpha: 1}
	if s.MDim() != 1920 || s.NDim() != 1920 || s.KDim() != 192 {
		t.Fatalf("dims: %d %d %d", s.MDim(), s.KDim(), s.NDim())
	}
	a, b, c := s.SurfaceElems()
	if a != 1920*192 || b != 192*1920 || c != 1920*1920 {
		t.Fatalf("surfaces: %v %v %v", a, b, c)
	}
	if s.ExternalIOElems() != a+b {
		t.Fatal("external IO must exclude resident C")
	}
	if s.LocalMemElems() != a+b+c {
		t.Fatal("local mem must include all surfaces")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShapePaperL3Split(t *testing.T) {
	// Section 4.4 example: i9, p=10, α=1, mc=kc=192 ⇒ C is 91% and B 9% of
	// the B+C footprint in L3.
	s := Shape{P: 10, MC: 192, KC: 192, Alpha: 1}
	_, b, c := s.SurfaceElems()
	cShare := c / (b + c)
	if cShare < 0.89 || cShare > 0.93 {
		t.Fatalf("C share of L3 = %v, paper says ~0.91", cShare)
	}
}

func TestShapeComputeUnits(t *testing.T) {
	s := Shape{P: 2, MC: 16, KC: 16, Alpha: 1}
	// T = α·p·mc²/(mr·nr) = 2·256/64 = 8 units for 8x8 tiles.
	if u := s.ComputeUnits(8, 8); u != 8 {
		t.Fatalf("ComputeUnits got %v want 8", u)
	}
}

func TestShapeValidate(t *testing.T) {
	for _, bad := range []Shape{
		{P: 0, MC: 1, KC: 1, Alpha: 1},
		{P: 1, MC: 0, KC: 1, Alpha: 1},
		{P: 1, MC: 1, KC: 0, Alpha: 1},
		{P: 1, MC: 1, KC: 1, Alpha: 0.5},
	} {
		if bad.Validate() == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}

func TestShapeStringStable(t *testing.T) {
	s := Shape{P: 2, MC: 8, KC: 8, Alpha: 1}
	if s.String() != "CB[16x8x16 p=2 mc=8 alpha=1]" {
		t.Fatalf("String: %q", s.String())
	}
}

func TestShapeBWConstantAcrossPQuick(t *testing.T) {
	// Property (the paper's core claim): for random mc and α, per-block
	// external IO divided by compute time is independent of p.
	f := func(seed int64) bool {
		mc := 8 * (1 + int(uint(seed)%20))
		alpha := 1 + float64(uint(seed)%5)
		ref := math.NaN()
		for _, p := range []int{1, 2, 4, 8} {
			s := Shape{P: p, MC: mc, KC: mc, Alpha: alpha}
			bw := s.ExternalIOElems() / s.ComputeUnits(8, 8)
			if math.IsNaN(ref) {
				ref = bw
			} else if !almost(bw, ref, 1e-6*ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
