// Package tuner implements the grid search over block designs that CAKE is
// built to avoid. The paper's claim (Section 1) is that analytically shaped
// CB blocks obviate "extensive design search" of the tiling-parameter
// space; this package provides that search — candidates evaluated on the
// architecture simulator — so the claim can be quantified: the analytic
// plan should reach within a few percent of the best design the search
// finds, at none of the cost.
package tuner

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Candidate is one evaluated block design.
type Candidate struct {
	MC     int
	Alpha  float64
	Cycles int64
	GFLOPS float64
	DRAMGB float64 // average DRAM bandwidth in GB/s
}

// Result is the outcome of a search.
type Result struct {
	Best      Candidate
	Evaluated []Candidate // every candidate, best first
	Analytic  Candidate   // the planner's design, evaluated the same way
}

// AnalyticShare returns the fraction of the searched optimum's throughput
// the analytic plan achieves (1.0 = the planner matched the search).
func (r Result) AnalyticShare() float64 {
	if r.Best.GFLOPS == 0 {
		return 0
	}
	return r.Analytic.GFLOPS / r.Best.GFLOPS
}

// Options bounds the search space.
type Options struct {
	MCStep   int       // mc stride (defaults to 16)
	MCMax    int       // largest mc considered (defaults to 512)
	Alphas   []float64 // aspect factors to try (defaults to 1, 2, 4, 8)
	ElemSize int       // bytes per element (defaults to 4)
}

func (o *Options) fill() {
	if o.MCStep == 0 {
		o.MCStep = 16
	}
	if o.MCMax == 0 {
		o.MCMax = 512
	}
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{1, 2, 4, 8}
	}
	if o.ElemSize == 0 {
		o.ElemSize = 4
	}
}

// Search grid-searches (mc, α) for an m×k×n GEMM on p cores of pl, scoring
// each candidate by simulated throughput. It also evaluates the analytic
// plan so callers can compare. Candidates whose CB block would violate the
// LLC LRU rule are skipped (they would thrash in practice, and the paper's
// Section 4.3 excludes them by construction).
func Search(pl *platform.Platform, p, m, k, n int, opts Options) (Result, error) {
	opts.fill()
	if p < 1 {
		return Result{}, fmt.Errorf("tuner: %d cores", p)
	}
	mcfg := sim.FromPlatform(pl, p)
	llcElems := float64(pl.LLCBytes) / float64(opts.ElemSize)

	var out Result
	for mc := 16; mc <= opts.MCMax; mc += opts.MCStep {
		for _, alpha := range opts.Alphas {
			// LRU rule C + 2(A+B) ≤ S with mc = kc.
			c := alpha * float64(p*p) * float64(mc*mc)
			ab := (1 + alpha) * float64(p) * float64(mc*mc)
			if c+2*ab > llcElems {
				continue
			}
			cand, err := evaluate(mcfg, pl, p, m, k, n, mc, alpha, opts.ElemSize)
			if err != nil {
				return Result{}, err
			}
			out.Evaluated = append(out.Evaluated, cand)
		}
	}
	if len(out.Evaluated) == 0 {
		return Result{}, fmt.Errorf("tuner: empty search space for p=%d on %s", p, pl.Name)
	}
	sort.Slice(out.Evaluated, func(i, j int) bool {
		return out.Evaluated[i].GFLOPS > out.Evaluated[j].GFLOPS
	})
	out.Best = out.Evaluated[0]

	pp := *pl
	pp.Cores = p
	cfg, err := core.Plan(&pp, m, k, n, opts.ElemSize)
	if err != nil {
		return Result{}, err
	}
	out.Analytic, err = evaluate(mcfg, pl, p, m, k, n, cfg.MC, cfg.Alpha, opts.ElemSize)
	if err != nil {
		return Result{}, err
	}
	return out, nil
}

func evaluate(mcfg sim.MachineConfig, pl *platform.Platform, p, m, k, n, mc int, alpha float64, elemSize int) (Candidate, error) {
	w := sim.CakeWorkload{P: p, MC: mc, KC: mc, Alpha: alpha, MR: 8, NR: 8, ElemBytes: elemSize}
	ops, err := sim.CakeOps(w, m, k, n)
	if err != nil {
		return Candidate{}, err
	}
	met, err := sim.Run(mcfg, ops)
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{
		MC: mc, Alpha: alpha,
		Cycles: met.Cycles,
		GFLOPS: met.ThroughputGFLOPS(pl.ClockHz),
		DRAMGB: met.AvgDRAMBW(pl.ClockHz) / 1e9,
	}, nil
}
