package tuner

import (
	"testing"

	"repro/internal/platform"
)

func TestSearchFindsValidDesigns(t *testing.T) {
	pl := platform.IntelI9()
	res, err := Search(pl, 10, 2304, 2304, 2304, Options{MCStep: 32, MCMax: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluated) == 0 {
		t.Fatal("no candidates")
	}
	// Candidates sorted best-first.
	for i := 1; i < len(res.Evaluated); i++ {
		if res.Evaluated[i].GFLOPS > res.Evaluated[i-1].GFLOPS {
			t.Fatal("candidates not sorted")
		}
	}
	if res.Best.GFLOPS <= 0 || res.Best.MC < 16 {
		t.Fatalf("bad best: %+v", res.Best)
	}
	// Every candidate obeys the LLC LRU rule.
	llcElems := float64(pl.LLCBytes) / 4
	for _, c := range res.Evaluated {
		cc := c.Alpha * 100 * float64(c.MC*c.MC)
		ab := (1 + c.Alpha) * 10 * float64(c.MC*c.MC)
		if cc+2*ab > llcElems {
			t.Fatalf("candidate %+v violates LRU rule", c)
		}
	}
}

func TestAnalyticPlanNearSearchOptimum(t *testing.T) {
	// The paper's headline claim, quantified: the analytic CB plan reaches
	// within a few percent of an exhaustive (mc, α) search on every
	// Table 2 platform — no design search needed.
	for _, pl := range platform.All() {
		res, err := Search(pl, pl.Cores, 2304, 2304, 2304, Options{MCStep: 16, MCMax: 320})
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		share := res.AnalyticShare()
		if share < 0.9 {
			t.Fatalf("%s: analytic plan reaches only %.1f%% of search optimum (best %+v, analytic %+v)",
				pl.Name, 100*share, res.Best, res.Analytic)
		}
	}
}

func TestSearchEmptySpace(t *testing.T) {
	// An LLC too small for even the smallest candidate yields an error.
	pl := platform.IntelI9()
	pl.LLCBytes = 1 << 10
	if _, err := Search(pl, pl.Cores, 256, 256, 256, Options{}); err == nil {
		t.Fatal("expected empty-space error")
	}
}

func TestSearchRejectsBadCores(t *testing.T) {
	if _, err := Search(platform.IntelI9(), 0, 64, 64, 64, Options{}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestAnalyticShareZeroSafe(t *testing.T) {
	var r Result
	if r.AnalyticShare() != 0 {
		t.Fatal("zero-value share")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.MCStep != 16 || o.MCMax != 512 || len(o.Alphas) != 4 || o.ElemSize != 4 {
		t.Fatalf("defaults %+v", o)
	}
}
