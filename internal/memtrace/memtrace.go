// Package memtrace generates the chunk-granularity memory-access traces
// that the CAKE and GOTO schedules induce on the shared last-level cache,
// and the analytic register/L1-level load counts of the microkernel. Driven
// through internal/cachesim, these reproduce the per-level access and stall
// profiles the paper measures with VTune and perf (Figure 7).
//
// A chunk is a gran×gran sub-tile of one of the three operand surfaces —
// the unit at which the LLC is modelled (an exact element- or line-level
// trace of a 10000³ GEMM would be ~10¹² events; the schedules move whole
// sub-tiles, so tile granularity preserves the reuse structure).
package memtrace

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/schedule"
)

// Surface identifies an operand surface.
type Surface uint8

const (
	SurfA Surface = iota
	SurfB
	SurfC
)

func (s Surface) String() string {
	switch s {
	case SurfA:
		return "A"
	case SurfB:
		return "B"
	default:
		return "C"
	}
}

// Key identifies one chunk: surface plus chunk-grid coordinates.
type Key struct {
	Surf Surface
	R, C int
}

// Access is one chunk touch.
type Access struct {
	Key   Key
	Bytes int64
	Write bool
}

// Emit receives trace events in execution order.
type Emit func(Access)

// CakeParams describes the CAKE execution whose trace is generated.
type CakeParams struct {
	P     int     // cores
	MC    int     // per-core block side (mc = kc)
	Alpha float64 // CB aspect factor
}

// GotoParams describes the GOTO execution whose trace is generated.
type GotoParams struct {
	MC int // = kc, square A block
	NC int // B panel width
}

// Trace geometry shared by both generators.
type geom struct {
	m, k, n   int
	gran      int
	elemBytes int
}

func (g geom) check() error {
	if g.m < 1 || g.k < 1 || g.n < 1 {
		return fmt.Errorf("memtrace: invalid dims %dx%dx%d", g.m, g.k, g.n)
	}
	if g.gran < 1 || g.elemBytes < 1 {
		return fmt.Errorf("memtrace: invalid gran=%d elemBytes=%d", g.gran, g.elemBytes)
	}
	return nil
}

// chunkBytes returns the footprint of chunk (ri, ci) of a rows×cols surface.
func (g geom) chunkBytes(ri, ci, rows, cols int) int64 {
	r := min(g.gran, rows-ri*g.gran)
	c := min(g.gran, cols-ci*g.gran)
	return int64(r) * int64(c) * int64(g.elemBytes)
}

// forChunks invokes fn for every chunk of the global chunk grid overlapping
// element range [r0, r1)×[c0, c1) of a rows×cols surface.
func (g geom) forChunks(surf Surface, r0, r1, c0, c1, rows, cols int, write bool, emit Emit) {
	for ri := r0 / g.gran; ri*g.gran < r1; ri++ {
		for ci := c0 / g.gran; ci*g.gran < c1; ci++ {
			emit(Access{
				Key:   Key{Surf: surf, R: ri, C: ci},
				Bytes: g.chunkBytes(ri, ci, rows, cols),
				Write: write,
			})
		}
	}
}

// Cake streams the LLC-level access trace of a CAKE GEMM: K-first block
// schedule, per block one pass over the A and B surfaces and a
// read-modify-write pass over the resident C surface (Figure 6b).
func Cake(m, k, n int, p CakeParams, gran, elemBytes int, emit Emit) error {
	g := geom{m: m, k: k, n: n, gran: gran, elemBytes: elemBytes}
	if err := g.check(); err != nil {
		return err
	}
	if p.P < 1 || p.MC < 1 || p.Alpha < 1 {
		return fmt.Errorf("memtrace: invalid CAKE params %+v", p)
	}
	bm := p.P * p.MC
	bk := p.MC
	bn := int(p.Alpha * float64(bm))
	grid := schedule.Dims{
		Mb: ceilDiv(m, bm), Nb: ceilDiv(n, bn), Kb: ceilDiv(k, bk),
	}
	schedule.Walk(grid, schedule.OrderFor(m, n), func(c schedule.Coord) {
		m0, m1 := clip(c.M, bm, m)
		k0, k1 := clip(c.K, bk, k)
		n0, n1 := clip(c.N, bn, n)
		// A sub-blocks loaded onto the cores.
		g.forChunks(SurfA, m0, m1, k0, k1, m, k, false, emit)
		// B panel broadcast, interleaved with C accumulate traffic: the
		// macro kernel sweeps N, touching each B column chunk then the C
		// column it updates.
		for ci := n0 / g.gran; ci*g.gran < n1; ci++ {
			for ki := k0 / g.gran; ki*g.gran < k1; ki++ {
				emit(Access{Key: Key{SurfB, ki, ci}, Bytes: g.chunkBytes(ki, ci, k, n), Write: false})
			}
			for ri := m0 / g.gran; ri*g.gran < m1; ri++ {
				emit(Access{Key: Key{SurfC, ri, ci}, Bytes: g.chunkBytes(ri, ci, m, n), Write: true})
			}
		}
	})
	return nil
}

// Goto streams the LLC-level access trace of a GOTO GEMM: the five-loop
// schedule of Figure 5 — B panel per (jc, pc), per-core A blocks, and the
// defining partial-result streaming of C once per pc iteration.
func Goto(m, k, n int, p GotoParams, gran, elemBytes int, emit Emit) error {
	g := geom{m: m, k: k, n: n, gran: gran, elemBytes: elemBytes}
	if err := g.check(); err != nil {
		return err
	}
	if p.MC < 1 || p.NC < 1 {
		return fmt.Errorf("memtrace: invalid GOTO params %+v", p)
	}
	kc := p.MC
	for jc := 0; jc < n; jc += p.NC {
		n1 := min(jc+p.NC, n)
		for pc := 0; pc < k; pc += kc {
			k1 := min(pc+kc, k)
			// B panel into the LLC.
			g.forChunks(SurfB, pc, k1, jc, n1, k, n, false, emit)
			for ic := 0; ic < m; ic += p.MC {
				m1 := min(ic+p.MC, m)
				// Core's A block.
				g.forChunks(SurfA, ic, m1, pc, k1, m, k, false, emit)
				// Partial C slab streamed (read-modify-write).
				g.forChunks(SurfC, ic, m1, jc, n1, m, n, true, emit)
			}
		}
	}
	return nil
}

// Result summarises a trace run through a cache hierarchy.
type Result struct {
	Levels     []cachesim.LevelStats
	DRAMReads  int64
	DRAMWrites int64
	Accesses   int64
	BytesMoved int64 // bytes entering the last level from DRAM
}

// Run drives a trace through a hierarchy and returns the per-level profile.
// The hierarchy is flushed at the end so resident dirty surfaces (final C
// results) are charged as DRAM writes, matching what perf counters see over
// a complete GEMM.
func Run(trace func(Emit) error, h *cachesim.Hierarchy[Key]) (Result, error) {
	var res Result
	err := trace(func(a Access) {
		res.Accesses++
		h.Access(a.Key, a.Bytes, a.Write)
	})
	if err != nil {
		return Result{}, err
	}
	h.Flush()
	res.Levels = h.Levels()
	res.DRAMReads = h.DRAMReads
	res.DRAMWrites = h.DRAMWrites
	last := res.Levels[len(res.Levels)-1]
	res.BytesMoved = last.BytesIn
	return res, nil
}

// KernelLoads returns the analytic register-level load/store profile of the
// tiled microkernel over a full M×K×N GEMM (Figures 5e/6e — identical for
// CAKE and GOTO): total element accesses issued by the cores, and the
// subset that must come from beyond L1 (each operand panel element enters
// L1 once per microkernel invocation; accumulators live in registers).
func KernelLoads(m, k, n, mr, nr, kc int) (total, beyondL1 int64) {
	calls := int64(ceilDiv(m, mr)) * int64(ceilDiv(n, nr)) * int64(ceilDiv(k, kc))
	perCallTouches := int64(mr*kc + kc*nr + 2*mr*nr) // stream A, B; read+write C tile
	perCallFills := int64(mr*kc + kc*nr + mr*nr)     // unique bytes entering L1
	return calls * perCallTouches, calls * perCallFills
}

// KernelTrace streams one core's access sequence while executing the macro
// kernel over an mc×kc A panel and a kc×nEff B panel (Figures 5c–e/6c–e):
// for each mr-row A panel, sweep the jr loop touching the B slab (kc×nr)
// and the C accumulator tile (mr×nr, read-modify-write). Chunk granularity
// is the register tile's panel slabs — the natural unit of kernel locality.
// Driving this trace through a per-core L1/L2/LLC hierarchy (cachesim)
// yields the per-level hit profile of Figure 7 by measurement rather than
// by formula.
func KernelTrace(mc, kc, nEff, mr, nr, elemBytes int, emit Emit) error {
	if mc < 1 || kc < 1 || nEff < 1 || mr < 1 || nr < 1 || elemBytes < 1 {
		return fmt.Errorf("memtrace: invalid kernel trace args mc=%d kc=%d n=%d mr=%d nr=%d", mc, kc, nEff, mr, nr)
	}
	aBytes := int64(mr) * int64(kc) * int64(elemBytes)
	bBytes := int64(kc) * int64(nr) * int64(elemBytes)
	cBytes := int64(mr) * int64(nr) * int64(elemBytes)
	for ir := 0; ir*mr < mc; ir++ {
		for jr := 0; jr*nr < nEff; jr++ {
			emit(Access{Key: Key{Surf: SurfA, R: ir, C: 0}, Bytes: aBytes, Write: false})
			emit(Access{Key: Key{Surf: SurfB, R: 0, C: jr}, Bytes: bBytes, Write: false})
			emit(Access{Key: Key{Surf: SurfC, R: ir, C: jr}, Bytes: cBytes, Write: true})
		}
	}
	return nil
}

// KernelProfile is the analytic register/L1 behaviour of the tiled kernel
// over a whole GEMM.
type KernelProfile struct {
	Touches  int64 // element accesses issued by the cores
	L1Hits   int64 // served by L1 (panel reuse within the macro kernel)
	BeyondL1 int64 // element fills that must come from L2/LLC/DRAM
}

// ProfileKernel models the macro-kernel loop nest (ir outer, jr inner): the
// mr×kc A panel loads once per ir sweep and then hits L1 across all jr
// iterations; the kc×nr B slab streams from beyond L1 every call (the whole
// B panel exceeds L1); the C tile fills once and writes back once per call.
func ProfileKernel(m, k, n, mr, nr, kc int) KernelProfile {
	irPanels := int64(ceilDiv(m, mr)) * int64(ceilDiv(k, kc))
	calls := irPanels * int64(ceilDiv(n, nr))
	touches := calls * int64(mr*kc+kc*nr+2*mr*nr)
	fills := irPanels*int64(mr*kc) + calls*int64(kc*nr+mr*nr)
	return KernelProfile{Touches: touches, L1Hits: touches - fills, BeyondL1: fills}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clip(idx, block, total int) (lo, hi int) {
	lo = idx * block
	hi = min(lo+block, total)
	return
}
