package memtrace

import (
	"testing"

	"repro/internal/cachesim"
)

func collect(t *testing.T, trace func(Emit) error) []Access {
	t.Helper()
	var out []Access
	if err := trace(func(a Access) { out = append(out, a) }); err != nil {
		t.Fatal(err)
	}
	return out
}

func cakeTrace(m, k, n int, p CakeParams, gran int) func(Emit) error {
	return func(e Emit) error { return Cake(m, k, n, p, gran, 4, e) }
}

func gotoTrace(m, k, n int, p GotoParams, gran int) func(Emit) error {
	return func(e Emit) error { return Goto(m, k, n, p, gran, 4, e) }
}

func sumBySurface(acc []Access) map[Surface]int64 {
	out := map[Surface]int64{}
	for _, a := range acc {
		out[a.Key.Surf] += a.Bytes
	}
	return out
}

func TestCakeTraceCoversAllSurfacesOnce(t *testing.T) {
	// One CB block covering the whole problem: every chunk of A, B touched
	// once; C chunks touched once per (block, column sweep).
	acc := collect(t, cakeTrace(32, 16, 32, CakeParams{P: 2, MC: 16, Alpha: 1}, 16))
	bytes := sumBySurface(acc)
	if bytes[SurfA] != 32*16*4 {
		t.Fatalf("A bytes %d", bytes[SurfA])
	}
	if bytes[SurfB] != 16*32*4 {
		t.Fatalf("B bytes %d", bytes[SurfB])
	}
	if bytes[SurfC] != 32*32*4 {
		t.Fatalf("C bytes %d", bytes[SurfC])
	}
	for _, a := range acc {
		if (a.Key.Surf == SurfC) != a.Write {
			t.Fatal("only C accesses write")
		}
	}
}

func TestCakeTraceEdgeChunks(t *testing.T) {
	// Non-multiple dims: total bytes still exactly cover each surface pass.
	acc := collect(t, cakeTrace(33, 17, 35, CakeParams{P: 2, MC: 16, Alpha: 1}, 16))
	bytes := sumBySurface(acc)
	// Grid: Mb=ceil(33/32)=2, Kb=ceil(17/16)=2, Nb=ceil(35/32)=2.
	// A read once per N block: 2 passes over 33*17 elements.
	if bytes[SurfA] != 2*33*17*4 {
		t.Fatalf("A bytes %d", bytes[SurfA])
	}
	// B read once per M block: 2 passes.
	if bytes[SurfB] != 2*17*35*4 {
		t.Fatalf("B bytes %d", bytes[SurfB])
	}
	// C touched once per K block: 2 passes.
	if bytes[SurfC] != 2*33*35*4 {
		t.Fatalf("C bytes %d", bytes[SurfC])
	}
}

func TestGotoTraceSurfaceTotals(t *testing.T) {
	// GOTO with mc=kc=16, nc=32 on 32×32×32: jc loops 1, pc loops 2,
	// ic loops 2. B read once per (jc,pc); A once per (jc,pc,ic);
	// C streamed once per (pc, ic slab).
	acc := collect(t, gotoTrace(32, 32, 32, GotoParams{MC: 16, NC: 32}, 16))
	bytes := sumBySurface(acc)
	if bytes[SurfB] != 32*32*4 {
		t.Fatalf("B bytes %d", bytes[SurfB])
	}
	if bytes[SurfA] != 32*32*4 {
		t.Fatalf("A bytes %d", bytes[SurfA])
	}
	// C: 2 pc iterations × full C.
	if bytes[SurfC] != 2*32*32*4 {
		t.Fatalf("C bytes %d", bytes[SurfC])
	}
}

func TestGotoCStreamingGrowsWithK(t *testing.T) {
	shallow := sumBySurface(collect(t, gotoTrace(32, 32, 32, GotoParams{MC: 16, NC: 32}, 16)))
	deep := sumBySurface(collect(t, gotoTrace(32, 128, 32, GotoParams{MC: 16, NC: 32}, 16)))
	if deep[SurfC] != 4*shallow[SurfC] {
		t.Fatalf("C traffic should scale with K/kc: %d vs %d", deep[SurfC], shallow[SurfC])
	}
}

func TestInvalidParams(t *testing.T) {
	if err := Cake(0, 1, 1, CakeParams{P: 1, MC: 1, Alpha: 1}, 1, 4, func(Access) {}); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if err := Cake(1, 1, 1, CakeParams{P: 0, MC: 1, Alpha: 1}, 1, 4, func(Access) {}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if err := Goto(1, 1, 1, GotoParams{MC: 0, NC: 1}, 1, 4, func(Access) {}); err == nil {
		t.Fatal("mc=0 accepted")
	}
	if err := Goto(1, 1, 1, GotoParams{MC: 1, NC: 1}, 0, 4, func(Access) {}); err == nil {
		t.Fatal("gran=0 accepted")
	}
}

func TestRunThroughLLC(t *testing.T) {
	// An LLC big enough for one CB block: CAKE's C chunks hit after first
	// touch; DRAM traffic is A+B streams plus one C fill+writeback.
	m, k, n := 64, 32, 64
	p := CakeParams{P: 2, MC: 16, Alpha: 1} // block 32x16x32
	llc := int64((32*16 + 16*32 + 32*32) * 3 * 4)
	h := cachesim.NewHierarchy[Key]([]string{"LLC"}, []int64{llc})
	res, err := Run(cakeTrace(m, k, n, p, 16), h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 || res.DRAMReads == 0 {
		t.Fatal("empty result")
	}
	// All final C results must be written back on flush.
	if res.DRAMWrites < int64(4) { // 4x4 chunk grid of C at gran 16 → ≥16? (chunks, not bytes)
		t.Fatalf("DRAM writes %d too small", res.DRAMWrites)
	}
	if ls := res.Levels[0]; ls.Hits == 0 {
		t.Fatal("LLC never hit — resident C reuse missing")
	}
}

func TestCakeBeatsGotoOnDRAMTraffic(t *testing.T) {
	// The Figure 7b shape: when C greatly exceeds the LLC (the paper's
	// regime — a 36 MB result against a 512 KiB–20 MiB cache), GOTO's
	// partial-C streaming produces substantially more DRAM traffic than
	// CAKE. The asymmetry the paper identifies (Section 4.4): GOTO's kc is
	// bound by the small per-core L2, while CAKE's CB block fills the large
	// shared LLC with resident partial C.
	m, k, n := 256, 768, 256 // C = 256 KiB against a 48 KiB LLC
	llc := int64(48 << 10)
	hc := cachesim.NewHierarchy[Key]([]string{"LLC"}, []int64{llc})
	rc, err := Run(cakeTrace(m, k, n, CakeParams{P: 2, MC: 32, Alpha: 1}, 32), hc)
	if err != nil {
		t.Fatal(err)
	}
	hg := cachesim.NewHierarchy[Key]([]string{"LLC"}, []int64{llc})
	// kc = 16: the L2-bound blocking (a 16×16 float32 block is a 1 KiB L2
	// working set in this scaled-down scenario).
	rg, err := Run(gotoTrace(m, k, n, GotoParams{MC: 16, NC: 192}, 16), hg)
	if err != nil {
		t.Fatal(err)
	}
	cakeBytes := rc.BytesMoved
	gotoBytes := rg.BytesMoved
	if gotoBytes < cakeBytes*3/2 {
		t.Fatalf("GOTO DRAM bytes %d not clearly above CAKE %d", gotoBytes, cakeBytes)
	}
}

func TestKernelLoads(t *testing.T) {
	// 8×8 tiles, kc=8 over a 16×16×8 GEMM: 4 calls.
	total, beyond := KernelLoads(16, 8, 16, 8, 8, 8)
	wantPerTouch := int64(8*8 + 8*8 + 2*64)
	wantPerFill := int64(8*8 + 8*8 + 64)
	if total != 4*wantPerTouch || beyond != 4*wantPerFill {
		t.Fatalf("got %d/%d want %d/%d", total, beyond, 4*wantPerTouch, 4*wantPerFill)
	}
	if total <= beyond {
		t.Fatal("register reuse implies total > beyondL1")
	}
}

func TestSurfaceString(t *testing.T) {
	if SurfA.String() != "A" || SurfB.String() != "B" || SurfC.String() != "C" {
		t.Fatal("surface names")
	}
}

func TestProfileKernel(t *testing.T) {
	// One ir panel (m=8), 2 jr panels (n=16), kc covers k: A loads once per
	// ir sweep, B streams per call, C fills+writes per call.
	p := ProfileKernel(8, 8, 16, 8, 8, 8)
	calls := int64(2)
	irPanels := int64(1)
	wantTouches := calls * int64(8*8+8*8+2*64)
	wantFills := irPanels*64 + calls*(64+64)
	if p.Touches != wantTouches || p.BeyondL1 != wantFills {
		t.Fatalf("got %+v want touches=%d fills=%d", p, wantTouches, wantFills)
	}
	if p.L1Hits != p.Touches-p.BeyondL1 {
		t.Fatal("L1 hits identity broken")
	}
}

func TestProfileKernelAReuseScalesWithN(t *testing.T) {
	// Widening N amortises A panel fills: L1 hit fraction must rise.
	narrow := ProfileKernel(64, 64, 64, 8, 8, 64)
	wide := ProfileKernel(64, 64, 1024, 8, 8, 64)
	fNarrow := float64(narrow.L1Hits) / float64(narrow.Touches)
	fWide := float64(wide.L1Hits) / float64(wide.Touches)
	if fWide <= fNarrow {
		t.Fatalf("L1 hit fraction should rise with N: %v vs %v", fWide, fNarrow)
	}
}

func TestKernelTraceAccessCounts(t *testing.T) {
	var aN, bN, cN int
	err := KernelTrace(16, 8, 24, 8, 8, 4, func(a Access) {
		switch a.Key.Surf {
		case SurfA:
			aN++
		case SurfB:
			bN++
		default:
			cN++
			if !a.Write {
				t.Fatal("C accesses must be read-modify-write")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 ir panels × 3 jr slabs: one A, B, C access per inner iteration.
	if aN != 6 || bN != 6 || cN != 6 {
		t.Fatalf("counts A=%d B=%d C=%d", aN, bN, cN)
	}
}

func TestKernelTraceInvalid(t *testing.T) {
	if err := KernelTrace(0, 1, 1, 1, 1, 4, func(Access) {}); err == nil {
		t.Fatal("mc=0 accepted")
	}
}

func TestKernelTraceThroughHierarchy(t *testing.T) {
	// The measured locality structure: a big L1 holding the A panel plus
	// one B slab and one C tile serves A re-reads from L1; B slabs are too
	// many to stay resident across a full jr sweep, so they hit L2; the
	// small L1 misses on them every time.
	const mc, kc, n, mr, nr = 64, 64, 512, 8, 8
	l1 := int64(16 << 10) // holds A panel (2 KiB) + a couple of slabs
	l2 := int64(1 << 20)  // holds the whole B panel
	h := cachesim.NewHierarchy[Key]([]string{"L1", "L2"}, []int64{l1, l2})
	res, err := Run(func(e Emit) error { return KernelTrace(mc, kc, n, mr, nr, 4, e) }, h)
	if err != nil {
		t.Fatal(err)
	}
	l1Stats, l2Stats := res.Levels[0], res.Levels[1]
	if l1Stats.Hits == 0 {
		t.Fatal("A-panel reuse should hit L1")
	}
	if l2Stats.Hits == 0 {
		t.Fatal("B-slab re-reads should hit L2")
	}
	// Each B slab fills from DRAM exactly once (the first ir sweep), then
	// lives in L2: DRAM reads ≈ unique chunks.
	unique := int64(mc/mr + n/nr + (mc/mr)*(n/nr))
	if res.DRAMReads != unique {
		t.Fatalf("DRAM reads %d want %d (one per unique chunk)", res.DRAMReads, unique)
	}
}

func TestKernelTraceValidatesProfileKernel(t *testing.T) {
	// The analytic profile says the A panel is the only operand that stays
	// L1-resident across the jr sweep. Measure it: through an L1 sized for
	// one A panel + one B slab + one C tile, the A chunk must hit on every
	// access after its first per-ir-sweep, and B/C must miss every time.
	const mc, kc, n, mr, nr = 32, 32, 256, 8, 8
	aPanel := int64(mr * kc * 4)
	bSlab := int64(kc * nr * 4)
	cTile := int64(mr * nr * 4)
	l1 := aPanel + 2*(bSlab+cTile) // LRU headroom, same shape as §4.3's rule
	h := cachesim.NewHierarchy[Key]([]string{"L1"}, []int64{l1})
	res, err := Run(func(e Emit) error { return KernelTrace(mc, kc, n, mr, nr, 4, e) }, h)
	if err != nil {
		t.Fatal(err)
	}
	irs, jrs := mc/mr, n/nr
	wantHits := int64(irs * (jrs - 1)) // A hit on all but the first jr of each sweep
	if got := res.Levels[0].Hits; got != wantHits {
		t.Fatalf("measured L1 hits %d, analytic model predicts %d", got, wantHits)
	}
	// Consistency with ProfileKernel's element accounting: its L1 hits are
	// the A-panel touches the trace showed resident, plus the C tile's
	// write touch (the tile was just read, so the store hits; the trace
	// merges read+write into one access and cannot see it).
	p := ProfileKernel(mc, kc, n, mr, nr, kc)
	cWriteTouches := int64(irs*jrs) * cTile / 4
	if p.L1Hits != wantHits*aPanel/4+cWriteTouches {
		t.Fatalf("ProfileKernel L1 hits %d vs trace-implied %d",
			p.L1Hits, wantHits*aPanel/4+cWriteTouches)
	}
}
