package benchgate

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
)

// MinResidentSpeedup is the absolute floor on the resident-vs-fresh GEMMs/s
// ratio for the gate shape: serving a skewed small-M activation GEMM from
// pre-packed panels must keep beating per-call weight packing by at least
// this factor. Absolute (not relative to the baseline file) because the
// ratio is the resident store's claim under test, and set well below
// healthy measurements (~1.7× on the gate shape), so only the pack bypass
// breaking — not machine noise — can trip it.
const MinResidentSpeedup = 1.5

// LoadResident reads a BENCH_resident.json.
func LoadResident(path string) (experiments.ResidentBenchResult, error) {
	var r experiments.ResidentBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(r.Rows) == 0 {
		return r, fmt.Errorf("benchgate: %s has no rows", path)
	}
	return r, nil
}

// residentGateRow finds the row carrying the absolute speedup floor.
func residentGateRow(r experiments.ResidentBenchResult) (experiments.ResidentBenchRow, bool) {
	for _, row := range r.Rows {
		if row.Gate {
			return row, true
		}
	}
	return experiments.ResidentBenchRow{}, false
}

// CompareResident judges a candidate resident benchmark against the
// baseline. Gated metrics: per-shape resident GEMMs/s (relative threshold
// vs baseline) and the gate shape's resident-vs-fresh speedup (absolute ≥
// MinResidentSpeedup floor). The fresh side's own throughput and the
// latency percentiles are the contrast, not the claim.
func CompareResident(base, cand experiments.ResidentBenchResult, opt Options) []Finding {
	var out []Finding
	candBy := map[string]experiments.ResidentBenchRow{}
	for _, row := range cand.Rows {
		candBy[row.Shape] = row
	}
	for _, b := range base.Rows {
		limit := b.ResidentGemmsPerSec * (1 - opt.Threshold)
		c, ok := candBy[b.Shape]
		if !ok {
			out = append(out, Finding{
				File: "BENCH_resident.json", Key: b.Shape, Metric: "gemms_per_sec",
				Base: b.ResidentGemmsPerSec, Candidate: 0, Limit: limit, Regression: true,
				Detail: "shape missing from candidate",
			})
			continue
		}
		out = append(out, Finding{
			File: "BENCH_resident.json", Key: b.Shape, Metric: "gemms_per_sec",
			Base: b.ResidentGemmsPerSec, Candidate: c.ResidentGemmsPerSec, Limit: limit,
			Regression: c.ResidentGemmsPerSec < limit,
			Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
		})
	}
	bGate, bOK := residentGateRow(base)
	cGate, cOK := residentGateRow(cand)
	switch {
	case !cOK:
		out = append(out, Finding{
			File: "BENCH_resident.json", Key: "gate", Metric: "speedup",
			Base: bGate.Speedup, Candidate: 0, Limit: MinResidentSpeedup, Regression: true,
			Detail: "gate row missing from candidate",
		})
	default:
		var baseSpeedup float64
		if bOK {
			baseSpeedup = bGate.Speedup
		}
		out = append(out, Finding{
			File: "BENCH_resident.json", Key: cGate.Shape, Metric: "speedup",
			Base: baseSpeedup, Candidate: cGate.Speedup, Limit: MinResidentSpeedup,
			Regression: cGate.Speedup < MinResidentSpeedup,
			Detail:     "resident GEMMs/s over per-call weight packing (absolute floor)",
		})
	}
	return out
}

// sampleResident runs the resident benchmark `runs` times.
func sampleResident(cores int, quick bool, runs int) ([]*experiments.ResidentBenchResult, error) {
	if runs < 1 {
		runs = 1
	}
	out := make([]*experiments.ResidentBenchResult, 0, runs)
	for i := 0; i < runs; i++ {
		r, err := experiments.ResidentBench(cores, quick)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FreshResident measures the candidate side: the run with the best gate-
// shape speedup — contention noise slows the resident and fresh sides
// alike, but a perturbed fresh side inflates the ratio, so judging the
// best-ratio run against an absolute floor stays conservative where it
// matters (the floor only trips when no run clears it).
func FreshResident(cores int, quick bool, runs int) (experiments.ResidentBenchResult, error) {
	return pickResident(cores, quick, runs, func(a, b float64) bool { return a > b })
}

// BaselineResident measures the baseline side: the run with the worst
// gate-shape speedup, so the committed reference is a floor every healthy
// run can beat.
func BaselineResident(cores int, quick bool, runs int) (experiments.ResidentBenchResult, error) {
	return pickResident(cores, quick, runs, func(a, b float64) bool { return a < b })
}

func pickResident(cores int, quick bool, runs int, better func(a, b float64) bool) (experiments.ResidentBenchResult, error) {
	samples, err := sampleResident(cores, quick, runs)
	if err != nil {
		return experiments.ResidentBenchResult{}, err
	}
	gateSpeedup := func(r *experiments.ResidentBenchResult) float64 {
		if row, ok := residentGateRow(*r); ok {
			return row.Speedup
		}
		return 0
	}
	pick := samples[0]
	for _, s := range samples[1:] {
		if better(gateSpeedup(s), gateSpeedup(pick)) {
			pick = s
		}
	}
	return *pick, nil
}
