package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// MaxObsOverhead is the absolute ceiling on the request-observability
// layer's throughput cost: the flight recorder + SLO accounting must stay
// under 2% of serving throughput — the same bar the nil-recorder fast path
// meets. Absolute (not relative to the baseline file) because the overhead
// fraction is itself the claim under test; the margin over typical healthy
// measurements (well under 1%) absorbs timer noise.
const MaxObsOverhead = 0.02

// LoadObs reads a BENCH_obs.json.
func LoadObs(path string) (experiments.ObsBenchResult, error) {
	var r experiments.ObsBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if r.RecorderOffGemmsPerSec <= 0 {
		return r, fmt.Errorf("benchgate: %s has no recorder-off measurement", path)
	}
	return r, nil
}

// CompareObs judges a candidate obs benchmark. Gated metrics: the recorder
// overhead fraction (absolute ≤ MaxObsOverhead) and the recorder-on
// throughput (relative threshold vs baseline, so the layer cannot slow the
// serving path even while staying within its own A/B budget). The candidate
// must also have actually recorded requests — an A/B against a silently
// disabled recorder proves nothing.
func CompareObs(base, cand experiments.ObsBenchResult, opt Options) []Finding {
	var out []Finding

	out = append(out, Finding{
		File: "BENCH_obs.json", Key: "recorder/overhead", Metric: "overhead_frac",
		Base: base.OverheadFrac, Candidate: cand.OverheadFrac, Limit: MaxObsOverhead,
		Regression: cand.OverheadFrac > MaxObsOverhead,
		Detail:     "flight recorder + SLO cost over recorder-off serving (absolute ceiling)",
	})

	limit := base.RecorderOnGemmsPerSec * (1 - opt.Threshold)
	out = append(out, Finding{
		File: "BENCH_obs.json", Key: "recorder-on/total", Metric: "gemms_per_sec",
		Base: base.RecorderOnGemmsPerSec, Candidate: cand.RecorderOnGemmsPerSec, Limit: limit,
		Regression: cand.RecorderOnGemmsPerSec < limit,
		Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
	})

	out = append(out, Finding{
		File: "BENCH_obs.json", Key: "recorder/records", Metric: "recorder_records",
		Base: float64(base.RecorderRecords), Candidate: float64(cand.RecorderRecords), Limit: 1,
		Regression: cand.RecorderRecords < 1,
		Detail:     "recorder-on side must actually commit request records",
	})
	return out
}

// sampleObs runs the obs benchmark `runs` times.
func sampleObs(cores, clients int, quick bool, runs int) ([]*experiments.ObsBenchResult, error) {
	if runs < 1 {
		runs = 1
	}
	dur, rounds := 2*time.Second, 3
	if quick {
		dur, rounds = time.Second, 2
	}
	out := make([]*experiments.ObsBenchResult, 0, runs)
	for i := 0; i < runs; i++ {
		r, err := experiments.ObsBench(cores, clients, dur, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FreshObs measures the candidate side: the run with the lowest overhead
// fraction — contention noise only inflates the measured overhead, so the
// best run estimates the layer's true cost.
func FreshObs(cores, clients int, quick bool, runs int) (experiments.ObsBenchResult, error) {
	return pickObs(cores, clients, quick, runs, func(a, b *experiments.ObsBenchResult) bool {
		return a.OverheadFrac < b.OverheadFrac
	})
}

// BaselineObs measures the baseline side: among runs that themselves pass
// the absolute overhead ceiling, the one with the worst recorder-on
// throughput, so the committed reference is a floor every healthy run beats
// AND a valid artifact under its own gate (`check -candidate
// results/baseline` replays the baseline as the candidate, ceiling
// included). If contention noise pushes every run over the ceiling, fall
// back to the lowest-overhead run — the closest thing to the layer's true
// cost the host can measure.
func BaselineObs(cores, clients int, quick bool, runs int) (experiments.ObsBenchResult, error) {
	return pickObs(cores, clients, quick, runs, func(a, b *experiments.ObsBenchResult) bool {
		aOK, bOK := a.OverheadFrac <= MaxObsOverhead, b.OverheadFrac <= MaxObsOverhead
		if aOK != bOK {
			return aOK
		}
		if !aOK {
			return a.OverheadFrac < b.OverheadFrac
		}
		return a.RecorderOnGemmsPerSec < b.RecorderOnGemmsPerSec
	})
}

func pickObs(cores, clients int, quick bool, runs int, better func(a, b *experiments.ObsBenchResult) bool) (experiments.ObsBenchResult, error) {
	samples, err := sampleObs(cores, clients, quick, runs)
	if err != nil {
		return experiments.ObsBenchResult{}, err
	}
	pick := samples[0]
	for _, s := range samples[1:] {
		if better(s, pick) {
			pick = s
		}
	}
	return *pick, nil
}
