package benchgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func baselineGemm() GemmFile {
	return GemmFile{Cores: 4, Rows: []experiments.GemmBenchRow{
		{Shape: "square-480", Mode: "sync", GFLOPS: 10},
		{Shape: "square-480", Mode: "pipelined", GFLOPS: 12},
		{Shape: "skew-small-m", Mode: "pipelined", GFLOPS: 8},
	}}
}

func baselineTimeline() experiments.TraceBenchResult {
	return experiments.TraceBenchResult{
		M: 32, K: 512, N: 256, Cores: 4,
		Cake: experiments.ExecTimeline{Executor: "cake", GFLOPS: 6, CoV: 0.4},
		Goto: experiments.ExecTimeline{Executor: "goto", GFLOPS: 5, CoV: 1.5},
	}
}

func TestCompareGemmIdenticalPasses(t *testing.T) {
	res := Result{Findings: CompareGemm(baselineGemm(), baselineGemm(), DefaultOptions())}
	if !res.OK() {
		t.Fatalf("self-compare regressed: %+v", res.Regressions())
	}
	if len(res.Findings) != 3 {
		t.Fatalf("findings = %d, want one per baseline row", len(res.Findings))
	}
}

func TestCompareGemmFlagsLargeDropOnly(t *testing.T) {
	opt := DefaultOptions()
	cand := baselineGemm()
	cand.Rows[1].GFLOPS = 12 * 0.85 // 15% drop: inside the 20% allowance
	res := Result{Findings: CompareGemm(baselineGemm(), cand, opt)}
	if !res.OK() {
		t.Fatalf("15%% drop flagged: %+v", res.Regressions())
	}

	cand.Rows[1].GFLOPS = 12 * 0.70 // 30% drop: regression
	res = Result{Findings: CompareGemm(baselineGemm(), cand, opt)}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "square-480/pipelined" {
		t.Fatalf("regressions = %+v, want the pipelined square row", regs)
	}
}

func TestCompareGemmMissingRowIsRegression(t *testing.T) {
	cand := baselineGemm()
	cand.Rows = cand.Rows[:2] // skew row vanished
	res := Result{Findings: CompareGemm(baselineGemm(), cand, DefaultOptions())}
	regs := res.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0].Detail, "missing") {
		t.Fatalf("regressions = %+v, want a missing-row finding", regs)
	}
}

func TestCompareTimelineCoVGatesCakeOnly(t *testing.T) {
	opt := DefaultOptions()
	cand := baselineTimeline()
	// CAKE CoV beyond base·1.5 + 0.1 = 0.7 regresses the CB property.
	cand.Cake.CoV = 0.9
	res := Result{Findings: CompareTimeline(baselineTimeline(), cand, opt)}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "cake" || regs[0].Metric != "cov" {
		t.Fatalf("regressions = %+v, want cake cov only", regs)
	}

	// GOTO's CoV exploding is informational, not a failure.
	cand = baselineTimeline()
	cand.Goto.CoV = 50
	res = Result{Findings: CompareTimeline(baselineTimeline(), cand, opt)}
	if !res.OK() {
		t.Fatalf("goto CoV growth failed the gate: %+v", res.Regressions())
	}
}

func TestCompareDirsSelfCheckAndSyntheticRegression(t *testing.T) {
	writeArtifacts := func(t *testing.T, dir string, gemm GemmFile, tl experiments.TraceBenchResult) {
		t.Helper()
		gd, _ := json.Marshal(gemm)
		td, _ := json.Marshal(tl)
		if err := os.WriteFile(filepath.Join(dir, "BENCH_gemm.json"), gd, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_bwtimeline.json"), td, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	baseDir, candDir := t.TempDir(), t.TempDir()
	writeArtifacts(t, baseDir, baselineGemm(), baselineTimeline())
	writeArtifacts(t, candDir, baselineGemm(), baselineTimeline())

	// A directory against itself (and an identical copy) always passes.
	res, err := CompareDirs(baseDir, baseDir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("self-compare regressed: %+v", res.Regressions())
	}

	// Synthetically regress the candidate: throughput halved.
	bad := baselineGemm()
	for i := range bad.Rows {
		bad.Rows[i].GFLOPS /= 2
	}
	writeArtifacts(t, candDir, bad, baselineTimeline())
	res, err = CompareDirs(baseDir, candDir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("halved throughput passed the gate")
	}
	if len(res.Regressions()) != 3 {
		t.Fatalf("regressions = %+v, want all three gemm rows", res.Regressions())
	}

	// Missing artifacts are an error, not a silent pass.
	if _, err := CompareDirs(baseDir, t.TempDir(), DefaultOptions()); err == nil {
		t.Fatal("empty candidate dir did not error")
	}
}

func TestBest(t *testing.T) {
	for _, tc := range []struct {
		vals []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 3},
		{[]float64{4, 1, 3, 2}, 4},
	} {
		if got := best(append([]float64{}, tc.vals...)); got != tc.want {
			t.Errorf("best(%v) = %g, want %g", tc.vals, got, tc.want)
		}
	}
}

func TestFloor(t *testing.T) {
	for _, tc := range []struct {
		vals []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 1},
	} {
		if got := floor(append([]float64{}, tc.vals...)); got != tc.want {
			t.Errorf("floor(%v) = %g, want %g", tc.vals, got, tc.want)
		}
	}
}

func TestRenderListsVerdicts(t *testing.T) {
	cand := baselineGemm()
	cand.Rows[0].GFLOPS = 1
	res := Result{Findings: CompareGemm(baselineGemm(), cand, DefaultOptions())}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "square-480/sync") {
		t.Fatalf("render output missing verdicts:\n%s", out)
	}
}
