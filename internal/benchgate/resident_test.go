package benchgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// baselineResident is a deterministic resident artifact shaped like a
// healthy run: every shape faster resident than fresh, the gate shape
// comfortably above the absolute floor.
func baselineResident() experiments.ResidentBenchResult {
	return experiments.ResidentBenchResult{
		Cores: 1, GateShape: experiments.ResidentGateShape,
		Rows: []experiments.ResidentBenchRow{
			{Shape: "tiny-8x24x24/f32", Dtype: "f32", Tier: "tiny", M: 8, K: 24, N: 24,
				FreshGemmsPerSec: 200000, ResidentGemmsPerSec: 300000, Speedup: 1.5},
			{Shape: "small-8x320x320/f32", Dtype: "f32", Tier: "small", M: 8, K: 320, N: 320,
				FreshGemmsPerSec: 2000, ResidentGemmsPerSec: 3200, Speedup: 1.6},
			{Shape: experiments.ResidentGateShape, Dtype: "f64", Tier: "large", M: 8, K: 384, N: 384,
				FreshGemmsPerSec: 1400, ResidentGemmsPerSec: 2300, Speedup: 1.64, Gate: true},
			{Shape: "batch-48x576x576/f32", Dtype: "f32", Tier: "large", M: 48, K: 576, N: 576,
				FreshGemmsPerSec: 160, ResidentGemmsPerSec: 180, Speedup: 1.12},
		},
		Hits: 100, AvoidedPackBytes: 1 << 28,
	}
}

func TestCompareResidentIdenticalPasses(t *testing.T) {
	res := Result{Findings: CompareResident(baselineResident(), baselineResident(), DefaultOptions())}
	if !res.OK() {
		t.Fatalf("self-compare regressed: %+v", res.Regressions())
	}
	// Four shape rows + the gate speedup.
	if len(res.Findings) != 5 {
		t.Fatalf("findings = %d, want 5", len(res.Findings))
	}
}

func TestCompareResidentGatesThroughput(t *testing.T) {
	opt := DefaultOptions()
	cand := baselineResident()
	cand.Rows[1].ResidentGemmsPerSec = 3200 * 0.85 // inside the 20% allowance
	res := Result{Findings: CompareResident(baselineResident(), cand, opt)}
	if !res.OK() {
		t.Fatalf("15%% drop flagged: %+v", res.Regressions())
	}

	cand.Rows[1].ResidentGemmsPerSec = 3200 * 0.5
	res = Result{Findings: CompareResident(baselineResident(), cand, opt)}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "small-8x320x320/f32" {
		t.Fatalf("regressions = %+v, want the small shape only", regs)
	}
}

// TestCompareResidentSpeedupFloorIsAbsolute: the speedup gate binds to
// MinResidentSpeedup, not to the baseline's measured ratio — a baseline
// captured on a lucky run must not ratchet the floor up.
func TestCompareResidentSpeedupFloorIsAbsolute(t *testing.T) {
	base := baselineResident()
	cand := baselineResident()
	gate := &cand.Rows[2]
	gate.Speedup = MinResidentSpeedup + 0.01
	res := Result{Findings: CompareResident(base, cand, DefaultOptions())}
	if !res.OK() {
		t.Fatalf("speedup above the floor flagged: %+v", res.Regressions())
	}

	gate.Speedup = MinResidentSpeedup - 0.1
	res = Result{Findings: CompareResident(base, cand, DefaultOptions())}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Metric != "speedup" {
		t.Fatalf("regressions = %+v, want the speedup floor only", regs)
	}
	if regs[0].Limit != MinResidentSpeedup {
		t.Fatalf("limit = %g, want the absolute floor %g", regs[0].Limit, MinResidentSpeedup)
	}
}

func TestCompareResidentMissingRows(t *testing.T) {
	cand := baselineResident()
	cand.Rows = cand.Rows[:2] // drops the gate row and the batch shape
	res := Result{Findings: CompareResident(baselineResident(), cand, DefaultOptions())}
	regs := res.Regressions()
	if len(regs) != 3 {
		t.Fatalf("regressions = %+v, want 2 missing shapes + missing gate", regs)
	}
	var gateMissing bool
	for _, f := range regs {
		if f.Metric == "speedup" && strings.Contains(f.Detail, "missing") {
			gateMissing = true
		}
	}
	if !gateMissing {
		t.Fatalf("gate-row absence not flagged: %+v", regs)
	}
}

func TestLoadResident(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_resident.json")
	data, err := json.Marshal(baselineResident())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadResident(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 || r.GateShape != experiments.ResidentGateShape {
		t.Fatalf("round-trip mangled: %+v", r)
	}

	if err := os.WriteFile(path, []byte(`{"rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResident(path); err == nil {
		t.Fatal("empty artifact accepted")
	}
	if _, err := LoadResident(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
