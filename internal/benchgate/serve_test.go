package benchgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// baselineServe is a deterministic serve artifact shaped like a healthy
// run: huge tiny throughput through the engine, convoyed tiny throughput
// under the mutex, and a direct tiny path faster than full-CAKE dispatch.
func baselineServe() experiments.ServeBenchResult {
	return experiments.ServeBenchResult{
		Cores: 1, Clients: 8, ClientMix: experiments.ServeClientMix, DurationSecs: 4,
		Tiers: []experiments.ServeTierRow{
			{Mode: "engine", Tier: "tiny", Requests: 4000, GemmsPerSec: 1000, P50Micros: 8},
			{Mode: "engine", Tier: "small", Requests: 160, GemmsPerSec: 40, P50Micros: 50000},
			{Mode: "engine", Tier: "large", Requests: 80, GemmsPerSec: 20, P50Micros: 52000},
			{Mode: "serialized", Tier: "tiny", Requests: 220, GemmsPerSec: 55, P50Micros: 76000},
			{Mode: "serialized", Tier: "small", Requests: 200, GemmsPerSec: 50, P50Micros: 5000},
			{Mode: "serialized", Tier: "large", Requests: 80, GemmsPerSec: 20, P50Micros: 47000},
		},
		EngineGemmsPer: 1060, SerializedGemms: 125, Speedup: 8.48,
		TinyDirectP50Micros: 8, TinyCakeP50Micros: 10.5,
	}
}

func TestCompareServeIdenticalPasses(t *testing.T) {
	res := Result{Findings: CompareServe(baselineServe(), baselineServe(), DefaultOptions())}
	if !res.OK() {
		t.Fatalf("self-compare regressed: %+v", res.Regressions())
	}
	// total + three engine tiers + speedup + tiny A/B.
	if len(res.Findings) != 6 {
		t.Fatalf("findings = %d, want 6", len(res.Findings))
	}
}

func TestCompareServeGatesEngineThroughput(t *testing.T) {
	opt := DefaultOptions()
	cand := baselineServe()
	cand.EngineGemmsPer = 1060 * 0.85 // 15% drop: inside the 20% allowance
	res := Result{Findings: CompareServe(baselineServe(), cand, opt)}
	if !res.OK() {
		t.Fatalf("15%% drop flagged: %+v", res.Regressions())
	}

	cand.EngineGemmsPer = 1060 * 0.5
	res = Result{Findings: CompareServe(baselineServe(), cand, opt)}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "engine/total" {
		t.Fatalf("regressions = %+v, want engine/total only", regs)
	}
}

func TestCompareServeSpeedupFloorIsAbsolute(t *testing.T) {
	cand := baselineServe()
	cand.Speedup = 1.4 // below the 2× floor even though baseline was 8.5×
	res := Result{Findings: CompareServe(baselineServe(), cand, DefaultOptions())}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Metric != "speedup" {
		t.Fatalf("regressions = %+v, want the speedup floor", regs)
	}
	if regs[0].Limit != MinServeSpeedup {
		t.Fatalf("speedup limit = %g, want the absolute floor %g", regs[0].Limit, MinServeSpeedup)
	}
}

func TestCompareServeTinyABGate(t *testing.T) {
	cand := baselineServe()
	cand.TinyDirectP50Micros = 15 // direct dispatch slower than full-CAKE's 10.5µs
	res := Result{Findings: CompareServe(baselineServe(), cand, DefaultOptions())}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "tiny-ab/direct-vs-cake" {
		t.Fatalf("regressions = %+v, want the tiny A/B gate", regs)
	}
}

func TestCompareServeMissingEngineTierRow(t *testing.T) {
	cand := baselineServe()
	cand.Tiers = cand.Tiers[1:] // engine/tiny row vanished
	res := Result{Findings: CompareServe(baselineServe(), cand, DefaultOptions())}
	regs := res.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0].Detail, "missing") {
		t.Fatalf("regressions = %+v, want a missing-row finding", regs)
	}
}

func TestCompareServeSerializedRowsInformational(t *testing.T) {
	cand := baselineServe()
	// The serialized side collapsing is not a regression of our code — it
	// only makes the speedup larger.
	for i := range cand.Tiers {
		if cand.Tiers[i].Mode == "serialized" {
			cand.Tiers[i].GemmsPerSec /= 10
		}
	}
	cand.SerializedGemms /= 10
	cand.Speedup *= 10
	res := Result{Findings: CompareServe(baselineServe(), cand, DefaultOptions())}
	if !res.OK() {
		t.Fatalf("serialized-side drop flagged: %+v", res.Regressions())
	}
}

func TestCompareDirsIncludesServeWhenBaselineHasIt(t *testing.T) {
	writeJSON := func(t *testing.T, dir, name string, v any) {
		t.Helper()
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	baseDir, candDir := t.TempDir(), t.TempDir()
	for _, dir := range []string{baseDir, candDir} {
		writeJSON(t, dir, "BENCH_gemm.json", baselineGemm())
		writeJSON(t, dir, "BENCH_bwtimeline.json", baselineTimeline())
	}

	// Without a serve baseline the gate skips serve rows (back-compat).
	res, err := CompareDirs(baseDir, candDir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.File == "BENCH_serve.json" {
			t.Fatalf("serve finding without a serve baseline: %+v", f)
		}
	}

	// With one, serve rows join the gate, and the self-check still passes.
	writeJSON(t, baseDir, "BENCH_serve.json", baselineServe())
	writeJSON(t, candDir, "BENCH_serve.json", baselineServe())
	res, err = CompareDirs(baseDir, candDir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("serve self-compare regressed: %+v", res.Regressions())
	}
	var serve int
	for _, f := range res.Findings {
		if f.File == "BENCH_serve.json" {
			serve++
		}
	}
	if serve != 6 {
		t.Fatalf("serve findings = %d, want 6", serve)
	}

	// A candidate missing the serve artifact while the baseline has one is
	// an error, not a silent pass.
	if err := os.Remove(filepath.Join(candDir, "BENCH_serve.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareDirs(baseDir, candDir, DefaultOptions()); err == nil {
		t.Fatal("missing candidate serve artifact did not error")
	}
}
