package benchgate

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
)

// MinBatchSpeedup is the absolute floor on the batched-vs-looped GEMMs/s
// ratio for the gate row: dispatching 32 tiny shared-weight GEMMs as one
// GemmBatch (one admission, one lease, one B pack) must keep beating 32
// independent requests by at least this factor. Absolute (not relative to
// the baseline file) because the ratio is the batch path's claim under
// test, and set below healthy measurements so only the amortization
// breaking — not machine noise — can trip it.
const MinBatchSpeedup = 1.3

// LoadBatch reads a BENCH_batch.json.
func LoadBatch(path string) (experiments.BatchBenchResult, error) {
	var r experiments.BatchBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(r.Rows) == 0 {
		return r, fmt.Errorf("benchgate: %s has no rows", path)
	}
	return r, nil
}

// batchGateRow finds the row carrying the absolute speedup floor.
func batchGateRow(r experiments.BatchBenchResult) (experiments.BatchBenchRow, bool) {
	for _, row := range r.Rows {
		if row.Gate {
			return row, true
		}
	}
	return experiments.BatchBenchRow{}, false
}

// CompareBatch judges a candidate batch benchmark against the baseline.
// Gated metrics: per-row batched GEMMs/s (relative threshold vs baseline)
// and the gate row's batched-vs-looped speedup (absolute ≥ MinBatchSpeedup
// floor). The looped side's own throughput and the latency percentiles are
// the contrast, not the claim.
func CompareBatch(base, cand experiments.BatchBenchResult, opt Options) []Finding {
	var out []Finding
	candBy := map[string]experiments.BatchBenchRow{}
	for _, row := range cand.Rows {
		candBy[row.Shape] = row
	}
	for _, b := range base.Rows {
		limit := b.BatchGemmsPerSec * (1 - opt.Threshold)
		c, ok := candBy[b.Shape]
		if !ok {
			out = append(out, Finding{
				File: "BENCH_batch.json", Key: b.Shape, Metric: "gemms_per_sec",
				Base: b.BatchGemmsPerSec, Candidate: 0, Limit: limit, Regression: true,
				Detail: "shape missing from candidate",
			})
			continue
		}
		out = append(out, Finding{
			File: "BENCH_batch.json", Key: b.Shape, Metric: "gemms_per_sec",
			Base: b.BatchGemmsPerSec, Candidate: c.BatchGemmsPerSec, Limit: limit,
			Regression: c.BatchGemmsPerSec < limit,
			Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
		})
	}
	bGate, bOK := batchGateRow(base)
	cGate, cOK := batchGateRow(cand)
	switch {
	case !cOK:
		out = append(out, Finding{
			File: "BENCH_batch.json", Key: "gate", Metric: "speedup",
			Base: bGate.Speedup, Candidate: 0, Limit: MinBatchSpeedup, Regression: true,
			Detail: "gate row missing from candidate",
		})
	default:
		var baseSpeedup float64
		if bOK {
			baseSpeedup = bGate.Speedup
		}
		out = append(out, Finding{
			File: "BENCH_batch.json", Key: cGate.Shape, Metric: "speedup",
			Base: baseSpeedup, Candidate: cGate.Speedup, Limit: MinBatchSpeedup,
			Regression: cGate.Speedup < MinBatchSpeedup,
			Detail:     "batched GEMMs/s over per-call dispatch (absolute floor)",
		})
	}
	return out
}

// sampleBatch runs the batch benchmark `runs` times.
func sampleBatch(cores int, quick bool, runs int) ([]*experiments.BatchBenchResult, error) {
	if runs < 1 {
		runs = 1
	}
	out := make([]*experiments.BatchBenchResult, 0, runs)
	for i := 0; i < runs; i++ {
		r, err := experiments.BatchBench(cores, quick)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FreshBatch measures the candidate side: the run with the best gate-row
// speedup — contention noise slows the batched and looped sides alike, but
// a perturbed looped side inflates the ratio, so judging the best-ratio run
// against an absolute floor stays conservative where it matters (the floor
// only trips when no run clears it).
func FreshBatch(cores int, quick bool, runs int) (experiments.BatchBenchResult, error) {
	return pickBatch(cores, quick, runs, func(a, b float64) bool { return a > b })
}

// BaselineBatch measures the baseline side: the run with the worst gate-row
// speedup, so the committed reference is a floor every healthy run can beat.
func BaselineBatch(cores int, quick bool, runs int) (experiments.BatchBenchResult, error) {
	return pickBatch(cores, quick, runs, func(a, b float64) bool { return a < b })
}

func pickBatch(cores int, quick bool, runs int, better func(a, b float64) bool) (experiments.BatchBenchResult, error) {
	samples, err := sampleBatch(cores, quick, runs)
	if err != nil {
		return experiments.BatchBenchResult{}, err
	}
	gateSpeedup := func(r *experiments.BatchBenchResult) float64 {
		if row, ok := batchGateRow(*r); ok {
			return row.Speedup
		}
		return 0
	}
	pick := samples[0]
	for _, s := range samples[1:] {
		if better(gateSpeedup(s), gateSpeedup(pick)) {
			pick = s
		}
	}
	return *pick, nil
}
