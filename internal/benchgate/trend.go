// Trend-aware regression detection over the corpus history store: instead of
// diffing one fresh measurement against one committed file, the analyzer
// judges each grid cell's latest epoch against the CURVE of its own history —
// a robust (median) baseline over the last K epochs, with noise bands scaled
// by the cell's own recorded run-to-run variation — both the intra-epoch CoV
// and the inter-epoch spread the prior window has exhibited (hosts that
// oscillate between performance modes show tiny CoV within a phase but 2x
// swings between epochs). Two detectors fire independently: a step change
// (the latest epoch fell out of the band below the robust baseline) and a
// slow drift (a fitted decline across the window that no single
// epoch-to-epoch step would trip). Cells whose intra-epoch noise or
// historical dispersion is too high to judge are reported as noisy rather
// than gated, and
// only epochs from the same host fingerprint are compared — "DGEMM
// performance is data-dependent" shows cross-host numbers never transfer.
package benchgate

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// Verdict is a cell's trend state.
type Verdict string

const (
	VerdictOK        Verdict = "ok"
	VerdictImproved  Verdict = "improved"
	VerdictRegressed Verdict = "regressed"
	VerdictNoisy     Verdict = "noisy"
	VerdictNewCell   Verdict = "new-cell"
)

// TrendOptions tunes the analyzer.
type TrendOptions struct {
	// Window is K: how many prior epochs feed the robust (median) baseline
	// and the drift fit.
	Window int
	// MinBand is the floor of the relative noise band; even a perfectly
	// quiet cell is allowed this much movement before a verdict flips.
	MinBand float64
	// BandScale multiplies the cell's median intra-epoch CoV into the band:
	// band = max(MinBand, BandScale * CoV).
	BandScale float64
	// NoisyCoV marks a cell unjudgeable: when its median intra-epoch CoV
	// exceeds this, the verdict is noisy and the cell never gates.
	NoisyCoV float64
	// SpreadScale multiplies the prior window's relative inter-epoch spread
	// (sample stddev of the prior points over their median) into the STEP
	// detector's band. Intra-epoch CoV measures back-to-back runs inside one
	// scenario phase; on hosts that oscillate between performance modes on a
	// minutes timescale (shared VMs, frequency scaling) it badly
	// underestimates epoch-to-epoch variation, and a step gate scaled only
	// by CoV flags every mode flip as a regression. The spread term widens
	// the band to the dispersion the history has actually exhibited; on a
	// stable host it is ~0 and changes nothing. It deliberately does NOT
	// widen the drift band — drift already integrates over the window, and
	// spread inflation there would mask genuine slow declines.
	SpreadScale float64
	// NoisySpread marks a cell unjudgeable from its history: when the prior
	// window's relative inter-epoch spread exceeds this, the verdict is
	// noisy and the cell never gates (a history swinging 2x between modes
	// cannot distinguish a real cliff from the slow mode).
	NoisySpread float64
	// SameHostOnly restricts the history to epochs whose host fingerprint
	// key matches the latest epoch's.
	SameHostOnly bool
}

// DefaultTrendOptions returns the analyzer's default tuning.
func DefaultTrendOptions() TrendOptions {
	return TrendOptions{Window: 8, MinBand: 0.05, BandScale: 3, NoisyCoV: 0.20,
		SpreadScale: 3, NoisySpread: 0.20, SameHostOnly: true}
}

// CellTrend is one grid cell's judged trajectory.
type CellTrend struct {
	Cell    string    `json:"cell"`   // shape/scenario/dtype key
	Epochs  int       `json:"epochs"` // same-host epochs carrying this cell (incl. latest)
	History []float64 `json:"history"`
	// Seqs are the store sequence numbers History came from (parallel slice).
	Seqs          []int   `json:"seqs"`
	Baseline      float64 `json:"baseline"` // median of the prior window
	Latest        float64 `json:"latest"`
	Band          float64 `json:"band"`             // relative band the step verdict used
	CoV           float64 `json:"cov"`              // median intra-epoch CoV
	Spread        float64 `json:"spread,omitempty"` // relative inter-epoch spread of the prior window
	DriftPerEpoch float64 `json:"drift_per_epoch,omitempty"`
	Verdict       Verdict `json:"verdict"`
	Kind          string  `json:"kind,omitempty"` // step | drift (when regressed)
	Detail        string  `json:"detail,omitempty"`
}

// RelDrop is how far below baseline the latest measurement sits (negative
// when above); the report sorts regressions by it.
func (c CellTrend) RelDrop() float64 {
	if c.Baseline == 0 {
		return 0
	}
	return (c.Baseline - c.Latest) / c.Baseline
}

// TrendReport is the full analysis of a corpus history.
type TrendReport struct {
	Epochs    int         `json:"epochs"`     // epochs considered (same host)
	AllEpochs int         `json:"all_epochs"` // epochs in the store
	HostKey   string      `json:"host_key"`
	LatestSeq int         `json:"latest_seq"`
	LatestRev string      `json:"latest_rev,omitempty"`
	Window    int         `json:"window"`
	Cells     []CellTrend `json:"cells"`
}

// Counts tallies cells by verdict.
func (r TrendReport) Counts() map[Verdict]int {
	out := map[Verdict]int{}
	for _, c := range r.Cells {
		out[c.Verdict]++
	}
	return out
}

// OK reports whether no cell regressed.
func (r TrendReport) OK() bool { return r.Counts()[VerdictRegressed] == 0 }

// Findings converts the report to gate findings: one per cell, regressed
// cells failing. This is how `cake-bench check` folds the curve into the
// same verdict stream as the pairwise artifact gates.
func (r TrendReport) Findings() []Finding {
	out := make([]Finding, 0, len(r.Cells))
	for _, c := range r.Cells {
		detail := c.Detail
		if c.Kind != "" {
			detail = c.Kind + ": " + detail
		}
		out = append(out, Finding{
			File: "corpus-history", Key: c.Cell, Metric: "gflops-trend",
			Base: c.Baseline, Candidate: c.Latest,
			Limit:      c.Baseline * (1 - c.Band),
			Regression: c.Verdict == VerdictRegressed,
			Detail:     fmt.Sprintf("%s (%s)", c.Verdict, detail),
		})
	}
	return out
}

// AnalyzeTrend judges the latest epoch of a corpus history against the curve
// behind it. The history must be in store order (oldest first) and
// non-empty; a single epoch yields all-new-cell verdicts, which is what a
// freshly seeded trajectory should report.
func AnalyzeTrend(history []*experiments.CorpusEpoch, opt TrendOptions) (TrendReport, error) {
	if len(history) == 0 {
		return TrendReport{}, fmt.Errorf("benchgate: empty corpus history")
	}
	def := DefaultTrendOptions()
	if opt.Window < 1 {
		opt.Window = def.Window
	}
	if opt.MinBand <= 0 {
		opt.MinBand = def.MinBand
	}
	if opt.BandScale <= 0 {
		opt.BandScale = def.BandScale
	}
	if opt.NoisyCoV <= 0 {
		opt.NoisyCoV = def.NoisyCoV
	}
	if opt.SpreadScale <= 0 {
		opt.SpreadScale = def.SpreadScale
	}
	if opt.NoisySpread <= 0 {
		opt.NoisySpread = def.NoisySpread
	}

	latest := history[len(history)-1]
	hostKey := latest.Host.Key()
	rep := TrendReport{
		AllEpochs: len(history),
		HostKey:   hostKey,
		LatestSeq: latest.Seq,
		LatestRev: experiments.ShortRev(latest.GitRev),
		Window:    opt.Window,
	}
	epochs := history
	if opt.SameHostOnly {
		epochs = epochs[:0:0]
		for _, e := range history {
			if e.Host.Key() == hostKey {
				epochs = append(epochs, e)
			}
		}
	}
	rep.Epochs = len(epochs)

	for _, cell := range latest.Cells {
		key := cell.Key()
		var hist []float64
		var seqs []int
		var covs []float64
		for _, e := range epochs {
			if c, ok := e.CellByKey(key); ok {
				hist = append(hist, c.GFLOPS)
				seqs = append(seqs, e.Seq)
				covs = append(covs, c.CoV)
			}
		}
		// Trim to the window plus the judged point.
		if len(hist) > opt.Window+1 {
			hist = hist[len(hist)-opt.Window-1:]
			seqs = seqs[len(seqs)-opt.Window-1:]
			covs = covs[len(covs)-opt.Window-1:]
		}
		ct := judgeCell(key, hist, seqs, covs, opt)
		rep.Cells = append(rep.Cells, ct)
	}
	sortCells(rep.Cells)
	return rep, nil
}

// judgeCell applies the detectors to one cell's (windowed) history; the last
// history entry is the epoch under judgment.
func judgeCell(key string, hist []float64, seqs []int, covs []float64, opt TrendOptions) CellTrend {
	ct := CellTrend{Cell: key, Epochs: len(hist), History: hist, Seqs: seqs}
	if len(hist) > 0 {
		ct.Latest = hist[len(hist)-1]
	}
	if len(hist) < 2 {
		ct.Verdict = VerdictNewCell
		ct.Detail = "first epoch carrying this cell on this host"
		return ct
	}
	prior := hist[:len(hist)-1]
	ct.Baseline = median(prior)
	ct.CoV = median(covs)
	// driftBand covers intra-epoch (run-to-run) noise only; the step band
	// below additionally covers the inter-epoch spread the prior window has
	// exhibited. The latest point is excluded from the spread estimate so a
	// real cliff cannot widen its own allowance.
	driftBand := opt.MinBand
	if b := opt.BandScale * ct.CoV; b > driftBand {
		driftBand = b
	}
	if len(prior) >= 2 && ct.Baseline > 0 {
		ct.Spread = stddev(prior) / ct.Baseline
	}
	ct.Band = driftBand
	if b := opt.SpreadScale * ct.Spread; b > ct.Band {
		ct.Band = b
	}
	if ct.CoV > opt.NoisyCoV {
		ct.Verdict = VerdictNoisy
		ct.Detail = fmt.Sprintf("intra-epoch CoV %.2f exceeds %.2f: too noisy to judge", ct.CoV, opt.NoisyCoV)
		return ct
	}
	if ct.Spread > opt.NoisySpread {
		ct.Verdict = VerdictNoisy
		ct.Detail = fmt.Sprintf("inter-epoch spread %.2f exceeds %.2f: history too dispersed to judge", ct.Spread, opt.NoisySpread)
		return ct
	}
	if ct.Baseline <= 0 {
		ct.Verdict = VerdictNoisy
		ct.Detail = "non-positive baseline"
		return ct
	}

	// Step detector: the latest point against the robust baseline's band.
	switch {
	case ct.Latest < ct.Baseline*(1-ct.Band):
		ct.Verdict = VerdictRegressed
		ct.Kind = "step"
		ct.Detail = fmt.Sprintf("latest %.3f below baseline %.3f by %.1f%% (band %.1f%%)",
			ct.Latest, ct.Baseline, 100*ct.RelDrop(), 100*ct.Band)
		return ct
	case ct.Latest > ct.Baseline*(1+ct.Band):
		ct.Verdict = VerdictImproved
		ct.Detail = fmt.Sprintf("latest %.3f above baseline %.3f by %.1f%% (band %.1f%%)",
			ct.Latest, ct.Baseline, -100*ct.RelDrop(), 100*ct.Band)
		return ct
	}

	// Drift detector: a fitted per-epoch slope whose cumulative decline over
	// the window exceeds the band, even though each step stayed inside it.
	// The spread term suppresses spurious drifts fitted through mode flips
	// (an alternating fast/slow history that happens to end slow) without
	// hiding genuine monotone declines: a pure linear drift over a window of
	// n prior points has stddev ~= 0.32n x slope, so its cumulative decline
	// (n x slope) always clears SpreadScale=3 times its own spread, while a
	// bimodal history's spread dwarfs any slope the fit extracts from it.
	if len(hist) >= 4 {
		driftLimit := driftBand
		if b := opt.SpreadScale * ct.Spread; b > driftLimit {
			driftLimit = b
		}
		slope := fitSlope(hist) / ct.Baseline // relative decline per epoch
		ct.DriftPerEpoch = slope
		if total := slope * float64(len(hist)-1); total < -driftLimit {
			ct.Verdict = VerdictRegressed
			ct.Kind = "drift"
			ct.Detail = fmt.Sprintf("declining %.2f%%/epoch, %.1f%% over the %d-epoch window (band %.1f%%)",
				-100*slope, -100*total, len(hist), 100*driftLimit)
			return ct
		}
	}
	ct.Verdict = VerdictOK
	ct.Detail = fmt.Sprintf("latest %.3f within %.1f%% of baseline %.3f", ct.Latest, 100*ct.Band, ct.Baseline)
	return ct
}

// fitSlope is the least-squares slope of vals over epoch index 0..n-1.
func fitSlope(vals []float64) float64 {
	n := float64(len(vals))
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, v := range vals {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / den
}

// stddev is the sample standard deviation (0 for fewer than two points).
func stddev(vals []float64) float64 {
	n := float64(len(vals))
	if n < 2 {
		return 0
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= n
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / (n - 1))
}

// median of a sample (0 for empty input).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// verdictRank orders verdicts worst-first for reports.
func verdictRank(v Verdict) int {
	switch v {
	case VerdictRegressed:
		return 0
	case VerdictNoisy:
		return 1
	case VerdictNewCell:
		return 2
	case VerdictOK:
		return 3
	default: // improved
		return 4
	}
}

// sortCells orders worst-first: regressions by severity, then noisy, new,
// ok, improved; ties alphabetically so output is deterministic.
func sortCells(cells []CellTrend) {
	sort.Slice(cells, func(i, j int) bool {
		ri, rj := verdictRank(cells[i].Verdict), verdictRank(cells[j].Verdict)
		if ri != rj {
			return ri < rj
		}
		if ri == 0 && cells[i].RelDrop() != cells[j].RelDrop() {
			return cells[i].RelDrop() > cells[j].RelDrop()
		}
		return cells[i].Cell < cells[j].Cell
	})
}

// sparkRunes renders a history as a unicode sparkline, scaled to its own
// min..max (a flat history renders mid-level bars).
func sparkRunes(vals []float64) string {
	const ramp = "▁▂▃▄▅▆▇█"
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 3 // flat
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * 7)
		}
		b.WriteRune([]rune(ramp)[idx])
	}
	return b.String()
}

// WriteTrendMarkdown renders the trajectory report: headline counts, then a
// per-cell table (sparkline history, worst regressions first), then the
// optional profile-delta section the corpus runner appends. This is what
// `cake-bench corpus -report` writes to results/corpus/REPORT.md.
func WriteTrendMarkdown(w io.Writer, rep TrendReport, profileSection string) {
	fmt.Fprintf(w, "# Corpus trajectory report\n\n")
	fmt.Fprintf(w, "Latest epoch: **%04d** (rev `%s`) — %d epoch(s) on this host of %d in the store; baseline window %d.\n\n",
		rep.LatestSeq, rep.LatestRev, rep.Epochs, rep.AllEpochs, rep.Window)
	counts := rep.Counts()
	fmt.Fprintf(w, "Verdicts: %d regressed · %d noisy · %d new · %d ok · %d improved\n\n",
		counts[VerdictRegressed], counts[VerdictNoisy], counts[VerdictNewCell],
		counts[VerdictOK], counts[VerdictImproved])
	fmt.Fprintln(w, "| cell | history | baseline GF/s | latest GF/s | band | verdict | detail |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---|---|")
	for _, c := range rep.Cells {
		verdict := string(c.Verdict)
		if c.Kind != "" {
			verdict += " (" + c.Kind + ")"
		}
		fmt.Fprintf(w, "| `%s` | `%s` | %.3f | %.3f | %.0f%% | %s | %s |\n",
			c.Cell, sparkRunes(c.History), c.Baseline, c.Latest, 100*c.Band, verdict, c.Detail)
	}
	fmt.Fprintln(w)
	if profileSection != "" {
		fmt.Fprintln(w, profileSection)
	}
}
