package benchgate

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/platform"
)

// trendHost builds a fingerprint whose Key() discriminates by hostname only,
// so tests can fabricate same-host and cross-host histories.
func trendHost(name string) platform.Fingerprint {
	return platform.Fingerprint{Hostname: name, OS: "linux", Arch: "amd64", Cores: 4, CPUModel: "synthetic"}
}

// epochWith builds a synthetic one-cell epoch at a given sequence number.
func epochWith(seq int, host platform.Fingerprint, gflops, cov float64) *experiments.CorpusEpoch {
	return &experiments.CorpusEpoch{
		Envelope: experiments.Envelope{
			SchemaVersion: experiments.BenchSchemaVersion,
			Artifact:      "corpus",
			Host:          host,
		},
		Seq: seq,
		Cells: []experiments.CorpusCell{{
			Shape: "small", Scenario: "fresh", Dtype: "f32",
			M: 8, K: 320, N: 320, Tier: "small", Reps: 60, Runs: 3,
			GFLOPS: gflops, BestGFLOPS: gflops * 1.02, MedianGFLOPS: gflops * 1.01, CoV: cov,
		}},
	}
}

// history turns a GFLOP/s trajectory into an epoch sequence on one host.
func history(host platform.Fingerprint, cov float64, gflops ...float64) []*experiments.CorpusEpoch {
	out := make([]*experiments.CorpusEpoch, len(gflops))
	for i, g := range gflops {
		out[i] = epochWith(i+1, host, g, cov)
	}
	return out
}

func analyzeOne(t *testing.T, hist []*experiments.CorpusEpoch) CellTrend {
	t.Helper()
	rep, err := AnalyzeTrend(hist, DefaultTrendOptions())
	if err != nil {
		t.Fatalf("AnalyzeTrend: %v", err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(rep.Cells))
	}
	return rep.Cells[0]
}

func TestTrendStepRegression(t *testing.T) {
	// Six quiet epochs near 100, then a 30% cliff: the step detector must fire.
	h := history(trendHost("a"), 0.01, 100, 101, 99, 100, 100, 101, 70)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s (%s), want regressed", c.Verdict, c.Detail)
	}
	if c.Kind != "step" {
		t.Fatalf("kind = %q, want step", c.Kind)
	}
	if c.RelDrop() < 0.25 {
		t.Fatalf("RelDrop = %.3f, want >= 0.25", c.RelDrop())
	}
}

func TestTrendSlowDrift(t *testing.T) {
	// 1%/epoch decline: the latest point sits only ~4% under the rolling
	// median (inside the 5% band, so no step), but the fitted slope
	// accumulates to ~7% across the 8-epoch window.
	h := history(trendHost("a"), 0.005, 100, 99, 98, 97, 96, 95, 94, 93)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s (%s), want regressed", c.Verdict, c.Detail)
	}
	if c.Kind != "drift" {
		t.Fatalf("kind = %q, want drift (detail: %s)", c.Kind, c.Detail)
	}
	if c.DriftPerEpoch >= 0 {
		t.Fatalf("DriftPerEpoch = %.4f, want negative", c.DriftPerEpoch)
	}
}

func TestTrendPureNoiseOK(t *testing.T) {
	// ±2% jitter with matching intra-epoch CoV stays inside the scaled band.
	h := history(trendHost("a"), 0.02, 100, 98, 102, 99, 101, 97.5, 100.5)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictOK {
		t.Fatalf("verdict = %s (%s), want ok", c.Verdict, c.Detail)
	}
	if c.Band < 0.05 {
		t.Fatalf("band = %.3f, want >= MinBand 0.05", c.Band)
	}
}

func TestTrendImproved(t *testing.T) {
	h := history(trendHost("a"), 0.01, 100, 99, 101, 100, 120)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictImproved {
		t.Fatalf("verdict = %s (%s), want improved", c.Verdict, c.Detail)
	}
}

func TestTrendNewCell(t *testing.T) {
	h := history(trendHost("a"), 0.01, 100)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictNewCell {
		t.Fatalf("verdict = %s, want new-cell", c.Verdict)
	}
	rep, err := AnalyzeTrend(h, DefaultTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("single-epoch history must not gate")
	}
}

func TestTrendNoisyCellNeverGates(t *testing.T) {
	// A 40% cliff with CoV 0.3: too noisy to judge, must NOT report regressed.
	h := history(trendHost("a"), 0.3, 100, 100, 100, 60)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictNoisy {
		t.Fatalf("verdict = %s (%s), want noisy", c.Verdict, c.Detail)
	}
	rep, _ := AnalyzeTrend(h, DefaultTrendOptions())
	if !rep.OK() {
		t.Fatal("noisy cell must not gate")
	}
}

func TestTrendBimodalSpreadWidensStepBand(t *testing.T) {
	// A host oscillating between a ~100 and a ~85 mode: each epoch's
	// intra-phase CoV is tiny (band would be MinBand 5%), but the prior
	// window's inter-epoch spread is ~8%, so the spread-scaled band must
	// absorb a latest point that lands in the slow mode instead of gating.
	h := history(trendHost("a"), 0.01, 100, 85, 98, 87, 84)
	c := analyzeOne(t, h)
	if c.Verdict == VerdictRegressed {
		t.Fatalf("verdict = %s (%s), want mode flip absorbed", c.Verdict, c.Detail)
	}
	if c.Spread <= 0 {
		t.Fatalf("Spread = %.3f, want > 0", c.Spread)
	}
	if c.Band <= 0.05 {
		t.Fatalf("Band = %.3f, want spread-widened above MinBand", c.Band)
	}
}

func TestTrendBimodalExtremeSpreadIsNoisy(t *testing.T) {
	// 2x swings between modes: no band can distinguish a real cliff from
	// the slow mode, so the cell is unjudgeable and must never gate.
	h := history(trendHost("a"), 0.01, 100, 55, 98, 52, 54)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictNoisy {
		t.Fatalf("verdict = %s (%s), want noisy", c.Verdict, c.Detail)
	}
	rep, _ := AnalyzeTrend(h, DefaultTrendOptions())
	if !rep.OK() {
		t.Fatal("dispersed-history cell must not gate")
	}
}

func TestTrendCliffDoesNotWidenOwnBand(t *testing.T) {
	// The spread estimate excludes the judged point: a genuine 30% cliff
	// after a quiet history must still fire even though including the cliff
	// in the spread would have widened the band past the drop.
	h := history(trendHost("a"), 0.01, 100, 101, 99, 100, 70)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictRegressed || c.Kind != "step" {
		t.Fatalf("verdict = %s/%s (%s), want regressed/step", c.Verdict, c.Kind, c.Detail)
	}
	if c.Spread > 0.02 {
		t.Fatalf("Spread = %.3f, want quiet prior window", c.Spread)
	}
}

func TestTrendSameHostFiltering(t *testing.T) {
	// Fast epochs from another machine must not turn this host's flat
	// trajectory into a regression.
	other := trendHost("fast-box")
	mine := trendHost("a")
	h := []*experiments.CorpusEpoch{
		epochWith(1, other, 200, 0.01),
		epochWith(2, other, 201, 0.01),
		epochWith(3, mine, 100, 0.01),
		epochWith(4, mine, 100, 0.01),
	}
	rep, err := AnalyzeTrend(h, DefaultTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 2 || rep.AllEpochs != 4 {
		t.Fatalf("epochs = %d/%d, want 2 same-host of 4", rep.Epochs, rep.AllEpochs)
	}
	if v := rep.Cells[0].Verdict; v != VerdictOK {
		t.Fatalf("verdict = %s (%s), want ok after host filtering", v, rep.Cells[0].Detail)
	}
}

func TestTrendWindowTrimsOldEpochs(t *testing.T) {
	// A long-ago faster era beyond the window must not drag the baseline up.
	vals := []float64{200, 200, 200}
	for i := 0; i < 9; i++ {
		vals = append(vals, 100)
	}
	h := history(trendHost("a"), 0.01, vals...)
	c := analyzeOne(t, h)
	if c.Verdict != VerdictOK {
		t.Fatalf("verdict = %s (%s), want ok once the 200s age out", c.Verdict, c.Detail)
	}
	opts := DefaultTrendOptions()
	if len(c.History) != opts.Window+1 {
		t.Fatalf("history kept %d points, want window+1 = %d", len(c.History), opts.Window+1)
	}
}

func TestTrendFindingsCarryRegression(t *testing.T) {
	h := history(trendHost("a"), 0.01, 100, 100, 100, 70)
	rep, err := AnalyzeTrend(h, DefaultTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %d, want 1", len(fs))
	}
	f := fs[0]
	if !f.Regression {
		t.Fatal("finding must be a regression")
	}
	if f.File != "corpus-history" || f.Metric != "gflops-trend" {
		t.Fatalf("finding identity = %s/%s", f.File, f.Metric)
	}
	if f.Key != "small/fresh/f32" {
		t.Fatalf("finding key = %q", f.Key)
	}
}

func TestTrendEmptyHistoryErrors(t *testing.T) {
	if _, err := AnalyzeTrend(nil, DefaultTrendOptions()); err == nil {
		t.Fatal("want error for empty history")
	}
}

func TestTrendMarkdownReport(t *testing.T) {
	h := history(trendHost("a"), 0.01, 100, 100, 100, 70)
	rep, err := AnalyzeTrend(h, DefaultTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteTrendMarkdown(&b, rep, "## Profiles\n\nnone\n")
	out := b.String()
	for _, want := range []string{
		"# Corpus trajectory report",
		"small/fresh/f32",
		"regressed (step)",
		"## Profiles",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Sparkline must render the cliff: last rune is the ramp's bottom.
	if !strings.Contains(out, "▁") {
		t.Fatalf("report missing sparkline low bar:\n%s", out)
	}
}

func TestSparkRunes(t *testing.T) {
	if s := sparkRunes(nil); s != "" {
		t.Fatalf("empty input -> %q", s)
	}
	flat := sparkRunes([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline runes = %d, want 3", len([]rune(flat)))
	}
	ramp := []rune(sparkRunes([]float64{0, 1, 2, 3}))
	if ramp[0] != '▁' || ramp[3] != '█' {
		t.Fatalf("ramp sparkline = %q", string(ramp))
	}
}
