package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// MinServeSpeedup is the absolute floor on the engine-vs-serialized GEMMs/s
// ratio: the concurrent engine must keep beating the mutex-around-one-
// executor baseline by at least this factor on the serve workload. It is an
// absolute bound (not relative to the baseline file) because the ratio is
// the claim under test, and it is deliberately far below healthy
// measurements (~10×), so only a collapse of the tiered dispatch — not
// machine noise — can trip it.
const MinServeSpeedup = 2.0

// tinyABSlack is the allowed relative excess of the direct tiny path's p50
// over the full-CAKE path's p50 in the dispatch A/B. Healthy direct
// dispatch is strictly faster; the slack only absorbs timer jitter on the
// microsecond samples.
const tinyABSlack = 0.10

// LoadServe reads a BENCH_serve.json.
func LoadServe(path string) (experiments.ServeBenchResult, error) {
	var r experiments.ServeBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(r.Tiers) == 0 {
		return r, fmt.Errorf("benchgate: %s has no tier rows", path)
	}
	return r, nil
}

// CompareServe judges a candidate serve benchmark against the baseline.
// Gated metrics: aggregate engine GEMMs/s (relative threshold vs baseline),
// per-tier engine GEMMs/s (same threshold), the engine-vs-serialized
// speedup (absolute ≥ MinServeSpeedup floor), and the tiny dispatch A/B
// (direct p50 must not exceed full-CAKE p50 beyond jitter slack). Latency
// percentiles and the serialized side's own throughput are reported
// informationally — the serialized baseline is the contrast, not the claim.
func CompareServe(base, cand experiments.ServeBenchResult, opt Options) []Finding {
	var out []Finding

	limit := base.EngineGemmsPer * (1 - opt.Threshold)
	out = append(out, Finding{
		File: "BENCH_serve.json", Key: "engine/total", Metric: "gemms_per_sec",
		Base: base.EngineGemmsPer, Candidate: cand.EngineGemmsPer, Limit: limit,
		Regression: cand.EngineGemmsPer < limit,
		Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
	})

	candTier := map[string]experiments.ServeTierRow{}
	for _, row := range cand.Tiers {
		candTier[row.Mode+"/"+row.Tier] = row
	}
	for _, b := range base.Tiers {
		key := b.Mode + "/" + b.Tier
		if b.Mode != "engine" {
			continue // serialized rows are the contrast, not the claim
		}
		tierLimit := b.GemmsPerSec * (1 - opt.Threshold)
		c, ok := candTier[key]
		if !ok {
			out = append(out, Finding{
				File: "BENCH_serve.json", Key: key, Metric: "gemms_per_sec",
				Base: b.GemmsPerSec, Candidate: 0, Limit: tierLimit, Regression: true,
				Detail: "tier row missing from candidate",
			})
			continue
		}
		out = append(out, Finding{
			File: "BENCH_serve.json", Key: key, Metric: "gemms_per_sec",
			Base: b.GemmsPerSec, Candidate: c.GemmsPerSec, Limit: tierLimit,
			Regression: c.GemmsPerSec < tierLimit,
			Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
		})
	}

	out = append(out, Finding{
		File: "BENCH_serve.json", Key: "engine/serialized", Metric: "speedup",
		Base: base.Speedup, Candidate: cand.Speedup, Limit: MinServeSpeedup,
		Regression: cand.Speedup < MinServeSpeedup,
		Detail:     "engine GEMMs/s over mutex-serialized baseline (absolute floor)",
	})

	abLimit := cand.TinyCakeP50Micros * (1 + tinyABSlack)
	out = append(out, Finding{
		File: "BENCH_serve.json", Key: "tiny-ab/direct-vs-cake", Metric: "p50_micros",
		Base: base.TinyDirectP50Micros, Candidate: cand.TinyDirectP50Micros, Limit: abLimit,
		Regression: cand.TinyDirectP50Micros > abLimit,
		Detail:     "direct tiny dispatch must not be slower than full-CAKE dispatch",
	})
	return out
}

// sampleServe runs the serve benchmark `runs` times.
func sampleServe(cores, clients int, quick bool, runs int) ([]*experiments.ServeBenchResult, error) {
	if runs < 1 {
		runs = 1
	}
	dur := 4 * time.Second
	if quick {
		dur = time.Second
	}
	out := make([]*experiments.ServeBenchResult, 0, runs)
	for i := 0; i < runs; i++ {
		r, err := experiments.ServeBench(cores, clients, dur, quick)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FreshServe measures the candidate side of the serve gate: the run with
// the best aggregate engine GEMMs/s — contention noise on shared machines
// only slows serving down, so the best run estimates capability.
func FreshServe(cores, clients int, quick bool, runs int) (experiments.ServeBenchResult, error) {
	return pickServe(cores, clients, quick, runs, func(a, b float64) bool { return a > b })
}

// BaselineServe measures the baseline side: the run with the worst
// aggregate engine GEMMs/s, so the committed reference is a floor every
// healthy run can beat.
func BaselineServe(cores, clients int, quick bool, runs int) (experiments.ServeBenchResult, error) {
	return pickServe(cores, clients, quick, runs, func(a, b float64) bool { return a < b })
}

func pickServe(cores, clients int, quick bool, runs int, better func(a, b float64) bool) (experiments.ServeBenchResult, error) {
	samples, err := sampleServe(cores, clients, quick, runs)
	if err != nil {
		return experiments.ServeBenchResult{}, err
	}
	pick := samples[0]
	for _, s := range samples[1:] {
		if better(s.EngineGemmsPer, pick.EngineGemmsPer) {
			pick = s
		}
	}
	return *pick, nil
}
