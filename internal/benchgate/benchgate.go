// Package benchgate is a noise-aware regression gate over the repo's
// machine-readable benchmark artifacts: it diffs a candidate
// BENCH_gemm.json / BENCH_bwtimeline.json against a committed baseline
// using relative thresholds (benchmarks on shared machines jitter; absolute
// numbers do not transfer) and flags only drops large enough to mean a real
// regression. Fresh measurements take the best of several runs before
// judging: scheduler and throttling noise on shared machines is one-sided
// (it only slows runs down), so max GFLOPS / min CoV across runs estimates
// the machine's capability far more stably than a median does.
package benchgate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"repro/internal/experiments"
)

// Options tunes the gate's noise allowances.
type Options struct {
	// Threshold is the relative GFLOPS drop that counts as a regression
	// (0.20 = candidate below 80% of baseline fails).
	Threshold float64
	// CoVSlack is the allowed relative growth of CAKE's bandwidth-timeline
	// coefficient of variation — the constant-bandwidth property regressing.
	CoVSlack float64
	// CoVFloor is an absolute CoV allowance added on top of CoVSlack, so a
	// near-zero baseline CoV does not turn jitter into failures.
	CoVFloor float64
	// MinRuns is how many fresh benchmark runs feed the best-of-N pick.
	MinRuns int
}

// DefaultOptions returns the gate's default noise allowances.
func DefaultOptions() Options {
	return Options{Threshold: 0.20, CoVSlack: 0.50, CoVFloor: 0.10, MinRuns: 5}
}

// Finding is one compared metric.
type Finding struct {
	File       string  `json:"file"`   // which artifact the metric came from
	Key        string  `json:"key"`    // row identity, e.g. "square-480/pipelined" or "cake"
	Metric     string  `json:"metric"` // "gflops" or "cov"
	Base       float64 `json:"base"`
	Candidate  float64 `json:"candidate"`
	Limit      float64 `json:"limit"` // the threshold the candidate was judged against
	Regression bool    `json:"regression"`
	Detail     string  `json:"detail"`
}

// Result is a full gate evaluation.
type Result struct {
	Findings []Finding `json:"findings"`
}

// Summary is the machine-readable document `cake-bench check -json` writes:
// the overall verdict, every finding (pairwise gates and trend cells), and
// the full trend report when a corpus history was available.
type Summary struct {
	OK          bool         `json:"ok"`
	Regressions int          `json:"regressions"`
	Findings    []Finding    `json:"findings"`
	Trend       *TrendReport `json:"trend,omitempty"`
}

// OK reports whether no finding is a regression.
func (r Result) OK() bool {
	for _, f := range r.Findings {
		if f.Regression {
			return false
		}
	}
	return true
}

// Regressions returns only the failing findings.
func (r Result) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}

// Render writes a human-readable summary.
func (r Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%-24s %-28s %-8s %10s %10s %10s  %s\n",
		"file", "key", "metric", "base", "candidate", "limit", "verdict")
	for _, f := range r.Findings {
		verdict := "ok"
		if f.Regression {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(w, "%-24s %-28s %-8s %10.3f %10.3f %10.3f  %s\n",
			f.File, f.Key, f.Metric, f.Base, f.Candidate, f.Limit, verdict)
		if f.Regression && f.Detail != "" {
			fmt.Fprintf(w, "    %s\n", f.Detail)
		}
	}
}

// GemmFile is the BENCH_gemm.json artifact cake-bench writes: the unified
// schema envelope plus the measurement rows. Baselines committed before the
// envelope existed unmarshal with a zero envelope and keep gating.
type GemmFile struct {
	experiments.Envelope
	Cores int                        `json:"cores"`
	Rows  []experiments.GemmBenchRow `json:"rows"`
}

// LoadGemm reads a BENCH_gemm.json.
func LoadGemm(path string) (GemmFile, error) {
	var f GemmFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(f.Rows) == 0 {
		return f, fmt.Errorf("benchgate: %s has no rows", path)
	}
	return f, nil
}

// LoadTimeline reads a BENCH_bwtimeline.json.
func LoadTimeline(path string) (experiments.TraceBenchResult, error) {
	var r experiments.TraceBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if r.Cake.Executor == "" || r.Goto.Executor == "" {
		return r, fmt.Errorf("benchgate: %s missing executor timelines", path)
	}
	return r, nil
}

func gemmKey(r experiments.GemmBenchRow) string { return r.Shape + "/" + r.Mode }

// CompareGemm judges candidate GEMM throughput rows against the baseline.
// Every baseline row must be present in the candidate (a vanished
// configuration is itself a regression) and within the relative threshold.
func CompareGemm(base, cand GemmFile, opt Options) []Finding {
	candBy := map[string]experiments.GemmBenchRow{}
	for _, r := range cand.Rows {
		candBy[gemmKey(r)] = r
	}
	var out []Finding
	for _, b := range base.Rows {
		key := gemmKey(b)
		limit := b.GFLOPS * (1 - opt.Threshold)
		c, ok := candBy[key]
		if !ok {
			out = append(out, Finding{
				File: "BENCH_gemm.json", Key: key, Metric: "gflops",
				Base: b.GFLOPS, Candidate: 0, Limit: limit, Regression: true,
				Detail: "row missing from candidate",
			})
			continue
		}
		out = append(out, Finding{
			File: "BENCH_gemm.json", Key: key, Metric: "gflops",
			Base: b.GFLOPS, Candidate: c.GFLOPS, Limit: limit,
			Regression: c.GFLOPS < limit,
			Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
		})
	}
	return out
}

// CompareTimeline judges the trace benchmark: throughput for both
// executors, and CAKE's bandwidth CoV — the constant-bandwidth property is
// the claim under test, so only CAKE's flatness gates. GOTO's CoV is
// reported informationally (its spikes are the paper's contrast, not a
// regression).
func CompareTimeline(base, cand experiments.TraceBenchResult, opt Options) []Finding {
	var out []Finding
	pairs := []struct {
		key     string
		b, c    experiments.ExecTimeline
		gateCoV bool
	}{
		{"cake", base.Cake, cand.Cake, true},
		{"goto", base.Goto, cand.Goto, false},
	}
	for _, p := range pairs {
		limit := p.b.GFLOPS * (1 - opt.Threshold)
		out = append(out, Finding{
			File: "BENCH_bwtimeline.json", Key: p.key, Metric: "gflops",
			Base: p.b.GFLOPS, Candidate: p.c.GFLOPS, Limit: limit,
			Regression: p.c.GFLOPS < limit,
			Detail:     fmt.Sprintf("allowed drop %.0f%%", 100*opt.Threshold),
		})
		covLimit := p.b.CoV*(1+opt.CoVSlack) + opt.CoVFloor
		out = append(out, Finding{
			File: "BENCH_bwtimeline.json", Key: p.key, Metric: "cov",
			Base: p.b.CoV, Candidate: p.c.CoV, Limit: covLimit,
			Regression: p.gateCoV && p.c.CoV > covLimit,
			Detail:     "bandwidth-timeline coefficient of variation",
		})
	}
	return out
}

// CompareDirs gates candidate artifacts in candDir against the committed
// baseline in baseDir — the deterministic file-vs-file mode (a directory
// compared against itself always passes, which scripts use as a
// self-check).
func CompareDirs(baseDir, candDir string, opt Options) (Result, error) {
	bg, err := LoadGemm(filepath.Join(baseDir, "BENCH_gemm.json"))
	if err != nil {
		return Result{}, err
	}
	cg, err := LoadGemm(filepath.Join(candDir, "BENCH_gemm.json"))
	if err != nil {
		return Result{}, err
	}
	bt, err := LoadTimeline(filepath.Join(baseDir, "BENCH_bwtimeline.json"))
	if err != nil {
		return Result{}, err
	}
	ct, err := LoadTimeline(filepath.Join(candDir, "BENCH_bwtimeline.json"))
	if err != nil {
		return Result{}, err
	}
	res := Result{Findings: CompareGemm(bg, cg, opt)}
	res.Findings = append(res.Findings, CompareTimeline(bt, ct, opt)...)
	// The serve artifact arrived later than the other two; gate it only when
	// the baseline directory has one, so older checkouts still compare.
	if _, err := os.Stat(filepath.Join(baseDir, "BENCH_serve.json")); err == nil {
		bs, err := LoadServe(filepath.Join(baseDir, "BENCH_serve.json"))
		if err != nil {
			return Result{}, err
		}
		cs, err := LoadServe(filepath.Join(candDir, "BENCH_serve.json"))
		if err != nil {
			return Result{}, err
		}
		res.Findings = append(res.Findings, CompareServe(bs, cs, opt)...)
	}
	// Resident likewise: gate only against baselines that carry the artifact.
	if _, err := os.Stat(filepath.Join(baseDir, "BENCH_resident.json")); err == nil {
		br, err := LoadResident(filepath.Join(baseDir, "BENCH_resident.json"))
		if err != nil {
			return Result{}, err
		}
		cr, err := LoadResident(filepath.Join(candDir, "BENCH_resident.json"))
		if err != nil {
			return Result{}, err
		}
		res.Findings = append(res.Findings, CompareResident(br, cr, opt)...)
	}
	// Batch (one-lease batched dispatch) likewise.
	if _, err := os.Stat(filepath.Join(baseDir, "BENCH_batch.json")); err == nil {
		bb, err := LoadBatch(filepath.Join(baseDir, "BENCH_batch.json"))
		if err != nil {
			return Result{}, err
		}
		cb, err := LoadBatch(filepath.Join(candDir, "BENCH_batch.json"))
		if err != nil {
			return Result{}, err
		}
		res.Findings = append(res.Findings, CompareBatch(bb, cb, opt)...)
	}
	// Obs (request-observability overhead) likewise.
	if _, err := os.Stat(filepath.Join(baseDir, "BENCH_obs.json")); err == nil {
		bo, err := LoadObs(filepath.Join(baseDir, "BENCH_obs.json"))
		if err != nil {
			return Result{}, err
		}
		co, err := LoadObs(filepath.Join(candDir, "BENCH_obs.json"))
		if err != nil {
			return Result{}, err
		}
		res.Findings = append(res.Findings, CompareObs(bo, co, opt)...)
	}
	return res, nil
}

// best returns the most favourable sample (max — GFLOPS-style metrics);
// floor the most conservative one (min). Candidates are summarised with
// best, baselines with floor: the gate then fails only when the candidate's
// best run cannot reach the threshold below the baseline's worst run —
// i.e. when the two noise bands no longer overlap. On quiet machines the
// bands are tight and this degrades to a plain relative check; on noisy
// shared hosts (where some modes are bimodal) it avoids flagging the
// machine's own jitter as a code regression. Empty input returns 0.
func best(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return slices.Max(vals)
}

func floor(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return slices.Min(vals)
}

// sampleGemm runs the GEMM benchmark `runs` times, collecting per-(shape,
// mode) GFLOPS samples; the first run's rows carry the non-GFLOPS columns.
func sampleGemm(cores int, quick bool, runs int) ([]experiments.GemmBenchRow, map[string][]float64, error) {
	if runs < 1 {
		runs = 1
	}
	var first []experiments.GemmBenchRow
	samples := map[string][]float64{}
	for i := 0; i < runs; i++ {
		rows, err := experiments.GemmBench(cores, quick)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			first = rows
		}
		for _, r := range rows {
			samples[gemmKey(r)] = append(samples[gemmKey(r)], r.GFLOPS)
		}
	}
	return first, samples, nil
}

// FreshGemm measures the candidate side: per-row best GFLOPS across runs.
func FreshGemm(cores int, quick bool, runs int) (GemmFile, error) {
	return pickGemm(cores, quick, runs, best)
}

// BaselineGemm measures the baseline side: per-row floor (worst) GFLOPS, so
// the committed reference is a bound every healthy run can beat.
func BaselineGemm(cores int, quick bool, runs int) (GemmFile, error) {
	return pickGemm(cores, quick, runs, floor)
}

func pickGemm(cores int, quick bool, runs int, pick func([]float64) float64) (GemmFile, error) {
	first, samples, err := sampleGemm(cores, quick, runs)
	if err != nil {
		return GemmFile{}, err
	}
	for i := range first {
		first[i].GFLOPS = pick(samples[gemmKey(first[i])])
	}
	return GemmFile{Envelope: experiments.NewEnvelope("gemm"), Cores: cores, Rows: first}, nil
}

// sampleTimeline runs the trace benchmark `runs` times, collecting GFLOPS
// and CoV samples per executor.
func sampleTimeline(cores int, quick bool, runs int) (*experiments.TraceBenchResult, map[string][]float64, error) {
	if runs < 1 {
		runs = 1
	}
	var first *experiments.TraceBenchResult
	samples := map[string][]float64{}
	for i := 0; i < runs; i++ {
		res, err := experiments.TraceBench(cores, quick)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			first = res
		}
		samples["cake/gflops"] = append(samples["cake/gflops"], res.Cake.GFLOPS)
		samples["cake/cov"] = append(samples["cake/cov"], res.Cake.CoV)
		samples["goto/gflops"] = append(samples["goto/gflops"], res.Goto.GFLOPS)
		samples["goto/cov"] = append(samples["goto/cov"], res.Goto.CoV)
	}
	return first, samples, nil
}

// FreshTimeline measures the candidate side: best GFLOPS (max) and best CoV
// (min — flatter is better) per executor.
func FreshTimeline(cores int, quick bool, runs int) (experiments.TraceBenchResult, error) {
	return pickTimeline(cores, quick, runs, best, floor)
}

// BaselineTimeline measures the baseline side: floor GFLOPS and ceiling CoV
// per executor — the conservative bounds candidates are judged against.
func BaselineTimeline(cores int, quick bool, runs int) (experiments.TraceBenchResult, error) {
	return pickTimeline(cores, quick, runs, floor, best)
}

func pickTimeline(cores int, quick bool, runs int, pickGF, pickCoV func([]float64) float64) (experiments.TraceBenchResult, error) {
	first, samples, err := sampleTimeline(cores, quick, runs)
	if err != nil {
		return experiments.TraceBenchResult{}, err
	}
	first.Cake.GFLOPS, first.Cake.CoV = pickGF(samples["cake/gflops"]), pickCoV(samples["cake/cov"])
	first.Goto.GFLOPS, first.Goto.CoV = pickGF(samples["goto/gflops"]), pickCoV(samples["goto/cov"])
	return *first, nil
}
