// Chrome Trace Event Format export. The produced JSON loads directly into
// Perfetto (https://ui.perfetto.dev) or chrome://tracing: one process per
// traced executor, one thread lane per worker, "X" complete events for
// pack/compute/unpack spans and "i" instant events for panel-cache hits —
// so a pipelined run renders pack/compute overlap and reuse at a glance.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Process names one recorder's lane group in the exported trace, e.g.
// "cake" and "goto" side by side.
type Process struct {
	Name string
	Rec  *Recorder
}

// traceEvent is one Trace Event Format entry. Timestamps and durations are
// microseconds (the format's unit).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorders' spans as Chrome Trace Event JSON.
// Each process's timestamps are shifted so its earliest span starts at
// t=0, letting sequentially captured executions (CAKE then GOTO on the
// same shape) line up for visual comparison. A recorder whose rings have
// wrapped gets a "dropped_spans" metadata event carrying the overwrite
// count, so a truncated trace announces itself instead of silently showing
// a shortened execution.
func WriteChromeTrace(w io.Writer, procs ...Process) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for pi, p := range procs {
		pid := pi + 1
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Name},
		})
		if d := p.Rec.Dropped(); d > 0 {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "dropped_spans", Ph: "M", Pid: pid,
				Args: map[string]any{"count": d},
			})
		}
		spans := p.Rec.Spans()
		if len(spans) == 0 {
			continue
		}
		origin := spans[0].StartNs
		seen := map[int32]bool{}
		for _, s := range spans {
			if !seen[s.Worker] {
				seen[s.Worker] = true
				name := fmt.Sprintf("worker %d", s.Worker)
				if int(s.Worker) == p.Rec.SchedulerLane() {
					name = "scheduler"
				}
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: int(s.Worker),
					Args: map[string]any{"name": name},
				})
			}
			ev := traceEvent{
				Name: s.Phase.String(),
				Ts:   float64(s.StartNs-origin) / 1e3,
				Pid:  pid,
				Tid:  int(s.Worker),
				Args: map[string]any{
					"block": fmt.Sprintf("(%d,%d,%d)", s.Block.M, s.Block.K, s.Block.N),
					"bytes": s.Bytes,
				},
			}
			if s.Phase == PhaseReuse {
				ev.Ph, ev.S = "i", "t"
				ev.Args["avoided_bytes"] = s.Bytes
				delete(ev.Args, "bytes")
			} else {
				ev.Ph = "X"
				dur := float64(s.DurNs) / 1e3
				ev.Dur = &dur
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
