// Chrome Trace Event Format export. The produced JSON loads directly into
// Perfetto (https://ui.perfetto.dev) or chrome://tracing: one process per
// traced executor, one thread lane per worker, "X" complete events for
// pack/compute/unpack spans and "i" instant events for panel-cache hits —
// so a pipelined run renders pack/compute overlap and reuse at a glance.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Process names one recorder's lane group in the exported trace, e.g.
// "cake" and "goto" side by side.
type Process struct {
	Name string
	Rec  *Recorder
}

// traceEvent is one Trace Event Format entry. Timestamps and durations are
// microseconds (the format's unit).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceEvent is an externally contributed Chrome-trace event: packages
// above obs (reqtrace's request spans) hand these to the exporter through
// RegisterTraceSource instead of depending on the writer's internal event
// shape. Timestamps and durations are microseconds, relative to the
// source's own origin (the exporter keeps each process's own zero, the same
// per-process shifting the recorder spans get).
type TraceEvent struct {
	Name     string
	TsUs     float64
	DurUs    float64 // ignored when Instant
	Instant  bool
	Lane     int    // tid within the source's process
	LaneName string // thread_name metadata, emitted once per lane
	Args     map[string]any
}

var (
	traceSrcMu    sync.Mutex
	traceSrcNames []string // registration order → stable pids
	traceSrcs     = map[string]func() []TraceEvent{}
)

// RegisterTraceSource contributes an extra process to the debug server's
// Chrome-trace export (/debug/trace.json): the callback is invoked at
// download time and its events appear as one process named name alongside
// the registered recorders — request-lifecycle spans render as parent
// tracks over the per-worker phase spans. Re-registering a name replaces
// its callback, keeping its position.
func RegisterTraceSource(name string, fn func() []TraceEvent) {
	traceSrcMu.Lock()
	defer traceSrcMu.Unlock()
	if _, ok := traceSrcs[name]; !ok {
		traceSrcNames = append(traceSrcNames, name)
	}
	traceSrcs[name] = fn
}

func traceSources() ([]string, []func() []TraceEvent) {
	traceSrcMu.Lock()
	defer traceSrcMu.Unlock()
	names := make([]string, len(traceSrcNames))
	copy(names, traceSrcNames)
	fns := make([]func() []TraceEvent, len(names))
	for i, n := range names {
		fns[i] = traceSrcs[n]
	}
	return names, fns
}

// WriteChromeTrace exports the recorders' spans as Chrome Trace Event JSON.
// Each process's timestamps are shifted so its earliest span starts at
// t=0, letting sequentially captured executions (CAKE then GOTO on the
// same shape) line up for visual comparison. A recorder whose rings have
// wrapped gets a "dropped_spans" metadata event carrying the overwrite
// count, so a truncated trace announces itself instead of silently showing
// a shortened execution.
func WriteChromeTrace(w io.Writer, procs ...Process) error {
	return writeChromeTrace(w, procs, false)
}

// WriteChromeTraceAll is WriteChromeTrace plus every registered external
// trace source (request-lifecycle spans); the debug server's
// /debug/trace.json uses it.
func WriteChromeTraceAll(w io.Writer, procs ...Process) error {
	return writeChromeTrace(w, procs, true)
}

func writeChromeTrace(w io.Writer, procs []Process, withSources bool) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for pi, p := range procs {
		pid := pi + 1
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Name},
		})
		if d := p.Rec.Dropped(); d > 0 {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "dropped_spans", Ph: "M", Pid: pid,
				Args: map[string]any{"count": d},
			})
		}
		spans := p.Rec.Spans()
		if len(spans) == 0 {
			continue
		}
		origin := spans[0].StartNs
		seen := map[int32]bool{}
		for _, s := range spans {
			if !seen[s.Worker] {
				seen[s.Worker] = true
				name := fmt.Sprintf("worker %d", s.Worker)
				if int(s.Worker) == p.Rec.SchedulerLane() {
					name = "scheduler"
				}
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: int(s.Worker),
					Args: map[string]any{"name": name},
				})
			}
			ev := traceEvent{
				Name: s.Phase.String(),
				Ts:   float64(s.StartNs-origin) / 1e3,
				Pid:  pid,
				Tid:  int(s.Worker),
				Args: map[string]any{
					"block": fmt.Sprintf("(%d,%d,%d)", s.Block.M, s.Block.K, s.Block.N),
					"bytes": s.Bytes,
				},
			}
			if s.Phase == PhaseReuse {
				ev.Ph, ev.S = "i", "t"
				ev.Args["avoided_bytes"] = s.Bytes
				delete(ev.Args, "bytes")
			} else {
				ev.Ph = "X"
				dur := float64(s.DurNs) / 1e3
				ev.Dur = &dur
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	if withSources {
		names, fns := traceSources()
		for si, fn := range fns {
			pid := len(procs) + si + 1
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": names[si]},
			})
			seen := map[int]bool{}
			for _, e := range fn() {
				if !seen[e.Lane] && e.LaneName != "" {
					seen[e.Lane] = true
					f.TraceEvents = append(f.TraceEvents, traceEvent{
						Name: "thread_name", Ph: "M", Pid: pid, Tid: e.Lane,
						Args: map[string]any{"name": e.LaneName},
					})
				}
				ev := traceEvent{Name: e.Name, Ts: e.TsUs, Pid: pid, Tid: e.Lane, Args: e.Args}
				if e.Instant {
					ev.Ph, ev.S = "i", "t"
				} else {
					ev.Ph = "X"
					dur := e.DurUs
					ev.Dur = &dur
				}
				f.TraceEvents = append(f.TraceEvents, ev)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
