// Per-phase DRAM traffic accounting: the common currency between the
// executors' analytical predictions (core/gotoalg PredictTraffic) and the
// traffic a traced run actually recorded. The conformance layer joins the
// two — the paper's §4.2/§4.4 claims are exactly statements about these
// three numbers.
package obs

// Traffic is DRAM traffic split by execution phase, in bytes.
type Traffic struct {
	PackBytes    int64 `json:"pack_bytes"`    // operand reads into packed panels
	ComputeBytes int64 `json:"compute_bytes"` // traffic during macro-kernels (0 for CAKE; partial-C streaming for GOTO)
	UnpackBytes  int64 `json:"unpack_bytes"`  // resident-C fold-back read-modify-writes
}

// TotalBytes returns the traffic summed over phases.
func (t Traffic) TotalBytes() int64 { return t.PackBytes + t.ComputeBytes + t.UnpackBytes }

// MeasuredTraffic reduces recorded spans to per-phase DRAM traffic. Reuse
// spans carry traffic that never reached DRAM, so they are excluded from
// the Traffic and returned separately as avoided bytes — a traced run's
// pack traffic plus its avoided bytes should meet the executor's no-reuse
// prediction.
func MeasuredTraffic(spans []Span) (t Traffic, avoidedBytes int64) {
	for _, s := range spans {
		switch s.Phase {
		case PhasePack:
			t.PackBytes += s.Bytes
		case PhaseCompute:
			t.ComputeBytes += s.Bytes
		case PhaseUnpack:
			t.UnpackBytes += s.Bytes
		case PhaseReuse:
			avoidedBytes += s.Bytes
		}
	}
	return t, avoidedBytes
}
