// Expvar-backed metrics for long-running hosts: a process that embeds the
// executors (the drop-in-library usage of §5) can expose cumulative
// per-executor counters — GEMMs, blocks, packed/reused bytes, phase and
// overlap times — on the standard /debug/vars endpoint. Accounting is off
// by default and costs the executors one atomic load per GEMM until
// EnableMetrics is called; it is per-call, not per-block, so it never
// touches the hot path.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// ExecMetrics is one executor family's cumulative counter set. The two
// histograms accumulate per-span pack/compute durations from traced
// executions (the span instrumentation points feed them when metrics are
// enabled), giving p50/p95/p99 phase latencies on long-running hosts.
type ExecMetrics struct {
	Gemms        expvar.Int
	Blocks       expvar.Int
	PackedBytes  expvar.Int
	ReusedBytes  expvar.Int
	PackNanos    expvar.Int
	ComputeNanos expvar.Int
	OverlapNanos expvar.Int
	PackDur      Histogram
	ComputeDur   Histogram
}

func (m *ExecMetrics) publishInto(dst *expvar.Map) {
	dst.Set("gemms", &m.Gemms)
	dst.Set("blocks", &m.Blocks)
	dst.Set("packed_bytes", &m.PackedBytes)
	dst.Set("reused_bytes", &m.ReusedBytes)
	dst.Set("pack_nanos", &m.PackNanos)
	dst.Set("compute_nanos", &m.ComputeNanos)
	dst.Set("overlap_nanos", &m.OverlapNanos)
	dst.Set("pack_duration_ns", &m.PackDur)
	dst.Set("compute_duration_ns", &m.ComputeDur)
}

// ObservePhase folds one span's duration into the executor's phase latency
// histograms. Phases without a histogram (unpack, reuse) are ignored.
func (m *ExecMetrics) ObservePhase(ph Phase, durNs int64) {
	switch ph {
	case PhasePack:
		m.PackDur.Observe(durNs)
	case PhaseCompute:
		m.ComputeDur.Observe(durNs)
	}
}

var (
	metricsOn   atomic.Bool
	metricsMu   sync.Mutex
	metricsRoot *expvar.Map
	metricsByEx = map[string]*ExecMetrics{}
)

// EnableMetrics switches GEMM accounting on and publishes the registry as
// the expvar "cake_metrics" map (idempotent — expvar forbids duplicate
// names, so the map is created once and reused).
func EnableMetrics() {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	if metricsRoot == nil {
		metricsRoot = expvar.NewMap("cake_metrics")
	}
	metricsOn.Store(true)
}

// DisableMetrics stops accounting; published values remain visible.
func DisableMetrics() { metricsOn.Store(false) }

// MetricsFor returns the counter set for an executor family ("cake",
// "goto"), creating and publishing it on first use. Returns nil until
// EnableMetrics has been called.
func MetricsFor(executor string) *ExecMetrics {
	if !metricsOn.Load() {
		return nil
	}
	metricsMu.Lock()
	defer metricsMu.Unlock()
	m, ok := metricsByEx[executor]
	if !ok {
		m = &ExecMetrics{}
		metricsByEx[executor] = m
		sub := new(expvar.Map).Init()
		m.publishInto(sub)
		metricsRoot.Set(executor, sub)
	}
	return m
}

// AccountGemm folds one finished GEMM's statistics into the executor's
// cumulative counters. A single atomic load when metrics are disabled.
func AccountGemm(executor string, blocks int, packedBytes, reusedBytes, packNs, computeNs, overlapNs int64) {
	m := MetricsFor(executor)
	if m == nil {
		return
	}
	m.Gemms.Add(1)
	m.Blocks.Add(int64(blocks))
	m.PackedBytes.Add(packedBytes)
	m.ReusedBytes.Add(reusedBytes)
	m.PackNanos.Add(packNs)
	m.ComputeNanos.Add(computeNs)
	m.OverlapNanos.Add(overlapNs)
}

// WritePrometheus renders the metrics registry in Prometheus text
// exposition format (version 0.0.4): one counter family per ExecMetrics
// field, labelled by executor, plus the phase-duration histograms in the
// native histogram text shape ({le} buckets, _sum, _count). Deterministic
// output order (sorted executors) so scrapes diff cleanly.
func WritePrometheus(w io.Writer) {
	metricsMu.Lock()
	names := make([]string, 0, len(metricsByEx))
	for name := range metricsByEx {
		names = append(names, name)
	}
	sort.Strings(names)
	ms := make([]*ExecMetrics, len(names))
	for i, name := range names {
		ms[i] = metricsByEx[name]
	}
	metricsMu.Unlock()

	counters := []struct {
		family, help string
		value        func(m *ExecMetrics) float64
	}{
		{"cake_gemms_total", "GEMM executions completed.", func(m *ExecMetrics) float64 { return float64(m.Gemms.Value()) }},
		{"cake_blocks_total", "CB blocks (or GOTO panels) executed.", func(m *ExecMetrics) float64 { return float64(m.Blocks.Value()) }},
		{"cake_packed_bytes_total", "Operand bytes packed from DRAM.", func(m *ExecMetrics) float64 { return float64(m.PackedBytes.Value()) }},
		{"cake_reused_bytes_total", "DRAM bytes avoided by panel-cache hits.", func(m *ExecMetrics) float64 { return float64(m.ReusedBytes.Value()) }},
		{"cake_pack_seconds_total", "Wall time spent packing and managing C blocks.", func(m *ExecMetrics) float64 { return float64(m.PackNanos.Value()) / 1e9 }},
		{"cake_compute_seconds_total", "Wall time spent in macro-kernels.", func(m *ExecMetrics) float64 { return float64(m.ComputeNanos.Value()) / 1e9 }},
		{"cake_overlap_seconds_total", "Pack time hidden under compute by the pipeline.", func(m *ExecMetrics) float64 { return float64(m.OverlapNanos.Value()) / 1e9 }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.family, c.help, c.family)
		for i, name := range names {
			fmt.Fprintf(w, "%s{executor=%q} %g\n", c.family, name, c.value(ms[i]))
		}
	}

	const histFamily = "cake_phase_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Traced span durations by executor and phase.\n# TYPE %s histogram\n",
		histFamily, histFamily)
	for i, name := range names {
		for _, ph := range []struct {
			phase string
			h     *Histogram
		}{{"pack", &ms[i].PackDur}, {"compute", &ms[i].ComputeDur}} {
			counts, total, sum := ph.h.snapshot()
			var cum int64
			for b, c := range counts {
				cum += c
				if b == histBucketCount {
					continue // the +Inf line below carries the overflow
				}
				fmt.Fprintf(w, "%s_bucket{executor=%q,phase=%q,le=%q} %d\n",
					histFamily, name, ph.phase, fmt.Sprintf("%g", float64(HistBucketBound(b))/1e9), cum)
			}
			fmt.Fprintf(w, "%s_bucket{executor=%q,phase=%q,le=\"+Inf\"} %d\n", histFamily, name, ph.phase, total)
			fmt.Fprintf(w, "%s_sum{executor=%q,phase=%q} %g\n", histFamily, name, ph.phase, float64(sum)/1e9)
			fmt.Fprintf(w, "%s_count{executor=%q,phase=%q} %d\n", histFamily, name, ph.phase, total)
		}
	}

	writeEnginePrometheus(w)
	writeResidentPrometheus(w)
	writeCorpusPrometheus(w)

	promMu.Lock()
	hooks := make([]func(io.Writer), len(promHooks))
	for i, name := range promNames {
		hooks[i] = promHooks[name]
	}
	promMu.Unlock()
	for _, hook := range hooks {
		hook(w)
	}
}

var (
	promMu    sync.Mutex
	promNames []string // registration order, for stable scrape layout
	promHooks = map[string]func(io.Writer){}
)

// RegisterPrometheus contributes extra metric families to WritePrometheus
// (and therefore /metrics). Packages above obs in the dependency graph
// (reqtrace, future serving layers) register a writer under a unique name —
// typically from init() — and it runs after the built-in families on every
// scrape. Re-registering a name replaces its writer, keeping its position.
func RegisterPrometheus(name string, write func(io.Writer)) {
	promMu.Lock()
	defer promMu.Unlock()
	if _, ok := promHooks[name]; !ok {
		promNames = append(promNames, name)
	}
	promHooks[name] = write
}
