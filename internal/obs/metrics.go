// Expvar-backed metrics for long-running hosts: a process that embeds the
// executors (the drop-in-library usage of §5) can expose cumulative
// per-executor counters — GEMMs, blocks, packed/reused bytes, phase and
// overlap times — on the standard /debug/vars endpoint. Accounting is off
// by default and costs the executors one atomic load per GEMM until
// EnableMetrics is called; it is per-call, not per-block, so it never
// touches the hot path.
package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// ExecMetrics is one executor family's cumulative counter set.
type ExecMetrics struct {
	Gemms        expvar.Int
	Blocks       expvar.Int
	PackedBytes  expvar.Int
	ReusedBytes  expvar.Int
	PackNanos    expvar.Int
	ComputeNanos expvar.Int
	OverlapNanos expvar.Int
}

func (m *ExecMetrics) publishInto(dst *expvar.Map) {
	dst.Set("gemms", &m.Gemms)
	dst.Set("blocks", &m.Blocks)
	dst.Set("packed_bytes", &m.PackedBytes)
	dst.Set("reused_bytes", &m.ReusedBytes)
	dst.Set("pack_nanos", &m.PackNanos)
	dst.Set("compute_nanos", &m.ComputeNanos)
	dst.Set("overlap_nanos", &m.OverlapNanos)
}

var (
	metricsOn   atomic.Bool
	metricsMu   sync.Mutex
	metricsRoot *expvar.Map
	metricsByEx = map[string]*ExecMetrics{}
)

// EnableMetrics switches GEMM accounting on and publishes the registry as
// the expvar "cake_metrics" map (idempotent — expvar forbids duplicate
// names, so the map is created once and reused).
func EnableMetrics() {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	if metricsRoot == nil {
		metricsRoot = expvar.NewMap("cake_metrics")
	}
	metricsOn.Store(true)
}

// DisableMetrics stops accounting; published values remain visible.
func DisableMetrics() { metricsOn.Store(false) }

// MetricsFor returns the counter set for an executor family ("cake",
// "goto"), creating and publishing it on first use. Returns nil until
// EnableMetrics has been called.
func MetricsFor(executor string) *ExecMetrics {
	if !metricsOn.Load() {
		return nil
	}
	metricsMu.Lock()
	defer metricsMu.Unlock()
	m, ok := metricsByEx[executor]
	if !ok {
		m = &ExecMetrics{}
		metricsByEx[executor] = m
		sub := new(expvar.Map).Init()
		m.publishInto(sub)
		metricsRoot.Set(executor, sub)
	}
	return m
}

// AccountGemm folds one finished GEMM's statistics into the executor's
// cumulative counters. A single atomic load when metrics are disabled.
func AccountGemm(executor string, blocks int, packedBytes, reusedBytes, packNs, computeNs, overlapNs int64) {
	m := MetricsFor(executor)
	if m == nil {
		return
	}
	m.Gemms.Add(1)
	m.Blocks.Add(int64(blocks))
	m.PackedBytes.Add(packedBytes)
	m.ReusedBytes.Add(reusedBytes)
	m.PackNanos.Add(packNs)
	m.ComputeNanos.Add(computeNs)
	m.OverlapNanos.Add(overlapNs)
}
