package obs

import (
	"sync"
	"testing"
)

func span(start, dur, bytes int64, ph Phase) Span {
	return Span{StartNs: start, DurNs: dur, Bytes: bytes, Phase: ph}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, span(1, 1, 1, PhasePack)) // must not panic
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder Spans() = %v, want nil", got)
	}
	if r.Dropped() != 0 || r.Workers() != 0 {
		t.Fatalf("nil recorder reported state")
	}
	r.Reset() // must not panic
}

func TestRecordAndSpans(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, span(30, 5, 100, PhasePack))
	r.Record(1, span(10, 5, 200, PhaseCompute))
	r.Record(0, span(20, 5, 300, PhaseUnpack))
	got := r.Spans()
	if len(got) != 3 {
		t.Fatalf("got %d spans, want 3", len(got))
	}
	// Sorted by start time, worker recorded on each span.
	if got[0].StartNs != 10 || got[0].Worker != 1 || got[0].Phase != PhaseCompute {
		t.Fatalf("span[0] = %+v", got[0])
	}
	if got[1].StartNs != 20 || got[1].Worker != 0 {
		t.Fatalf("span[1] = %+v", got[1])
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := int64(0); i < 10; i++ {
		r.Record(0, span(i, 1, i, PhasePack))
	}
	if d := r.Dropped(); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
	got := r.LaneSpans(0)
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	// Oldest-first: spans 6, 7, 8, 9 survive.
	for i, s := range got {
		if want := int64(6 + i); s.StartNs != want {
			t.Fatalf("retained[%d].StartNs = %d, want %d", i, s.StartNs, want)
		}
	}
}

func TestSchedulerLaneAndClamping(t *testing.T) {
	r := NewRecorder(3, 4)
	if r.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", r.Workers())
	}
	if r.SchedulerLane() != 3 {
		t.Fatalf("SchedulerLane = %d, want 3", r.SchedulerLane())
	}
	r.Record(99, span(1, 0, 0, PhaseReuse)) // out of range → scheduler lane
	r.Record(-1, span(2, 0, 0, PhaseReuse))
	if got := r.LaneSpans(r.SchedulerLane()); len(got) != 2 {
		t.Fatalf("scheduler lane has %d spans, want 2", len(got))
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(1, 4)
	r.Record(0, span(1, 1, 1, PhasePack))
	r.Reset()
	if got := r.Spans(); len(got) != 0 {
		t.Fatalf("after Reset, %d spans retained", len(got))
	}
}

// TestConcurrentSameLane exercises the atomic-cursor claim: the pipelined
// executor's async pack jobs (real worker ids) and static compute jobs
// (virtual core ids) can hit the same lane concurrently.
func TestConcurrentSameLane(t *testing.T) {
	r := NewRecorder(1, 1<<12)
	const goroutines, each = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(0, span(int64(g*each+i), 1, 1, PhasePack))
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.LaneSpans(0)); got != goroutines*each {
		t.Fatalf("retained %d spans, want %d", got, goroutines*each)
	}
}

func TestPhaseStrings(t *testing.T) {
	for ph, want := range map[Phase]string{
		PhasePack: "pack", PhaseCompute: "compute",
		PhaseUnpack: "unpack", PhaseReuse: "reuse", Phase(42): "unknown",
	} {
		if ph.String() != want {
			t.Fatalf("Phase(%d).String() = %q, want %q", ph, ph.String(), want)
		}
	}
}

// BenchmarkRecord documents the per-span cost of the hot recording path;
// BenchmarkRecordNil is the disabled path executors pay per
// instrumentation point.
func BenchmarkRecord(b *testing.B) {
	r := NewRecorder(1, 1<<12)
	s := span(1, 1, 64, PhasePack)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(0, s)
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var r *Recorder
	s := span(1, 1, 64, PhasePack)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(0, s)
	}
}
