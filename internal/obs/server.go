// Live debug server for long-running hosts: one stdlib-only HTTP endpoint
// bundle exposing everything the observability layer knows — Prometheus
// metrics, expvar, pprof, on-demand Chrome-trace download, bandwidth
// timelines, and the latest model-conformance report. A host embeds the
// executors, registers its trace recorders, and calls Serve; nothing here
// touches the GEMM hot path.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

var (
	debugMu    sync.Mutex
	debugProcs []Process // registration order preserved for stable pids
	latestConf any
	hasConf    bool
)

// RegisterProcess makes a named recorder visible to the debug endpoints
// (/debug/trace.json and /debug/timeline.json). Registering a name again
// replaces its recorder in place, keeping the original position — so a
// host that re-traces "cake" and "goto" per request keeps stable trace
// pids. The recorder is read live on each request: whatever spans it holds
// at download time are what the trace shows.
func RegisterProcess(name string, rec *Recorder) {
	debugMu.Lock()
	defer debugMu.Unlock()
	for i := range debugProcs {
		if debugProcs[i].Name == name {
			debugProcs[i].Rec = rec
			return
		}
	}
	debugProcs = append(debugProcs, Process{Name: name, Rec: rec})
}

// RegisteredProcesses returns a snapshot of the registered trace processes.
func RegisteredProcesses() []Process {
	debugMu.Lock()
	defer debugMu.Unlock()
	out := make([]Process, len(debugProcs))
	copy(out, debugProcs)
	return out
}

// SetConformance publishes a conformance report (any JSON-marshalable
// value; in practice *conformance.Report) as the latest one served on
// /debug/conformance.json. The obs package takes it as an opaque value so
// the conformance layer can depend on obs without a cycle.
func SetConformance(report any) {
	debugMu.Lock()
	defer debugMu.Unlock()
	latestConf, hasConf = report, true
}

// LatestConformance returns the most recently published conformance report,
// or ok=false when none has been published yet.
func LatestConformance() (any, bool) {
	debugMu.Lock()
	defer debugMu.Unlock()
	return latestConf, hasConf
}

// DebugHandler returns the debug server's routes on a fresh mux, so hosts
// can mount them on their own server (or tests on httptest) without
// binding a socket:
//
//	/                        index of everything below
//	/metrics                 Prometheus text exposition of ExecMetrics
//	/debug/vars              expvar JSON (includes cake_metrics)
//	/debug/pprof/...         standard pprof handlers
//	/debug/trace.json        Chrome trace of all registered processes
//	/debug/timeline.json     per-process bandwidth timeline + stats (?buckets=N)
//	/debug/conformance.json  latest conformance report (404 until published)
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", serveIndex)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace.json", serveTrace)
	mux.HandleFunc("/debug/timeline.json", serveTimeline)
	mux.HandleFunc("/debug/conformance.json", serveConformance)
	return mux
}

func serveIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>cake debug</title></head><body>
<h1>cake debug server</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — pprof profiles</li>
<li><a href="/debug/trace.json">/debug/trace.json</a> — Chrome trace (load in Perfetto)</li>
<li><a href="/debug/timeline.json">/debug/timeline.json</a> — bandwidth timelines (?buckets=N)</li>
<li><a href="/debug/conformance.json">/debug/conformance.json</a> — latest conformance report</li>
</ul></body></html>`)
}

func serveTrace(w http.ResponseWriter, r *http.Request) {
	procs := RegisteredProcesses()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="cake-trace.json"`)
	if err := WriteChromeTrace(w, procs...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// timelineEntry is one registered process's bucketed bandwidth view.
type timelineEntry struct {
	Name     string   `json:"name"`
	Stats    BWStats  `json:"stats"`
	Timeline Timeline `json:"timeline"`
}

func serveTimeline(w http.ResponseWriter, r *http.Request) {
	buckets := 12
	if q := r.URL.Query().Get("buckets"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > 1_000_000 {
			http.Error(w, "buckets must be an integer in [1, 1000000]", http.StatusBadRequest)
			return
		}
		buckets = n
	}
	entries := []timelineEntry{}
	for _, p := range RegisteredProcesses() {
		tl := NewTimelineN(p.Rec.Spans(), buckets)
		entries = append(entries, timelineEntry{Name: p.Name, Stats: tl.Stats(), Timeline: tl})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"buckets": buckets, "processes": entries})
}

func serveConformance(w http.ResponseWriter, r *http.Request) {
	report, ok := LatestConformance()
	if !ok {
		http.Error(w, "no conformance report published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(report)
}

// DebugServer is a running debug HTTP server handle.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the server's bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down; in-flight requests are abandoned.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. "localhost:6060" or ":0" for an ephemeral port)
// and serves DebugHandler on it in a background goroutine, returning once
// the listener is bound. The caller owns the returned handle and should
// Close it on shutdown.
func Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}
