// Live debug server for long-running hosts: one stdlib-only HTTP endpoint
// bundle exposing everything the observability layer knows — Prometheus
// metrics, expvar, pprof, on-demand Chrome-trace download, bandwidth
// timelines, and the latest model-conformance report. A host embeds the
// executors, registers its trace recorders, and calls Serve; nothing here
// touches the GEMM hot path.
//
// Routes live in a registry: the built-in bundle plus whatever other
// packages contribute via HandleDebug (e.g. obs/reqtrace's request-lifecycle
// endpoints). The index page is generated from the same registry snapshot
// the mux is built from, so "/" always lists exactly what is mounted.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
)

var (
	debugMu    sync.Mutex
	debugProcs []Process // registration order preserved for stable pids
	latestConf any
	hasConf    bool
)

// RegisterProcess makes a named recorder visible to the debug endpoints
// (/debug/trace.json and /debug/timeline.json). Registering a name again
// replaces its recorder in place, keeping the original position — so a
// host that re-traces "cake" and "goto" per request keeps stable trace
// pids. The recorder is read live on each request: whatever spans it holds
// at download time are what the trace shows.
func RegisterProcess(name string, rec *Recorder) {
	debugMu.Lock()
	defer debugMu.Unlock()
	for i := range debugProcs {
		if debugProcs[i].Name == name {
			debugProcs[i].Rec = rec
			return
		}
	}
	debugProcs = append(debugProcs, Process{Name: name, Rec: rec})
}

// RegisteredProcesses returns a snapshot of the registered trace processes.
func RegisteredProcesses() []Process {
	debugMu.Lock()
	defer debugMu.Unlock()
	out := make([]Process, len(debugProcs))
	copy(out, debugProcs)
	return out
}

// SetConformance publishes a conformance report (any JSON-marshalable
// value; in practice *conformance.Report) as the latest one served on
// /debug/conformance.json. The obs package takes it as an opaque value so
// the conformance layer can depend on obs without a cycle.
func SetConformance(report any) {
	debugMu.Lock()
	defer debugMu.Unlock()
	latestConf, hasConf = report, true
}

// LatestConformance returns the most recently published conformance report,
// or ok=false when none has been published yet.
func LatestConformance() (any, bool) {
	debugMu.Lock()
	defer debugMu.Unlock()
	return latestConf, hasConf
}

// DebugRoute is one debug-server endpoint: its mux pattern, a one-line
// description for the index page, and the handler.
type DebugRoute struct {
	Pattern string
	Desc    string
	Handler http.Handler
}

var (
	routesMu    sync.Mutex
	extraRoutes []DebugRoute
)

// HandleDebug contributes a route to the debug server. Packages that extend
// the observability surface (reqtrace, future serving layers) register
// their endpoints here — typically from init() — and every subsequent
// DebugHandler() mounts them and lists them on the index. Re-registering a
// pattern replaces its handler and description in place. Patterns must not
// collide with the built-in bundle (DebugHandler panics on duplicates, same
// as http.ServeMux would).
func HandleDebug(pattern, desc string, h http.Handler) {
	routesMu.Lock()
	defer routesMu.Unlock()
	for i := range extraRoutes {
		if extraRoutes[i].Pattern == pattern {
			extraRoutes[i].Desc, extraRoutes[i].Handler = desc, h
			return
		}
	}
	extraRoutes = append(extraRoutes, DebugRoute{Pattern: pattern, Desc: desc, Handler: h})
}

// builtinRoutes is the core endpoint bundle. The index route itself is
// added by DebugHandler, closed over the full snapshot.
func builtinRoutes() []DebugRoute {
	return []DebugRoute{
		{"/metrics", "Prometheus text exposition", http.HandlerFunc(serveMetrics)},
		{"/debug/vars", "expvar JSON", expvar.Handler()},
		{"/debug/pprof/", "pprof profiles", http.HandlerFunc(pprof.Index)},
		{"/debug/pprof/cmdline", "pprof cmdline", http.HandlerFunc(pprof.Cmdline)},
		{"/debug/pprof/profile", "pprof CPU profile", http.HandlerFunc(pprof.Profile)},
		{"/debug/pprof/symbol", "pprof symbol lookup", http.HandlerFunc(pprof.Symbol)},
		{"/debug/pprof/trace", "runtime execution trace", http.HandlerFunc(pprof.Trace)},
		{"/debug/trace.json", "Chrome trace (load in Perfetto)", http.HandlerFunc(serveTrace)},
		{"/debug/timeline.json", "bandwidth timelines (?buckets=N)", http.HandlerFunc(serveTimeline)},
		{"/debug/conformance.json", "latest conformance report", http.HandlerFunc(serveConformance)},
		{"/debug/corpus.json", "latest corpus epoch + per-cell trend verdicts", http.HandlerFunc(serveCorpus)},
	}
}

// DebugRoutes returns the full route set a DebugHandler built right now
// would mount (built-ins plus registered extras), sorted by pattern. The
// index test walks this to prove the index page is complete.
func DebugRoutes() []DebugRoute {
	routesMu.Lock()
	extras := make([]DebugRoute, len(extraRoutes))
	copy(extras, extraRoutes)
	routesMu.Unlock()
	all := append(builtinRoutes(), extras...)
	sort.Slice(all, func(i, j int) bool { return all[i].Pattern < all[j].Pattern })
	return all
}

// DebugHandler returns the debug server's routes on a fresh mux, so hosts
// can mount them on their own server (or tests on httptest) without binding
// a socket. The route set is snapshotted at call time; the index page is
// generated from that same snapshot.
func DebugHandler() http.Handler {
	routes := DebugRoutes()
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		serveIndex(w, routes)
	})
	for _, rt := range routes {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

func serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w)
}

// serveIndex renders the route list it is given — the exact set mounted on
// the mux — so the index can never drift from the registered endpoints.
func serveIndex(w http.ResponseWriter, routes []DebugRoute) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><head><title>cake debug</title></head><body>\n<h1>cake debug server</h1><ul>\n")
	for _, rt := range routes {
		p := html.EscapeString(rt.Pattern)
		fmt.Fprintf(w, "<li><a href=%q>%s</a> — %s</li>\n", p, p, html.EscapeString(rt.Desc))
	}
	fmt.Fprint(w, "</ul></body></html>\n")
}

func serveTrace(w http.ResponseWriter, r *http.Request) {
	procs := RegisteredProcesses()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="cake-trace.json"`)
	if err := WriteChromeTraceAll(w, procs...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// timelineEntry is one registered process's bucketed bandwidth view.
type timelineEntry struct {
	Name     string   `json:"name"`
	Stats    BWStats  `json:"stats"`
	Timeline Timeline `json:"timeline"`
}

func serveTimeline(w http.ResponseWriter, r *http.Request) {
	buckets := 12
	if q := r.URL.Query().Get("buckets"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > 1_000_000 {
			http.Error(w, "buckets must be an integer in [1, 1000000]", http.StatusBadRequest)
			return
		}
		buckets = n
	}
	entries := []timelineEntry{}
	for _, p := range RegisteredProcesses() {
		tl := NewTimelineN(p.Rec.Spans(), buckets)
		entries = append(entries, timelineEntry{Name: p.Name, Stats: tl.Stats(), Timeline: tl})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"buckets": buckets, "processes": entries})
}

func serveConformance(w http.ResponseWriter, r *http.Request) {
	report, ok := LatestConformance()
	if !ok {
		http.Error(w, "no conformance report published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(report)
}

// DebugServer is a running debug HTTP server handle.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the server's bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down; in-flight requests are abandoned.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. "localhost:6060" or ":0" for an ephemeral port)
// and serves DebugHandler on it in a background goroutine, returning once
// the listener is bound. The caller owns the returned handle and should
// Close it on shutdown.
func Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}
