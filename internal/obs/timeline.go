// Bandwidth timelines: the empirical check of the paper's constant-
// bandwidth property. Span bytes are bucketed into fixed time windows;
// a CAKE run should produce a flat series (low coefficient of variation)
// where GOTO's alternating pack bursts and partial-C streaming produce a
// spiky one on the same shape (§3, §5.2).
package obs

import "math"

// Timeline is DRAM traffic bucketed into fixed wall-clock windows covering
// one traced execution. Bytes[i] is the traffic attributed to
// [OriginNs + i·BucketNs, OriginNs + (i+1)·BucketNs).
type Timeline struct {
	OriginNs int64     `json:"origin_ns"`
	BucketNs int64     `json:"bucket_ns"`
	Bytes    []float64 `json:"bytes"`
}

// NewTimeline buckets the spans' bytes into windows of bucketNs
// nanoseconds. A span's bytes are spread over the buckets it overlaps in
// proportion to the time spent in each (so a span straddling a boundary
// splits, and a long pack burst raises several buckets); zero-duration
// spans credit their containing bucket in full. PhaseReuse spans are
// excluded — they represent traffic that never reached DRAM. Buckets the
// execution passed through without traffic stay zero; they count toward
// the variation statistics, exactly like an idle memory bus.
//
// Degenerate inputs degrade to an empty timeline rather than panicking or
// allocating nonsense: a non-positive bucket size (which would otherwise
// demand one bucket per nanosecond of the run) and span sets with no DRAM
// traffic (empty, or reuse events only) both return a timeline with zero
// buckets, which Stats reduces to all-zero statistics.
func NewTimeline(spans []Span, bucketNs int64) Timeline {
	if bucketNs <= 0 {
		return Timeline{}
	}
	minStart, maxEnd := int64(math.MaxInt64), int64(math.MinInt64)
	any := false
	for _, s := range spans {
		if s.Phase == PhaseReuse {
			continue
		}
		any = true
		minStart = min(minStart, s.StartNs)
		maxEnd = max(maxEnd, s.EndNs())
	}
	if !any {
		return Timeline{BucketNs: bucketNs}
	}
	n := int((maxEnd - minStart + bucketNs - 1) / bucketNs) // ceil; no trailing empty bucket when the range is boundary-aligned
	if n < 1 {
		n = 1
	}
	t := Timeline{OriginNs: minStart, BucketNs: bucketNs, Bytes: make([]float64, n)}
	for _, s := range spans {
		if s.Phase == PhaseReuse || s.Bytes == 0 {
			continue
		}
		start := s.StartNs - minStart
		if s.DurNs <= 0 {
			b := start / bucketNs
			if b >= int64(n) { // instant span exactly on the end boundary
				b = int64(n) - 1
			}
			t.Bytes[b] += float64(s.Bytes)
			continue
		}
		end := start + s.DurNs
		perNs := float64(s.Bytes) / float64(s.DurNs)
		for b := start / bucketNs; b*bucketNs < end; b++ {
			lo := max(start, b*bucketNs)
			hi := min(end, (b+1)*bucketNs)
			t.Bytes[b] += perNs * float64(hi-lo)
		}
	}
	return t
}

// NewTimelineN buckets the spans into exactly buckets windows spanning the
// traced duration, so two executions of different lengths can be compared
// bucket-for-bucket. A non-positive bucket count or a span set with no
// DRAM traffic returns an empty timeline, like NewTimeline.
func NewTimelineN(spans []Span, buckets int) Timeline {
	if buckets < 1 {
		return Timeline{}
	}
	minStart, maxEnd := int64(math.MaxInt64), int64(math.MinInt64)
	any := false
	for _, s := range spans {
		if s.Phase == PhaseReuse {
			continue
		}
		any = true
		minStart = min(minStart, s.StartNs)
		maxEnd = max(maxEnd, s.EndNs())
	}
	if !any {
		return Timeline{BucketNs: 1}
	}
	bucketNs := (maxEnd - minStart + int64(buckets)) / int64(buckets) // ceil, ≥1
	if bucketNs < 1 {
		bucketNs = 1
	}
	return NewTimeline(spans, bucketNs)
}

// BWStats summarises a timeline as bandwidth numbers.
type BWStats struct {
	Buckets  int     `json:"buckets"`
	MeanBps  float64 `json:"mean_bps"` // mean DRAM bandwidth over the run
	PeakBps  float64 `json:"peak_bps"` // busiest bucket
	CoV      float64 `json:"cov"`      // stddev/mean of per-bucket traffic
	TotalB   float64 `json:"total_bytes"`
	SpanNs   int64   `json:"span_ns"` // wall-clock extent covered
	BucketNs int64   `json:"bucket_ns"`
}

// Stats reduces the timeline to mean/peak bandwidth and the coefficient of
// variation — the paper's constant-bandwidth property predicts a low CoV
// for CAKE and a high one for GOTO on the same shape.
func (t Timeline) Stats() BWStats {
	st := BWStats{Buckets: len(t.Bytes), BucketNs: t.BucketNs, SpanNs: int64(len(t.Bytes)) * t.BucketNs}
	if len(t.Bytes) == 0 {
		return st
	}
	var sum, peak float64
	for _, b := range t.Bytes {
		sum += b
		peak = math.Max(peak, b)
	}
	mean := sum / float64(len(t.Bytes))
	var varSum float64
	for _, b := range t.Bytes {
		d := b - mean
		varSum += d * d
	}
	secPerBucket := float64(t.BucketNs) / 1e9
	st.TotalB = sum
	st.MeanBps = mean / secPerBucket
	st.PeakBps = peak / secPerBucket
	if mean > 0 {
		st.CoV = math.Sqrt(varSum/float64(len(t.Bytes))) / mean
	}
	return st
}
