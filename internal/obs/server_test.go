package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// debugGet fetches a path from a DebugHandler-backed test server and
// returns status and body.
func debugGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// resetDebugState clears process registrations and the published report so
// tests do not see each other's state.
func resetDebugState() {
	debugMu.Lock()
	debugProcs = nil
	latestConf, hasConf = nil, false
	debugMu.Unlock()
}

func TestDebugHandlerEndpoints(t *testing.T) {
	resetDebugState()
	t.Cleanup(resetDebugState)

	EnableMetrics()
	defer DisableMetrics()
	AccountGemm("cake", 4, 1024, 0, 10, 20, 5)
	MetricsFor("cake").ObservePhase(PhasePack, 500)

	rec := NewRecorder(1, 16)
	rec.Record(0, Span{StartNs: 0, DurNs: 1000, Bytes: 4096, Phase: PhasePack})
	rec.Record(0, Span{StartNs: 1000, DurNs: 3000, Bytes: 0, Phase: PhaseCompute})
	RegisterProcess("cake", rec)

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	t.Run("index", func(t *testing.T) {
		code, body := debugGet(t, srv, "/")
		if code != http.StatusOK || !strings.Contains(body, "/debug/trace.json") {
			t.Fatalf("index: code %d, body %q", code, body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body := debugGet(t, srv, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics code %d", code)
		}
		for _, want := range []string{
			`cake_gemms_total{executor="cake"}`,
			`# TYPE cake_packed_bytes_total counter`,
			`# TYPE cake_phase_duration_seconds histogram`,
			`cake_phase_duration_seconds_bucket{executor="cake",phase="pack",le="+Inf"} 1`,
			`cake_phase_duration_seconds_count{executor="cake",phase="pack"} 1`,
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("/metrics missing %q in:\n%s", want, body)
			}
		}
	})

	t.Run("expvar", func(t *testing.T) {
		code, body := debugGet(t, srv, "/debug/vars")
		if code != http.StatusOK {
			t.Fatalf("/debug/vars code %d", code)
		}
		var decoded map[string]any
		if err := json.Unmarshal([]byte(body), &decoded); err != nil {
			t.Fatalf("/debug/vars not JSON: %v", err)
		}
		if _, ok := decoded["cake_metrics"]; !ok {
			t.Fatal("/debug/vars missing cake_metrics")
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body := debugGet(t, srv, "/debug/trace.json")
		if code != http.StatusOK {
			t.Fatalf("/debug/trace.json code %d", code)
		}
		var f decodedFile
		if err := json.Unmarshal([]byte(body), &f); err != nil {
			t.Fatalf("/debug/trace.json not a trace file: %v", err)
		}
		var sawSpan bool
		for _, ev := range f.TraceEvents {
			if ev.Ph == "X" && ev.Name == "pack" {
				sawSpan = true
			}
		}
		if !sawSpan {
			t.Fatalf("trace has no pack span: %+v", f.TraceEvents)
		}
	})

	t.Run("timeline", func(t *testing.T) {
		code, body := debugGet(t, srv, "/debug/timeline.json?buckets=4")
		if code != http.StatusOK {
			t.Fatalf("/debug/timeline.json code %d", code)
		}
		var decoded struct {
			Buckets   int             `json:"buckets"`
			Processes []timelineEntry `json:"processes"`
		}
		if err := json.Unmarshal([]byte(body), &decoded); err != nil {
			t.Fatalf("/debug/timeline.json not JSON: %v", err)
		}
		if decoded.Buckets != 4 || len(decoded.Processes) != 1 {
			t.Fatalf("timeline = %+v", decoded)
		}
		p := decoded.Processes[0]
		if p.Name != "cake" || p.Stats.TotalB != 4096 || len(p.Timeline.Bytes) > 4 {
			t.Fatalf("timeline entry = %+v", p)
		}

		if code, _ := debugGet(t, srv, "/debug/timeline.json?buckets=bogus"); code != http.StatusBadRequest {
			t.Fatalf("bogus buckets param: code %d, want 400", code)
		}
		if code, _ := debugGet(t, srv, "/debug/timeline.json?buckets=-1"); code != http.StatusBadRequest {
			t.Fatalf("negative buckets param: code %d, want 400", code)
		}
	})

	t.Run("conformance", func(t *testing.T) {
		code, _ := debugGet(t, srv, "/debug/conformance.json")
		if code != http.StatusNotFound {
			t.Fatalf("conformance before publish: code %d, want 404", code)
		}
		SetConformance(map[string]any{"pass": true, "executor": "cake"})
		code, body := debugGet(t, srv, "/debug/conformance.json")
		if code != http.StatusOK {
			t.Fatalf("conformance after publish: code %d", code)
		}
		var decoded map[string]any
		if err := json.Unmarshal([]byte(body), &decoded); err != nil {
			t.Fatalf("conformance not JSON: %v", err)
		}
		if decoded["pass"] != true {
			t.Fatalf("conformance body = %v", decoded)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body := debugGet(t, srv, "/debug/pprof/")
		if code != http.StatusOK || !strings.Contains(body, "goroutine") {
			t.Fatalf("/debug/pprof/: code %d", code)
		}
	})
}

// TestIndexListsEveryRoute proves the index page cannot drift from the
// mounted route set: every pattern DebugRoutes() reports — built-ins plus
// anything contributed through HandleDebug — must appear on the index, and
// must actually be mounted on the handler the index came from.
func TestIndexListsEveryRoute(t *testing.T) {
	resetDebugState()
	t.Cleanup(resetDebugState)

	HandleDebug("/debug/test-extra.json", "index-completeness probe",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"ok":true}`)
		}))

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	code, index := debugGet(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("index code %d", code)
	}
	routes := DebugRoutes()
	if len(routes) == 0 {
		t.Fatal("DebugRoutes returned nothing")
	}
	for _, rt := range routes {
		if !strings.Contains(index, ">"+rt.Pattern+"</a>") {
			t.Errorf("index is missing registered route %s", rt.Pattern)
		}
		if rt.Desc == "" {
			t.Errorf("route %s has no description for the index", rt.Pattern)
		}
	}

	// The registered extra is mounted, not just listed.
	code, body := debugGet(t, srv, "/debug/test-extra.json")
	if code != http.StatusOK || body != `{"ok":true}` {
		t.Fatalf("extra route: code %d, body %q", code, body)
	}

	// Re-registering a pattern replaces in place, without duplicating.
	before := len(DebugRoutes())
	HandleDebug("/debug/test-extra.json", "replaced probe", http.NotFoundHandler())
	after := DebugRoutes()
	if len(after) != before {
		t.Fatalf("re-register changed route count %d -> %d", before, len(after))
	}
	found := false
	for _, rt := range after {
		if rt.Pattern == "/debug/test-extra.json" && rt.Desc == "replaced probe" {
			found = true
		}
	}
	if !found {
		t.Fatal("re-registered route did not replace in place")
	}
}

func TestRegisterProcessReplaceKeepsOrder(t *testing.T) {
	resetDebugState()
	t.Cleanup(resetDebugState)

	r1, r2, r3 := NewRecorder(1, 4), NewRecorder(1, 4), NewRecorder(1, 4)
	RegisterProcess("cake", r1)
	RegisterProcess("goto", r2)
	RegisterProcess("cake", r3) // replaces, keeps position

	procs := RegisteredProcesses()
	if len(procs) != 2 {
		t.Fatalf("processes = %d, want 2", len(procs))
	}
	if procs[0].Name != "cake" || procs[0].Rec != r3 {
		t.Fatalf("slot 0 = %q (rec replaced: %v)", procs[0].Name, procs[0].Rec == r3)
	}
	if procs[1].Name != "goto" || procs[1].Rec != r2 {
		t.Fatalf("slot 1 = %q", procs[1].Name)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	resetDebugState()
	t.Cleanup(resetDebugState)

	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /metrics code %d", resp.StatusCode)
	}
}
