package obs

import (
	"encoding/json"
	"expvar"
	"testing"
)

func TestMetricsDisabledByDefault(t *testing.T) {
	DisableMetrics()
	if m := MetricsFor("cake"); m != nil {
		t.Fatalf("MetricsFor returned %v while disabled", m)
	}
	AccountGemm("cake", 1, 1, 1, 1, 1, 1) // must be a no-op, not a panic
}

func TestMetricsAccounting(t *testing.T) {
	EnableMetrics()
	defer DisableMetrics()
	EnableMetrics() // idempotent: expvar forbids re-registering the map

	base := MetricsFor("cake").Gemms.Value()
	AccountGemm("cake", 7, 100, 50, 10, 20, 5)
	AccountGemm("cake", 3, 900, 0, 30, 40, 0)

	m := MetricsFor("cake")
	if got := m.Gemms.Value() - base; got != 2 {
		t.Fatalf("Gemms delta = %d, want 2", got)
	}
	checks := []struct {
		name string
		v    *expvar.Int
		min  int64
	}{
		{"blocks", &m.Blocks, 10},
		{"packed_bytes", &m.PackedBytes, 1000},
		{"reused_bytes", &m.ReusedBytes, 50},
		{"pack_nanos", &m.PackNanos, 40},
		{"compute_nanos", &m.ComputeNanos, 60},
		{"overlap_nanos", &m.OverlapNanos, 5},
	}
	for _, c := range checks {
		if c.v.Value() < c.min {
			t.Fatalf("%s = %d, want ≥ %d", c.name, c.v.Value(), c.min)
		}
	}

	// The registry must be visible on the expvar endpoint as valid JSON.
	root := expvar.Get("cake_metrics")
	if root == nil {
		t.Fatal("cake_metrics not published")
	}
	var decoded map[string]map[string]any
	if err := json.Unmarshal([]byte(root.String()), &decoded); err != nil {
		t.Fatalf("cake_metrics expvar is not valid JSON: %v\n%s", err, root.String())
	}
	if _, ok := decoded["cake"]["gemms"]; !ok {
		t.Fatalf("cake sub-map missing gemms: %v", decoded)
	}
	// The phase-duration histograms publish as nested JSON objects.
	hist, ok := decoded["cake"]["pack_duration_ns"].(map[string]any)
	if !ok {
		t.Fatalf("pack_duration_ns is not a JSON object: %v", decoded["cake"]["pack_duration_ns"])
	}
	for _, key := range []string{"count", "sum_ns", "p50_ns", "p95_ns", "p99_ns", "buckets"} {
		if _, ok := hist[key]; !ok {
			t.Fatalf("pack_duration_ns missing %q: %v", key, hist)
		}
	}
}

func TestMetricsSeparateExecutors(t *testing.T) {
	EnableMetrics()
	defer DisableMetrics()
	cakeBase := MetricsFor("cake").Blocks.Value()
	gotoBase := MetricsFor("goto").Blocks.Value()
	AccountGemm("goto", 11, 0, 0, 0, 0, 0)
	if got := MetricsFor("goto").Blocks.Value() - gotoBase; got != 11 {
		t.Fatalf("goto blocks delta = %d, want 11", got)
	}
	if got := MetricsFor("cake").Blocks.Value() - cakeBase; got != 0 {
		t.Fatalf("cake blocks delta = %d, want 0 (cross-talk)", got)
	}
}
