// Cumulative latency histograms for phase durations. The executors' span
// instrumentation points feed pack/compute durations in here (when metrics
// are enabled on a traced run), giving long-running hosts tail-latency
// visibility — p50/p95/p99 of macro-kernel and packing times — without
// retaining the spans themselves. Buckets are log-spaced (powers of two
// from 256 ns), so six orders of magnitude of span durations fit in a few
// dozen atomic counters and the record path is one shift plus two adds.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

const (
	// histMinShift makes the first bucket's upper bound 2^histMinShift ns
	// (256 ns — below that a span is noise next to the clock reads that
	// bound it).
	histMinShift = 8
	// histBucketCount spans 256 ns × 2^35 ≈ 2.4 h, far past any GEMM phase.
	histBucketCount = 36
)

// HistBucketBound returns the inclusive upper bound (ns) of bucket i.
func HistBucketBound(i int) int64 { return int64(1) << (histMinShift + i) }

// Histogram is a fixed, log-spaced latency histogram safe for concurrent
// Observe calls (each observation is two atomic adds). The zero value is
// ready to use. It implements expvar.Var, so it can be published directly
// into an expvar.Map.
type Histogram struct {
	counts   [histBucketCount + 1]atomic.Int64 // +1: overflow bucket
	observed atomic.Int64
	sumNs    atomic.Int64
}

// histBucket maps a duration to its bucket index: the smallest i with
// durNs ≤ 2^(histMinShift+i), clamped into [0, histBucketCount] (the last
// slot is the overflow bucket).
func histBucket(durNs int64) int {
	if durNs <= HistBucketBound(0) {
		return 0
	}
	i := bits.Len64(uint64(durNs-1)) - histMinShift
	if i > histBucketCount {
		return histBucketCount
	}
	return i
}

// Observe records one span duration. Non-positive durations count as the
// smallest bucket (an instant span still happened).
func (h *Histogram) Observe(durNs int64) {
	if durNs < 0 {
		durNs = 0
	}
	h.counts[histBucket(durNs)].Add(1)
	h.observed.Add(1)
	h.sumNs.Add(durNs)
}

// Count returns how many durations have been observed.
func (h *Histogram) Count() int64 { return h.observed.Load() }

// SumNanos returns the total of all observed durations.
func (h *Histogram) SumNanos() int64 { return h.sumNs.Load() }

// Quantile returns an upper bound (ns) on the q-quantile (0 < q ≤ 1) of the
// observed durations: the upper bound of the bucket holding the ⌈q·count⌉-th
// observation. Returns 0 with no observations and +Inf when the quantile
// falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.observed.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBucketCount; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return float64(HistBucketBound(i))
		}
	}
	return math.Inf(1)
}

// P50 returns the median duration upper bound in nanoseconds.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile duration upper bound in nanoseconds.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile duration upper bound in nanoseconds.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// snapshot copies the bucket counters once, so a render sees a consistent
// (if slightly stale) view while Observe keeps running.
func (h *Histogram) snapshot() (counts [histBucketCount + 1]int64, total, sum int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.observed.Load(), h.sumNs.Load()
}

// String renders the histogram as JSON for expvar: count, sum and the
// quantile bounds, plus the non-empty buckets keyed by their upper bound.
func (h *Histogram) String() string {
	counts, total, sum := h.snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sum_ns":%d,"p50_ns":%s,"p95_ns":%s,"p99_ns":%s,"buckets":{`,
		total, sum, jsonFloat(h.P50()), jsonFloat(h.P95()), jsonFloat(h.P99()))
	first := true
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if i == histBucketCount {
			fmt.Fprintf(&b, `"+Inf":%d`, c)
		} else {
			fmt.Fprintf(&b, `"%d":%d`, HistBucketBound(i), c)
		}
	}
	b.WriteString("}}")
	return b.String()
}

// jsonFloat formats a float for JSON, mapping ±Inf (not representable) to
// null.
func jsonFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "null"
	}
	return fmt.Sprintf("%g", v)
}
