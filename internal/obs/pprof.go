// pprof label plumbing: traced executions tag their worker-pool jobs with
// {executor, phase} goroutine labels, so CPU profiles taken during a run
// split samples by executor and phase (pprof -tagfocus phase=pack). The
// contexts are built once per executor at construction; the pool applies
// them per job, never per work item.
package obs

import (
	"context"
	"runtime/pprof"
)

// LabelCtx returns a context carrying pprof labels identifying an
// executor's phase, for use with the worker pool's *Labeled variants.
func LabelCtx(executor string, phase Phase) context.Context {
	return pprof.WithLabels(context.Background(),
		pprof.Labels("executor", executor, "phase", phase.String()))
}
