package obs

import (
	"expvar"
	"strings"
	"testing"
)

func TestPublishEngineExpvarAndReplace(t *testing.T) {
	calls := 0
	PublishEngine("test-engine", func() EngineStats {
		calls++
		return EngineStats{InFlight: 3, TierTiny: 7}
	})
	v := expvar.Get("cake_engine")
	if v == nil {
		t.Fatal("cake_engine expvar not published")
	}
	s := v.String()
	if !strings.Contains(s, "test-engine") || !strings.Contains(s, "\"TierTiny\":7") {
		t.Fatalf("cake_engine JSON missing fields: %s", s)
	}
	if calls == 0 {
		t.Fatal("stats callback never ran")
	}

	// Re-publishing the same name must swap the callback, not panic on a
	// duplicate expvar and not keep serving the stale closure.
	PublishEngine("test-engine", func() EngineStats { return EngineStats{InFlight: 9} })
	if s := expvar.Get("cake_engine").String(); !strings.Contains(s, "\"InFlight\":9") {
		t.Fatalf("replaced callback not visible: %s", s)
	}
}

func TestWritePrometheusEngineFamilies(t *testing.T) {
	PublishEngine("prom-engine", func() EngineStats {
		return EngineStats{
			InFlight: 1, Queued: 2, QueuedTotal: 30, Rejected: 4,
			TierTiny: 100, TierSmall: 50, TierLarge: 5,
			LeaseNew: 6, LeaseReused: 60,
		}
	})
	var b strings.Builder
	writeEnginePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE cake_engine_in_flight gauge",
		`cake_engine_in_flight{engine="prom-engine"} 1`,
		`cake_engine_queue_depth{engine="prom-engine"} 2`,
		"# TYPE cake_engine_queued_total counter",
		`cake_engine_queued_total{engine="prom-engine"} 30`,
		`cake_engine_rejected_total{engine="prom-engine"} 4`,
		`cake_engine_tier_hits_total{engine="prom-engine",tier="tiny"} 100`,
		`cake_engine_tier_hits_total{engine="prom-engine",tier="small"} 50`,
		`cake_engine_tier_hits_total{engine="prom-engine",tier="large"} 5`,
		`cake_engine_leases_total{engine="prom-engine",kind="new"} 6`,
		`cake_engine_leases_total{engine="prom-engine",kind="reused"} 60`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
