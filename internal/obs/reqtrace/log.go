package reqtrace

import (
	"context"
	"log/slog"
	"sync/atomic"
)

// Structured logging for the serving path: engine lifecycle, resident
// evictions, SLO breaches, and snapshot trips emit through one package-wide
// *slog.Logger. Silent by default — the default handler drops everything
// before formatting (Enabled() == false, so callers don't even build the
// records) — and opt-in via SetLogger. Nothing on the request hot path logs:
// emission happens on lifecycle edges and render paths only.

// discardHandler is a zero-cost slog handler: Enabled reports false, so the
// slog front end skips record construction entirely. (Equivalent to Go
// 1.24's slog.DiscardHandler, kept local so the package does not depend on
// the newest stdlib surface.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(discardHandler{}))
}

// SetLogger installs the logger the serving path emits through. Nil
// restores the silent default. Safe to call concurrently with logging.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(discardHandler{})
	}
	logger.Store(l)
}

// L returns the current package logger (never nil).
func L() *slog.Logger { return logger.Load() }
