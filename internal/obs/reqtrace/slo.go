package reqtrace

import (
	"sync/atomic"
	"time"
)

// Objective declares one SLO over the engine's request stream: "Goal
// fraction of matching requests complete OK within Target". Matching is by
// tier and/or tenant; empty selectors match everything, so one Objective
// can cover the whole engine, one tier, one tenant, or one (tier, tenant)
// pair. A zero Target makes it an availability-only objective (any OK
// outcome is good regardless of latency).
type Objective struct {
	// Name identifies the objective in exports. Empty derives a name from
	// the selectors ("tier=large", "tenant=acme", "all").
	Name string
	// Tier restricts the objective to one dispatch tier ("tiny", "small",
	// "large"); empty matches all tiers.
	Tier string
	// Tenant restricts the objective to one tenant label; empty matches all.
	Tenant string
	// Target is the latency bound a good request must meet. 0 means
	// availability-only.
	Target time.Duration
	// Goal is the required good fraction, in (0, 1). Out-of-range values
	// fall back to DefaultGoal.
	Goal float64
	// Windows are the burn-rate windows. Empty means DefaultWindows.
	Windows []time.Duration
}

const (
	// DefaultGoal is the objective goal when none (or an invalid one) is
	// declared: 99.9% of matching requests good.
	DefaultGoal = 0.999
	// sloWindowBuckets is the resolution of each sliding window: 32 buckets,
	// so a 5m window rotates in ~9.4s steps. Power of two keeps the hot-path
	// index a mask-free modulo of small cost.
	sloWindowBuckets = 32
)

// DefaultWindows are the burn-rate windows used when an Objective declares
// none: a fast window that catches hard outages and a slow one that catches
// simmering burn (the classic multi-window pairing).
var DefaultWindows = []time.Duration{5 * time.Minute, time.Hour}

// sloBucket is one slot of a sliding window. idx holds the absolute bucket
// number the slot currently represents; a writer arriving in a newer bucket
// CAS-claims the slot and resets the counters. The reset is racy by a few
// counts against concurrent adders — acceptable for burn-rate accounting,
// in exchange for a lock-free hot path.
type sloBucket struct {
	idx  atomic.Int64
	good atomic.Int64
	bad  atomic.Int64
}

// sloWindow is one sliding burn-rate window.
type sloWindow struct {
	span     time.Duration
	bucketNs int64
	buckets  [sloWindowBuckets]sloBucket
	breached atomic.Bool // last rendered burn state, for transition logging
}

// observe folds one request into the window's current bucket.
//
//cake:hotpath
func (w *sloWindow) observe(good bool, nowNs int64) {
	abs := nowNs / w.bucketNs
	b := &w.buckets[abs%sloWindowBuckets]
	if cur := b.idx.Load(); cur != abs {
		if b.idx.CompareAndSwap(cur, abs) {
			b.good.Store(0)
			b.bad.Store(0)
		}
	}
	if good {
		b.good.Add(1)
	} else {
		b.bad.Add(1)
	}
}

// totals sums the buckets still inside the window at nowNs.
func (w *sloWindow) totals(nowNs int64) (good, bad int64) {
	abs := nowNs / w.bucketNs
	min := abs - sloWindowBuckets + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if ix := b.idx.Load(); ix >= min && ix <= abs {
			good += b.good.Load()
			bad += b.bad.Load()
		}
	}
	return good, bad
}

// sloTracker is one Objective's live state: lifetime error-budget counters
// plus the sliding windows.
type sloTracker struct {
	obj      Objective
	targetNs int64
	good     atomic.Int64
	bad      atomic.Int64
	windows  []*sloWindow
}

func newSLOTracker(o Objective) *sloTracker {
	if !(o.Goal > 0 && o.Goal < 1) {
		o.Goal = DefaultGoal
	}
	if o.Name == "" {
		switch {
		case o.Tier != "" && o.Tenant != "":
			o.Name = "tier=" + o.Tier + ",tenant=" + o.Tenant
		case o.Tier != "":
			o.Name = "tier=" + o.Tier
		case o.Tenant != "":
			o.Name = "tenant=" + o.Tenant
		default:
			o.Name = "all"
		}
	}
	wins := o.Windows
	if len(wins) == 0 {
		wins = DefaultWindows
	}
	t := &sloTracker{obj: o, targetNs: int64(o.Target)}
	for _, span := range wins {
		if span <= 0 {
			continue
		}
		bucketNs := int64(span) / sloWindowBuckets
		if bucketNs < 1 {
			bucketNs = 1
		}
		t.windows = append(t.windows, &sloWindow{span: span, bucketNs: bucketNs})
	}
	return t
}

// observe folds one completed request into the objective, if it matches.
//
//cake:hotpath
func (s *sloTracker) observe(rec Record, nowNs int64) {
	if s.obj.Tier != "" && rec.Tier != s.obj.Tier {
		return
	}
	if s.obj.Tenant != "" && rec.Tenant != s.obj.Tenant {
		return
	}
	good := rec.Outcome == OutcomeOK && (s.targetNs <= 0 || rec.DurNs <= s.targetNs)
	if good {
		s.good.Add(1)
	} else {
		s.bad.Add(1)
	}
	for _, w := range s.windows {
		w.observe(good, nowNs)
	}
}

// WindowStatus is one burn-rate window's rendered state.
//
// BurnRate is badFraction / (1 - Goal): the rate at which the error budget
// is being spent, normalized so 1.0 means "spending exactly the budget" —
// sustained burn > 1 over the window exhausts the budget before the period
// ends, burn ≥ 1/(1-Goal) means every request is bad.
type WindowStatus struct {
	Window      string  `json:"window"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// Status is one objective's rendered state for /debug/slo.json and the
// cake_slo expvar.
//
// BudgetRemaining is the lifetime error budget left as a fraction of the
// budget: 1 - bad / ((1-Goal) · total). 1 means untouched, 0 exhausted,
// negative overspent.
type Status struct {
	Name            string         `json:"name"`
	Tier            string         `json:"tier,omitempty"`
	Tenant          string         `json:"tenant,omitempty"`
	TargetNs        int64          `json:"target_ns,omitempty"`
	Goal            float64        `json:"goal"`
	Good            int64          `json:"good"`
	Bad             int64          `json:"bad"`
	BudgetRemaining float64        `json:"budget_remaining"`
	Windows         []WindowStatus `json:"windows"`
}

// status renders the tracker at nowNs, logging burn-state transitions
// (burn > 1 over a window = breach) through the package logger. Render-time
// logging keeps slog (and its interface boxing) off the request hot path.
func (s *sloTracker) status(nowNs int64) Status {
	st := Status{
		Name:     s.obj.Name,
		Tier:     s.obj.Tier,
		Tenant:   s.obj.Tenant,
		TargetNs: s.targetNs,
		Goal:     s.obj.Goal,
		Good:     s.good.Load(),
		Bad:      s.bad.Load(),
	}
	budget := (1 - s.obj.Goal) * float64(st.Good+st.Bad)
	if budget > 0 {
		st.BudgetRemaining = 1 - float64(st.Bad)/budget
	} else {
		st.BudgetRemaining = 1
	}
	for _, w := range s.windows {
		good, bad := w.totals(nowNs)
		ws := WindowStatus{Window: w.span.String(), Good: good, Bad: bad}
		if total := good + bad; total > 0 {
			ws.BadFraction = float64(bad) / float64(total)
			ws.BurnRate = ws.BadFraction / (1 - s.obj.Goal)
		}
		burning := ws.BurnRate > 1
		if w.breached.Swap(burning) != burning {
			if burning {
				L().Warn("SLO burn-rate breach",
					"objective", s.obj.Name, "window", ws.Window,
					"burn_rate", ws.BurnRate, "bad", bad, "good", good)
			} else {
				L().Info("SLO burn recovered",
					"objective", s.obj.Name, "window", ws.Window)
			}
		}
		st.Windows = append(st.Windows, ws)
	}
	return st
}

// SLOStatuses renders every objective's current state (burn rates computed
// at now).
func (t *Tracer) SLOStatuses(now time.Time) []Status {
	if t == nil {
		return nil
	}
	nowNs := now.UnixNano()
	out := make([]Status, 0, len(t.slos))
	for _, s := range t.slos {
		out = append(out, s.status(nowNs))
	}
	return out
}
