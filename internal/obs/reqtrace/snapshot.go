package reqtrace

import (
	"fmt"
	"sync"
	"time"
)

// Reason classifies what froze a snapshot.
type Reason uint8

const (
	// ReasonSaturation: a request was rejected at the admission bound — the
	// ring at that instant is the evidence of what filled the queue.
	ReasonSaturation Reason = iota
	// ReasonLatency: a request ran slower than the configured multiple of
	// its tier's rolling p99.
	ReasonLatency
	// ReasonConformance: the model-conformance layer published a failing
	// report — the recent requests are the runs that drifted from the model.
	ReasonConformance
	reasonCount
)

func (r Reason) String() string {
	switch r {
	case ReasonSaturation:
		return "saturation"
	case ReasonLatency:
		return "latency"
	case ReasonConformance:
		return "conformance"
	}
	return "unknown"
}

// MarshalJSON renders the reason as its name.
func (r Reason) MarshalJSON() ([]byte, error) { return []byte(`"` + r.String() + `"`), nil }

// UnmarshalJSON parses the name form back, so served snapshots round-trip.
func (r *Reason) UnmarshalJSON(b []byte) error {
	for c := ReasonSaturation; c < reasonCount; c++ {
		if string(b) == `"`+c.String()+`"` {
			*r = c
			return nil
		}
	}
	return fmt.Errorf("reqtrace: unknown snapshot reason %s", b)
}

// Snapshot is one frozen flight-recorder ring: the anomaly that tripped it,
// the trigger record (zero-valued for conformance trips, which have no
// single offending request), and the retained records at the moment of the
// trip, oldest first. Snapshots are immutable once taken and served as JSON
// on /debug/snapshots.json.
type Snapshot struct {
	Engine  string   `json:"engine"`
	Reason  Reason   `json:"reason"`
	AtNs    int64    `json:"at_ns"`
	Detail  string   `json:"detail,omitempty"`
	Trigger Record   `json:"trigger"`
	Records []Record `json:"records"`
}

// trip freezes the ring. Off the hot path by design: trips are rare
// (saturation, extreme stragglers, conformance failures), and the copy +
// allocation here is the cost of capturing evidence exactly when the
// anomaly happened. Back-to-back trips for the same reason within
// tripQuietNs collapse into the first one's snapshot, so a saturation burst
// yields one frozen ring, not hundreds of copies of the same window.
func (t *Tracer) trip(why Reason, trigger Record) {
	t.tripDetailed(why, trigger, "")
}

// tripQuietNs is the per-reason snapshot refractory window.
const tripQuietNs = int64(time.Second)

func (t *Tracer) tripDetailed(why Reason, trigger Record, detail string) {
	t.trips[why].Add(1)
	now := time.Now().UnixNano()
	t.snapMu.Lock()
	for i := len(t.snaps) - 1; i >= 0; i-- {
		if t.snaps[i].Reason == why && now-t.snaps[i].AtNs < tripQuietNs {
			t.snapMu.Unlock()
			return
		}
	}
	snap := Snapshot{
		Engine:  t.name,
		Reason:  why,
		AtNs:    now,
		Detail:  detail,
		Trigger: trigger,
		Records: t.Recent(),
	}
	t.snaps = append(t.snaps, snap)
	if len(t.snaps) > t.maxSnaps {
		t.snaps = t.snaps[len(t.snaps)-t.maxSnaps:]
	}
	t.snapMu.Unlock()
	L().Warn("flight recorder snapshot frozen",
		"engine", t.name, "reason", why.String(), "detail", detail,
		"trigger_id", trigger.ID, "trigger_outcome", trigger.Outcome.String(),
		"records", len(snap.Records))
}

// Snapshots returns the retained frozen rings, oldest first.
func (t *Tracer) Snapshots() []Snapshot {
	if t == nil {
		return nil
	}
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	out := make([]Snapshot, len(t.snaps))
	copy(out, t.snaps)
	return out
}

// TripCount returns how many anomalies of the given reason have fired
// (including ones collapsed into an existing snapshot by the refractory
// window).
func (t *Tracer) TripCount(why Reason) int64 {
	if t == nil || why >= reasonCount {
		return 0
	}
	return t.trips[why].Load()
}

// registry is the package-wide tracer directory: the debug endpoints and
// the Prometheus/expvar exports read it, and conformance failures fan out
// through it. Re-publishing a name replaces the tracer (engine restarts in
// tests), keeping registration order for stable rendering.
var (
	regMu    sync.Mutex
	tracers  []*Tracer
	tracerIx = map[string]int{}
)

// Publish registers a tracer under its engine name for the debug endpoints
// and metric exports. Nil tracers (disabled engines) are ignored.
func Publish(t *Tracer) {
	if t == nil {
		return
	}
	regMu.Lock()
	defer regMu.Unlock()
	if i, ok := tracerIx[t.name]; ok {
		tracers[i] = t
		return
	}
	tracerIx[t.name] = len(tracers)
	tracers = append(tracers, t)
	publishExportsOnce()
	registerTraceSource(t)
}

// Published returns the registered tracers in registration order.
func Published() []*Tracer {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Tracer, len(tracers))
	copy(out, tracers)
	return out
}

// Lookup finds a published tracer by engine name.
func Lookup(name string) (*Tracer, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	i, ok := tracerIx[name]
	if !ok {
		return nil, false
	}
	return tracers[i], true
}

// NotifyConformanceFailure freezes a conformance snapshot on every
// published tracer: the conformance layer judges whole traced runs, not
// single requests, so the evidence is "what was the engine serving when the
// model check failed". The detail names the failing report (executor label,
// failed checks).
func NotifyConformanceFailure(detail string) {
	for _, t := range Published() {
		t.tripDetailed(ReasonConformance, Record{Outcome: OutcomeUnset}, detail)
	}
}
