package reqtrace

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// okRecord builds a completed-OK record with the given latency; IDs come
// from the tracer so LookupRecord works.
func okRecord(t *Tracer, tier string, durNs int64) Record {
	return Record{
		ID:      t.NextID(),
		StartNs: time.Now().UnixNano(),
		DurNs:   durNs,
		Tier:    tier,
		Lease:   LeaseReused,
		Outcome: OutcomeOK,
	}
}

func TestDisableReturnsNil(t *testing.T) {
	tr := New("off", Options{Disable: true})
	if tr != nil {
		t.Fatalf("Disable should yield a nil tracer")
	}
	// Every method must be nil-safe.
	if id := tr.NextID(); id != 0 {
		t.Fatalf("nil NextID = %d", id)
	}
	tr.Finish(Record{Outcome: OutcomeOK})
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if _, ok := tr.LookupRecord(1); ok {
		t.Fatalf("nil LookupRecord found a record")
	}
	if s := tr.Snapshots(); s != nil {
		t.Fatalf("nil Snapshots = %v", s)
	}
	if s := tr.SLOStatuses(time.Now()); s != nil {
		t.Fatalf("nil SLOStatuses = %v", s)
	}
	if n := tr.TripCount(ReasonSaturation); n != 0 {
		t.Fatalf("nil TripCount = %d", n)
	}
}

func TestRingRetainsAndWraps(t *testing.T) {
	tr := New("ring", Options{Ring: 8})
	for i := 0; i < 5; i++ {
		tr.Finish(okRecord(tr, "tiny", int64(i+1)))
	}
	recs := tr.Recent()
	if len(recs) != 5 {
		t.Fatalf("Recent len = %d, want 5", len(recs))
	}
	for i, r := range recs {
		if r.ID != uint64(i+1) {
			t.Fatalf("recs[%d].ID = %d, want oldest-first %d", i, r.ID, i+1)
		}
	}
	for i := 0; i < 10; i++ {
		tr.Finish(okRecord(tr, "tiny", 1))
	}
	recs = tr.Recent()
	if len(recs) != 8 {
		t.Fatalf("wrapped Recent len = %d, want ring size 8", len(recs))
	}
	if tr.Dropped() != 15-8 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
	if recs[len(recs)-1].ID != 15 {
		t.Fatalf("newest retained ID = %d, want 15", recs[len(recs)-1].ID)
	}
	// Lookup hits retained IDs, misses overwritten ones.
	if _, ok := tr.LookupRecord(15); !ok {
		t.Fatalf("LookupRecord(15) missed a retained record")
	}
	if _, ok := tr.LookupRecord(1); ok {
		t.Fatalf("LookupRecord(1) found an overwritten record")
	}
}

func TestFinishConcurrent(t *testing.T) {
	tr := New("conc", Options{Ring: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Finish(okRecord(tr, "small", 100))
			}
		}()
	}
	wg.Wait()
	if tr.Committed() != 1600 {
		t.Fatalf("Committed = %d, want 1600", tr.Committed())
	}
	if n := len(tr.Recent()); n != 64 {
		t.Fatalf("Recent len = %d, want 64", n)
	}
}

func TestOutcomeCountsAndTierP99(t *testing.T) {
	tr := New("counts", Options{})
	// p99RefreshEvery observations trigger the cached-p99 refresh.
	for i := 0; i < p99RefreshEvery; i++ {
		tr.Finish(okRecord(tr, "large", int64(time.Millisecond)))
	}
	tr.Finish(Record{ID: tr.NextID(), Tier: "large", Outcome: OutcomeSaturated})
	counts := tr.OutcomeCounts()
	if counts[OutcomeOK] != p99RefreshEvery || counts[OutcomeSaturated] != 1 {
		t.Fatalf("counts = ok:%d saturated:%d", counts[OutcomeOK], counts[OutcomeSaturated])
	}
	p99 := tr.TierP99("large")
	if p99 <= 0 || p99 == math.MaxInt64 {
		t.Fatalf("TierP99 = %d, want a finite refreshed bound", p99)
	}
	// The log-spaced histogram returns a bucket upper bound ≥ the true value.
	if p99 < int64(time.Millisecond) {
		t.Fatalf("TierP99 = %d below the observed 1ms", p99)
	}
	if got := tr.TierP99("tiny"); got != 0 {
		t.Fatalf("untouched tier p99 = %d, want 0", got)
	}
}

func TestSaturationTripsSnapshot(t *testing.T) {
	tr := New("sat", Options{Ring: 16})
	for i := 0; i < 10; i++ {
		tr.Finish(okRecord(tr, "large", 100))
	}
	bad := Record{ID: tr.NextID(), Tier: "large", Outcome: OutcomeSaturated, Err: "engine: admission queue full"}
	tr.Finish(bad)
	snaps := tr.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Reason != ReasonSaturation {
		t.Fatalf("reason = %s", s.Reason)
	}
	if s.Trigger.ID != bad.ID {
		t.Fatalf("trigger ID = %d, want %d", s.Trigger.ID, bad.ID)
	}
	// The ring is written before the trip, so the frozen evidence includes
	// the failing request itself.
	found := false
	for _, r := range s.Records {
		if r.ID == bad.ID && r.Outcome == OutcomeSaturated {
			found = true
		}
	}
	if !found {
		t.Fatalf("frozen snapshot does not contain the saturated request")
	}
	// A burst within the refractory window collapses into the same snapshot.
	for i := 0; i < 50; i++ {
		tr.Finish(Record{ID: tr.NextID(), Tier: "large", Outcome: OutcomeSaturated})
	}
	if n := len(tr.Snapshots()); n != 1 {
		t.Fatalf("burst froze %d snapshots, want 1 (refractory window)", n)
	}
	if tr.TripCount(ReasonSaturation) != 51 {
		t.Fatalf("TripCount = %d, want 51", tr.TripCount(ReasonSaturation))
	}
}

func TestLatencyAnomalyTripsAfterWarmup(t *testing.T) {
	tr := New("lat", Options{AnomalyMultiple: 4, AnomalyMinSamples: p99RefreshEvery})
	// Cold tier: a huge latency before AnomalyMinSamples must NOT trip.
	tr.Finish(okRecord(tr, "large", int64(time.Hour)))
	if n := len(tr.Snapshots()); n != 0 {
		t.Fatalf("cold tier tripped %d snapshots", n)
	}
	for i := 0; i < p99RefreshEvery; i++ {
		tr.Finish(okRecord(tr, "small", int64(time.Millisecond)))
	}
	// Warm tier: ~1ms p99 bucket bound, 4× multiple → a 1s straggler trips.
	tr.Finish(okRecord(tr, "small", int64(time.Second)))
	snaps := tr.Snapshots()
	if len(snaps) != 1 || snaps[0].Reason != ReasonLatency {
		t.Fatalf("snapshots = %+v, want one latency trip", snaps)
	}
}

func TestConformanceNotifyFreezesAllTracers(t *testing.T) {
	a := New("conf-a-"+t.Name(), Options{})
	b := New("conf-b-"+t.Name(), Options{})
	Publish(a)
	Publish(b)
	a.Finish(okRecord(a, "tiny", 1))
	NotifyConformanceFailure("cake 64x64x64: traffic")
	for _, tr := range []*Tracer{a, b} {
		snaps := tr.Snapshots()
		if len(snaps) != 1 || snaps[0].Reason != ReasonConformance {
			t.Fatalf("%s snapshots = %+v", tr.Name(), snaps)
		}
		if snaps[0].Detail != "cake 64x64x64: traffic" {
			t.Fatalf("detail = %q", snaps[0].Detail)
		}
	}
}

func TestSLOBurnRateAndBudget(t *testing.T) {
	tr := New("slo", Options{Objectives: []Objective{{
		Tier:    "large",
		Target:  time.Millisecond,
		Goal:    0.9,
		Windows: []time.Duration{time.Minute},
	}}})
	now := time.Now()
	// 90 good (fast, OK), 10 bad (over target), interleaved.
	for i := 0; i < 100; i++ {
		dur := int64(100 * time.Microsecond)
		if i%10 == 0 {
			dur = int64(10 * time.Millisecond)
		}
		tr.Finish(Record{
			ID: tr.NextID(), StartNs: now.UnixNano(), DurNs: dur,
			Tier: "large", Outcome: OutcomeOK,
		})
	}
	// Off-tier traffic must not count.
	tr.Finish(Record{ID: tr.NextID(), StartNs: now.UnixNano(), DurNs: 1, Tier: "tiny", Outcome: OutcomeOK})

	sts := tr.SLOStatuses(now)
	if len(sts) != 1 {
		t.Fatalf("statuses = %d", len(sts))
	}
	st := sts[0]
	if st.Name != "tier=large" {
		t.Fatalf("derived name = %q", st.Name)
	}
	if st.Good != 90 || st.Bad != 10 {
		t.Fatalf("lifetime good/bad = %d/%d, want 90/10", st.Good, st.Bad)
	}
	// Budget: bad/((1-goal)·total) = 10/(0.1·100) = 1 → remaining 0.
	if math.Abs(st.BudgetRemaining) > 1e-9 {
		t.Fatalf("budget remaining = %g, want 0", st.BudgetRemaining)
	}
	if len(st.Windows) != 1 {
		t.Fatalf("windows = %d", len(st.Windows))
	}
	ws := st.Windows[0]
	if ws.Good != 90 || ws.Bad != 10 {
		t.Fatalf("window good/bad = %d/%d, want 90/10", ws.Good, ws.Bad)
	}
	// Burn rate: badFraction/(1-goal) = 0.1/0.1 = 1.
	if math.Abs(ws.BurnRate-1) > 1e-9 {
		t.Fatalf("burn rate = %g, want 1", ws.BurnRate)
	}
}

func TestSLOWindowSlides(t *testing.T) {
	win := time.Second
	tr := New("slide", Options{Objectives: []Objective{{
		Goal: 0.999, Windows: []time.Duration{win},
	}}})
	base := time.Now()
	tr.Finish(Record{ID: tr.NextID(), StartNs: base.UnixNano(), DurNs: 1, Tier: "tiny", Outcome: OutcomeError})
	bad := func(at time.Time) int64 {
		sts := tr.SLOStatuses(at)
		return sts[0].Windows[0].Bad
	}
	if got := bad(base); got != 1 {
		t.Fatalf("bad inside window = %d, want 1", got)
	}
	if got := bad(base.Add(3 * win)); got != 0 {
		t.Fatalf("bad after window slid past = %d, want 0", got)
	}
	// Lifetime counters are not windowed.
	if st := tr.SLOStatuses(base.Add(3 * win))[0]; st.Bad != 1 {
		t.Fatalf("lifetime bad = %d, want 1", st.Bad)
	}
}

func TestObjectiveDefaults(t *testing.T) {
	s := newSLOTracker(Objective{Tenant: "acme"})
	if s.obj.Goal != DefaultGoal {
		t.Fatalf("goal = %g", s.obj.Goal)
	}
	if s.obj.Name != "tenant=acme" {
		t.Fatalf("name = %q", s.obj.Name)
	}
	if len(s.windows) != len(DefaultWindows) {
		t.Fatalf("windows = %d, want %d", len(s.windows), len(DefaultWindows))
	}
}

func TestPublishLookupAndReplace(t *testing.T) {
	name := "pub-" + t.Name()
	a := New(name, Options{})
	Publish(a)
	got, ok := Lookup(name)
	if !ok || got != a {
		t.Fatalf("Lookup after Publish = %v, %v", got, ok)
	}
	b := New(name, Options{})
	Publish(b)
	if got, _ = Lookup(name); got != b {
		t.Fatalf("re-Publish did not replace the tracer")
	}
}

// debugGet drives a registered endpoint through obs.DebugHandler exactly the
// way a live host serves it.
func debugGet(t *testing.T, path string) (int, []byte) {
	t.Helper()
	srv := httptest.NewServer(obs.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestRequestsEndpoint(t *testing.T) {
	name := "ep-" + t.Name()
	tr := New(name, Options{})
	Publish(tr)
	want := okRecord(tr, "small", 12345)
	want.Tenant = "acme"
	tr.Finish(want)

	code, body := debugGet(t, "/debug/requests.json?engine="+name)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var page struct {
		Engines []struct {
			Engine  string `json:"engine"`
			Records []struct {
				ID      uint64 `json:"id"`
				Tier    string `json:"tier"`
				Outcome string `json:"outcome"`
			} `json:"records"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(page.Engines) != 1 || page.Engines[0].Engine != name {
		t.Fatalf("engines = %+v", page.Engines)
	}
	if len(page.Engines[0].Records) != 1 || page.Engines[0].Records[0].Outcome != "ok" {
		t.Fatalf("records = %+v", page.Engines[0].Records)
	}

	// ?reqid= returns the exact record.
	code, body = debugGet(t, "/debug/requests.json?engine="+name+"&reqid=1")
	if code != http.StatusOK {
		t.Fatalf("reqid status = %d: %s", code, body)
	}
	var one struct {
		Engine string `json:"engine"`
		Record Record `json:"record"`
	}
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatalf("invalid reqid JSON: %v\n%s", err, body)
	}
	if one.Record.ID != want.ID || one.Record.DurNs != want.DurNs || one.Record.Tenant != "acme" {
		t.Fatalf("record = %+v, want %+v", one.Record, want)
	}

	if code, _ := debugGet(t, "/debug/requests.json?engine="+name+"&reqid=99999"); code != http.StatusNotFound {
		t.Fatalf("missing reqid status = %d, want 404", code)
	}
	if code, _ := debugGet(t, "/debug/requests.json?engine=no-such-engine-xyz"); code != http.StatusNotFound {
		t.Fatalf("unknown engine status = %d, want 404", code)
	}
}

func TestSLOAndSnapshotEndpoints(t *testing.T) {
	name := "slo-ep-" + t.Name()
	tr := New(name, Options{Objectives: []Objective{{Tier: "tiny", Goal: 0.99, Target: time.Second}}})
	Publish(tr)
	tr.Finish(okRecord(tr, "tiny", 10))
	tr.Finish(Record{ID: tr.NextID(), Tier: "tiny", Outcome: OutcomeSaturated})

	code, body := debugGet(t, "/debug/slo.json?engine="+name)
	if code != http.StatusOK {
		t.Fatalf("slo status = %d", code)
	}
	var slo struct {
		Engines []struct {
			Engine string   `json:"engine"`
			SLOs   []Status `json:"slos"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatalf("invalid slo JSON: %v\n%s", err, body)
	}
	if len(slo.Engines) != 1 || len(slo.Engines[0].SLOs) != 1 {
		t.Fatalf("slo page = %+v", slo)
	}
	if got := slo.Engines[0].SLOs[0]; got.Good != 1 || got.Bad != 1 {
		t.Fatalf("slo good/bad = %d/%d", got.Good, got.Bad)
	}

	code, body = debugGet(t, "/debug/snapshots.json?engine="+name)
	if code != http.StatusOK {
		t.Fatalf("snapshots status = %d", code)
	}
	var snaps struct {
		Snapshots []Snapshot `json:"snapshots"`
	}
	if err := json.Unmarshal(body, &snaps); err != nil {
		t.Fatalf("invalid snapshots JSON: %v\n%s", err, body)
	}
	if len(snaps.Snapshots) != 1 || snaps.Snapshots[0].Reason != ReasonSaturation {
		t.Fatalf("snapshots = %+v", snaps.Snapshots)
	}
}

func TestPrometheusFamilies(t *testing.T) {
	name := "prom-" + t.Name()
	tr := New(name, Options{Objectives: []Objective{{Goal: 0.999}}})
	Publish(tr)
	tr.Finish(okRecord(tr, "tiny", 10))
	var sb strings.Builder
	WritePrometheus(&sb)
	out := sb.String()
	for _, family := range []string{
		"cake_requests_total", "cake_flight_recorder_dropped_total",
		"cake_snapshot_trips_total", "cake_slo_burn_rate", "cake_slo_budget_remaining",
	} {
		if !strings.Contains(out, family) {
			t.Fatalf("Prometheus output missing %s:\n%s", family, out)
		}
	}
	if !strings.Contains(out, `engine="`+name+`"`) {
		t.Fatalf("Prometheus output missing engine label %q", name)
	}
}

func TestTraceEventsCarryRequestContext(t *testing.T) {
	tr := New("trace-"+t.Name(), Options{})
	rec := okRecord(tr, "large", int64(2*time.Millisecond))
	rec.AdmitWaitNs = int64(time.Millisecond)
	rec.QueueDepth = 3
	tr.Finish(rec)
	events := tr.traceEvents()
	if len(events) != 2 {
		t.Fatalf("events = %d, want request + admit-wait", len(events))
	}
	if events[0].Name != "request" || events[0].LaneName != "large" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[0].Args["reqid"] != rec.ID || events[0].Args["outcome"] != "ok" {
		t.Fatalf("request args = %+v", events[0].Args)
	}
	if events[1].Name != "admit-wait" || events[1].Args["queue_depth"] != rec.QueueDepth {
		t.Fatalf("admit-wait event = %+v", events[1])
	}
}

func TestSetLoggerCapturesSnapshotTrip(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	h := slog.NewTextHandler(lockedWriter{&mu, &sb}, &slog.HandlerOptions{Level: slog.LevelInfo})
	SetLogger(slog.New(h))
	defer SetLogger(nil)

	tr := New("logged-"+t.Name(), Options{})
	tr.Finish(Record{ID: tr.NextID(), Tier: "tiny", Outcome: OutcomeSaturated})
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	if !strings.Contains(out, "flight recorder snapshot frozen") {
		t.Fatalf("snapshot trip not logged: %q", out)
	}
	// Restoring the default silences further emission.
	SetLogger(nil)
	if L().Enabled(context.Background(), slog.LevelError) {
		t.Fatalf("default logger should discard everything")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	sb *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}
