package reqtrace

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Debug-server and metrics exports. The package contributes its endpoints
// and Prometheus families to the obs debug server through the obs
// registries at init time, so any binary that links an engine (engine
// imports reqtrace) gets /debug/requests.json, /debug/slo.json and
// /debug/snapshots.json mounted on the next obs.DebugHandler — no wiring in
// the host. The expvar "cake_slo" map appears once the first tracer is
// published.

func init() {
	obs.HandleDebug("/debug/requests.json",
		"flight recorder: recent request records (?reqid=N, ?engine=name, ?n=K)",
		http.HandlerFunc(serveRequests))
	obs.HandleDebug("/debug/slo.json",
		"SLO burn rates and error-budget remaining (?engine=name)",
		http.HandlerFunc(serveSLO))
	obs.HandleDebug("/debug/snapshots.json",
		"frozen flight-recorder snapshots from anomaly trips (?engine=name)",
		http.HandlerFunc(serveSnapshots))
	obs.RegisterPrometheus("reqtrace", WritePrometheus)
}

// registerTraceSource links the tracer's ring into the Chrome-trace export:
// /debug/trace.json grows a "requests/<engine>" process with one lane per
// tier whose request spans render as parent tracks over the per-worker
// phase spans. Admission waits longer than a microsecond appear as a nested
// "admit-wait" slice at the head of their request.
func registerTraceSource(t *Tracer) {
	obs.RegisterTraceSource("requests/"+t.name, t.traceEvents)
}

func (t *Tracer) traceEvents() []obs.TraceEvent {
	recs := t.Recent()
	if len(recs) == 0 {
		return nil
	}
	origin := recs[0].StartNs
	for _, r := range recs {
		if r.StartNs < origin {
			origin = r.StartNs
		}
	}
	events := make([]obs.TraceEvent, 0, len(recs))
	for _, r := range recs {
		lane := tierIndex(r.Tier)
		ts := float64(r.StartNs-origin) / 1e3
		events = append(events, obs.TraceEvent{
			Name: "request", TsUs: ts, DurUs: float64(r.DurNs) / 1e3,
			Lane: lane, LaneName: tierNames[lane],
			Args: map[string]any{
				"reqid":   r.ID,
				"outcome": r.Outcome.String(),
				"tenant":  r.Tenant,
				"shape":   fmt.Sprintf("%dx%dx%d", r.M, r.K, r.N),
				"lease":   r.Lease.String(),
				"pack_us": float64(r.PackNs) / 1e3,
			},
		})
		if r.AdmitWaitNs > 1e3 {
			events = append(events, obs.TraceEvent{
				Name: "admit-wait", TsUs: ts, DurUs: float64(r.AdmitWaitNs) / 1e3,
				Lane: lane, LaneName: tierNames[lane],
				Args: map[string]any{"reqid": r.ID, "queue_depth": r.QueueDepth},
			})
		}
	}
	return events
}

var exportsOnce sync.Once

// publishExportsOnce registers the "cake_slo" expvar the first time a
// tracer is published (expvar names are forever, so this is once per
// process, not per engine).
func publishExportsOnce() {
	exportsOnce.Do(func() {
		expvar.Publish("cake_slo", expvar.Func(func() any {
			now := time.Now()
			out := map[string][]Status{}
			for _, t := range Published() {
				out[t.Name()] = t.SLOStatuses(now)
			}
			return out
		}))
	})
}

// selectTracers resolves the ?engine= query: a named tracer, or every
// published one. Writes the 404 itself when the name is unknown.
func selectTracers(w http.ResponseWriter, r *http.Request) ([]*Tracer, bool) {
	if name := r.URL.Query().Get("engine"); name != "" {
		t, ok := Lookup(name)
		if !ok {
			http.Error(w, fmt.Sprintf("no tracer published for engine %q", name), http.StatusNotFound)
			return nil, false
		}
		return []*Tracer{t}, true
	}
	ts := Published()
	if len(ts) == 0 {
		http.Error(w, "no request tracer published (engine running with Trace.Disable?)", http.StatusNotFound)
		return nil, false
	}
	return ts, true
}

// defaultRecentLimit bounds how many ring records one /debug/requests.json
// response carries unless ?n= asks otherwise (?n=0 means the whole ring).
const defaultRecentLimit = 256

// engineRequests is one engine's slice of /debug/requests.json.
type engineRequests struct {
	Engine    string           `json:"engine"`
	Committed int64            `json:"committed"`
	Dropped   int64            `json:"dropped"`
	Outcomes  map[string]int64 `json:"outcomes"`
	Records   []Record         `json:"records"`
}

func outcomeMap(t *Tracer) map[string]int64 {
	counts := t.OutcomeCounts()
	out := make(map[string]int64, len(counts))
	for o := Outcome(0); o < outcomeCount; o++ {
		if c := counts[o]; c != 0 {
			out[o.String()] = c
		}
	}
	return out
}

func serveRequests(w http.ResponseWriter, r *http.Request) {
	ts, ok := selectTracers(w, r)
	if !ok {
		return
	}
	if q := r.URL.Query().Get("reqid"); q != "" {
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "reqid must be an unsigned integer", http.StatusBadRequest)
			return
		}
		for _, t := range ts {
			if rec, found := t.LookupRecord(id); found {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(map[string]any{"engine": t.Name(), "record": rec})
				return
			}
		}
		http.Error(w, fmt.Sprintf("request %d not in any flight recorder (ring wrapped, or never recorded)", id),
			http.StatusNotFound)
		return
	}
	limit := defaultRecentLimit
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	engines := make([]engineRequests, 0, len(ts))
	for _, t := range ts {
		recs := t.Recent()
		if limit > 0 && len(recs) > limit {
			recs = recs[len(recs)-limit:]
		}
		engines = append(engines, engineRequests{
			Engine:    t.Name(),
			Committed: t.Committed(),
			Dropped:   t.Dropped(),
			Outcomes:  outcomeMap(t),
			Records:   recs,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"engines": engines})
}

// engineSLO is one engine's slice of /debug/slo.json.
type engineSLO struct {
	Engine string   `json:"engine"`
	SLOs   []Status `json:"slos"`
}

func serveSLO(w http.ResponseWriter, r *http.Request) {
	ts, ok := selectTracers(w, r)
	if !ok {
		return
	}
	now := time.Now()
	engines := make([]engineSLO, 0, len(ts))
	for _, t := range ts {
		sts := t.SLOStatuses(now)
		if sts == nil {
			sts = []Status{}
		}
		engines = append(engines, engineSLO{Engine: t.Name(), SLOs: sts})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"at_ns": now.UnixNano(), "engines": engines})
}

func serveSnapshots(w http.ResponseWriter, r *http.Request) {
	ts, ok := selectTracers(w, r)
	if !ok {
		return
	}
	snaps := []Snapshot{}
	for _, t := range ts {
		snaps = append(snaps, t.Snapshots()...)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"snapshots": snaps})
}

// WritePrometheus renders the request-lifecycle families for every
// published tracer; obs.WritePrometheus calls it on each /metrics scrape.
func WritePrometheus(w io.Writer) {
	ts := Published()
	if len(ts) == 0 {
		return
	}
	now := time.Now()

	const reqs = "cake_requests_total"
	fmt.Fprintf(w, "# HELP %s Engine requests by outcome.\n# TYPE %s counter\n", reqs, reqs)
	for _, t := range ts {
		counts := t.OutcomeCounts()
		for o := Outcome(0); o < outcomeCount; o++ {
			fmt.Fprintf(w, "%s{engine=%q,outcome=%q} %d\n", reqs, t.Name(), o.String(), counts[o])
		}
	}

	const p99 = "cake_request_tier_p99_seconds"
	fmt.Fprintf(w, "# HELP %s Rolling p99 request latency bound per tier.\n# TYPE %s gauge\n", p99, p99)
	for _, t := range ts {
		for _, tier := range tierNames {
			if v := t.TierP99(tier); v > 0 {
				fmt.Fprintf(w, "%s{engine=%q,tier=%q} %g\n", p99, t.Name(), tier, float64(v)/1e9)
			}
		}
	}

	const dropped = "cake_flight_recorder_dropped_total"
	fmt.Fprintf(w, "# HELP %s Records overwritten by the flight-recorder ring.\n# TYPE %s counter\n", dropped, dropped)
	for _, t := range ts {
		fmt.Fprintf(w, "%s{engine=%q} %d\n", dropped, t.Name(), t.Dropped())
	}

	const trips = "cake_snapshot_trips_total"
	fmt.Fprintf(w, "# HELP %s Anomaly trips by reason (snapshot freezes plus refractory-collapsed repeats).\n# TYPE %s counter\n", trips, trips)
	for _, t := range ts {
		for why := Reason(0); why < reasonCount; why++ {
			fmt.Fprintf(w, "%s{engine=%q,reason=%q} %d\n", trips, t.Name(), why.String(), t.TripCount(why))
		}
	}

	const burn = "cake_slo_burn_rate"
	const budget = "cake_slo_budget_remaining"
	fmt.Fprintf(w, "# HELP %s Error-budget burn rate per objective window (1.0 = spending exactly the budget).\n# TYPE %s gauge\n", burn, burn)
	for _, t := range ts {
		for _, st := range t.SLOStatuses(now) {
			for _, ws := range st.Windows {
				fmt.Fprintf(w, "%s{engine=%q,objective=%q,window=%q} %g\n", burn, t.Name(), st.Name, ws.Window, ws.BurnRate)
			}
		}
	}
	fmt.Fprintf(w, "# HELP %s Lifetime error budget remaining (1 untouched, 0 exhausted, negative overspent).\n# TYPE %s gauge\n", budget, budget)
	for _, t := range ts {
		for _, st := range t.SLOStatuses(now) {
			fmt.Fprintf(w, "%s{engine=%q,objective=%q} %g\n", budget, t.Name(), st.Name, st.BudgetRemaining)
		}
	}
}
