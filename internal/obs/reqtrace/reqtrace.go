// Package reqtrace is the request-lifecycle observability layer for the
// concurrent GEMM engine. The executor-level spans (internal/obs) verify the
// paper's constant-bandwidth property per phase; this package makes the
// *serving* path observable at the same grain: every engine call gets a
// cheap atomic request ID and a completed-request record covering admission
// wait, queue depth at entry, executor lease (new vs reused), the tier
// chosen, resident-panel hit/miss, pack/compute time, and outcome.
// GEMMbench's argument (PAPERS.md) applies directly — per-run capture with
// full context, not averages — and "DGEMM performance is data-dependent"
// shows why the tail needs per-request evidence: latency varies with shape
// and data, so an aggregate histogram cannot say *which* request blew the
// budget or why.
//
// Three layers, all always-on and allocation-free at steady state:
//
//   - A flight recorder: a fixed-size lock-free ring of completed request
//     records per engine (same atomic-cursor discipline as the obs span
//     recorder; the record path carries the //cake:hotpath annotation, so
//     cake-vet proves it never allocates).
//   - Anomaly-triggered snapshots: on saturation, a conformance failure, or
//     a request slower than a configurable multiple of its tier's rolling
//     p99, the ring is frozen into an immutable JSON-servable snapshot —
//     the evidence is captured at the moment of the anomaly, not after the
//     ring has wrapped past it.
//   - An SLO engine: per-tier and per-tenant latency/error objectives with
//     multi-window burn-rate counters and error-budget accounting, exported
//     as the "cake_slo" expvar, Prometheus families, and /debug/slo.json.
//
// Structured logging rides along via log/slog: engine lifecycle, resident
// evictions, SLO breaches and snapshot trips emit through an opt-in handler
// (silent by default — see SetLogger).
package reqtrace

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Outcome classifies how a request left the engine. The zero value is
// deliberately not OK: a Record whose Outcome was never set is visible as
// unset rather than silently counting as a success (cake-vet's reqoutcome
// analyzer additionally requires every Record literal to set the field).
type Outcome uint8

const (
	// OutcomeUnset marks a record whose producer never decided an outcome.
	OutcomeUnset Outcome = iota
	// OutcomeOK is a request that completed and returned its result.
	OutcomeOK
	// OutcomeSaturated is a rejection at the admission queue bound
	// (engine.ErrSaturated).
	OutcomeSaturated
	// OutcomeClosed is a request that arrived after engine Close
	// (engine.ErrClosed).
	OutcomeClosed
	// OutcomeEvicted is a resident-operand request whose weights were lost
	// to LRU eviction (engine.ErrOperandEvicted).
	OutcomeEvicted
	// OutcomeError is any other failure (dimension mismatch, plan error, …).
	OutcomeError
	outcomeCount
)

func (o Outcome) String() string {
	switch o {
	case OutcomeUnset:
		return "unset"
	case OutcomeOK:
		return "ok"
	case OutcomeSaturated:
		return "saturated"
	case OutcomeClosed:
		return "closed"
	case OutcomeEvicted:
		return "evicted"
	case OutcomeError:
		return "error"
	}
	return "unknown"
}

// MarshalJSON renders the outcome as its name, so /debug/requests.json says
// "saturated" instead of 2.
func (o Outcome) MarshalJSON() ([]byte, error) { return []byte(`"` + o.String() + `"`), nil }

// UnmarshalJSON parses the name form back, so records served by the debug
// endpoints round-trip into Record.
func (o *Outcome) UnmarshalJSON(b []byte) error {
	for c := OutcomeUnset; c < outcomeCount; c++ {
		if string(b) == `"`+c.String()+`"` {
			*o = c
			return nil
		}
	}
	return fmt.Errorf("reqtrace: unknown outcome %s", b)
}

// Lease classifies how a request's executor (or direct scratch) lease was
// served.
type Lease uint8

const (
	// LeaseNone: the request failed before leasing (rejected, closed).
	LeaseNone Lease = iota
	// LeaseNew: the lease was served by constructing fresh state.
	LeaseNew
	// LeaseReused: the lease came warm from the per-tier pool.
	LeaseReused
)

func (l Lease) String() string {
	switch l {
	case LeaseNew:
		return "new"
	case LeaseReused:
		return "reused"
	}
	return "none"
}

// MarshalJSON renders the lease kind as its name.
func (l Lease) MarshalJSON() ([]byte, error) { return []byte(`"` + l.String() + `"`), nil }

// UnmarshalJSON parses the name form back.
func (l *Lease) UnmarshalJSON(b []byte) error {
	for c := LeaseNone; c <= LeaseReused; c++ {
		if string(b) == `"`+c.String()+`"` {
			*l = c
			return nil
		}
	}
	return fmt.Errorf("reqtrace: unknown lease kind %s", b)
}

// Residency classifies a request's use of the resident-operand store.
type Residency uint8

const (
	// ResidentNone: the request packed its own operands.
	ResidentNone Residency = iota
	// ResidentHit: served from pre-packed resident panels.
	ResidentHit
	// ResidentMiss: asked for a resident operand that was gone (evicted or
	// never registered).
	ResidentMiss
)

func (r Residency) String() string {
	switch r {
	case ResidentHit:
		return "hit"
	case ResidentMiss:
		return "miss"
	}
	return "none"
}

// MarshalJSON renders the residency as its name.
func (r Residency) MarshalJSON() ([]byte, error) { return []byte(`"` + r.String() + `"`), nil }

// UnmarshalJSON parses the name form back.
func (r *Residency) UnmarshalJSON(b []byte) error {
	for c := ResidentNone; c <= ResidentMiss; c++ {
		if string(b) == `"`+c.String()+`"` {
			*r = c
			return nil
		}
	}
	return fmt.Errorf("reqtrace: unknown residency %s", b)
}

// Record is one completed engine request — the unit of the flight recorder.
// Producers must set Outcome explicitly (enforced by cake-vet's reqoutcome
// analyzer); every other field defaults to a meaningful zero. Records are
// committed by value into a preallocated ring, so the struct must stay free
// of pointers to producer-owned mutable state (strings are fine: committing
// copies only the header).
type Record struct {
	ID      uint64 `json:"id"`
	StartNs int64  `json:"start_ns"` // UnixNano at engine entry
	DurNs   int64  `json:"dur_ns"`   // entry to completion, queueing included

	Tier   string `json:"tier"`             // "tiny" | "small" | "large"; "" when dispatch never happened
	Tenant string `json:"tenant,omitempty"` // caller-supplied serving label

	AdmitWaitNs int64 `json:"admit_wait_ns"` // time from entry to holding cores
	QueueDepth  int32 `json:"queue_depth"`   // admission waiters ahead at entry

	M int32 `json:"m"`
	K int32 `json:"k"`
	N int32 `json:"n"`

	Lease      Lease     `json:"lease"`
	Resident   Residency `json:"resident"`
	ResidentID string    `json:"resident_id,omitempty"`

	PackNs    int64 `json:"pack_ns"`
	ComputeNs int64 `json:"compute_ns"`

	// Batched requests: a GemmBatch produces ONE record for the whole batch
	// (one admission, one lease), with BatchCalls carrying how many GEMMs it
	// folded and AmortNs the amortized per-call latency DurNs/BatchCalls.
	// Both are zero for single-call requests, keeping their records
	// byte-compatible with pre-batch history.
	BatchCalls int32 `json:"batch_calls,omitempty"`
	AmortNs    int64 `json:"amort_ns,omitempty"`

	Outcome Outcome `json:"outcome"`
	Err     string  `json:"error,omitempty"`
}

// EndNs returns the record's wall-clock completion time.
func (r Record) EndNs() int64 { return r.StartNs + r.DurNs }

// Options configures a Tracer. The zero value enables the flight recorder
// with defaults and no objectives.
type Options struct {
	// Disable turns the whole layer off: the engine threads a nil tracer and
	// pays one predictable branch per request (the same nil-receiver
	// discipline as the span recorder).
	Disable bool
	// Ring is the number of completed records the flight recorder retains
	// (per engine). 0 means DefaultRing.
	Ring int
	// AnomalyMultiple freezes a snapshot when a request's latency exceeds
	// this multiple of its tier's rolling p99. 0 means DefaultAnomalyMultiple;
	// negative disables latency-anomaly snapshots.
	AnomalyMultiple float64
	// AnomalyMinSamples arms the latency anomaly only after a tier has this
	// many observations (a cold histogram's p99 is noise). 0 means
	// DefaultAnomalyMinSamples.
	AnomalyMinSamples int
	// MaxSnapshots bounds the retained frozen rings; older snapshots are
	// dropped first. 0 means DefaultMaxSnapshots.
	MaxSnapshots int
	// Objectives are the SLOs tracked per request (per tier and/or tenant).
	Objectives []Objective
}

const (
	// DefaultRing retains the most recent 4096 completed requests, ~1 MiB.
	DefaultRing = 4096
	// DefaultAnomalyMultiple: a request 8× slower than its tier's rolling
	// p99 is an anomaly worth freezing evidence for.
	DefaultAnomalyMultiple = 8
	// DefaultAnomalyMinSamples gates the latency anomaly until the tier's
	// histogram has enough observations for a stable p99.
	DefaultAnomalyMinSamples = 256
	// DefaultMaxSnapshots bounds retained frozen rings.
	DefaultMaxSnapshots = 8
	// p99RefreshEvery is the cadence (in observations) of the cached rolling
	// p99 refresh — the hot path reads one atomic instead of walking 37
	// histogram buckets per request.
	p99RefreshEvery = 64
)

// tierIndex maps a record's tier label onto the tracer's fixed per-tier
// slots. Unknown labels (including "", a request that failed before
// dispatch) share the last slot.
//
//cake:hotpath
func tierIndex(tier string) int {
	switch tier {
	case "tiny":
		return 0
	case "small":
		return 1
	case "large":
		return 2
	}
	return 3
}

const tierSlots = 4

var tierNames = [tierSlots]string{"tiny", "small", "large", "other"}

// latTrack is one tier's rolling latency state: the log-spaced histogram and
// a cached p99 bound the anomaly check reads with one atomic load.
type latTrack struct {
	hist obs.Histogram
	p99  atomic.Int64 // cached Quantile(0.99) in ns; 0 until first refresh
}

// refresh recomputes the cached p99. An overflow-bucket p99 (+Inf) is
// stored as MaxInt64, which no finite latency exceeds — the anomaly check
// goes quiet rather than tripping on every request.
func (lt *latTrack) refresh() {
	p := lt.hist.P99()
	if math.IsInf(p, 1) || p >= math.MaxInt64 {
		lt.p99.Store(math.MaxInt64)
		return
	}
	lt.p99.Store(int64(p))
}

// Tracer is one engine's request-lifecycle recorder: ID source, flight
// recorder ring, per-tier latency tracking, SLO trackers, and the snapshot
// store. All methods are safe for concurrent use; a nil *Tracer is valid
// and records nothing.
type Tracer struct {
	name    string
	ring    []Record
	cursor  atomic.Int64
	nextID  atomic.Uint64
	tiers   [tierSlots]latTrack
	outs    [outcomeCount]atomic.Int64
	slos    []*sloTracker
	anomaly int64 // latency multiple ×1000 (fixed point); ≤0 disabled
	minSamp int64

	snapMu   sync.Mutex
	snaps    []Snapshot
	maxSnaps int
	trips    [reasonCount]atomic.Int64
}

// New builds a tracer named after its engine. Returns nil when
// opts.Disable — callers thread the nil tracer and every method degrades to
// a no-op.
func New(name string, opts Options) *Tracer {
	if opts.Disable {
		return nil
	}
	ring := opts.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	mult := opts.AnomalyMultiple
	if mult == 0 {
		mult = DefaultAnomalyMultiple
	}
	minSamp := opts.AnomalyMinSamples
	if minSamp <= 0 {
		minSamp = DefaultAnomalyMinSamples
	}
	maxSnaps := opts.MaxSnapshots
	if maxSnaps <= 0 {
		maxSnaps = DefaultMaxSnapshots
	}
	t := &Tracer{
		name:     name,
		ring:     make([]Record, ring),
		minSamp:  int64(minSamp),
		maxSnaps: maxSnaps,
	}
	if mult > 0 {
		t.anomaly = int64(mult * 1000)
	}
	for _, o := range opts.Objectives {
		t.slos = append(t.slos, newSLOTracker(o))
	}
	return t
}

// Name returns the engine label the tracer was built with.
func (t *Tracer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// NextID issues a request ID: one atomic add, strictly increasing from 1.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Finish commits one completed request: ring write, outcome and per-tier
// latency accounting, SLO windows, and the anomaly checks. This is the
// engine's per-request record path — lock-free, allocation-free
// (cake-vet-enforced), a few atomic adds at steady state. Snapshot trips
// leave the hot path immediately (rare by construction: saturation bursts
// and >8×p99 stragglers).
//
//cake:hotpath
func (t *Tracer) Finish(rec Record) {
	if t == nil {
		return
	}
	i := t.cursor.Add(1) - 1
	t.ring[i%int64(len(t.ring))] = rec

	if rec.Outcome < outcomeCount {
		t.outs[rec.Outcome].Add(1)
	}
	ti := tierIndex(rec.Tier)
	lt := &t.tiers[ti]
	lt.hist.Observe(rec.DurNs)
	n := lt.hist.Count()
	if n%p99RefreshEvery == 0 {
		lt.refresh()
	}

	nowNs := rec.StartNs + rec.DurNs
	for _, s := range t.slos {
		s.observe(rec, nowNs)
	}

	if rec.Outcome == OutcomeSaturated {
		t.trip(ReasonSaturation, rec)
		return
	}
	if t.anomaly > 0 && n >= t.minSamp {
		if p99 := lt.p99.Load(); p99 > 0 && p99 < math.MaxInt64 && rec.DurNs > p99*t.anomaly/1000 {
			t.trip(ReasonLatency, rec)
		}
	}
}

// Committed returns how many records have ever been committed.
func (t *Tracer) Committed() int64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Dropped returns how many committed records the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	if n := t.cursor.Load(); n > int64(len(t.ring)) {
		return n - int64(len(t.ring))
	}
	return 0
}

// Recent returns a copy of the retained records, oldest first. Records
// mid-commit may appear with partially stale fields (the ring is lock-free
// by design); completed steady-state reads see fully committed records.
func (t *Tracer) Recent() []Record {
	if t == nil {
		return nil
	}
	n := t.cursor.Load()
	if n == 0 {
		return nil
	}
	cap64 := int64(len(t.ring))
	if n <= cap64 {
		out := make([]Record, n)
		copy(out, t.ring[:n])
		return out
	}
	out := make([]Record, cap64)
	head := n % cap64
	copy(out, t.ring[head:])
	copy(out[cap64-head:], t.ring[:head])
	return out
}

// LookupRecord finds a retained record by request ID.
func (t *Tracer) LookupRecord(id uint64) (Record, bool) {
	if t == nil {
		return Record{Outcome: OutcomeUnset}, false
	}
	for _, r := range t.Recent() {
		if r.ID == id {
			return r, true
		}
	}
	return Record{Outcome: OutcomeUnset}, false
}

// TierP99 returns the tier's rolling p99 bound in nanoseconds (0 until
// enough samples have arrived to refresh the cache).
func (t *Tracer) TierP99(tier string) int64 {
	if t == nil {
		return 0
	}
	return t.tiers[tierIndex(tier)].p99.Load()
}

// OutcomeCounts snapshots the per-outcome totals, indexed by Outcome.
func (t *Tracer) OutcomeCounts() [int(outcomeCount)]int64 {
	var out [int(outcomeCount)]int64
	if t == nil {
		return out
	}
	for i := range t.outs {
		out[i] = t.outs[i].Load()
	}
	return out
}
