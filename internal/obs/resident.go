package obs

// Resident-store observability: the engine's cross-request operand store
// (internal/engine/resident) reports its residency gauges and hit/miss/
// eviction traffic through the same expvar + Prometheus surface as the
// executor and engine counters, so a serving host can see how much pack
// traffic its registered weights are avoiding (§4.4) next to the GEMM
// counters that benefit.

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ResidentStats is a point-in-time snapshot of one engine's resident
// operand store. Entries, Pinned, Bytes and Budget are gauges; the rest are
// cumulative totals.
type ResidentStats struct {
	Entries          int64 // operands currently resident
	Pinned           int64 // of those, pinned by in-flight GEMMs
	Bytes            int64 // resident packed-panel bytes
	Budget           int64 // configured byte budget (0 = unlimited)
	Hits             int64 // operand acquisitions served
	Misses           int64 // acquisitions failed (evicted or unknown id)
	Evictions        int64 // operands lost to budget pressure
	AvoidedPackBytes int64 // pack traffic skipped by resident-path GEMMs
}

var (
	residentMu  sync.Mutex
	residentVar *expvar.Map
	residentFns = map[string]func() ResidentStats{}
)

// PublishResident registers a live stats callback under the process-wide
// "cake_resident" expvar map. Re-publishing a name replaces its callback
// (the previous engine is usually closed), so tests and engine restarts are
// safe. The callback must be safe to call from any goroutine.
func PublishResident(name string, fn func() ResidentStats) {
	residentMu.Lock()
	defer residentMu.Unlock()
	if residentVar == nil {
		residentVar = expvar.NewMap("cake_resident")
	}
	if _, ok := residentFns[name]; !ok {
		n := name
		residentVar.Set(n, expvar.Func(func() any {
			residentMu.Lock()
			fn := residentFns[n]
			residentMu.Unlock()
			if fn == nil {
				return ResidentStats{}
			}
			return fn()
		}))
	}
	residentFns[name] = fn
}

// residentSnapshots returns the registered stores' stats in deterministic
// (sorted-name) order. The callbacks run outside the registry lock.
func residentSnapshots() ([]string, []ResidentStats) {
	residentMu.Lock()
	names := make([]string, 0, len(residentFns))
	for name := range residentFns {
		names = append(names, name)
	}
	sort.Strings(names)
	fns := make([]func() ResidentStats, len(names))
	for i, name := range names {
		fns[i] = residentFns[name]
	}
	residentMu.Unlock()
	stats := make([]ResidentStats, len(fns))
	for i, fn := range fns {
		stats[i] = fn()
	}
	return names, stats
}

// writeResidentPrometheus renders the resident-store families; called from
// WritePrometheus so /metrics carries them next to executor and engine
// series.
func writeResidentPrometheus(w io.Writer) {
	names, stats := residentSnapshots()
	if len(names) == 0 {
		return
	}
	gauges := []struct {
		family, help string
		value        func(s ResidentStats) int64
	}{
		{"cake_resident_operands", "Operands currently resident.", func(s ResidentStats) int64 { return s.Entries }},
		{"cake_resident_pinned", "Resident operands pinned by in-flight GEMMs.", func(s ResidentStats) int64 { return s.Pinned }},
		{"cake_resident_bytes", "Resident packed-panel bytes.", func(s ResidentStats) int64 { return s.Bytes }},
		{"cake_resident_budget_bytes", "Configured resident byte budget (0 = unlimited).", func(s ResidentStats) int64 { return s.Budget }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.family, g.help, g.family)
		for i, name := range names {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", g.family, name, g.value(stats[i]))
		}
	}
	counters := []struct {
		family, help string
		value        func(s ResidentStats) int64
	}{
		{"cake_resident_hits_total", "Resident operand acquisitions served.", func(s ResidentStats) int64 { return s.Hits }},
		{"cake_resident_misses_total", "Resident operand acquisitions failed (evicted or unknown).", func(s ResidentStats) int64 { return s.Misses }},
		{"cake_resident_evictions_total", "Resident operands lost to budget pressure.", func(s ResidentStats) int64 { return s.Evictions }},
		{"cake_resident_avoided_pack_bytes_total", "Pack traffic skipped by resident-path GEMMs.", func(s ResidentStats) int64 { return s.AvoidedPackBytes }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.family, c.help, c.family)
		for i, name := range names {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", c.family, name, c.value(stats[i]))
		}
	}
}
