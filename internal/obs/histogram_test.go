package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestHistBucketBounds(t *testing.T) {
	cases := []struct {
		durNs int64
		want  int
	}{
		{-5, 0}, // clamped by Observe; histBucket itself sees ≥0
		{0, 0},
		{1, 0},
		{256, 0}, // exactly the first bound is inclusive
		{257, 1}, // one past the bound rolls over
		{512, 1},
		{513, 2},
		{1 << 20, 12}, // 1 MiB ns ≈ 1 ms
		{HistBucketBound(histBucketCount - 1), histBucketCount - 1},
		{HistBucketBound(histBucketCount-1) + 1, histBucketCount}, // overflow
		{math.MaxInt64, histBucketCount},
	}
	for _, c := range cases {
		d := c.durNs
		if d < 0 {
			d = 0
		}
		if got := histBucket(d); got != c.want {
			t.Fatalf("histBucket(%d) = %d, want %d", c.durNs, got, c.want)
		}
	}
	// Bounds double: each bucket covers (2^(i-1)·256, 2^i·256].
	for i := 1; i <= histBucketCount; i++ {
		if HistBucketBound(i) != 2*HistBucketBound(i-1) {
			t.Fatalf("bound %d = %d, not double of %d", i, HistBucketBound(i), HistBucketBound(i-1))
		}
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.SumNanos() != 0 {
		t.Fatalf("zero histogram count/sum = %d/%d", h.Count(), h.SumNanos())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(h.String()), &decoded); err != nil {
		t.Fatalf("empty histogram String() is not valid JSON: %v\n%s", err, h.String())
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast spans (≤256ns bucket), 9 medium (1µs), 1 slow (1ms).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	h.Observe(1_000_000)

	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if want := int64(90*100 + 9*1000 + 1_000_000); h.SumNanos() != want {
		t.Fatalf("sum = %d, want %d", h.SumNanos(), want)
	}
	// p50 lands in the fast bucket, p95 in the 1µs bucket (bound 1024),
	// p99 still in the 1µs bucket (99th of 100 is the 99th obs), and the
	// max quantile reaches the slow span's bucket.
	if p50 := h.P50(); p50 != 256 {
		t.Fatalf("p50 = %g, want 256", p50)
	}
	if p95 := h.P95(); p95 != 1024 {
		t.Fatalf("p95 = %g, want 1024", p95)
	}
	if p99 := h.P99(); p99 != 1024 {
		t.Fatalf("p99 = %g, want 1024", p99)
	}
	if q := h.Quantile(1.0); q != float64(HistBucketBound(histBucket(1_000_000))) {
		t.Fatalf("max quantile = %g", q)
	}

	// Negative durations clamp to the smallest bucket instead of panicking.
	h.Observe(-42)
	if h.Count() != 101 {
		t.Fatalf("count after negative observe = %d", h.Count())
	}
}

func TestHistogramOverflowQuantileIsInf(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64) // overflow bucket
	if q := h.Quantile(0.5); !math.IsInf(q, 1) {
		t.Fatalf("overflow quantile = %g, want +Inf", q)
	}
	// String() must still be valid JSON (+Inf renders as null).
	var decoded map[string]any
	if err := json.Unmarshal([]byte(h.String()), &decoded); err != nil {
		t.Fatalf("overflow histogram String() invalid JSON: %v\n%s", err, h.String())
	}
	if decoded["p50_ns"] != nil {
		t.Fatalf("overflow p50 rendered as %v, want null", decoded["p50_ns"])
	}
	buckets := decoded["buckets"].(map[string]any)
	if v, ok := buckets["+Inf"]; !ok || v.(float64) != 1 {
		t.Fatalf("overflow bucket = %v", buckets)
	}
}

// TestHistogramQuantileEdges pins the quantile behaviour the reqtrace rolling
// p99 depends on: an empty histogram reports 0 (not NaN or a bucket bound), a
// single-bucket population reports that bucket's upper bound at every
// quantile, and a histogram whose mass sits in the overflow bucket reports
// +Inf — the signal reqtrace stores as MaxInt64 to silence the latency
// anomaly rather than tripping on every request.
func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
			}
		}
		if h.P99() != 0 {
			t.Fatalf("empty P99 = %g, want 0", h.P99())
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		var h Histogram
		// All observations land in the bucket bounded by 1024ns.
		for i := 0; i < 1000; i++ {
			h.Observe(600)
		}
		bound := float64(HistBucketBound(histBucket(600)))
		for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
			if got := h.Quantile(q); got != bound {
				t.Fatalf("single-bucket Quantile(%g) = %g, want %g", q, got, bound)
			}
		}
	})

	t.Run("saturated-top-bucket", func(t *testing.T) {
		var h Histogram
		// 2% of mass in the overflow bucket puts p99 past every finite bound.
		for i := 0; i < 98; i++ {
			h.Observe(100)
		}
		h.Observe(math.MaxInt64)
		h.Observe(math.MaxInt64)
		if p99 := h.P99(); !math.IsInf(p99, 1) {
			t.Fatalf("saturated-top p99 = %g, want +Inf", p99)
		}
		// Lower quantiles stay finite: the overflow mass is only the tail.
		if p50 := h.P50(); math.IsInf(p50, 1) || p50 <= 0 {
			t.Fatalf("saturated-top p50 = %g, want finite positive", p50)
		}
	})

	t.Run("quantile-bounds-clamp", func(t *testing.T) {
		var h Histogram
		h.Observe(100)
		lo, hi := h.Quantile(-1), h.Quantile(2)
		if lo != h.Quantile(0) || hi != h.Quantile(1) {
			t.Fatalf("out-of-range quantiles = %g/%g, want clamped to %g/%g",
				lo, hi, h.Quantile(0), h.Quantile(1))
		}
	})
}

func TestHistogramExpvarJSON(t *testing.T) {
	var h Histogram
	h.Observe(300)
	h.Observe(300)
	h.Observe(2000)
	var decoded struct {
		Count   int64              `json:"count"`
		SumNs   int64              `json:"sum_ns"`
		P50     float64            `json:"p50_ns"`
		Buckets map[string]float64 `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(h.String()), &decoded); err != nil {
		t.Fatalf("String() invalid JSON: %v\n%s", err, h.String())
	}
	if decoded.Count != 3 || decoded.SumNs != 2600 {
		t.Fatalf("count/sum = %d/%d", decoded.Count, decoded.SumNs)
	}
	if decoded.Buckets["512"] != 2 || decoded.Buckets["2048"] != 1 {
		t.Fatalf("buckets = %v", decoded.Buckets)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(100 + g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestObservePhaseRouting(t *testing.T) {
	var m ExecMetrics
	m.ObservePhase(PhasePack, 100)
	m.ObservePhase(PhaseCompute, 200)
	m.ObservePhase(PhaseCompute, 300)
	m.ObservePhase(PhaseUnpack, 400) // ignored
	m.ObservePhase(PhaseReuse, 500)  // ignored
	if m.PackDur.Count() != 1 || m.ComputeDur.Count() != 2 {
		t.Fatalf("pack/compute counts = %d/%d", m.PackDur.Count(), m.ComputeDur.Count())
	}
	if m.ComputeDur.SumNanos() != 500 {
		t.Fatalf("compute sum = %d", m.ComputeDur.SumNanos())
	}
}
