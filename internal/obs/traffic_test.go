package obs

import "testing"

func TestMeasuredTraffic(t *testing.T) {
	spans := []Span{
		span(0, 10, 100, PhasePack),
		span(10, 10, 200, PhasePack),
		span(20, 10, 30, PhaseCompute),
		span(30, 10, 40, PhaseUnpack),
		span(40, 0, 5000, PhaseReuse),
		span(40, 0, 1000, PhaseReuse),
	}
	tr, avoided := MeasuredTraffic(spans)
	if tr.PackBytes != 300 || tr.ComputeBytes != 30 || tr.UnpackBytes != 40 {
		t.Fatalf("traffic = %+v", tr)
	}
	if tr.TotalBytes() != 370 {
		t.Fatalf("total = %d, want 370", tr.TotalBytes())
	}
	if avoided != 6000 {
		t.Fatalf("avoided = %d, want 6000", avoided)
	}

	tr, avoided = MeasuredTraffic(nil)
	if tr != (Traffic{}) || avoided != 0 {
		t.Fatalf("empty input: traffic = %+v, avoided = %d", tr, avoided)
	}
}
