package obs

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %g, want %g", name, got, want)
	}
}

func TestTimelineStraddlingSpanSplitsProportionally(t *testing.T) {
	// The bucket grid starts at the earliest span. A zero-byte span at 0
	// anchors the origin; 100 bytes over [50, 150) then straddle the
	// boundary at 100 and split evenly between buckets 0 and 1.
	spans := []Span{
		span(0, 10, 0, PhaseCompute),
		span(50, 100, 100, PhasePack),
	}
	tl := NewTimeline(spans, 100)
	if tl.OriginNs != 0 || tl.BucketNs != 100 {
		t.Fatalf("origin/bucket = %d/%d", tl.OriginNs, tl.BucketNs)
	}
	if len(tl.Bytes) != 2 {
		t.Fatalf("buckets = %d, want 2", len(tl.Bytes))
	}
	approx(t, "bucket 0", tl.Bytes[0], 50)
	approx(t, "bucket 1", tl.Bytes[1], 50)
	// Uneven straddle: 75/25 split of the same span on a shifted grid.
	tl = NewTimeline([]Span{span(0, 10, 0, PhaseCompute), span(50, 100, 100, PhasePack)}, 125)
	approx(t, "shifted bucket 0", tl.Bytes[0], 75)
	approx(t, "shifted bucket 1", tl.Bytes[1], 25)
}

func TestTimelineLongSpanRaisesManyBuckets(t *testing.T) {
	// 400 bytes over [0, 400) with 100ns buckets: 100 bytes each.
	tl := NewTimeline([]Span{span(0, 400, 400, PhaseCompute)}, 100)
	if len(tl.Bytes) != 4 {
		t.Fatalf("buckets = %d, want 4", len(tl.Bytes))
	}
	for i, b := range tl.Bytes {
		approx(t, "bucket", b, 100)
		_ = i
	}
}

func TestTimelineEmptyBucketsCount(t *testing.T) {
	// Traffic in buckets 0 and 3; 1 and 2 stay zero but are present and
	// depress the mean / raise the CoV, like an idle bus.
	spans := []Span{
		span(0, 100, 100, PhasePack),
		span(300, 100, 100, PhasePack),
	}
	tl := NewTimeline(spans, 100)
	if len(tl.Bytes) != 4 {
		t.Fatalf("buckets = %d, want 4", len(tl.Bytes))
	}
	approx(t, "bucket 1", tl.Bytes[1], 0)
	approx(t, "bucket 2", tl.Bytes[2], 0)
	st := tl.Stats()
	approx(t, "mean bytes/bucket", st.MeanBps*float64(tl.BucketNs)/1e9, 50)
	approx(t, "CoV", st.CoV, 1) // two at 100, two at 0: stddev = mean
}

func TestTimelineZeroDurationSpanCreditsContainingBucket(t *testing.T) {
	tl := NewTimeline([]Span{
		span(0, 100, 10, PhasePack),
		span(150, 0, 70, PhaseUnpack), // instant, inside bucket 1
	}, 100)
	approx(t, "bucket 0", tl.Bytes[0], 10)
	approx(t, "bucket 1", tl.Bytes[1], 70)
}

func TestTimelineExcludesReuseSpans(t *testing.T) {
	spans := []Span{
		span(0, 100, 100, PhasePack),
		span(500, 0, 1e6, PhaseReuse), // avoided traffic: not DRAM bytes
	}
	tl := NewTimeline(spans, 100)
	if len(tl.Bytes) != 1 {
		t.Fatalf("buckets = %d, want 1 (reuse span must not extend the range)", len(tl.Bytes))
	}
	approx(t, "total", tl.Stats().TotalB, 100)
}

func TestTimelineNoSpans(t *testing.T) {
	tl := NewTimeline(nil, 100)
	if len(tl.Bytes) != 0 {
		t.Fatalf("buckets = %d, want 0", len(tl.Bytes))
	}
	st := tl.Stats()
	if st.MeanBps != 0 || st.PeakBps != 0 || st.CoV != 0 {
		t.Fatalf("stats of empty timeline = %+v", st)
	}
	// Reuse-only input behaves the same.
	tl = NewTimeline([]Span{span(0, 0, 5, PhaseReuse)}, 100)
	if len(tl.Bytes) != 0 {
		t.Fatalf("reuse-only timeline has %d buckets", len(tl.Bytes))
	}
}

func TestTimelineConservesBytes(t *testing.T) {
	spans := []Span{
		span(13, 377, 1000, PhasePack),
		span(250, 999, 12345, PhaseCompute),
		span(700, 1, 7, PhaseUnpack),
		span(900, 0, 3, PhaseUnpack),
	}
	tl := NewTimeline(spans, 97) // bucket size not dividing anything evenly
	approx(t, "total bytes", tl.Stats().TotalB, 1000+12345+7+3)
}

func TestNewTimelineNFixedBucketCount(t *testing.T) {
	spans := []Span{
		span(0, 1000, 500, PhasePack),
		span(5000, 1000, 500, PhasePack),
	}
	tl := NewTimelineN(spans, 48)
	if len(tl.Bytes) > 48 {
		t.Fatalf("buckets = %d, want ≤ 48", len(tl.Bytes))
	}
	approx(t, "total bytes", tl.Stats().TotalB, 1000)
	if tl2 := NewTimelineN(nil, 48); len(tl2.Bytes) != 0 {
		t.Fatalf("empty input produced %d buckets", len(tl2.Bytes))
	}
}

func TestBWStatsMath(t *testing.T) {
	// Hand-built timeline: buckets of 1µs holding 1000/3000/2000 bytes.
	tl := Timeline{BucketNs: 1000, Bytes: []float64{1000, 3000, 2000}}
	st := tl.Stats()
	approx(t, "MeanBps", st.MeanBps, 2000/1e-6)
	approx(t, "PeakBps", st.PeakBps, 3000/1e-6)
	// mean 2000, deviations (-1000, 1000, 0) → stddev sqrt(2/3)*1000
	approx(t, "CoV", st.CoV, math.Sqrt(2.0/3.0)*1000/2000)
	approx(t, "TotalB", st.TotalB, 6000)
	if st.SpanNs != 3000 || st.Buckets != 3 {
		t.Fatalf("SpanNs/Buckets = %d/%d", st.SpanNs, st.Buckets)
	}
}

func TestCoVDistinguishesFlatFromSpiky(t *testing.T) {
	flat := Timeline{BucketNs: 1, Bytes: []float64{10, 10, 10, 10}}
	spiky := Timeline{BucketNs: 1, Bytes: []float64{40, 0, 0, 0}}
	if f, s := flat.Stats().CoV, spiky.Stats().CoV; !(f < s) {
		t.Fatalf("flat CoV %g not below spiky CoV %g", f, s)
	}
	if cov := flat.Stats().CoV; cov != 0 {
		t.Fatalf("perfectly flat CoV = %g, want 0", cov)
	}
}
