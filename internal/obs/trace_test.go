package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodedEvent mirrors the subset of Trace Event Format fields the tests
// assert on; decoding through it also validates the exported JSON shape.
type decodedEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

type decodedFile struct {
	TraceEvents     []decodedEvent `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
}

func exportAndDecode(t *testing.T, procs ...Process) decodedFile {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, procs...); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var f decodedFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return f
}

func TestWriteChromeTraceEvents(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, Span{StartNs: 1000, DurNs: 500, Bytes: 64, Block: Block{M: 1, K: 2, N: 3}, Phase: PhasePack})
	r.Record(1, Span{StartNs: 1200, DurNs: 800, Bytes: 0, Phase: PhaseCompute})
	r.Record(r.SchedulerLane(), Span{StartNs: 1300, Bytes: 4096, Phase: PhaseReuse})

	f := exportAndDecode(t, Process{Name: "cake", Rec: r})
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	var procName, packLane, computeLane *decodedEvent
	var reuse *decodedEvent
	threadNames := map[int]string{}
	for i := range f.TraceEvents {
		ev := &f.TraceEvents[i]
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procName = ev
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[ev.Tid], _ = ev.Args["name"].(string)
		case ev.Ph == "X" && ev.Name == "pack":
			packLane = ev
		case ev.Ph == "X" && ev.Name == "compute":
			computeLane = ev
		case ev.Ph == "i":
			reuse = ev
		}
	}
	if procName == nil || procName.Pid != 1 {
		t.Fatalf("missing process_name metadata: %+v", procName)
	}
	if name, _ := procName.Args["name"].(string); name != "cake" {
		t.Fatalf("process name = %q", name)
	}
	if packLane == nil || computeLane == nil {
		t.Fatalf("missing pack/compute X events")
	}
	if packLane.Tid == computeLane.Tid {
		t.Fatalf("pack and compute landed on the same lane tid=%d", packLane.Tid)
	}
	// First span defines the origin: ts 0, later span offset in µs.
	if packLane.Ts != 0 {
		t.Fatalf("earliest span ts = %g, want 0", packLane.Ts)
	}
	if computeLane.Ts != 0.2 { // (1200-1000) ns = 0.2 µs
		t.Fatalf("compute ts = %g µs, want 0.2", computeLane.Ts)
	}
	if packLane.Dur != 0.5 {
		t.Fatalf("pack dur = %g µs, want 0.5", packLane.Dur)
	}
	if blk, _ := packLane.Args["block"].(string); blk != "(1,2,3)" {
		t.Fatalf("pack block arg = %q", blk)
	}
	if reuse == nil || reuse.S != "t" {
		t.Fatalf("reuse instant event missing or unscoped: %+v", reuse)
	}
	if av, _ := reuse.Args["avoided_bytes"].(float64); av != 4096 {
		t.Fatalf("avoided_bytes = %v", reuse.Args["avoided_bytes"])
	}
	if threadNames[2] != "scheduler" {
		t.Fatalf("scheduler lane name = %q", threadNames[2])
	}
	if threadNames[0] != "worker 0" || threadNames[1] != "worker 1" {
		t.Fatalf("worker lane names = %v", threadNames)
	}
}

func TestWriteChromeTraceMultipleProcesses(t *testing.T) {
	r1 := NewRecorder(1, 4)
	r1.Record(0, Span{StartNs: 100, DurNs: 10, Bytes: 1, Phase: PhasePack})
	r2 := NewRecorder(1, 4)
	r2.Record(0, Span{StartNs: 9000, DurNs: 10, Bytes: 1, Phase: PhasePack})

	f := exportAndDecode(t, Process{Name: "cake", Rec: r1}, Process{Name: "goto", Rec: r2})
	pids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		pids[ev.Pid] = true
		// Per-process origin normalisation: every span starts at ts 0 here.
		if ev.Ph == "X" && ev.Ts != 0 {
			t.Fatalf("pid %d span ts = %g, want 0 (per-process origin)", ev.Pid, ev.Ts)
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("expected pids 1 and 2, got %v", pids)
	}
}

func TestWriteChromeTraceEmptyRecorder(t *testing.T) {
	f := exportAndDecode(t, Process{Name: "idle", Rec: NewRecorder(1, 4)})
	// Just the process_name metadata; still a valid file.
	if len(f.TraceEvents) != 1 || f.TraceEvents[0].Ph != "M" {
		t.Fatalf("events = %+v", f.TraceEvents)
	}
}
