package obs

// Corpus observability: the performance-trajectory corpus (internal/
// experiments + internal/benchgate) publishes its latest epoch and per-cell
// trend verdicts here, and the debug server serves them on
// /debug/corpus.json next to the conformance report. Like SetConformance,
// the payload is an opaque JSON-marshalable value — obs sits below the
// corpus packages in the dependency graph, so it cannot name their types.
// The per-cell metric rows are mirrored as the cake_corpus expvar and the
// cake_corpus_* Prometheus families so a scraping host sees the trajectory
// state without fetching the full epoch.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// CorpusCellState is one grid cell's published metric row: its committed
// throughput and the trend verdict the analyzer assigned.
type CorpusCellState struct {
	Cell    string  `json:"cell"` // shape/scenario/dtype key
	GFLOPS  float64 `json:"gflops"`
	Verdict string  `json:"verdict"` // ok|improved|regressed|noisy|new-cell
}

var (
	corpusMu     sync.Mutex
	latestCorpus any
	hasCorpus    bool
	corpusCells  []CorpusCellState
	corpusSeq    int
	corpusVarOn  bool
)

// SetCorpus publishes the latest corpus document (epoch + trend verdicts; any
// JSON-marshalable value) for /debug/corpus.json, and the per-cell metric
// rows for expvar/Prometheus. seq is the epoch's store sequence number.
func SetCorpus(doc any, seq int, cells []CorpusCellState) {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	latestCorpus, hasCorpus = doc, true
	corpusSeq = seq
	corpusCells = append([]CorpusCellState(nil), cells...)
	if !corpusVarOn {
		corpusVarOn = true
		expvar.Publish("cake_corpus", expvar.Func(func() any {
			corpusMu.Lock()
			defer corpusMu.Unlock()
			return map[string]any{
				"seq":   corpusSeq,
				"cells": append([]CorpusCellState(nil), corpusCells...),
			}
		}))
	}
}

// LatestCorpus returns the most recently published corpus document, or
// ok=false when none has been published yet.
func LatestCorpus() (any, bool) {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	return latestCorpus, hasCorpus
}

func serveCorpus(w http.ResponseWriter, r *http.Request) {
	doc, ok := LatestCorpus()
	if !ok {
		http.Error(w, "no corpus epoch published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// corpusTrendStates is the fixed verdict label set every cell exports one
// series per — a Prometheus "state set", so dashboards can alert on
// `cake_corpus_cell_trend{verdict="regressed"} == 1` without string parsing.
var corpusTrendStates = []string{"ok", "improved", "regressed", "noisy", "new-cell"}

// writeCorpusPrometheus renders the corpus families; called from
// WritePrometheus so /metrics carries the trajectory state next to the
// executor and engine series.
func writeCorpusPrometheus(w io.Writer) {
	corpusMu.Lock()
	cells := append([]CorpusCellState(nil), corpusCells...)
	seq := corpusSeq
	on := hasCorpus
	corpusMu.Unlock()
	if !on {
		return
	}
	fmt.Fprintf(w, "# HELP cake_corpus_epoch_seq Latest corpus epoch sequence number.\n# TYPE cake_corpus_epoch_seq gauge\n")
	fmt.Fprintf(w, "cake_corpus_epoch_seq %d\n", seq)
	fmt.Fprintf(w, "# HELP cake_corpus_cell_gflops Worst-of-N GFLOP/s per corpus grid cell (latest epoch).\n# TYPE cake_corpus_cell_gflops gauge\n")
	for _, c := range cells {
		fmt.Fprintf(w, "cake_corpus_cell_gflops{cell=%q} %g\n", c.Cell, c.GFLOPS)
	}
	fmt.Fprintf(w, "# HELP cake_corpus_cell_trend Trend verdict state set per corpus grid cell (1 = current verdict).\n# TYPE cake_corpus_cell_trend gauge\n")
	for _, c := range cells {
		for _, state := range corpusTrendStates {
			v := 0
			if c.Verdict == state {
				v = 1
			}
			fmt.Fprintf(w, "cake_corpus_cell_trend{cell=%q,verdict=%q} %d\n", c.Cell, state, v)
		}
	}
}
