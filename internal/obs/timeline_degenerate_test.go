package obs

import "testing"

// The timeline constructors promise to degrade to an empty timeline on
// degenerate input — non-positive bucket sizes/counts and span sets with no
// DRAM traffic — instead of panicking or allocating a bucket per nanosecond.
func TestTimelineDegenerateInputs(t *testing.T) {
	traffic := []Span{span(0, 100, 64, PhasePack), span(200, 50, 32, PhaseCompute)}
	reuseOnly := []Span{span(0, 0, 1<<20, PhaseReuse)}

	cases := []struct {
		name  string
		build func() Timeline
	}{
		{"NewTimeline zero bucket size", func() Timeline { return NewTimeline(traffic, 0) }},
		{"NewTimeline negative bucket size", func() Timeline { return NewTimeline(traffic, -100) }},
		{"NewTimeline nil spans", func() Timeline { return NewTimeline(nil, 100) }},
		{"NewTimeline empty spans", func() Timeline { return NewTimeline([]Span{}, 100) }},
		{"NewTimeline reuse-only spans", func() Timeline { return NewTimeline(reuseOnly, 100) }},
		{"NewTimeline all degenerate", func() Timeline { return NewTimeline(nil, 0) }},
		{"NewTimelineN zero buckets", func() Timeline { return NewTimelineN(traffic, 0) }},
		{"NewTimelineN negative buckets", func() Timeline { return NewTimelineN(traffic, -3) }},
		{"NewTimelineN nil spans", func() Timeline { return NewTimelineN(nil, 12) }},
		{"NewTimelineN reuse-only spans", func() Timeline { return NewTimelineN(reuseOnly, 12) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tl := c.build() // must not panic
			if len(tl.Bytes) != 0 {
				t.Fatalf("got %d buckets, want an empty timeline", len(tl.Bytes))
			}
			st := tl.Stats()
			if st.Buckets != 0 || st.MeanBps != 0 || st.PeakBps != 0 || st.CoV != 0 || st.TotalB != 0 {
				t.Fatalf("empty timeline stats = %+v, want all zero", st)
			}
		})
	}
}

// Well-formed input right at the edge of degenerate must still work: a
// single instant span and a one-bucket timeline.
func TestTimelineMinimalValidInputs(t *testing.T) {
	tl := NewTimeline([]Span{span(500, 0, 40, PhaseUnpack)}, 100)
	if len(tl.Bytes) != 1 {
		t.Fatalf("instant-span timeline has %d buckets, want 1", len(tl.Bytes))
	}
	approx(t, "instant span bytes", tl.Bytes[0], 40)

	tl = NewTimelineN([]Span{span(0, 1000, 64, PhasePack)}, 1)
	if len(tl.Bytes) != 1 {
		t.Fatalf("one-bucket timeline has %d buckets, want 1", len(tl.Bytes))
	}
	approx(t, "one-bucket total", tl.Stats().TotalB, 64)
}
