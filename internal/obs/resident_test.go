package obs

import (
	"expvar"
	"strings"
	"testing"
)

func TestPublishResidentExpvarAndReplace(t *testing.T) {
	calls := 0
	PublishResident("test-store", func() ResidentStats {
		calls++
		return ResidentStats{Entries: 3, Bytes: 4096}
	})
	v := expvar.Get("cake_resident")
	if v == nil {
		t.Fatal("cake_resident expvar not published")
	}
	s := v.String()
	if !strings.Contains(s, "test-store") || !strings.Contains(s, "\"Bytes\":4096") {
		t.Fatalf("cake_resident JSON missing fields: %s", s)
	}
	if calls == 0 {
		t.Fatal("stats callback never ran")
	}

	// Re-publishing the same name swaps the callback (engine restart) with
	// no duplicate-expvar panic and no stale closure.
	PublishResident("test-store", func() ResidentStats { return ResidentStats{Entries: 9} })
	if s := expvar.Get("cake_resident").String(); !strings.Contains(s, "\"Entries\":9") {
		t.Fatalf("replaced callback not visible: %s", s)
	}
}

func TestWritePrometheusResidentFamilies(t *testing.T) {
	PublishResident("prom-store", func() ResidentStats {
		return ResidentStats{
			Entries: 2, Pinned: 1, Bytes: 1024, Budget: 4096,
			Hits: 10, Misses: 3, Evictions: 2, AvoidedPackBytes: 777,
		}
	})
	var b strings.Builder
	writeResidentPrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE cake_resident_operands gauge",
		`cake_resident_operands{engine="prom-store"} 2`,
		`cake_resident_pinned{engine="prom-store"} 1`,
		`cake_resident_bytes{engine="prom-store"} 1024`,
		`cake_resident_budget_bytes{engine="prom-store"} 4096`,
		"# TYPE cake_resident_hits_total counter",
		`cake_resident_hits_total{engine="prom-store"} 10`,
		`cake_resident_misses_total{engine="prom-store"} 3`,
		`cake_resident_evictions_total{engine="prom-store"} 2`,
		`cake_resident_avoided_pack_bytes_total{engine="prom-store"} 777`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The resident families ride along in the full WritePrometheus render.
	var full strings.Builder
	WritePrometheus(&full)
	if !strings.Contains(full.String(), "cake_resident_operands") {
		t.Fatal("WritePrometheus does not include resident families")
	}
}
