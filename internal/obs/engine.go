package obs

// Engine observability: the concurrent GEMM engine (internal/engine) reports
// its serving-side state — in-flight and queued requests, size-tier hits,
// executor-lease reuse — through the same expvar + Prometheus surface the
// executor counters use, so a serving host's saturation and dispatch mix are
// visible next to its per-GEMM traffic accounting.

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// EngineStats is a point-in-time snapshot of one engine's serving counters.
// InFlight and Queued are gauges; the rest are cumulative totals.
type EngineStats struct {
	InFlight    int64 // requests currently holding cores
	Queued      int64 // requests waiting for admission
	QueuedTotal int64 // requests that ever waited
	Rejected    int64 // requests refused at the admission limit
	TierTiny    int64 // dispatches down the direct-microkernel path
	TierSmall   int64 // dispatches down the single-CB-block path
	TierLarge   int64 // dispatches down the full pipelined path
	LeaseNew    int64 // executor leases served by constructing a new executor
	LeaseReused int64 // executor leases served from the per-tier pool
}

var (
	enginesMu  sync.Mutex
	enginesVar *expvar.Map
	engineFns  = map[string]func() EngineStats{}
)

// PublishEngine registers a live stats callback under the process-wide
// "cake_engine" expvar map. Re-publishing a name replaces its callback (the
// previous engine is usually closed), so tests and engine restarts are safe.
// The callback must be safe to call from any goroutine.
func PublishEngine(name string, fn func() EngineStats) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	if enginesVar == nil {
		enginesVar = expvar.NewMap("cake_engine")
	}
	if _, ok := engineFns[name]; !ok {
		n := name
		enginesVar.Set(n, expvar.Func(func() any {
			enginesMu.Lock()
			fn := engineFns[n]
			enginesMu.Unlock()
			if fn == nil {
				return EngineStats{}
			}
			return fn()
		}))
	}
	engineFns[name] = fn
}

// engineSnapshots returns the registered engines' stats in deterministic
// (sorted-name) order. The callbacks run outside the registry lock.
func engineSnapshots() ([]string, []EngineStats) {
	enginesMu.Lock()
	names := make([]string, 0, len(engineFns))
	for name := range engineFns {
		names = append(names, name)
	}
	sort.Strings(names)
	fns := make([]func() EngineStats, len(names))
	for i, name := range names {
		fns[i] = engineFns[name]
	}
	enginesMu.Unlock()
	stats := make([]EngineStats, len(fns))
	for i, fn := range fns {
		stats[i] = fn()
	}
	return names, stats
}

// writeEnginePrometheus renders the engine families; called from
// WritePrometheus so /metrics carries executor and engine series together.
func writeEnginePrometheus(w io.Writer) {
	names, stats := engineSnapshots()
	if len(names) == 0 {
		return
	}
	gauges := []struct {
		family, help string
		value        func(s EngineStats) int64
	}{
		{"cake_engine_in_flight", "Requests currently holding cores.", func(s EngineStats) int64 { return s.InFlight }},
		{"cake_engine_queue_depth", "Requests waiting for admission.", func(s EngineStats) int64 { return s.Queued }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.family, g.help, g.family)
		for i, name := range names {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", g.family, name, g.value(stats[i]))
		}
	}
	counters := []struct {
		family, help string
		value        func(s EngineStats) int64
	}{
		{"cake_engine_queued_total", "Requests that waited for admission.", func(s EngineStats) int64 { return s.QueuedTotal }},
		{"cake_engine_rejected_total", "Requests refused at the admission limit.", func(s EngineStats) int64 { return s.Rejected }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.family, c.help, c.family)
		for i, name := range names {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", c.family, name, c.value(stats[i]))
		}
	}
	const tiers = "cake_engine_tier_hits_total"
	fmt.Fprintf(w, "# HELP %s Dispatches by size tier.\n# TYPE %s counter\n", tiers, tiers)
	for i, name := range names {
		fmt.Fprintf(w, "%s{engine=%q,tier=\"tiny\"} %d\n", tiers, name, stats[i].TierTiny)
		fmt.Fprintf(w, "%s{engine=%q,tier=\"small\"} %d\n", tiers, name, stats[i].TierSmall)
		fmt.Fprintf(w, "%s{engine=%q,tier=\"large\"} %d\n", tiers, name, stats[i].TierLarge)
	}
	const leases = "cake_engine_leases_total"
	fmt.Fprintf(w, "# HELP %s Executor leases by outcome.\n# TYPE %s counter\n", leases, leases)
	for i, name := range names {
		fmt.Fprintf(w, "%s{engine=%q,kind=\"new\"} %d\n", leases, name, stats[i].LeaseNew)
		fmt.Fprintf(w, "%s{engine=%q,kind=\"reused\"} %d\n", leases, name, stats[i].LeaseReused)
	}
}
