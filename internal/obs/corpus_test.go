package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// resetCorpusState clears the published corpus doc between tests (the expvar
// stays registered — expvar forbids unpublishing — but reads the cleared state).
func resetCorpusState() {
	corpusMu.Lock()
	latestCorpus, hasCorpus = nil, false
	corpusCells, corpusSeq = nil, 0
	corpusMu.Unlock()
}

func TestCorpusEndpoint404BeforePublish(t *testing.T) {
	resetCorpusState()
	t.Cleanup(resetCorpusState)
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	code, _ := debugGet(t, srv, "/debug/corpus.json")
	if code != http.StatusNotFound {
		t.Fatalf("pre-publish code = %d, want 404", code)
	}
}

func TestCorpusEndpointServesLatestDoc(t *testing.T) {
	resetCorpusState()
	t.Cleanup(resetCorpusState)

	doc := map[string]any{
		"epoch": map[string]any{"seq": 3, "grid": "micro"},
		"trend": map[string]any{"ok": true},
	}
	cells := []CorpusCellState{
		{Cell: "tiny/fresh/f32", GFLOPS: 12.5, Verdict: "ok"},
		{Cell: "small/resident/f32", GFLOPS: 48.25, Verdict: "regressed"},
	}
	SetCorpus(doc, 3, cells)

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	code, body := debugGet(t, srv, "/debug/corpus.json")
	if code != http.StatusOK {
		t.Fatalf("code = %d, body %q", code, body)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/debug/corpus.json not JSON: %v\n%s", err, body)
	}
	if _, ok := got["epoch"]; !ok {
		t.Fatalf("doc missing epoch: %s", body)
	}

	// Replacing the doc replaces what the endpoint serves.
	SetCorpus(map[string]any{"epoch": "next"}, 4, cells[:1])
	_, body = debugGet(t, srv, "/debug/corpus.json")
	if !strings.Contains(body, "next") {
		t.Fatalf("endpoint did not pick up replacement: %s", body)
	}

	if d, ok := LatestCorpus(); !ok || d == nil {
		t.Fatal("LatestCorpus lost the doc")
	}

	// The index advertises the route.
	_, index := debugGet(t, srv, "/")
	if !strings.Contains(index, "/debug/corpus.json") {
		t.Fatalf("index missing corpus route:\n%s", index)
	}
}

func TestCorpusPrometheusFamilies(t *testing.T) {
	resetCorpusState()
	t.Cleanup(resetCorpusState)

	var before strings.Builder
	writeCorpusPrometheus(&before)
	if before.Len() != 0 {
		t.Fatalf("unpublished corpus emitted metrics:\n%s", before.String())
	}

	SetCorpus(map[string]any{}, 7, []CorpusCellState{
		{Cell: "tiny/fresh/f32", GFLOPS: 12.5, Verdict: "ok"},
		{Cell: "large/serve/f64", GFLOPS: 30, Verdict: "regressed"},
	})
	var b strings.Builder
	writeCorpusPrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"cake_corpus_epoch_seq 7",
		`cake_corpus_cell_gflops{cell="tiny/fresh/f32"} 12.5`,
		`cake_corpus_cell_trend{cell="tiny/fresh/f32",verdict="ok"} 1`,
		`cake_corpus_cell_trend{cell="tiny/fresh/f32",verdict="regressed"} 0`,
		`cake_corpus_cell_trend{cell="large/serve/f64",verdict="regressed"} 1`,
		"# TYPE cake_corpus_cell_trend gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("corpus metrics missing %q:\n%s", want, out)
		}
	}

	// And the families ride along on the full scrape.
	var full strings.Builder
	WritePrometheus(&full)
	if !strings.Contains(full.String(), "cake_corpus_epoch_seq 7") {
		t.Fatal("WritePrometheus missing corpus families")
	}
}

func TestCorpusExpvarMirrorsCells(t *testing.T) {
	resetCorpusState()
	t.Cleanup(resetCorpusState)
	SetCorpus(map[string]any{}, 9, []CorpusCellState{{Cell: "a/b/c", GFLOPS: 1, Verdict: "new-cell"}})

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	_, body := debugGet(t, srv, "/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["cake_corpus"]
	if !ok {
		t.Fatal("expvar cake_corpus not published")
	}
	var v struct {
		Seq   int               `json:"seq"`
		Cells []CorpusCellState `json:"cells"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("cake_corpus payload: %v\n%s", err, raw)
	}
	if v.Seq != 9 || len(v.Cells) != 1 || v.Cells[0].Verdict != "new-cell" {
		t.Fatalf("cake_corpus = %+v", v)
	}
}
