// Package obs is the observability layer for the CAKE and GOTO executors.
// The paper's central claim is temporal — CAKE's K-first CB-block schedule
// keeps DRAM traffic constant over time while GOTO's demand spikes (§3,
// §5.2) — so aggregate counters are not enough: this package records
// per-worker pack/compute/unpack spans on the execution hot path, exports
// them as Chrome Trace Event JSON (viewable in Perfetto), aggregates them
// into bandwidth timelines whose coefficient of variation is the empirical
// test of the constant-bandwidth property, and maintains an expvar-backed
// metrics registry for long-running hosts.
//
// The Recorder is designed for the executors' inner loops: one fixed-size
// ring buffer per worker, an atomic cursor per ring, no locks, and no
// allocation on the record path. A nil *Recorder is valid and records
// nothing, so executors thread a single pointer through and pay one
// predictable branch when tracing is off.
package obs

import (
	"sort"
	"sync/atomic"
)

// Phase classifies what a span's worker was doing.
type Phase uint8

const (
	// PhasePack: moving operand elements from the source matrices into a
	// packed panel — the executor's DRAM read stream.
	PhasePack Phase = iota
	// PhaseCompute: macro-kernel execution. CAKE computes out of
	// cache-resident panels (spans carry zero DRAM bytes); GOTO streams
	// partial C results to and from the output matrix during compute, so
	// its compute spans carry that read-modify-write traffic.
	PhaseCompute
	// PhaseUnpack: folding a completed CB block's resident C surface back
	// into the output matrix (a DRAM read-modify-write).
	PhaseUnpack
	// PhaseReuse: a panel-cache hit — a pack that was skipped because the
	// packed panel was already resident. Zero duration; Bytes holds the
	// DRAM traffic *avoided*, and timelines exclude these spans.
	PhaseReuse
)

func (p Phase) String() string {
	switch p {
	case PhasePack:
		return "pack"
	case PhaseCompute:
		return "compute"
	case PhaseUnpack:
		return "unpack"
	case PhaseReuse:
		return "reuse"
	default:
		return "unknown"
	}
}

// Block identifies the CB-block (or GOTO panel) grid coordinates a span
// belongs to.
type Block struct {
	M, K, N int32
}

// Span is one recorded phase execution. Bytes is the DRAM traffic the span
// moved (zero for cache-resident compute; the avoided traffic for
// PhaseReuse).
type Span struct {
	StartNs int64 // wall-clock start, UnixNano
	DurNs   int64 // duration (0 for instant events)
	Bytes   int64
	Block   Block
	Worker  int32
	Phase   Phase
}

// EndNs returns the span's wall-clock end.
func (s Span) EndNs() int64 { return s.StartNs + s.DurNs }

// lane is one worker's span ring. The atomic cursor makes concurrent
// recording into the same lane safe (distinct goroutines claim distinct
// slots), which matters because the pipelined executor's async pack jobs
// and static compute jobs can address the same worker index concurrently.
// The pad keeps neighbouring lanes' cursors off one cache line.
type lane struct {
	spans []Span
	n     atomic.Int64
	_     [32]byte
}

// Recorder collects spans from a fixed set of workers plus one extra
// "scheduler" lane for orchestrator-side events (panel-cache hits). Each
// lane is a fixed-capacity ring: when full, the oldest spans are
// overwritten and counted in Dropped.
type Recorder struct {
	lanes   []lane
	perLane int
}

// DefaultSpansPerWorker bounds a lane when the caller passes a
// non-positive capacity: enough for every phase of several thousand CB
// blocks, ~1.5 MiB per worker.
const DefaultSpansPerWorker = 1 << 15

// NewRecorder returns a recorder for workers execution lanes (plus the
// scheduler lane), each holding the most recent spansPerWorker spans.
func NewRecorder(workers, spansPerWorker int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	if spansPerWorker <= 0 {
		spansPerWorker = DefaultSpansPerWorker
	}
	r := &Recorder{lanes: make([]lane, workers+1), perLane: spansPerWorker}
	for i := range r.lanes {
		r.lanes[i].spans = make([]Span, spansPerWorker)
	}
	return r
}

// Workers returns the number of execution lanes (excluding the scheduler
// lane).
func (r *Recorder) Workers() int {
	if r == nil {
		return 0
	}
	return len(r.lanes) - 1
}

// SchedulerLane is the worker index of the extra orchestrator lane.
func (r *Recorder) SchedulerLane() int {
	if r == nil {
		return 0
	}
	return len(r.lanes) - 1
}

// Record stores s in the given worker's ring. Safe on a nil receiver (a
// no-op), lock-free, and allocation-free; worker indices outside
// [0, SchedulerLane()] are clamped onto the scheduler lane rather than
// panicking, so a mis-sized recorder degrades instead of crashing a GEMM.
func (r *Recorder) Record(worker int, s Span) {
	if r == nil {
		return
	}
	if worker < 0 || worker >= len(r.lanes) {
		worker = len(r.lanes) - 1
	}
	l := &r.lanes[worker]
	i := l.n.Add(1) - 1
	s.Worker = int32(worker)
	l.spans[i%int64(len(l.spans))] = s
}

// Dropped returns how many spans have been overwritten by ring wrap-around
// since the last Reset.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var d int64
	for i := range r.lanes {
		if n := r.lanes[i].n.Load(); n > int64(r.perLane) {
			d += n - int64(r.perLane)
		}
	}
	return d
}

// Reset forgets all recorded spans. Not safe to call concurrently with
// Record.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.lanes {
		r.lanes[i].n.Store(0)
	}
}

// LaneSpans returns a copy of one lane's retained spans, oldest first.
func (r *Recorder) LaneSpans(worker int) []Span {
	if r == nil || worker < 0 || worker >= len(r.lanes) {
		return nil
	}
	l := &r.lanes[worker]
	n := l.n.Load()
	if n == 0 {
		return nil
	}
	cap64 := int64(len(l.spans))
	if n <= cap64 {
		out := make([]Span, n)
		copy(out, l.spans[:n])
		return out
	}
	// Wrapped: slot n%cap is the oldest retained span.
	out := make([]Span, cap64)
	head := n % cap64
	copy(out, l.spans[head:])
	copy(out[cap64-head:], l.spans[:head])
	return out
}

// Spans returns a copy of every retained span across all lanes, sorted by
// start time. Call after the traced execution has finished (the executors'
// pool barriers establish the necessary happens-before).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for w := range r.lanes {
		out = append(out, r.LaneSpans(w)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}
