package obs

import "testing"

func TestWriteChromeTraceZeroProcesses(t *testing.T) {
	f := exportAndDecode(t) // no processes at all
	if len(f.TraceEvents) != 0 {
		t.Fatalf("events = %+v, want none", f.TraceEvents)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
}

func TestWriteChromeTraceProcessWithZeroSpans(t *testing.T) {
	busy := NewRecorder(1, 4)
	busy.Record(0, Span{StartNs: 100, DurNs: 10, Bytes: 8, Phase: PhasePack})
	idle := NewRecorder(2, 4)

	f := exportAndDecode(t, Process{Name: "busy", Rec: busy}, Process{Name: "idle", Rec: idle})
	// The idle process still announces itself via process_name, with no
	// span or thread events under its pid.
	var idleName bool
	for _, ev := range f.TraceEvents {
		if ev.Pid != 2 {
			continue
		}
		if ev.Ph == "M" && ev.Name == "process_name" {
			idleName = true
			continue
		}
		t.Fatalf("unexpected event under idle pid: %+v", ev)
	}
	if !idleName {
		t.Fatal("idle process missing process_name metadata")
	}
}

func TestWriteChromeTraceDroppedSpansMetadata(t *testing.T) {
	// Ring of 4 spans per worker; record 7 so 3 are overwritten.
	r := NewRecorder(1, 4)
	for i := 0; i < 7; i++ {
		r.Record(0, Span{StartNs: int64(i) * 100, DurNs: 50, Bytes: 8, Phase: PhaseCompute})
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3 (ring behaviour changed?)", r.Dropped())
	}

	f := exportAndDecode(t, Process{Name: "cake", Rec: r})
	var dropped *decodedEvent
	for i := range f.TraceEvents {
		if f.TraceEvents[i].Name == "dropped_spans" {
			dropped = &f.TraceEvents[i]
		}
	}
	if dropped == nil {
		t.Fatal("no dropped_spans metadata event in truncated trace")
	}
	if dropped.Ph != "M" || dropped.Pid != 1 {
		t.Fatalf("dropped_spans event = %+v", dropped)
	}
	if count, _ := dropped.Args["count"].(float64); count != 3 {
		t.Fatalf("dropped_spans count = %v, want 3", dropped.Args["count"])
	}

	// An untruncated recorder must not emit the event.
	ok := NewRecorder(1, 4)
	ok.Record(0, Span{StartNs: 0, DurNs: 1, Bytes: 1, Phase: PhasePack})
	f = exportAndDecode(t, Process{Name: "ok", Rec: ok})
	for _, ev := range f.TraceEvents {
		if ev.Name == "dropped_spans" {
			t.Fatalf("dropped_spans emitted for untruncated recorder: %+v", ev)
		}
	}
}
