// Package conformance joins the paper's analytical model with what a traced
// execution actually did. For one GEMM run it computes the cbtheory-
// predicted DRAM traffic, arithmetic intensity and bandwidth requirements
// for the exact shape and configuration, reduces the recorded spans to
// measured traffic and bandwidth-timeline statistics, and emits a Report of
// predicted-vs-measured checks with pass/fail verdicts at configurable
// tolerances — the repo's executable statement of "does this execution
// behave the way Section 4 says it must".
package conformance

import (
	"fmt"

	"repro/internal/cbtheory"
	"repro/internal/core"
	"repro/internal/gotoalg"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
)

// Tolerances configures how strictly Evaluate judges a run.
type Tolerances struct {
	// Traffic is the allowed relative error between measured and predicted
	// per-phase DRAM traffic. The executors record spans from the same
	// analytic formulas the predictors use, so the default is tight.
	Traffic float64 `json:"traffic"`
	// MaxCoV is the highest acceptable coefficient of variation of the
	// bucketed bandwidth timeline for a constant-bandwidth execution.
	MaxCoV float64 `json:"max_cov"`
	// BandFactor bounds how far the configuration's required DRAM bandwidth
	// may sit above the optimally-blocked requirement before the config
	// counts as mis-tuned (required BW scales as 1/kc, so a kc far below
	// the Section 4.4 sizing shows up here).
	BandFactor float64 `json:"band_factor"`
	// MaxAttainment caps measured/roofline throughput; above it the
	// measurement itself is suspect (timer or model error).
	MaxAttainment float64 `json:"max_attainment"`
}

// DefaultTolerances returns the tolerances the acceptance tests run at.
func DefaultTolerances() Tolerances {
	return Tolerances{Traffic: 0.10, MaxCoV: 1.0, BandFactor: 4, MaxAttainment: 1.1}
}

// Input is everything Evaluate needs about one traced GEMM run. Exactly one
// of Cake or Goto must be set — it selects the model the run is judged
// against.
type Input struct {
	Executor  string // report label, e.g. "cake" or "goto"
	M, K, N   int
	ElemBytes int
	Cake      *core.Config
	Goto      *gotoalg.Config

	Rates             cbtheory.Rates // platform compute rates for bandwidth/roofline conversion
	AvailBWBps        float64        // available DRAM bandwidth, bytes/s
	PrivateCacheBytes int64          // per-core private cache sizing kc (Section 4.4)

	Spans     []obs.Span
	WallNanos int64 // wall clock of the run; 0 derives it from the span extent
	Buckets   int   // timeline buckets for the CoV check; 0 uses 12
	Dropped   int64 // spans lost to ring truncation (taints traffic checks)

	Tol *Tolerances // nil uses DefaultTolerances
}

// Check is one predicted-vs-measured verdict.
type Check struct {
	Name      string  `json:"name"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	Ratio     float64 `json:"ratio"`     // measured/predicted (0 when predicted is 0)
	Tolerance float64 `json:"tolerance"` // the bound Ratio (or Measured) was judged against
	Required  bool    `json:"required"`  // informational checks never fail the report
	Pass      bool    `json:"pass"`
	Detail    string  `json:"detail"`
}

// Predicted is the model's side of the report.
type Predicted struct {
	Traffic       obs.Traffic `json:"traffic"`
	AIMacsPerElem float64     `json:"ai_macs_per_elem"` // whole-run MACs per predicted traffic element
	RequiredBWBps float64     `json:"required_bw_bps"`  // external bandwidth this config's blocks demand
	OptimalBWBps  float64     `json:"optimal_bw_bps"`   // same, for the Section 4.4-sized blocking
	OptimalKC     int         `json:"optimal_kc"`
	PeakFlops     float64     `json:"peak_flops"`
	RooflineFlops float64     `json:"roofline_flops"`
	IdealBytes    int64       `json:"ideal_bytes"` // algorithm-independent floor: A+B read once, C RMW once
}

// Measured is the traced run's side of the report.
type Measured struct {
	Traffic      obs.Traffic `json:"traffic"`
	AvoidedBytes int64       `json:"avoided_bytes"` // panel-cache hits: predicted traffic that never reached DRAM
	WallNanos    int64       `json:"wall_nanos"`
	GFlops       float64     `json:"gflops"`
	MeanBWBps    float64     `json:"mean_bw_bps"`
	PeakBWBps    float64     `json:"peak_bw_bps"`
	CoV          float64     `json:"cov"`
	Spans        int         `json:"spans"`
	Dropped      int64       `json:"dropped"`
}

// Report is the structured conformance result for one run.
type Report struct {
	Executor      string     `json:"executor"`
	M             int        `json:"m"`
	K             int        `json:"k"`
	N             int        `json:"n"`
	Config        string     `json:"config"`
	Predicted     Predicted  `json:"predicted"`
	Measured      Measured   `json:"measured"`
	Attainment    float64    `json:"attainment"`    // measured FLOPs / roofline
	Amplification float64    `json:"amplification"` // measured total traffic / ideal bytes
	Tolerances    Tolerances `json:"tolerances"`
	Checks        []Check    `json:"checks"`
	Pass          bool       `json:"pass"`
}

// Failed returns the required checks that did not pass.
func (r *Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if c.Required && !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Publish makes this report the one served on /debug/conformance.json. A
// failing report additionally freezes a flight-recorder snapshot on every
// published request tracer (reason "conformance"): the requests the engine
// was serving when the model check failed are the evidence worth keeping.
func (r *Report) Publish() {
	obs.SetConformance(r)
	if !r.Pass {
		detail := fmt.Sprintf("%s %dx%dx%d:", r.Executor, r.M, r.K, r.N)
		for _, c := range r.Failed() {
			detail += " " + c.Name
		}
		reqtrace.NotifyConformanceFailure(detail)
	}
}

// Evaluate judges one traced run against the model.
func Evaluate(in Input) (*Report, error) {
	if in.M < 1 || in.K < 1 || in.N < 1 {
		return nil, fmt.Errorf("conformance: invalid shape %dx%dx%d", in.M, in.K, in.N)
	}
	if in.ElemBytes < 1 {
		return nil, fmt.Errorf("conformance: invalid element size %d", in.ElemBytes)
	}
	if (in.Cake == nil) == (in.Goto == nil) {
		return nil, fmt.Errorf("conformance: exactly one of Cake or Goto config must be set")
	}
	if len(in.Spans) == 0 {
		return nil, fmt.Errorf("conformance: no spans recorded — was the executor traced?")
	}
	if in.Rates.ClockHz <= 0 || in.Rates.FlopsPerCycle <= 0 || in.Rates.ElemBytes < 1 {
		return nil, fmt.Errorf("conformance: invalid rates %+v", in.Rates)
	}
	tol := DefaultTolerances()
	if in.Tol != nil {
		tol = *in.Tol
	}

	r := &Report{Executor: in.Executor, M: in.M, K: in.K, N: in.N, Tolerances: tol}

	// Model side: per-phase traffic from the executor's own predictor, and
	// the bandwidth rates from Section 4's element-unit analysis.
	var mr, nr, kc, p int
	isCake := in.Cake != nil
	if isCake {
		cfg := *in.Cake
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("conformance: %w", err)
		}
		r.Config = cfg.String()
		r.Predicted.Traffic = cfg.PredictTraffic(in.M, in.K, in.N, in.ElemBytes)
		mr, nr, kc, p = cfg.MR, cfg.NR, cfg.KC, cfg.Cores
		r.Predicted.RequiredBWBps = cbtheory.CakeOptimalDRAMBW(in.Rates, cfg.Alpha, mr, nr, kc)
	} else {
		cfg := *in.Goto
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("conformance: %w", err)
		}
		r.Config = cfg.String()
		r.Predicted.Traffic = cfg.PredictTraffic(in.M, in.K, in.N, in.ElemBytes)
		mr, nr, kc, p = cfg.MR, cfg.NR, cfg.KC, cfg.Cores
		r.Predicted.RequiredBWBps = cbtheory.GotoRequiredDRAMBW(in.Rates, p, kc, cfg.NC, mr, nr)
	}
	kcOpt := cbtheory.OptimalKC(in.PrivateCacheBytes, in.ElemBytes, mr)
	r.Predicted.OptimalKC = kcOpt
	// The optimally-blocked requirement is CAKE's: (α+1)/α·mr·nr elements
	// per unit at the Section 4.4 kc, with α = 1 as the plentiful-bandwidth
	// reference. GOTO is judged informationally against the same floor —
	// its p-dependent excess over it is the paper's argument, not a bug.
	r.Predicted.OptimalBWBps = cbtheory.CakeOptimalDRAMBW(in.Rates, 1, mr, nr, kcOpt)

	macs := float64(in.M) * float64(in.K) * float64(in.N)
	predElems := float64(r.Predicted.Traffic.TotalBytes()) / float64(in.ElemBytes)
	if predElems > 0 {
		r.Predicted.AIMacsPerElem = macs / predElems
	}
	r.Predicted.IdealBytes = (int64(in.M)*int64(in.K) + int64(in.K)*int64(in.N) +
		2*int64(in.M)*int64(in.N)) * int64(in.ElemBytes)
	r.Predicted.PeakFlops = cbtheory.PeakFlops(in.Rates, p)
	r.Predicted.RooflineFlops = cbtheory.RooflineFlops(in.Rates, p, in.AvailBWBps, r.Predicted.AIMacsPerElem)

	// Measured side: span reduction plus the bucketed bandwidth timeline.
	meas, avoided := obs.MeasuredTraffic(in.Spans)
	r.Measured.Traffic = meas
	r.Measured.AvoidedBytes = avoided
	r.Measured.Spans = len(in.Spans)
	r.Measured.Dropped = in.Dropped
	buckets := in.Buckets
	if buckets < 1 {
		buckets = 12
	}
	st := obs.NewTimelineN(in.Spans, buckets).Stats()
	r.Measured.MeanBWBps, r.Measured.PeakBWBps, r.Measured.CoV = st.MeanBps, st.PeakBps, st.CoV
	wall := in.WallNanos
	if wall <= 0 {
		wall = spanExtent(in.Spans)
	}
	r.Measured.WallNanos = wall
	if wall > 0 {
		r.Measured.GFlops = 2 * macs / float64(wall)
	}
	if r.Predicted.RooflineFlops > 0 {
		r.Attainment = r.Measured.GFlops * 1e9 / r.Predicted.RooflineFlops
	}
	if r.Predicted.IdealBytes > 0 {
		r.Amplification = float64(meas.TotalBytes()+avoided) / float64(r.Predicted.IdealBytes)
	}

	// Verdicts. Traffic checks compare against the model exactly when the
	// ring did not truncate; a truncated trace fails them outright rather
	// than judging incomplete data.
	trafficDetail := ""
	trafficOK := in.Dropped == 0
	if !trafficOK {
		trafficDetail = fmt.Sprintf("ring dropped %d spans; traffic totals incomplete", in.Dropped)
	}
	r.addTrafficCheck("pack-traffic", float64(r.Predicted.Traffic.PackBytes),
		float64(meas.PackBytes+avoided), tol.Traffic, trafficOK, trafficDetail)
	r.addTrafficCheck("compute-traffic", float64(r.Predicted.Traffic.ComputeBytes),
		float64(meas.ComputeBytes), tol.Traffic, trafficOK, trafficDetail)
	r.addTrafficCheck("unpack-traffic", float64(r.Predicted.Traffic.UnpackBytes),
		float64(meas.UnpackBytes), tol.Traffic, trafficOK, trafficDetail)

	// Constant-bandwidth: required for CAKE (the paper's central claim),
	// informational for GOTO (whose spiky timeline is the contrast).
	r.Checks = append(r.Checks, Check{
		Name: "bandwidth-cov", Predicted: 0, Measured: st.CoV, Ratio: st.CoV,
		Tolerance: tol.MaxCoV, Required: isCake, Pass: st.CoV <= tol.MaxCoV,
		Detail: fmt.Sprintf("timeline CoV over %d buckets", st.Buckets),
	})

	// Bandwidth band: the config's required external bandwidth must sit
	// within BandFactor of the optimally-blocked requirement. Required BW
	// scales as 1/kc, so a reduction depth far below the Section 4.4 sizing
	// fails here even though total traffic and AI are kc-independent.
	bandRatio := 0.0
	if r.Predicted.OptimalBWBps > 0 {
		bandRatio = r.Predicted.RequiredBWBps / r.Predicted.OptimalBWBps
	}
	r.Checks = append(r.Checks, Check{
		Name: "bandwidth-band", Predicted: r.Predicted.OptimalBWBps,
		Measured: r.Predicted.RequiredBWBps, Ratio: bandRatio,
		Tolerance: tol.BandFactor, Required: isCake,
		Pass:   bandRatio > 0 && bandRatio <= tol.BandFactor,
		Detail: fmt.Sprintf("config kc=%d vs optimal kc=%d", kc, kcOpt),
	})

	// Roofline position: a real execution lands in (0, MaxAttainment].
	r.Checks = append(r.Checks, Check{
		Name: "attainment", Predicted: r.Predicted.RooflineFlops,
		Measured: r.Measured.GFlops * 1e9, Ratio: r.Attainment,
		Tolerance: tol.MaxAttainment, Required: true,
		Pass:   r.Attainment > 0 && r.Attainment <= tol.MaxAttainment,
		Detail: "measured throughput / roofline bound",
	})

	r.Pass = len(r.Failed()) == 0
	return r, nil
}

// addTrafficCheck appends one per-phase traffic verdict. A zero prediction
// demands a zero measurement (CAKE's resident-C compute phase); otherwise
// the relative error must stay within tol.
func (r *Report) addTrafficCheck(name string, predicted, measured, tol float64, ringOK bool, ringDetail string) {
	c := Check{Name: name, Predicted: predicted, Measured: measured, Tolerance: tol, Required: true}
	if predicted == 0 {
		c.Pass = measured == 0
		c.Detail = "zero-traffic phase must stay zero"
	} else {
		c.Ratio = measured / predicted
		rel := c.Ratio - 1
		if rel < 0 {
			rel = -rel
		}
		c.Pass = rel <= tol
		c.Detail = "measured vs model per-phase DRAM bytes"
	}
	if !ringOK {
		c.Pass = false
		c.Detail = ringDetail
	}
	r.Checks = append(r.Checks, c)
}

// spanExtent returns the wall-clock extent covered by the spans.
func spanExtent(spans []obs.Span) int64 {
	var lo, hi int64
	first := true
	for _, s := range spans {
		if first {
			lo, hi = s.StartNs, s.EndNs()
			first = false
			continue
		}
		lo = min(lo, s.StartNs)
		hi = max(hi, s.EndNs())
	}
	return hi - lo
}
