package conformance

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/cbtheory"
	"repro/internal/core"
	"repro/internal/gotoalg"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Fixed platform stand-in so verdicts do not depend on the machine running
// the tests: 3 GHz, 4 FLOPs/cycle, float32, 25 GB/s DRAM, 512 KiB private
// cache (optimal kc = 256).
var (
	testRates = cbtheory.Rates{ClockHz: 3e9, FlopsPerCycle: 4, ElemBytes: 4}
	testBW    = 25e9
	testCache = int64(512 << 10)
)

const tM, tK, tN = 32, 512, 256

// tracedCake runs one warmed-up, traced CAKE GEMM and returns the spans.
func tracedCake(t *testing.T, cfg core.Config) []obs.Span {
	t.Helper()
	rec := obs.NewRecorder(cfg.Cores, 1<<14)
	e, err := core.NewExecutor[float32](cfg, nil, core.WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(11))
	a := matrix.New[float32](tM, tK)
	b := matrix.New[float32](tK, tN)
	c := matrix.New[float32](tM, tN)
	a.Randomize(rng)
	b.Randomize(rng)

	if _, err := e.Gemm(c, a, b); err != nil { // warmup: buffers + pool spin-up
		t.Fatal(err)
	}
	rec.Reset()
	c.Zero()
	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if d := rec.Dropped(); d > 0 {
		t.Fatalf("recorder dropped %d spans; grow the ring", d)
	}
	return rec.Spans()
}

// tracedGoto mirrors tracedCake for the GOTO baseline.
func tracedGoto(t *testing.T, cfg gotoalg.Config) []obs.Span {
	t.Helper()
	rec := obs.NewRecorder(cfg.Cores, 1<<14)
	e, err := gotoalg.NewExecutor[float32](cfg, nil, gotoalg.WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(11))
	a := matrix.New[float32](tM, tK)
	b := matrix.New[float32](tK, tN)
	c := matrix.New[float32](tM, tN)
	a.Randomize(rng)
	b.Randomize(rng)

	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	rec.Reset()
	c.Zero()
	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if d := rec.Dropped(); d > 0 {
		t.Fatalf("recorder dropped %d spans; grow the ring", d)
	}
	return rec.Spans()
}

func findCheck(t *testing.T, r *Report, name string) Check {
	t.Helper()
	for _, c := range r.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("report has no %q check: %+v", name, r.Checks)
	return Check{}
}

// The ISSUE's acceptance scenario: CAKE and GOTO traced on the same shape.
// The well-tuned CAKE run conforms to the model — compute-phase traffic
// within tolerance of the prediction (exactly zero for CAKE), attainment in
// (0, MaxAttainment] — while a deliberately mis-tuned configuration with kc
// far below the Section 4.4 sizing fails its report.
func TestAcceptanceCakeVersusGoto(t *testing.T) {
	cake := core.Config{Cores: 2, MC: 8, KC: 256, Alpha: 1, MR: 8, NR: 8,
		Dim: core.DimN, Order: core.OrderAuto}
	spans := tracedCake(t, cake)

	rep, err := Evaluate(Input{
		Executor: "cake", M: tM, K: tK, N: tN, ElemBytes: 4,
		Cake:  &cake,
		Rates: testRates, AvailBWBps: testBW, PrivateCacheBytes: testCache,
		Spans: spans,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Compute-phase DRAM traffic: the model says the resident-C execution
	// moves nothing during macro-kernels, and the measurement agrees.
	cc := findCheck(t, rep, "compute-traffic")
	if !cc.Pass || rep.Measured.Traffic.ComputeBytes != 0 {
		t.Errorf("CAKE compute traffic check failed: %+v (measured %d bytes)",
			cc, rep.Measured.Traffic.ComputeBytes)
	}
	pc := findCheck(t, rep, "pack-traffic")
	if !pc.Pass {
		t.Errorf("CAKE pack traffic outside tolerance: %+v", pc)
	}
	if rep.Attainment <= 0 || rep.Attainment > rep.Tolerances.MaxAttainment {
		t.Errorf("CAKE attainment = %g, want in (0, %g]", rep.Attainment, rep.Tolerances.MaxAttainment)
	}
	if !rep.Pass {
		t.Errorf("well-tuned CAKE report failed: %+v", rep.Failed())
	}

	// The GOTO baseline on the same shape: traffic conforms to its own
	// model (non-zero compute-phase streaming), and the CoV check is
	// informational — a spiky timeline must not fail the report.
	gcfg := gotoalg.Config{Cores: 2, MC: 64, KC: 64, NC: 128, MR: 8, NR: 8}
	grep, err := Evaluate(Input{
		Executor: "goto", M: tM, K: tK, N: tN, ElemBytes: 4,
		Goto:  &gcfg,
		Rates: testRates, AvailBWBps: testBW, PrivateCacheBytes: testCache,
		Spans: tracedGoto(t, gcfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gc := findCheck(t, grep, "compute-traffic"); !gc.Pass || grep.Measured.Traffic.ComputeBytes == 0 {
		t.Errorf("GOTO compute traffic check: %+v (measured %d bytes, want non-zero partial-C streaming)",
			gc, grep.Measured.Traffic.ComputeBytes)
	}
	if cov := findCheck(t, grep, "bandwidth-cov"); cov.Required {
		t.Errorf("GOTO CoV check must be informational: %+v", cov)
	}
	if !grep.Pass {
		t.Errorf("GOTO report failed its required checks: %+v", grep.Failed())
	}

	// Mis-tuned CAKE: kc = 8, 32× below the optimal 256. Total traffic and
	// AI are kc-independent, but the per-block bandwidth requirement scales
	// as 1/kc — the bandwidth-band check catches it deterministically.
	bad := core.Config{Cores: 2, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8,
		Dim: core.DimN, Order: core.OrderAuto}
	brep, err := Evaluate(Input{
		Executor: "cake-mistuned", M: tM, K: tK, N: tN, ElemBytes: 4,
		Cake:  &bad,
		Rates: testRates, AvailBWBps: testBW, PrivateCacheBytes: testCache,
		Spans: tracedCake(t, bad),
	})
	if err != nil {
		t.Fatal(err)
	}
	if brep.Pass {
		t.Errorf("mis-tuned kc=8 report passed; checks: %+v", brep.Checks)
	}
	band := findCheck(t, brep, "bandwidth-band")
	if band.Pass || band.Ratio < 30 {
		t.Errorf("bandwidth-band should fail at ~32x optimal: %+v", band)
	}

	// The report round-trips through JSON (it is served on the debug
	// endpoint) and publishes as the latest conformance report.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	rep.Publish()
	got, ok := obs.LatestConformance()
	if !ok || got.(*Report) != rep {
		t.Fatal("Publish did not register the report")
	}
}

// Synthetic spans pin down the check logic without timing noise.
func TestEvaluateSyntheticTrafficMismatch(t *testing.T) {
	cfg := core.Config{Cores: 1, MC: 16, KC: 32, Alpha: 1, MR: 8, NR: 8,
		Dim: core.DimN, Order: core.OrderAuto}
	pred := cfg.PredictTraffic(16, 32, 16, 4) // pack 4096, unpack 2048

	mkInput := func(spans []obs.Span) Input {
		return Input{
			Executor: "cake", M: 16, K: 32, N: 16, ElemBytes: 4,
			Cake:  &cfg,
			Rates: testRates, AvailBWBps: testBW,
			// 8 KiB private cache makes the config's kc=32 the optimal
			// sizing, keeping the bandwidth-band check neutral here.
			PrivateCacheBytes: 8 << 10,
			Spans:             spans, WallNanos: 1e6,
		}
	}

	// Spans that reproduce the prediction exactly: all checks pass.
	good := []obs.Span{
		{StartNs: 0, DurNs: 500, Bytes: pred.PackBytes, Phase: obs.PhasePack},
		{StartNs: 500, DurNs: 400, Bytes: 0, Phase: obs.PhaseCompute},
		{StartNs: 900, DurNs: 100, Bytes: pred.UnpackBytes, Phase: obs.PhaseUnpack},
	}
	rep, err := Evaluate(mkInput(good))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("exact-match report failed: %+v", rep.Failed())
	}

	// 30% excess pack traffic breaks the 10% tolerance.
	bad := append([]obs.Span{}, good...)
	bad[0].Bytes = pred.PackBytes * 13 / 10
	rep, err = Evaluate(mkInput(bad))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("pack traffic 30 percent over passed the 10 percent tolerance")
	}
	if pc := findCheck(t, rep, "pack-traffic"); pc.Pass {
		t.Fatalf("pack-traffic check passed: %+v", pc)
	}

	// Any compute-phase traffic on a CAKE run is a model violation.
	leak := append([]obs.Span{}, good...)
	leak[1].Bytes = 64
	rep, err = Evaluate(mkInput(leak))
	if err != nil {
		t.Fatal(err)
	}
	if cc := findCheck(t, rep, "compute-traffic"); cc.Pass {
		t.Fatalf("non-zero compute traffic passed the zero-phase check: %+v", cc)
	}

	// Dropped spans taint every traffic check.
	in := mkInput(good)
	in.Dropped = 5
	rep, err = Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pack-traffic", "compute-traffic", "unpack-traffic"} {
		if c := findCheck(t, rep, name); c.Pass {
			t.Fatalf("%s passed despite dropped spans: %+v", name, c)
		}
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	cfg := core.Config{Cores: 1, MC: 16, KC: 32, Alpha: 1, MR: 8, NR: 8,
		Dim: core.DimN, Order: core.OrderAuto}
	gcfg := gotoalg.Config{Cores: 1, MC: 16, KC: 16, NC: 16, MR: 8, NR: 8}
	spans := []obs.Span{{DurNs: 1, Bytes: 1, Phase: obs.PhasePack}}
	base := Input{
		Executor: "cake", M: 8, K: 8, N: 8, ElemBytes: 4, Cake: &cfg,
		Rates: testRates, AvailBWBps: testBW, PrivateCacheBytes: testCache,
		Spans: spans,
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Input)
	}{
		{"zero shape", func(in *Input) { in.M = 0 }},
		{"zero elem size", func(in *Input) { in.ElemBytes = 0 }},
		{"no config", func(in *Input) { in.Cake = nil }},
		{"both configs", func(in *Input) { in.Goto = &gcfg }},
		{"no spans", func(in *Input) { in.Spans = nil }},
		{"bad rates", func(in *Input) { in.Rates = cbtheory.Rates{} }},
	} {
		in := base
		tc.mutate(&in)
		if _, err := Evaluate(in); err == nil {
			t.Errorf("%s: Evaluate accepted invalid input", tc.name)
		}
	}
}

// Tracing plus enabled metrics feeds the phase-latency histograms — the
// executor-side hookup the Prometheus endpoint renders.
func TestTracedRunFeedsLatencyHistograms(t *testing.T) {
	obs.EnableMetrics()
	defer obs.DisableMetrics()
	packBase := obs.MetricsFor("cake").PackDur.Count()
	compBase := obs.MetricsFor("cake").ComputeDur.Count()

	cfg := core.Config{Cores: 2, MC: 8, KC: 64, Alpha: 1, MR: 8, NR: 8,
		Dim: core.DimN, Order: core.OrderAuto}
	tracedCake(t, cfg)

	m := obs.MetricsFor("cake")
	if m.PackDur.Count() <= packBase || m.ComputeDur.Count() <= compBase {
		t.Fatalf("traced run did not feed histograms: pack %d→%d, compute %d→%d",
			packBase, m.PackDur.Count(), compBase, m.ComputeDur.Count())
	}
	if m.PackDur.P99() <= 0 {
		t.Fatalf("pack p99 = %g after %d observations", m.PackDur.P99(), m.PackDur.Count())
	}
}
