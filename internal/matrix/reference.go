package matrix

// Reference GEMM implementations. These are the correctness oracles for the
// CAKE and GOTO drivers: slow, obviously correct, and exercised heavily by
// property-based tests.

// NaiveGemm computes C += A×B with the textbook i-j-k triple loop
// (Algorithm 1 in the paper).
func NaiveGemm[T Scalar](c, a, b *Matrix[T]) {
	CheckMul(c, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Cols; j++ {
			var s T
			for k := 0; k < a.Cols; k++ {
				s += arow[k] * b.At(k, j)
			}
			crow[j] += s
		}
	}
}

// OuterProductGemm computes C += A×B as a summation of K outer products
// (Section 2 of the paper): for each k, C += A[:,k] ⊗ B[k,:]. It produces
// bit-identical results to accumulating in K order and exists to demonstrate
// and test the outer-product formulation CAKE is built on.
func OuterProductGemm[T Scalar](c, a, b *Matrix[T]) {
	CheckMul(c, a, b)
	for k := 0; k < a.Cols; k++ {
		brow := b.Row(k)
		for i := 0; i < a.Rows; i++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			crow := c.Row(i)
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// BlockedGemm computes C += A×B with a simple cache-blocked triple loop over
// bs×bs×bs blocks. It is a second, structurally different oracle: agreement
// between NaiveGemm and BlockedGemm over random shapes gives confidence in
// the view/edge handling that the real drivers also rely on.
func BlockedGemm[T Scalar](c, a, b *Matrix[T], bs int) {
	CheckMul(c, a, b)
	if bs < 1 {
		panic("matrix: BlockedGemm block size must be >= 1")
	}
	m, n, k := a.Rows, b.Cols, a.Cols
	for i0 := 0; i0 < m; i0 += bs {
		for k0 := 0; k0 < k; k0 += bs {
			for j0 := 0; j0 < n; j0 += bs {
				cv := c.View(i0, j0, bs, bs)
				av := a.View(i0, k0, bs, bs)
				bv := b.View(k0, j0, bs, bs)
				NaiveGemm(cv, av, bv)
			}
		}
	}
}

// GemmFlops returns the floating-point operation count 2·M·N·K of the GEMM
// C[MxN] += A[MxK]×B[KxN], counting one multiply-accumulate as two FLOPs as
// the paper's GFLOP/s numbers do.
func GemmFlops(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}
