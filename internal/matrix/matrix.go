// Package matrix provides dense row-major matrices over float32/float64,
// strided sub-matrix views, and the reference GEMM implementations used as
// correctness oracles throughout the CAKE reproduction.
//
// The package is deliberately free of any blocking or scheduling logic:
// it is the substrate every higher layer (packing, kernels, the CAKE and
// GOTO drivers) builds on and is tested against.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Scalar is the element type constraint for all matrix code in this module.
// The paper evaluates single-precision GEMM (BLIS sgemm kernels); float64 is
// supported throughout because it falls out of the same generic code.
type Scalar interface {
	~float32 | ~float64
}

// Matrix is a dense row-major matrix, possibly a view into a larger one.
// Element (i, j) lives at Data[i*Stride+j]. A Matrix with Stride == Cols is
// "compact". The zero value is an empty 0×0 matrix ready to use.
type Matrix[T Scalar] struct {
	Rows   int
	Cols   int
	Stride int
	Data   []T
}

// New returns a zeroed compact r×c matrix.
func New[T Scalar](r, c int) *Matrix[T] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", r, c))
	}
	return &Matrix[T]{Rows: r, Cols: c, Stride: c, Data: make([]T, r*c)}
}

// FromSlice wraps data (row-major, length r*c) without copying.
func FromSlice[T Scalar](r, c int, data []T) *Matrix[T] {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix[T]{Rows: r, Cols: c, Stride: c, Data: data}
}

// FromStrided wraps row-major data with an explicit leading dimension (the
// BLAS lda convention) without copying. stride must be at least c and data
// must reach the last referenced element.
func FromStrided[T Scalar](r, c, stride int, data []T) *Matrix[T] {
	if r < 0 || c < 0 || stride < c {
		panic(fmt.Sprintf("matrix: FromStrided invalid %dx%d stride=%d", r, c, stride))
	}
	if need := (r-1)*stride + c; r > 0 && len(data) < need {
		panic(fmt.Sprintf("matrix: FromStrided data %d < %d", len(data), need))
	}
	return &Matrix[T]{Rows: r, Cols: c, Stride: stride, Data: data}
}

// Scale multiplies every element by s (s = 0 clears the matrix).
func (m *Matrix[T]) Scale(s T) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// At returns element (i, j). It sits on the resident-serving hot path —
// the corpus profiles attribute several percent of cpu-resident flat time
// here — so it must stay a straight bounds-checked load.
//
//cake:hotpath
func (m *Matrix[T]) At(i, j int) T { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix[T]) Set(i, j int, v T) { m.Data[i*m.Stride+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix[T]) Add(i, j int, v T) { m.Data[i*m.Stride+j] += v }

// Row returns row i as a slice of length Cols sharing m's storage.
func (m *Matrix[T]) Row(i int) []T { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns an r×c sub-matrix rooted at (i, j) sharing m's storage.
// The view is clipped against m's bounds, so callers may request a full
// block at a matrix edge and receive the remainder.
func (m *Matrix[T]) View(i, j, r, c int) *Matrix[T] {
	if i < 0 || j < 0 || i > m.Rows || j > m.Cols {
		panic(fmt.Sprintf("matrix: view origin (%d,%d) outside %dx%d", i, j, m.Rows, m.Cols))
	}
	if i+r > m.Rows {
		r = m.Rows - i
	}
	if j+c > m.Cols {
		c = m.Cols - j
	}
	v := &Matrix[T]{Rows: r, Cols: c, Stride: m.Stride}
	if r > 0 && c > 0 {
		// Slice up to the final referenced element, not i+r rows, so a
		// view touching the last row does not overrun Data.
		lo := i*m.Stride + j
		hi := (i+r-1)*m.Stride + j + c
		v.Data = m.Data[lo:hi]
	}
	return v
}

// Clone returns a compact deep copy of m.
func (m *Matrix[T]) Clone() *Matrix[T] {
	out := New[T](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match exactly.
func (m *Matrix[T]) CopyFrom(src *Matrix[T]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: CopyFrom %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero clears every element of m (including when m is a view).
func (m *Matrix[T]) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix[T]) Fill(v T) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// FillFunc sets element (i, j) to f(i, j).
func (m *Matrix[T]) FillFunc(f func(i, j int) T) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = f(i, j)
		}
	}
}

// Randomize fills m with uniform values in [-1, 1) from rng.
func (m *Matrix[T]) Randomize(rng *rand.Rand) {
	m.FillFunc(func(_, _ int) T { return T(2*rng.Float64() - 1) })
}

// Transpose returns a new compact matrix that is mᵀ.
func (m *Matrix[T]) Transpose() *Matrix[T] {
	out := New[T](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether m and o have identical shape and elements.
func (m *Matrix[T]) Equal(o *Matrix[T]) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), o.Row(i)
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest |m[i,j] - o[i,j]| over all elements.
// Shapes must match.
func (m *Matrix[T]) MaxAbsDiff(o *Matrix[T]) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix: MaxAbsDiff shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	var max float64
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), o.Row(i)
		for j := range a {
			d := math.Abs(float64(a[j]) - float64(b[j]))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AlmostEqual reports whether every element of m and o differs by at most
// tol, where tol is scaled by the reduction length k to account for the
// accumulated rounding of a K-deep dot product. Pass k=1 for a plain
// element-wise comparison.
func (m *Matrix[T]) AlmostEqual(o *Matrix[T], k int, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	if k < 1 {
		k = 1
	}
	return m.MaxAbsDiff(o) <= tol*float64(k)
}

// FrobeniusNorm returns sqrt(sum m[i,j]^2).
func (m *Matrix[T]) FrobeniusNorm() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += float64(v) * float64(v)
		}
	}
	return math.Sqrt(s)
}

// IsCompact reports whether m occupies contiguous storage.
func (m *Matrix[T]) IsCompact() bool { return m.Stride == m.Cols || m.Rows <= 1 }

// String renders small matrices for debugging; large ones are summarised.
func (m *Matrix[T]) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix[%dx%d stride=%d]", m.Rows, m.Cols, m.Stride)
	}
	s := fmt.Sprintf("Matrix[%dx%d]{\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s += " "
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf(" %8.4g", float64(m.At(i, j)))
		}
		s += "\n"
	}
	return s + "}"
}

// CheckMul panics unless C = A×B is dimensionally valid.
func CheckMul[T Scalar](c, a, b *Matrix[T]) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: invalid GEMM dims C[%dx%d] = A[%dx%d] x B[%dx%d]",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
